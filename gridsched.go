// Package gridsched is a reproduction of "A New Parallel Asynchronous
// Cellular Genetic Algorithm for Scheduling in Grids" (Pinel, Dorronsoro,
// Bouvry; IPDPS Workshops 2010) as a reusable Go library.
//
// It schedules independent tasks on heterogeneous machines under the
// Expected Time to Compute (ETC) model, minimizing makespan, using the
// paper's PA-CGA: a cellular genetic algorithm whose toroidal population
// is partitioned into contiguous blocks evolved asynchronously by
// concurrent goroutines, with per-individual read-write locks and the
// H2LL local search. The package also bundles the classic constructive
// heuristics (Min-min & co.), two literature metaheuristic baselines
// (Struggle GA and cMA+LTH), and the experiment harness reproducing the
// paper's tables and figures.
//
// Quick start:
//
//	inst, _ := gridsched.GenerateInstance("u_i_hihi.0")
//	p := gridsched.DefaultParams()
//	p.MaxDuration = 2 * time.Second
//	res, _ := gridsched.Run(inst, p)
//	fmt.Println("makespan:", res.BestFitness)
//
// Every algorithm also registers itself with the unified solver layer,
// so the whole family is reachable through one dispatch surface:
//
//	res, _ := gridsched.Solve("pa-cga", inst, gridsched.SolveOptions{
//		Budget: gridsched.Budget{MaxEvaluations: 100000},
//	})
//
// SolverNames lists what is available (the cellular GAs, the literature
// baselines, the island model, standalone tabu search, the iterated
// H2LL hill climber, the racing portfolio meta-solver, and the seven
// constructive heuristics as zero-budget solvers).
//
// The subpackages under internal/ hold the implementation; this package
// is the supported public surface.
package gridsched

import (
	"context"
	"io"

	"gridsched/internal/baselines"
	"gridsched/internal/core"
	"gridsched/internal/etc"
	"gridsched/internal/experiments"
	"gridsched/internal/gridsim"
	"gridsched/internal/heuristics"
	"gridsched/internal/instdb"
	"gridsched/internal/islands"
	"gridsched/internal/operators"
	"gridsched/internal/rng"
	"gridsched/internal/scenarios"
	"gridsched/internal/schedule"
	"gridsched/internal/service"
	"gridsched/internal/solver"
	"gridsched/internal/stats"
	"gridsched/internal/topology"
)

// --- Instances (ETC model) ---

// Instance is an ETC scheduling instance: tasks × machines expected
// execution times plus per-machine ready times.
type Instance = etc.Instance

// Class identifies a Braun benchmark family (consistency × task
// heterogeneity × machine heterogeneity), e.g. u_c_hihi.0.
type Class = etc.Class

// GenSpec parameterizes synthetic instance generation.
type GenSpec = etc.GenSpec

// Consistency and heterogeneity enums of the Braun instance classes.
const (
	Consistent     = etc.Consistent
	Inconsistent   = etc.Inconsistent
	SemiConsistent = etc.SemiConsistent
	LowHet         = etc.Low
	HighHet        = etc.High
)

// GenerateInstance builds the named Braun-style benchmark instance
// (e.g. "u_c_hihi.0") at the paper's 512×16 dimensions,
// deterministically.
func GenerateInstance(name string) (*Instance, error) { return etc.GenerateByName(name) }

// Generate builds a synthetic instance from an explicit specification.
func Generate(spec GenSpec) (*Instance, error) { return etc.Generate(spec) }

// BenchmarkSuite returns the paper's 12 evaluation instances.
func BenchmarkSuite() ([]*Instance, error) { return etc.Benchmark() }

// NewInstanceFromMatrix builds an instance from an explicit row-major
// ETC matrix (len = tasks×machines); useful when workloads and machine
// speeds come from an application rather than the benchmark generator.
func NewInstanceFromMatrix(name string, tasks, machines int, row []float64) (*Instance, error) {
	return etc.New(name, tasks, machines, row)
}

// InstanceMetrics summarizes an ETC matrix: heterogeneity coefficients,
// the consistency index and the load-balance lower bound on makespan.
type InstanceMetrics = etc.Metrics

// ComputeMetrics measures an instance's statistical character.
func ComputeMetrics(in *Instance) InstanceMetrics { return etc.ComputeMetrics(in) }

// ReadInstance parses the HCSP text format (header "tasks machines"
// followed by one ETC value per line).
func ReadInstance(name string, r io.Reader) (*Instance, error) { return etc.Read(name, r) }

// WriteInstance serializes an instance in the HCSP text format.
func WriteInstance(in *Instance, w io.Writer) error { return in.Write(w) }

// --- Schedules ---

// Schedule is a task→machine assignment with incrementally maintained
// per-machine completion times; Makespan is its fitness.
type Schedule = schedule.Schedule

// NewSchedule returns an empty schedule for the instance.
func NewSchedule(in *Instance) *Schedule { return schedule.New(in) }

// RandomSchedule returns a uniformly random complete schedule.
func RandomSchedule(in *Instance, seed uint64) *Schedule {
	return schedule.NewRandom(in, rng.New(seed))
}

// --- Unified solver layer ---

// Solver is the uniform run contract every algorithm in the library
// implements and registers under a stable name; see SolverNames.
type Solver = solver.Solver

// Budget bounds a solver run: wall-clock, evaluation and generation
// limits compose, and the run stops at whichever fires first. The
// constructive heuristics ignore it (zero-budget solvers).
type Budget = solver.Budget

// SolverResult is the result shape shared by every solver (identical
// to Result).
type SolverResult = solver.Result

// ConstituentResult is one constituent's share of a racing portfolio
// run (SolverResult.Constituents): its evaluations, restart rounds,
// incumbent contributions and busy time. The portfolio meta-solver is
// registered as "portfolio" (pa-cga + tabu + h2ll) and ad-hoc
// compositions resolve through the registry as
// "portfolio:name+name+..." — e.g. Solve("portfolio:ga+tabu", ...).
type ConstituentResult = solver.ConstituentResult

// SolveOptions configures a Solve call. The zero value runs the named
// solver with its registered default configuration — note iterative
// solvers require at least one Budget bound.
type SolveOptions struct {
	// Context cancels the run early when done; nil means Background.
	Context context.Context
	// Budget is the stop-condition set.
	Budget Budget
	// Seed, when non-zero, reseeds the solver's randomness (each
	// registered solver defaults to seed 1; deterministic constructive
	// heuristics ignore it).
	Seed uint64
}

// Solve runs the named registered solver — any of the metaheuristics
// or constructive heuristics — on the instance under one uniform
// contract. It is the single dispatch surface the CLIs and the
// experiment harness build on.
func Solve(name string, inst *Instance, opts SolveOptions) (*SolverResult, error) {
	s, err := solver.Lookup(name)
	if err != nil {
		return nil, err
	}
	if opts.Seed != 0 {
		s = solver.WithSeed(s, opts.Seed)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return s.Solve(ctx, inst, opts.Budget)
}

// LookupSolver resolves a registered solver by name.
func LookupSolver(name string) (Solver, error) { return solver.Lookup(name) }

// SolverNames lists every registered solver name, sorted.
func SolverNames() []string { return solver.Names() }

// SolverInfo pairs a registry name with its one-line description.
type SolverInfo struct {
	Name        string
	Description string
}

// Solvers lists every registered solver with its description, sorted
// by name — the shared source for CLI listings.
func Solvers() []SolverInfo {
	names := solver.Names()
	infos := make([]SolverInfo, 0, len(names))
	for _, name := range names {
		s, err := solver.Lookup(name)
		if err != nil {
			continue // unregistered concurrently; skip rather than fail a listing
		}
		infos = append(infos, SolverInfo{Name: name, Description: s.Describe()})
	}
	return infos
}

// --- PA-CGA (the paper's algorithm) ---

// Params configures PA-CGA; see DefaultParams for the paper's Table 1
// values.
type Params = core.Params

// Result reports a run: best schedule, fitness, evaluation and
// generation counts, and the optional convergence series.
type Result = core.Result

// DefaultParams returns the paper's Table 1 configuration (16×16
// population, L5 neighborhood, best-2 selection, tpx crossover, move
// mutation, H2LL×10, replace-if-better, 3 threads).
func DefaultParams() Params { return core.DefaultParams() }

// Run executes the parallel asynchronous cellular GA.
func Run(in *Instance, p Params) (*Result, error) { return core.Run(in, p) }

// RunContext is Run with context cancellation: the run stops at the
// budget or the context, whichever fires first, and reports the best
// schedule found so far.
func RunContext(ctx context.Context, in *Instance, p Params) (*Result, error) {
	return core.RunContext(ctx, in, p)
}

// RunSync executes the synchronous cellular GA variant (single thread,
// generation barrier); the substrate of the cMA baseline and the
// async-vs-sync ablation.
func RunSync(in *Instance, p Params) (*Result, error) { return core.RunSync(in, p) }

// RunSyncContext is RunSync with context cancellation.
func RunSyncContext(ctx context.Context, in *Instance, p Params) (*Result, error) {
	return core.RunSyncContext(ctx, in, p)
}

// Operator constructors for Params customization.

// CrossoverByName resolves "opx", "tpx" or "ux".
func CrossoverByName(name string) (operators.Crossover, error) { return operators.ParseCrossover(name) }

// MutationByName resolves "move", "swap" or "rebalance".
func MutationByName(name string) (operators.Mutation, error) { return operators.ParseMutation(name) }

// H2LL returns the paper's local search with the given iteration budget.
func H2LL(iterations int) operators.LocalSearch { return operators.H2LL{Iterations: iterations} }

// NeighborhoodByName resolves "L5", "C9" or "L9".
func NeighborhoodByName(name string) (topology.Neighborhood, error) {
	return topology.ParseNeighborhood(name)
}

// --- Constructive heuristics ---

// MinMin runs the Min-min heuristic (the population seed of Table 1).
func MinMin(in *Instance) *Schedule { return heuristics.MinMin(in) }

// MaxMin runs the Max-min heuristic.
func MaxMin(in *Instance) *Schedule { return heuristics.MaxMin(in) }

// Sufferage runs the Sufferage heuristic.
func Sufferage(in *Instance) *Schedule { return heuristics.Sufferage(in) }

// HeuristicByName resolves any of minmin, maxmin, mct, met, olb,
// sufferage, ljfr-sjfr.
func HeuristicByName(name string) (func(*Instance) *Schedule, error) {
	h, err := heuristics.ByName(name)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// HeuristicNames lists the available constructive heuristics.
func HeuristicNames() []string { return heuristics.Names() }

// --- Literature baselines (Table 2 comparators) ---

// StruggleConfig configures the Struggle GA baseline.
type StruggleConfig = baselines.StruggleConfig

// CMALTHConfig configures the cellular memetic (tabu hook) baseline.
type CMALTHConfig = baselines.CMALTHConfig

// RunStruggle executes the Struggle GA of Xhafa (2006).
func RunStruggle(in *Instance, cfg StruggleConfig) (*Result, error) {
	return baselines.Struggle(in, cfg)
}

// RunStruggleContext is RunStruggle with context cancellation.
func RunStruggleContext(ctx context.Context, in *Instance, cfg StruggleConfig) (*Result, error) {
	return baselines.StruggleContext(ctx, in, cfg)
}

// RunCMALTH executes the cellular memetic algorithm with local tabu hook
// of Xhafa et al. (2008).
func RunCMALTH(in *Instance, cfg CMALTHConfig) (*Result, error) {
	return baselines.CMALTH(in, cfg)
}

// RunCMALTHContext is RunCMALTH with context cancellation.
func RunCMALTHContext(ctx context.Context, in *Instance, cfg CMALTHConfig) (*Result, error) {
	return baselines.CMALTHContext(ctx, in, cfg)
}

// GenerationalConfig configures the panmictic generational GA baseline —
// the "regular GA" cellular GAs are claimed to outperform (§1).
type GenerationalConfig = baselines.GenerationalConfig

// RunGenerational executes the panmictic generational GA.
func RunGenerational(in *Instance, cfg GenerationalConfig) (*Result, error) {
	return baselines.Generational(in, cfg)
}

// RunGenerationalContext is RunGenerational with context cancellation.
func RunGenerationalContext(ctx context.Context, in *Instance, cfg GenerationalConfig) (*Result, error) {
	return baselines.GenerationalContext(ctx, in, cfg)
}

// IslandConfig configures the distributed island-model cellular GA: the
// message-passing parallelization contrasted with PA-CGA's shared
// memory. Islands evolve lock-free private populations coupled only by
// elite migration over a channel ring.
type IslandConfig = islands.Config

// RunIslands executes the island-model cellular GA.
func RunIslands(in *Instance, cfg IslandConfig) (*Result, error) {
	return islands.Run(in, cfg)
}

// RunIslandsContext is RunIslands with context cancellation.
func RunIslandsContext(ctx context.Context, in *Instance, cfg IslandConfig) (*Result, error) {
	return islands.RunContext(ctx, in, cfg)
}

// --- Scheduling service ---

// Service is the embeddable long-running scheduling service: a job
// manager, a bounded queue and a fixed worker pool that executes
// submitted jobs through the solver registry, with per-job contexts
// riding the shared budget engine, TTL-based result retention, an LRU
// instance cache, and per-solver throughput/latency stats. The same
// operations are exposed over HTTP by Service.Handler and served
// stand-alone by cmd/gridschedd.
type Service = service.Server

// ServiceConfig parameterizes NewService; its zero value is usable.
type ServiceConfig = service.Config

// JobSpec is a solve request: a registered solver name, an instance
// (benchmark class name or inline matrix) and a budget.
type JobSpec = service.JobSpec

// JobMatrix is an inline ETC matrix inside a JobSpec.
type JobMatrix = service.MatrixSpec

// Job is an immutable snapshot of a submitted job.
type Job = service.Job

// JobResult is a finished job's schedule metrics and work counters.
type JobResult = service.JobResult

// JobState is the job lifecycle state.
type JobState = service.JobState

// The job lifecycle states: queued → running → done/failed/cancelled.
const (
	JobQueued    = service.StateQueued
	JobRunning   = service.StateRunning
	JobDone      = service.StateDone
	JobFailed    = service.StateFailed
	JobCancelled = service.StateCancelled
)

// ServiceStats, ServiceSolverStats and ServiceShardStats are the
// service's counters snapshot: totals, the per-solver breakdown, and
// the per-shard breakdown of the sharded core (submission, retirement
// and steal counts plus live queue gauges for each worker shard).
type (
	ServiceStats       = service.Stats
	ServiceSolverStats = service.SolverStats
	ServiceShardStats  = service.ShardStats
)

// Service sentinel errors.
var (
	// ErrQueueFull reports submit backpressure (the bounded queue is at
	// capacity).
	ErrQueueFull = service.ErrQueueFull
	// ErrJobNotFound reports an unknown or already evicted job ID.
	ErrJobNotFound = service.ErrNotFound
	// ErrServiceClosed reports a submit after shutdown started.
	ErrServiceClosed = service.ErrClosed
)

// NewService starts a scheduling service; stop it with Shutdown (or
// Close for an immediate cancel-and-drain).
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// --- Instance store ---

// InstanceStore is a decoded binary repository of pre-generated ETC
// instances (built by cmd/instdb): lookups are zero-copy, zero-alloc
// views over one shared arena. Plug it into ServiceConfig.InstanceDB
// to serve named instances without on-demand generation.
type InstanceStore = instdb.Store

// InstanceDB wraps an InstanceStore file with atomic hot reload:
// Reload swaps in a freshly decoded snapshot while readers holding the
// old one stay valid (gridschedd triggers it on SIGHUP).
type InstanceDB = instdb.DB

// BuildInstanceStore generates the named benchmark instances and
// writes a store file atomically (see instdb.BuildFile).
func BuildInstanceStore(path string, names []string) (instdb.BuildStats, error) {
	return instdb.BuildFile(path, names)
}

// OpenInstanceStore opens a store file for serving with hot reload.
func OpenInstanceStore(path string) (*InstanceDB, error) { return instdb.Open(path) }

// --- Scenario sweep (solver × benchmark-class matrix) ---

// SweepConfig parameterizes a scenario sweep; its zero value sweeps
// every registered solver over the full 12-class Braun matrix at the
// paper's 512×16 dimensions.
type SweepConfig = scenarios.Config

// SweepReport is the per-solver × per-class quality/latency report;
// render it with Table or WriteCSV.
type SweepReport = scenarios.Report

// SweepCell is one solver × class outcome inside a SweepReport.
type SweepCell = scenarios.Cell

// SweepSummary aggregates one solver across every swept class.
type SweepSummary = scenarios.Summary

// Sweep runs every requested solver on every requested benchmark class
// through a dedicated scheduling service (worker-pool fan-out, shared
// instance cache) and reports quality ratios and latencies. The same
// sweep is available stand-alone as cmd/sweep.
func Sweep(ctx context.Context, cfg SweepConfig) (*SweepReport, error) {
	return scenarios.Sweep(ctx, cfg)
}

// --- Grid simulation (§2.1's dynamic environment) ---

// SimConfig configures the discrete-event grid simulator: execution-time
// noise, machine failures (MTBF / repair time) and the rescheduling
// policy for orphaned tasks.
type SimConfig = gridsim.Config

// SimResult reports a simulated execution: actual vs predicted makespan,
// failure/restart counts, per-task finish times and an optional trace.
type SimResult = gridsim.Result

// Simulate executes a schedule on the simulated dynamic grid. With zero
// noise and no failures the simulated makespan equals the schedule's
// predicted makespan exactly.
func Simulate(in *Instance, s *Schedule, cfg SimConfig) (*SimResult, error) {
	return gridsim.Simulate(in, s, cfg)
}

// --- Experiments (paper reproduction) ---

// Scale sets experiment budgets (replications × wall time or evaluation
// budget); CIScale is laptop-friendly, PaperScale is the full protocol.
type Scale = experiments.Scale

// CIScale returns deterministic, fast experiment budgets.
func CIScale() Scale { return experiments.CIScale() }

// PaperScale returns the paper's 100×90 s budgets.
func PaperScale() Scale { return experiments.PaperScale() }

// Experiment entry points; each returns structured rows, and the
// corresponding Render function formats them like the paper.

// Fig4Row etc. re-export the experiment row types.
type (
	Fig4Row    = experiments.Fig4Row
	Fig5Cell   = experiments.Fig5Cell
	Table2Row  = experiments.Table2Row
	Fig6Series = experiments.Fig6Series
)

// Fig4 measures evaluation-throughput speedup vs threads and H2LL
// iterations (requires a wall-clock scale).
func Fig4(in *Instance, sc Scale) ([]Fig4Row, error) { return experiments.Fig4(in, sc) }

// Fig4Context is Fig4 under a context: cancellation aborts the
// experiment with the context's error.
func Fig4Context(ctx context.Context, in *Instance, sc Scale) ([]Fig4Row, error) {
	return experiments.Fig4Context(ctx, in, sc)
}

// Fig5 compares opx/tpx × 5/10 H2LL iterations over instances.
func Fig5(ins []*Instance, sc Scale) ([]Fig5Cell, error) { return experiments.Fig5(ins, sc) }

// Fig5Context is Fig5 under a context.
func Fig5Context(ctx context.Context, ins []*Instance, sc Scale) ([]Fig5Cell, error) {
	return experiments.Fig5Context(ctx, ins, sc)
}

// Table2 compares PA-CGA against the reimplemented literature baselines.
func Table2(ins []*Instance, sc Scale) ([]Table2Row, error) { return experiments.Table2(ins, sc) }

// Table2Context is Table2 under a context.
func Table2Context(ctx context.Context, ins []*Instance, sc Scale) ([]Table2Row, error) {
	return experiments.Table2Context(ctx, ins, sc)
}

// Fig6 records population convergence for 1..4 threads.
func Fig6(in *Instance, sc Scale) ([]Fig6Series, error) { return experiments.Fig6(in, sc) }

// Fig6Context is Fig6 under a context.
func Fig6Context(ctx context.Context, in *Instance, sc Scale) ([]Fig6Series, error) {
	return experiments.Fig6Context(ctx, in, sc)
}

// DiversitySeries is one population model's diversity trajectory.
type DiversitySeries = experiments.DiversitySeries

// DiversityStudy compares how cellular and panmictic populations retain
// genotypic diversity — §3.1's founding claim.
func DiversityStudy(in *Instance, sc Scale) ([]DiversitySeries, error) {
	return experiments.DiversityStudy(in, sc)
}

// DiversityStudyContext is DiversityStudy under a context.
func DiversityStudyContext(ctx context.Context, in *Instance, sc Scale) ([]DiversitySeries, error) {
	return experiments.DiversityStudyContext(ctx, in, sc)
}

// Render helpers (text output in the paper's shape).
var (
	RenderFig4      = experiments.RenderFig4
	RenderFig5      = experiments.RenderFig5
	RenderTable2    = experiments.RenderTable2
	RenderFig6      = experiments.RenderFig6
	RenderDiversity = experiments.RenderDiversity
	Table1          = experiments.Table1
)

// --- Statistics re-exports used by downstream analysis ---

// BoxPlot is a five-number summary with 95 % median notches.
type BoxPlot = stats.BoxPlot

// NewBoxPlot summarizes a sample.
func NewBoxPlot(xs []float64) (BoxPlot, error) { return stats.NewBoxPlot(xs) }

// RankSum is the two-sided Mann-Whitney test (U statistic, p-value).
func RankSum(xs, ys []float64) (float64, float64, error) { return stats.RankSum(xs, ys) }
