// Whole-solver throughput benchmarks: the benchguard-held numbers that
// keep the machine-major / batched-evaluation layout win from
// regressing. Each sub-benchmark runs one registered solver family at a
// fixed evaluation budget, so ns/op is inversely proportional to
// evals/sec — benchguard holds ns/op, and the evals/s metric makes the
// throughput readable directly in bench output.
//
// Two shapes are measured per family: the paper's benchmark dimensions
// (512×16) and the large-instance shape (8192×256) where the machine-
// major sweeps and row-contiguous move scoring dominate the run time.
package gridsched

import (
	"fmt"
	"testing"
)

// throughputShape is one instance geometry of the throughput suite with
// the evaluation budget each solver run spends on it. Budgets are sized
// so steady-state breeding dominates initialization (the GA families
// charge one eval per initial cell plus a one-time Min-min construction
// — at 8192×256 that means several times the 256-cell population), while
// keeping `-benchtime 1x` smoke runs cheap.
type throughputShape struct {
	tasks, machines int
	evals           int64
}

var throughputShapes = []throughputShape{
	{512, 16, 4000},
	{8192, 256, 6000},
}

// throughputInstance generates the inconsistent high-heterogeneity
// instance of the requested shape (the class the paper highlights).
func throughputInstance(b *testing.B, sh throughputShape) *Instance {
	b.Helper()
	cl := Class{Consistency: Inconsistent, TaskHet: HighHet, MachineHet: HighHet}
	in, err := Generate(GenSpec{Class: cl, Tasks: sh.tasks, Machines: sh.machines, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkSolverThroughput runs each solver family at each shape for a
// fixed evaluation budget. Compare evals/s across commits (or read
// ns/op, which benchguard holds) to see whole-solver throughput.
func BenchmarkSolverThroughput(b *testing.B) {
	for _, family := range []string{"pa-cga", "tabu", "h2ll"} {
		for _, sh := range throughputShapes {
			b.Run(fmt.Sprintf("%s/%dx%d", family, sh.tasks, sh.machines), func(b *testing.B) {
				in := throughputInstance(b, sh)
				b.ReportAllocs()
				b.ResetTimer()
				var evals int64
				for i := 0; i < b.N; i++ {
					res, err := Solve(family, in, SolveOptions{
						Budget: Budget{MaxEvaluations: sh.evals},
						Seed:   1,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Best == nil {
						b.Fatal("no schedule")
					}
					evals += res.Evaluations
				}
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(evals)/secs, "evals/s")
				}
			})
		}
	}
}
