package gridsched

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// solveTestInstance is a small instance every registered solver can
// chew through quickly.
func solveTestInstance(t *testing.T) *Instance {
	t.Helper()
	in, err := Generate(GenSpec{
		Class:    Class{Consistency: Inconsistent, TaskHet: HighHet, MachineHet: HighHet},
		Tasks:    24,
		Machines: 4,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// parallelSolvers race on a shared evaluation counter, so two runs with
// the same seed may interleave differently; every other solver must be
// bit-reproducible under a fixed seed and evaluation budget.
var parallelSolvers = map[string]bool{"pa-cga": true, "islands": true, "portfolio": true}

// compositeSolvers race constituent solvers under nested child
// budgets. Their adherence contract lives in the conformance kit and
// the portfolio package's accounting tests (at budgets that dwarf the
// constituents' initialization costs); at this file's tiny parity
// budget a composite may legitimately strand a conceded remainder
// below a constituent's restart floor, and a pre-cancelled run has no
// initial evaluation of its own to fall back on, so it reports the
// context error instead of inventing a schedule.
var compositeSolvers = map[string]bool{"portfolio": true}

// zeroBudgetSolvers are the constructive heuristics: single-pass,
// budget-ignoring, fully deterministic.
func zeroBudgetSolvers() map[string]bool {
	m := map[string]bool{}
	for _, name := range HeuristicNames() {
		m[name] = true
	}
	return m
}

// TestSolveRegistryRoundTrip resolves every registered solver by name
// and solves the same tiny instance, checking the common Result
// contract — and bit-reproducibility for the non-parallel solvers.
func TestSolveRegistryRoundTrip(t *testing.T) {
	in := solveTestInstance(t)
	zero := zeroBudgetSolvers()
	names := SolverNames()
	if len(names) < 14 {
		t.Fatalf("only %d registered solvers: %v", len(names), names)
	}
	for _, name := range names {
		opts := SolveOptions{Budget: Budget{MaxEvaluations: 600}, Seed: 7}
		res, err := Solve(name, in, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Best == nil || !res.Best.Complete() {
			t.Fatalf("%s: incomplete best schedule", name)
		}
		if err := res.Best.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.BestFitness <= 0 || res.Evaluations <= 0 {
			t.Fatalf("%s: degenerate result %+v", name, res)
		}
		if zero[name] && res.Evaluations != 1 {
			t.Fatalf("%s: zero-budget solver reported %d evaluations", name, res.Evaluations)
		}
		if parallelSolvers[name] {
			continue
		}
		again, err := Solve(name, in, opts)
		if err != nil {
			t.Fatalf("%s (rerun): %v", name, err)
		}
		if again.BestFitness != res.BestFitness {
			t.Fatalf("%s: not deterministic under fixed seed: %v vs %v",
				name, res.BestFitness, again.BestFitness)
		}
	}
}

// TestSolveBudgetParity asserts every iterative solver respects
// MaxEvaluations within one breeding step per concurrent worker — the
// contract the shared stop-condition engine enforces for all of them.
func TestSolveBudgetParity(t *testing.T) {
	in := solveTestInstance(t)
	zero := zeroBudgetSolvers()
	const budget = 600
	const slack = 8 // max concurrent workers: one in-flight breeding step each
	for _, name := range SolverNames() {
		if zero[name] || compositeSolvers[name] {
			continue
		}
		res, err := Solve(name, in, SolveOptions{Budget: Budget{MaxEvaluations: budget}, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Evaluations < budget || res.Evaluations > budget+slack {
			t.Fatalf("%s: %d evaluations under a budget of %d (allowed overshoot %d)",
				name, res.Evaluations, budget, slack)
		}
	}
}

// TestSolveMissingStopCondition ensures iterative solvers reject an
// empty budget instead of running forever.
func TestSolveMissingStopCondition(t *testing.T) {
	in := solveTestInstance(t)
	zero := zeroBudgetSolvers()
	for _, name := range SolverNames() {
		if zero[name] {
			continue
		}
		if _, err := Solve(name, in, SolveOptions{}); err == nil {
			t.Fatalf("%s: empty budget accepted", name)
		}
	}
}

// TestSolveContextCancellation covers both cancellation modes: a
// pre-cancelled context stops every iterative solver after the initial
// evaluation, and a mid-run cancel ends a long wall-clock run promptly.
func TestSolveContextCancellation(t *testing.T) {
	in := solveTestInstance(t)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	zero := zeroBudgetSolvers()
	for _, name := range SolverNames() {
		if zero[name] {
			continue
		}
		res, err := Solve(name, in, SolveOptions{
			Context: cancelled,
			Budget:  Budget{MaxDuration: time.Hour},
		})
		if compositeSolvers[name] && err != nil {
			continue // nothing ran, nothing to report: the context error is the honest outcome
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Only the initial population (plus at most one coarse polling
		// window of steady-state steps) may have been evaluated.
		if res.Evaluations > 600 {
			t.Fatalf("%s: %d evaluations despite cancelled context", name, res.Evaluations)
		}
	}

	ctx, cancelLive := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancelLive()
	}()
	start := time.Now()
	if _, err := Solve("pa-cga", in, SolveOptions{
		Context: ctx,
		Budget:  Budget{MaxDuration: time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation ignored: run took %v", elapsed)
	}
}

// TestSolveUnknownName checks the registry error path through the
// facade.
func TestSolveUnknownName(t *testing.T) {
	in := solveTestInstance(t)
	if _, err := Solve("no-such-solver", in, SolveOptions{}); err == nil {
		t.Fatal("unknown solver accepted")
	}
	if _, err := LookupSolver("tabu"); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeSweep runs a small scenario sweep through the public entry
// point: classes × solvers through the service pool, with the report
// rendering both ways.
func TestFacadeSweep(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := Sweep(ctx, SweepConfig{
		Classes: []Class{
			{Consistency: Consistent, TaskHet: HighHet, MachineHet: HighHet},
			{Consistency: Inconsistent, TaskHet: LowHet, MachineHet: LowHet},
		},
		Tasks:    48,
		Machines: 6,
		Solvers:  []string{"minmin", "tabu"},
		Budget:   Budget{MaxEvaluations: 400},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.State != JobDone {
			t.Fatalf("%s on %s: %s (%s)", c.Solver, c.Instance, c.State, c.Err)
		}
	}
	if table := rep.Table(); !strings.Contains(table, "tabu") || !strings.Contains(table, "minmin") {
		t.Fatalf("table missing solver rows:\n%s", table)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 5 {
		t.Fatalf("CSV has %d lines, want 5", lines)
	}
}
