// Package testkit is the registry-driven conformance kit for the
// unified solver layer: a reusable property suite that every solver
// registered with internal/solver must pass, with no per-solver
// special-casing. RunConformance iterates solver.Names(), so a newly
// registered solver is covered the moment its package is linked into
// the test binary — passing this suite is the contract a new solver
// must meet before it ships.
//
// The properties checked per solver:
//
//   - schedule validity: the returned best schedule assigns every task
//     exactly once to a real machine, its incremental completion times
//     agree with a from-scratch recomputation (Makespan ==
//     MakespanFull), and the reported fitness is the schedule's actual
//     makespan;
//   - budget adherence: the evaluation counter never exceeds the
//     evaluation budget beyond the engine's documented one-step-per-
//     worker granularity, wall-clock budgets stop the run promptly, and
//     a zero budget is either rejected (iterative solvers) or trivially
//     satisfied (zero-budget constructive heuristics);
//   - seed determinism: solvers that declare solver.Reproducible
//     reproduce bit-identical results for equal seeds under a
//     deterministic budget;
//   - cancellation: a cancelled context stops the run promptly, both
//     before and during the solve;
//   - goroutine hygiene: a completed solve leaves no goroutines behind.
//
// The kit lives in a non-test package so solver packages can run it in
// their own tests (see conformance_test.go for the canonical all-solver
// invocation).
package testkit

import (
	"sync"
	"testing"

	"gridsched/internal/etc"
)

var (
	instOnce sync.Once
	inst     *etc.Instance
	instErr  error
)

// Instance returns the shared conformance instance: a small (96×12)
// semi-consistent hi/lo matrix — big enough that every solver's
// machinery engages, small enough that the whole suite stays inside a
// -short test run. The instance is immutable and shared across
// subtests, mirroring how the service shares cached instances between
// concurrent jobs.
func Instance(tb testing.TB) *etc.Instance {
	tb.Helper()
	instOnce.Do(func() {
		inst, instErr = etc.Generate(etc.GenSpec{
			Class: etc.Class{Consistency: etc.SemiConsistent, TaskHet: etc.High, MachineHet: etc.Low},
			Tasks: 96, Machines: 12, Seed: 0xC0FFEE,
		})
	})
	if instErr != nil {
		tb.Fatalf("testkit: generating conformance instance: %v", instErr)
	}
	return inst
}
