package testkit

import (
	"context"
	"math"
	"testing"
	"time"

	"gridsched/internal/obs"
	"gridsched/internal/solver"
)

// Conformance budgets. EvalBudget exceeds every registered solver's
// initial-population evaluation count (the largest is 256: the 16×16
// cellular grid and the 4-island model), so the evaluation bound — not
// the initial evaluation — is what stops the run.
const (
	// EvalBudget is the deterministic evaluation budget used by the
	// validity, adherence and determinism checks.
	EvalBudget = 4000
	// EvalSlack is the permitted overshoot of the evaluation counter:
	// the shared engine checks EvalsExhausted before each breeding step,
	// so each concurrent worker may add one step's evaluation past the
	// bound — and a composite solver's child engines inherit the same
	// per-worker granularity, summed over its constituent lanes. 64
	// covers any plausible worker count either way; a solver that
	// ignores the budget overshoots by orders of magnitude more.
	EvalSlack = 64
	// WallBudget is the wall-clock budget of the duration-adherence
	// check; the engine's coarse polling may overshoot it by one sweep.
	WallBudget = 100 * time.Millisecond
	// WallSlack is the permitted overshoot of a wall-clock budget:
	// room for one sweep past the deadline poll plus scheduler skew on
	// race-instrumented CI runners. A solver that ignores MaxDuration
	// runs to ReturnGrace and fails loudly.
	WallSlack = 3 * time.Second
	// ReturnGrace is how long past its stop condition a solver may take
	// to wind down before the suite declares it unresponsive. Generous,
	// so race-instrumented CI runs do not flake.
	ReturnGrace = 10 * time.Second
	// ConformanceSeed seeds every run; determinism reruns reuse it.
	ConformanceSeed = 7
)

// RunConformance runs the full conformance suite against every solver
// currently registered, one subtest tree per name. Call it from a test
// whose binary links every solver package (blank imports).
func RunConformance(t *testing.T) {
	names := solver.Names()
	if len(names) == 0 {
		t.Fatal("testkit: no solvers registered — missing implementation imports?")
	}
	t.Logf("conformance over %d registered solvers: %v", len(names), names)
	for _, name := range names {
		t.Run(name, func(t *testing.T) { Conformance(t, name) })
	}
}

// Conformance runs every conformance property against one registered
// solver.
func Conformance(t *testing.T, name string) {
	s, err := solver.Lookup(name)
	if err != nil {
		t.Fatalf("Lookup(%q): %v", name, err)
	}
	if s.Name() != name {
		t.Fatalf("registered under %q but Name() = %q", name, s.Name())
	}
	if s.Describe() == "" {
		t.Errorf("Describe() is empty")
	}
	t.Run("ValidSchedule", func(t *testing.T) { checkValidSchedule(t, s) })
	t.Run("BudgetEvaluations", func(t *testing.T) { checkBudgetEvaluations(t, s) })
	t.Run("BudgetWallClock", func(t *testing.T) { checkBudgetWallClock(t, s) })
	t.Run("ZeroBudget", func(t *testing.T) { checkZeroBudget(t, s) })
	t.Run("SeedDeterminism", func(t *testing.T) { checkSeedDeterminism(t, s) })
	t.Run("Cancellation", func(t *testing.T) { checkCancellation(t, s) })
	t.Run("NoGoroutineLeak", func(t *testing.T) { checkNoGoroutineLeak(t, s) })
	t.Run("Observer", func(t *testing.T) { checkObserver(t, s) })
}

// solveOutcome is one bounded Solve call, joined with a deadline so a
// hanging solver fails the suite instead of wedging the test binary.
type solveOutcome struct {
	res *solver.Result
	err error
}

// boundedSolve runs Solve on its own goroutine and requires it to
// return within limit.
func boundedSolve(t *testing.T, s solver.Solver, ctx context.Context, b solver.Budget, limit time.Duration) solveOutcome {
	t.Helper()
	done := make(chan solveOutcome, 1)
	go func() {
		res, err := s.Solve(ctx, Instance(t), b)
		done <- solveOutcome{res, err}
	}()
	select {
	case out := <-done:
		return out
	case <-time.After(limit):
		t.Fatalf("Solve did not return within %v (budget %s)", limit, b)
		return solveOutcome{}
	}
}

// requireValidResult asserts the shared result contract: a complete,
// internally consistent best schedule with honest metrics.
func requireValidResult(t *testing.T, res *solver.Result) {
	t.Helper()
	if res == nil {
		t.Fatal("nil Result without error")
	}
	if res.Best == nil {
		t.Fatal("Result.Best is nil")
	}
	best := res.Best
	if !best.Complete() {
		t.Fatal("best schedule leaves tasks unassigned")
	}
	if err := best.Validate(); err != nil {
		t.Fatalf("best schedule fails validation: %v", err)
	}
	// The incremental fitness and the trust-nothing recomputation must
	// agree: this is the invariant every operator maintains.
	if inc, full := best.Makespan(), best.MakespanFull(); !approxEq(inc, full) {
		t.Fatalf("incremental makespan %v != full recomputation %v", inc, full)
	}
	if !approxEq(res.BestFitness, best.Makespan()) {
		t.Fatalf("BestFitness %v does not match Best.Makespan() %v", res.BestFitness, best.Makespan())
	}
	if res.Evaluations <= 0 {
		t.Fatalf("Evaluations = %d, want > 0", res.Evaluations)
	}
	if res.Duration < 0 {
		t.Fatalf("negative Duration %v", res.Duration)
	}
	if len(res.PerThread) > 0 {
		var sum int64
		for _, g := range res.PerThread {
			if g < 0 {
				t.Fatalf("negative per-thread generation count %v", res.PerThread)
			}
			sum += g
		}
		if sum != res.Generations {
			t.Fatalf("PerThread sums to %d, Generations = %d", sum, res.Generations)
		}
	}
}

func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	return diff <= 1e-9 || diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func seeded(s solver.Solver) solver.Solver { return solver.WithSeed(s, ConformanceSeed) }

func checkValidSchedule(t *testing.T, s solver.Solver) {
	out := boundedSolve(t, seeded(s), context.Background(), solver.Budget{MaxEvaluations: EvalBudget}, ReturnGrace)
	if out.err != nil {
		t.Fatalf("Solve: %v", out.err)
	}
	requireValidResult(t, out.res)
}

func checkBudgetEvaluations(t *testing.T, s solver.Solver) {
	const budget = 1500
	out := boundedSolve(t, seeded(s), context.Background(), solver.Budget{MaxEvaluations: budget}, ReturnGrace)
	if out.err != nil {
		t.Fatalf("Solve: %v", out.err)
	}
	requireValidResult(t, out.res)
	if out.res.Evaluations > budget+EvalSlack {
		t.Fatalf("Evaluations = %d exceeds budget %d beyond the %d-eval granularity allowance",
			out.res.Evaluations, budget, EvalSlack)
	}
	// Every family reports the bounds its engine actually enforced.
	// Constructive heuristics run a zero-budget engine (one pass, one
	// evaluation); every iterative run must echo the submitted bound.
	if got := out.res.EffectiveBudget.MaxEvaluations; got != budget && got != 0 {
		t.Fatalf("EffectiveBudget.MaxEvaluations = %d, want %d (or 0 for a zero-budget solver)", got, budget)
	}
	if out.res.Evaluations > 1 && out.res.EffectiveBudget.IsZero() {
		t.Fatalf("iterative solver reported a zero EffectiveBudget for a bounded run")
	}
}

func checkBudgetWallClock(t *testing.T, s solver.Solver) {
	start := time.Now()
	out := boundedSolve(t, seeded(s), context.Background(), solver.Budget{MaxDuration: WallBudget}, ReturnGrace)
	if out.err != nil {
		t.Fatalf("Solve: %v", out.err)
	}
	requireValidResult(t, out.res)
	if elapsed := time.Since(start); elapsed > WallBudget+WallSlack {
		t.Fatalf("wall budget %v, returned only after %v (beyond the %v slack)", WallBudget, elapsed, WallSlack)
	}
	t.Logf("wall budget %v, returned after %v", WallBudget, time.Since(start))
}

// checkZeroBudget pins the zero-budget contract: constructive
// heuristics complete instantly (the budget is meaningless for a
// single deterministic pass), iterative solvers must refuse to start an
// unbounded run.
func checkZeroBudget(t *testing.T, s solver.Solver) {
	out := boundedSolve(t, seeded(s), context.Background(), solver.Budget{}, ReturnGrace)
	if out.err != nil {
		return // rejected: the iterative-solver half of the contract
	}
	requireValidResult(t, out.res)
}

func checkSeedDeterminism(t *testing.T, s solver.Solver) {
	if !solver.IsReproducible(s) {
		t.Skip("solver does not declare seed reproducibility (timing-dependent parallel run)")
	}
	b := solver.Budget{MaxEvaluations: EvalBudget}
	first := boundedSolve(t, seeded(s), context.Background(), b, ReturnGrace)
	second := boundedSolve(t, seeded(s), context.Background(), b, ReturnGrace)
	if first.err != nil || second.err != nil {
		t.Fatalf("Solve: %v / %v", first.err, second.err)
	}
	requireValidResult(t, first.res)
	requireValidResult(t, second.res)
	if first.res.BestFitness != second.res.BestFitness {
		t.Fatalf("equal seeds, different fitness: %v vs %v", first.res.BestFitness, second.res.BestFitness)
	}
	if d := first.res.Best.HammingDistance(second.res.Best); d != 0 {
		t.Fatalf("equal seeds, best schedules differ in %d assignments", d)
	}
	if first.res.Evaluations != second.res.Evaluations {
		t.Fatalf("equal seeds, different evaluation counts: %d vs %d", first.res.Evaluations, second.res.Evaluations)
	}
	if first.res.Generations != second.res.Generations {
		t.Fatalf("equal seeds, different generation counts: %d vs %d", first.res.Generations, second.res.Generations)
	}
}

func checkCancellation(t *testing.T, s solver.Solver) {
	// Pre-cancelled context: the solver must notice before (or instead
	// of) doing real work, and must not hang.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	out := boundedSolve(t, seeded(s), pre, solver.Budget{MaxDuration: time.Hour}, ReturnGrace)
	if out.err == nil {
		requireValidResult(t, out.res) // a best-so-far is acceptable; garbage is not
	}

	// Mid-run cancellation: a run budgeted for an hour must come back
	// as soon as the engine's cancellation poll sees the cancel.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(25 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	out = boundedSolve(t, seeded(s), ctx, solver.Budget{MaxDuration: time.Hour}, ReturnGrace)
	if out.err == nil {
		requireValidResult(t, out.res)
	}
	t.Logf("cancelled after 25ms, returned after %v (err=%v)", time.Since(start), out.err)
}

// checkObserver pins the convergence-instrumentation contract: an
// observed run emits at least one incumbent improvement and exactly one
// terminal event consistent with its result, and observing changes no
// bit of the result relative to the unobserved run (the Observer hook
// must be read-only).
func checkObserver(t *testing.T, s solver.Solver) {
	if !solver.IsReproducible(s) {
		t.Skip("solver does not declare seed reproducibility (cannot compare observed vs unobserved runs)")
	}
	b := solver.Budget{MaxEvaluations: EvalBudget}
	plain := boundedSolve(t, seeded(s), context.Background(), b, ReturnGrace)
	rec := obs.NewRecorder(0)
	observed := boundedSolve(t, seeded(s), solver.WithObserver(context.Background(), rec), b, ReturnGrace)
	if plain.err != nil || observed.err != nil {
		t.Fatalf("Solve: %v / %v", plain.err, observed.err)
	}
	requireValidResult(t, plain.res)
	requireValidResult(t, observed.res)

	// Observation must be invisible to the run itself.
	if plain.res.BestFitness != observed.res.BestFitness {
		t.Errorf("observing changed the result: fitness %v vs %v", plain.res.BestFitness, observed.res.BestFitness)
	}
	if d := plain.res.Best.HammingDistance(observed.res.Best); d != 0 {
		t.Errorf("observing changed the best schedule in %d assignments", d)
	}
	if plain.res.Evaluations != observed.res.Evaluations {
		t.Errorf("observing changed the evaluation count: %d vs %d", plain.res.Evaluations, observed.res.Evaluations)
	}
	if plain.res.Generations != observed.res.Generations {
		t.Errorf("observing changed the generation count: %d vs %d", plain.res.Generations, observed.res.Generations)
	}

	events := rec.Events()
	var improvements []obs.RecordedEvent
	var dones []obs.RecordedEvent
	for _, e := range events {
		switch e.Kind {
		case "improved":
			improvements = append(improvements, e)
		case "done":
			dones = append(dones, e)
		default:
			t.Errorf("unknown event kind %q", e.Kind)
		}
		if e.Evals <= 0 || e.Evals > observed.res.Evaluations {
			t.Errorf("event %s at evals %d outside (0, %d]", e.Kind, e.Evals, observed.res.Evaluations)
		}
		if e.Elapsed < 0 {
			t.Errorf("event %s has negative elapsed %v", e.Kind, e.Elapsed)
		}
	}
	if len(improvements) == 0 {
		t.Fatal("observed run emitted no incumbent-improvement events")
	}
	if len(dones) != 1 {
		t.Fatalf("observed run emitted %d terminal events, want exactly 1", len(dones))
	}
	if events[len(events)-1].Kind != "done" {
		t.Error("terminal event is not the last event")
	}
	// The engine's shared-incumbent CAS admits only strict improvements.
	for i := 1; i < len(improvements); i++ {
		if improvements[i].Fitness >= improvements[i-1].Fitness {
			t.Errorf("improvement %d does not improve: %v after %v", i, improvements[i].Fitness, improvements[i-1].Fitness)
		}
	}
	if last := improvements[len(improvements)-1].Fitness; !approxEq(last, observed.res.BestFitness) {
		t.Errorf("last improvement %v does not match BestFitness %v", last, observed.res.BestFitness)
	}
	if !approxEq(dones[0].Fitness, observed.res.BestFitness) {
		t.Errorf("terminal event fitness %v does not match BestFitness %v", dones[0].Fitness, observed.res.BestFitness)
	}
}

func checkNoGoroutineLeak(t *testing.T, s solver.Solver) {
	verifyNoLeak(t, func() {
		out := boundedSolve(t, seeded(s), context.Background(), solver.Budget{MaxEvaluations: EvalBudget}, ReturnGrace)
		if out.err != nil {
			t.Fatalf("Solve: %v", out.err)
		}
	})
}
