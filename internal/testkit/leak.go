package testkit

import (
	"runtime"
	"testing"
	"time"
)

// verifyNoLeak snapshots the goroutine count, runs fn, and asserts the
// count settles back to (or below) the baseline. Worker goroutines take
// a moment to unwind after Solve returns — the engine joins its workers
// before returning, but the runtime needs a beat to retire them — so
// the check retries for a bounded window before dumping stacks.
func verifyNoLeak(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
