package testkit_test

import (
	"testing"

	"gridsched/internal/solver"
	"gridsched/internal/testkit"

	// Link every solver family so the registry the suite iterates is the
	// same full set the gridsched facade and the service see. A new
	// solver package added here (and to the facade) is conformance-
	// checked automatically — there is nothing else to write.
	_ "gridsched/internal/baselines"
	_ "gridsched/internal/core"
	_ "gridsched/internal/heuristics"
	_ "gridsched/internal/islands"
	_ "gridsched/internal/portfolio"
	_ "gridsched/internal/tabu"
)

// TestSolverConformance is the canonical all-solver conformance run:
// every name in solver.Names(), every property, no special cases.
func TestSolverConformance(t *testing.T) {
	testkit.RunConformance(t)
}

// TestRegistryCoversKnownFamilies fails loudly if a solver family
// drops out of the registry (a lost blank import, a renamed solver):
// the conformance suite iterating Names() would otherwise silently
// shrink with it.
func TestRegistryCoversKnownFamilies(t *testing.T) {
	for _, name := range []string{
		"pa-cga", "sync-cga", "struggle", "cma-lth", "generational",
		"islands", "tabu", "h2ll", "portfolio",
		"minmin", "maxmin", "sufferage", "mct", "met", "olb", "ljfr-sjfr",
	} {
		if _, err := solver.Lookup(name); err != nil {
			t.Errorf("expected solver %q missing from registry: %v", name, err)
		}
	}
}
