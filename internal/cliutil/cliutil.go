// Package cliutil holds the flag conventions shared by every command
// in cmd/, so service and CLI runs are reproducible the same way.
package cliutil

import "flag"

// DefaultSeed is the base random seed every command defaults to. It
// matches the registered solvers' default (seed 1), so a bare CLI run,
// a service job with seed 1 and a library call reproduce each other.
const DefaultSeed = 1

// SeedUsage is the shared help text of the -seed flag.
const SeedUsage = "base random seed; equal seeds reproduce equal runs, replication i derives seed+i"

// SeedFlag registers the uniform -seed flag on the default FlagSet.
func SeedFlag() *uint64 {
	return flag.Uint64("seed", DefaultSeed, SeedUsage)
}

// SeedSet reports whether -seed was set explicitly on the command
// line; call it after flag.Parse. Commands whose unset default is
// special (etcgen uses the instance's canonical seed) branch on this
// instead of overloading a magic seed value.
func SeedSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			set = true
		}
	})
	return set
}
