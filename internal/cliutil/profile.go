package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler wires the standard -cpuprofile/-memprofile flags into a
// command. Register before flag.Parse, Start after it, and defer Stop:
//
//	prof := cliutil.ProfileFlags()
//	flag.Parse()
//	if err := prof.Start(); err != nil { log.Fatal(err) }
//	defer prof.Stop()
//
// Both flags default to off; when unset Start and Stop are no-ops, so
// wiring the profiler costs nothing on ordinary runs. Stop is where the
// heap profile is written (after a final GC, so it reflects live data
// rather than transient garbage) — a command that exits through
// os.Exit or log.Fatal after Start skips deferred calls and loses the
// profiles, which is why Start/Stop errors are returned rather than
// handled internally: the command decides how to exit.
type Profiler struct {
	cpuPath *string
	memPath *string
	cpuOut  *os.File
}

// ProfileFlags registers -cpuprofile and -memprofile on the default
// FlagSet and returns the Profiler that drives them.
func ProfileFlags() *Profiler {
	return &Profiler{
		cpuPath: flag.String("cpuprofile", "", "write a CPU profile to this file (view with go tool pprof)"),
		memPath: flag.String("memprofile", "", "write a heap profile to this file on exit (view with go tool pprof)"),
	}
}

// Start begins CPU profiling if -cpuprofile was set. Call after
// flag.Parse.
func (p *Profiler) Start() error {
	if *p.cpuPath == "" {
		return nil
	}
	f, err := os.Create(*p.cpuPath)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.cpuOut = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile if -memprofile
// was set. Safe to call when profiling never started.
func (p *Profiler) Stop() error {
	if p.cpuOut != nil {
		pprof.StopCPUProfile()
		err := p.cpuOut.Close()
		p.cpuOut = nil
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if *p.memPath == "" {
		return nil
	}
	f, err := os.Create(*p.memPath)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC() // the heap profile should show live data, not garbage
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
