package instdb

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gridsched/internal/etc"
)

var suiteNames = []string{
	"u_c_hihi.0", "u_c_lolo.0@64x8", "u_i_hilo.0@64x8", "u_s_lohi.0@128x8",
}

func buildStore(t testing.TB, names []string) (*Store, []byte) {
	t.Helper()
	var buf bytes.Buffer
	st, err := Build(&buf, names)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if st.Instances != len(names) {
		t.Fatalf("Build reported %d instances, want %d", st.Instances, len(names))
	}
	store, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return store, buf.Bytes()
}

// TestRoundTripBitExact pins the acceptance criterion: build → decode →
// get yields instances bit-identical to on-demand generation, in every
// field solvers read.
func TestRoundTripBitExact(t *testing.T) {
	store, _ := buildStore(t, suiteNames)
	if got := store.Len(); got != len(suiteNames) {
		t.Fatalf("Len = %d, want %d", got, len(suiteNames))
	}
	for _, name := range suiteNames {
		in, ok := store.Get(name)
		if !ok {
			t.Fatalf("Get(%q) missing", name)
		}
		want, err := etc.GenerateByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if in.Name != want.Name || in.T != want.T || in.M != want.M || in.ClassTag != want.ClassTag {
			t.Fatalf("%q: identity fields drifted: got %q %dx%d %+v", name, in.Name, in.T, in.M, in.ClassTag)
		}
		if !floatsEqual(in.Row, want.Row) {
			t.Fatalf("%q: Row plane not bit-identical", name)
		}
		if !floatsEqual(in.Col, want.Col) {
			t.Fatalf("%q: Col plane not bit-identical", name)
		}
		if !floatsEqual(in.Ready, want.Ready) {
			t.Fatalf("%q: Ready not bit-identical", name)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("%q: Validate: %v", name, err)
		}
	}
	if _, ok := store.Get("u_c_hihi.7"); ok {
		t.Fatal("Get of an unstored name reported ok")
	}
	if err := store.Verify(true); err != nil {
		t.Fatalf("Verify(regen): %v", err)
	}
}

// TestDedup stores the same matrix under two names (the plain benchmark
// name and its explicit @512x16 spelling generate identical planes) and
// checks the data block holds it once.
func TestDedup(t *testing.T) {
	var buf bytes.Buffer
	st, err := Build(&buf, []string{"u_c_hihi.0", "u_c_hihi.0@512x16", "u_i_lolo.0@64x8"})
	if err != nil {
		t.Fatal(err)
	}
	if st.UniqueMatrices != 2 {
		t.Fatalf("UniqueMatrices = %d, want 2 (dedup failed)", st.UniqueMatrices)
	}
	wantData := int64((512*16 + 64*8) * 8)
	if st.DataBytes != wantData {
		t.Fatalf("DataBytes = %d, want %d", st.DataBytes, wantData)
	}
	store, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := store.Get("u_c_hihi.0")
	b, _ := store.Get("u_c_hihi.0@512x16")
	if a == nil || b == nil {
		t.Fatal("deduped instances missing")
	}
	// The two views must share backing storage, not merely agree.
	if &a.Row[0] != &b.Row[0] || &a.Col[0] != &b.Col[0] {
		t.Fatal("deduped instances do not share their planes")
	}
}

// TestGetAllocationFree pins the zero-copy contract: after Decode, Get
// allocates nothing.
func TestGetAllocationFree(t *testing.T) {
	store, _ := buildStore(t, suiteNames)
	allocs := testing.AllocsPerRun(1000, func() {
		for _, name := range suiteNames {
			if _, ok := store.Get(name); !ok {
				t.Fatal("missing instance")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Get allocated %.1f times per run, want 0", allocs)
	}
}

// TestBuildErrors covers the build-side input validation.
func TestBuildErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Build(&buf, nil); err == nil {
		t.Fatal("Build with no names succeeded")
	}
	if _, err := Build(&buf, []string{"u_c_hihi.0", "u_c_hihi.0"}); err == nil {
		t.Fatal("Build with duplicate names succeeded")
	}
	if _, err := Build(&buf, []string{"not-an-instance"}); err == nil {
		t.Fatal("Build with an unparsable name succeeded")
	}
}

// TestDecodeRejectsCorruption flips bytes across every block and checks
// Decode answers with an error — never a panic, never a bogus store.
func TestDecodeRejectsCorruption(t *testing.T) {
	_, img := buildStore(t, suiteNames)
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) succeeded")
	}
	if _, err := Decode(img[:HeaderSize-1]); err == nil {
		t.Fatal("Decode of a truncated header succeeded")
	}
	if _, err := Decode(img[:len(img)-9]); err == nil {
		t.Fatal("Decode of a truncated data block succeeded")
	}
	for _, off := range []int{0, 8, 20, 30, 40, 56, HeaderSize + 4, len(img) - 4} {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0xFF
		if st, err := Decode(bad); err == nil {
			// A flipped data byte that survives all structural checks must
			// at least fail the checksum; reaching here means nothing
			// caught it.
			t.Fatalf("Decode with byte %d corrupted returned a store of %d instances", off, st.Len())
		}
	}
	// A forged blob count pointing past the data block must be caught.
	bad := append([]byte(nil), img...)
	indexOff := binary.LittleEndian.Uint64(bad[32:])
	binary.LittleEndian.PutUint64(bad[indexOff+8:], math.MaxUint64/16)
	if _, err := Decode(bad); err == nil {
		t.Fatal("Decode with a forged blob count succeeded")
	}
}

// TestFileRoundTripAndReload exercises BuildFile/Open/Reload: an atomic
// rebuild with more instances becomes visible after Reload, a corrupt
// rewrite leaves the serving snapshot untouched, and snapshots taken
// before a reload stay valid.
func TestFileRoundTripAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.instdb")
	if _, err := BuildFile(path, suiteNames[:2]); err != nil {
		t.Fatal(err)
	}
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 || db.Path() != path {
		t.Fatalf("opened %d instances at %q", db.Len(), db.Path())
	}
	old := db.Snapshot()

	if _, err := BuildFile(path, suiteNames); err != nil {
		t.Fatal(err)
	}
	if err := db.Reload(); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if db.Len() != len(suiteNames) || db.Reloads() != 1 {
		t.Fatalf("after reload: %d instances, %d reloads", db.Len(), db.Reloads())
	}
	if _, ok := db.Get(suiteNames[3]); !ok {
		t.Fatal("reloaded corpus missing new instance")
	}
	// The pre-reload snapshot is still fully usable (RCU property).
	if in, ok := old.Get(suiteNames[0]); !ok || in.Validate() != nil {
		t.Fatal("old snapshot unusable after reload")
	}

	// A corrupt rewrite must not dethrone the serving snapshot.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.Reload(); err == nil {
		t.Fatal("Reload of a corrupt file succeeded")
	}
	if db.Len() != len(suiteNames) {
		t.Fatalf("corrupt reload replaced the snapshot: %d instances", db.Len())
	}
}
