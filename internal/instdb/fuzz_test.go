package instdb

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"sync"
	"testing"
)

// FuzzInstDB hammers Decode with hostile bytes: truncated and corrupt
// headers, out-of-bounds offsets and counts, forged metadata. The
// contract under attack is "error or valid store, never a panic" — and
// when a mutated image does decode, every instance it serves must still
// be structurally valid (the solvers trust what Get returns).
func FuzzInstDB(f *testing.F) {
	// Seed with a real store image plus systematic truncations and
	// single-byte corruptions of it, so the fuzzer starts on the format's
	// interesting surfaces instead of random noise.
	var buf bytes.Buffer
	if _, err := Build(&buf, []string{"u_c_hihi.0@32x4", "u_i_lolo.0@16x4", "u_s_hilo.0@32x4"}); err != nil {
		f.Fatal(err)
	}
	img := buf.Bytes()
	f.Add(img)
	for _, n := range []int{0, 7, 8, HeaderSize - 1, HeaderSize, HeaderSize + 9, len(img) / 2, len(img) - 1} {
		f.Add(img[:n])
	}
	for _, off := range []int{0, 9, 17, 25, 33, 41, 49, 57, HeaderSize + 3} {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0x5A
		f.Add(bad)
	}
	// A header claiming maximal blocks over a tiny body.
	huge := append([]byte(nil), img[:HeaderSize]...)
	for _, off := range []int{16, 24, 32, 40, 48, 56} {
		binary.LittleEndian.PutUint64(huge[off:], ^uint64(0)>>1)
	}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		for _, name := range st.Names() {
			in, ok := st.Get(name)
			if !ok || in == nil {
				t.Fatalf("listed instance %q not gettable", name)
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("decoded store served an invalid instance %q: %v", name, err)
			}
		}
	})
}

// TestConcurrentGetDuringReload is the -race hammer for the RCU swap:
// readers resolve instances full-tilt while another goroutine reloads
// the corpus (alternating between two builds) as fast as it can. Any
// torn pointer, freed-under-reader arena or map race trips the
// detector.
func TestConcurrentGetDuringReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hammer.instdb")
	small := []string{"u_c_hihi.0@32x4", "u_i_lolo.0@16x4"}
	big := append(append([]string(nil), small...), "u_s_hilo.0@32x4", "u_c_lolo.0@16x4")
	if _, err := BuildFile(path, small); err != nil {
		t.Fatal(err)
	}
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}

	const reloads = 50
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The small names exist in both corpora: every read must
				// succeed regardless of which snapshot it lands on.
				for _, name := range small {
					in, ok := db.Get(name)
					if !ok {
						t.Error("instance vanished during reload")
						return
					}
					if in.Row[0] <= 0 {
						t.Error("unreadable plane during reload")
						return
					}
				}
				snap := db.Snapshot()
				for _, name := range snap.Names() {
					if _, ok := snap.Get(name); !ok {
						t.Error("snapshot inconsistent with its own name list")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < reloads; i++ {
		names := small
		if i%2 == 0 {
			names = big
		}
		if _, err := BuildFile(path, names); err != nil {
			t.Fatal(err)
		}
		if err := db.Reload(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if got := db.Reloads(); got != reloads {
		t.Fatalf("Reloads = %d, want %d", got, reloads)
	}
}
