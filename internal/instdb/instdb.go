// Package instdb implements a compact single-file binary repository of
// pre-generated ETC instances — the service-side replacement for
// regenerating benchmark matrices behind one LRU cache. A store file
// holds thousands of matrices behind three blocks:
//
//	+----------------------------------------------------------------+
//	| fixed 64-byte header (magic, version, block offsets)           |
//	+----------------------------------------------------------------+
//	| length-prefixed JSON metadata (build time, per-instance         |
//	| name/class/dims/seed, data checksum)                            |
//	+----------------------------------------------------------------+
//	| offset index: one (offset, count) pair per unique matrix        |
//	+----------------------------------------------------------------+
//	| data block: raw little-endian float64 planes, deduplicated      |
//	+----------------------------------------------------------------+
//
// Identical matrices are stored once (dedup): every instance's
// metadata names a blob in the offset index, and any number of
// instances may share one blob. At open time the data block is decoded
// into a single contiguous arena and every instance becomes a
// zero-copy etc.Instance view into it — Get is a map lookup returning
// a shared pointer, allocation-free and safe for concurrent use.
//
// DB wraps a Store with atomic hot-reload (open-new / swap-pointer /
// let-the-GC-collect-old under an RCU-style atomic.Pointer guard), so
// a long-running service replica picks up a regenerated corpus without
// restart: readers that loaded the old snapshot keep using it safely
// while new lookups see the new one.
package instdb

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"gridsched/internal/etc"
)

// Format constants. The magic is 8 bytes so the header reads as eight
// aligned 64-bit words.
const (
	// Magic opens every store file.
	Magic = "GSINSTDB"
	// Version is the current format version.
	Version = 1
	// HeaderSize is the fixed header length in bytes.
	HeaderSize = 64

	// maxInstances bounds the instance count a hostile metadata block
	// can claim; far above any real corpus, low enough that decode work
	// stays proportional to the file.
	maxInstances = 1 << 20
	// maxMatrixEntries mirrors the etc package's external-input ceiling
	// on tasks×machines.
	maxMatrixEntries = 1 << 24
)

// header is the decoded fixed header.
type header struct {
	version    uint32
	metaOff    uint64 // offset of the uint64 length prefix
	metaLen    uint64 // JSON byte length (excludes the prefix)
	indexOff   uint64
	indexCount uint64 // unique blobs
	dataOff    uint64 // 8-aligned
	dataLen    uint64 // bytes
}

// fileMeta is the JSON metadata block.
type fileMeta struct {
	Format    string     `json:"format"`
	Version   int        `json:"version"`
	BuildUnix int64      `json:"build_unix"`
	DataFNV   uint64     `json:"data_fnv64"`
	Instances []instMeta `json:"instances"`
}

// instMeta describes one stored instance; Blob indexes the offset
// table.
type instMeta struct {
	Name     string `json:"name"`
	Class    string `json:"class,omitempty"`
	Tasks    int    `json:"tasks"`
	Machines int    `json:"machines"`
	Seed     uint64 `json:"seed,omitempty"`
	Blob     int    `json:"blob"`
}

// blobRef is one offset-index entry: a unique matrix inside the data
// block. Off is a byte offset relative to the data block start (always
// a multiple of 8); Count is the plane length in float64 values.
type blobRef struct {
	Off   uint64
	Count uint64
}

// BuildStats summarizes what Build wrote.
type BuildStats struct {
	// Instances is the number of stored instance records.
	Instances int
	// UniqueMatrices is the number of deduplicated data blobs.
	UniqueMatrices int
	// DataBytes is the data block size; Dedup saved
	// (Instances' total plane bytes − DataBytes).
	DataBytes int64
	// FileBytes is the total file size.
	FileBytes int64
}

// Build generates every named instance through etc.GenerateByName and
// writes a store file to w. Names must be benchmark instance names
// ("u_c_hihi.0", optionally sized "u_c_hihi.0@128x8"); duplicates are
// rejected. Identical matrices (two names generating the same plane)
// share one data blob.
func Build(w io.Writer, names []string) (BuildStats, error) {
	if len(names) == 0 {
		return BuildStats{}, fmt.Errorf("instdb: no instance names to build")
	}
	if len(names) > maxInstances {
		return BuildStats{}, fmt.Errorf("instdb: %d instances exceed the %d limit", len(names), maxInstances)
	}
	meta := fileMeta{
		Format:    "gridsched-instdb",
		Version:   Version,
		BuildUnix: time.Now().Unix(),
	}
	var (
		blobs    []blobRef
		data     []byte
		seen     = make(map[string]bool, len(names))
		byDigest = make(map[uint64][]int) // row digest -> candidate blob ids
		rows     [][]float64              // per-blob row plane, for collision checks
	)
	for _, name := range names {
		if seen[name] {
			return BuildStats{}, fmt.Errorf("instdb: duplicate instance name %q", name)
		}
		seen[name] = true
		in, err := etc.GenerateByName(name)
		if err != nil {
			return BuildStats{}, fmt.Errorf("instdb: generating %q: %w", name, err)
		}
		cl, _, _, _ := etc.ParseSizedName(name)
		digest := rowDigest(in.T, in.M, in.Row)
		blob := -1
		for _, cand := range byDigest[digest] {
			if floatsEqual(rows[cand], in.Row) {
				blob = cand
				break
			}
		}
		if blob < 0 {
			blob = len(blobs)
			off := uint64(len(data))
			data = appendFloats(data, in.Row)
			blobs = append(blobs, blobRef{Off: off, Count: uint64(len(in.Row))})
			rows = append(rows, in.Row)
			byDigest[digest] = append(byDigest[digest], blob)
		}
		meta.Instances = append(meta.Instances, instMeta{
			Name:     in.Name,
			Class:    cl.Name(),
			Tasks:    in.T,
			Machines: in.M,
			Seed:     etc.ClassSeed(cl),
			Blob:     blob,
		})
	}
	meta.DataFNV = fnv64a(data)

	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return BuildStats{}, fmt.Errorf("instdb: encoding metadata: %w", err)
	}
	var (
		metaOff  = uint64(HeaderSize)
		indexOff = align8(metaOff + 8 + uint64(len(metaJSON)))
		dataOff  = align8(indexOff + uint64(len(blobs))*16)
	)
	h := header{
		version:    Version,
		metaOff:    metaOff,
		metaLen:    uint64(len(metaJSON)),
		indexOff:   indexOff,
		indexCount: uint64(len(blobs)),
		dataOff:    dataOff,
		dataLen:    uint64(len(data)),
	}
	buf := make([]byte, dataOff+uint64(len(data)))
	copy(buf, Magic)
	binary.LittleEndian.PutUint32(buf[8:], h.version)
	binary.LittleEndian.PutUint64(buf[16:], h.metaOff)
	binary.LittleEndian.PutUint64(buf[24:], h.metaLen)
	binary.LittleEndian.PutUint64(buf[32:], h.indexOff)
	binary.LittleEndian.PutUint64(buf[40:], h.indexCount)
	binary.LittleEndian.PutUint64(buf[48:], h.dataOff)
	binary.LittleEndian.PutUint64(buf[56:], h.dataLen)
	binary.LittleEndian.PutUint64(buf[metaOff:], h.metaLen)
	copy(buf[metaOff+8:], metaJSON)
	for i, b := range blobs {
		binary.LittleEndian.PutUint64(buf[indexOff+uint64(i)*16:], b.Off)
		binary.LittleEndian.PutUint64(buf[indexOff+uint64(i)*16+8:], b.Count)
	}
	copy(buf[dataOff:], data)
	if _, err := w.Write(buf); err != nil {
		return BuildStats{}, err
	}
	return BuildStats{
		Instances:      len(meta.Instances),
		UniqueMatrices: len(blobs),
		DataBytes:      int64(len(data)),
		FileBytes:      int64(len(buf)),
	}, nil
}

// BuildFile builds to path atomically: the file is written to a
// temporary sibling and renamed into place, so a reader (or a reloading
// service replica) never observes a torn store.
func BuildFile(path string, names []string) (BuildStats, error) {
	tmp, err := os.CreateTemp(dirOf(path), ".instdb-*")
	if err != nil {
		return BuildStats{}, err
	}
	defer os.Remove(tmp.Name())
	st, err := Build(tmp, names)
	if err != nil {
		tmp.Close()
		return BuildStats{}, err
	}
	if err := tmp.Close(); err != nil {
		return BuildStats{}, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return BuildStats{}, err
	}
	return st, nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// Store is one decoded, immutable store snapshot. All lookups are
// zero-copy views into a single float64 arena decoded at open time;
// Get performs no allocation and is safe for unbounded concurrency.
type Store struct {
	meta    fileMeta
	names   []string // sorted
	byName  map[string]*etc.Instance
	unique  int
	dataLen int64
}

// Decode parses a complete store image. It is hardened against hostile
// input: every offset, length, count and dimension is bounds-checked
// before use, and the worst a corrupt file yields is an error — never
// a panic or an allocation proportional to a forged header field.
func Decode(buf []byte) (*Store, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	metaJSON := buf[h.metaOff+8 : h.metaOff+8+h.metaLen]
	var meta fileMeta
	if err := json.Unmarshal(metaJSON, &meta); err != nil {
		return nil, fmt.Errorf("instdb: decoding metadata: %w", err)
	}
	if meta.Version != Version {
		return nil, fmt.Errorf("instdb: metadata version %d, want %d", meta.Version, Version)
	}
	if len(meta.Instances) == 0 {
		return nil, fmt.Errorf("instdb: store holds no instances")
	}
	if len(meta.Instances) > maxInstances {
		return nil, fmt.Errorf("instdb: %d instances exceed the %d limit", len(meta.Instances), maxInstances)
	}
	data := buf[h.dataOff : h.dataOff+h.dataLen]
	if got := fnv64a(data); got != meta.DataFNV {
		return nil, fmt.Errorf("instdb: data checksum %#x, metadata records %#x", got, meta.DataFNV)
	}

	// Offset index: strictly in-bounds, 8-aligned blob extents.
	blobs := make([]blobRef, h.indexCount)
	for i := range blobs {
		off := binary.LittleEndian.Uint64(buf[h.indexOff+uint64(i)*16:])
		count := binary.LittleEndian.Uint64(buf[h.indexOff+uint64(i)*16+8:])
		if off%8 != 0 || off > h.dataLen || count > (h.dataLen-off)/8 {
			return nil, fmt.Errorf("instdb: blob %d extent (%d,+%d×8) outside the %d-byte data block", i, off, count, h.dataLen)
		}
		blobs[i] = blobRef{Off: off, Count: count}
	}

	// Decode the whole data block into one contiguous arena; every
	// instance view aliases it.
	arena := make([]float64, h.dataLen/8)
	for i := range arena {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		if !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("instdb: data value %d = %v is not a positive finite ETC entry", i, v)
		}
		arena[i] = v
	}

	st := &Store{
		meta:    meta,
		byName:  make(map[string]*etc.Instance, len(meta.Instances)),
		unique:  len(blobs),
		dataLen: int64(h.dataLen),
	}
	// Derive the transposed plane once per (blob, dims): instances that
	// share a matrix share its column plane too.
	type dimKey struct {
		blob, t, m int
	}
	cols := make(map[dimKey][]float64)
	zeros := make(map[int][]float64)
	for _, im := range meta.Instances {
		if im.Name == "" {
			return nil, fmt.Errorf("instdb: instance with empty name")
		}
		if _, dup := st.byName[im.Name]; dup {
			return nil, fmt.Errorf("instdb: duplicate instance name %q", im.Name)
		}
		if im.Tasks <= 0 || im.Machines <= 0 || im.Tasks > maxMatrixEntries/im.Machines {
			return nil, fmt.Errorf("instdb: instance %q has hostile dimensions %dx%d", im.Name, im.Tasks, im.Machines)
		}
		if im.Blob < 0 || im.Blob >= len(blobs) {
			return nil, fmt.Errorf("instdb: instance %q names blob %d of %d", im.Name, im.Blob, len(blobs))
		}
		b := blobs[im.Blob]
		if uint64(im.Tasks)*uint64(im.Machines) != b.Count {
			return nil, fmt.Errorf("instdb: instance %q is %dx%d but blob %d holds %d values",
				im.Name, im.Tasks, im.Machines, im.Blob, b.Count)
		}
		row := arena[b.Off/8 : b.Off/8+b.Count]
		key := dimKey{im.Blob, im.Tasks, im.Machines}
		col, ok := cols[key]
		if !ok {
			col = make([]float64, len(row))
			for t := 0; t < im.Tasks; t++ {
				for m := 0; m < im.Machines; m++ {
					col[m*im.Tasks+t] = row[t*im.Machines+m]
				}
			}
			cols[key] = col
		}
		ready, ok := zeros[im.Machines]
		if !ok {
			ready = make([]float64, im.Machines)
			zeros[im.Machines] = ready
		}
		inst := &etc.Instance{
			Name:  im.Name,
			T:     im.Tasks,
			M:     im.Machines,
			Row:   row,
			Col:   col,
			Ready: ready,
		}
		if cl, _, _, perr := etc.ParseSizedName(im.Name); perr == nil {
			inst.ClassTag = cl
		}
		st.byName[im.Name] = inst
		st.names = append(st.names, im.Name)
	}
	sort.Strings(st.names)
	return st, nil
}

// decodeHeader validates the fixed header against the buffer bounds.
func decodeHeader(buf []byte) (header, error) {
	var h header
	if len(buf) < HeaderSize {
		return h, fmt.Errorf("instdb: %d bytes is shorter than the %d-byte header", len(buf), HeaderSize)
	}
	if string(buf[:8]) != Magic {
		return h, fmt.Errorf("instdb: bad magic %q", buf[:8])
	}
	h.version = binary.LittleEndian.Uint32(buf[8:])
	if h.version != Version {
		return h, fmt.Errorf("instdb: format version %d, want %d", h.version, Version)
	}
	h.metaOff = binary.LittleEndian.Uint64(buf[16:])
	h.metaLen = binary.LittleEndian.Uint64(buf[24:])
	h.indexOff = binary.LittleEndian.Uint64(buf[32:])
	h.indexCount = binary.LittleEndian.Uint64(buf[40:])
	h.dataOff = binary.LittleEndian.Uint64(buf[48:])
	h.dataLen = binary.LittleEndian.Uint64(buf[56:])

	n := uint64(len(buf))
	// Each block must lie inside the buffer; the arithmetic is ordered
	// so no sum can overflow before its bound is checked.
	if h.metaOff < HeaderSize || h.metaOff > n || n-h.metaOff < 8 || h.metaLen > n-h.metaOff-8 {
		return h, fmt.Errorf("instdb: metadata block (%d,+%d) outside the %d-byte file", h.metaOff, h.metaLen, n)
	}
	if prefix := binary.LittleEndian.Uint64(buf[h.metaOff:]); prefix != h.metaLen {
		return h, fmt.Errorf("instdb: metadata length prefix %d disagrees with header %d", prefix, h.metaLen)
	}
	if h.indexOff > n || h.indexCount > (n-h.indexOff)/16 {
		return h, fmt.Errorf("instdb: offset index (%d,×%d) outside the %d-byte file", h.indexOff, h.indexCount, n)
	}
	if h.indexCount > maxInstances {
		return h, fmt.Errorf("instdb: %d blobs exceed the %d limit", h.indexCount, maxInstances)
	}
	if h.dataOff%8 != 0 || h.dataOff > n || h.dataLen > n-h.dataOff || h.dataLen%8 != 0 {
		return h, fmt.Errorf("instdb: data block (%d,+%d) malformed for a %d-byte file", h.dataOff, h.dataLen, n)
	}
	return h, nil
}

// Get returns the named instance view, or false when the store does not
// hold it. The returned instance aliases the store's arena and must be
// treated as immutable (as all instances are). Get allocates nothing.
func (s *Store) Get(name string) (*etc.Instance, bool) {
	in, ok := s.byName[name]
	return in, ok
}

// Names lists the stored instance names, sorted.
func (s *Store) Names() []string { return s.names }

// Len is the number of stored instances.
func (s *Store) Len() int { return len(s.byName) }

// BuildTime is when the store was built.
func (s *Store) BuildTime() time.Time { return time.Unix(s.meta.BuildUnix, 0) }

// Stats summarizes a decoded store.
type StoreStats struct {
	Instances      int
	UniqueMatrices int
	DataBytes      int64
	BuildTime      time.Time
}

// Stats reports the store's shape.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Instances:      len(s.byName),
		UniqueMatrices: s.unique,
		DataBytes:      s.dataLen,
		BuildTime:      s.BuildTime(),
	}
}

// Verify revalidates every instance of a decoded store structurally
// (etc.Instance.Validate: positive finite entries, mutually transposed
// planes). When regen is true it additionally regenerates each instance
// through etc.GenerateByName and requires bit-exact equality — the
// strongest possible check that a corpus file still matches what
// on-demand generation would produce.
func (s *Store) Verify(regen bool) error {
	for _, name := range s.names {
		in := s.byName[name]
		if err := in.Validate(); err != nil {
			return fmt.Errorf("instdb: instance %q: %w", name, err)
		}
		if !regen {
			continue
		}
		want, err := etc.GenerateByName(name)
		if err != nil {
			return fmt.Errorf("instdb: instance %q is not regenerable: %w", name, err)
		}
		if in.T != want.T || in.M != want.M || in.ClassTag != want.ClassTag {
			return fmt.Errorf("instdb: instance %q shape/class drifted from regeneration", name)
		}
		if !floatsEqual(in.Row, want.Row) || !floatsEqual(in.Col, want.Col) {
			return fmt.Errorf("instdb: instance %q is not bit-identical to regeneration", name)
		}
	}
	return nil
}

// DB is a reloadable handle on a store file. Readers call Get on the
// current snapshot through an atomic pointer (the RCU guard): Reload
// opens and fully validates the new file, swaps the pointer, and the
// old snapshot stays valid for any reader that already holds it until
// the GC collects it — no locks anywhere on the read path.
type DB struct {
	path    string
	cur     atomic.Pointer[Store]
	reloads atomic.Int64
}

// Open reads, decodes and validates the store file at path.
func Open(path string) (*DB, error) {
	st, err := decodeFile(path)
	if err != nil {
		return nil, err
	}
	db := &DB{path: path}
	db.cur.Store(st)
	return db, nil
}

func decodeFile(path string) (*Store, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}

// Get looks the name up in the current snapshot.
func (db *DB) Get(name string) (*etc.Instance, bool) { return db.cur.Load().Get(name) }

// Snapshot returns the current store snapshot; it stays valid (and
// immutable) across any number of subsequent reloads.
func (db *DB) Snapshot() *Store { return db.cur.Load() }

// Len is the instance count of the current snapshot.
func (db *DB) Len() int { return db.cur.Load().Len() }

// Path is the file the DB (re)loads from.
func (db *DB) Path() string { return db.path }

// Reload re-opens the store file and atomically swaps it in. On any
// error the current snapshot stays in place — a half-written or corrupt
// regeneration can never take down a serving replica.
func (db *DB) Reload() error {
	st, err := decodeFile(db.path)
	if err != nil {
		return err
	}
	db.cur.Store(st)
	db.reloads.Add(1)
	return nil
}

// Reloads counts successful Reload calls.
func (db *DB) Reloads() int64 { return db.reloads.Load() }

// appendFloats appends the little-endian encoding of vals.
func appendFloats(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// rowDigest hashes a plane with its dimensions for dedup candidate
// lookup; equality is always confirmed on the raw values.
func rowDigest(t, m int, row []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(t)<<32|uint64(m))
	h.Write(b[:])
	for _, v := range row {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return h.Sum64()
}

func fnv64a(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// floatsEqual compares two planes bit-for-bit.
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if math.Float64bits(v) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func align8(n uint64) uint64 { return (n + 7) &^ 7 }
