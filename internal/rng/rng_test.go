package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincided %d/1000 times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(7).Split(3)
	b := New(7).Split(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("identical splits diverged at step %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c0 := parent.Split(0)
	parent2 := New(7)
	c1 := parent2.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if c0.Uint64() == c1.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling splits coincided %d/1000 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(99)
	for _, n := range []int{1, 2, 3, 7, 10, 16, 256, 512, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square check over 16 buckets; loose threshold to avoid flakes.
	r := New(2024)
	const buckets = 16
	const samples = 160000
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// df=15, p=0.001 critical value is ~37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-square %f too large; counts=%v", chi2, counts)
	}
}

func TestFloat64Range01(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(6)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %f far from 0.5", mean)
	}
}

func TestFloat64RangeProperty(t *testing.T) {
	r := New(8)
	f := func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		if hi < lo {
			lo, hi = hi, lo
		}
		if math.IsInf(hi-lo, 0) {
			return true // range width overflows float64; out of scope
		}
		v := r.Float64Range(lo, hi)
		return v >= lo && (v <= hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(10)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %f", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 5, 16, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(12)
	xs := []int{1, 1, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, v := range xs {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestZeroStateFixup(t *testing.T) {
	// New must never produce an all-zero internal state: an all-zero
	// xoshiro stream is stuck at zero forever.
	for _, seed := range []uint64{0, 1, math.MaxUint64} {
		r := New(seed)
		zeros := 0
		for i := 0; i < 16; i++ {
			if r.Uint64() == 0 {
				zeros++
			}
		}
		if zeros == 16 {
			t.Fatalf("seed %d produced a stuck-at-zero stream", seed)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn16(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(16)
	}
	_ = sink
}
