// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the PA-CGA reproduction.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through
// splitmix64. It is intentionally not safe for concurrent use: the parallel
// cellular GA hands every worker goroutine its own stream, derived
// deterministically from a root seed with Split, so runs with an
// evaluation-budget stop condition are bit-reproducible regardless of
// thread interleaving.
package rng

import "math/bits"

// Rand is a deterministic xoshiro256** stream. The zero value is not
// usable; construct streams with New or Split.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used only to expand seeds into full xoshiro states, as recommended by
// the xoshiro authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from seed. Distinct seeds yield streams that
// are, for all practical purposes, uncorrelated.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state; splitmix64 cannot
	// produce four consecutive zeros, so no further check is required, but
	// we keep a defensive fix-up for clarity.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split deterministically derives an independent child stream. The child's
// seed mixes the parent's next output with the child index, so
// Split(0..n-1) from a fixed parent state produces a stable family of
// streams — this is how per-worker RNGs are created.
func (r *Rand) Split(index uint64) *Rand {
	base := r.Uint64()
	sm := base ^ (0x9e3779b97f4a7c15 * (index + 1))
	child := &Rand{}
	for i := range child.s {
		child.s[i] = splitmix64(&sm)
	}
	return child
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling with rejection to make
	// the distribution exactly uniform.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Range returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *Rand) Float64Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Float64Range with hi < lo")
	}
	return lo + r.Float64()*(hi-lo)
}

// Bool returns true with probability p. Probabilities outside [0,1] clamp
// to always-false / always-true, which lets callers use p=1.0 operators
// (as the paper does) without a special case.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element index weighting all n equally;
// it is sugar for Intn that reads better at call sites selecting tasks or
// machines.
func (r *Rand) Pick(n int) int { return r.Intn(n) }
