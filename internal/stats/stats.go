// Package stats provides the descriptive statistics and significance
// machinery behind the paper's evaluation: means over replicated runs
// (Table 2), evaluation-based speedup (Eq. 5, Fig. 4), notched box-plot
// summaries whose non-overlapping notches imply a 95 % median difference
// (Fig. 5), and the Mann-Whitney/Wilcoxon rank-sum test used to state
// "tpx/10 performs better than opx/5 with statistical significance".
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator); 0 for
// fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min and Max return the extremes; NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value; NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (R type-7, the convention of
// MATLAB's boxplot, which the paper's figures use). xs need not be
// sorted. NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// BoxPlot is the five-number summary plus the 95 % median notch interval
// of a sample, as drawn by a MATLAB-style notched box plot.
type BoxPlot struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	// NotchLo and NotchHi bound the 95 % confidence interval of the
	// median: median ± 1.57·IQR/√n. When two boxes' notches do not
	// overlap, their true medians differ at ~95 % confidence — the
	// criterion §4.2 applies to Fig. 5.
	NotchLo, NotchHi float64
	// WhiskerLo and WhiskerHi are the most extreme points within
	// 1.5·IQR of the quartiles; values beyond them are Outliers.
	WhiskerLo, WhiskerHi float64
	Outliers             []float64
}

// NewBoxPlot summarizes the sample. It returns an error for empty input.
func NewBoxPlot(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, fmt.Errorf("stats: box plot of empty sample")
	}
	b := BoxPlot{
		N:      len(xs),
		Min:    Min(xs),
		Q1:     Quantile(xs, 0.25),
		Median: Median(xs),
		Q3:     Quantile(xs, 0.75),
		Max:    Max(xs),
	}
	iqr := b.Q3 - b.Q1
	notch := 1.57 * iqr / math.Sqrt(float64(len(xs)))
	b.NotchLo, b.NotchHi = b.Median-notch, b.Median+notch
	loFence, hiFence := b.Q1-1.5*iqr, b.Q3+1.5*iqr
	b.WhiskerLo, b.WhiskerHi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if x < b.WhiskerLo {
			b.WhiskerLo = x
		}
		if x > b.WhiskerHi {
			b.WhiskerHi = x
		}
	}
	// All points can be outliers only in degenerate cases; fall back to
	// the quartiles so the box still renders.
	if math.IsInf(b.WhiskerLo, 1) {
		b.WhiskerLo, b.WhiskerHi = b.Q1, b.Q3
	}
	sort.Float64s(b.Outliers)
	return b, nil
}

// NotchesOverlap reports whether the 95 % median notches of two box
// plots overlap. Non-overlap is the paper's visual significance test.
func NotchesOverlap(a, b BoxPlot) bool {
	return a.NotchLo <= b.NotchHi && b.NotchLo <= a.NotchHi
}

// RankSum performs the two-sided Mann-Whitney/Wilcoxon rank-sum test
// with the normal approximation (with tie correction and continuity
// correction). It returns the U statistic for xs and the two-sided
// p-value. Sample sizes of at least ~8 make the approximation sound —
// the paper's experiments use 100 runs per configuration.
func RankSum(xs, ys []float64) (u float64, p float64, err error) {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return 0, 0, fmt.Errorf("stats: rank-sum with empty sample")
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range xs {
		all = append(all, obs{v, 0})
	}
	for _, v := range ys {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks to ties and accumulate the tie correction term.
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1)*float64(n1+1)/2
	mu := float64(n1) * float64(n2) / 2
	n := float64(n1 + n2)
	sigma2 := float64(n1) * float64(n2) / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		// All observations identical: no evidence of difference.
		return u1, 1, nil
	}
	z := u1 - mu
	// Continuity correction toward the mean.
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(sigma2)
	p = 2 * normalSF(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return u1, p, nil
}

// normalSF is the standard normal survival function 1 - Φ(x).
func normalSF(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// SignificantlyLess reports whether xs is stochastically smaller than ys
// at the given significance level: a two-sided rank-sum p below alpha
// with the xs median on the smaller side. This is the package's
// formalization of "A performs better than B with statistical
// significance" for minimized makespans.
func SignificantlyLess(xs, ys []float64, alpha float64) (bool, error) {
	_, p, err := RankSum(xs, ys)
	if err != nil {
		return false, err
	}
	return p < alpha && Median(xs) < Median(ys), nil
}

// Speedup is the paper's Eq. 5: the ratio of evaluations completed with n
// threads to evaluations completed with one thread in the same wall
// time, expressed as in Fig. 4 (percent, so 100 means parity).
func Speedup(evalsN, evals1 float64) float64 {
	if evals1 == 0 {
		return math.NaN()
	}
	return evalsN / evals1 * 100
}

// Summary is a compact per-sample report used by the experiment tables.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
	}
}
