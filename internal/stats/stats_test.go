package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"gridsched/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("mean of empty not NaN")
	}
	if got := Mean([]float64{7}); got != 7 {
		t.Fatalf("singleton mean %v", got)
	}
}

func TestStdDev(t *testing.T) {
	// Sample std of {2,4,4,4,5,5,7,9} with n-1 is ~2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !almost(got, 2.13809, 1e-4) {
		t.Fatalf("std %v", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("singleton std not 0")
	}
	if StdDev([]float64{3, 3, 3}) != 0 {
		t.Fatal("constant sample std not 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max %v %v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty extremes not NaN")
	}
}

func TestQuantileType7(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// R type-7: quantile(0.25) = 1.75, median = 2.5, quantile(0.75) = 3.25.
	if got := Quantile(xs, 0.25); !almost(got, 1.75, 1e-12) {
		t.Fatalf("q1 %v", got)
	}
	if got := Median(xs); !almost(got, 2.5, 1e-12) {
		t.Fatalf("median %v", got)
	}
	if got := Quantile(xs, 0.75); !almost(got, 3.25, 1e-12) {
		t.Fatalf("q3 %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1.0 %v", got)
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Fatal("out-of-range q not NaN")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := rr.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestBoxPlotBasic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 10 || b.Min != 1 || b.Max != 10 {
		t.Fatalf("summary %+v", b)
	}
	if !almost(b.Median, 5.5, 1e-12) {
		t.Fatalf("median %v", b.Median)
	}
	if b.NotchLo >= b.Median || b.NotchHi <= b.Median {
		t.Fatal("notch does not bracket the median")
	}
	if len(b.Outliers) != 0 {
		t.Fatalf("unexpected outliers %v", b.Outliers)
	}
	if b.WhiskerLo != 1 || b.WhiskerHi != 10 {
		t.Fatalf("whiskers %v %v", b.WhiskerLo, b.WhiskerHi)
	}
}

func TestBoxPlotOutliers(t *testing.T) {
	xs := []float64{10, 11, 12, 13, 14, 15, 16, 100}
	b, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers %v", b.Outliers)
	}
	if b.WhiskerHi != 16 {
		t.Fatalf("upper whisker %v includes the outlier", b.WhiskerHi)
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	if _, err := NewBoxPlot(nil); err == nil {
		t.Fatal("accepted empty sample")
	}
}

func TestBoxPlotConstantSample(t *testing.T) {
	b, err := NewBoxPlot([]float64{4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.Median != 4 || b.NotchLo != 4 || b.NotchHi != 4 {
		t.Fatalf("constant sample summary %+v", b)
	}
}

func TestNotchesOverlap(t *testing.T) {
	mk := func(vals []float64) BoxPlot {
		b, err := NewBoxPlot(vals)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// Two clearly separated samples.
	lo := make([]float64, 50)
	hi := make([]float64, 50)
	r := rng.New(3)
	for i := range lo {
		lo[i] = 10 + r.Float64()
		hi[i] = 20 + r.Float64()
	}
	if NotchesOverlap(mk(lo), mk(hi)) {
		t.Fatal("separated samples report overlapping notches")
	}
	// A sample overlaps itself.
	if !NotchesOverlap(mk(lo), mk(lo)) {
		t.Fatal("identical samples report disjoint notches")
	}
}

func TestRankSumDetectsShift(t *testing.T) {
	r := rng.New(4)
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64() + 0.5 // strong shift
	}
	_, p, err := RankSum(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("p = %v for a 0.5 shift over 100 samples", p)
	}
	less, err := SignificantlyLess(xs, ys, 0.05)
	if err != nil || !less {
		t.Fatalf("SignificantlyLess = %v, %v", less, err)
	}
	// And not the other way around.
	less, err = SignificantlyLess(ys, xs, 0.05)
	if err != nil || less {
		t.Fatal("reverse direction claimed significant")
	}
}

func TestRankSumNullDistribution(t *testing.T) {
	// Same distribution: p should usually be non-significant. Repeat a
	// few times and require most p-values above 0.01.
	r := rng.New(5)
	rejections := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 40)
		ys := make([]float64, 40)
		for i := range xs {
			xs[i] = r.Float64()
			ys[i] = r.Float64()
		}
		_, p, err := RankSum(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.01 {
			rejections++
		}
	}
	if rejections > 5 { // expect ~0.5 rejections at the 1% level
		t.Fatalf("null rejected %d/%d times at alpha=0.01", rejections, trials)
	}
}

func TestRankSumTies(t *testing.T) {
	// Heavily tied data must not panic and must stay calibrated.
	xs := []float64{1, 1, 1, 2, 2, 3}
	ys := []float64{1, 2, 2, 2, 3, 3}
	_, p, err := RankSum(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.05 {
		t.Fatalf("nearly identical tied samples called significant (p=%v)", p)
	}
	// All values identical.
	_, p, err = RankSum([]float64{5, 5, 5}, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("identical constant samples p=%v, want 1", p)
	}
}

func TestRankSumEmpty(t *testing.T) {
	if _, _, err := RankSum(nil, []float64{1}); err == nil {
		t.Fatal("accepted empty sample")
	}
}

func TestRankSumSymmetryProperty(t *testing.T) {
	// U1 + U2 = n1*n2.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n1, n2 := r.Intn(20)+2, r.Intn(20)+2
		xs := make([]float64, n1)
		ys := make([]float64, n2)
		for i := range xs {
			xs[i] = math.Floor(r.Float64() * 10) // induce ties
		}
		for i := range ys {
			ys[i] = math.Floor(r.Float64() * 10)
		}
		u1, p1, err1 := RankSum(xs, ys)
		u2, p2, err2 := RankSum(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		return almost(u1+u2, float64(n1*n2), 1e-6) && almost(p1, p2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); got != 200 {
		t.Fatalf("speedup %v, want 200", got)
	}
	if got := Speedup(80, 100); got != 80 {
		t.Fatalf("speedup %v, want 80", got)
	}
	if !math.IsNaN(Speedup(10, 0)) {
		t.Fatal("division by zero not NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Fatalf("summary %+v", s)
	}
}

func TestNormalSFKnownValues(t *testing.T) {
	// Φ̄(0) = 0.5, Φ̄(1.96) ≈ 0.025.
	if got := normalSF(0); !almost(got, 0.5, 1e-12) {
		t.Fatalf("sf(0) = %v", got)
	}
	if got := normalSF(1.959964); !almost(got, 0.025, 1e-4) {
		t.Fatalf("sf(1.96) = %v", got)
	}
	if got := normalSF(5); got > 3e-7 {
		t.Fatalf("sf(5) = %v too large", got)
	}
}

func TestBoxPlotOutliersSorted(t *testing.T) {
	xs := []float64{10, 11, 12, 13, 14, 15, 16, 200, -100}
	b, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(b.Outliers) {
		t.Fatalf("outliers unsorted: %v", b.Outliers)
	}
	if len(b.Outliers) != 2 {
		t.Fatalf("outliers %v", b.Outliers)
	}
}
