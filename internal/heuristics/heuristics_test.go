package heuristics

import (
	"testing"

	"gridsched/internal/etc"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

func testInstance(t testing.TB, cons etc.Consistency, tasks, machines int, seed uint64) *etc.Instance {
	t.Helper()
	in, err := etc.Generate(etc.GenSpec{
		Class: etc.Class{Consistency: cons, TaskHet: etc.High, MachineHet: etc.High},
		Tasks: tasks, Machines: machines, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func allHeuristics() map[string]Heuristic {
	return map[string]Heuristic{
		"minmin":    MinMin,
		"maxmin":    MaxMin,
		"mct":       MCT,
		"met":       MET,
		"olb":       OLB,
		"sufferage": Sufferage,
		"ljfr-sjfr": LJFRSJFR,
	}
}

func TestAllProduceCompleteValidSchedules(t *testing.T) {
	for _, cons := range []etc.Consistency{etc.Consistent, etc.SemiConsistent, etc.Inconsistent} {
		in := testInstance(t, cons, 64, 8, 42)
		for name, h := range allHeuristics() {
			s := h(in)
			if !s.Complete() {
				t.Fatalf("%s on %s: incomplete schedule", name, in.Name)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s on %s: %v", name, in.Name, err)
			}
		}
	}
}

func TestHeuristicsDeterministic(t *testing.T) {
	in := testInstance(t, etc.Inconsistent, 50, 6, 7)
	for name, h := range allHeuristics() {
		a, b := h(in), h(in)
		if a.HammingDistance(b) != 0 {
			t.Fatalf("%s is nondeterministic", name)
		}
	}
}

func TestMinMinBeatsRandomOnAverage(t *testing.T) {
	in := testInstance(t, etc.Inconsistent, 128, 16, 3)
	mm := MinMin(in).Makespan()
	r := rng.New(1)
	worse := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		if Random(in, r).Makespan() > mm {
			worse++
		}
	}
	if worse < trials-1 {
		t.Fatalf("Min-min (%v) beaten by random too often: %d/%d random were worse", mm, worse, trials)
	}
}

func TestMinMinBeatsOLBAndMET(t *testing.T) {
	// On heterogeneous inconsistent instances Min-min should dominate the
	// naive heuristics comfortably.
	in := testInstance(t, etc.Inconsistent, 256, 16, 5)
	mm := MinMin(in).Makespan()
	if olb := OLB(in).Makespan(); mm > olb {
		t.Fatalf("Min-min %v worse than OLB %v", mm, olb)
	}
	if met := MET(in).Makespan(); mm > met {
		t.Fatalf("Min-min %v worse than MET %v", mm, met)
	}
}

func TestMETPicksPerTaskMinimum(t *testing.T) {
	in := testInstance(t, etc.Inconsistent, 30, 5, 8)
	s := MET(in)
	for task := 0; task < in.T; task++ {
		for m := 0; m < in.M; m++ {
			if in.ETC(task, m) < in.ETC(task, s.S[task]) {
				t.Fatalf("MET assigned task %d to %d but machine %d is faster", task, s.S[task], m)
			}
		}
	}
}

func TestMETOverloadsFastMachineOnConsistent(t *testing.T) {
	// On a consistent matrix one machine is fastest for every task, so
	// MET piles everything on it: a known pathology worth pinning down.
	in := testInstance(t, etc.Consistent, 40, 4, 9)
	s := MET(in)
	first := s.S[0]
	for task := 1; task < in.T; task++ {
		if s.S[task] != first {
			t.Fatal("MET did not assign all tasks to the single fastest machine on a consistent instance")
		}
	}
}

func TestMCTNoWorseThanMETOnConsistent(t *testing.T) {
	in := testInstance(t, etc.Consistent, 100, 8, 10)
	if mct, met := MCT(in).Makespan(), MET(in).Makespan(); mct > met {
		t.Fatalf("MCT %v worse than MET %v on consistent instance", mct, met)
	}
}

func TestSufferageHandlesSingleMachine(t *testing.T) {
	in, err := etc.New("one", 5, 1, []float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	s := Sufferage(in)
	if !s.Complete() {
		t.Fatal("sufferage incomplete on single machine")
	}
}

func TestMinMinTinyHandComputed(t *testing.T) {
	// 2 tasks, 2 machines.
	// ETC: task0: [1, 10], task1: [2, 2].
	// Min-min: task0 has min completion 1 (m0); task1 has min 2 (m0 or
	// m1). Pick task0 -> m0 (CT0=1). Then task1: m0 gives 3, m1 gives 2,
	// so m1. Makespan 2.
	in, err := etc.New("tiny", 2, 2, []float64{1, 10, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	s := MinMin(in)
	if s.S[0] != 0 || s.S[1] != 1 {
		t.Fatalf("Min-min assignment %v, want [0 1]", s.S)
	}
	if got := s.Makespan(); got != 2 {
		t.Fatalf("makespan %v, want 2", got)
	}
}

func TestMaxMinTinyHandComputed(t *testing.T) {
	// Same instance: Max-min picks task1 first (its best completion, 2,
	// exceeds task0's 1). task1 -> m0 or m1 at 2 (m0 wins the scan tie
	// at equal CT? both CT=0: m0 first). Then task0: m0 gives 2+1=3, m1
	// gives 10; m0. Makespan 3.
	in, err := etc.New("tiny", 2, 2, []float64{1, 10, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	s := MaxMin(in)
	if got := s.Makespan(); got != 3 {
		t.Fatalf("makespan %v, want 3 (assignment %v)", got, s.S)
	}
}

func TestLJFRSJFRAssignsAllTasksOnce(t *testing.T) {
	in := testInstance(t, etc.SemiConsistent, 33, 7, 11)
	s := LJFRSJFR(in)
	count := 0
	for m := 0; m < in.M; m++ {
		count += s.CountOn(m)
	}
	if count != in.T {
		t.Fatalf("LJFR-SJFR assigned %d tasks, want %d", count, in.T)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		h, err := ByName(name)
		if err != nil || h == nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("magic"); err == nil {
		t.Fatal("accepted bogus heuristic name")
	}
	// Aliases.
	for _, alias := range []string{"min-min", "max-min", "ljfrsjfr"} {
		if _, err := ByName(alias); err != nil {
			t.Fatalf("alias %q rejected: %v", alias, err)
		}
	}
}

func TestRandomUsesRNG(t *testing.T) {
	in := testInstance(t, etc.Inconsistent, 64, 8, 12)
	a := Random(in, rng.New(1))
	b := Random(in, rng.New(1))
	if a.HammingDistance(b) != 0 {
		t.Fatal("Random with same seed differs")
	}
	c := Random(in, rng.New(2))
	if a.HammingDistance(c) == 0 {
		t.Fatal("Random with different seed identical")
	}
}

func TestHeuristicRanking512x16(t *testing.T) {
	// Smoke-check the paper-scale instance: all heuristics complete and
	// Min-min / Sufferage land within sane bounds of each other.
	in := testInstance(t, etc.Inconsistent, 512, 16, 13)
	results := map[string]float64{}
	for name, h := range allHeuristics() {
		s := h(in)
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = s.Makespan()
	}
	if results["minmin"] > 3*results["sufferage"] || results["sufferage"] > 3*results["minmin"] {
		t.Fatalf("minmin %v and sufferage %v suspiciously far apart", results["minmin"], results["sufferage"])
	}
}

var benchSink *schedule.Schedule

func BenchmarkMinMin512x16(b *testing.B) {
	in := testInstance(b, etc.Inconsistent, 512, 16, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = MinMin(in)
	}
}

func BenchmarkSufferage512x16(b *testing.B) {
	in := testInstance(b, etc.Inconsistent, 512, 16, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = Sufferage(in)
	}
}
