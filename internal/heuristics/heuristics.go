// Package heuristics implements the classic static mapping heuristics for
// independent-task scheduling on heterogeneous machines (Braun et al.,
// Ibarra & Kim). The paper seeds one individual of the PA-CGA population
// with Min-min (Table 1) and positions such list heuristics as the fast
// alternative for near-homogeneous instances (§4.2); the rest are
// provided as baselines for the examples and the benchmark harness.
package heuristics

import (
	"fmt"
	"math"

	"gridsched/internal/etc"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

// Heuristic is a deterministic constructive mapper from instance to
// complete schedule.
type Heuristic func(*etc.Instance) *schedule.Schedule

// ByName resolves the heuristic names accepted by the command-line tools.
func ByName(name string) (Heuristic, error) {
	switch name {
	case "minmin", "min-min":
		return MinMin, nil
	case "maxmin", "max-min":
		return MaxMin, nil
	case "mct":
		return MCT, nil
	case "met":
		return MET, nil
	case "olb":
		return OLB, nil
	case "sufferage":
		return Sufferage, nil
	case "ljfr-sjfr", "ljfrsjfr":
		return LJFRSJFR, nil
	}
	return nil, fmt.Errorf("heuristics: unknown heuristic %q", name)
}

// Names lists the heuristics available through ByName, in display order.
func Names() []string {
	return []string{"minmin", "maxmin", "sufferage", "mct", "met", "olb", "ljfr-sjfr"}
}

// bestCompletion returns the machine minimizing CT[m] + ETC(t, m) and
// that minimal completion time, sweeping the task's contiguous cost row
// against the completion-time vector.
func bestCompletion(s *schedule.Schedule, t int) (mac int, ct float64) {
	tc := s.Inst.TaskCosts(t)
	cts := s.CT[:len(tc)]
	mac, ct = 0, cts[0]+tc[0]
	for m := 1; m < len(tc); m++ {
		if c := cts[m] + tc[m]; c < ct {
			mac, ct = m, c
		}
	}
	return mac, ct
}

// MinMin is the Min-min heuristic of Ibarra & Kim: repeatedly compute,
// for every unassigned task, its minimum completion time over all
// machines; commit the task whose minimum is smallest. Intuition: placing
// the "easiest" tasks first keeps machine loads low for longer.
func MinMin(inst *etc.Instance) *schedule.Schedule {
	return minMaxMin(inst, true)
}

// MaxMin is the dual of Min-min: commit the task whose best completion
// time is largest, so long tasks are placed early and short tasks fill
// the gaps.
func MaxMin(inst *etc.Instance) *schedule.Schedule {
	return minMaxMin(inst, false)
}

// minMaxMin runs Min-min / Max-min with cached per-task best
// completions. Committing a task changes exactly one machine's CT — and
// only upward, since ETC entries are positive — so a task's cached
// (machine, completion) pair stays exact unless its cached machine is
// the one that just grew; only those tasks rescan the machine vector.
// This drops the classic O(T²·M) triple loop to O(T²) scans plus an
// expected O(T·M) of rescans, while choosing bit-identical assignments
// (the cache returns exactly what a rescan would).
func minMaxMin(inst *etc.Instance, min bool) *schedule.Schedule {
	s := schedule.New(inst)
	unassigned := make([]int, inst.T)
	for i := range unassigned {
		unassigned[i] = i
	}
	bestMac := make([]int, inst.T)
	bestCT := make([]float64, inst.T)
	for i := range bestMac {
		bestMac[i] = -1 // not yet computed
	}
	for len(unassigned) > 0 {
		chosenIdx, chosenMac := -1, -1
		chosenCT := math.Inf(1)
		if !min {
			chosenCT = math.Inf(-1)
		}
		for idx, t := range unassigned {
			if bestMac[t] < 0 {
				bestMac[t], bestCT[t] = bestCompletion(s, t)
			}
			if (min && bestCT[t] < chosenCT) || (!min && bestCT[t] > chosenCT) {
				chosenIdx, chosenMac, chosenCT = idx, bestMac[t], bestCT[t]
			}
		}
		t := unassigned[chosenIdx]
		s.Assign(t, chosenMac)
		unassigned[chosenIdx] = unassigned[len(unassigned)-1]
		unassigned = unassigned[:len(unassigned)-1]
		for _, u := range unassigned {
			if bestMac[u] == chosenMac {
				bestMac[u] = -1
			}
		}
	}
	return s
}

// MCT (Minimum Completion Time) assigns tasks in index order, each to the
// machine that completes it earliest given current loads.
func MCT(inst *etc.Instance) *schedule.Schedule {
	s := schedule.New(inst)
	for t := 0; t < inst.T; t++ {
		mac, _ := bestCompletion(s, t)
		s.Assign(t, mac)
	}
	return s
}

// MET (Minimum Execution Time) assigns each task to the machine with the
// smallest raw ETC, ignoring load — fast but prone to overloading the
// globally fastest machine on consistent instances.
func MET(inst *etc.Instance) *schedule.Schedule {
	s := schedule.New(inst)
	for t := 0; t < inst.T; t++ {
		tc := inst.TaskCosts(t)
		best := 0
		for m := 1; m < len(tc); m++ {
			if tc[m] < tc[best] {
				best = m
			}
		}
		s.Assign(t, best)
	}
	return s
}

// OLB (Opportunistic Load Balancing) assigns each task to the machine
// that becomes idle earliest, ignoring the task's ETC on it.
func OLB(inst *etc.Instance) *schedule.Schedule {
	s := schedule.New(inst)
	for t := 0; t < inst.T; t++ {
		best := 0
		for m := 1; m < inst.M; m++ {
			if s.CT[m] < s.CT[best] {
				best = m
			}
		}
		s.Assign(t, best)
	}
	return s
}

// Sufferage commits, at each step, the unassigned task that would
// "suffer" most if denied its best machine: the one with the largest gap
// between its best and second-best completion times. Like minMaxMin it
// caches each task's (best, second-best) pair and rescans a task only
// when the machine that just grew is the task's cached best or
// second-best — any other machine's increase cannot change either value
// (completion times only grow, and the grown machine was strictly worse
// than the cached second).
func Sufferage(inst *etc.Instance) *schedule.Schedule {
	s := schedule.New(inst)
	unassigned := make([]int, inst.T)
	for i := range unassigned {
		unassigned[i] = i
	}
	type suffCache struct {
		bestMac, secondMac int
		best, second       float64
	}
	cache := make([]suffCache, inst.T)
	for i := range cache {
		cache[i].bestMac = -1 // not yet computed
	}
	for len(unassigned) > 0 {
		chosenIdx, chosenMac := -1, -1
		chosenSuff := math.Inf(-1)
		for idx, t := range unassigned {
			c := &cache[t]
			if c.bestMac < 0 {
				c.best, c.second = math.Inf(1), math.Inf(1)
				c.bestMac, c.secondMac = -1, -1
				tc := inst.TaskCosts(t)
				for m, cost := range tc {
					v := s.CT[m] + cost
					if v < c.best {
						c.second, c.secondMac = c.best, c.bestMac
						c.best, c.bestMac = v, m
					} else if v < c.second {
						c.second, c.secondMac = v, m
					}
				}
			}
			suff := c.second - c.best
			if inst.M == 1 {
				suff = 0
			}
			if suff > chosenSuff {
				chosenIdx, chosenMac, chosenSuff = idx, c.bestMac, suff
			}
		}
		t := unassigned[chosenIdx]
		s.Assign(t, chosenMac)
		unassigned[chosenIdx] = unassigned[len(unassigned)-1]
		unassigned = unassigned[:len(unassigned)-1]
		for _, u := range unassigned {
			if cache[u].bestMac == chosenMac || cache[u].secondMac == chosenMac {
				cache[u].bestMac = -1
			}
		}
	}
	return s
}

// LJFRSJFR (Longest Job to Fastest Resource / Shortest Job to Fastest
// Resource) alternates between assigning the longest remaining job and
// the shortest remaining job, both to the machine that completes them
// earliest. Job length is measured by mean ETC across machines.
func LJFRSJFR(inst *etc.Instance) *schedule.Schedule {
	s := schedule.New(inst)
	type job struct {
		task int
		size float64
	}
	jobs := make([]job, inst.T)
	for t := 0; t < inst.T; t++ {
		sum := 0.0
		for _, cost := range inst.TaskCosts(t) {
			sum += cost
		}
		jobs[t] = job{task: t, size: sum / float64(inst.M)}
	}
	// Selection by scan keeps the heuristic O(T^2); fine at benchmark size.
	takeExtreme := func(longest bool) job {
		bi := 0
		for i := 1; i < len(jobs); i++ {
			if (longest && jobs[i].size > jobs[bi].size) || (!longest && jobs[i].size < jobs[bi].size) {
				bi = i
			}
		}
		j := jobs[bi]
		jobs[bi] = jobs[len(jobs)-1]
		jobs = jobs[:len(jobs)-1]
		return j
	}
	longest := true
	for len(jobs) > 0 {
		j := takeExtreme(longest)
		mac, _ := bestCompletion(s, j.task)
		s.Assign(j.task, mac)
		longest = !longest
	}
	return s
}

// Random assigns every task to a uniformly random machine; the population
// initializer of the GA family and the weakest baseline.
func Random(inst *etc.Instance, r *rng.Rand) *schedule.Schedule {
	return schedule.NewRandom(inst, r)
}
