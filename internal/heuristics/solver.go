package heuristics

import (
	"context"

	"gridsched/internal/etc"
	"gridsched/internal/solver"
)

// Constructive adapts a deterministic constructive heuristic to the
// unified solver interface as a zero-budget solver: Solve ignores the
// budget (a single construction pass is the whole run) and reports one
// evaluation. It implements solver.Solver.
type Constructive struct {
	name string
	desc string
	fn   Heuristic
}

// Name implements solver.Solver.
func (c Constructive) Name() string { return c.name }

// Describe implements solver.Solver.
func (c Constructive) Describe() string { return c.desc }

// Reproducible implements solver.Reproducible: a constructive heuristic
// is a pure function of the instance.
func (c Constructive) Reproducible() bool { return true }

// Solve implements solver.Solver.
func (c Constructive) Solve(ctx context.Context, inst *etc.Instance, _ solver.Budget) (*solver.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eng := solver.NewEngine(ctx, solver.Budget{})
	s := c.fn(inst)
	eng.AddEvals(1)
	fit := s.Makespan()
	eng.Observe(fit)
	eng.Finish(fit)
	return &solver.Result{
		Best:            s,
		BestFitness:     fit,
		Evaluations:     eng.Evals(),
		Duration:        eng.Elapsed(),
		EffectiveBudget: eng.EffectiveBudget(),
	}, nil
}

func init() {
	for _, c := range []Constructive{
		{"minmin", "Min-min of Ibarra & Kim: commit the task with the smallest best completion time", MinMin},
		{"maxmin", "Max-min: commit the task with the largest best completion time first", MaxMin},
		{"sufferage", "Sufferage: commit the task that would suffer most if denied its best machine", Sufferage},
		{"mct", "Minimum Completion Time: tasks in index order, each to its earliest-finishing machine", MCT},
		{"met", "Minimum Execution Time: each task to its fastest machine, ignoring load", MET},
		{"olb", "Opportunistic Load Balancing: each task to the earliest-idle machine", OLB},
		{"ljfr-sjfr", "LJFR-SJFR: alternate longest and shortest remaining jobs onto their best machines", LJFRSJFR},
	} {
		solver.Register(c)
	}
}
