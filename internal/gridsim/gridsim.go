// Package gridsim is a discrete-event simulator of the dynamic grid
// environment that motivates the paper (§2.1): machines execute their
// assigned tasks sequentially and non-preemptively, actual execution
// times deviate from the ETC estimates, and machines can drop from the
// grid (losing their running and queued work) and later rejoin.
//
// The simulator answers the question the static ETC model cannot: how
// does an optimized schedule hold up when the environment misbehaves?
// With no noise and no failures, the simulated makespan equals the
// schedule's predicted makespan exactly — the key validation invariant —
// so any difference under perturbation is attributable to the modeled
// dynamics.
package gridsim

import (
	"container/heap"
	"fmt"
	"math"

	"gridsched/internal/etc"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

// EventKind enumerates the simulator's event types.
type EventKind int

const (
	// TaskStart marks a task beginning execution on a machine.
	TaskStart EventKind = iota
	// TaskComplete marks a successful task completion.
	TaskComplete
	// MachineFail marks a machine dropping from the grid; its running
	// task and queue are orphaned.
	MachineFail
	// MachineRejoin marks a failed machine rejoining the grid.
	MachineRejoin
	// TaskRescheduled marks an orphaned task being re-placed.
	TaskRescheduled
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case TaskStart:
		return "start"
	case TaskComplete:
		return "complete"
	case MachineFail:
		return "fail"
	case MachineRejoin:
		return "rejoin"
	case TaskRescheduled:
		return "reschedule"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of the simulation trace. Task is -1 for machine
// events; Machine is the machine involved.
type Event struct {
	Time    float64
	Kind    EventKind
	Task    int
	Machine int
}

// Rescheduler decides where orphaned tasks go after a machine failure.
// up[m] reports whether machine m is currently in the grid and free[m]
// is the earliest time it could start new work. Implementations return
// the chosen machine per task; returning a down machine is an error
// surfaced by Simulate.
type Rescheduler interface {
	Place(inst *etc.Instance, tasks []int, up []bool, free []float64) ([]int, error)
}

// MCTRescheduler re-places each orphan on the machine that would
// complete it earliest — the natural online policy, mirroring the MCT
// heuristic.
type MCTRescheduler struct{}

// Place implements Rescheduler.
func (MCTRescheduler) Place(inst *etc.Instance, tasks []int, up []bool, free []float64) ([]int, error) {
	out := make([]int, len(tasks))
	avail := append([]float64(nil), free...)
	for i, t := range tasks {
		tc := inst.TaskCosts(t)
		best, bestCT := -1, math.Inf(1)
		for m, cost := range tc {
			if !up[m] {
				continue
			}
			if ct := avail[m] + cost; ct < bestCT {
				best, bestCT = m, ct
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("gridsim: no machine available for task %d", t)
		}
		out[i] = best
		avail[best] = bestCT
	}
	return out, nil
}

// MinMinRescheduler re-places orphans with Min-min's batch logic:
// repeatedly commit the orphan whose best completion time is smallest.
// Costlier than MCT per failure (O(n²·m) in the orphan count) but
// produces better packings when a failure orphans many tasks at once.
type MinMinRescheduler struct{}

// Place implements Rescheduler.
func (MinMinRescheduler) Place(inst *etc.Instance, tasks []int, up []bool, free []float64) ([]int, error) {
	anyUp := false
	for _, u := range up {
		anyUp = anyUp || u
	}
	if !anyUp && len(tasks) > 0 {
		return nil, fmt.Errorf("gridsim: no machine available for %d tasks", len(tasks))
	}
	out := make([]int, len(tasks))
	avail := append([]float64(nil), free...)
	remaining := make([]int, len(tasks)) // indices into tasks
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		bestIdx, bestMac := -1, -1
		bestCT := math.Inf(1)
		for _, ri := range remaining {
			tc := inst.TaskCosts(tasks[ri])
			for m, cost := range tc {
				if !up[m] {
					continue
				}
				if ct := avail[m] + cost; ct < bestCT {
					bestIdx, bestMac, bestCT = ri, m, ct
				}
			}
		}
		out[bestIdx] = bestMac
		avail[bestMac] = bestCT
		for i, ri := range remaining {
			if ri == bestIdx {
				remaining[i] = remaining[len(remaining)-1]
				remaining = remaining[:len(remaining)-1]
				break
			}
		}
	}
	return out, nil
}

// Config parameterizes a simulation.
type Config struct {
	// MTBF is each machine's mean time between failures (exponential);
	// 0 disables failures.
	MTBF float64
	// RepairTime is how long a failed machine stays out of the grid; 0
	// with MTBF > 0 means machines never return.
	RepairTime float64
	// NoiseSigma is the σ of the lognormal multiplicative noise applied
	// to every execution time (0 = exact ETC).
	NoiseSigma float64
	// Seed drives failure times and noise.
	Seed uint64
	// Rescheduler re-places orphaned tasks (default MCTRescheduler).
	Rescheduler Rescheduler
	// MaxTime aborts the simulation if the clock passes it (a guard
	// against pathological configurations); 0 = no limit.
	MaxTime float64
	// RecordTrace keeps the full event list in the result.
	RecordTrace bool
}

// Result reports a simulation.
type Result struct {
	// Makespan is the time the last task completed.
	Makespan float64
	// PredictedMakespan is the schedule's static makespan for reference.
	PredictedMakespan float64
	// Completed counts finished tasks (== instance tasks unless aborted).
	Completed int
	// Failures and Rejoins count machine events; Restarts counts task
	// re-placements after failures.
	Failures, Rejoins, Restarts int
	// TaskFinish holds each task's completion time.
	TaskFinish []float64
	// Trace is the event list when Config.RecordTrace was set.
	Trace []Event
}

// event-queue plumbing (container/heap over simEvent).
type simEvent struct {
	time float64
	kind EventKind
	task int
	mach int
	seq  int // tie-break so ordering is deterministic
}

type eventQueue []simEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(simEvent)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// machineState tracks one machine during simulation.
type machineState struct {
	up      bool
	runTask int     // -1 when idle
	runEnd  float64 // completion time of the running task
	queue   []int   // tasks waiting on this machine, FIFO
	freeAt  float64 // earliest time new work could start
}

// Simulate executes the schedule on the simulated grid. The schedule
// must be complete. Each machine runs its tasks in ascending task-index
// order (the representation carries no intra-machine order; any fixed
// order yields the same makespan under the ETC model).
func Simulate(inst *etc.Instance, s *schedule.Schedule, cfg Config) (*Result, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("gridsim: schedule is incomplete")
	}
	if s.Inst != inst {
		return nil, fmt.Errorf("gridsim: schedule targets a different instance")
	}
	if cfg.Rescheduler == nil {
		cfg.Rescheduler = MCTRescheduler{}
	}
	r := rng.New(cfg.Seed)

	res := &Result{
		PredictedMakespan: s.Makespan(),
		TaskFinish:        make([]float64, inst.T),
	}
	for i := range res.TaskFinish {
		res.TaskFinish[i] = math.NaN()
	}

	machines := make([]machineState, inst.M)
	var q eventQueue
	seq := 0
	push := func(t float64, kind EventKind, task, mach int) {
		heap.Push(&q, simEvent{time: t, kind: kind, task: task, mach: mach, seq: seq})
		seq++
	}
	record := func(t float64, kind EventKind, task, mach int) {
		if cfg.RecordTrace {
			res.Trace = append(res.Trace, Event{Time: t, Kind: kind, Task: task, Machine: mach})
		}
	}

	// duration returns the actual execution time of task t on machine m,
	// read from the machine-major plane (contiguous in t for a fixed m,
	// the same access pattern as the backlog scans).
	duration := func(t, m int) float64 {
		d := inst.MachineCosts(m)[t]
		if cfg.NoiseSigma > 0 {
			d *= math.Exp(cfg.NoiseSigma * normal(r))
		}
		return d
	}

	// startNext begins the next queued task on machine m at time now.
	startNext := func(m int, now float64) {
		ms := &machines[m]
		if !ms.up || ms.runTask >= 0 || len(ms.queue) == 0 {
			return
		}
		task := ms.queue[0]
		ms.queue = ms.queue[1:]
		start := math.Max(now, ms.freeAt)
		end := start + duration(task, m)
		ms.runTask, ms.runEnd = task, end
		record(start, TaskStart, task, m)
		push(end, TaskComplete, task, m)
	}

	// Initial queues: tasks per machine in ascending index order, after
	// the machine's ready time.
	for m := range machines {
		machines[m] = machineState{up: true, runTask: -1, freeAt: inst.Ready[m]}
	}
	for t := 0; t < inst.T; t++ {
		machines[s.S[t]].queue = append(machines[s.S[t]].queue, t)
	}
	for m := range machines {
		startNext(m, 0)
		if cfg.MTBF > 0 {
			push(exponential(r, cfg.MTBF), MachineFail, -1, m)
		}
	}

	reschedule := func(now float64, orphans []int) error {
		if len(orphans) == 0 {
			return nil
		}
		up := make([]bool, inst.M)
		free := make([]float64, inst.M)
		anyUp := false
		for m := range machines {
			up[m] = machines[m].up
			anyUp = anyUp || up[m]
			free[m] = machineBacklogEnd(&machines[m], inst, now, m)
		}
		if !anyUp {
			return fmt.Errorf("gridsim: all machines down with %d tasks pending at t=%.2f", len(orphans), now)
		}
		placement, err := cfg.Rescheduler.Place(inst, orphans, up, free)
		if err != nil {
			return err
		}
		if len(placement) != len(orphans) {
			return fmt.Errorf("gridsim: rescheduler returned %d placements for %d tasks", len(placement), len(orphans))
		}
		for i, task := range orphans {
			m := placement[i]
			if m < 0 || m >= inst.M || !machines[m].up {
				return fmt.Errorf("gridsim: rescheduler placed task %d on unavailable machine %d", task, m)
			}
			machines[m].queue = append(machines[m].queue, task)
			res.Restarts++
			record(now, TaskRescheduled, task, m)
			startNext(m, now)
		}
		return nil
	}

	// Main loop.
	now := 0.0
	for q.Len() > 0 && res.Completed < inst.T {
		ev := heap.Pop(&q).(simEvent)
		now = ev.time
		if cfg.MaxTime > 0 && now > cfg.MaxTime {
			return res, fmt.Errorf("gridsim: exceeded MaxTime %.2f with %d/%d tasks done", cfg.MaxTime, res.Completed, inst.T)
		}
		switch ev.kind {
		case TaskComplete:
			ms := &machines[ev.mach]
			// Stale completion of a task that was orphaned by a failure.
			if !ms.up || ms.runTask != ev.task {
				continue
			}
			ms.runTask = -1
			ms.freeAt = now
			res.TaskFinish[ev.task] = now
			res.Completed++
			if now > res.Makespan {
				res.Makespan = now
			}
			record(now, TaskComplete, ev.task, ev.mach)
			startNext(ev.mach, now)

		case MachineFail:
			ms := &machines[ev.mach]
			if !ms.up {
				continue // stale failure of an already-down machine
			}
			ms.up = false
			res.Failures++
			record(now, MachineFail, -1, ev.mach)
			orphans := make([]int, 0, len(ms.queue)+1)
			if ms.runTask >= 0 {
				orphans = append(orphans, ms.runTask) // non-preemptive: restart from scratch
				ms.runTask = -1
			}
			orphans = append(orphans, ms.queue...)
			ms.queue = nil
			if cfg.RepairTime > 0 {
				push(now+cfg.RepairTime, MachineRejoin, -1, ev.mach)
			}
			if err := reschedule(now, orphans); err != nil {
				return res, err
			}

		case MachineRejoin:
			ms := &machines[ev.mach]
			ms.up = true
			ms.freeAt = now
			res.Rejoins++
			record(now, MachineRejoin, -1, ev.mach)
			if cfg.MTBF > 0 {
				push(now+exponential(r, cfg.MTBF), MachineFail, -1, ev.mach)
			}
			startNext(ev.mach, now)
		}
	}
	if res.Completed < inst.T {
		return res, fmt.Errorf("gridsim: simulation stalled with %d/%d tasks done", res.Completed, inst.T)
	}
	return res, nil
}

// machineBacklogEnd estimates when machine m will have drained its
// current run and queue (expected times, ignoring future noise) — the
// availability estimate handed to the rescheduler.
func machineBacklogEnd(ms *machineState, inst *etc.Instance, now float64, m int) float64 {
	end := math.Max(now, ms.freeAt)
	if ms.runTask >= 0 {
		end = math.Max(end, ms.runEnd)
	}
	// Fixed machine, varying task: the machine's contiguous cost column
	// makes this a gather over one sequential slice.
	mc := inst.MachineCosts(m)
	for _, t := range ms.queue {
		end += mc[t]
	}
	return end
}

// exponential draws an Exp(mean) variate.
func exponential(r *rng.Rand, mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// normal draws a standard normal via Box-Muller.
func normal(r *rng.Rand) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
