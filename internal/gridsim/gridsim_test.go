package gridsim

import (
	"math"
	"testing"
	"testing/quick"

	"gridsched/internal/etc"
	"gridsched/internal/heuristics"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

func testInstance(t testing.TB, tasks, machines int, seed uint64) *etc.Instance {
	t.Helper()
	in, err := etc.Generate(etc.GenSpec{
		Class: etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High},
		Tasks: tasks, Machines: machines, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// The central validation invariant: with no noise and no failures, the
// simulated makespan equals the schedule's static makespan.
func TestNoPerturbationMatchesPrediction(t *testing.T) {
	in := testInstance(t, 64, 8, 1)
	s := schedule.NewRandom(in, rng.New(2))
	res, err := Simulate(in, s, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-res.PredictedMakespan) > 1e-6*res.PredictedMakespan {
		t.Fatalf("simulated %v vs predicted %v", res.Makespan, res.PredictedMakespan)
	}
	if res.Completed != in.T {
		t.Fatalf("completed %d/%d", res.Completed, in.T)
	}
	if res.Failures != 0 || res.Restarts != 0 {
		t.Fatal("phantom failures in a clean run")
	}
}

func TestNoPerturbationProperty(t *testing.T) {
	in := testInstance(t, 40, 6, 4)
	f := func(seed uint64) bool {
		s := schedule.NewRandom(in, rng.New(seed))
		res, err := Simulate(in, s, Config{Seed: seed})
		if err != nil {
			return false
		}
		return math.Abs(res.Makespan-res.PredictedMakespan) <= 1e-6*res.PredictedMakespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadyTimesRespected(t *testing.T) {
	in := testInstance(t, 8, 2, 5)
	withReady, err := in.WithReady([]float64{100, 0})
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.New(withReady)
	for task := 0; task < withReady.T; task++ {
		s.Assign(task, 0) // all on the delayed machine
	}
	res, err := Simulate(withReady, s, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < 100 {
		t.Fatalf("simulation ignored ready time: makespan %v", res.Makespan)
	}
	if res.Makespan != res.PredictedMakespan {
		t.Fatalf("simulated %v vs predicted %v", res.Makespan, res.PredictedMakespan)
	}
}

func TestAllTasksFinishExactlyOnce(t *testing.T) {
	in := testInstance(t, 50, 5, 6)
	s := schedule.NewRandom(in, rng.New(7))
	res, err := Simulate(in, s, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for task, ft := range res.TaskFinish {
		if math.IsNaN(ft) {
			t.Fatalf("task %d never finished", task)
		}
		if ft <= 0 || ft > res.Makespan {
			t.Fatalf("task %d finish %v outside (0, %v]", task, ft, res.Makespan)
		}
	}
}

func TestNoiseShiftsMakespan(t *testing.T) {
	in := testInstance(t, 128, 8, 9)
	s := heuristics.MinMin(in)
	exact, err := Simulate(in, s, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Simulate(in, s, Config{Seed: 1, NoiseSigma: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Makespan == exact.Makespan {
		t.Fatal("noise had no effect")
	}
	if noisy.Completed != in.T {
		t.Fatal("noise broke completion")
	}
	// Different seeds give different noisy makespans.
	noisy2, err := Simulate(in, s, Config{Seed: 2, NoiseSigma: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if noisy2.Makespan == noisy.Makespan {
		t.Fatal("noise not seed-dependent")
	}
}

func TestNoiseDeterministicPerSeed(t *testing.T) {
	in := testInstance(t, 64, 8, 10)
	s := heuristics.MinMin(in)
	a, err := Simulate(in, s, Config{Seed: 5, NoiseSigma: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(in, s, Config{Seed: 5, NoiseSigma: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatal("same seed, different simulation")
	}
}

func TestFailuresWithRepairComplete(t *testing.T) {
	in := testInstance(t, 96, 8, 11)
	s := heuristics.MinMin(in)
	res, err := Simulate(in, s, Config{
		Seed:       3,
		MTBF:       s.Makespan() / 4, // several failures expected
		RepairTime: s.Makespan() / 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != in.T {
		t.Fatalf("completed %d/%d under failures", res.Completed, in.T)
	}
	if res.Failures == 0 {
		t.Fatal("MTBF set but no failures occurred")
	}
	if res.Restarts == 0 {
		t.Fatal("failures occurred but nothing was rescheduled")
	}
	if res.Makespan < res.PredictedMakespan {
		t.Fatalf("failures cannot speed the schedule up: %v < %v", res.Makespan, res.PredictedMakespan)
	}
}

func TestPermanentFailuresStillComplete(t *testing.T) {
	// Machines never repair; as long as failures are rare enough that
	// some machine survives, the rescheduler must drain everything.
	in := testInstance(t, 64, 8, 12)
	s := heuristics.MinMin(in)
	res, err := Simulate(in, s, Config{
		Seed: 4,
		MTBF: s.Makespan() * 3, // roughly 1-3 permanent losses
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != in.T {
		t.Fatalf("completed %d/%d", res.Completed, in.T)
	}
	if res.Rejoins != 0 {
		t.Fatal("rejoins without repair time")
	}
}

func TestAllMachinesDownErrors(t *testing.T) {
	in := testInstance(t, 32, 2, 13)
	s := heuristics.MinMin(in)
	// Absurdly failure-prone grid with no repair: both machines die
	// almost immediately and the run must error out rather than hang.
	_, err := Simulate(in, s, Config{Seed: 5, MTBF: s.Makespan() / 1e6})
	if err == nil {
		t.Fatal("simulation with an all-dead grid reported success")
	}
}

func TestMaxTimeGuard(t *testing.T) {
	in := testInstance(t, 64, 4, 14)
	s := heuristics.MinMin(in)
	_, err := Simulate(in, s, Config{Seed: 6, MaxTime: s.Makespan() / 1000})
	if err == nil {
		t.Fatal("MaxTime guard did not fire")
	}
}

func TestTraceRecording(t *testing.T) {
	in := testInstance(t, 16, 4, 15)
	s := heuristics.MinMin(in)
	res, err := Simulate(in, s, Config{Seed: 7, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	starts, completes := 0, 0
	lastTime := 0.0
	for _, ev := range res.Trace {
		if ev.Time < lastTime-1e-9 {
			t.Fatal("trace not time-ordered")
		}
		lastTime = ev.Time
		switch ev.Kind {
		case TaskStart:
			starts++
		case TaskComplete:
			completes++
		}
	}
	if starts != in.T || completes != in.T {
		t.Fatalf("trace has %d starts and %d completes for %d tasks", starts, completes, in.T)
	}
	// Without the flag no trace is kept.
	res2, err := Simulate(in, s, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Trace) != 0 {
		t.Fatal("trace recorded without RecordTrace")
	}
}

func TestIncompleteScheduleRejected(t *testing.T) {
	in := testInstance(t, 8, 2, 16)
	s := schedule.New(in)
	if _, err := Simulate(in, s, Config{}); err == nil {
		t.Fatal("incomplete schedule accepted")
	}
}

func TestWrongInstanceRejected(t *testing.T) {
	a := testInstance(t, 8, 2, 17)
	b := testInstance(t, 8, 2, 18)
	s := schedule.NewRandom(a, rng.New(1))
	if _, err := Simulate(b, s, Config{}); err == nil {
		t.Fatal("cross-instance schedule accepted")
	}
}

func TestMCTReschedulerPlacesOnUpMachines(t *testing.T) {
	in := testInstance(t, 10, 4, 19)
	up := []bool{true, false, true, false}
	free := []float64{100, 0, 50, 0}
	tasks := []int{0, 1, 2}
	placement, err := (MCTRescheduler{}).Place(in, tasks, up, free)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range placement {
		if !up[m] {
			t.Fatalf("task %d placed on down machine %d", tasks[i], m)
		}
	}
}

func TestMinMinReschedulerPlacesAllTasks(t *testing.T) {
	in := testInstance(t, 30, 4, 30)
	up := []bool{true, true, false, true}
	free := []float64{10, 0, 0, 5}
	tasks := []int{0, 3, 7, 9, 12}
	placement, err := (MinMinRescheduler{}).Place(in, tasks, up, free)
	if err != nil {
		t.Fatal(err)
	}
	if len(placement) != len(tasks) {
		t.Fatalf("%d placements for %d tasks", len(placement), len(tasks))
	}
	for i, m := range placement {
		if m < 0 || m >= in.M || !up[m] {
			t.Fatalf("task %d placed on invalid machine %d", tasks[i], m)
		}
	}
}

func TestMinMinReschedulerAllDown(t *testing.T) {
	in := testInstance(t, 4, 2, 31)
	if _, err := (MinMinRescheduler{}).Place(in, []int{0}, []bool{false, false}, []float64{0, 0}); err == nil {
		t.Fatal("placement on an empty grid accepted")
	}
	// No orphans on a dead grid is fine.
	if _, err := (MinMinRescheduler{}).Place(in, nil, []bool{false, false}, []float64{0, 0}); err != nil {
		t.Fatalf("empty task list rejected: %v", err)
	}
}

func TestMinMinReschedulerComparableToMCT(t *testing.T) {
	// Min-min's batch ordering and MCT's task-order greediness make
	// different trade-offs (Min-min can overload the fastest machine
	// with small tasks); neither dominates on every instance. Require
	// the two projected peak loads to stay within a factor of two —
	// a rescheduler that is wildly worse than the other is a bug.
	in := testInstance(t, 64, 8, 32)
	up := make([]bool, in.M)
	free := make([]float64, in.M)
	for m := range up {
		up[m] = m != 0 // machine 0 just died
	}
	orphans := make([]int, 32)
	for i := range orphans {
		orphans[i] = i
	}
	project := func(placement []int) float64 {
		load := append([]float64(nil), free...)
		for i, t := range orphans {
			load[placement[i]] += in.ETC(t, placement[i])
		}
		worst := 0.0
		for _, l := range load {
			if l > worst {
				worst = l
			}
		}
		return worst
	}
	mct, err := (MCTRescheduler{}).Place(in, orphans, up, free)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := (MinMinRescheduler{}).Place(in, orphans, up, free)
	if err != nil {
		t.Fatal(err)
	}
	pm, pc := project(mm), project(mct)
	if pm > pc*2 || pc > pm*2 {
		t.Fatalf("reschedulers diverge wildly: min-min %v vs mct %v", pm, pc)
	}
}

func TestSimulateWithMinMinRescheduler(t *testing.T) {
	in := testInstance(t, 96, 8, 33)
	s := heuristics.MinMin(in)
	res, err := Simulate(in, s, Config{
		Seed:        4,
		MTBF:        s.Makespan() / 3,
		RepairTime:  s.Makespan() / 10,
		Rescheduler: MinMinRescheduler{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != in.T {
		t.Fatalf("completed %d/%d with Min-min rescheduling", res.Completed, in.T)
	}
}

func TestMCTReschedulerAllDown(t *testing.T) {
	in := testInstance(t, 4, 2, 20)
	if _, err := (MCTRescheduler{}).Place(in, []int{0}, []bool{false, false}, []float64{0, 0}); err == nil {
		t.Fatal("placement on an empty grid accepted")
	}
}

func TestBetterScheduleSurvivesNoiseBetter(t *testing.T) {
	// A sanity link between optimization and simulation: under mild
	// noise the PA-CGA-quality schedule (here Min-min vs OLB as a cheap
	// stand-in) should keep its advantage on average.
	in := testInstance(t, 128, 8, 21)
	good := heuristics.MinMin(in)
	bad := heuristics.OLB(in)
	var goodSum, badSum float64
	const runs = 10
	for i := uint64(0); i < runs; i++ {
		g, err := Simulate(in, good, Config{Seed: i, NoiseSigma: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Simulate(in, bad, Config{Seed: i, NoiseSigma: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		goodSum += g.Makespan
		badSum += b.Makespan
	}
	if goodSum >= badSum {
		t.Fatalf("Min-min schedule (%v) lost its advantage over OLB (%v) under noise", goodSum/runs, badSum/runs)
	}
}

func TestExponentialMean(t *testing.T) {
	r := rng.New(22)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += exponential(r, 42)
	}
	mean := sum / n
	if mean < 40 || mean > 44 {
		t.Fatalf("exponential mean %v, want ~42", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := rng.New(23)
	sum, ss := 0.0, 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := normal(r)
		sum += v
		ss += v * v
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean %v", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		TaskStart: "start", TaskComplete: "complete", MachineFail: "fail",
		MachineRejoin: "rejoin", TaskRescheduled: "reschedule",
	} {
		if k.String() != want {
			t.Fatalf("kind %d = %q", int(k), k.String())
		}
	}
}

func BenchmarkSimulateClean(b *testing.B) {
	in := testInstance(b, 512, 16, 1)
	s := heuristics.MinMin(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(in, s, Config{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateWithFailures(b *testing.B) {
	in := testInstance(b, 512, 16, 1)
	s := heuristics.MinMin(in)
	mtbf := s.Makespan() / 2
	repair := s.Makespan() / 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(in, s, Config{Seed: uint64(i), MTBF: mtbf, RepairTime: repair, NoiseSigma: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}
