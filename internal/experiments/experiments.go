// Package experiments reproduces the paper's evaluation (§4): Fig. 4
// (evaluation-based speedup vs threads and local-search iterations),
// Fig. 5 (recombination × local-search box plots over the 12 benchmark
// instances), Table 2 (mean makespan vs the literature baselines), and
// Fig. 6 (population convergence per thread count). Each experiment has
// one entry point returning structured rows plus text renderers, so the
// cmd/experiments binary and the root bench harness share one
// implementation.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/etc"
	"gridsched/internal/operators"
	"gridsched/internal/solver"
	"gridsched/internal/stats"
	"gridsched/internal/textplot"

	// Register the comparator solvers Table 2 resolves by name.
	_ "gridsched/internal/baselines"
)

// Scale sets how faithfully an experiment mirrors the paper's budgets.
// The paper runs 100 replications of 90-second runs on a 2007 Xeon; a
// laptop-scale reproduction shrinks both, which preserves every
// qualitative shape (the paper's own speedup currency is evaluations,
// not seconds).
type Scale struct {
	// Runs is the number of replications per configuration (paper: 100).
	Runs int
	// WallTime is the per-run wall-clock budget (paper: 90 s). When
	// zero, Evaluations is used instead, making runs deterministic.
	WallTime time.Duration
	// Evaluations is the per-run evaluation budget used when WallTime
	// is zero.
	Evaluations int64
	// ShortDivisor scales the budget for Table 2's "PA-CGA 10 sec"
	// column; the paper divides its 90 s by the TSCP-measured CPU ratio
	// of 9 to compare fairly against the older AMD K6 results.
	ShortDivisor int
	// Threads used for Fig. 5 and Table 2 (paper: 3, the Fig. 4 winner).
	Threads int
	// BaseSeed decorrelates replications; replication i uses BaseSeed+i.
	BaseSeed uint64
}

// CIScale returns a configuration small enough for tests and continuous
// integration: deterministic evaluation budgets, few replications.
func CIScale() Scale {
	return Scale{Runs: 5, Evaluations: 8000, ShortDivisor: 9, Threads: 3, BaseSeed: 1}
}

// PaperScale returns the paper's full budgets (100 × 90 s runs). A full
// Fig. 5 at this scale is 4 configs × 12 instances × 100 runs × 90 s —
// days of compute; use it selectively.
func PaperScale() Scale {
	return Scale{Runs: 100, WallTime: 90 * time.Second, ShortDivisor: 9, Threads: 3, BaseSeed: 1}
}

func (sc Scale) withDefaults() Scale {
	if sc.Runs <= 0 {
		sc.Runs = 5
	}
	if sc.WallTime <= 0 && sc.Evaluations <= 0 {
		sc.Evaluations = 8000
	}
	if sc.ShortDivisor <= 0 {
		sc.ShortDivisor = 9
	}
	if sc.Threads <= 0 {
		sc.Threads = 3
	}
	return sc
}

// apply writes the scale's budget into params.
func (sc Scale) apply(p *core.Params) {
	p.MaxDuration = sc.WallTime
	if sc.WallTime <= 0 {
		p.MaxEvaluations = sc.Evaluations
	}
}

// --- Table 1 ---

// Table1 renders the parameterization table: the defaults of
// core.DefaultParams annotated with the paper's values.
func Table1() string {
	p := core.DefaultParams()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Parameterization of PA-CGA\n")
	rows := [][2]string{
		{"Population", fmt.Sprintf("%dx%d", p.GridW, p.GridH)},
		{"Population initialization", "Min-min (1 ind), rest random"},
		{"Cell update policy", fmt.Sprintf("fixed %s sweep per block", p.Sweep)},
		{"Neighborhood", p.Neighborhood.String()},
		{"Selection", p.Selector.Name()},
		{"Recombination", fmt.Sprintf("%s, p_comb = %.1f", p.Crossover.Name(), p.CrossProb)},
		{"Mutation", fmt.Sprintf("%s, p_mut = %.1f", p.Mutation.Name(), p.MutProb)},
		{"Local search", fmt.Sprintf("%s, p_ser = %.1f", p.Local.Name(), p.LocalProb)},
		{"Replacement", p.Replacement.String()},
		{"Stopping criterion", "wall time / generations / evaluations"},
		{"Number of threads", fmt.Sprintf("%d (paper sweeps 1..4)", p.Threads)},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %s\n", r[0], r[1])
	}
	return b.String()
}

// --- Fig. 4: speedup ---

// Fig4Row is one point of Fig. 4: the mean evaluations achieved at a
// thread count and H2LL iteration budget, and the speedup relative to
// one thread of the same series (Eq. 5, in percent).
type Fig4Row struct {
	Threads    int
	LSIters    int
	MeanEvals  float64
	SpeedupPct float64
}

// Fig4LSIterations are the local-search series of Fig. 4.
var Fig4LSIterations = []int{0, 1, 5, 10}

// Fig4MaxThreads is the paper's thread sweep bound.
const Fig4MaxThreads = 4

// Fig4 measures evaluation throughput for threads 1..4 and H2LL
// iteration budgets {0, 1, 5, 10} on one instance. The scale must use a
// wall-clock budget: speedup compares work done in equal time, so an
// evaluation budget would be circular. Replications run sequentially so
// the measured run has the machine to itself.
func Fig4(inst *etc.Instance, sc Scale) ([]Fig4Row, error) {
	return Fig4Context(context.Background(), inst, sc)
}

// Fig4Context is Fig4 under a context: cancellation stops the current
// run through the budget engine and aborts the experiment with the
// context's error.
func Fig4Context(ctx context.Context, inst *etc.Instance, sc Scale) ([]Fig4Row, error) {
	sc = sc.withDefaults()
	if sc.WallTime <= 0 {
		return nil, fmt.Errorf("experiments: Fig4 needs a wall-clock budget (speedup is evaluations per unit time)")
	}
	var rows []Fig4Row
	base := map[int]float64{} // ls iters -> mean evals at 1 thread
	for _, ls := range Fig4LSIterations {
		for threads := 1; threads <= Fig4MaxThreads; threads++ {
			evals := make([]float64, 0, sc.Runs)
			for run := 0; run < sc.Runs; run++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				p := core.DefaultParams()
				p.Local = operators.H2LL{Iterations: ls}
				p.Threads = threads
				p.Seed = sc.BaseSeed + uint64(run)
				sc.apply(&p)
				res, err := core.RunContext(ctx, inst, p)
				if err != nil {
					return nil, err
				}
				evals = append(evals, float64(res.Evaluations))
			}
			mean := stats.Mean(evals)
			if threads == 1 {
				base[ls] = mean
			}
			rows = append(rows, Fig4Row{
				Threads:    threads,
				LSIters:    ls,
				MeanEvals:  mean,
				SpeedupPct: stats.Speedup(mean, base[ls]),
			})
		}
	}
	return rows, nil
}

// RenderFig4 renders the rows as the Fig. 4 line chart plus a table.
func RenderFig4(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("Fig. 4: Speedup of the algorithm (evaluations vs 1 thread, %)\n\n")
	bySeries := map[int][]Fig4Row{}
	for _, r := range rows {
		bySeries[r.LSIters] = append(bySeries[r.LSIters], r)
	}
	var series []textplot.Series
	var iters []int
	for ls := range bySeries {
		iters = append(iters, ls)
	}
	sort.Ints(iters)
	for _, ls := range iters {
		rs := bySeries[ls]
		sort.Slice(rs, func(i, j int) bool { return rs[i].Threads < rs[j].Threads })
		s := textplot.Series{Name: fmt.Sprintf("%d iteration(s)", ls)}
		for _, r := range rs {
			s.X = append(s.X, float64(r.Threads))
			s.Y = append(s.Y, r.SpeedupPct)
		}
		series = append(series, s)
	}
	b.WriteString(textplot.LineChart("", series, 64, 18))
	b.WriteString("\n  threads  ls-iters  mean-evals  speedup%\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %7d  %8d  %10.0f  %7.1f\n", r.Threads, r.LSIters, r.MeanEvals, r.SpeedupPct)
	}
	return b.String()
}

// --- Fig. 5: operator configurations ---

// Fig5Config names one of the four compared configurations.
type Fig5Config struct {
	Crossover operators.Crossover
	LSIters   int
}

// Label renders the paper's axis naming, e.g. "tpx/10".
func (c Fig5Config) Label() string {
	return fmt.Sprintf("%s/%d", c.Crossover.Name(), c.LSIters)
}

// Fig5Configs returns the paper's four configurations in figure order.
func Fig5Configs() []Fig5Config {
	return []Fig5Config{
		{operators.OnePoint{}, 5},
		{operators.TwoPoint{}, 5},
		{operators.OnePoint{}, 10},
		{operators.TwoPoint{}, 10},
	}
}

// Fig5Cell holds the replicated makespans of one configuration on one
// instance together with the box-plot summary the figure draws.
type Fig5Cell struct {
	Instance  string
	Config    string
	Makespans []float64
	Box       stats.BoxPlot
}

// Fig5 runs the four configurations on each instance at the scale's
// thread count and budget.
func Fig5(instances []*etc.Instance, sc Scale) ([]Fig5Cell, error) {
	return Fig5Context(context.Background(), instances, sc)
}

// Fig5Context is Fig5 under a context; see Fig4Context for the
// cancellation contract.
func Fig5Context(ctx context.Context, instances []*etc.Instance, sc Scale) ([]Fig5Cell, error) {
	sc = sc.withDefaults()
	var cells []Fig5Cell
	for _, inst := range instances {
		for _, cfg := range Fig5Configs() {
			ms := make([]float64, 0, sc.Runs)
			for run := 0; run < sc.Runs; run++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				p := core.DefaultParams()
				p.Crossover = cfg.Crossover
				p.Local = operators.H2LL{Iterations: cfg.LSIters}
				p.Threads = sc.Threads
				p.Seed = sc.BaseSeed + uint64(run)
				sc.apply(&p)
				res, err := core.RunContext(ctx, inst, p)
				if err != nil {
					return nil, err
				}
				ms = append(ms, res.BestFitness)
			}
			box, err := stats.NewBoxPlot(ms)
			if err != nil {
				return nil, err
			}
			cells = append(cells, Fig5Cell{
				Instance:  inst.Name,
				Config:    cfg.Label(),
				Makespans: ms,
				Box:       box,
			})
		}
	}
	return cells, nil
}

// Fig5Significance reports, per instance, whether tpx/10 is
// significantly better than opx/5 at the 5 % level — the paper's
// statistically backed claim in §4.2.
func Fig5Significance(cells []Fig5Cell) (map[string]bool, error) {
	byInstance := map[string]map[string][]float64{}
	for _, c := range cells {
		if byInstance[c.Instance] == nil {
			byInstance[c.Instance] = map[string][]float64{}
		}
		byInstance[c.Instance][c.Config] = c.Makespans
	}
	out := map[string]bool{}
	for inst, cfgs := range byInstance {
		tpx10, ok1 := cfgs["tpx/10"]
		opx5, ok2 := cfgs["opx/5"]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("experiments: instance %s missing tpx/10 or opx/5 samples", inst)
		}
		less, err := stats.SignificantlyLess(tpx10, opx5, 0.05)
		if err != nil {
			return nil, err
		}
		out[inst] = less
	}
	return out, nil
}

// RenderFig5 renders per-instance notched box plots plus the
// significance summary.
func RenderFig5(cells []Fig5Cell) string {
	var b strings.Builder
	b.WriteString("Fig. 5: Comparison of recombination operators and local search iterations\n")
	byInstance := map[string][]Fig5Cell{}
	var order []string
	for _, c := range cells {
		if len(byInstance[c.Instance]) == 0 {
			order = append(order, c.Instance)
		}
		byInstance[c.Instance] = append(byInstance[c.Instance], c)
	}
	for _, inst := range order {
		var boxes []textplot.Box
		for _, c := range byInstance[inst] {
			boxes = append(boxes, textplot.Box{Label: c.Config, Plot: c.Box})
		}
		b.WriteString("\n")
		b.WriteString(textplot.BoxPlots(fmt.Sprintf("Instance %s (average makespan, %d runs)", inst, boxes[0].Plot.N), boxes, 56))
	}
	if sig, err := Fig5Significance(cells); err == nil {
		b.WriteString("\nSignificance (rank-sum, alpha=0.05): tpx/10 < opx/5 on: ")
		var yes []string
		for _, inst := range order {
			if sig[inst] {
				yes = append(yes, inst)
			}
		}
		if len(yes) == 0 {
			b.WriteString("(none at this scale)")
		} else {
			b.WriteString(strings.Join(yes, ", "))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Table 2: literature comparison ---

// Table2Comparators are the registry names of the default literature
// comparator columns, in display order. Table2 resolves them through
// solver.Lookup, so adding a comparator means registering a solver and
// appending its name here (or passing a custom list to Table2Solvers) —
// not growing a switch.
var Table2Comparators = []string{"struggle", "cma-lth"}

// Table2Cell is one comparator column of a row: the solver's registry
// name and its mean makespan on the row's instance.
type Table2Cell struct {
	Solver string
	Mean   float64
}

// Table2Row compares mean makespans on one instance: one cell per
// comparator solver, plus PA-CGA at the short budget (the paper's
// "10 sec" column) and at the full budget.
type Table2Row struct {
	Instance    string
	Comparators []Table2Cell
	Short, Full float64
}

// best returns the row minimum across every column.
func (r Table2Row) best() float64 {
	best := r.Short
	for _, c := range r.Comparators {
		if c.Mean < best {
			best = c.Mean
		}
	}
	if r.Full < best {
		best = r.Full
	}
	return best
}

// BestIsPACGA reports whether one of the PA-CGA columns holds the row
// minimum.
func (r Table2Row) BestIsPACGA() bool {
	best := r.best()
	return r.Short == best || r.Full == best
}

// Table2 runs the default comparator columns against PA-CGA on each
// instance, reproducing the paper's comparison *semantics*: the
// published Struggle GA and cMA+LTH numbers were produced by 90-second
// runs on hardware the paper measures to be ~9× slower (the TSCP
// calibration), so the comparators receive budget/ShortDivisor — the
// same effective compute as the paper's comparators had. PA-CGA appears
// at that same short budget (the paper's "10 sec" column: an
// equal-compute comparison) and at the full budget (the paper's
// headline 90 s column).
func Table2(instances []*etc.Instance, sc Scale) ([]Table2Row, error) {
	return Table2SolversContext(context.Background(), instances, sc, Table2Comparators)
}

// Table2Context is Table2 under a context; see Fig4Context for the
// cancellation contract.
func Table2Context(ctx context.Context, instances []*etc.Instance, sc Scale) ([]Table2Row, error) {
	return Table2SolversContext(ctx, instances, sc, Table2Comparators)
}

// Table2Solvers is Table2 with an explicit comparator column list:
// every name is resolved through the solver registry and run at the
// short budget through the unified Solver interface.
func Table2Solvers(instances []*etc.Instance, sc Scale, comparators []string) ([]Table2Row, error) {
	return Table2SolversContext(context.Background(), instances, sc, comparators)
}

// Table2SolversContext is Table2Solvers under a context.
func Table2SolversContext(ctx context.Context, instances []*etc.Instance, sc Scale, comparators []string) ([]Table2Row, error) {
	sc = sc.withDefaults()
	solvers := make([]solver.Solver, len(comparators))
	for i, name := range comparators {
		s, err := solver.Lookup(name)
		if err != nil {
			return nil, err
		}
		solvers[i] = s
	}

	// Per the Scale contract, the evaluation budget applies only when no
	// wall-clock budget is set (a wall-clock scale must not be silently
	// truncated by a leftover evaluation count).
	var fullBudget, shortBudget solver.Budget
	if sc.WallTime > 0 {
		fullBudget.MaxDuration = sc.WallTime
		shortBudget.MaxDuration = sc.WallTime / time.Duration(sc.ShortDivisor)
	} else {
		fullBudget.MaxEvaluations = sc.Evaluations
		shortBudget.MaxEvaluations = sc.Evaluations / int64(sc.ShortDivisor)
		if shortBudget.MaxEvaluations < 1 {
			shortBudget.MaxEvaluations = 1
		}
	}

	pacga := core.PACGA{Params: core.DefaultParams()}
	pacga.Params.Threads = sc.Threads

	rows := make([]Table2Row, 0, len(instances))
	for _, inst := range instances {
		row := Table2Row{Instance: inst.Name, Comparators: make([]Table2Cell, len(comparators))}
		for i, name := range comparators {
			row.Comparators[i].Solver = name
		}
		var shSum, fSum float64
		for run := 0; run < sc.Runs; run++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			seed := sc.BaseSeed + uint64(run)
			for i, s := range solvers {
				res, err := solver.WithSeed(s, seed).Solve(ctx, inst, shortBudget)
				if err != nil {
					return nil, err
				}
				row.Comparators[i].Mean += res.BestFitness
			}
			sh, err := solver.WithSeed(pacga, seed).Solve(ctx, inst, shortBudget)
			if err != nil {
				return nil, err
			}
			fl, err := solver.WithSeed(pacga, seed).Solve(ctx, inst, fullBudget)
			if err != nil {
				return nil, err
			}
			shSum += sh.BestFitness
			fSum += fl.BestFitness
		}
		n := float64(sc.Runs)
		for i := range row.Comparators {
			row.Comparators[i].Mean /= n
		}
		row.Short, row.Full = shSum/n, fSum/n
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable2 renders the comparison table; the row minimum is starred,
// matching the paper's bold entries.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Comparison versus other algorithms (mean makespan; * = row best)\n\n")
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "  %-12s", "instance")
	for _, c := range rows[0].Comparators {
		fmt.Fprintf(&b, " %14s", c.Solver)
	}
	fmt.Fprintf(&b, " %14s %14s\n", "PA-CGA short", "PA-CGA full")
	for _, r := range rows {
		best := r.best()
		cell := func(v float64) string {
			s := fmt.Sprintf("%.1f", v)
			if v == best {
				s += "*"
			}
			return s
		}
		fmt.Fprintf(&b, "  %-12s", r.Instance)
		for _, c := range r.Comparators {
			fmt.Fprintf(&b, " %14s", cell(c.Mean))
		}
		fmt.Fprintf(&b, " %14s %14s\n", cell(r.Short), cell(r.Full))
	}
	return b.String()
}

// --- Fig. 6: convergence ---

// Fig6Series is the mean population makespan per generation for one
// thread count, averaged over replications (truncated to the shortest
// replication so every generation averages the same number of runs).
type Fig6Series struct {
	Threads int
	Mean    []float64
}

// Fig6 records convergence for 1..4 threads on one instance.
func Fig6(inst *etc.Instance, sc Scale) ([]Fig6Series, error) {
	return Fig6Context(context.Background(), inst, sc)
}

// Fig6Context is Fig6 under a context; see Fig4Context for the
// cancellation contract.
func Fig6Context(ctx context.Context, inst *etc.Instance, sc Scale) ([]Fig6Series, error) {
	sc = sc.withDefaults()
	var out []Fig6Series
	for threads := 1; threads <= Fig4MaxThreads; threads++ {
		var perRun [][]float64
		for run := 0; run < sc.Runs; run++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p := core.DefaultParams()
			p.Threads = threads
			p.Seed = sc.BaseSeed + uint64(run)
			p.RecordConvergence = true
			sc.apply(&p)
			res, err := core.RunContext(ctx, inst, p)
			if err != nil {
				return nil, err
			}
			if len(res.Convergence) > 0 {
				perRun = append(perRun, res.Convergence)
			}
		}
		if len(perRun) == 0 {
			out = append(out, Fig6Series{Threads: threads})
			continue
		}
		minLen := len(perRun[0])
		for _, s := range perRun[1:] {
			if len(s) < minLen {
				minLen = len(s)
			}
		}
		mean := make([]float64, minLen)
		for g := 0; g < minLen; g++ {
			sum := 0.0
			for _, s := range perRun {
				sum += s[g]
			}
			mean[g] = sum / float64(len(perRun))
		}
		out = append(out, Fig6Series{Threads: threads, Mean: mean})
	}
	return out, nil
}

// RenderFig6 renders the convergence chart.
func RenderFig6(series []Fig6Series) string {
	var b strings.Builder
	b.WriteString("Fig. 6: Evolution of the algorithm (mean population makespan vs generations)\n\n")
	var ts []textplot.Series
	for _, s := range series {
		if len(s.Mean) == 0 {
			continue
		}
		ps := textplot.Series{Name: fmt.Sprintf("%d thread(s)", s.Threads)}
		for g, v := range s.Mean {
			ps.X = append(ps.X, float64(g+1))
			ps.Y = append(ps.Y, v)
		}
		ts = append(ts, ps)
	}
	b.WriteString(textplot.LineChart("", ts, 64, 18))
	b.WriteString("\n  threads  generations  final-mean-makespan\n")
	for _, s := range series {
		if len(s.Mean) == 0 {
			fmt.Fprintf(&b, "  %7d  %11d  %s\n", s.Threads, 0, "(no data)")
			continue
		}
		fmt.Fprintf(&b, "  %7d  %11d  %19.1f\n", s.Threads, len(s.Mean), s.Mean[len(s.Mean)-1])
	}
	return b.String()
}

// BenchmarkInstances loads the 12-instance suite; a convenience shared
// by the binary and the benches.
func BenchmarkInstances() ([]*etc.Instance, error) {
	return etc.Benchmark()
}
