package experiments

import (
	"strings"
	"testing"
)

func TestDiversityStudyShape(t *testing.T) {
	in := smallInstance(t, "u_i_hihi.0")
	sc := Scale{Runs: 2, BaseSeed: 5}
	series, err := DiversityStudy(in, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d series, want 3", len(series))
	}
	byName := map[string][]float64{}
	for _, s := range series {
		if len(s.Mean) == 0 {
			t.Fatalf("model %s produced no data", s.Model)
		}
		for g, v := range s.Mean {
			if v < 0 || v > 1 {
				t.Fatalf("%s diversity[%d] = %v outside [0,1]", s.Model, g, v)
			}
		}
		byName[s.Model] = s.Mean
	}
	cell := byName["cellular"]
	cell3 := byName["cellular-3t"]
	pan := byName["panmictic"]
	if cell == nil || cell3 == nil || pan == nil {
		t.Fatal("missing models")
	}
	// Every model's diversity must erode under selection.
	for name, s := range byName {
		if s[len(s)-1] >= s[0] {
			t.Fatalf("%s diversity did not decrease: %v -> %v", name, s[0], s[len(s)-1])
		}
	}
	// The robust structural effect: the block partition niches the
	// population, so the 3-thread cellular model retains at least as
	// much *global* diversity as the single-block cellular model. The
	// race detector's scheduler skews the asynchronous workers far
	// outside realistic interleavings (worker 0 can lap the others, so
	// its global samples see a population the unslowed algorithm never
	// produces), so the timing-sensitive comparison is skipped there.
	if !raceEnabled && cell3[len(cell3)-1] < cell[len(cell)-1]*0.8 {
		t.Fatalf("block partition destroyed diversity: 3t final %v vs 1t final %v",
			cell3[len(cell3)-1], cell[len(cell)-1])
	}
}

func TestRenderDiversity(t *testing.T) {
	series := []DiversitySeries{
		{Model: "cellular", Mean: []float64{0.9, 0.8, 0.7}},
		{Model: "panmictic", Mean: []float64{0.9, 0.5, 0.2}},
	}
	out := RenderDiversity(series)
	for _, want := range []string{"cellular", "panmictic", "half-life"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Panmictic halves at generation 3 (0.2 <= 0.45); cellular never.
	if !strings.Contains(out, ">end") {
		t.Fatalf("half-life column wrong:\n%s", out)
	}
}

func TestMeanSeries(t *testing.T) {
	got := meanSeries([][]float64{{2, 4, 6}, {4, 6}})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("meanSeries = %v", got)
	}
	if meanSeries(nil) != nil {
		t.Fatal("empty meanSeries not nil")
	}
}
