package experiments

import (
	"context"
	"fmt"
	"strings"

	"gridsched/internal/baselines"
	"gridsched/internal/core"
	"gridsched/internal/etc"
	"gridsched/internal/operators"
	"gridsched/internal/textplot"
)

// DiversitySeries is one population model's mean per-task Simpson
// diversity per generation, averaged over replications (truncated to the
// shortest replication).
type DiversitySeries struct {
	Model string
	Mean  []float64
}

// DiversityStudy quantifies §3.1's founding claim — cellular populations
// keep genotypic diversity longer than panmictic ones — by recording
// per-generation diversity for three models at equal population size and
// generation budget:
//
//   - "cellular" — the asynchronous cellular GA (PA-CGA with one thread);
//   - "cellular-3t" — PA-CGA with the paper's 3 threads, to show the
//     block partition does not destroy the effect;
//   - "panmictic" — the generational GA, where anyone mates with anyone.
//
// To isolate *population structure*, everything else is equalized: no
// Min-min super-individual, no local search (H2LL pulls every individual
// toward the same packing and would dominate the comparison), binary
// tournament selection and identical operator probabilities in all
// models. The only difference left is whether mating is restricted to an
// L5 neighborhood or global.
func DiversityStudy(inst *etc.Instance, sc Scale) ([]DiversitySeries, error) {
	return DiversityStudyContext(context.Background(), inst, sc)
}

// DiversityStudyContext is DiversityStudy under a context: cancellation
// stops the current run through the budget engine and aborts the study
// with the context's error.
func DiversityStudyContext(ctx context.Context, inst *etc.Instance, sc Scale) ([]DiversitySeries, error) {
	sc = sc.withDefaults()
	gens := int64(40)

	cellular := func(threads int) func(seed uint64) ([]float64, error) {
		return func(seed uint64) ([]float64, error) {
			p := core.DefaultParams()
			p.Threads = threads
			p.Seed = seed
			p.MaxGenerations = gens
			p.LocalProb = 0
			p.Selector = operators.BinaryTournament{}
			p.CrossProb, p.MutProb = 0.9, 0.2
			p.DisableMinMinSeed = true
			p.RecordDiversity = true
			res, err := core.RunContext(ctx, inst, p)
			if err != nil {
				return nil, err
			}
			return res.Diversity, nil
		}
	}
	type runner func(seed uint64) ([]float64, error)
	models := []struct {
		name string
		run  runner
	}{
		{"cellular", cellular(1)},
		{"cellular-3t", cellular(3)},
		{"panmictic", func(seed uint64) ([]float64, error) {
			res, err := baselines.GenerationalContext(ctx, inst, baselines.GenerationalConfig{
				PopSize:         256,
				Seed:            seed,
				MaxGenerations:  gens,
				CrossProb:       0.9,
				MutProb:         0.2,
				RecordDiversity: true,
			})
			if err != nil {
				return nil, err
			}
			return res.Diversity, nil
		}},
	}

	out := make([]DiversitySeries, 0, len(models))
	for _, m := range models {
		var perRun [][]float64
		for run := 0; run < sc.Runs; run++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			series, err := m.run(sc.BaseSeed + uint64(run))
			if err != nil {
				return nil, err
			}
			if len(series) > 0 {
				perRun = append(perRun, series)
			}
		}
		out = append(out, DiversitySeries{Model: m.name, Mean: meanSeries(perRun)})
	}
	return out, nil
}

// meanSeries averages replicated series pointwise, truncating to the
// shortest replication.
func meanSeries(perRun [][]float64) []float64 {
	if len(perRun) == 0 {
		return nil
	}
	minLen := len(perRun[0])
	for _, s := range perRun[1:] {
		if len(s) < minLen {
			minLen = len(s)
		}
	}
	mean := make([]float64, minLen)
	for g := 0; g < minLen; g++ {
		sum := 0.0
		for _, s := range perRun {
			sum += s[g]
		}
		mean[g] = sum / float64(len(perRun))
	}
	return mean
}

// RenderDiversity renders the study as a line chart plus a half-life
// table (generations until diversity halves from its first sample).
func RenderDiversity(series []DiversitySeries) string {
	var b strings.Builder
	b.WriteString("Diversity study: population diversity vs generations (no local search)\n\n")
	var ts []textplot.Series
	for _, s := range series {
		if len(s.Mean) == 0 {
			continue
		}
		ps := textplot.Series{Name: s.Model}
		for g, v := range s.Mean {
			ps.X = append(ps.X, float64(g+1))
			ps.Y = append(ps.Y, v)
		}
		ts = append(ts, ps)
	}
	b.WriteString(textplot.LineChart("", ts, 64, 16))
	b.WriteString("\n  model        first    final    half-life (gens)\n")
	for _, s := range series {
		if len(s.Mean) == 0 {
			continue
		}
		half := -1
		for g, v := range s.Mean {
			if v <= s.Mean[0]/2 {
				half = g + 1
				break
			}
		}
		halfStr := ">end"
		if half > 0 {
			halfStr = fmt.Sprintf("%d", half)
		}
		fmt.Fprintf(&b, "  %-12s %6.3f   %6.3f    %s\n", s.Model, s.Mean[0], s.Mean[len(s.Mean)-1], halfStr)
	}
	return b.String()
}
