//go:build !race

package experiments

// raceEnabled reports whether the race detector instruments this test
// binary; timing-sensitive assertions consult it.
const raceEnabled = false
