package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV writers for each experiment, so results can be post-processed with
// external plotting tools. Columns mirror the structured row types.

// WriteFig4CSV writes threads, ls iterations, mean evaluations and
// speedup percent.
func WriteFig4CSV(w io.Writer, rows []Fig4Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"threads", "ls_iters", "mean_evaluations", "speedup_pct"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.Threads),
			strconv.Itoa(r.LSIters),
			formatF(r.MeanEvals),
			formatF(r.SpeedupPct),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig5CSV writes one record per replication: instance, config, run
// index and makespan — the raw material of the box plots.
func WriteFig5CSV(w io.Writer, cells []Fig5Cell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"instance", "config", "run", "makespan"}); err != nil {
		return err
	}
	for _, c := range cells {
		for i, m := range c.Makespans {
			rec := []string{c.Instance, c.Config, strconv.Itoa(i), formatF(m)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV writes one mean-makespan column per comparator solver
// (header: the registry name with "-" mapped to "_") plus the two
// PA-CGA columns per instance.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	header := []string{"instance"}
	if len(rows) > 0 {
		for _, c := range rows[0].Comparators {
			header = append(header, strings.ReplaceAll(c.Solver, "-", "_"))
		}
	}
	header = append(header, "pacga_short", "pacga_full")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Instance}
		for _, c := range r.Comparators {
			rec = append(rec, formatF(c.Mean))
		}
		rec = append(rec, formatF(r.Short), formatF(r.Full))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig6CSV writes one record per (threads, generation) pair.
func WriteFig6CSV(w io.Writer, series []Fig6Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"threads", "generation", "mean_makespan"}); err != nil {
		return err
	}
	for _, s := range series {
		for g, v := range s.Mean {
			rec := []string{strconv.Itoa(s.Threads), strconv.Itoa(g + 1), formatF(v)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string { return fmt.Sprintf("%.4f", v) }
