package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"gridsched/internal/stats"
)

func parseCSV(t *testing.T, b *bytes.Buffer) [][]string {
	t.Helper()
	recs, err := csv.NewReader(b).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWriteFig4CSV(t *testing.T) {
	rows := []Fig4Row{
		{Threads: 1, LSIters: 5, MeanEvals: 1000, SpeedupPct: 100},
		{Threads: 2, LSIters: 5, MeanEvals: 1700, SpeedupPct: 170},
	}
	var buf bytes.Buffer
	if err := WriteFig4CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "threads" || recs[2][3] != "170.0000" {
		t.Fatalf("unexpected content: %v", recs)
	}
}

func TestWriteFig5CSV(t *testing.T) {
	box, err := stats.NewBoxPlot([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cells := []Fig5Cell{
		{Instance: "u_c_hihi.0", Config: "tpx/10", Makespans: []float64{1, 2}, Box: box},
	}
	var buf bytes.Buffer
	if err := WriteFig5CSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 3 { // header + 2 replications
		t.Fatalf("%d records", len(recs))
	}
	if recs[1][0] != "u_c_hihi.0" || recs[1][1] != "tpx/10" || recs[2][2] != "1" {
		t.Fatalf("unexpected content: %v", recs)
	}
}

func TestWriteTable2CSV(t *testing.T) {
	rows := []Table2Row{{
		Instance:    "u_i_lolo.0",
		Comparators: []Table2Cell{{Solver: "struggle", Mean: 4}, {Solver: "cma-lth", Mean: 3}},
		Short:       2,
		Full:        1,
	}}
	var buf bytes.Buffer
	if err := WriteTable2CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"instance", "struggle", "cma_lth", "pacga_short", "u_i_lolo.0", "1.0000", "4.0000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFig6CSV(t *testing.T) {
	series := []Fig6Series{{Threads: 3, Mean: []float64{9, 8, 7}}}
	var buf bytes.Buffer
	if err := WriteFig6CSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 4 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[3][1] != "3" || recs[3][2] != "7.0000" {
		t.Fatalf("unexpected content: %v", recs)
	}
}
