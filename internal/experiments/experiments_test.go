package experiments

import (
	"strings"
	"testing"
	"time"

	"gridsched/internal/etc"
)

func smallInstance(t testing.TB, name string) *etc.Instance {
	t.Helper()
	cl, err := etc.ParseClass(name)
	if err != nil {
		t.Fatal(err)
	}
	in, err := etc.Generate(etc.GenSpec{Class: cl, Tasks: 64, Machines: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// tinyScale returns a deterministic, very fast scale for unit tests.
func tinyScale() Scale {
	return Scale{Runs: 2, Evaluations: 1500, ShortDivisor: 9, Threads: 2, BaseSeed: 7}
}

func TestScaleDefaults(t *testing.T) {
	sc := Scale{}.withDefaults()
	if sc.Runs <= 0 || sc.Evaluations <= 0 || sc.ShortDivisor <= 0 || sc.Threads <= 0 {
		t.Fatalf("defaults incomplete: %+v", sc)
	}
	ci := CIScale()
	if ci.WallTime != 0 {
		t.Fatal("CI scale must be deterministic (no wall clock)")
	}
	ps := PaperScale()
	if ps.Runs != 100 || ps.WallTime != 90*time.Second {
		t.Fatalf("paper scale wrong: %+v", ps)
	}
}

func TestTable1MentionsPaperParameters(t *testing.T) {
	out := Table1()
	for _, want := range []string{"16x16", "L5", "best2", "p_comb = 1.0", "p_mut = 1.0", "h2ll/10", "Min-min", "if-better"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig4RequiresWallClock(t *testing.T) {
	in := smallInstance(t, "u_c_hihi.0")
	if _, err := Fig4(in, tinyScale()); err == nil {
		t.Fatal("Fig4 accepted an evaluation-budget scale")
	}
}

func TestFig4ShapeAndBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	in := smallInstance(t, "u_c_hihi.0")
	sc := Scale{Runs: 1, WallTime: 30 * time.Millisecond, Threads: 3, BaseSeed: 1}
	rows, err := Fig4(in, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig4LSIterations)*Fig4MaxThreads {
		t.Fatalf("%d rows, want %d", len(rows), len(Fig4LSIterations)*Fig4MaxThreads)
	}
	for _, r := range rows {
		if r.Threads == 1 && r.SpeedupPct != 100 {
			t.Fatalf("1-thread speedup %v, want 100", r.SpeedupPct)
		}
		if r.MeanEvals <= 0 {
			t.Fatalf("no evaluations measured for %+v", r)
		}
	}
	out := RenderFig4(rows)
	if !strings.Contains(out, "Fig. 4") || !strings.Contains(out, "10 iteration(s)") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestFig5CellsAndRender(t *testing.T) {
	instances := []*etc.Instance{smallInstance(t, "u_i_hihi.0"), smallInstance(t, "u_c_lolo.0")}
	cells, err := Fig5(instances, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*4 {
		t.Fatalf("%d cells, want 8", len(cells))
	}
	labels := map[string]bool{}
	for _, c := range cells {
		labels[c.Config] = true
		if len(c.Makespans) != 2 {
			t.Fatalf("cell %s/%s has %d samples", c.Instance, c.Config, len(c.Makespans))
		}
		if c.Box.N != 2 {
			t.Fatal("box plot sample count mismatch")
		}
	}
	for _, want := range []string{"opx/5", "tpx/5", "opx/10", "tpx/10"} {
		if !labels[want] {
			t.Fatalf("config %s missing", want)
		}
	}
	out := RenderFig5(cells)
	if !strings.Contains(out, "u_i_hihi.0") || !strings.Contains(out, "tpx/10") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "Significance") {
		t.Fatal("render missing significance summary")
	}
}

func TestFig5SignificanceStructure(t *testing.T) {
	instances := []*etc.Instance{smallInstance(t, "u_s_hilo.0")}
	cells, err := Fig5(instances, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	sig, err := Fig5Significance(cells)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sig["u_s_hilo.0"]; !ok {
		t.Fatal("instance missing from significance map")
	}
	// Missing config should error.
	if _, err := Fig5Significance(cells[:1]); err == nil {
		t.Fatal("incomplete cells accepted")
	}
}

func TestTable2RowsAndRender(t *testing.T) {
	instances := []*etc.Instance{smallInstance(t, "u_i_hilo.0")}
	rows, err := Table2(instances, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.Instance != "u_i_hilo.0" {
		t.Fatalf("instance %s", r.Instance)
	}
	if len(r.Comparators) != len(Table2Comparators) {
		t.Fatalf("%d comparator columns, want %d", len(r.Comparators), len(Table2Comparators))
	}
	vals := []float64{r.Short, r.Full}
	for _, c := range r.Comparators {
		vals = append(vals, c.Mean)
	}
	for _, v := range vals {
		if v <= 0 {
			t.Fatalf("non-positive makespan in row %+v", r)
		}
	}
	// The full-budget PA-CGA should beat the short-budget one (or tie).
	if r.Full > r.Short {
		t.Fatalf("full budget (%v) worse than short budget (%v)", r.Full, r.Short)
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "u_i_hilo.0") || !strings.Contains(out, "*") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestTable2BestIsPACGA(t *testing.T) {
	comparators := func(a, b float64) []Table2Cell {
		return []Table2Cell{{Solver: "struggle", Mean: a}, {Solver: "cma-lth", Mean: b}}
	}
	r := Table2Row{Comparators: comparators(10, 9), Short: 8, Full: 7}
	if !r.BestIsPACGA() {
		t.Fatal("PA-CGA best not detected")
	}
	r = Table2Row{Comparators: comparators(5, 9), Short: 8, Full: 7}
	if r.BestIsPACGA() {
		t.Fatal("false PA-CGA win")
	}
}

func TestTable2SolversUnknownComparator(t *testing.T) {
	instances := []*etc.Instance{smallInstance(t, "u_i_hilo.0")}
	if _, err := Table2Solvers(instances, tinyScale(), []string{"no-such-solver"}); err == nil {
		t.Fatal("unknown comparator accepted")
	}
}

func TestFig6SeriesAndRender(t *testing.T) {
	in := smallInstance(t, "u_c_hihi.0")
	sc := tinyScale()
	series, err := Fig6(in, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != Fig4MaxThreads {
		t.Fatalf("%d series, want %d", len(series), Fig4MaxThreads)
	}
	for _, s := range series {
		if len(s.Mean) == 0 {
			t.Fatalf("threads=%d produced no convergence data", s.Threads)
		}
		for g := 1; g < len(s.Mean); g++ {
			if s.Mean[g] > s.Mean[g-1]+1e-6 {
				t.Fatalf("threads=%d: population mean increased at generation %d", s.Threads, g)
			}
		}
	}
	out := RenderFig6(series)
	if !strings.Contains(out, "Fig. 6") || !strings.Contains(out, "3 thread(s)") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestBenchmarkInstances(t *testing.T) {
	suite, err := BenchmarkInstances()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 12 {
		t.Fatalf("suite size %d", len(suite))
	}
}
