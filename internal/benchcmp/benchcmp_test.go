package benchcmp

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: gridsched
cpu: some cpu
BenchmarkIncrementalEval-8      	24414818	        48.94 ns/op
BenchmarkFullRecomputeEval-8    	  145813	      8207 ns/op	       0 B/op	       0 allocs/op
BenchmarkH2LLCandidates/n=2-8   	  981121	      1221 ns/op
BenchmarkETCLayoutTransposed-16 	   10000	    105000 ns/op
PASS
ok  	gridsched	12.3s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkIncrementalEval":     48.94,
		"BenchmarkFullRecomputeEval":   8207,
		"BenchmarkH2LLCandidates/n=2":  1221,
		"BenchmarkETCLayoutTransposed": 105000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestParseKeepsMinimumOfDuplicates(t *testing.T) {
	out := "BenchmarkX-8 10 100 ns/op\nBenchmarkX-8 10 90 ns/op\nBenchmarkX-8 10 120 ns/op\n"
	got, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"] != 90 {
		t.Fatalf("duplicate handling picked %v, want min 90", got["BenchmarkX"])
	}
}

func TestParseEmptyErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("no benchmark lines accepted")
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":                  "BenchmarkX",
		"BenchmarkX-128":                "BenchmarkX",
		"BenchmarkX":                    "BenchmarkX",
		"BenchmarkH2LLCandidates/n=2-8": "BenchmarkH2LLCandidates/n=2",
		"BenchmarkWeird-name":           "BenchmarkWeird-name",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func testBaseline() Baseline {
	return Baseline{
		Threshold: 0.25,
		Benchmarks: map[string]Entry{
			"BenchmarkA": {NsPerOp: 100},
			"BenchmarkB": {NsPerOp: 1000},
		},
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	results, ok := Compare(testBaseline(), map[string]float64{
		"BenchmarkA": 124, // +24%: inside the 25% gate
		"BenchmarkB": 800, // faster is always fine
		"BenchmarkC": 5,   // new benchmark: ignored
	}, 0)
	if !ok {
		t.Fatalf("guard failed within threshold: %+v", results)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
}

func TestCompareRegression(t *testing.T) {
	results, ok := Compare(testBaseline(), map[string]float64{
		"BenchmarkA": 126, // +26%: beyond the gate
		"BenchmarkB": 1000,
	}, 0)
	if ok {
		t.Fatal("guard passed a 26% regression")
	}
	for _, r := range results {
		if r.Name == "BenchmarkA" && !r.Regressed {
			t.Fatalf("BenchmarkA not flagged: %+v", r)
		}
		if r.Name == "BenchmarkB" && r.Regressed {
			t.Fatalf("BenchmarkB flagged spuriously: %+v", r)
		}
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	_, ok := Compare(testBaseline(), map[string]float64{"BenchmarkA": 100}, 0)
	if ok {
		t.Fatal("guard passed with a baseline benchmark missing from the run")
	}
}

func TestCompareExplicitThresholdOverrides(t *testing.T) {
	_, ok := Compare(testBaseline(), map[string]float64{
		"BenchmarkA": 140, // +40%
		"BenchmarkB": 1000,
	}, 0.5)
	if !ok {
		t.Fatal("explicit 50% threshold not honored")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, testBaseline()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Threshold != 0.25 || len(back.Benchmarks) != 2 || back.Benchmarks["BenchmarkA"].NsPerOp != 100 {
		t.Fatalf("round-trip mangled baseline: %+v", back)
	}
}

func TestReadBaselineRejectsEmpty(t *testing.T) {
	if _, err := ReadBaseline(strings.NewReader(`{"threshold":0.25,"benchmarks":{}}`)); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

func TestCompareAbsoluteFloor(t *testing.T) {
	// A sub-nanosecond benchmark regressing 50% relative but well under
	// the absolute floor is clock variance, not a code regression.
	base := Baseline{Threshold: 0.25, Benchmarks: map[string]Entry{
		"BenchmarkTiny": {NsPerOp: 0.6},
		"BenchmarkBig":  {NsPerOp: 100},
	}}
	results, ok := Compare(base, map[string]float64{
		"BenchmarkTiny": 0.9, // +50% relative, +0.3 ns absolute
		"BenchmarkBig":  100,
	}, 0)
	if !ok {
		t.Fatalf("guard failed on a sub-floor absolute delta: %+v", results)
	}
	// The floor must not shelter real regressions on normal benchmarks.
	if _, ok := Compare(base, map[string]float64{
		"BenchmarkTiny": 0.6,
		"BenchmarkBig":  140, // +40%, +40 ns
	}, 0); ok {
		t.Fatal("guard passed a 40% regression above the floor")
	}
	// An explicit baseline floor overrides the default.
	base.FloorNs = 50
	if _, ok := Compare(base, map[string]float64{
		"BenchmarkTiny": 0.6,
		"BenchmarkBig":  140, // +40 ns: under the 50 ns floor
	}, 0); !ok {
		t.Fatal("explicit 50 ns floor not honored")
	}
}
