// Package benchcmp parses `go test -bench` output and compares it
// against a checked-in JSON baseline, so CI can fail on throughput
// regressions in the makespan-evaluation hot path instead of silently
// archiving slower numbers. cmd/benchguard is the CLI.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded cost.
type Entry struct {
	// NsPerOp is the benchmark's reported time per operation.
	NsPerOp float64 `json:"ns_per_op"`
}

// Baseline is the checked-in reference (BENCH_baseline.json at the
// repository root): benchmark name → cost, plus provenance notes.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note,omitempty"`
	// Threshold is the relative regression that fails the guard
	// (0.25 = fail when ns/op grows more than 25%); guards may
	// override it.
	Threshold float64 `json:"threshold"`
	// FloorNs is the absolute ns/op growth a regression must also
	// exceed before it fails the guard (default 2 ns). Sub-nanosecond
	// benchmarks (the O(1) makespan read is ~2-3 CPU cycles) vary more
	// than any relative threshold across runner SKUs and clock states;
	// the floor keeps them recorded without letting clock variance
	// fail the build, while leaving every benchmark above a few ns/op
	// fully guarded (their 25% exceeds the floor many times over).
	FloorNs float64 `json:"floor_ns,omitempty"`
	// Benchmarks maps the name as printed by `go test -bench` (with
	// the -N GOMAXPROCS suffix stripped) to its recorded cost.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkIncrementalEval-8   123456789   9.573 ns/op   0 B/op
//
// Sub-benchmarks keep their full slash path.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.e+]+) ns/op`)

// Parse extracts benchmark name → ns/op from `go test -bench` output.
// The trailing "-N" GOMAXPROCS suffix is stripped so baselines survive
// machines with different core counts. Duplicate names (e.g. -count>1)
// keep the minimum, the conventional noise-robust pick.
func Parse(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := stripProcSuffix(m[1])
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad ns/op %q for %s: %v", m[2], name, err)
		}
		if prev, ok := out[name]; !ok || ns < prev {
			out[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmark lines found")
	}
	return out, nil
}

// stripProcSuffix removes the trailing -N GOMAXPROCS marker from a
// benchmark name, leaving sub-benchmark paths intact.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Result is the outcome of one benchmark's comparison.
type Result struct {
	Name     string
	Baseline float64 // ns/op recorded in the baseline
	Current  float64 // ns/op measured now
	// Delta is the relative change: positive = slower than baseline.
	Delta float64
	// Regressed reports Delta beyond the threshold.
	Regressed bool
	// Missing reports a baseline benchmark absent from the current
	// output (a renamed or deleted benchmark must update the baseline).
	Missing bool
}

// DefaultFloorNs is the absolute-growth floor applied when neither the
// baseline nor the caller sets one.
const DefaultFloorNs = 2.0

// Compare checks every baseline benchmark against the current
// measurements. Benchmarks present in current but absent from the
// baseline are ignored (new benchmarks do not fail the guard; add them
// with -update). A regression fails the guard only when it exceeds the
// relative threshold and the absolute floor (see Baseline.FloorNs).
// The returned results are sorted by name; ok reports whether the
// guard passes.
func Compare(base Baseline, current map[string]float64, threshold float64) (results []Result, ok bool) {
	if threshold <= 0 {
		threshold = base.Threshold
	}
	if threshold <= 0 {
		threshold = 0.25
	}
	floor := base.FloorNs
	if floor <= 0 {
		floor = DefaultFloorNs
	}
	ok = true
	for name, want := range base.Benchmarks {
		res := Result{Name: name, Baseline: want.NsPerOp}
		got, found := current[name]
		if !found {
			res.Missing = true
			ok = false
			results = append(results, res)
			continue
		}
		res.Current = got
		if want.NsPerOp > 0 {
			res.Delta = got/want.NsPerOp - 1
		}
		if res.Delta > threshold && got-want.NsPerOp > floor {
			res.Regressed = true
			ok = false
		}
		results = append(results, res)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results, ok
}

// ReadBaseline decodes a Baseline.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return Baseline{}, fmt.Errorf("benchcmp: decoding baseline: %v", err)
	}
	if len(b.Benchmarks) == 0 {
		return Baseline{}, fmt.Errorf("benchcmp: baseline lists no benchmarks")
	}
	return b, nil
}

// WriteBaseline encodes a Baseline with stable formatting.
func WriteBaseline(w io.Writer, b Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
