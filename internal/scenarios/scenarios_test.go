package scenarios

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/service"
	"gridsched/internal/solver"

	_ "gridsched/internal/baselines"
	_ "gridsched/internal/core"
	_ "gridsched/internal/heuristics"
	_ "gridsched/internal/islands"
	_ "gridsched/internal/tabu"
)

// smallClasses picks one family per consistency class so the quick
// tests cover the matrix axes without the full 12-way product.
func smallClasses() []etc.Class {
	return []etc.Class{
		{Consistency: etc.Consistent, TaskHet: etc.High, MachineHet: etc.High},
		{Consistency: etc.SemiConsistent, TaskHet: etc.High, MachineHet: etc.Low},
		{Consistency: etc.Inconsistent, TaskHet: etc.Low, MachineHet: etc.High},
	}
}

func TestSweepSmall(t *testing.T) {
	cfg := Config{
		Classes:  smallClasses(),
		Tasks:    48,
		Machines: 6,
		Solvers:  []string{"minmin", "maxmin", "tabu", "pa-cga"},
		Budget:   solver.Budget{MaxEvaluations: 600},
		Seed:     11,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := Sweep(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(cfg.Classes) * len(cfg.Solvers)
	if len(rep.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(rep.Cells), wantCells)
	}
	for _, c := range rep.Cells {
		if c.State != service.StateDone {
			t.Fatalf("%s on %s: state %q (%s)", c.Solver, c.Instance, c.State, c.Err)
		}
		if c.Makespan <= 0 || c.Ratio < 1 {
			t.Fatalf("%s on %s: makespan %v ratio %v", c.Solver, c.Instance, c.Makespan, c.Ratio)
		}
		if c.Evaluations <= 0 {
			t.Fatalf("%s on %s: evaluations %d", c.Solver, c.Instance, c.Evaluations)
		}
		if !strings.Contains(c.Instance, "@48x6") {
			t.Fatalf("cell instance %q not sized", c.Instance)
		}
	}
	// Every class has a winner at ratio exactly 1.
	for _, cl := range cfg.Classes {
		won := false
		for _, c := range rep.Cells {
			if c.Class == cl && ratioIsWin(c.Ratio) {
				won = true
				break
			}
		}
		if !won {
			t.Fatalf("class %s has no ratio-1.0 winner", cl.Name())
		}
	}
	// The instance cache generated each sized matrix exactly once.
	if rep.CacheMisses != int64(len(cfg.Classes)) {
		t.Fatalf("cache misses = %d, want %d (one per class)", rep.CacheMisses, len(cfg.Classes))
	}
	if rep.CacheHits+rep.CacheMisses != int64(wantCells) {
		t.Fatalf("cache hits+misses = %d, want %d", rep.CacheHits+rep.CacheMisses, wantCells)
	}
	// Summaries are complete and ordered best-first.
	if len(rep.Summaries) != len(cfg.Solvers) {
		t.Fatalf("got %d summaries, want %d", len(rep.Summaries), len(cfg.Solvers))
	}
	for i := 1; i < len(rep.Summaries); i++ {
		if rep.Summaries[i-1].MeanRatio > rep.Summaries[i].MeanRatio {
			t.Fatalf("summaries out of order: %v", rep.Summaries)
		}
	}
}

// TestSweepCollectConvergence pins the trace plumbing: under
// CollectConvergence every completed cell carries the job's convergence
// events (ending in a terminal event matching its makespan) and
// WriteConvergenceCSV renders them as one parseable CSV.
func TestSweepCollectConvergence(t *testing.T) {
	cfg := Config{
		Classes:            smallClasses()[:1],
		Tasks:              48,
		Machines:           6,
		Solvers:            []string{"minmin", "tabu"},
		Budget:             solver.Budget{MaxEvaluations: 600},
		Seed:               11,
		CollectConvergence: true,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := Sweep(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if len(c.Events) == 0 {
			t.Fatalf("%s on %s: no convergence events collected", c.Solver, c.Instance)
		}
		last := c.Events[len(c.Events)-1]
		if last.Kind != "done" {
			t.Fatalf("%s on %s: last event kind %q, want done", c.Solver, c.Instance, last.Kind)
		}
		if last.Fitness != c.Makespan {
			t.Fatalf("%s on %s: terminal fitness %v != makespan %v", c.Solver, c.Instance, last.Fitness, c.Makespan)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteConvergenceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("convergence CSV does not parse: %v", err)
	}
	wantRows := 1 // header
	for _, c := range rep.Cells {
		wantRows += len(c.Events)
	}
	if len(rows) != wantRows {
		t.Fatalf("convergence CSV has %d rows, want %d", len(rows), wantRows)
	}
	if got := strings.Join(rows[0], ","); got != "solver,instance,lane,kind,evals,elapsed_ms,fitness" {
		t.Fatalf("convergence CSV header = %q", got)
	}

	// Without the flag, cells stay lean.
	cfg.CollectConvergence = false
	rep2, err := Sweep(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep2.Cells {
		if len(c.Events) != 0 {
			t.Fatalf("%s collected events without CollectConvergence", c.Solver)
		}
	}
}

func TestSweepBackpressure(t *testing.T) {
	// A one-slot queue forces the producer through the retry path for
	// nearly every submission; the sweep must still complete fully.
	cfg := Config{
		Classes:   smallClasses()[:2],
		Tasks:     32,
		Machines:  4,
		Solvers:   []string{"minmin", "mct", "olb"},
		Budget:    solver.Budget{MaxEvaluations: 50},
		QueueSize: 1,
		Workers:   2,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := Sweep(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.State != service.StateDone {
			t.Fatalf("%s on %s: state %q (%s)", c.Solver, c.Instance, c.State, c.Err)
		}
	}
}

func TestSweepUnknownSolver(t *testing.T) {
	_, err := Sweep(context.Background(), Config{Solvers: []string{"nope"}})
	if err == nil || !strings.Contains(err.Error(), "unknown solver") {
		t.Fatalf("unknown solver accepted: %v", err)
	}
}

func TestSweepCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	// A budget long enough that cancellation, not completion, ends it.
	_, err := Sweep(ctx, Config{
		Classes:  smallClasses(),
		Tasks:    64,
		Machines: 8,
		Budget:   solver.Budget{MaxDuration: time.Hour, MaxEvaluations: 1 << 40},
	})
	if err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
	// The service behind the sweep fully unwound.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancelled sweep: %d > %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepFullMatrix runs the complete 12-class × every-registered-
// solver sweep end to end (at reduced dimensions and budget so it stays
// minutes-not-hours even under -race). Gated behind -short.
func TestSweepFullMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full 12-class sweep skipped in -short mode")
	}
	cfg := Config{
		Tasks:    64,
		Machines: 8,
		Budget:   solver.Budget{MaxEvaluations: 800},
		Seed:     3,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	rep, err := Sweep(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 12 {
		t.Fatalf("swept %d classes, want 12", len(rep.Classes))
	}
	if len(rep.Solvers) != len(solver.Names()) {
		t.Fatalf("swept %d solvers, want %d", len(rep.Solvers), len(solver.Names()))
	}
	for _, c := range rep.Cells {
		if c.State != service.StateDone {
			t.Fatalf("%s on %s: state %q (%s)", c.Solver, c.Instance, c.State, c.Err)
		}
	}

	table := rep.Table()
	for _, cl := range rep.Classes {
		if !strings.Contains(table, classLabel(cl)) {
			t.Fatalf("table missing class column %s:\n%s", classLabel(cl), table)
		}
	}
	for _, name := range rep.Solvers {
		if !strings.Contains(table, name) {
			t.Fatalf("table missing solver row %s:\n%s", name, table)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+len(rep.Cells) {
		t.Fatalf("CSV has %d records, want %d", len(recs), 1+len(rep.Cells))
	}
}

// TestReportRendersFailures pins the failure rendering path without
// needing a failing solver: a hand-built report with one failed cell.
func TestReportRendersFailures(t *testing.T) {
	cl := smallClasses()[0]
	rep := &Report{
		Tasks: 32, Machines: 4,
		Budget:  solver.Budget{MaxEvaluations: 10},
		Classes: []etc.Class{cl},
		Solvers: []string{"good", "bad"},
		Cells: []Cell{
			{Solver: "good", Instance: cl.Name(), Class: cl, State: service.StateDone, Makespan: 10},
			{Solver: "bad", Instance: cl.Name(), Class: cl, State: service.StateFailed, Err: "boom"},
		},
	}
	rep.finalize()
	table := rep.Table()
	if !strings.Contains(table, "boom") {
		t.Fatalf("failure reason not rendered:\n%s", table)
	}
	if !strings.Contains(table, "1.000") {
		t.Fatalf("winner ratio not rendered:\n%s", table)
	}
	// The failed solver sorts after the one with results.
	if rep.Summaries[0].Solver != "good" || rep.Summaries[1].Failed != 1 {
		t.Fatalf("summaries misordered: %+v", rep.Summaries)
	}
}

// TestSweepPortfolioQuality races the default portfolio against its
// own constituents across the full 12-class Braun matrix at an equal
// per-job wall budget: the meta-solver must land within 2% of the best
// single constituent on every class (its lanes share the same wall
// clock, so the shared incumbent, stall-concession and warm restarts
// have to earn that closeness back against whichever constituent
// dominates the class). One service worker keeps jobs sequential so
// every cell — portfolio and single solver alike — owns the machine
// for exactly its budget.
func TestSweepPortfolioQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("full 12-class portfolio sweep; run without -short")
	}
	constituents := []string{"pa-cga", "tabu", "h2ll"}
	// Long enough that the race's probe windows (20ms granularity) are
	// a small fraction of every job; short enough that 4 solvers × 12
	// classes stays under a minute.
	const wall = 400 * time.Millisecond
	cfg := Config{
		Tasks:    128,
		Machines: 8,
		Solvers:  append(append([]string(nil), constituents...), "portfolio"),
		Budget:   solver.Budget{MaxDuration: wall},
		Seed:     7,
		Workers:  1,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Wall-budget races are timing-dependent by declaration, so one
	// sweep can land a class a hair past the bar on a noisy runner; a
	// single retry damps scheduler noise without diluting the target.
	var rep *Report
	var failures []string
	for attempt := 0; attempt < 2; attempt++ {
		var err error
		rep, err = Sweep(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		failures = portfolioQualityFailures(t, rep)
		if len(failures) == 0 {
			break
		}
		t.Logf("attempt %d: %v", attempt+1, failures)
	}
	for _, f := range failures {
		t.Error(f)
	}

	// The report surfaces the comparison directly.
	if len(rep.Portfolios) != 1 {
		t.Fatalf("Portfolios = %+v, want one comparison", rep.Portfolios)
	}
	pc := rep.Portfolios[0]
	if pc.Portfolio != "portfolio" || pc.BestSingle == "" || pc.Overhead <= 0 {
		t.Fatalf("bad comparison %+v", pc)
	}
	if pc.Overhead > 1.02 {
		t.Errorf("portfolio mean-quality overhead ×%.3f exceeds 1.02 vs %s", pc.Overhead, pc.BestSingle)
	}
	if !strings.Contains(rep.Table(), "portfolio vs best single") {
		t.Fatal("table missing the portfolio comparison footer")
	}
}

// portfolioQualityFailures checks every class of the report for the
// portfolio ≤ 1.02× best-single criterion, returning the violations.
func portfolioQualityFailures(t *testing.T, rep *Report) []string {
	t.Helper()
	var failures []string
	for _, cl := range rep.Classes {
		bestSingle := 0.0
		var portfolioCell *Cell
		for i := range rep.Cells {
			c := &rep.Cells[i]
			if c.Class != cl || c.State != service.StateDone {
				continue
			}
			if c.Solver == "portfolio" {
				portfolioCell = c
				continue
			}
			if bestSingle == 0 || c.Makespan < bestSingle {
				bestSingle = c.Makespan
			}
		}
		if portfolioCell == nil || bestSingle == 0 {
			t.Fatalf("class %s: missing portfolio or constituent results", cl.Name())
		}
		if portfolioCell.Makespan > 1.02*bestSingle {
			failures = append(failures, fmt.Sprintf("class %s: portfolio makespan %.2f exceeds 1.02× best single %.2f",
				cl.Name(), portfolioCell.Makespan, bestSingle))
		}
	}
	return failures
}
