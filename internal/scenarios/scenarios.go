// Package scenarios sweeps the solver registry across the Braun et al.
// benchmark matrix: every requested solver × every requested instance
// class (the paper's 12 consistency×heterogeneity families), at
// configurable dimensions, executed through the scheduling service —
// jobs fan out over the service's bounded queue and worker pool, the
// twelve ETC matrices are materialized once each through the service's
// LRU instance cache, and backpressure from the queue throttles the
// producer exactly as it would throttle an external client.
//
// The result is a per-solver × per-class quality/latency report
// (Report) renderable as a text table or CSV: makespan per cell, the
// ratio to the best makespan any solver achieved on that class (1.000
// marks the class winner), evaluation counts and solve latency, plus
// per-solver aggregates. cmd/sweep is the CLI; gridsched.Sweep is the
// library entry point.
package scenarios

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/obs"
	"gridsched/internal/portfolio"
	"gridsched/internal/service"
	"gridsched/internal/solver"
)

// Config parameterizes a sweep. The zero value sweeps every registered
// solver over the full 12-class benchmark at the paper's 512×16
// dimensions under a 5 000-evaluation budget.
type Config struct {
	// Classes are the instance families to materialize; empty means
	// etc.AllClasses(), the paper's full 12-class matrix.
	Classes []etc.Class
	// Tasks and Machines size every materialized instance; zero means
	// the benchmark dimensions (512 tasks, 16 machines).
	Tasks, Machines int
	// Solvers are registry names to run; empty means solver.Names().
	Solvers []string
	// Budget bounds each job; a zero budget defaults to
	// DefaultEvalBudget evaluations so zero-config sweeps terminate.
	Budget solver.Budget
	// Seed reseeds every job (see solver.WithSeed); zero keeps each
	// solver's registered default seed.
	Seed uint64
	// Workers sizes the service worker pool; zero means GOMAXPROCS.
	Workers int
	// QueueSize bounds the service job queue; zero means the service
	// default. Smaller queues exercise producer backpressure harder.
	QueueSize int
	// CollectConvergence keeps each job's convergence trace (the
	// incumbent-improvement event series the service records anyway) in
	// its Cell, for Report.WriteConvergenceCSV. Off by default: a full
	// matrix of traces is a lot of memory to hold for a report that
	// usually only needs the final makespans.
	CollectConvergence bool
}

// DefaultEvalBudget is the per-job evaluation budget a zero Config
// budget falls back to.
const DefaultEvalBudget = 5000

// Cell is one solver × class outcome.
type Cell struct {
	Solver   string
	Instance string // sized instance name, e.g. "u_c_hihi.0@128x8"
	Class    etc.Class
	State    service.JobState
	Err      string

	Makespan float64
	// Ratio is Makespan divided by the best makespan any solver in the
	// sweep achieved on this class: 1.0 marks the class winner. Zero
	// when the job did not complete.
	Ratio       float64
	Evaluations int64
	// Wait is time spent queued behind other jobs; Latency is solve
	// wall time.
	Wait    time.Duration
	Latency time.Duration
	// Events is the job's convergence trace (incumbent improvements and
	// the terminal fitness, per portfolio lane where applicable); only
	// populated under Config.CollectConvergence. EventsDropped counts
	// events the bounded recorder discarded.
	Events        []obs.RecordedEvent
	EventsDropped int64
}

// Summary aggregates one solver across every class of the sweep.
type Summary struct {
	Solver string
	// Done counts completed cells; Failed counts failed or cancelled
	// ones.
	Done, Failed int
	// MeanRatio is the mean quality ratio over completed cells (1.0 =
	// won every class); Wins counts classes where the solver matched
	// the class-best makespan.
	MeanRatio float64
	Wins      int
	// BusyTime sums solve latency across the solver's cells.
	BusyTime time.Duration
}

// Report is the outcome of one sweep.
type Report struct {
	Tasks, Machines int
	Budget          solver.Budget
	Seed            uint64
	Classes         []etc.Class
	Solvers         []string
	// Cells holds one entry per solver × class, solver-major in the
	// order of Solvers and Classes.
	Cells []Cell
	// Summaries is sorted best mean ratio first.
	Summaries []Summary
	// Portfolios relates each portfolio meta-solver in the sweep to the
	// best single (non-portfolio) solver — the paper's comparative
	// question turned on the portfolio itself. Empty when the sweep ran
	// no portfolio solver or no single solver completed.
	Portfolios []PortfolioComparison
	Elapsed    time.Duration
	// CacheHits/CacheMisses are the service instance-cache counters:
	// a healthy sweep shows one miss per class and hits for the rest.
	CacheHits, CacheMisses int64
}

// PortfolioComparison summarizes portfolio-vs-best-single quality: how
// close (or better) the racing meta-solver's mean quality ratio comes
// to the best individual solver's at the same per-job budget.
type PortfolioComparison struct {
	Portfolio  string
	BestSingle string
	// PortfolioMeanRatio and BestSingleMeanRatio are the two solvers'
	// mean quality ratios; Overhead is their quotient (1.0 = the
	// portfolio matches the best single solver, < 1 = it wins).
	PortfolioMeanRatio  float64
	BestSingleMeanRatio float64
	Overhead            float64
}

// isPortfolioSolver reports whether a registry name denotes the racing
// portfolio meta-solver; the predicate lives with the portfolio so the
// prefix is defined once.
func isPortfolioSolver(name string) bool { return portfolio.IsPortfolioName(name) }

// submitRetryDelay paces producer retries while the service queue is
// exerting backpressure.
const submitRetryDelay = 2 * time.Millisecond

// Sweep materializes every class at the configured dimensions and runs
// every solver on each through a dedicated scheduling service, honoring
// ctx for the whole batch (cancel aborts outstanding jobs and returns
// the context's error).
func Sweep(ctx context.Context, cfg Config) (*Report, error) {
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = etc.AllClasses()
	}
	names := cfg.Solvers
	if len(names) == 0 {
		names = solver.Names()
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("scenarios: no solvers registered")
	}
	for _, name := range names {
		if _, err := solver.Lookup(name); err != nil {
			return nil, err
		}
	}
	budget := cfg.Budget
	if budget.IsZero() {
		budget = solver.Budget{MaxEvaluations: DefaultEvalBudget}
	}

	report := &Report{
		Tasks:    orDefault(cfg.Tasks, etc.DefaultTasks),
		Machines: orDefault(cfg.Machines, etc.DefaultMachines),
		// The report shows the budget each job actually runs under: a
		// sweep driven through a deadline context would otherwise print
		// a misleading "unbounded" (or too-loose) per-job budget.
		Budget:  budget.EffectiveFor(ctx),
		Seed:    cfg.Seed,
		Classes: classes,
		Solvers: names,
	}

	svc := service.New(service.Config{
		Workers:   cfg.Workers,
		QueueSize: cfg.QueueSize,
		// One cache slot per class plus headroom, so the sweep never
		// thrashes its own working set.
		CacheSize: len(classes) + 2,
		// The collector Waits in submission order, so an early-finished
		// job must outlive the whole batch: retention far beyond any
		// plausible sweep, not the service's client-facing 15 minutes.
		ResultTTL: 24 * time.Hour,
		// The sweep is a trusted local batch, not an exposed endpoint;
		// let callers sweep dimensions past the service's DoS cap.
		MaxMatrixEntries: -1,
	})
	defer svc.Close()

	start := time.Now()

	// Producer: submit solver-major so early cells of every class land
	// quickly and the cache misses once per class up front. The bounded
	// queue pushes back with ErrQueueFull; the producer retries, which
	// is exactly the discipline an external batch client needs.
	type pending struct {
		id     string
		solver string
		class  etc.Class
		name   string
	}
	jobs := make([]pending, 0, len(names)*len(classes))
	for _, name := range names {
		for _, cl := range classes {
			instName := etc.SizedName(cl, cfg.Tasks, cfg.Machines)
			spec := service.JobSpec{
				Solver:   name,
				Instance: instName,
				Budget:   budget,
				Seed:     cfg.Seed,
			}
			id, err := submitWithBackpressure(ctx, svc, spec)
			if err != nil {
				return nil, fmt.Errorf("scenarios: submitting %s on %s: %w", name, instName, err)
			}
			jobs = append(jobs, pending{id: id, solver: name, class: cl, name: instName})
		}
	}

	// Collector: Wait on each job in submission order. Order does not
	// matter for wall time — the pool is already chewing through the
	// whole batch — only for deterministic report layout.
	report.Cells = make([]Cell, 0, len(jobs))
	for _, p := range jobs {
		j, err := svc.Wait(ctx, p.id)
		if err != nil {
			return nil, fmt.Errorf("scenarios: waiting for %s on %s: %w", p.solver, p.name, err)
		}
		cell := Cell{
			Solver:   p.solver,
			Instance: p.name,
			Class:    p.class,
			State:    j.State,
			Err:      j.Error,
			Wait:     j.Wait(),
		}
		if !j.StartedAt.IsZero() && !j.FinishedAt.IsZero() {
			cell.Latency = j.FinishedAt.Sub(j.StartedAt)
		}
		if j.Result != nil {
			cell.Makespan = j.Result.Makespan
			cell.Evaluations = j.Result.Evaluations
		}
		if cfg.CollectConvergence {
			if tr, err := svc.Trace(p.id); err == nil {
				cell.Events = tr.Events
				cell.EventsDropped = tr.Dropped
			}
		}
		report.Cells = append(report.Cells, cell)
	}
	report.Elapsed = time.Since(start)

	stats := svc.Stats()
	report.CacheHits, report.CacheMisses = stats.CacheHits, stats.CacheMisses

	report.finalize()
	return report, nil
}

// submitWithBackpressure submits the spec, retrying while the bounded
// queue is full, until ctx cancels.
func submitWithBackpressure(ctx context.Context, svc *service.Server, spec service.JobSpec) (string, error) {
	for {
		j, err := svc.Submit(spec)
		if err == nil {
			return j.ID, nil
		}
		if err != service.ErrQueueFull {
			return "", err
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(submitRetryDelay):
		}
	}
}

// finalize computes quality ratios against the per-class best and the
// per-solver summaries.
func (r *Report) finalize() {
	bestByClass := make(map[string]float64, len(r.Classes))
	for _, c := range r.Cells {
		if c.State != service.StateDone {
			continue
		}
		key := c.Class.Name()
		if best, ok := bestByClass[key]; !ok || c.Makespan < best {
			bestByClass[key] = c.Makespan
		}
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.State != service.StateDone {
			continue
		}
		if best := bestByClass[c.Class.Name()]; best > 0 {
			c.Ratio = c.Makespan / best
		}
	}

	perSolver := make(map[string]*Summary, len(r.Solvers))
	for _, name := range r.Solvers {
		perSolver[name] = &Summary{Solver: name}
	}
	for _, c := range r.Cells {
		s := perSolver[c.Solver]
		if s == nil {
			continue
		}
		s.BusyTime += c.Latency
		if c.State != service.StateDone {
			s.Failed++
			continue
		}
		s.Done++
		s.MeanRatio += c.Ratio
		if ratioIsWin(c.Ratio) {
			s.Wins++
		}
	}
	r.Summaries = r.Summaries[:0]
	for _, name := range r.Solvers {
		s := perSolver[name]
		if s.Done > 0 {
			s.MeanRatio /= float64(s.Done)
		}
		r.Summaries = append(r.Summaries, *s)
	}
	sort.SliceStable(r.Summaries, func(i, j int) bool {
		a, b := r.Summaries[i], r.Summaries[j]
		switch {
		case (a.Done > 0) != (b.Done > 0):
			return a.Done > 0 // solvers with results ahead of all-failed ones
		case a.MeanRatio != b.MeanRatio:
			return a.MeanRatio < b.MeanRatio
		default:
			return a.Solver < b.Solver
		}
	})

	// Portfolio-vs-best-single: the summaries are sorted best-first, so
	// the first completed non-portfolio summary is the best single.
	var bestSingle *Summary
	for i := range r.Summaries {
		s := &r.Summaries[i]
		if s.Done > 0 && !isPortfolioSolver(s.Solver) {
			bestSingle = s
			break
		}
	}
	r.Portfolios = r.Portfolios[:0]
	if bestSingle == nil {
		return
	}
	for _, s := range r.Summaries {
		if s.Done == 0 || !isPortfolioSolver(s.Solver) {
			continue
		}
		cmp := PortfolioComparison{
			Portfolio:           s.Solver,
			BestSingle:          bestSingle.Solver,
			PortfolioMeanRatio:  s.MeanRatio,
			BestSingleMeanRatio: bestSingle.MeanRatio,
		}
		if bestSingle.MeanRatio > 0 {
			cmp.Overhead = s.MeanRatio / bestSingle.MeanRatio
		}
		r.Portfolios = append(r.Portfolios, cmp)
	}
}

// WriteConvergenceCSV writes every collected convergence trace as one
// CSV (solver,instance,lane,kind,evals,elapsed_ms,fitness), cell-major
// in report order. The sweep must have run with
// Config.CollectConvergence for the cells to carry events.
func (r *Report) WriteConvergenceCSV(w io.Writer) error {
	header := true
	for _, c := range r.Cells {
		if len(c.Events) == 0 {
			continue
		}
		if err := obs.WriteConvergenceCSV(w, c.Solver, c.Instance, c.Events, header); err != nil {
			return err
		}
		header = false
	}
	return nil
}

// ratioIsWin treats a cell as a class win when its makespan matches the
// class best to within floating-point noise.
func ratioIsWin(ratio float64) bool { return math.Abs(ratio-1) <= 1e-9 }

func orDefault(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}
