package scenarios

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/service"
)

// classLabel renders the compact column header for one class, e.g.
// "c-hihi" (index 0 is implied, other indices are spelled out).
func classLabel(cl etc.Class) string {
	label := fmt.Sprintf("%s-%s%s", cl.Consistency, cl.TaskHet, cl.MachineHet)
	if cl.Index != 0 {
		label += fmt.Sprintf(".%d", cl.Index)
	}
	return label
}

// cell returns the cell for one solver × class pair, or nil.
func (r *Report) cell(solverName string, cl etc.Class) *Cell {
	for i := range r.Cells {
		if r.Cells[i].Solver == solverName && r.Cells[i].Class == cl {
			return &r.Cells[i]
		}
	}
	return nil
}

// Table renders the sweep as a text table: one row per solver (best
// mean quality first), one quality-ratio column per class, and the
// per-solver aggregates. Failed cells render as "x"; the footer lists
// their errors.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario sweep: %d classes × %d solvers at %d×%d, budget %s",
		len(r.Classes), len(r.Solvers), r.Tasks, r.Machines, r.Budget)
	if r.Seed != 0 {
		fmt.Fprintf(&sb, ", seed %d", r.Seed)
	}
	fmt.Fprintf(&sb, "\nwall %v, instance cache %d hit / %d miss\n", r.Elapsed.Round(time.Millisecond), r.CacheHits, r.CacheMisses)
	sb.WriteString("quality = makespan / class best (1.000 marks the class winner)\n\n")

	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "solver")
	for _, cl := range r.Classes {
		fmt.Fprintf(tw, "\t%s", classLabel(cl))
	}
	fmt.Fprint(tw, "\tmean\twins\tbusy\t\n")

	var failures []string
	for _, s := range r.Summaries {
		fmt.Fprint(tw, s.Solver)
		for _, cl := range r.Classes {
			c := r.cell(s.Solver, cl)
			switch {
			case c == nil:
				fmt.Fprint(tw, "\t-")
			case c.State != service.StateDone:
				fmt.Fprint(tw, "\tx")
				msg := c.Err
				if msg == "" {
					msg = string(c.State)
				}
				failures = append(failures, fmt.Sprintf("%s on %s: %s", c.Solver, c.Instance, msg))
			default:
				fmt.Fprintf(tw, "\t%.3f", c.Ratio)
			}
		}
		if s.Done > 0 {
			fmt.Fprintf(tw, "\t%.3f", s.MeanRatio)
		} else {
			fmt.Fprint(tw, "\t-")
		}
		fmt.Fprintf(tw, "\t%d\t%v\t\n", s.Wins, s.BusyTime.Round(time.Millisecond))
	}
	tw.Flush()

	for _, pc := range r.Portfolios {
		fmt.Fprintf(&sb, "\nportfolio vs best single: %s %.3f vs %s %.3f (×%.3f)\n",
			pc.Portfolio, pc.PortfolioMeanRatio, pc.BestSingle, pc.BestSingleMeanRatio, pc.Overhead)
	}

	if len(failures) > 0 {
		sb.WriteString("\nincomplete cells:\n")
		for _, f := range failures {
			fmt.Fprintf(&sb, "  %s\n", f)
		}
	}
	return sb.String()
}

// String implements fmt.Stringer.
func (r *Report) String() string { return r.Table() }

// WriteCSV writes the sweep in long format, one record per cell, for
// external post-processing.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"solver", "instance", "class", "consistency", "task_het", "machine_het",
		"tasks", "machines", "state", "makespan", "ratio", "evaluations",
		"wait_ms", "latency_ms", "error",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range r.Cells {
		rec := []string{
			c.Solver,
			c.Instance,
			c.Class.Name(),
			c.Class.Consistency.String(),
			c.Class.TaskHet.String(),
			c.Class.MachineHet.String(),
			strconv.Itoa(r.Tasks),
			strconv.Itoa(r.Machines),
			string(c.State),
			formatF(c.Makespan),
			formatF(c.Ratio),
			strconv.FormatInt(c.Evaluations, 10),
			formatF(float64(c.Wait) / float64(time.Millisecond)),
			formatF(float64(c.Latency) / float64(time.Millisecond)),
			c.Err,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
