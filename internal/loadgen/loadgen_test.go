package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"gridsched/internal/rng"
	"gridsched/internal/service"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("minmin:3, tabu ,pa-cga:2")
	if err != nil {
		t.Fatal(err)
	}
	if m.total != 6 || len(m.names) != 3 {
		t.Fatalf("mix = %+v, want 3 names totalling 6", m)
	}
	// Weighted draws roughly follow the weights.
	r := rng.New(7)
	counts := map[string]int{}
	for i := 0; i < 6000; i++ {
		counts[m.pick(r)]++
	}
	if counts["minmin"] < 2500 || counts["tabu"] > 1500 || counts["pa-cga"] < 1500 {
		t.Errorf("draw counts off the 3:1:2 mix: %v", counts)
	}

	for _, bad := range []string{"", "  ,  ", "minmin:0", "minmin:-1", "minmin:x", ":3"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
	// A bare name defaults to weight 1.
	one, err := parseMix("minmin")
	if err != nil || one.total != 1 {
		t.Fatalf("bare name: %v / %+v", err, one)
	}
}

func TestSummarize(t *testing.T) {
	if s := summarize(nil); s.Count != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	s := summarize(samples)
	if s.Count != 100 || s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("summary bounds: %+v", s)
	}
	if s.P50 != 50*time.Millisecond || s.P95 != 95*time.Millisecond || s.P99 != 99*time.Millisecond {
		t.Fatalf("percentiles: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Fatalf("mean = %v, want 50.5ms", s.Mean)
	}
}

func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{}); err == nil {
		t.Error("Run without BaseURL accepted")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", Duration: -time.Second}); err == nil {
		t.Error("Run with negative duration accepted")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", Duration: time.Second, SolverMix: "a:0"}); err == nil {
		t.Error("Run with bad solver mix accepted")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", Duration: time.Second, InstanceMix: ":"}); err == nil {
		t.Error("Run with bad instance mix accepted")
	}
}

// TestClosedLoopAgainstService drives a real in-process service for a
// short window and checks the report is coherent: work completed,
// latency summaries populated, achieved QPS consistent with the
// completion count.
func TestClosedLoopAgainstService(t *testing.T) {
	if testing.Short() {
		t.Skip("load run in -short mode")
	}
	svc := service.New(service.Config{Workers: 2, QueueSize: 32})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Duration:    500 * time.Millisecond,
		Warmup:      100 * time.Millisecond,
		SolverMix:   "minmin:3,maxmin:1",
		InstanceMix: "u_c_hihi.0@64x8:2,u_i_lolo.0@64x8:1",
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatalf("no jobs completed: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Errorf("failures against a healthy service: %+v", rep)
	}
	if rep.AchievedQPS <= 0 {
		t.Errorf("AchievedQPS = %v", rep.AchievedQPS)
	}
	wantQPS := float64(rep.Completed) / rep.Measured.Seconds()
	if diff := rep.AchievedQPS - wantQPS; diff > 0.01 || diff < -0.01 {
		t.Errorf("AchievedQPS %v inconsistent with %d completed over %v", rep.AchievedQPS, rep.Completed, rep.Measured)
	}
	if rep.SubmitLatency.Count == 0 || rep.E2ELatency.Count == 0 {
		t.Errorf("latency summaries empty: %+v", rep)
	}
	if rep.SubmitLatency.P50 > rep.SubmitLatency.P99 || rep.E2ELatency.P50 > rep.E2ELatency.P99 {
		t.Errorf("non-monotonic percentiles: %+v / %+v", rep.SubmitLatency, rep.E2ELatency)
	}
	if rep.String() == "" {
		t.Error("empty text report")
	}

	// The per-shard breakdown accounts for (at least) every completed
	// job in the window — shard counters also include warmup jobs that
	// retired after the window opened, so >= not ==.
	if len(rep.Shards) == 0 {
		t.Fatalf("report missing the shard breakdown: %+v", rep)
	}
	var shardFinished int64
	for _, s := range rep.Shards {
		if s.Finished < 0 || s.Stolen < 0 || s.JobsPerSec < 0 {
			t.Errorf("negative shard delta: %+v", s)
		}
		shardFinished += s.Finished
	}
	if shardFinished < rep.Completed {
		t.Errorf("shards account for %d finished jobs, but %d completed in the window", shardFinished, rep.Completed)
	}

	// The closed loop really closed: the service saw every submitted job
	// through to terminal (nothing still queued or running).
	st := svc.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Errorf("service not quiet after Run: queued=%d running=%d", st.Queued, st.Running)
	}
}

// TestPacedRun checks TargetQPS pacing: the achieved rate stays well
// below the closed-loop maximum for a trivial solver.
func TestPacedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("load run in -short mode")
	}
	svc := service.New(service.Config{Workers: 2, QueueSize: 32})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Concurrency: 4,
		TargetQPS:   20,
		Duration:    500 * time.Millisecond,
		InstanceMix: "u_c_hihi.0@32x4",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatalf("paced run completed nothing: %+v", rep)
	}
	// 20 qps over 0.5s ≈ 10 jobs; allow generous jitter but catch a
	// pacer that does not pace at all (minmin at 32x4 would complete
	// hundreds unpaced).
	if rep.Submitted > 30 {
		t.Errorf("pacing ineffective: %d submitted at target 20 qps over 500ms", rep.Submitted)
	}
}
