// Package loadgen is a closed-loop load generator for the scheduling
// service's HTTP API. A fixed pool of clients submits solve jobs drawn
// from weighted solver and instance mixes, polls each job to a
// terminal state, and reports achieved throughput plus submit and
// end-to-end latency percentiles — the harness behind cmd/loadgen and
// the service-level throughput benchmark.
//
// Closed-loop means each client has at most one job in flight: offered
// load adapts to service capacity instead of piling an unbounded
// backlog onto the queue. An optional TargetQPS paces submissions
// below the closed-loop maximum; without it the pool runs as fast as
// the service completes work.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gridsched/internal/rng"
)

// Config parameterizes one load run. BaseURL and Duration are
// required; everything else has a usable default.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client
	// Concurrency is the closed-loop client count (default 4).
	Concurrency int
	// TargetQPS, when positive, paces aggregate submissions to roughly
	// that rate; zero runs fully closed-loop (as fast as completions
	// allow).
	TargetQPS float64
	// Duration is how long to generate load (measured, after Warmup).
	Duration time.Duration
	// Warmup is discarded lead time: jobs submitted before the warmup
	// deadline do not count toward the report (default 0).
	Warmup time.Duration
	// SolverMix is a weighted mix "name:weight,name:weight" (weight
	// defaults to 1), e.g. "minmin:3,tabu:1" (default "minmin").
	SolverMix string
	// InstanceMix is a weighted mix over instance names (default
	// "u_c_hihi.0@64x8").
	InstanceMix string
	// MaxEvaluations bounds each submitted job's budget (0 = none).
	MaxEvaluations int64
	// PollInterval is the job status polling cadence (default 2ms).
	PollInterval time.Duration
	// Seed makes the mix draws deterministic (default 1).
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.BaseURL == "" {
		return c, fmt.Errorf("loadgen: BaseURL is required")
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("loadgen: Duration must be positive")
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.SolverMix == "" {
		c.SolverMix = "minmin"
	}
	if c.InstanceMix == "" {
		c.InstanceMix = "u_c_hihi.0@64x8"
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

// mix is a weighted choice over names.
type mix struct {
	names   []string
	weights []int
	total   int
}

// parseMix parses "name:weight,name:weight"; a bare name gets weight 1.
func parseMix(s string) (*mix, error) {
	m := &mix{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w := part, 1
		if i := strings.LastIndexByte(part, ':'); i >= 0 {
			n, err := strconv.Atoi(part[i+1:])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("loadgen: bad weight in mix entry %q", part)
			}
			name, w = part[:i], n
		}
		if name == "" {
			return nil, fmt.Errorf("loadgen: empty name in mix entry %q", part)
		}
		m.names = append(m.names, name)
		m.weights = append(m.weights, w)
		m.total += w
	}
	if len(m.names) == 0 {
		return nil, fmt.Errorf("loadgen: empty mix %q", s)
	}
	return m, nil
}

// pick draws one name with probability proportional to its weight.
func (m *mix) pick(r *rng.Rand) string {
	if len(m.names) == 1 {
		return m.names[0]
	}
	n := r.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.names[i]
		}
		n -= w
	}
	return m.names[len(m.names)-1]
}

// LatencySummary summarizes one latency distribution.
type LatencySummary struct {
	Count int           `json:"count"`
	Min   time.Duration `json:"min"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P95   time.Duration `json:"p95"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

// summarize sorts samples in place and extracts the summary.
func summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	return LatencySummary{
		Count: len(samples),
		Min:   samples[0],
		Mean:  sum / time.Duration(len(samples)),
		P50:   quantile(samples, 0.50),
		P95:   quantile(samples, 0.95),
		P99:   quantile(samples, 0.99),
		Max:   samples[len(samples)-1],
	}
}

// quantile reads the q-th quantile from sorted samples (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Report is the outcome of one load run. Counts cover only the
// measured window (after warmup); AchievedQPS is completed jobs per
// measured second.
type Report struct {
	Concurrency int           `json:"concurrency"`
	TargetQPS   float64       `json:"target_qps,omitempty"`
	Measured    time.Duration `json:"measured"`
	Warmup      time.Duration `json:"warmup,omitempty"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// Rejected counts 429 (queue-full) and 503 (draining) responses —
	// backpressure, not errors.
	Rejected int64 `json:"rejected"`

	AchievedQPS float64 `json:"achieved_qps"`

	// SubmitLatency is POST /v1/jobs round-trip time; E2ELatency is
	// submit-to-terminal-state (including queue wait, solve time and
	// polling quantization).
	SubmitLatency LatencySummary `json:"submit_latency"`
	E2ELatency    LatencySummary `json:"e2e_latency"`

	// Shards breaks the run down by service worker shard, from the
	// /v1/stats epoch snapshots taken at the start and end of the
	// measured window. Empty when the target does not report shards.
	Shards []ShardReport `json:"shards,omitempty"`
}

// ShardReport is the measured-window delta for one worker shard of the
// target service. JobsPerSec is the shard's retirement rate over the
// window (stolen jobs count on the shard whose worker executed them);
// QueueDepthPeak is the server-lifetime high-water mark of the shard's
// queue. Because the service reconciles shard counters into snapshots
// on an epoch cadence, both window endpoints lag truth equally and the
// deltas stay honest.
type ShardReport struct {
	Shard          int     `json:"shard"`
	Finished       int64   `json:"finished"`
	Stolen         int64   `json:"stolen"`
	JobsPerSec     float64 `json:"jobs_per_sec"`
	QueueDepthPeak int     `json:"queue_depth_peak"`
}

// shardStatsView is the slice of the /v1/stats shard entry the
// generator needs.
type shardStatsView struct {
	Shard          int   `json:"shard"`
	Finished       int64 `json:"finished"`
	Stolen         int64 `json:"stolen"`
	QueueDepthPeak int   `json:"queue_depth_peak"`
}

// fetchShardStats reads the per-shard counters from /v1/stats.
func fetchShardStats(ctx context.Context, cfg Config) ([]shardStatsView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET /v1/stats: status %d", resp.StatusCode)
	}
	var body struct {
		Shards []shardStatsView `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Shards, nil
}

// shardBreakdown turns before/after shard snapshots into window deltas.
func shardBreakdown(before, after []shardStatsView, measured time.Duration) []ShardReport {
	if len(after) == 0 || measured <= 0 {
		return nil
	}
	base := map[int]shardStatsView{}
	for _, s := range before {
		base[s.Shard] = s
	}
	out := make([]ShardReport, 0, len(after))
	for _, s := range after {
		b := base[s.Shard] // zero-valued when the shard is new to us
		out = append(out, ShardReport{
			Shard:          s.Shard,
			Finished:       s.Finished - b.Finished,
			Stolen:         s.Stolen - b.Stolen,
			JobsPerSec:     float64(s.Finished-b.Finished) / measured.Seconds(),
			QueueDepthPeak: s.QueueDepthPeak,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// String renders the report as a human-readable block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d clients", r.Concurrency)
	if r.TargetQPS > 0 {
		fmt.Fprintf(&b, ", target %.1f qps", r.TargetQPS)
	}
	fmt.Fprintf(&b, ", %v measured (%v warmup)\n", r.Measured.Round(time.Millisecond), r.Warmup)
	fmt.Fprintf(&b, "  jobs: %d submitted, %d completed, %d failed, %d cancelled, %d rejected\n",
		r.Submitted, r.Completed, r.Failed, r.Cancelled, r.Rejected)
	fmt.Fprintf(&b, "  throughput: %.1f jobs/s\n", r.AchievedQPS)
	fmt.Fprintf(&b, "  submit latency: %s\n", formatSummary(r.SubmitLatency))
	fmt.Fprintf(&b, "  e2e latency:    %s\n", formatSummary(r.E2ELatency))
	for _, s := range r.Shards {
		fmt.Fprintf(&b, "  shard %d: %.1f jobs/s (%d finished, %d stolen, queue peak %d)\n",
			s.Shard, s.JobsPerSec, s.Finished, s.Stolen, s.QueueDepthPeak)
	}
	return b.String()
}

func formatSummary(s LatencySummary) string {
	if s.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("p50 %v  p95 %v  p99 %v  max %v (mean %v, n=%d)",
		s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond),
		s.Mean.Round(time.Microsecond), s.Count)
}

// collector accumulates samples from the client pool.
type collector struct {
	mu        sync.Mutex
	submitted int64
	completed int64
	failed    int64
	cancelled int64
	rejected  int64
	submitLat []time.Duration
	e2eLat    []time.Duration
}

// jobView is the slice of the job JSON the generator needs.
type jobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

// Run executes one load run and returns its report. The run ends when
// Warmup+Duration elapses or ctx is cancelled, whichever comes first;
// in-flight jobs are polled to completion (bounded by a short grace)
// so the service is quiet when Run returns.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	solvers, err := parseMix(cfg.SolverMix)
	if err != nil {
		return nil, fmt.Errorf("solver mix: %w", err)
	}
	instances, err := parseMix(cfg.InstanceMix)
	if err != nil {
		return nil, fmt.Errorf("instance mix: %w", err)
	}

	start := time.Now()
	measureFrom := start.Add(cfg.Warmup)
	deadline := measureFrom.Add(cfg.Duration)
	runCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	// Pacing: a token bucket refilled at TargetQPS. Closed-loop runs
	// get a nil channel (never blocks the select's default path).
	var tokens chan struct{}
	if cfg.TargetQPS > 0 {
		tokens = make(chan struct{}, cfg.Concurrency)
		interval := time.Duration(float64(time.Second) / cfg.TargetQPS)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // bucket full; drop the token
					}
				}
			}
		}()
	}

	// Per-shard breakdown endpoints: one stats snapshot as the measured
	// window opens, one after the pool drains. Best-effort — a target
	// without a shards array just yields no breakdown.
	var beforeShards []shardStatsView
	shardSampled := make(chan struct{})
	go func() {
		defer close(shardSampled)
		select {
		case <-runCtx.Done():
			return
		case <-time.After(time.Until(measureFrom)):
		}
		beforeShards, _ = fetchShardStats(runCtx, cfg)
	}()

	col := &collector{}
	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client(runCtx, cfg, rng.New(cfg.Seed).Split(uint64(id)), solvers, instances, tokens, measureFrom, col)
		}(i)
	}
	wg.Wait()
	<-shardSampled

	measured := time.Since(measureFrom)
	if measured > cfg.Duration {
		measured = cfg.Duration
	}
	if measured <= 0 {
		return nil, fmt.Errorf("loadgen: run ended before the warmup finished")
	}

	// Close the shard window on a fresh context (runCtx is past its
	// deadline). Every job the pool polled terminal has already been
	// folded into its shard's delta and poked the coordinator, so a
	// short settle covers the merge coalesce.
	afterCtx, afterCancel := context.WithTimeout(context.Background(), 5*time.Second)
	time.Sleep(20 * time.Millisecond)
	afterShards, _ := fetchShardStats(afterCtx, cfg)
	afterCancel()

	col.mu.Lock()
	defer col.mu.Unlock()
	rep := &Report{
		Concurrency:   cfg.Concurrency,
		TargetQPS:     cfg.TargetQPS,
		Measured:      measured,
		Warmup:        cfg.Warmup,
		Submitted:     col.submitted,
		Completed:     col.completed,
		Failed:        col.failed,
		Cancelled:     col.cancelled,
		Rejected:      col.rejected,
		AchievedQPS:   float64(col.completed) / measured.Seconds(),
		SubmitLatency: summarize(col.submitLat),
		E2ELatency:    summarize(col.e2eLat),
		Shards:        shardBreakdown(beforeShards, afterShards, measured),
	}
	return rep, nil
}

// client is one closed-loop worker: submit, poll to terminal, repeat.
func client(ctx context.Context, cfg Config, r *rng.Rand, solvers, instances *mix,
	tokens chan struct{}, measureFrom time.Time, col *collector) {
	for {
		if ctx.Err() != nil {
			return
		}
		if tokens != nil {
			select {
			case <-tokens:
			case <-ctx.Done():
				return
			}
		}

		spec := map[string]any{
			"solver":   solvers.pick(r),
			"instance": instances.pick(r),
			"seed":     r.Uint64() | 1, // non-zero, so the service reseeds
		}
		if cfg.MaxEvaluations > 0 {
			spec["budget"] = map[string]any{"max_evaluations": cfg.MaxEvaluations}
		}
		body, _ := json.Marshal(spec)

		t0 := time.Now()
		measured := !t0.Before(measureFrom)
		view, status, err := postJob(ctx, cfg, body)
		submitLat := time.Since(t0)
		if err != nil {
			// Transport errors at shutdown are expected; anything else is
			// backoff-worthy but not fatal to the run.
			if ctx.Err() != nil {
				return
			}
			sleepCtx(ctx, 5*time.Millisecond)
			continue
		}
		switch {
		case status == http.StatusAccepted:
			if measured {
				col.mu.Lock()
				col.submitted++
				col.submitLat = append(col.submitLat, submitLat)
				col.mu.Unlock()
			}
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			if measured {
				col.mu.Lock()
				col.rejected++
				col.mu.Unlock()
			}
			sleepCtx(ctx, cfg.PollInterval)
			continue
		default:
			// A 4xx here means the mix itself is invalid; surface it by
			// counting a failure so the report is visibly broken.
			if measured {
				col.mu.Lock()
				col.failed++
				col.mu.Unlock()
			}
			sleepCtx(ctx, 5*time.Millisecond)
			continue
		}

		// Poll the job to a terminal state. Polling continues briefly past
		// the run deadline so in-flight jobs drain rather than dangle.
		state := pollJob(ctx, cfg, view.ID)
		if measured {
			e2e := time.Since(t0)
			col.mu.Lock()
			switch state {
			case "done":
				col.completed++
				col.e2eLat = append(col.e2eLat, e2e)
			case "failed":
				col.failed++
			case "cancelled":
				col.cancelled++
			default: // lost at shutdown
			}
			col.mu.Unlock()
		}
	}
}

// postJob submits one job and decodes the response.
func postJob(ctx context.Context, cfg Config, body []byte) (jobView, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return jobView{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return jobView{}, 0, err
	}
	defer resp.Body.Close()
	var view jobView
	_ = json.NewDecoder(resp.Body).Decode(&view)
	return view, resp.StatusCode, nil
}

// pollJob polls until the job is terminal, returning its final state
// ("" when the run context died first and a short grace expired).
func pollJob(ctx context.Context, cfg Config, id string) string {
	// After the run deadline, give in-flight jobs a grace window on a
	// fresh context so the report counts them instead of dropping them.
	graceCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for {
		req, err := http.NewRequestWithContext(graceCtx, http.MethodGet, cfg.BaseURL+"/v1/jobs/"+id, nil)
		if err != nil {
			return ""
		}
		resp, err := cfg.Client.Do(req)
		if err != nil {
			return ""
		}
		var view jobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return ""
		}
		switch view.State {
		case "done", "failed", "cancelled":
			return view.State
		}
		select {
		case <-graceCtx.Done():
			return ""
		case <-time.After(cfg.PollInterval):
		}
	}
}

// sleepCtx sleeps or returns early when ctx dies.
func sleepCtx(ctx context.Context, d time.Duration) {
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}
