package schedule

import (
	"math"
	"testing"

	"gridsched/internal/etc"
	"gridsched/internal/rng"
)

// batchTestInstance generates one instance per geometry, spanning both
// bulk-load kernel regimes (blocked machine-major for M ≤
// blockedKernelMaxM, task-ordered row sweep above) plus the M=1
// degenerate case.
func batchTestInstance(t *testing.T, tasks, machines int, seed uint64) *etc.Instance {
	t.Helper()
	in, err := etc.Generate(etc.GenSpec{
		Class:    etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High},
		Tasks:    tasks,
		Machines: machines,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

var batchTestShapes = []struct{ tasks, machines int }{
	{7, 1},    // degenerate single machine
	{64, 4},   // blocked kernel, tiny
	{257, 16}, // blocked kernel, paper-ish machine count, odd task count
	{128, 32}, // blocked kernel at its upper bound
	{128, 33}, // row kernel just past the bound
	{300, 64}, // row kernel
}

// randomAssignment fills a fresh assignment vector, leaving a sprinkle
// of tasks Unassigned so the kernels' partial-schedule path is covered.
func randomAssignment(in *etc.Instance, r *rng.Rand) []int {
	a := make([]int, in.T)
	for t := range a {
		if r.Bool(0.1) {
			a[t] = Unassigned
		} else {
			a[t] = r.Intn(in.M)
		}
	}
	return a
}

// bitsEqual reports float64 bit equality, the equivalence every batched
// kernel must satisfy against its scalar reference.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// requireSameState fails unless the two schedules agree bit-for-bit on
// every piece of state that influences future trajectories: assignment,
// completion-time heads AND compensation tails, and the max index.
func requireSameState(t *testing.T, want, got *Schedule, label string) {
	t.Helper()
	for i, m := range want.S {
		if got.S[i] != m {
			t.Fatalf("%s: S[%d] = %d, want %d", label, i, got.S[i], m)
		}
	}
	for m := range want.CT {
		if !bitsEqual(want.CT[m], got.CT[m]) {
			t.Fatalf("%s: CT[%d] = %x, want %x", label, m,
				math.Float64bits(got.CT[m]), math.Float64bits(want.CT[m]))
		}
		if !bitsEqual(want.ctLo[m], got.ctLo[m]) {
			t.Fatalf("%s: ctLo[%d] = %x, want %x", label, m,
				math.Float64bits(got.ctLo[m]), math.Float64bits(want.ctLo[m]))
		}
	}
	wm, wct := want.MakespanMachine()
	gm, gct := got.MakespanMachine()
	if wm != gm || !bitsEqual(wct, gct) {
		t.Fatalf("%s: makespan machine/CT = %d/%x, want %d/%x", label,
			gm, math.Float64bits(gct), wm, math.Float64bits(wct))
	}
}

// TestSetAssignmentsMatchesSequentialAssign is the bulk-load equivalence
// property: loading a vector through SetAssignments (the hybrid blocked /
// row kernel) must leave the schedule in the bit-identical state that
// assigning every task incrementally in ascending order produces —
// including the compensation tails, so the two schedules stay
// bit-identical under any shared sequence of subsequent moves.
func TestSetAssignmentsMatchesSequentialAssign(t *testing.T) {
	for _, sh := range batchTestShapes {
		in := batchTestInstance(t, sh.tasks, sh.machines, uint64(41*sh.tasks+sh.machines))
		r := rng.New(uint64(1000*sh.tasks + sh.machines))
		for trial := 0; trial < 8; trial++ {
			a := randomAssignment(in, r)

			ref := New(in)
			for task, m := range a {
				if m != Unassigned {
					ref.Assign(task, m)
				}
			}
			bulk := New(in)
			if err := bulk.SetAssignments(a); err != nil {
				t.Fatal(err)
			}
			requireSameState(t, ref, bulk, "after load")

			// Drive both through the same 50 moves: identical state now
			// must mean identical state forever.
			mr := rng.New(uint64(trial) + 99)
			for i := 0; i < 50; i++ {
				task, m := mr.Intn(in.T), mr.Intn(in.M)
				ref.Move(task, m)
				bulk.Move(task, m)
			}
			requireSameState(t, ref, bulk, "after shared moves")
		}
	}
}

// TestBatchEvaluateMatchesFromAssignment checks the batched whole-
// population kernel against the scalar path: every lane's makespan must
// be bit-identical to FromAssignment(...).Makespan() for the same
// vector.
func TestBatchEvaluateMatchesFromAssignment(t *testing.T) {
	var sc Scratch
	for _, sh := range batchTestShapes {
		in := batchTestInstance(t, sh.tasks, sh.machines, uint64(17*sh.tasks+sh.machines))
		r := rng.New(uint64(2000*sh.tasks + sh.machines))
		batch := make([][]int, 9)
		for i := range batch {
			batch[i] = randomAssignment(in, r)
		}
		// One fully-unassigned vector: the makespan must degrade to the
		// max ready time exactly like the scalar path's.
		empty := make([]int, in.T)
		for i := range empty {
			empty[i] = Unassigned
		}
		batch = append(batch, empty)

		got := sc.BatchEvaluate(in, batch)
		for i, a := range batch {
			s, err := FromAssignment(in, a)
			if err != nil {
				t.Fatal(err)
			}
			if want := s.Makespan(); !bitsEqual(want, got[i]) {
				t.Fatalf("%dx%d lane %d: makespan %x, want %x", sh.tasks, sh.machines, i,
					math.Float64bits(got[i]), math.Float64bits(want))
			}
		}
	}
}

// TestBatchEvaluateValidates pins the kernel's length contract.
func TestBatchEvaluateValidates(t *testing.T) {
	in := batchTestInstance(t, 16, 4, 3)
	var sc Scratch
	defer func() {
		if recover() == nil {
			t.Fatal("BatchEvaluate accepted a short vector")
		}
	}()
	sc.BatchEvaluate(in, [][]int{make([]int, in.T-1)})
}

// TestMoveScoresMatchesScalar checks the batched neighborhood kernel:
// out[m] must be bit-identical to the scalar CT[m] + ETC(task, m) that
// tabu and H2LL historically computed per element.
func TestMoveScoresMatchesScalar(t *testing.T) {
	var sc Scratch
	for _, sh := range batchTestShapes {
		in := batchTestInstance(t, sh.tasks, sh.machines, uint64(29*sh.tasks+sh.machines))
		r := rng.New(uint64(3000*sh.tasks + sh.machines))
		s := NewRandom(in, r)
		for trial := 0; trial < 16; trial++ {
			task := r.Intn(in.T)
			scores := sc.MoveScores(s, task)
			if len(scores) != in.M {
				t.Fatalf("MoveScores length %d, want %d", len(scores), in.M)
			}
			for m := 0; m < in.M; m++ {
				if want := s.CT[m] + in.ETC(task, m); !bitsEqual(want, scores[m]) {
					t.Fatalf("task %d machine %d: score %x, want %x", task, m,
						math.Float64bits(scores[m]), math.Float64bits(want))
				}
			}
			s.Move(task, r.Intn(in.M))
		}
	}
}

// TestLoadRankMatchesLeastLoaded checks the quickselect against the
// heap-selection reference across every rank, on completion-time
// vectors engineered to contain ties (the machineLess index tie-break
// must agree too).
func TestLoadRankMatchesLeastLoaded(t *testing.T) {
	var sc Scratch
	for _, sh := range batchTestShapes {
		in := batchTestInstance(t, sh.tasks, sh.machines, uint64(53*sh.tasks+sh.machines))
		r := rng.New(uint64(4000*sh.tasks + sh.machines))
		s := New(in)
		// Assign tasks to a handful of machines only, so many machines
		// share the exact ready-time completion and ranks tie on index.
		for task := 0; task < in.T; task++ {
			if r.Bool(0.7) {
				s.Assign(task, r.Intn(in.M))
			}
		}
		full := s.LeastLoaded(nil, in.M)
		for k := 0; k < in.M; k++ {
			if got := sc.LoadRank(s, k); got != full[k] {
				t.Fatalf("%dx%d: LoadRank(%d) = %d, want %d", sh.tasks, sh.machines, k, got, full[k])
			}
		}
	}
}
