package schedule

import (
	"math"
	"testing"

	"gridsched/internal/etc"
)

// FuzzScheduleOps drives a schedule through an arbitrary mutation
// sequence decoded from the fuzz input (3 bytes per operation: opcode,
// task, machine) and asserts the incremental engine's invariants after
// every sequence: Validate passes, the incremental makespan tracks the
// full recomputation within DriftBound, the tournament tree agrees with
// a scan, and Clone/CopyFrom/RecomputeCT round-trip the state.
func FuzzScheduleOps(f *testing.F) {
	in, err := etc.Generate(etc.GenSpec{
		Class: etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High},
		Tasks: 24, Machines: 5, Seed: 99,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{2, 3, 1, 1, 3, 0, 2, 3, 4})
	f.Add([]byte{0, 1, 2, 3, 1, 2, 0, 1, 3, 1, 1, 0, 2, 1, 4, 0, 23, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(in)
		for i := 0; i+2 < len(data); i += 3 {
			task := int(data[i+1]) % in.T
			mac := int(data[i+2]) % in.M
			switch data[i] % 4 {
			case 0:
				s.SetAssignment(task, mac)
			case 1:
				s.Unassign(task)
			case 2:
				s.Move(task, mac)
			case 3:
				if s.S[task] == Unassigned {
					s.Assign(task, mac)
				}
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if inc, full := s.Makespan(), s.MakespanFull(); math.Abs(inc-full) > s.DriftBound() {
			t.Fatalf("|Makespan %v − MakespanFull %v| exceeds DriftBound %v", inc, full, s.DriftBound())
		}
		mac, ct := s.MakespanMachine()
		if ct != s.Makespan() {
			t.Fatalf("MakespanMachine ct %v != Makespan %v", ct, s.Makespan())
		}
		for m, c := range s.CT {
			if c > ct || (c == ct && m < mac) {
				t.Fatalf("machine %d (CT %v) beats reported makespan machine %d (CT %v)", m, c, mac, ct)
			}
		}
		// Clone and CopyFrom must preserve the indexed state exactly.
		c := s.Clone()
		if c.Makespan() != s.Makespan() {
			t.Fatalf("clone makespan %v != %v", c.Makespan(), s.Makespan())
		}
		w := New(in)
		w.CopyFrom(s)
		if w.Makespan() != s.Makespan() {
			t.Fatalf("copy makespan %v != %v", w.Makespan(), s.Makespan())
		}
		// RecomputeCT is idempotent on a compensated schedule up to the
		// drift bound, and must leave a valid index behind.
		before := s.Makespan()
		s.RecomputeCT()
		if math.Abs(s.Makespan()-before) > s.DriftBound() {
			t.Fatalf("RecomputeCT moved makespan %v -> %v", before, s.Makespan())
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("after RecomputeCT: %v", err)
		}
	})
}
