// Batched fitness kernels: whole-population evaluation and whole-
// neighborhood move scoring through one reusable scratch arena. Both
// kernels are bit-identical to the scalar incremental path — they share
// its accumulation primitive (accAdd) and preserve its per-machine
// update order and tie-breaks — so solvers can switch freely between
// per-element and batched evaluation without perturbing a single
// trajectory.
package schedule

import (
	"fmt"

	"gridsched/internal/etc"
)

// grow returns a length-n slice backed by *buf, reallocating only when
// the capacity is insufficient (contents unspecified).
func grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// BatchEvaluate computes the makespan of every assignment vector in one
// pass, reusing a single completion-time arena (B×M compensated lanes
// held by the Scratch) across the whole batch instead of building B
// schedules. Vectors may contain Unassigned entries; each must have
// length inst.T (a mismatch panics — it is a programming error, exactly
// like assigning out of range).
//
// The result is bit-identical to FromAssignment(inst, a).Makespan() for
// each vector: the lanes accumulate per machine in ascending task order
// with the same compensated primitive, and the final scan keeps the
// first maximum, matching the tournament tree's lowest-index tie-break.
//
// The returned slice is scratch-backed: it is valid until the next
// BatchEvaluate call on the same Scratch.
func (sc *Scratch) BatchEvaluate(inst *etc.Instance, assignments [][]int) []float64 {
	b := len(assignments)
	out := grow(&sc.batchMk, b)
	if b == 0 {
		return out
	}
	for i, a := range assignments {
		if len(a) != inst.T {
			panic(fmt.Sprintf("schedule: BatchEvaluate assignment %d has length %d, want %d", i, len(a), inst.T))
		}
	}
	m := inst.M
	ct := grow(&sc.batchCT, b*m)
	lo := grow(&sc.batchLo, b*m)
	clear(lo)
	for i := 0; i < b; i++ {
		copy(ct[i*m:(i+1)*m], inst.Ready)
	}
	for i, a := range assignments {
		accumulateAssign(inst, a, ct[i*m:(i+1)*m], lo[i*m:(i+1)*m])
	}
	for i := 0; i < b; i++ {
		lane := ct[i*m : (i+1)*m]
		w := -1
		for mac, c := range lane {
			if w < 0 || c > lane[w] {
				w = mac
			}
		}
		if w >= 0 {
			out[i] = lane[w]
		} else {
			out[i] = 0
		}
	}
	return out
}

// BatchLoad rebuilds CT, the compensation terms and the max index of
// every schedule from its current S through the bulk-load kernel —
// the batch counterpart of RecomputeCT for populations whose assignment
// planes were filled directly (arena initialization). Each schedule's
// resulting state is bit-identical to assigning its tasks incrementally
// in ascending order.
func BatchLoad(ss []*Schedule) {
	for _, s := range ss {
		s.loadFromS()
	}
}

// MoveScores scores every destination machine for relocating task onto
// it: out[m] = CT[m] + ETC(task, m), the completion time machine m
// would reach if the task were moved (or assigned) there. One
// contiguous sweep over the task's cost row replaces M strided
// per-element ETC reads — this is the batched neighborhood kernel
// behind tabu and H2LL candidate scoring. Callers that must exclude a
// machine (the source, or a tabu destination) skip it while consuming
// the scores, which keeps the kernel branch-free.
//
// The returned slice is scratch-backed: it is valid until the next
// MoveScores call on the same Scratch.
func (sc *Scratch) MoveScores(s *Schedule, task int) []float64 {
	tc := s.Inst.TaskCosts(task)
	out := grow(&sc.moveBuf, len(tc))
	ct := s.CT[:len(tc)]
	for m, c := range tc {
		out[m] = ct[m] + c
	}
	return out
}
