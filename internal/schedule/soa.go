// Arena: a structure-of-arrays allocation of many schedules for one
// instance. The cellular GA population is the motivating consumer — its
// cells become views into contiguous planes, so generation sweeps
// (fitness scans, diversity measures, batched evaluation) stream memory
// sequentially instead of pointer-chasing per-cell allocations.
package schedule

import "gridsched/internal/etc"

// Arena holds n schedules whose fields alias contiguous backing planes:
// one []int assignment plane (n×T), compensated completion-time lanes
// (n×M each) and one tournament-tree plane. Every Schedule method works
// unchanged on an arena cell; the only difference from n independent
// New calls is the memory layout. Each cell's slices are capacity-
// clipped to its own segment, so no method can spill into a neighbor.
type Arena struct {
	inst   *etc.Instance
	scheds []Schedule
}

// NewArena returns an arena of n empty schedules (all tasks unassigned,
// CT = ready times), state-identical to n New(inst) calls.
func NewArena(inst *etc.Instance, n int) *Arena {
	leaf := 1
	for leaf < inst.M {
		leaf <<= 1
	}
	tw := 2 * leaf
	assign := make([]int, n*inst.T)
	ct := make([]float64, n*inst.M)
	ctLo := make([]float64, n*inst.M)
	tree := make([]int32, n*tw)
	a := &Arena{inst: inst, scheds: make([]Schedule, n)}
	for i := range a.scheds {
		s := &a.scheds[i]
		s.Inst = inst
		s.S = assign[i*inst.T : (i+1)*inst.T : (i+1)*inst.T]
		s.CT = ct[i*inst.M : (i+1)*inst.M : (i+1)*inst.M]
		s.ctLo = ctLo[i*inst.M : (i+1)*inst.M : (i+1)*inst.M]
		s.tree = tree[i*tw : (i+1)*tw : (i+1)*tw]
		s.leaf = leaf
		for t := range s.S {
			s.S[t] = Unassigned
		}
		copy(s.CT, inst.Ready)
		s.rebuildTree()
	}
	return a
}

// Len returns the number of schedules in the arena.
func (a *Arena) Len() int { return len(a.scheds) }

// At returns arena cell i. The pointer is stable for the arena's
// lifetime.
func (a *Arena) At(i int) *Schedule { return &a.scheds[i] }

// Inst returns the instance all arena cells target.
func (a *Arena) Inst() *etc.Instance { return a.inst }
