package schedule

import (
	"math"
	"testing"

	"gridsched/internal/etc"
	"gridsched/internal/rng"
)

// TestIncrementalDriftRegression is the long-run regression test for the
// compensated completion-time engine: ~10⁶ random Move/Assign/Unassign
// operations on a benchmark-sized instance, asserting at every
// checkpoint that the incremental makespan tracks the from-scratch
// recomputation within the documented DriftBound.
//
// The pre-fix bookkeeping (plain `CT[m] += v`) fails this test: each
// update leaks up to half an ulp of the running completion time, and
// over 10⁶ updates those leaks random-walk far past the bound. The
// compensated scheme absorbs every update's rounding error into the
// low-order word, so the residual difference is MakespanFull's own
// summation error, which DriftBound covers.
func TestIncrementalDriftRegression(t *testing.T) {
	in := testInstance(t, 512, 16, 2026)
	r := rng.New(2026)
	s := NewRandom(in, r)
	const ops = 1_000_000
	for i := 1; i <= ops; i++ {
		switch r.Intn(8) {
		case 0:
			s.Unassign(r.Intn(in.T))
		case 1:
			task := r.Intn(in.T)
			if s.S[task] == Unassigned {
				s.Assign(task, r.Intn(in.M))
			} else {
				s.Move(task, r.Intn(in.M))
			}
		default:
			s.Move(r.Intn(in.T), r.Intn(in.M))
		}
		if i%100_000 == 0 {
			inc, full := s.Makespan(), s.MakespanFull()
			if drift := math.Abs(inc - full); drift > s.DriftBound() {
				t.Fatalf("after %d ops: |Makespan %v − MakespanFull %v| = %v exceeds DriftBound %v",
					i, inc, full, drift, s.DriftBound())
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("after %d ops: %v", i, err)
			}
		}
	}
}

// TestDriftBoundScale sanity-checks the bound itself: it must be tiny
// relative to the makespan (so it cannot mask a real bookkeeping bug
// that misaccounts a whole ETC entry) yet nonzero for non-empty
// schedules.
func TestDriftBoundScale(t *testing.T) {
	in := testInstance(t, 128, 8, 5)
	s := NewRandom(in, rng.New(5))
	b := s.DriftBound()
	if b <= 0 {
		t.Fatalf("DriftBound = %v, want > 0", b)
	}
	if b >= 1e-9*s.Makespan() {
		t.Fatalf("DriftBound %v is not tiny relative to makespan %v", b, s.Makespan())
	}
}

// TestDegenerateInstances pins the documented contract on degenerate
// (machineless / taskless) instances: Makespan and MakespanFull return
// 0, MakespanMachine returns (-1, 0), and the instrumentation metrics
// return 0 instead of panicking or producing ±Inf/NaN. Such instances
// are not constructible through etc.New (checkDims rejects them) but
// arise from hand-built Instance values in harness code and from the
// hardened-but-minimal parser paths.
func TestDegenerateInstances(t *testing.T) {
	cases := []struct {
		name         string
		tasks, machs int
	}{
		{"no-machines-no-tasks", 0, 0},
		{"no-machines", 3, 0},
		{"no-tasks", 0, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := &etc.Instance{
				Name:  tc.name,
				T:     tc.tasks,
				M:     tc.machs,
				Row:   make([]float64, tc.tasks*tc.machs),
				Col:   make([]float64, tc.tasks*tc.machs),
				Ready: make([]float64, tc.machs),
			}
			for i := range in.Row {
				in.Row[i], in.Col[i] = 1, 1
			}
			s := New(in)
			if got := s.Makespan(); got != 0 {
				t.Errorf("Makespan = %v, want 0", got)
			}
			if mac, ct := s.MakespanMachine(); tc.machs == 0 && (mac != -1 || ct != 0) {
				t.Errorf("MakespanMachine = (%d, %v), want (-1, 0)", mac, ct)
			}
			if got := s.MakespanFull(); got != 0 {
				t.Errorf("MakespanFull = %v, want 0", got)
			}
			if got := s.Utilization(); got != 0 {
				t.Errorf("Utilization = %v, want 0", got)
			}
			if got := s.ImbalanceCV(); got != 0 {
				t.Errorf("ImbalanceCV = %v, want 0", got)
			}
			if tc.machs == 0 {
				if got := s.DriftBound(); got != 0 {
					t.Errorf("DriftBound = %v, want 0", got)
				}
			}
			if got := s.MachinesByCompletion(nil); len(got) != tc.machs {
				t.Errorf("MachinesByCompletion length %d, want %d", len(got), tc.machs)
			}
			if got := s.LeastLoaded(nil, 2); len(got) != min(2, tc.machs) {
				t.Errorf("LeastLoaded length %d, want %d", len(got), min(2, tc.machs))
			}
			if err := s.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

// TestLeastLoadedMatchesFullSort cross-checks the partial selection
// against the full sort under random load patterns.
func TestLeastLoadedMatchesFullSort(t *testing.T) {
	in := testInstance(t, 60, 13, 8)
	r := rng.New(8)
	s := NewRandom(in, r)
	var buf, order []int
	for trial := 0; trial < 300; trial++ {
		s.Move(r.Intn(in.T), r.Intn(in.M))
		order = s.MachinesByCompletion(order)
		for n := 0; n <= in.M+1; n++ {
			buf = s.LeastLoaded(buf, n)
			want := min(n, in.M)
			if len(buf) != want {
				t.Fatalf("n=%d: length %d, want %d", n, len(buf), want)
			}
			for i := range buf {
				if buf[i] != order[i] {
					t.Fatalf("n=%d: LeastLoaded %v disagrees with sort prefix %v", n, buf, order[:want])
				}
			}
		}
	}
}
