// Package schedule implements the solution representation of §3.3: a
// task→machine assignment vector S together with a per-machine
// completion-time vector CT that every operator keeps up to date
// incrementally, so that evaluating a schedule never re-sums ETC
// entries.
//
// # Indexed completion-time engine
//
// Two structures back the incremental bookkeeping:
//
//   - CT is maintained with compensated (double-double) accumulation:
//     next to every CT[m] lives a low-order word ctLo[m] such that the
//     unevaluated sum CT[m]+ctLo[m] carries roughly twice the precision
//     of a float64. Each update performs an error-free transformation
//     (TwoSum) and folds the rounding error into the low word, so the
//     incremental completion times provably track RecomputeCT instead
//     of drifting by a random walk of rounding errors over long
//     tabu/steady-state runs. See DriftBound for the resulting bound.
//
//   - A tournament tree indexes the machine with the maximum completion
//     time, making Makespan and MakespanMachine O(1) reads. Updates
//     repair the tree bottom-up in O(log machines) worst case, and stop
//     early at the first node whose winner is unaffected, which makes
//     the common case (a move that does not touch the makespan machine)
//     O(1) in practice.
package schedule

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"gridsched/internal/etc"
	"gridsched/internal/rng"
)

// Unassigned marks a task that has not been placed on any machine yet.
const Unassigned = -1

// epsilon is the float64 machine epsilon (ulp of 1.0): the unit of the
// relative error bounds documented on Validate and DriftBound.
const epsilon = 0x1p-52

// Schedule is a (possibly partial) solution for one ETC instance.
//
// Invariant: for every machine m,
//
//	CT[m] = ready[m] + Σ_{t : S[t]=m} ETC[t][m]
//
// maintained incrementally by Assign, Move and Unassign with
// compensated accumulation, and indexed by a tournament tree so the
// maximum is available in O(1). The invariant is checked exhaustively
// by Validate and by the property tests.
//
// CT is exported for read access; all mutation must go through the
// methods so that the compensation terms and the max index stay
// consistent with it.
type Schedule struct {
	Inst *etc.Instance
	S    []int     // S[t] = machine of task t, or Unassigned
	CT   []float64 // completion time per machine

	// ctLo holds the low-order words of the double-double completion
	// times: CT[m]+ctLo[m] is the compensated sum, CT[m] its correctly
	// rounded head.
	ctLo []float64
	// tree is the tournament tree over machines: tree[1] is the index
	// of the machine with the maximum CT (ties toward the lowest
	// index), leaves start at tree[leaf], and empty slots hold -1.
	tree []int32
	leaf int
}

// New returns an empty schedule (all tasks unassigned, CT = ready times).
func New(inst *etc.Instance) *Schedule {
	leaf := 1
	for leaf < inst.M {
		leaf <<= 1
	}
	s := &Schedule{
		Inst: inst,
		S:    make([]int, inst.T),
		CT:   make([]float64, inst.M),
		ctLo: make([]float64, inst.M),
		tree: make([]int32, 2*leaf),
		leaf: leaf,
	}
	for t := range s.S {
		s.S[t] = Unassigned
	}
	copy(s.CT, inst.Ready)
	s.rebuildTree()
	return s
}

// NewRandom returns a complete schedule assigning every task to a machine
// drawn uniformly at random; this is how the paper initializes all but
// one individual of the population. The machines are drawn in ascending
// task order — the exact RNG consumption of a per-task Assign loop —
// and CT is then built by the bulk-load kernel, which is bit-identical
// to sequential Assign calls (see loadFromS).
func NewRandom(inst *etc.Instance, r *rng.Rand) *Schedule {
	s := New(inst)
	s.Randomize(r)
	return s
}

// Randomize re-assigns every task to a uniformly random machine in
// place — NewRandom for preallocated (arena) schedules, with the same
// RNG consumption and bit-identical resulting state.
func (s *Schedule) Randomize(r *rng.Rand) {
	for t := range s.S {
		s.S[t] = r.Intn(s.Inst.M)
	}
	s.loadFromS()
}

// FromAssignment builds a schedule from an existing assignment vector
// (which may contain Unassigned entries). The vector is copied and CT is
// computed from scratch.
func FromAssignment(inst *etc.Instance, assign []int) (*Schedule, error) {
	if len(assign) != inst.T {
		return nil, fmt.Errorf("schedule: assignment length %d, want %d", len(assign), inst.T)
	}
	s := New(inst)
	if err := s.SetAssignments(assign); err != nil {
		return nil, err
	}
	return s, nil
}

// SetAssignments overwrites the whole assignment vector at once and
// rebuilds CT, the compensation terms and the max index with the
// bulk-load kernel. Entries may be Unassigned. The result is
// bit-identical to clearing s and Assigning each task in ascending
// order; an invalid vector is rejected without modifying s.
func (s *Schedule) SetAssignments(assign []int) error {
	if len(assign) != s.Inst.T {
		return fmt.Errorf("schedule: assignment length %d, want %d", len(assign), s.Inst.T)
	}
	for t, m := range assign {
		if m != Unassigned && (m < 0 || m >= s.Inst.M) {
			return fmt.Errorf("schedule: task %d assigned to invalid machine %d", t, m)
		}
	}
	copy(s.S, assign)
	s.loadFromS()
	return nil
}

// blockedKernelMaxM bounds the machine count up to which the bulk-load
// kernels use the blocked machine-major sweep: its M passes per task
// block read the whole T×M matrix, which beats the single task-ordered
// row pass (sequential streaming vs one strided read per task) only
// while the matrix rows are thin.
const blockedKernelMaxM = 32

// accumulateAssign folds the cost of every assigned task of a into the
// compensated completion-time lanes (ct, lo), which the caller has
// initialized (typically to the ready times and zero). Per machine the
// tasks are accumulated in ascending order — the same order sequential
// Assign calls in ascending t produce — so the resulting pairs are
// bit-identical to the incremental path regardless of which sweep runs.
//
// Two sweeps implement that order: for small machine counts a blocked
// machine-major kernel streams each MachineCostsBlock sequentially
// while the assignment block stays cache-resident across the M machine
// passes (the paper's transposed-layout win); for large M that sweep
// would touch all T×M entries, so a single task-ordered pass over the
// row layout reads only the T assigned entries instead.
func accumulateAssign(inst *etc.Instance, a []int, ct, lo []float64) {
	if inst.M <= blockedKernelMaxM {
		for blo := 0; blo < inst.T; blo += etc.TaskBlock {
			bhi := min(blo+etc.TaskBlock, inst.T)
			blk := a[blo:bhi]
			for m := 0; m < inst.M; m++ {
				mc := inst.MachineCostsBlock(m, blo, bhi)
				cth, ctl := ct[m], lo[m]
				for i, mm := range blk {
					if mm == m {
						cth, ctl = accAdd(cth, ctl, mc[i])
					}
				}
				ct[m], lo[m] = cth, ctl
			}
		}
		return
	}
	row, m := inst.Row, inst.M
	for t, mm := range a {
		if mm != Unassigned {
			ct[mm], lo[mm] = accAdd(ct[mm], lo[mm], row[t*m+mm])
		}
	}
}

// loadFromS rebuilds CT, the compensation terms and the max index from
// the current S, bit-identically to assigning every task incrementally
// in ascending order (see accumulateAssign for why).
func (s *Schedule) loadFromS() {
	copy(s.CT, s.Inst.Ready)
	clear(s.ctLo)
	accumulateAssign(s.Inst, s.S, s.CT, s.ctLo)
	s.rebuildTree()
}

// maxOf returns the index of the machine with the larger completion
// time, treating -1 as an empty slot and breaking ties toward a (the
// left, lower-index subtree).
func (s *Schedule) maxOf(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if s.CT[b] > s.CT[a] {
		return b
	}
	return a
}

// rebuildTree recomputes every tournament node from CT in O(machines).
func (s *Schedule) rebuildTree() {
	for i := 0; i < s.leaf; i++ {
		if i < len(s.CT) {
			s.tree[s.leaf+i] = int32(i)
		} else {
			s.tree[s.leaf+i] = -1
		}
	}
	for i := s.leaf - 1; i >= 1; i-- {
		s.tree[i] = s.maxOf(s.tree[2*i], s.tree[2*i+1])
	}
}

// fixup repairs the tournament path above machine m after CT[m]
// changed. It walks toward the root but stops at the first node whose
// stored winner is both unchanged and unaffected (a machine other than
// m): every ancestor compares the same values as before, so the rest of
// the path is already consistent.
func (s *Schedule) fixup(m int) {
	mi := int32(m)
	for p := (s.leaf + m) >> 1; p >= 1; p >>= 1 {
		w := s.maxOf(s.tree[2*p], s.tree[2*p+1])
		if w == s.tree[p] && w != mi {
			return
		}
		s.tree[p] = w
	}
}

// accAdd performs one compensated (double-double) accumulation step on
// the pair (hi, lo) and returns the renormalized result. The error-free
// transformation is Knuth's TwoSum followed by a renormalization, so
// the pair absorbs the rounding error of every update instead of
// discarding it. It is the one accumulation primitive shared by the
// incremental path and the bulk/batched kernels — same operations in
// the same order, so any per-machine update sequence yields bit-equal
// pairs on either path.
func accAdd(hi, lo, v float64) (float64, float64) {
	sum := hi + v
	bv := sum - hi
	err := (hi - (sum - bv)) + (v - bv)
	err += lo
	nh := sum + err
	return nh, err - (nh - sum)
}

// accumulate adds v to machine m's compensated completion time without
// repairing the tournament tree (the caller does, or rebuilds).
func (s *Schedule) accumulate(m int, v float64) {
	s.CT[m], s.ctLo[m] = accAdd(s.CT[m], s.ctLo[m], v)
}

// add applies one compensated update to machine m and repairs the max
// index: O(log machines) worst case, O(1) when the update cannot change
// the makespan.
func (s *Schedule) add(m int, v float64) {
	s.accumulate(m, v)
	s.fixup(m)
}

// Assign places the unassigned task t on machine m, updating CT and the
// makespan index in O(log machines). It panics if t is already assigned
// (use Move instead); that is a programming error, not a runtime
// condition.
func (s *Schedule) Assign(t, m int) {
	if s.S[t] != Unassigned {
		panic(fmt.Sprintf("schedule: Assign on already-assigned task %d", t))
	}
	s.S[t] = m
	s.add(m, s.Inst.TaskCosts(t)[m])
}

// Unassign removes task t from its machine, updating CT and the
// makespan index in O(log machines). It is a no-op for unassigned
// tasks.
func (s *Schedule) Unassign(t int) {
	m := s.S[t]
	if m == Unassigned {
		return
	}
	s.add(m, -s.Inst.TaskCosts(t)[m])
	s.S[t] = Unassigned
}

// Move reassigns task t to machine m with an O(log machines) CT and
// index update. Moving a task to its current machine is a no-op. Moving
// an unassigned task is equivalent to Assign. Both ETC reads go through
// the task's cost row, so source and destination costs usually share a
// cache line instead of sitting a column apart in the transposed
// layout.
func (s *Schedule) Move(t, m int) {
	from := s.S[t]
	if from == m {
		return
	}
	tc := s.Inst.TaskCosts(t)
	if from != Unassigned {
		s.add(from, -tc[from])
	}
	s.S[t] = m
	s.add(m, tc[m])
}

// SetAssignment overwrites the assignment of task t like Move but
// additionally accepts Unassigned as destination.
func (s *Schedule) SetAssignment(t, m int) {
	if m == Unassigned {
		s.Unassign(t)
		return
	}
	s.Move(t, m)
}

// Complete reports whether every task is assigned.
func (s *Schedule) Complete() bool {
	for _, m := range s.S {
		if m == Unassigned {
			return false
		}
	}
	return true
}

// Makespan is the fitness of §2.2: the maximum completion time over all
// machines (Eq. 3). It is an O(1) read of the tournament tree's root.
// On a degenerate instance with no machines it returns 0.
func (s *Schedule) Makespan() float64 {
	if w := s.tree[1]; w >= 0 {
		return s.CT[w]
	}
	return 0
}

// MakespanMachine returns the index of the machine that defines the
// makespan (ties broken toward the lowest index) and its completion
// time, in O(1). On a degenerate instance with no machines it returns
// (-1, 0).
func (s *Schedule) MakespanMachine() (machine int, ct float64) {
	w := s.tree[1]
	if w < 0 {
		return -1, 0
	}
	return int(w), s.CT[w]
}

// Scratch is a reusable arena of buffers for the allocation-heavy
// schedule queries (FlowtimeInto and callers of TasksOn,
// MachinesByCompletion and LeastLoaded). The zero value is ready to
// use; buffers grow on demand and are retained across calls, so one
// Scratch per worker removes those queries from the allocator entirely.
// A Scratch is not safe for concurrent use.
type Scratch struct {
	intBuf   []int
	floatBuf []float64

	// Lanes of the batched kernels (see batch.go). They are separate
	// from intBuf/floatBuf so BatchEvaluate and MoveScores can be
	// interleaved with FlowtimeInto and the Ints/Floats helpers without
	// clobbering each other.
	batchCT []float64
	batchLo []float64
	batchMk []float64
	moveBuf []float64
	rankBuf []int
}

// Ints returns a length-n int buffer backed by the arena (contents
// unspecified).
func (sc *Scratch) Ints(n int) []int {
	if cap(sc.intBuf) < n {
		sc.intBuf = make([]int, n)
	}
	sc.intBuf = sc.intBuf[:n]
	return sc.intBuf
}

// Floats returns a length-n float64 buffer backed by the arena
// (contents unspecified).
func (sc *Scratch) Floats(n int) []float64 {
	if cap(sc.floatBuf) < n {
		sc.floatBuf = make([]float64, n)
	}
	sc.floatBuf = sc.floatBuf[:n]
	return sc.floatBuf
}

// flowtimePool backs the allocation-free convenience Flowtime; workers
// with a natural place for one should hold their own Scratch and call
// FlowtimeInto directly.
var flowtimePool = sync.Pool{New: func() any { return new(Scratch) }}

// Flowtime returns the sum of task finishing times assuming each machine
// runs its tasks in shortest-processing-time order (the convention of the
// batch-scheduling literature the paper draws its baselines from). It is
// provided for instrumentation; the paper optimizes makespan only.
func (s *Schedule) Flowtime() float64 {
	sc := flowtimePool.Get().(*Scratch)
	v := s.FlowtimeInto(sc)
	flowtimePool.Put(sc)
	return v
}

// FlowtimeInto is Flowtime computed through a caller-owned scratch
// arena: the per-machine task buckets live in the arena's buffers, so
// repeated calls (the flowtime-weighted fitness of the multi-objective
// extension) do not allocate.
func (s *Schedule) FlowtimeInto(sc *Scratch) float64 {
	m := s.Inst.M
	// offs[k+1] counts tasks on machine k, then prefix-sums to bucket
	// offsets, then serves as the per-machine fill cursor.
	offs := sc.Ints(m + 1)
	for i := range offs {
		offs[i] = 0
	}
	assigned := 0
	for _, mac := range s.S {
		if mac != Unassigned {
			offs[mac+1]++
			assigned++
		}
	}
	for k := 0; k < m; k++ {
		offs[k+1] += offs[k]
	}
	loads := sc.Floats(assigned)
	row := s.Inst.Row
	for t, mac := range s.S {
		if mac == Unassigned {
			continue
		}
		loads[offs[mac]] = row[t*m+mac]
		offs[mac]++
	}
	total := 0.0
	start := 0
	for k := 0; k < m; k++ {
		seg := loads[start:offs[k]] // offs[k] is now the end of bucket k
		start = offs[k]
		slices.Sort(seg)
		acc := s.Inst.Ready[k]
		for _, d := range seg {
			//lint:ignore floataccum flowtime is a reported statistic, not CT state; it is outside the bit-exactness contract
			acc += d
			//lint:ignore floataccum same: reported statistic, no incremental counterpart to stay bit-equal with
			total += acc
		}
	}
	return total
}

// RecomputeCT rebuilds CT (and the compensation terms and the max
// index) from scratch; it exists to validate the incremental
// bookkeeping and to measure how much the incremental scheme saves
// (ablation benchmark 3 in DESIGN.md). It is the bulk-load kernel.
func (s *Schedule) RecomputeCT() {
	s.loadFromS()
}

// MakespanFull evaluates the makespan without trusting CT, recomputing
// machine loads from S with plain (uncompensated) summation. Used by
// the incremental-vs-full ablation and as the reference value of the
// drift bound. On a degenerate instance with no machines it returns 0.
func (s *Schedule) MakespanFull() float64 {
	ct := make([]float64, s.Inst.M)
	copy(ct, s.Inst.Ready)
	row, m := s.Inst.Row, s.Inst.M
	for t, mm := range s.S {
		if mm != Unassigned {
			//lint:ignore floataccum MakespanFull is the deliberately uncompensated reference the drift bound is measured against
			ct[mm] += row[t*m+mm]
		}
	}
	max := 0.0
	for _, c := range ct {
		if c > max {
			max = c
		}
	}
	return max
}

// DriftBound returns a rigorous bound on |Makespan() − MakespanFull()|
// for the schedule's current state, valid after any number of
// incremental updates.
//
// The compensated completion times are exact to well below one ulp (the
// double-double pair absorbs every update's rounding error; its own
// residual error is O(ε²) per update), so the bound is dominated by the
// plain left-to-right summation MakespanFull itself performs: a machine
// holding k tasks is summed with relative error at most (k+1)·ε. With
// k ≤ the maximum number of tasks on any machine and a few ulps of
// slack for the compensated side, the bound is
//
//	(kmax + 8) · ε · Makespan
//
// Real bookkeeping bugs misaccount whole ETC entries (≥ 1 by
// construction), many orders of magnitude above this bound.
func (s *Schedule) DriftBound() float64 {
	if s.Inst.M == 0 {
		return 0
	}
	counts := make([]int, s.Inst.M)
	for _, m := range s.S {
		if m != Unassigned {
			counts[m]++
		}
	}
	kmax := 0
	for _, c := range counts {
		if c > kmax {
			kmax = c
		}
	}
	peak := s.Makespan()
	if peak < 1 {
		peak = 1
	}
	return float64(kmax+8) * epsilon * peak
}

// Validate verifies the CT invariant against a fresh recomputation.
// Thanks to the compensated accumulation the tolerance is tight: the
// recomputation's own plain summation error, (k+1)·ε per machine with k
// summed terms, plus a few ulps of slack — no allowance for incremental
// drift is needed (that is the bug this scheme fixes). It also verifies
// that the tournament tree agrees with a scan of CT.
func (s *Schedule) Validate() error {
	ct := make([]float64, s.Inst.M)
	counts := make([]int, s.Inst.M)
	copy(ct, s.Inst.Ready)
	for t, m := range s.S {
		if m == Unassigned {
			continue
		}
		if m < 0 || m >= s.Inst.M {
			return fmt.Errorf("schedule: task %d on invalid machine %d", t, m)
		}
		//lint:ignore floataccum the reference recomputation is deliberately plain; tol below budgets its rounding against the compensated CT
		ct[m] += s.Inst.TaskCosts(t)[m]
		counts[m]++
	}
	for m := range ct {
		peak := math.Max(math.Abs(ct[m]), math.Abs(s.CT[m]))
		if peak < 1 {
			peak = 1
		}
		tol := float64(counts[m]+8) * epsilon * peak
		if diff := math.Abs(ct[m] - s.CT[m]); diff > tol {
			return fmt.Errorf("schedule: CT[%d] = %v, recomputed %v (|diff| %v > tol %v)", m, s.CT[m], ct[m], diff, tol)
		}
	}
	if s.Inst.M > 0 {
		want, _ := s.MakespanMachine()
		best := 0
		for m := 1; m < s.Inst.M; m++ {
			if s.CT[m] > s.CT[best] {
				best = m
			}
		}
		if want != best {
			return fmt.Errorf("schedule: max index %d disagrees with CT scan %d", want, best)
		}
	}
	return nil
}

func approxEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	if diff == 0 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-6*scale || diff <= 1e-9
}

// Clone returns a deep copy sharing the (immutable) instance.
func (s *Schedule) Clone() *Schedule {
	return &Schedule{
		Inst: s.Inst,
		S:    append([]int(nil), s.S...),
		CT:   append([]float64(nil), s.CT...),
		ctLo: append([]float64(nil), s.ctLo...),
		tree: append([]int32(nil), s.tree...),
		leaf: s.leaf,
	}
}

// CopyFrom overwrites s with src in place, without allocating. Both
// schedules must target the same instance.
func (s *Schedule) CopyFrom(src *Schedule) {
	if s.Inst != src.Inst {
		panic("schedule: CopyFrom across instances")
	}
	copy(s.S, src.S)
	copy(s.CT, src.CT)
	copy(s.ctLo, src.ctLo)
	copy(s.tree, src.tree)
}

// HammingDistance counts tasks assigned to different machines in s and
// o. It is the similarity measure of the struggle GA baseline.
func (s *Schedule) HammingDistance(o *Schedule) int {
	if len(s.S) != len(o.S) {
		panic("schedule: HammingDistance over different task counts")
	}
	d := 0
	for t := range s.S {
		if s.S[t] != o.S[t] {
			d++
		}
	}
	return d
}

// TasksOn appends to buf the tasks currently assigned to machine m and
// returns the extended slice. Pass a reusable buffer (or one from a
// Scratch) to avoid allocations in hot loops.
func (s *Schedule) TasksOn(m int, buf []int) []int {
	for t, mm := range s.S {
		if mm == m {
			buf = append(buf, t)
		}
	}
	return buf
}

// CountOn returns how many tasks are assigned to machine m.
func (s *Schedule) CountOn(m int) int {
	n := 0
	for _, mm := range s.S {
		if mm == m {
			n++
		}
	}
	return n
}

// RandomTaskOn returns a uniformly chosen task assigned to machine m via
// reservoir sampling over a single scan of S, or -1 if the machine is
// empty. H2LL uses this to pick the task to move off the makespan
// machine.
func (s *Schedule) RandomTaskOn(m int, r *rng.Rand) int {
	chosen, seen := -1, 0
	for t, mm := range s.S {
		if mm != m {
			continue
		}
		seen++
		if r.Intn(seen) == 0 {
			chosen = t
		}
	}
	return chosen
}

// machineLess is the total order behind MachinesByCompletion and
// LeastLoaded: ascending completion time, ties by index, making every
// derived order deterministic.
func (s *Schedule) machineLess(a, b int) bool {
	if s.CT[a] != s.CT[b] {
		return s.CT[a] < s.CT[b]
	}
	return a < b
}

// siftDown restores the max-heap property (machineLess order, greatest
// at the root) for v[i:] bounded by n.
func (s *Schedule) siftDown(v []int, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && s.machineLess(v[c], v[c+1]) {
			c++
		}
		if !s.machineLess(v[i], v[c]) {
			return
		}
		v[i], v[c] = v[c], v[i]
		i = c
	}
}

// sortMachines heap-sorts v ascending under machineLess without
// allocating (no comparator closure, no reflection).
func (s *Schedule) sortMachines(v []int) {
	n := len(v)
	for i := n/2 - 1; i >= 0; i-- {
		s.siftDown(v, i, n)
	}
	for i := n - 1; i > 0; i-- {
		v[0], v[i] = v[i], v[0]
		s.siftDown(v, 0, i)
	}
}

// MachinesByCompletion returns machine indices sorted by ascending
// completion time (ties by index, making the order deterministic). The
// result is written into dst when it has sufficient capacity, and the
// sort itself never allocates.
func (s *Schedule) MachinesByCompletion(dst []int) []int {
	if cap(dst) < s.Inst.M {
		dst = make([]int, s.Inst.M)
	}
	dst = dst[:s.Inst.M]
	for i := range dst {
		dst[i] = i
	}
	s.sortMachines(dst)
	return dst
}

// LeastLoaded writes into dst the n machines with the smallest
// completion times, ascending (ties by index), and returns it. It is
// the partial-selection companion to MachinesByCompletion for callers
// (H2LL) that only need the least-loaded candidate set: O(M·log n)
// against the full sort's O(M·log M), allocation-free when dst has
// capacity n.
func (s *Schedule) LeastLoaded(dst []int, n int) []int {
	m := len(s.CT)
	if n > m {
		n = m
	}
	if n <= 0 {
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]int, 0, n)
	}
	dst = dst[:0]
	// Max-heap of the n best machines seen so far: the root is the
	// worst of the kept set and is evicted by any better machine.
	for mac := 0; mac < m; mac++ {
		if len(dst) < n {
			dst = append(dst, mac)
			for i := len(dst) - 1; i > 0; {
				p := (i - 1) / 2
				if !s.machineLess(dst[p], dst[i]) {
					break
				}
				dst[p], dst[i] = dst[i], dst[p]
				i = p
			}
			continue
		}
		if s.machineLess(mac, dst[0]) {
			dst[0] = mac
			s.siftDown(dst, 0, n)
		}
	}
	s.sortMachines(dst)
	return dst
}

// LoadRank returns the machine of rank k (0-indexed) in the machineLess
// order — exactly the machine LeastLoaded(nil, k+1)[k] reports, found by
// quickselect in O(M) expected time instead of the heap's O(M·log k).
// Because machineLess is a total order, the rank-k machine is unique and
// the k least-loaded machines are exactly those with machineLess(m,
// LoadRank(k)): callers (H2LL's candidate scan) can test membership in
// the least-loaded set with two flat comparisons per machine instead of
// materializing the sorted candidate list. k must be in [0, M).
func (sc *Scratch) LoadRank(s *Schedule, k int) int {
	m := len(s.CT)
	if k < 0 || k >= m {
		panic(fmt.Sprintf("schedule: LoadRank %d outside [0, %d)", k, m))
	}
	if cap(sc.rankBuf) < m {
		sc.rankBuf = make([]int, m)
	}
	idx := sc.rankBuf[:m]
	for i := range idx {
		idx[i] = i
	}
	lo, hi := 0, m-1
	for lo < hi {
		p := idx[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for s.machineLess(idx[i], p) {
				i++
			}
			for s.machineLess(p, idx[j]) {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return idx[k]
		}
	}
	return idx[k]
}

// Utilization is the fraction of machine time spent computing between
// t=0 and the makespan: Σ_m (CT[m] − ready[m]) / (machines · makespan).
// 1.0 means a perfectly packed schedule; low values flag idle machines.
// It returns 0 for an empty schedule.
func (s *Schedule) Utilization() float64 {
	mk := s.Makespan()
	if mk <= 0 {
		return 0
	}
	busy := 0.0
	for m, ct := range s.CT {
		//lint:ignore floataccum utilization is a post-hoc statistic over final CT values, outside the bit-exactness contract
		busy += ct - s.Inst.Ready[m]
	}
	return busy / (float64(s.Inst.M) * mk)
}

// ImbalanceCV is the coefficient of variation of machine completion
// times — 0 for perfectly balanced load (and for a machineless
// instance).
func (s *Schedule) ImbalanceCV() float64 {
	if len(s.CT) == 0 {
		return 0
	}
	mean := 0.0
	for _, ct := range s.CT {
		//lint:ignore floataccum imbalance CV is a post-hoc statistic over final CT values, outside the bit-exactness contract
		mean += ct
	}
	mean /= float64(len(s.CT))
	if mean == 0 {
		return 0
	}
	ss := 0.0
	for _, ct := range s.CT {
		d := ct - mean
		//lint:ignore floataccum imbalance CV is a post-hoc statistic over final CT values, outside the bit-exactness contract
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(s.CT))) / mean
}

// String renders a compact human-readable summary.
func (s *Schedule) String() string {
	return fmt.Sprintf("schedule{%s, makespan=%.2f}", s.Inst.Name, s.Makespan())
}
