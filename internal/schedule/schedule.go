// Package schedule implements the solution representation of §3.3: a
// task→machine assignment vector S together with a per-machine
// completion-time vector CT that every operator keeps up to date
// incrementally, so that evaluating a schedule reduces to scanning the 16
// completion times for the maximum instead of re-summing 512 ETC entries.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"gridsched/internal/etc"
	"gridsched/internal/rng"
)

// Unassigned marks a task that has not been placed on any machine yet.
const Unassigned = -1

// Schedule is a (possibly partial) solution for one ETC instance.
//
// Invariant: for every machine m,
//
//	CT[m] = ready[m] + Σ_{t : S[t]=m} ETC[t][m]
//
// maintained incrementally by Assign, Move and Unassign. The invariant is
// checked exhaustively by Validate and by the property tests.
type Schedule struct {
	Inst *etc.Instance
	S    []int     // S[t] = machine of task t, or Unassigned
	CT   []float64 // completion time per machine
}

// New returns an empty schedule (all tasks unassigned, CT = ready times).
func New(inst *etc.Instance) *Schedule {
	s := &Schedule{
		Inst: inst,
		S:    make([]int, inst.T),
		CT:   make([]float64, inst.M),
	}
	for t := range s.S {
		s.S[t] = Unassigned
	}
	copy(s.CT, inst.Ready)
	return s
}

// NewRandom returns a complete schedule assigning every task to a machine
// drawn uniformly at random; this is how the paper initializes all but
// one individual of the population.
func NewRandom(inst *etc.Instance, r *rng.Rand) *Schedule {
	s := New(inst)
	for t := 0; t < inst.T; t++ {
		s.Assign(t, r.Intn(inst.M))
	}
	return s
}

// FromAssignment builds a schedule from an existing assignment vector
// (which may contain Unassigned entries). The vector is copied and CT is
// computed from scratch.
func FromAssignment(inst *etc.Instance, assign []int) (*Schedule, error) {
	if len(assign) != inst.T {
		return nil, fmt.Errorf("schedule: assignment length %d, want %d", len(assign), inst.T)
	}
	s := New(inst)
	for t, m := range assign {
		if m == Unassigned {
			continue
		}
		if m < 0 || m >= inst.M {
			return nil, fmt.Errorf("schedule: task %d assigned to invalid machine %d", t, m)
		}
		s.Assign(t, m)
	}
	return s, nil
}

// Assign places the unassigned task t on machine m, updating CT in O(1).
// It panics if t is already assigned (use Move instead); that is a
// programming error, not a runtime condition.
func (s *Schedule) Assign(t, m int) {
	if s.S[t] != Unassigned {
		panic(fmt.Sprintf("schedule: Assign on already-assigned task %d", t))
	}
	s.S[t] = m
	s.CT[m] += s.Inst.ETC(t, m)
}

// Unassign removes task t from its machine, updating CT in O(1). It is a
// no-op for unassigned tasks.
func (s *Schedule) Unassign(t int) {
	m := s.S[t]
	if m == Unassigned {
		return
	}
	s.CT[m] -= s.Inst.ETC(t, m)
	s.S[t] = Unassigned
}

// Move reassigns task t to machine m with an O(1) CT update. Moving a
// task to its current machine is a no-op. Moving an unassigned task is
// equivalent to Assign.
func (s *Schedule) Move(t, m int) {
	from := s.S[t]
	if from == m {
		return
	}
	if from != Unassigned {
		s.CT[from] -= s.Inst.ETC(t, from)
	}
	s.S[t] = m
	s.CT[m] += s.Inst.ETC(t, m)
}

// SetAssignment overwrites the assignment of task t like Move but
// additionally accepts Unassigned as destination.
func (s *Schedule) SetAssignment(t, m int) {
	if m == Unassigned {
		s.Unassign(t)
		return
	}
	s.Move(t, m)
}

// Complete reports whether every task is assigned.
func (s *Schedule) Complete() bool {
	for _, m := range s.S {
		if m == Unassigned {
			return false
		}
	}
	return true
}

// Makespan is the fitness of §2.2: the maximum completion time over all
// machines (Eq. 3). It is O(machines) thanks to the maintained CT.
func (s *Schedule) Makespan() float64 {
	max := math.Inf(-1)
	for _, c := range s.CT {
		if c > max {
			max = c
		}
	}
	return max
}

// MakespanMachine returns the index of the machine that defines the
// makespan (ties broken toward the lowest index) and its completion time.
func (s *Schedule) MakespanMachine() (machine int, ct float64) {
	machine, ct = 0, s.CT[0]
	for m := 1; m < len(s.CT); m++ {
		if s.CT[m] > ct {
			machine, ct = m, s.CT[m]
		}
	}
	return machine, ct
}

// Flowtime returns the sum of task finishing times assuming each machine
// runs its tasks in shortest-processing-time order (the convention of the
// batch-scheduling literature the paper draws its baselines from). It is
// provided for instrumentation; the paper optimizes makespan only.
func (s *Schedule) Flowtime() float64 {
	perMachine := make([][]float64, s.Inst.M)
	for t, m := range s.S {
		if m == Unassigned {
			continue
		}
		perMachine[m] = append(perMachine[m], s.Inst.ETC(t, m))
	}
	total := 0.0
	for m, ds := range perMachine {
		sort.Float64s(ds)
		acc := s.Inst.Ready[m]
		for _, d := range ds {
			acc += d
			total += acc
		}
	}
	return total
}

// RecomputeCT rebuilds CT from scratch; it exists to validate the
// incremental bookkeeping and to measure how much the incremental scheme
// saves (ablation benchmark 3 in DESIGN.md).
func (s *Schedule) RecomputeCT() {
	copy(s.CT, s.Inst.Ready)
	for t, m := range s.S {
		if m != Unassigned {
			s.CT[m] += s.Inst.ETC(t, m)
		}
	}
}

// MakespanFull evaluates the makespan without trusting CT, recomputing
// machine loads from S. Used by the incremental-vs-full ablation.
func (s *Schedule) MakespanFull() float64 {
	ct := make([]float64, s.Inst.M)
	copy(ct, s.Inst.Ready)
	for t, m := range s.S {
		if m != Unassigned {
			ct[m] += s.Inst.ETC(t, m)
		}
	}
	max := math.Inf(-1)
	for _, c := range ct {
		if c > max {
			max = c
		}
	}
	return max
}

// Validate verifies the CT invariant against a fresh recomputation
// within a tolerance that accounts for floating-point drift of long
// incremental update chains. The absolute tolerance scales with the
// peak completion time: a machine that once carried a load of magnitude
// P and was then emptied retains residue on the order of ulp(P) per
// update, which no fixed absolute epsilon covers. Real bookkeeping bugs
// misaccount whole ETC entries (≥ 1 by construction), far above the
// tolerance.
func (s *Schedule) Validate() error {
	ct := make([]float64, s.Inst.M)
	copy(ct, s.Inst.Ready)
	for t, m := range s.S {
		if m == Unassigned {
			continue
		}
		if m < 0 || m >= s.Inst.M {
			return fmt.Errorf("schedule: task %d on invalid machine %d", t, m)
		}
		ct[m] += s.Inst.ETC(t, m)
	}
	peak := 1.0
	for m := range ct {
		if a := math.Abs(ct[m]); a > peak {
			peak = a
		}
		if a := math.Abs(s.CT[m]); a > peak {
			peak = a
		}
	}
	tol := 1e-7 * peak
	for m := range ct {
		diff := math.Abs(ct[m] - s.CT[m])
		if diff > tol && !approxEqual(ct[m], s.CT[m]) {
			return fmt.Errorf("schedule: CT[%d] = %v, recomputed %v", m, s.CT[m], ct[m])
		}
	}
	return nil
}

func approxEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	if diff == 0 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-6*scale || diff <= 1e-9
}

// Clone returns a deep copy sharing the (immutable) instance.
func (s *Schedule) Clone() *Schedule {
	return &Schedule{
		Inst: s.Inst,
		S:    append([]int(nil), s.S...),
		CT:   append([]float64(nil), s.CT...),
	}
}

// CopyFrom overwrites s with src in place, without allocating. Both
// schedules must target the same instance.
func (s *Schedule) CopyFrom(src *Schedule) {
	if s.Inst != src.Inst {
		panic("schedule: CopyFrom across instances")
	}
	copy(s.S, src.S)
	copy(s.CT, src.CT)
}

// HammingDistance counts tasks assigned to different machines in s and
// o. It is the similarity measure of the struggle GA baseline.
func (s *Schedule) HammingDistance(o *Schedule) int {
	if len(s.S) != len(o.S) {
		panic("schedule: HammingDistance over different task counts")
	}
	d := 0
	for t := range s.S {
		if s.S[t] != o.S[t] {
			d++
		}
	}
	return d
}

// TasksOn appends to buf the tasks currently assigned to machine m and
// returns the extended slice. Pass a reusable buffer to avoid
// allocations in hot loops.
func (s *Schedule) TasksOn(m int, buf []int) []int {
	for t, mm := range s.S {
		if mm == m {
			buf = append(buf, t)
		}
	}
	return buf
}

// CountOn returns how many tasks are assigned to machine m.
func (s *Schedule) CountOn(m int) int {
	n := 0
	for _, mm := range s.S {
		if mm == m {
			n++
		}
	}
	return n
}

// RandomTaskOn returns a uniformly chosen task assigned to machine m via
// reservoir sampling over a single scan of S, or -1 if the machine is
// empty. H2LL uses this to pick the task to move off the makespan
// machine.
func (s *Schedule) RandomTaskOn(m int, r *rng.Rand) int {
	chosen, seen := -1, 0
	for t, mm := range s.S {
		if mm != m {
			continue
		}
		seen++
		if r.Intn(seen) == 0 {
			chosen = t
		}
	}
	return chosen
}

// MachinesByCompletion returns machine indices sorted by ascending
// completion time (ties by index, making the order deterministic). The
// result is written into dst when it has sufficient capacity.
func (s *Schedule) MachinesByCompletion(dst []int) []int {
	if cap(dst) < s.Inst.M {
		dst = make([]int, s.Inst.M)
	}
	dst = dst[:s.Inst.M]
	for i := range dst {
		dst[i] = i
	}
	sort.Slice(dst, func(i, j int) bool {
		a, b := dst[i], dst[j]
		if s.CT[a] != s.CT[b] {
			return s.CT[a] < s.CT[b]
		}
		return a < b
	})
	return dst
}

// Utilization is the fraction of machine time spent computing between
// t=0 and the makespan: Σ_m (CT[m] − ready[m]) / (machines · makespan).
// 1.0 means a perfectly packed schedule; low values flag idle machines.
// It returns 0 for an empty schedule.
func (s *Schedule) Utilization() float64 {
	mk := s.Makespan()
	if mk <= 0 {
		return 0
	}
	busy := 0.0
	for m, ct := range s.CT {
		busy += ct - s.Inst.Ready[m]
	}
	return busy / (float64(s.Inst.M) * mk)
}

// ImbalanceCV is the coefficient of variation of machine completion
// times — 0 for perfectly balanced load.
func (s *Schedule) ImbalanceCV() float64 {
	mean := 0.0
	for _, ct := range s.CT {
		mean += ct
	}
	mean /= float64(len(s.CT))
	if mean == 0 {
		return 0
	}
	ss := 0.0
	for _, ct := range s.CT {
		d := ct - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(s.CT))) / mean
}

// String renders a compact human-readable summary.
func (s *Schedule) String() string {
	return fmt.Sprintf("schedule{%s, makespan=%.2f}", s.Inst.Name, s.Makespan())
}
