package schedule

import (
	"math"
	"testing"
	"testing/quick"

	"gridsched/internal/etc"
	"gridsched/internal/rng"
)

func testInstance(t *testing.T, tasks, machines int, seed uint64) *etc.Instance {
	t.Helper()
	in, err := etc.Generate(etc.GenSpec{
		Class: etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High},
		Tasks: tasks, Machines: machines, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewEmpty(t *testing.T) {
	in := testInstance(t, 10, 4, 1)
	s := New(in)
	if s.Complete() {
		t.Fatal("empty schedule reports complete")
	}
	for _, m := range s.S {
		if m != Unassigned {
			t.Fatal("new schedule has assigned tasks")
		}
	}
	for m, c := range s.CT {
		if c != in.Ready[m] {
			t.Fatalf("CT[%d] = %v, want ready %v", m, c, in.Ready[m])
		}
	}
}

func TestAssignUpdatesCT(t *testing.T) {
	in := testInstance(t, 10, 4, 2)
	s := New(in)
	s.Assign(3, 2)
	if s.S[3] != 2 {
		t.Fatal("Assign did not record machine")
	}
	if got, want := s.CT[2], in.ETC(3, 2); !approxEqual(got, want) {
		t.Fatalf("CT[2] = %v, want %v", got, want)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignPanicsOnDouble(t *testing.T) {
	in := testInstance(t, 4, 2, 3)
	s := New(in)
	s.Assign(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double Assign did not panic")
		}
	}()
	s.Assign(0, 1)
}

func TestMoveIncremental(t *testing.T) {
	in := testInstance(t, 20, 5, 4)
	r := rng.New(9)
	s := NewRandom(in, r)
	for i := 0; i < 500; i++ {
		task := r.Intn(in.T)
		m := r.Intn(in.M)
		s.Move(task, m)
		if s.S[task] != m {
			t.Fatal("Move did not record assignment")
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("CT invariant broken after moves: %v", err)
	}
}

func TestMoveToSameMachineNoop(t *testing.T) {
	in := testInstance(t, 5, 3, 5)
	s := NewRandom(in, rng.New(1))
	before := append([]float64(nil), s.CT...)
	s.Move(2, s.S[2])
	for m := range before {
		if before[m] != s.CT[m] {
			t.Fatal("Move to same machine changed CT")
		}
	}
}

func TestUnassign(t *testing.T) {
	in := testInstance(t, 6, 3, 6)
	s := NewRandom(in, rng.New(2))
	m := s.S[4]
	s.Unassign(4)
	if s.S[4] != Unassigned {
		t.Fatal("Unassign did not clear task")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Unassign(4) // second call is a no-op
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = m
}

func TestSetAssignment(t *testing.T) {
	in := testInstance(t, 6, 3, 7)
	s := NewRandom(in, rng.New(3))
	s.SetAssignment(1, Unassigned)
	if s.S[1] != Unassigned {
		t.Fatal("SetAssignment(Unassigned) did not unassign")
	}
	s.SetAssignment(1, 2)
	if s.S[1] != 2 {
		t.Fatal("SetAssignment did not assign")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanMatchesFull(t *testing.T) {
	in := testInstance(t, 64, 8, 8)
	s := NewRandom(in, rng.New(4))
	if got, want := s.Makespan(), s.MakespanFull(); !approxEqual(got, want) {
		t.Fatalf("incremental makespan %v, full %v", got, want)
	}
}

func TestMakespanMachine(t *testing.T) {
	in := testInstance(t, 30, 6, 9)
	s := NewRandom(in, rng.New(5))
	m, ct := s.MakespanMachine()
	if ct != s.Makespan() {
		t.Fatalf("MakespanMachine ct %v != makespan %v", ct, s.Makespan())
	}
	if s.CT[m] != ct {
		t.Fatal("MakespanMachine returned wrong machine")
	}
}

func TestMakespanIncludesReady(t *testing.T) {
	in := testInstance(t, 4, 3, 10)
	withReady, err := in.WithReady([]float64{0, 1e12, 0})
	if err != nil {
		t.Fatal(err)
	}
	s := New(withReady)
	if s.Makespan() < 1e12 {
		t.Fatal("makespan ignores ready times")
	}
}

func TestFlowtimeSPT(t *testing.T) {
	// Hand-computed: 1 machine, ETC 2 and 3 -> SPT order finishes at 2
	// and 5, flowtime 7.
	in, err := etc.New("tiny", 2, 1, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	s := New(in)
	s.Assign(0, 0)
	s.Assign(1, 0)
	if got := s.Flowtime(); !approxEqual(got, 7) {
		t.Fatalf("flowtime %v, want 7", got)
	}
}

func TestFlowtimeWithReady(t *testing.T) {
	in, err := etc.New("tiny", 1, 1, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	in2, err := in.WithReady([]float64{10})
	if err != nil {
		t.Fatal(err)
	}
	s := New(in2)
	s.Assign(0, 0)
	if got := s.Flowtime(); !approxEqual(got, 12) {
		t.Fatalf("flowtime %v, want 12", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	in := testInstance(t, 10, 4, 11)
	s := NewRandom(in, rng.New(6))
	c := s.Clone()
	c.Move(0, (s.S[0]+1)%in.M)
	if s.S[0] == c.S[0] {
		t.Fatal("clone shares assignment storage")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCopyFrom(t *testing.T) {
	in := testInstance(t, 10, 4, 12)
	a := NewRandom(in, rng.New(7))
	b := NewRandom(in, rng.New(8))
	b.CopyFrom(a)
	for i := range a.S {
		if a.S[i] != b.S[i] {
			t.Fatal("CopyFrom did not copy S")
		}
	}
	if b.Makespan() != a.Makespan() {
		t.Fatal("CopyFrom did not copy CT")
	}
}

func TestCopyFromPanicsAcrossInstances(t *testing.T) {
	a := NewRandom(testInstance(t, 5, 2, 13), rng.New(1))
	b := NewRandom(testInstance(t, 5, 2, 14), rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom across instances did not panic")
		}
	}()
	a.CopyFrom(b)
}

func TestHammingDistance(t *testing.T) {
	in := testInstance(t, 8, 4, 15)
	a := NewRandom(in, rng.New(9))
	b := a.Clone()
	if a.HammingDistance(b) != 0 {
		t.Fatal("identical schedules have nonzero distance")
	}
	b.Move(0, (b.S[0]+1)%in.M)
	b.Move(5, (b.S[5]+1)%in.M)
	if d := a.HammingDistance(b); d != 2 {
		t.Fatalf("distance %d, want 2", d)
	}
	if a.HammingDistance(b) != b.HammingDistance(a) {
		t.Fatal("distance not symmetric")
	}
}

func TestTasksOnAndCount(t *testing.T) {
	in := testInstance(t, 12, 3, 16)
	s := New(in)
	for task := 0; task < in.T; task++ {
		s.Assign(task, task%3)
	}
	got := s.TasksOn(1, nil)
	if len(got) != s.CountOn(1) || len(got) != 4 {
		t.Fatalf("TasksOn(1) = %v", got)
	}
	for _, task := range got {
		if task%3 != 1 {
			t.Fatalf("TasksOn returned wrong task %d", task)
		}
	}
}

func TestRandomTaskOn(t *testing.T) {
	in := testInstance(t, 12, 3, 17)
	s := New(in)
	for task := 0; task < in.T; task++ {
		s.Assign(task, task%3)
	}
	r := rng.New(10)
	counts := map[int]int{}
	for i := 0; i < 4000; i++ {
		task := s.RandomTaskOn(2, r)
		if task%3 != 2 {
			t.Fatalf("RandomTaskOn returned task %d not on machine 2", task)
		}
		counts[task]++
	}
	// Four tasks on machine 2; each should get ~1000 draws.
	for task, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("RandomTaskOn biased: task %d drawn %d/4000", task, c)
		}
	}
	if got := s.RandomTaskOn(2, r); got%3 != 2 {
		t.Fatal("reservoir broken")
	}
	empty := New(in)
	if got := empty.RandomTaskOn(0, r); got != -1 {
		t.Fatalf("RandomTaskOn on empty machine = %d, want -1", got)
	}
}

func TestMachinesByCompletion(t *testing.T) {
	in := testInstance(t, 40, 6, 18)
	s := NewRandom(in, rng.New(11))
	order := s.MachinesByCompletion(nil)
	if len(order) != in.M {
		t.Fatalf("order length %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if s.CT[order[i-1]] > s.CT[order[i]] {
			t.Fatal("MachinesByCompletion not ascending")
		}
	}
	// Reuse buffer path.
	buf := make([]int, 0, in.M)
	order2 := s.MachinesByCompletion(buf)
	for i := range order {
		if order[i] != order2[i] {
			t.Fatal("buffered call disagrees")
		}
	}
}

func TestFromAssignment(t *testing.T) {
	in := testInstance(t, 6, 3, 19)
	s, err := FromAssignment(in, []int{0, 1, 2, 0, Unassigned, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Complete() {
		t.Fatal("partial assignment reports complete")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := FromAssignment(in, []int{0}); err == nil {
		t.Fatal("short vector accepted")
	}
	if _, err := FromAssignment(in, []int{0, 1, 2, 0, 9, 1}); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

// Property: any sequence of moves preserves the CT invariant and keeps
// incremental makespan equal to the full recomputation.
func TestPropertyIncrementalInvariant(t *testing.T) {
	in := testInstance(t, 32, 5, 20)
	f := func(seed uint64, ops []uint16) bool {
		r := rng.New(seed)
		s := NewRandom(in, r)
		for _, op := range ops {
			task := int(op>>4) % in.T
			m := int(op&0xF) % in.M
			s.Move(task, m)
		}
		return s.Validate() == nil && approxEqual(s.Makespan(), s.MakespanFull())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RecomputeCT is idempotent and agrees with incremental CT.
func TestPropertyRecompute(t *testing.T) {
	in := testInstance(t, 24, 4, 21)
	f := func(seed uint64) bool {
		s := NewRandom(in, rng.New(seed))
		before := append([]float64(nil), s.CT...)
		s.RecomputeCT()
		for m := range before {
			if !approxEqual(before[m], s.CT[m]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	// 2 machines, ETC: task0=4 on m0, task1=2 on m1 -> CT = [4, 2],
	// makespan 4, busy 6, utilization 6/(2*4) = 0.75.
	in, err := etc.New("u", 2, 2, []float64{4, 100, 100, 2})
	if err != nil {
		t.Fatal(err)
	}
	s := New(in)
	s.Assign(0, 0)
	s.Assign(1, 1)
	if got := s.Utilization(); !approxEqual(got, 0.75) {
		t.Fatalf("utilization %v, want 0.75", got)
	}
	if got := New(in).Utilization(); got != 0 {
		t.Fatalf("empty schedule utilization %v", got)
	}
}

func TestUtilizationPerfectBalance(t *testing.T) {
	in, err := etc.New("u", 2, 2, []float64{3, 100, 100, 3})
	if err != nil {
		t.Fatal(err)
	}
	s := New(in)
	s.Assign(0, 0)
	s.Assign(1, 1)
	if got := s.Utilization(); !approxEqual(got, 1) {
		t.Fatalf("balanced utilization %v, want 1", got)
	}
	if got := s.ImbalanceCV(); got != 0 {
		t.Fatalf("balanced imbalance %v, want 0", got)
	}
}

func TestImbalanceCV(t *testing.T) {
	// CT = [4, 2]: mean 3, population std 1, CV 1/3.
	in, err := etc.New("u", 2, 2, []float64{4, 100, 100, 2})
	if err != nil {
		t.Fatal(err)
	}
	s := New(in)
	s.Assign(0, 0)
	s.Assign(1, 1)
	if got := s.ImbalanceCV(); !approxEqual(got, 1.0/3) {
		t.Fatalf("imbalance %v, want 1/3", got)
	}
	if got := New(in).ImbalanceCV(); got != 0 {
		t.Fatalf("empty imbalance %v", got)
	}
}

func TestMakespanEmptySchedule(t *testing.T) {
	in := testInstance(t, 4, 3, 22)
	s := New(in)
	if got := s.Makespan(); got != 0 {
		t.Fatalf("empty schedule makespan %v, want 0 (zero ready times)", got)
	}
	if math.IsInf(s.Makespan(), 0) {
		t.Fatal("makespan inf")
	}
}

func BenchmarkMoveIncremental(b *testing.B) {
	in, _ := etc.Generate(etc.GenSpec{Class: etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High}, Seed: 1})
	s := NewRandom(in, rng.New(1))
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Move(r.Intn(in.T), r.Intn(in.M))
	}
}

func BenchmarkMakespanIncremental(b *testing.B) {
	in, _ := etc.Generate(etc.GenSpec{Class: etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High}, Seed: 1})
	s := NewRandom(in, rng.New(1))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.Makespan()
	}
	_ = sink
}

func BenchmarkMakespanFullRecompute(b *testing.B) {
	in, _ := etc.Generate(etc.GenSpec{Class: etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High}, Seed: 1})
	s := NewRandom(in, rng.New(1))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.MakespanFull()
	}
	_ = sink
}
