package etc

import (
	"fmt"
	"math"
)

// Metrics summarizes the statistical character of an ETC matrix: the
// quantities the Braun/Ali classification controls (task heterogeneity,
// machine heterogeneity, consistency) measured back from the data. They
// let users check that a generated or imported instance really belongs
// to its nominal class, and they power `etcgen -inspect`.
type Metrics struct {
	// MeanETC and StdETC summarize all matrix entries.
	MeanETC, StdETC float64
	// TaskHeterogeneity is the coefficient of variation of mean task
	// ETCs (how different task sizes are from each other).
	TaskHeterogeneity float64
	// MachineHeterogeneity is the mean over tasks of the per-row
	// coefficient of variation (how differently machines treat one
	// task).
	MachineHeterogeneity float64
	// ConsistencyIndex is the fraction of machine pairs (a, b) whose
	// order is the same for every task: 1.0 for consistent matrices,
	// ~0 for inconsistent ones, intermediate for semi-consistent.
	ConsistencyIndex float64
	// IdealMakespan is the load-balance lower bound assuming every task
	// runs at its per-task minimum ETC and load splits perfectly:
	// Σ_t min_m ETC(t,m) / machines. No schedule can beat it.
	IdealMakespan float64
}

// ComputeMetrics measures the instance.
func ComputeMetrics(in *Instance) Metrics {
	var m Metrics
	n := float64(len(in.Row))

	sum, sumSq := 0.0, 0.0
	for _, v := range in.Row {
		sum += v
		sumSq += v * v
	}
	m.MeanETC = sum / n
	m.StdETC = math.Sqrt(math.Max(0, sumSq/n-m.MeanETC*m.MeanETC))

	// Task heterogeneity (CV of per-task means), machine heterogeneity
	// (mean per-row CV) and the ideal-makespan lower bound all sweep
	// one task's contiguous cost row at a time, so a single pass over
	// the row layout feeds all three.
	taskMeans := make([]float64, in.T)
	cvSum := 0.0
	minSum := 0.0
	for t := 0; t < in.T; t++ {
		tc := in.TaskCosts(t)
		rowSum := 0.0
		best := math.Inf(1)
		for _, v := range tc {
			rowSum += v
			if v < best {
				best = v
			}
		}
		taskMeans[t] = rowSum / float64(in.M)
		cvSum += coefficientOfVariation(tc)
		minSum += best
	}
	m.TaskHeterogeneity = coefficientOfVariation(taskMeans)
	m.MachineHeterogeneity = cvSum / float64(in.T)

	// Consistency: fraction of machine pairs ordered identically on
	// every task, each pair compared through the two machines'
	// contiguous cost columns (layout-friendly: the scan is two
	// sequential sweeps instead of stride-T reads).
	consistentPairs, totalPairs := 0, 0
	for a := 0; a < in.M; a++ {
		ca := in.MachineCosts(a)
		for b := a + 1; b < in.M; b++ {
			cb := in.MachineCosts(b)
			totalPairs++
			aFaster, bFaster := false, false
			for t, va := range ca {
				vb := cb[t]
				if va < vb {
					aFaster = true
				} else if va > vb {
					bFaster = true
				}
				if aFaster && bFaster {
					break
				}
			}
			if !(aFaster && bFaster) {
				consistentPairs++
			}
		}
	}
	if totalPairs > 0 {
		m.ConsistencyIndex = float64(consistentPairs) / float64(totalPairs)
	} else {
		m.ConsistencyIndex = 1
	}

	m.IdealMakespan = minSum / float64(in.M)
	return m
}

func coefficientOfVariation(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0
	}
	ss := 0.0
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / mean
}

// String renders a compact report.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"etc mean %.2f (std %.2f), task het %.2f, machine het %.2f, consistency %.2f, ideal makespan ≥ %.2f",
		m.MeanETC, m.StdETC, m.TaskHeterogeneity, m.MachineHeterogeneity, m.ConsistencyIndex, m.IdealMakespan)
}
