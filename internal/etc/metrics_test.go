package etc

import (
	"math"
	"strings"
	"testing"
)

func genClass(t *testing.T, cons Consistency, th, mh Heterogeneity) *Instance {
	t.Helper()
	cl := Class{Consistency: cons, TaskHet: th, MachineHet: mh}
	in, err := Generate(GenSpec{Class: cl, Tasks: 128, Machines: 16, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestConsistencyIndexByClass(t *testing.T) {
	cons := ComputeMetrics(genClass(t, Consistent, High, High))
	if cons.ConsistencyIndex != 1 {
		t.Fatalf("consistent instance index %v, want 1", cons.ConsistencyIndex)
	}
	inc := ComputeMetrics(genClass(t, Inconsistent, High, High))
	if inc.ConsistencyIndex > 0.1 {
		t.Fatalf("inconsistent instance index %v, want ~0", inc.ConsistencyIndex)
	}
	semi := ComputeMetrics(genClass(t, SemiConsistent, High, High))
	if semi.ConsistencyIndex <= inc.ConsistencyIndex || semi.ConsistencyIndex >= cons.ConsistencyIndex {
		t.Fatalf("semi-consistent index %v not strictly between %v and %v",
			semi.ConsistencyIndex, inc.ConsistencyIndex, cons.ConsistencyIndex)
	}
}

func TestHeterogeneityOrdering(t *testing.T) {
	hiTask := ComputeMetrics(genClass(t, Inconsistent, High, Low))
	loTask := ComputeMetrics(genClass(t, Inconsistent, Low, Low))
	if hiTask.TaskHeterogeneity <= loTask.TaskHeterogeneity {
		t.Fatalf("hi-task het %v not above lo-task het %v",
			hiTask.TaskHeterogeneity, loTask.TaskHeterogeneity)
	}
	hiMach := ComputeMetrics(genClass(t, Inconsistent, Low, High))
	loMach := ComputeMetrics(genClass(t, Inconsistent, Low, Low))
	if hiMach.MachineHeterogeneity <= loMach.MachineHeterogeneity {
		t.Fatalf("hi-machine het %v not above lo-machine het %v",
			hiMach.MachineHeterogeneity, loMach.MachineHeterogeneity)
	}
}

func TestIdealMakespanIsLowerBound(t *testing.T) {
	// The bound must not exceed what any constructive schedule achieves.
	in := genClass(t, Inconsistent, High, High)
	m := ComputeMetrics(in)
	if m.IdealMakespan <= 0 {
		t.Fatalf("ideal makespan %v", m.IdealMakespan)
	}
	// A crude upper bound: every task at its max ETC on one machine.
	worst := 0.0
	for task := 0; task < in.T; task++ {
		for mac := 0; mac < in.M; mac++ {
			worst += in.ETC(task, mac)
		}
	}
	if m.IdealMakespan >= worst {
		t.Fatal("ideal makespan above the trivial upper bound")
	}
}

func TestMetricsMeanStd(t *testing.T) {
	in, err := New("flat", 2, 2, []float64{3, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	m := ComputeMetrics(in)
	if m.MeanETC != 3 || m.StdETC != 0 {
		t.Fatalf("mean/std %v/%v, want 3/0", m.MeanETC, m.StdETC)
	}
	if m.TaskHeterogeneity != 0 || m.MachineHeterogeneity != 0 {
		t.Fatal("flat matrix reports heterogeneity")
	}
	if m.ConsistencyIndex != 1 {
		t.Fatal("flat matrix is trivially consistent")
	}
	// Ideal: each task min = 3, sum 6, /2 machines = 3.
	if m.IdealMakespan != 3 {
		t.Fatalf("ideal %v, want 3", m.IdealMakespan)
	}
}

func TestMetricsString(t *testing.T) {
	in := genClass(t, Consistent, Low, Low)
	s := ComputeMetrics(in).String()
	for _, want := range []string{"consistency", "ideal makespan", "task het"} {
		if !strings.Contains(s, want) {
			t.Fatalf("metrics string missing %q: %s", want, s)
		}
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := coefficientOfVariation(nil); cv != 0 {
		t.Fatalf("empty CV %v", cv)
	}
	if cv := coefficientOfVariation([]float64{5, 5, 5}); cv != 0 {
		t.Fatalf("constant CV %v", cv)
	}
	// {1, 3}: mean 2, population std 1, CV 0.5.
	if cv := coefficientOfVariation([]float64{1, 3}); math.Abs(cv-0.5) > 1e-12 {
		t.Fatalf("CV %v, want 0.5", cv)
	}
}
