package etc

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// Native fuzz targets for everything in this package that consumes
// untrusted input: the HCSP matrix parser, the class-name parsers, and
// direct instance construction. The properties are uniform — malformed
// input (bad headers, negative dimensions, NaN/negative/infinite
// entries, truncated bodies) must produce an error, never a panic, and
// every accepted input must yield an instance whose invariants hold.
// `go test` replays the seed corpus below on every run; `go test
// -fuzz=FuzzRead ./internal/etc` explores further.

// FuzzRead feeds arbitrary text to the HCSP parser. Accepted inputs
// must validate and round-trip exactly through Write.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"2 2\n1\n2\n3\n4\n",
		"2 3\n1 2 3\n4 5 6\n",
		"",
		"\n",
		"x y\n",
		"2\n",
		"-1 5\n1\n2\n",
		"5 -1\n1\n2\n",
		"0 0\n",
		"999999999 999999999\n1\n",
		"16777216 1\n",
		"2 2\nNaN\n1\n1\n1\n",
		"2 2\n-3\n1\n1\n1\n",
		"2 2\n0\n1\n1\n1\n",
		"1 1\n+Inf\n",
		"1 1\n1e309\n",
		"1 1\n1e-309\n",
		"2 2\n1\n2\n3\n",       // too few values
		"2 2\n1\n2\n3\n4\n5\n", // too many values
		"1 2 3\n1\n2\n",        // trailing junk in header is ignored by Sscanf
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		in, err := Read("fuzz", strings.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as we did not panic
		}
		if verr := in.Validate(); verr != nil {
			t.Fatalf("accepted instance fails Validate: %v\ninput: %q", verr, data)
		}
		var buf bytes.Buffer
		if werr := in.Write(&buf); werr != nil {
			t.Fatalf("Write failed on accepted instance: %v", werr)
		}
		back, rerr := Read(in.Name, &buf)
		if rerr != nil {
			t.Fatalf("round-trip Read failed: %v\nserialized: %q", rerr, buf.String())
		}
		if back.T != in.T || back.M != in.M {
			t.Fatalf("round-trip dims %dx%d, want %dx%d", back.T, back.M, in.T, in.M)
		}
		for i := range in.Row {
			if back.Row[i] != in.Row[i] {
				t.Fatalf("round-trip Row[%d] = %v, want %v", i, back.Row[i], in.Row[i])
			}
		}
	})
}

// FuzzParseClass checks that class-name parsing never panics and that
// every accepted name round-trips through Class.Name.
func FuzzParseClass(f *testing.F) {
	seeds := []string{
		"u_c_hihi.0", "u_i_lolo.3", "u_s_hilo", "u_c_lohi.007",
		"", "u", "u_c", "u_c_hihi.", "u_c_hihi.x", "u_q_hihi.0",
		"u_c_xxyy.0", "u_c_hih.0", "u_c_hihii.0", "v_c_hihi.0",
		"u_c_hihi.-5", "u_c_hihi.+5", "u__hihi.0", "u_c_HIHI.0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		cl, err := ParseClass(name)
		if err != nil {
			return
		}
		rt, err2 := ParseClass(cl.Name())
		if err2 != nil {
			t.Fatalf("canonical name %q does not reparse: %v (from %q)", cl.Name(), err2, name)
		}
		if rt != cl {
			t.Fatalf("round-trip %+v != %+v (from %q)", rt, cl, name)
		}
	})
}

// FuzzParseSizedName covers the "@TxM" sized form used by the instance
// cache and the scenario sweep.
func FuzzParseSizedName(f *testing.F) {
	seeds := []string{
		"u_c_hihi.0@128x8", "u_c_hihi.0@512x16", "u_i_lolo.0",
		"u_c_hihi.0@", "u_c_hihi.0@x", "u_c_hihi.0@8", "u_c_hihi.0@0x0",
		"u_c_hihi.0@-1x8", "u_c_hihi.0@8x-1", "u_c_hihi.0@99999999x99999999",
		"u_c_hihi.0@1x1@2x2", "@128x8", "u_c_hihi.0@07x08",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		cl, tasks, machines, err := ParseSizedName(name)
		if err != nil {
			return
		}
		if tasks < 0 || machines < 0 {
			t.Fatalf("ParseSizedName(%q) accepted negative dims %dx%d", name, tasks, machines)
		}
		if tasks > 0 && machines > 0 && tasks > maxMatrixEntries/machines {
			t.Fatalf("ParseSizedName(%q) accepted oversized %dx%d", name, tasks, machines)
		}
		canon := SizedName(cl, tasks, machines)
		rt, rtT, rtM, err2 := ParseSizedName(canon)
		if err2 != nil {
			t.Fatalf("canonical sized name %q does not reparse: %v (from %q)", canon, err2, name)
		}
		if rt != cl {
			t.Fatalf("round-trip class %+v != %+v (from %q)", rt, cl, name)
		}
		// SizedName folds the benchmark dimensions into the plain form,
		// where the parser reports zeros; both spell the same instance.
		if !(rtT == tasks && rtM == machines) &&
			!(rtT == 0 && rtM == 0 && (tasks == 0 || tasks == DefaultTasks) && (machines == 0 || machines == DefaultMachines)) {
			t.Fatalf("round-trip dims %dx%d, want %dx%d (from %q)", rtT, rtM, tasks, machines, name)
		}
	})
}

// FuzzNewInstance drives direct construction with arbitrary dimensions
// and bit patterns (hitting NaN, ±Inf, negatives and denormals): New
// must either reject with an error or hand back a valid instance.
func FuzzNewInstance(f *testing.F) {
	f.Add(2, 2, []byte{0, 0, 0, 0, 0, 0, 240, 63}) // 1.0 plus padding
	f.Add(-1, -1, []byte{1})
	f.Add(0, 5, []byte{})
	f.Add(1<<30, 1<<30, []byte{1, 2, 3})
	f.Add(1, 2, []byte{0, 0, 0, 0, 0, 0, 248, 127, 0, 0, 0, 0, 0, 0, 240, 63}) // NaN, 1.0
	f.Fuzz(func(t *testing.T, tasks, machines int, data []byte) {
		row := make([]float64, 0, len(data)/8)
		for i := 0; i+8 <= len(data); i += 8 {
			bits := uint64(0)
			for j := 0; j < 8; j++ {
				bits |= uint64(data[i+j]) << (8 * j)
			}
			row = append(row, math.Float64frombits(bits))
		}
		in, err := New("fuzz", tasks, machines, row)
		if err != nil {
			return
		}
		if verr := in.Validate(); verr != nil {
			t.Fatalf("accepted instance fails Validate: %v", verr)
		}
		for tt := 0; tt < in.T; tt++ {
			for m := 0; m < in.M; m++ {
				if in.ETC(tt, m) != in.ETCRow(tt, m) {
					t.Fatalf("layouts disagree at (%d,%d)", tt, m)
				}
			}
		}
	})
}
