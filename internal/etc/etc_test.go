package etc

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseClassRoundTrip(t *testing.T) {
	for _, name := range []string{
		"u_c_hihi.0", "u_c_hilo.0", "u_c_lohi.0", "u_c_lolo.0",
		"u_i_hihi.0", "u_i_hilo.3", "u_i_lohi.0", "u_i_lolo.0",
		"u_s_hihi.0", "u_s_hilo.0", "u_s_lohi.11", "u_s_lolo.0",
	} {
		cl, err := ParseClass(name)
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", name, err)
		}
		if got := cl.Name(); got != name {
			t.Fatalf("round trip %q -> %q", name, got)
		}
	}
}

func TestParseClassErrors(t *testing.T) {
	for _, name := range []string{
		"", "u_c", "x_c_hihi.0", "u_q_hihi.0", "u_c_xxhi.0",
		"u_c_hixx.0", "u_c_hihi.z", "u_c_hihihi.0",
	} {
		if _, err := ParseClass(name); err == nil {
			t.Fatalf("ParseClass(%q) unexpectedly succeeded", name)
		}
	}
}

func TestAllClassesCount(t *testing.T) {
	cls := AllClasses()
	if len(cls) != 12 {
		t.Fatalf("AllClasses returned %d classes, want 12", len(cls))
	}
	seen := map[string]bool{}
	for _, cl := range cls {
		if seen[cl.Name()] {
			t.Fatalf("duplicate class %s", cl.Name())
		}
		seen[cl.Name()] = true
	}
}

func TestGenerateDimensionsAndValidity(t *testing.T) {
	for _, cl := range AllClasses() {
		in, err := Generate(GenSpec{Class: cl, Tasks: 64, Machines: 8, Seed: 1})
		if err != nil {
			t.Fatalf("Generate(%s): %v", cl.Name(), err)
		}
		if in.T != 64 || in.M != 8 {
			t.Fatalf("Generate(%s): dims %dx%d", cl.Name(), in.T, in.M)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("Generate(%s): invalid instance: %v", cl.Name(), err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{Class: Class{Consistency: Inconsistent, TaskHet: High, MachineHet: High}, Tasks: 32, Machines: 4, Seed: 7}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Row {
		if a.Row[i] != b.Row[i] {
			t.Fatalf("same spec, different matrices at %d", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cl := Class{Consistency: Inconsistent, TaskHet: High, MachineHet: High}
	a, _ := Generate(GenSpec{Class: cl, Tasks: 32, Machines: 4, Seed: 1})
	b, _ := Generate(GenSpec{Class: cl, Tasks: 32, Machines: 4, Seed: 2})
	same := 0
	for i := range a.Row {
		if a.Row[i] == b.Row[i] {
			same++
		}
	}
	if same == len(a.Row) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestConsistentRowsSorted(t *testing.T) {
	in, err := Generate(GenSpec{Class: Class{Consistency: Consistent, TaskHet: High, MachineHet: High}, Tasks: 50, Machines: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < in.T; task++ {
		for m := 1; m < in.M; m++ {
			if in.ETCRow(task, m-1) > in.ETCRow(task, m) {
				t.Fatalf("consistent instance has unsorted row %d at column %d", task, m)
			}
		}
	}
}

// TestConsistentDominance verifies the defining property quoted in §4.1:
// if machine a is faster than machine b for one task, it is faster for
// all tasks.
func TestConsistentDominance(t *testing.T) {
	in, err := Generate(GenSpec{Class: Class{Consistency: Consistent, TaskHet: Low, MachineHet: High}, Tasks: 40, Machines: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < in.M; a++ {
		for b := a + 1; b < in.M; b++ {
			fasterForAll, slowerForAll := true, true
			for task := 0; task < in.T; task++ {
				if in.ETC(task, a) > in.ETC(task, b) {
					fasterForAll = false
				}
				if in.ETC(task, a) < in.ETC(task, b) {
					slowerForAll = false
				}
			}
			if !fasterForAll && !slowerForAll {
				t.Fatalf("machines %d,%d are not consistently ordered", a, b)
			}
		}
	}
}

func TestSemiConsistentEvenColumnsSorted(t *testing.T) {
	in, err := Generate(GenSpec{Class: Class{Consistency: SemiConsistent, TaskHet: High, MachineHet: Low}, Tasks: 30, Machines: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < in.T; task++ {
		prev := math.Inf(-1)
		for m := 0; m < in.M; m += 2 {
			v := in.ETCRow(task, m)
			if v < prev {
				t.Fatalf("semi-consistent even columns unsorted in row %d", task)
			}
			prev = v
		}
	}
}

func TestInconsistentIsActuallyInconsistent(t *testing.T) {
	in, err := Generate(GenSpec{Class: Class{Consistency: Inconsistent, TaskHet: High, MachineHet: High}, Tasks: 100, Machines: 16, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// With 100 tasks and high heterogeneity the probability that the first
	// two machines are consistently ordered by chance is ~2^-99.
	aFaster, bFaster := false, false
	for task := 0; task < in.T; task++ {
		if in.ETC(task, 0) < in.ETC(task, 1) {
			aFaster = true
		} else if in.ETC(task, 0) > in.ETC(task, 1) {
			bFaster = true
		}
	}
	if !(aFaster && bFaster) {
		t.Fatal("inconsistent instance looks consistent between machines 0 and 1")
	}
}

// TestHeterogeneityRanges checks the generated value ranges match the
// published p_j bounds of each class family (§4.1 Blazewicz list): the
// maxima must approach φ_b·φ_r and never exceed it.
func TestHeterogeneityRanges(t *testing.T) {
	cases := []struct {
		th, mh Heterogeneity
		limit  float64
		floor  float64 // max must exceed this, or the draw is implausibly narrow
	}{
		{High, High, 3000 * 1000, 1000 * 300},
		{High, Low, 3000 * 10, 10 * 1000},
		{Low, High, 100 * 1000, 1000 * 30},
		{Low, Low, 100 * 10, 300},
	}
	for _, cse := range cases {
		cl := Class{Consistency: Inconsistent, TaskHet: cse.th, MachineHet: cse.mh}
		in, err := Generate(GenSpec{Class: cl, Seed: classSeed(cl)})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := in.MinMaxETC()
		if lo < 1 {
			t.Fatalf("%s: min %v below 1", cl.Name(), lo)
		}
		if hi > cse.limit {
			t.Fatalf("%s: max %v exceeds theoretical limit %v", cl.Name(), hi, cse.limit)
		}
		if hi < cse.floor {
			t.Fatalf("%s: max %v implausibly small (floor %v)", cl.Name(), hi, cse.floor)
		}
	}
}

func TestLayoutsAgree(t *testing.T) {
	in, err := Generate(GenSpec{Class: Class{Consistency: SemiConsistent, TaskHet: High, MachineHet: High}, Tasks: 20, Machines: 6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < in.T; task++ {
		for m := 0; m < in.M; m++ {
			if in.ETC(task, m) != in.ETCRow(task, m) {
				t.Fatalf("layouts disagree at (%d,%d)", task, m)
			}
		}
	}
}

func TestMachineRowAliases(t *testing.T) {
	in, _ := Generate(GenSpec{Class: Class{Consistency: Inconsistent, TaskHet: Low, MachineHet: Low}, Tasks: 10, Machines: 3, Seed: 9})
	row := in.MachineRow(2)
	if len(row) != in.T {
		t.Fatalf("MachineRow length %d, want %d", len(row), in.T)
	}
	for task := 0; task < in.T; task++ {
		if row[task] != in.ETC(task, 2) {
			t.Fatalf("MachineRow disagrees at task %d", task)
		}
	}
	tr := in.TaskRow(4)
	for m := 0; m < in.M; m++ {
		if tr[m] != in.ETCRow(4, m) {
			t.Fatalf("TaskRow disagrees at machine %d", m)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in, err := Generate(GenSpec{Class: Class{Consistency: Consistent, TaskHet: High, MachineHet: Low}, Tasks: 25, Machines: 7, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(in.Name, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.T != in.T || back.M != in.M {
		t.Fatalf("round trip dims %dx%d, want %dx%d", back.T, back.M, in.T, in.M)
	}
	for i := range in.Row {
		if in.Row[i] != back.Row[i] {
			t.Fatalf("round trip value mismatch at %d: %v vs %v", i, in.Row[i], back.Row[i])
		}
	}
}

func TestReadSizedHeaderless(t *testing.T) {
	text := "1.5\n2.5\n3.5\n4.5\n5.5\n6.5\n"
	in, err := ReadSized("u_i_lolo.0", 3, 2, strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if in.ETCRow(0, 0) != 1.5 || in.ETCRow(2, 1) != 6.5 {
		t.Fatalf("ReadSized parsed wrong values: %v", in.Row)
	}
	if in.ClassTag.Name() != "u_i_lolo.0" {
		t.Fatalf("class tag not recovered from name: %v", in.ClassTag)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read("x", strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Read("x", strings.NewReader("2 2\n1\n2\n3\n")); err == nil {
		t.Fatal("short matrix accepted")
	}
	if _, err := Read("x", strings.NewReader("2 2\n1\nbogus\n3\n4\n")); err == nil {
		t.Fatal("non-numeric value accepted")
	}
	if _, err := Read("x", strings.NewReader("not a header\n")); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New("x", 2, 2, []float64{1, 2, 3}); err == nil {
		t.Fatal("wrong-sized matrix accepted")
	}
	if _, err := New("x", 2, 2, []float64{1, 2, 3, -4}); err == nil {
		t.Fatal("negative ETC accepted")
	}
	if _, err := New("x", 2, 2, []float64{1, 2, 3, 0}); err == nil {
		t.Fatal("zero ETC accepted")
	}
	if _, err := New("x", 2, 2, []float64{1, 2, 3, math.Inf(1)}); err == nil {
		t.Fatal("infinite ETC accepted")
	}
}

func TestWithReady(t *testing.T) {
	in, _ := Generate(GenSpec{Class: Class{Consistency: Inconsistent, TaskHet: Low, MachineHet: Low}, Tasks: 8, Machines: 4, Seed: 11})
	r2, err := in.WithReady([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Ready[2] != 3 {
		t.Fatalf("ready times not applied: %v", r2.Ready)
	}
	if in.Ready[2] != 0 {
		t.Fatal("WithReady mutated the original")
	}
	if _, err := in.WithReady([]float64{1}); err == nil {
		t.Fatal("wrong-length ready accepted")
	}
	if _, err := in.WithReady([]float64{1, 2, 3, -1}); err == nil {
		t.Fatal("negative ready accepted")
	}
}

func TestBlazewiczNotation(t *testing.T) {
	cons, _ := Generate(GenSpec{Class: Class{Consistency: Consistent, TaskHet: Low, MachineHet: Low}, Seed: 1})
	if !strings.HasPrefix(cons.Blazewicz(), "Q16|") {
		t.Fatalf("consistent notation %q should start with Q16|", cons.Blazewicz())
	}
	inc, _ := Generate(GenSpec{Class: Class{Consistency: Inconsistent, TaskHet: Low, MachineHet: Low}, Seed: 1})
	if !strings.HasPrefix(inc.Blazewicz(), "R16|") {
		t.Fatalf("inconsistent notation %q should start with R16|", inc.Blazewicz())
	}
	if !strings.HasSuffix(inc.Blazewicz(), "|Cmax") {
		t.Fatalf("notation %q should end with |Cmax", inc.Blazewicz())
	}
}

func TestBenchmarkSuite(t *testing.T) {
	suite, err := Benchmark()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 12 {
		t.Fatalf("suite has %d instances, want 12", len(suite))
	}
	for _, in := range suite {
		if in.T != DefaultTasks || in.M != DefaultMachines {
			t.Fatalf("%s: dims %dx%d, want %dx%d", in.Name, in.T, in.M, DefaultTasks, DefaultMachines)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
	}
}

func TestGenerateByNameStable(t *testing.T) {
	a, err := GenerateByName("u_s_hilo.0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateByName("u_s_hilo.0")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Row {
		if a.Row[i] != b.Row[i] {
			t.Fatal("GenerateByName is not stable")
		}
	}
	if _, err := GenerateByName("garbage"); err == nil {
		t.Fatal("GenerateByName accepted garbage")
	}
}

// Property: generated matrices are valid for arbitrary (small) dims and
// any seed.
func TestGenerateProperty(t *testing.T) {
	f := func(seed uint64, tRaw, mRaw uint8, cons uint8) bool {
		tn := int(tRaw)%40 + 1
		mn := int(mRaw)%12 + 1
		cl := Class{Consistency: Consistency(cons % 3), TaskHet: High, MachineHet: Low}
		in, err := Generate(GenSpec{Class: cl, Tasks: tn, Machines: mn, Seed: seed})
		if err != nil {
			return false
		}
		return in.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerate512x16(b *testing.B) {
	cl := Class{Consistency: Consistent, TaskHet: High, MachineHet: High}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(GenSpec{Class: cl, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSizedNameDefaults(t *testing.T) {
	cl := Class{Consistency: Consistent, TaskHet: High, MachineHet: Low}
	cases := []struct {
		tasks, machines int
		want            string
	}{
		{0, 0, "u_c_hilo.0"},
		{DefaultTasks, DefaultMachines, "u_c_hilo.0"},
		{0, 8, "u_c_hilo.0@512x8"}, // one zero dim folds to its default
		{128, 0, "u_c_hilo.0@128x16"},
		{128, 8, "u_c_hilo.0@128x8"},
	}
	for _, c := range cases {
		name := SizedName(cl, c.tasks, c.machines)
		if name != c.want {
			t.Errorf("SizedName(%d, %d) = %q, want %q", c.tasks, c.machines, name, c.want)
		}
		// Every rendered name must be generable.
		in, err := GenerateByName(name)
		if err != nil {
			t.Errorf("GenerateByName(%q): %v", name, err)
			continue
		}
		if in.Name != name {
			t.Errorf("GenerateByName(%q) produced Name %q", name, in.Name)
		}
	}
}

func TestGenerateByNameSized(t *testing.T) {
	in, err := GenerateByName("u_i_hihi.0@64x4")
	if err != nil {
		t.Fatal(err)
	}
	if in.T != 64 || in.M != 4 {
		t.Fatalf("sized generation produced %dx%d, want 64x4", in.T, in.M)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same class+size regenerates identically (the cache contract).
	again, err := GenerateByName("u_i_hihi.0@64x4")
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Row {
		if in.Row[i] != again.Row[i] {
			t.Fatalf("sized generation not deterministic at entry %d", i)
		}
	}
	// Hostile sizes are rejected, not allocated.
	for _, name := range []string{"u_c_hihi.0@-1x8", "u_c_hihi.0@999999999x999999999", "u_c_hihi.0@0x0"} {
		if _, err := GenerateByName(name); err == nil {
			t.Errorf("GenerateByName(%q) accepted hostile size", name)
		}
	}
}
