// Package etc implements the Expected Time to Compute (ETC) model of
// Braun et al. used by the paper to describe batch scheduling instances:
// a set of independent tasks, a set of heterogeneous machines, and a
// tasks×machines matrix where entry (t, m) is the expected execution time
// of task t on machine m.
//
// The package provides
//
//   - the Instance type holding the matrix in both row-major (task-major)
//     and transposed (machine-major) layouts — the paper stores the
//     transposed matrix to raise the cache hit rate of completion-time
//     updates (§3.3), and we keep both so the claim can be benchmarked;
//   - the Braun/Ali benchmark instance generator (uniform range-based
//     method with task heterogeneity, machine heterogeneity and the
//     consistent / semi-consistent / inconsistent matrix classes);
//   - parsing and serialization of the classic HCSP text format;
//   - per-machine ready times (§2.2) and the Blazewicz-notation summary
//     the paper uses to describe its 12 benchmark instances.
package etc

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"gridsched/internal/rng"
)

// Consistency classifies an ETC matrix following Braun et al. (§4.1).
type Consistency int

const (
	// Consistent: if machine a runs one task faster than machine b, it
	// runs every task faster (rows sorted against a common machine order).
	Consistent Consistency = iota
	// Inconsistent: machine relative speed varies per task.
	Inconsistent
	// SemiConsistent: an inconsistent matrix embedding a consistent
	// sub-matrix (even-indexed columns of every row are mutually sorted).
	SemiConsistent
)

// String returns the single-letter code used in instance names
// (c, i or s).
func (c Consistency) String() string {
	switch c {
	case Consistent:
		return "c"
	case Inconsistent:
		return "i"
	case SemiConsistent:
		return "s"
	default:
		return "?"
	}
}

// ParseConsistency converts the instance-name letter to a Consistency.
func ParseConsistency(s string) (Consistency, error) {
	switch s {
	case "c":
		return Consistent, nil
	case "i":
		return Inconsistent, nil
	case "s":
		return SemiConsistent, nil
	}
	return 0, fmt.Errorf("etc: unknown consistency code %q (want c, i or s)", s)
}

// Heterogeneity is the hi/lo qualifier applied separately to tasks and to
// machines in the Braun instance classes.
type Heterogeneity int

const (
	// Low heterogeneity.
	Low Heterogeneity = iota
	// High heterogeneity.
	High
)

// String returns the two-letter code used in instance names (lo or hi).
func (h Heterogeneity) String() string {
	if h == High {
		return "hi"
	}
	return "lo"
}

// ParseHeterogeneity converts the instance-name code to a Heterogeneity.
func ParseHeterogeneity(s string) (Heterogeneity, error) {
	switch s {
	case "hi":
		return High, nil
	case "lo":
		return Low, nil
	}
	return 0, fmt.Errorf("etc: unknown heterogeneity code %q (want hi or lo)", s)
}

// Range multipliers of the classic range-based generation method. Task
// baseline values are drawn from U(1, φ_b) and each row is scaled by
// independent draws of U(1, φ_r). These constants reproduce the published
// value ranges of the u_x_yyzz.k instances (e.g. hihi ⇒ values up to
// ~3 000 × 1 000 = 3·10⁶, matching the paper's p_j ≤ 2 968 769).
const (
	TaskHeterogeneityLow  = 100
	TaskHeterogeneityHigh = 3000
	MachHeterogeneityLow  = 10
	MachHeterogeneityHigh = 1000
)

// Class identifies one of the 12 Braun benchmark families plus the
// instance index k, e.g. u_c_hihi.0.
type Class struct {
	Consistency Consistency
	TaskHet     Heterogeneity
	MachineHet  Heterogeneity
	Index       int
}

// Name renders the canonical instance name, e.g. "u_c_hihi.0".
func (c Class) Name() string {
	return fmt.Sprintf("u_%s_%s%s.%d", c.Consistency, c.TaskHet, c.MachineHet, c.Index)
}

// ParseClass parses names of the form u_x_yyzz.k.
func ParseClass(name string) (Class, error) {
	var cl Class
	base := name
	if i := strings.LastIndexByte(base, '.'); i >= 0 {
		idx, err := strconv.Atoi(base[i+1:])
		if err != nil {
			return cl, fmt.Errorf("etc: bad instance index in %q: %v", name, err)
		}
		cl.Index = idx
		base = base[:i]
	}
	parts := strings.Split(base, "_")
	if len(parts) != 3 || parts[0] != "u" || len(parts[2]) != 4 {
		return cl, fmt.Errorf("etc: malformed instance name %q (want u_x_yyzz.k)", name)
	}
	cons, err := ParseConsistency(parts[1])
	if err != nil {
		return cl, err
	}
	th, err := ParseHeterogeneity(parts[2][:2])
	if err != nil {
		return cl, err
	}
	mh, err := ParseHeterogeneity(parts[2][2:])
	if err != nil {
		return cl, err
	}
	cl.Consistency, cl.TaskHet, cl.MachineHet = cons, th, mh
	return cl, nil
}

// AllClasses returns the 12 instance families of the paper's benchmark
// (index 0), in the order Table 2 lists them grouped by consistency.
func AllClasses() []Class {
	var out []Class
	for _, cons := range []Consistency{Consistent, SemiConsistent, Inconsistent} {
		for _, th := range []Heterogeneity{High, High, Low, Low} {
			_ = th
		}
		for _, pair := range [][2]Heterogeneity{{High, High}, {High, Low}, {Low, High}, {Low, Low}} {
			out = append(out, Class{Consistency: cons, TaskHet: pair[0], MachineHet: pair[1]})
		}
	}
	return out
}

// maxMatrixEntries is the hard ceiling on tasks×machines accepted from
// external inputs (parsed files, sized instance names). It bounds the
// allocation a hostile header like "999999999 999999999" could trigger
// while leaving room far beyond the 4096×64 future-work benchmarks.
const maxMatrixEntries = 1 << 24

// checkDims validates externally supplied matrix dimensions: positive
// and small enough that tasks×machines cannot overflow or exhaust
// memory.
func checkDims(tasks, machines int) error {
	if tasks <= 0 || machines <= 0 {
		return fmt.Errorf("etc: non-positive dimensions %dx%d", tasks, machines)
	}
	if tasks > maxMatrixEntries/machines {
		return fmt.Errorf("etc: %dx%d matrix exceeds the %d-entry limit", tasks, machines, maxMatrixEntries)
	}
	return nil
}

// SizedName renders the sized instance-name form "u_x_yyzz.k@TxM" used
// by the instance cache and the scenario sweep to key one class at
// explicit dimensions. At the benchmark dimensions (or when either dim
// is zero) it renders the plain class name, so sized and classic names
// coincide for the paper's 512×16 suite.
func SizedName(cl Class, tasks, machines int) string {
	if tasks <= 0 {
		tasks = DefaultTasks
	}
	if machines <= 0 {
		machines = DefaultMachines
	}
	if tasks == DefaultTasks && machines == DefaultMachines {
		return cl.Name()
	}
	return fmt.Sprintf("%s@%dx%d", cl.Name(), tasks, machines)
}

// ParseSizedName parses "u_x_yyzz.k" or "u_x_yyzz.k@TxM". Zero
// dimensions are returned for the plain form (callers default them);
// explicit dimensions are validated against checkDims.
func ParseSizedName(name string) (cl Class, tasks, machines int, err error) {
	base := name
	if i := strings.IndexByte(name, '@'); i >= 0 {
		base = name[:i]
		dims := name[i+1:]
		x := strings.IndexByte(dims, 'x')
		if x < 0 {
			return cl, 0, 0, fmt.Errorf("etc: malformed size suffix in %q (want @TxM)", name)
		}
		if tasks, err = strconv.Atoi(dims[:x]); err != nil {
			return cl, 0, 0, fmt.Errorf("etc: bad task count in %q: %v", name, err)
		}
		if machines, err = strconv.Atoi(dims[x+1:]); err != nil {
			return cl, 0, 0, fmt.Errorf("etc: bad machine count in %q: %v", name, err)
		}
		if err = checkDims(tasks, machines); err != nil {
			return cl, 0, 0, err
		}
	}
	cl, err = ParseClass(base)
	if err != nil {
		return cl, 0, 0, err
	}
	return cl, tasks, machines, nil
}

// Instance is an immutable scheduling instance under the ETC model.
//
// The matrix is stored twice: Row holds ETC[t][m] in task-major order
// (Row[t*M+m]) and Col holds the transposed machine-major layout
// (Col[m*T+t]). The paper's evaluation loop walks tasks for a fixed
// machine, so the transposed layout is the hot one; both are retained so
// the cache-locality ablation benchmark can compare them.
type Instance struct {
	Name     string
	T        int // number of tasks
	M        int // number of machines
	Row      []float64
	Col      []float64
	Ready    []float64 // per-machine ready times (§2.2); zero by default
	ClassTag Class     // zero value when the instance was not generated
}

// ETC returns the expected time to compute task t on machine m using the
// transposed (cache-friendly) layout.
func (in *Instance) ETC(t, m int) float64 { return in.Col[m*in.T+t] }

// ETCRow returns the same value through the row-major layout; used by the
// layout ablation benchmark and by algorithms that sweep machines for a
// fixed task.
func (in *Instance) ETCRow(t, m int) float64 { return in.Row[t*in.M+m] }

// TaskCosts returns the costs of task t on every machine — contiguous
// in m over the row layout (Row[t*M : (t+1)*M]). Hot loops that sweep
// machines for a fixed task (move scoring, best-completion scans) must
// read through this slice instead of per-element ETC calls: the ETC
// accessor walks the transposed layout with stride T, which is one
// cache miss per machine on large instances, while this slice is one
// sequential sweep. The slice aliases the instance storage and must not
// be modified.
func (in *Instance) TaskCosts(t int) []float64 { return in.Row[t*in.M : (t+1)*in.M] }

// MachineCosts returns the costs of every task on machine m —
// contiguous in t over the transposed layout (Col[m*T : (m+1)*T]), the
// paper's §3.3 machine-major sweep. Hot loops that walk tasks for a
// fixed machine (completion-time sweeps, backlog estimates) read
// through this slice. The slice aliases the instance storage and must
// not be modified.
func (in *Instance) MachineCosts(m int) []float64 { return in.Col[m*in.T : (m+1)*in.T] }

// TaskBlock is the tile width, in tasks, of the blocked machine-major
// view: 1024 tasks keep one machine's cost block (8 KB) plus the same
// block of an assignment vector (8 KB) resident in L1 together with the
// per-machine completion-time lanes, so a blocked sweep re-reads the
// assignment block from cache across all M machine passes.
const TaskBlock = 1024

// MachineCostsBlock returns machine m's costs for tasks [lo, hi) — the
// blocked machine-major view for large T. Sweeping machines over one
// task block at a time (instead of each machine's full T-length column)
// keeps the block-shared state cache-resident across the M inner
// sweeps; see schedule's bulk-load and batch-evaluation kernels for the
// canonical loop shape. The slice aliases the instance storage and must
// not be modified.
func (in *Instance) MachineCostsBlock(m, lo, hi int) []float64 {
	return in.Col[m*in.T+lo : m*in.T+hi]
}

// MachineRow is MachineCosts under its historical name.
//
// Deprecated: use MachineCosts.
func (in *Instance) MachineRow(m int) []float64 { return in.MachineCosts(m) }

// TaskRow is TaskCosts under its historical name.
//
// Deprecated: use TaskCosts.
func (in *Instance) TaskRow(t int) []float64 { return in.TaskCosts(t) }

// Validate checks structural invariants: positive dimensions, matching
// buffer sizes, strictly positive finite entries, mutually transposed
// layouts and non-negative ready times.
func (in *Instance) Validate() error {
	if in.T <= 0 || in.M <= 0 {
		return fmt.Errorf("etc: non-positive dimensions %dx%d", in.T, in.M)
	}
	if len(in.Row) != in.T*in.M || len(in.Col) != in.T*in.M {
		return fmt.Errorf("etc: buffer sizes row=%d col=%d, want %d", len(in.Row), len(in.Col), in.T*in.M)
	}
	if len(in.Ready) != in.M {
		return fmt.Errorf("etc: ready times length %d, want %d", len(in.Ready), in.M)
	}
	for t := 0; t < in.T; t++ {
		for m := 0; m < in.M; m++ {
			v := in.Row[t*in.M+m]
			if !(v > 0) || math.IsInf(v, 0) {
				return fmt.Errorf("etc: ETC[%d][%d] = %v is not a positive finite value", t, m, v)
			}
			if v != in.Col[m*in.T+t] {
				return fmt.Errorf("etc: layouts disagree at (%d,%d): row=%v col=%v", t, m, v, in.Col[m*in.T+t])
			}
		}
	}
	for m, r := range in.Ready {
		if r < 0 || math.IsNaN(r) {
			return fmt.Errorf("etc: ready[%d] = %v negative or NaN", m, r)
		}
	}
	return nil
}

// New builds an instance from a row-major matrix; it derives the
// transposed layout and zero ready times. The row slice is copied.
func New(name string, tasks, machines int, row []float64) (*Instance, error) {
	if err := checkDims(tasks, machines); err != nil {
		return nil, err
	}
	if len(row) != tasks*machines {
		return nil, fmt.Errorf("etc: matrix has %d entries, want %d", len(row), tasks*machines)
	}
	in := &Instance{
		Name:  name,
		T:     tasks,
		M:     machines,
		Row:   append([]float64(nil), row...),
		Col:   make([]float64, tasks*machines),
		Ready: make([]float64, machines),
	}
	in.rebuildCol()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

func (in *Instance) rebuildCol() {
	for t := 0; t < in.T; t++ {
		for m := 0; m < in.M; m++ {
			in.Col[m*in.T+t] = in.Row[t*in.M+m]
		}
	}
}

// WithReady returns a shallow copy of the instance carrying the given
// per-machine ready times (the matrix buffers are shared).
func (in *Instance) WithReady(ready []float64) (*Instance, error) {
	if len(ready) != in.M {
		return nil, fmt.Errorf("etc: %d ready times for %d machines", len(ready), in.M)
	}
	cp := *in
	cp.Ready = append([]float64(nil), ready...)
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return &cp, nil
}

// MinMaxETC returns the smallest and largest matrix entries; these are the
// p_j bounds the paper quotes in Blazewicz notation.
func (in *Instance) MinMaxETC() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range in.Row {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Blazewicz renders the α|β|γ summary used in §4.1, e.g.
// "Q16|1.44 ≤ pj ≤ 975.30|Cmax" for consistent matrices (uniformly
// ordered machines) and R16|...|Cmax for unrelated machines. The α field
// is derived from the matrix itself, so imported files classify
// correctly regardless of their name.
func (in *Instance) Blazewicz() string {
	alpha := "R"
	if in.isConsistent() {
		alpha = "Q"
	}
	lo, hi := in.MinMaxETC()
	return fmt.Sprintf("%s%d|%.2f ≤ pj ≤ %.2f|Cmax", alpha, in.M, lo, hi)
}

// isConsistent reports whether every machine pair is ordered identically
// across all tasks (the Braun consistency property), with early exit on
// the first contradiction. Each pair is compared through the two
// machines' contiguous cost columns, so the inner loop is two
// sequential sweeps instead of strided per-element reads.
func (in *Instance) isConsistent() bool {
	for a := 0; a < in.M; a++ {
		ca := in.MachineCosts(a)
		for b := a + 1; b < in.M; b++ {
			cb := in.MachineCosts(b)
			aFaster, bFaster := false, false
			for t, va := range ca {
				vb := cb[t]
				if va < vb {
					aFaster = true
				} else if va > vb {
					bFaster = true
				}
				if aFaster && bFaster {
					return false
				}
			}
		}
	}
	return true
}

// GenSpec parameterizes the Braun-style generator.
type GenSpec struct {
	Class    Class
	Tasks    int
	Machines int
	Seed     uint64
}

// DefaultTasks and DefaultMachines are the benchmark dimensions used
// throughout the paper (512 tasks on 16 machines).
const (
	DefaultTasks    = 512
	DefaultMachines = 16
)

// Generate builds a synthetic instance of the requested class with the
// classic range-based method: a baseline vector b[t] ~ U(1, φ_b) gives
// each task a nominal size, and every row is ETC[t][m] = b[t] · U(1, φ_r).
// Consistency is then imposed by row sorting (consistent: all columns;
// semi-consistent: even-indexed columns only).
//
// This substitutes for the original u_x_yyzz.k data files, which are not
// redistributable here; see DESIGN.md §2 for the equivalence argument.
func Generate(spec GenSpec) (*Instance, error) {
	if spec.Tasks <= 0 {
		spec.Tasks = DefaultTasks
	}
	if spec.Machines <= 0 {
		spec.Machines = DefaultMachines
	}
	if err := checkDims(spec.Tasks, spec.Machines); err != nil {
		return nil, err
	}
	phiB := float64(TaskHeterogeneityLow)
	if spec.Class.TaskHet == High {
		phiB = TaskHeterogeneityHigh
	}
	phiR := float64(MachHeterogeneityLow)
	if spec.Class.MachineHet == High {
		phiR = MachHeterogeneityHigh
	}
	r := rng.New(spec.Seed)
	tn, mn := spec.Tasks, spec.Machines
	row := make([]float64, tn*mn)
	for t := 0; t < tn; t++ {
		base := r.Float64Range(1, phiB)
		for m := 0; m < mn; m++ {
			row[t*mn+m] = base * r.Float64Range(1, phiR)
		}
	}
	switch spec.Class.Consistency {
	case Consistent:
		for t := 0; t < tn; t++ {
			sort.Float64s(row[t*mn : (t+1)*mn])
		}
	case SemiConsistent:
		// Sort the even-indexed columns of every row among themselves,
		// leaving odd columns untouched: the even columns form the
		// embedded consistent sub-matrix.
		tmp := make([]float64, 0, (mn+1)/2)
		for t := 0; t < tn; t++ {
			tmp = tmp[:0]
			for m := 0; m < mn; m += 2 {
				tmp = append(tmp, row[t*mn+m])
			}
			sort.Float64s(tmp)
			for i, m := 0, 0; m < mn; i, m = i+1, m+2 {
				row[t*mn+m] = tmp[i]
			}
		}
	case Inconsistent:
		// leave as drawn
	default:
		return nil, fmt.Errorf("etc: unknown consistency %d", spec.Class.Consistency)
	}
	in, err := New(spec.Class.Name(), tn, mn, row)
	if err != nil {
		return nil, err
	}
	in.ClassTag = spec.Class
	return in, nil
}

// GenerateByName is a convenience wrapper: it parses a u_x_yyzz.k name
// and generates the corresponding instance at benchmark dimensions. The
// class (including the index k) determines the seed, so every call with
// the same name yields the same instance — our stand-in for the fixed
// benchmark files.
//
// A "@TxM" suffix ("u_c_hihi.0@128x8") materializes the class at
// explicit dimensions instead of the benchmark's 512×16; the seed still
// derives from the class alone, so one class scales across sizes as the
// same statistical family. The instance keeps the sized name, so caches
// keyed on Name distinguish sizes.
func GenerateByName(name string) (*Instance, error) {
	cl, tasks, machines, err := ParseSizedName(name)
	if err != nil {
		return nil, err
	}
	in, err := Generate(GenSpec{Class: cl, Tasks: tasks, Machines: machines, Seed: classSeed(cl)})
	if err != nil {
		return nil, err
	}
	in.Name = name
	return in, nil
}

// Benchmark returns the full 12-instance suite the paper evaluates
// (index 0 of every class), generated deterministically.
func Benchmark() ([]*Instance, error) {
	classes := AllClasses()
	out := make([]*Instance, 0, len(classes))
	for _, cl := range classes {
		in, err := Generate(GenSpec{Class: cl, Seed: classSeed(cl)})
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

// ClassSeed derives the stable per-class generation seed used by
// GenerateByName and Benchmark, so external stores (the binary
// instance repository) can record the provenance of a pre-generated
// matrix.
func ClassSeed(cl Class) uint64 { return classSeed(cl) }

// classSeed derives a stable seed per class so the synthetic benchmark is
// reproducible across runs and machines.
func classSeed(cl Class) uint64 {
	return 0xE7C0_0000_0000_0000 |
		uint64(cl.Consistency)<<16 |
		uint64(cl.TaskHet)<<12 |
		uint64(cl.MachineHet)<<8 |
		uint64(cl.Index&0xFF)
}

// Write serializes the instance in the classic HCSP text layout: the
// first line holds "tasks machines", followed by one ETC value per line
// in task-major order.
func (in *Instance) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", in.T, in.M); err != nil {
		return err
	}
	for _, v := range in.Row {
		if _, err := fmt.Fprintf(bw, "%g\n", v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write. It also accepts the
// header-less classic files when dims are supplied via ReadSized.
func Read(name string, r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("etc: empty input")
	}
	var tn, mn int
	if _, err := fmt.Sscanf(strings.TrimSpace(sc.Text()), "%d %d", &tn, &mn); err != nil {
		return nil, fmt.Errorf("etc: bad header %q: %v", sc.Text(), err)
	}
	return readBody(name, tn, mn, sc)
}

// ReadSized parses a header-less value stream of tasks×machines entries,
// the layout of the original Braun distribution files.
func ReadSized(name string, tasks, machines int, r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	return readBody(name, tasks, machines, sc)
}

func readBody(name string, tn, mn int, sc *bufio.Scanner) (*Instance, error) {
	if err := checkDims(tn, mn); err != nil {
		return nil, err
	}
	// Preallocate conservatively: the header's claim is untrusted until
	// the values actually arrive, so a hostile "16777216 1" header must
	// not reserve 128 MB up front.
	capHint := tn * mn
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	row := make([]float64, 0, capHint)
	for sc.Scan() {
		for _, f := range strings.Fields(sc.Text()) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("etc: bad value %q: %v", f, err)
			}
			row = append(row, v)
			// Fail fast once the body exceeds the header's claim: a
			// hostile stream must not grow the buffer past the declared
			// matrix.
			if len(row) > tn*mn {
				return nil, fmt.Errorf("etc: more than the declared %d values", tn*mn)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(row) != tn*mn {
		return nil, fmt.Errorf("etc: read %d values, want %d", len(row), tn*mn)
	}
	in, err := New(name, tn, mn, row)
	if err != nil {
		return nil, err
	}
	if cl, perr := ParseClass(name); perr == nil {
		in.ClassTag = cl
	}
	return in, nil
}
