// Package baselines reimplements the two literature comparators of
// Table 2, since their published numbers cannot be copied onto our
// synthetic instances:
//
//   - the Struggle GA of Xhafa (2006): a steady-state, panmictic GA whose
//     offspring replaces the most *similar* individual in the population
//     (if better), preserving diversity without spatial structure;
//   - cMA+LTH of Xhafa, Alba, Dorronsoro & Duran (2008): a synchronous
//     cellular memetic algorithm whose offspring pass through a short
//     local tabu hook.
//
// Both are tuned lightly and honestly: the goal is a faithful algorithmic
// shape, so Table 2's "who wins where" comparisons carry over.
package baselines

import (
	"context"
	"fmt"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/etc"
	"gridsched/internal/heuristics"
	"gridsched/internal/operators"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
	"gridsched/internal/solver"
	"gridsched/internal/tabu"
	"gridsched/internal/topology"
)

// StruggleConfig parameterizes the Struggle GA.
type StruggleConfig struct {
	// PopSize is the panmictic population size (default 64, the scale
	// used in Xhafa's study).
	PopSize int
	// TournamentK is the selection tournament size (default 3).
	TournamentK int
	// CrossProb, MutProb are the operator rates (defaults 0.8 / 0.4 —
	// steady-state GAs run lower mutation pressure than the cellular
	// p_mut=1 design).
	CrossProb, MutProb float64
	// Crossover and Mutation default to two-point and move.
	Crossover operators.Crossover
	Mutation  operators.Mutation
	// SeedMinMin places one Min-min individual in the initial
	// population, mirroring the PA-CGA setup so comparisons are fair.
	SeedMinMin bool
	// Seed drives all randomness.
	Seed uint64
	// Stop conditions: whichever fires first.
	MaxEvaluations int64
	MaxDuration    time.Duration
}

func (c StruggleConfig) withDefaults() StruggleConfig {
	if c.PopSize == 0 {
		c.PopSize = 64
	}
	if c.TournamentK == 0 {
		c.TournamentK = 3
	}
	if c.CrossProb == 0 {
		c.CrossProb = 0.8
	}
	if c.MutProb == 0 {
		c.MutProb = 0.4
	}
	if c.Crossover == nil {
		c.Crossover = operators.TwoPoint{}
	}
	if c.Mutation == nil {
		c.Mutation = operators.Move{}
	}
	return c
}

// Struggle runs the Struggle GA and returns a core.Result so all
// algorithms share one result shape in the harness.
func Struggle(inst *etc.Instance, cfg StruggleConfig) (*core.Result, error) {
	return StruggleContext(context.Background(), inst, cfg)
}

// StruggleContext is Struggle with context cancellation, polled at the
// shared engine's coarse steady-state granularity.
func StruggleContext(ctx context.Context, inst *etc.Instance, cfg StruggleConfig) (*core.Result, error) {
	cfg = cfg.withDefaults()
	if cfg.PopSize < 2 {
		return nil, fmt.Errorf("baselines: struggle population %d too small", cfg.PopSize)
	}
	if cfg.MaxEvaluations <= 0 && cfg.MaxDuration <= 0 {
		return nil, fmt.Errorf("baselines: struggle needs a stop condition")
	}

	eng := solver.NewEngine(ctx, solver.Budget{
		MaxDuration:    cfg.MaxDuration,
		MaxEvaluations: cfg.MaxEvaluations,
	})
	r := rng.New(cfg.Seed)
	pop := make([]*schedule.Schedule, cfg.PopSize)
	fit := make([]float64, cfg.PopSize)
	for i := range pop {
		if i == 0 && cfg.SeedMinMin {
			pop[i] = heuristics.MinMin(inst)
		} else {
			pop[i] = schedule.NewRandom(inst, r)
		}
		fit[i] = pop[i].Makespan()
	}
	eng.AddEvals(int64(cfg.PopSize))
	observeInitialBest(eng, fit)

	child := schedule.New(inst)
	tournament := func() int {
		best := r.Intn(cfg.PopSize)
		for k := 1; k < cfg.TournamentK; k++ {
			c := r.Intn(cfg.PopSize)
			if fit[c] < fit[best] {
				best = c
			}
		}
		return best
	}

	// Steady state: one offspring per step; the shared engine checks
	// the evaluation bound every step and polls the deadline coarsely.
	var steps int64
	for step := int64(0); ; step++ {
		if eng.StopStep(step) {
			break
		}
		a, b := tournament(), tournament()
		if r.Bool(cfg.CrossProb) {
			cfg.Crossover.Cross(child, pop[a], pop[b], r)
		} else {
			child.CopyFrom(pop[a])
		}
		if r.Bool(cfg.MutProb) {
			cfg.Mutation.Mutate(child, r)
		}
		cf := child.Makespan()
		eng.AddEvals(1)
		eng.Observe(cf)
		steps++

		// Struggle replacement: the offspring competes with the most
		// similar individual (minimum Hamming distance) and replaces it
		// only if better.
		closest, closestDist := 0, child.HammingDistance(pop[0])
		for i := 1; i < cfg.PopSize; i++ {
			if d := child.HammingDistance(pop[i]); d < closestDist {
				closest, closestDist = i, d
			}
		}
		if cf < fit[closest] {
			pop[closest].CopyFrom(child)
			fit[closest] = cf
		}
	}

	bestIdx := 0
	for i := 1; i < cfg.PopSize; i++ {
		if fit[i] < fit[bestIdx] {
			bestIdx = i
		}
	}
	eng.Finish(fit[bestIdx])
	return &core.Result{
		Best:            pop[bestIdx].Clone(),
		BestFitness:     fit[bestIdx],
		Evaluations:     eng.Evals(),
		Generations:     steps,
		PerThread:       []int64{steps},
		Duration:        eng.Elapsed(),
		EffectiveBudget: eng.EffectiveBudget(),
	}, nil
}

// observeInitialBest seeds an attached observer's convergence trace
// with the best fitness of a freshly evaluated population, so the first
// steady-state improvement is measured against the starting point. The
// scan is gated on observation: an unobserved run pays nothing.
func observeInitialBest(eng *solver.Engine, fit []float64) {
	if !eng.Observing() || len(fit) == 0 {
		return
	}
	best := fit[0]
	for _, f := range fit[1:] {
		if f < best {
			best = f
		}
	}
	eng.Observe(best)
}

// CMALTHConfig parameterizes the cellular memetic baseline.
type CMALTHConfig struct {
	// GridW, GridH give the cellular population (default 16×16 to match
	// the paper's population size).
	GridW, GridH int
	// TabuIters bounds the local tabu hook per offspring (default 20).
	TabuIters int
	// SeedMinMin seeds one Min-min individual (the cMA study does).
	SeedMinMin bool
	// Seed drives all randomness.
	Seed uint64
	// Stop conditions: whichever fires first.
	MaxEvaluations int64
	MaxDuration    time.Duration
}

// CMALTH runs the cellular memetic algorithm with local tabu hook: the
// synchronous cellular engine configured per the published cMA study —
// binary tournament selection, p_c = 0.8, p_m = 0.4 — with a short,
// narrow tabu hop in place of H2LL. (Configuring it with the PA-CGA's
// own p=1.0 operator rates and a wide tabu makes the baseline stronger
// than the published algorithm; these defaults keep the comparison
// faithful.)
func CMALTH(inst *etc.Instance, cfg CMALTHConfig) (*core.Result, error) {
	return CMALTHContext(context.Background(), inst, cfg)
}

// CMALTHContext is CMALTH with context cancellation, inherited from the
// synchronous cellular engine underneath.
func CMALTHContext(ctx context.Context, inst *etc.Instance, cfg CMALTHConfig) (*core.Result, error) {
	p := core.DefaultParams()
	if cfg.GridW > 0 {
		p.GridW = cfg.GridW
	}
	if cfg.GridH > 0 {
		p.GridH = cfg.GridH
	}
	iters := cfg.TabuIters
	if iters <= 0 {
		iters = 10
	}
	p.Local = tabu.Search{MaxIters: iters, CandidateTasks: 4}
	p.Neighborhood = topology.L5
	p.Selector = operators.BinaryTournament{}
	p.CrossProb = 0.8
	p.MutProb = 0.4
	p.Seed = cfg.Seed
	p.DisableMinMinSeed = !cfg.SeedMinMin
	p.MaxEvaluations = cfg.MaxEvaluations
	p.MaxDuration = cfg.MaxDuration
	return core.RunSyncContext(ctx, inst, p)
}
