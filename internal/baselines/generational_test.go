package baselines

import (
	"testing"

	"gridsched/internal/heuristics"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

func TestGenerationalBasic(t *testing.T) {
	in := testInstance(t, 20)
	res, err := Generational(in, GenerationalConfig{Seed: 1, MaxGenerations: 10, PopSize: 64, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Complete() {
		t.Fatal("incomplete best")
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Generations != 10 {
		t.Fatalf("generations %d, want 10", res.Generations)
	}
	// 64 initial + 10 * (64-2 elite) breedings.
	if want := int64(64 + 10*62); res.Evaluations != want {
		t.Fatalf("evaluations %d, want %d", res.Evaluations, want)
	}
}

func TestGenerationalDeterministic(t *testing.T) {
	in := testInstance(t, 21)
	cfg := GenerationalConfig{Seed: 3, MaxGenerations: 5, PopSize: 32}
	a, err := Generational(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generational(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestFitness != b.BestFitness || a.Evaluations != b.Evaluations {
		t.Fatal("generational runs with identical seed differ")
	}
}

func TestGenerationalElitismMonotoneBest(t *testing.T) {
	// With elitism the best fitness can never worsen across generations.
	in := testInstance(t, 22)
	short, err := Generational(in, GenerationalConfig{Seed: 5, MaxGenerations: 2, PopSize: 64, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Generational(in, GenerationalConfig{Seed: 5, MaxGenerations: 30, PopSize: 64, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	if long.BestFitness > short.BestFitness {
		t.Fatalf("best worsened with more generations: %v -> %v", short.BestFitness, long.BestFitness)
	}
}

func TestGenerationalKeepsMinMinSeedThroughElitism(t *testing.T) {
	in := testInstance(t, 23)
	mm := heuristics.MinMin(in).Makespan()
	res, err := Generational(in, GenerationalConfig{Seed: 7, MaxGenerations: 5, PopSize: 32, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > mm {
		t.Fatalf("best %v worse than the elitism-protected Min-min seed %v", res.BestFitness, mm)
	}
}

func TestGenerationalValidation(t *testing.T) {
	in := testInstance(t, 24)
	if _, err := Generational(in, GenerationalConfig{Seed: 1}); err == nil {
		t.Fatal("accepted missing stop condition")
	}
	if _, err := Generational(in, GenerationalConfig{Seed: 1, PopSize: 1, MaxGenerations: 1}); err == nil {
		t.Fatal("accepted tiny population")
	}
	if _, err := Generational(in, GenerationalConfig{Seed: 1, PopSize: 4, Elite: 4, MaxGenerations: 1}); err == nil {
		t.Fatal("accepted elite >= population")
	}
}

func TestGenerationalEvaluationBudget(t *testing.T) {
	in := testInstance(t, 25)
	res, err := Generational(in, GenerationalConfig{Seed: 9, MaxEvaluations: 500, PopSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > 500+64 {
		t.Fatalf("evaluations %d overshot the 500 budget", res.Evaluations)
	}
}

func TestGenerationalWithLocalSearch(t *testing.T) {
	in := testInstance(t, 26)
	plain, err := Generational(in, GenerationalConfig{Seed: 11, MaxEvaluations: 3000, PopSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	memetic, err := Generational(in, GenerationalConfig{Seed: 11, MaxEvaluations: 3000, PopSize: 64, LSIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if memetic.BestFitness >= plain.BestFitness {
		t.Fatalf("H2LL-boosted GA (%v) not better than plain (%v) at equal evals", memetic.BestFitness, plain.BestFitness)
	}
}

func TestGenerationalDiversityRecordingDecreases(t *testing.T) {
	in := testInstance(t, 27)
	res, err := Generational(in, GenerationalConfig{Seed: 13, MaxGenerations: 25, PopSize: 64, RecordDiversity: true, RecordConvergence: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diversity) != 25 || len(res.Convergence) != 25 {
		t.Fatalf("series lengths %d/%d", len(res.Diversity), len(res.Convergence))
	}
	if res.Diversity[24] >= res.Diversity[0] {
		t.Fatalf("diversity did not decrease: %v -> %v", res.Diversity[0], res.Diversity[24])
	}
}

func TestPopulationDiversityBounds(t *testing.T) {
	in := testInstance(t, 28)
	r := rng.New(1)
	pop := make([]*schedule.Schedule, 32)
	for i := range pop {
		pop[i] = schedule.NewRandom(in, r)
	}
	d := PopulationDiversity(pop)
	if d <= 0.5 || d >= 1 {
		t.Fatalf("random population diversity %v", d)
	}
	for i := 1; i < len(pop); i++ {
		pop[i].CopyFrom(pop[0])
	}
	if got := PopulationDiversity(pop); got != 0 {
		t.Fatalf("identical population diversity %v", got)
	}
	if PopulationDiversity(nil) != 0 {
		t.Fatal("empty population diversity nonzero")
	}
}
