package baselines

import (
	"context"
	"fmt"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/etc"
	"gridsched/internal/heuristics"
	"gridsched/internal/operators"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
	"gridsched/internal/solver"
)

// GenerationalConfig parameterizes the panmictic generational GA — the
// "regular GA" that cellular GAs are claimed to outperform (§1, [1]).
// Everyone can mate with everyone; each generation fully replaces the
// population except for a small elite.
type GenerationalConfig struct {
	// PopSize is the population size (default 256 to match the cellular
	// population).
	PopSize int
	// Elite is how many best individuals survive unconditionally
	// (default 2).
	Elite int
	// TournamentK is the selection tournament size (default 2).
	TournamentK int
	// CrossProb and MutProb are the operator rates (defaults 0.9 / 0.2,
	// conventional generational settings).
	CrossProb, MutProb float64
	// Crossover and Mutation default to two-point and move.
	Crossover operators.Crossover
	Mutation  operators.Mutation
	// LSIters applies H2LL to each offspring when positive (0 default:
	// the plain GA the survey compares against has no local search).
	LSIters int
	// SeedMinMin seeds one Min-min individual.
	SeedMinMin bool
	// Seed drives all randomness.
	Seed uint64
	// Stop conditions: whichever fires first.
	MaxEvaluations int64
	MaxGenerations int64
	MaxDuration    time.Duration
	// RecordDiversity samples the population's mean per-task Simpson
	// diversity each generation (for the diversity study comparing
	// panmictic vs cellular populations).
	RecordDiversity bool
	// RecordConvergence samples the population mean makespan each
	// generation.
	RecordConvergence bool
}

func (c GenerationalConfig) withDefaults() GenerationalConfig {
	if c.PopSize == 0 {
		c.PopSize = 256
	}
	if c.Elite == 0 {
		c.Elite = 2
	}
	if c.TournamentK == 0 {
		c.TournamentK = 2
	}
	if c.CrossProb == 0 {
		c.CrossProb = 0.9
	}
	if c.MutProb == 0 {
		c.MutProb = 0.2
	}
	if c.Crossover == nil {
		c.Crossover = operators.TwoPoint{}
	}
	if c.Mutation == nil {
		c.Mutation = operators.Move{}
	}
	return c
}

// Generational runs the panmictic generational GA.
func Generational(inst *etc.Instance, cfg GenerationalConfig) (*core.Result, error) {
	return GenerationalContext(context.Background(), inst, cfg)
}

// GenerationalContext is Generational with context cancellation,
// checked at generation granularity like the wall-clock deadline.
func GenerationalContext(ctx context.Context, inst *etc.Instance, cfg GenerationalConfig) (*core.Result, error) {
	cfg = cfg.withDefaults()
	if cfg.PopSize < 2 {
		return nil, fmt.Errorf("baselines: generational population %d too small", cfg.PopSize)
	}
	if cfg.Elite >= cfg.PopSize {
		return nil, fmt.Errorf("baselines: elite %d ≥ population %d", cfg.Elite, cfg.PopSize)
	}
	if cfg.MaxEvaluations <= 0 && cfg.MaxDuration <= 0 && cfg.MaxGenerations <= 0 {
		return nil, fmt.Errorf("baselines: generational needs a stop condition")
	}

	eng := solver.NewEngine(ctx, solver.Budget{
		MaxDuration:    cfg.MaxDuration,
		MaxEvaluations: cfg.MaxEvaluations,
		MaxGenerations: cfg.MaxGenerations,
	})
	r := rng.New(cfg.Seed)
	pop := make([]*schedule.Schedule, cfg.PopSize)
	fit := make([]float64, cfg.PopSize)
	for i := range pop {
		if i == 0 && cfg.SeedMinMin {
			pop[i] = heuristics.MinMin(inst)
		} else {
			pop[i] = schedule.NewRandom(inst, r)
		}
		fit[i] = pop[i].Makespan()
	}
	eng.AddEvals(int64(cfg.PopSize))
	observeInitialBest(eng, fit)

	next := make([]*schedule.Schedule, cfg.PopSize)
	nextFit := make([]float64, cfg.PopSize)
	for i := range next {
		next[i] = schedule.New(inst)
	}
	ls := operators.H2LL{Iterations: cfg.LSIters}

	var gens int64
	var conv, div []float64
	tournament := func() int {
		best := r.Intn(cfg.PopSize)
		for k := 1; k < cfg.TournamentK; k++ {
			c := r.Intn(cfg.PopSize)
			if fit[c] < fit[best] {
				best = c
			}
		}
		return best
	}
	bestIdx := func() int {
		b := 0
		for i := 1; i < cfg.PopSize; i++ {
			if fit[i] < fit[b] {
				b = i
			}
		}
		return b
	}

loop:
	for {
		if eng.StopSweep(gens) {
			break
		}
		// Elitism: copy the Elite best individuals unchanged. A single
		// pass partial selection suffices for small Elite.
		copied := map[int]bool{}
		for e := 0; e < cfg.Elite; e++ {
			b := -1
			for i := 0; i < cfg.PopSize; i++ {
				if copied[i] {
					continue
				}
				if b < 0 || fit[i] < fit[b] {
					b = i
				}
			}
			copied[b] = true
			next[e].CopyFrom(pop[b])
			nextFit[e] = fit[b]
		}
		for slot := cfg.Elite; slot < cfg.PopSize; slot++ {
			if eng.EvalsExhausted() {
				// Abandon the partial generation; pop is still intact.
				break loop
			}
			a, b := tournament(), tournament()
			child := next[slot]
			if r.Bool(cfg.CrossProb) {
				cfg.Crossover.Cross(child, pop[a], pop[b], r)
			} else {
				child.CopyFrom(pop[a])
			}
			if r.Bool(cfg.MutProb) {
				cfg.Mutation.Mutate(child, r)
			}
			if cfg.LSIters > 0 {
				ls.Apply(child, r)
			}
			nextFit[slot] = child.Makespan()
			eng.AddEvals(1)
			eng.Observe(nextFit[slot])
		}
		pop, next = next, pop
		fit, nextFit = nextFit, fit
		gens++
		if cfg.RecordConvergence {
			sum := 0.0
			for _, f := range fit {
				sum += f
			}
			conv = append(conv, sum/float64(cfg.PopSize))
		}
		if cfg.RecordDiversity {
			div = append(div, PopulationDiversity(pop))
		}
	}

	b := bestIdx()
	eng.Finish(fit[b])
	return &core.Result{
		Best:            pop[b].Clone(),
		BestFitness:     fit[b],
		Evaluations:     eng.Evals(),
		Generations:     gens,
		PerThread:       []int64{gens},
		Duration:        eng.Elapsed(),
		EffectiveBudget: eng.EffectiveBudget(),
		Convergence:     conv,
		Diversity:       div,
	}, nil
}

// PopulationDiversity computes the mean per-task Simpson diversity
// (1 − Σ p_m²) of an arbitrary schedule population — the same metric the
// core engine records, exposed for external populations.
func PopulationDiversity(pop []*schedule.Schedule) float64 {
	if len(pop) == 0 {
		return 0
	}
	tasks := len(pop[0].S)
	machines := len(pop[0].CT)
	counts := make([]int, tasks*machines)
	for _, s := range pop {
		for t, m := range s.S {
			if m >= 0 {
				counts[t*machines+m]++
			}
		}
	}
	inv := 1 / float64(len(pop))
	total := 0.0
	for t := 0; t < tasks; t++ {
		sumSq := 0.0
		for _, c := range counts[t*machines : (t+1)*machines] {
			f := float64(c) * inv
			sumSq += f * f
		}
		total += 1 - sumSq
	}
	return total / float64(tasks)
}
