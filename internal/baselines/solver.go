package baselines

import (
	"context"

	"gridsched/internal/etc"
	"gridsched/internal/solver"
)

// The baseline comparators behind the unified solver interface. Each
// adapter carries a default configuration mirroring the Table 2 setup
// (Min-min seed, the published operator rates); the Budget passed to
// Solve overwrites the config's stop conditions.

// StruggleSolver adapts the Struggle GA.
type StruggleSolver struct {
	Config StruggleConfig
}

// Name implements solver.Solver.
func (s StruggleSolver) Name() string { return "struggle" }

// Describe implements solver.Solver.
func (s StruggleSolver) Describe() string {
	return "Struggle GA of Xhafa (2006): steady-state, replaces the most similar individual"
}

// WithSeed implements solver.Seeder.
func (s StruggleSolver) WithSeed(seed uint64) solver.Solver {
	s.Config.Seed = seed
	return s
}

// Reproducible implements solver.Reproducible: a single-threaded
// steady-state loop.
func (s StruggleSolver) Reproducible() bool { return true }

// Solve implements solver.Solver. MaxGenerations is not meaningful for
// a steady-state GA and is ignored; at least one of MaxDuration and
// MaxEvaluations must be set.
func (s StruggleSolver) Solve(ctx context.Context, inst *etc.Instance, b solver.Budget) (*solver.Result, error) {
	cfg := s.Config
	cfg.MaxDuration = b.MaxDuration
	cfg.MaxEvaluations = b.MaxEvaluations
	return StruggleContext(ctx, inst, cfg)
}

// CMALTHSolver adapts the cellular memetic algorithm with local tabu
// hook.
type CMALTHSolver struct {
	Config CMALTHConfig
}

// Name implements solver.Solver.
func (s CMALTHSolver) Name() string { return "cma-lth" }

// Describe implements solver.Solver.
func (s CMALTHSolver) Describe() string {
	return "cMA+LTH of Xhafa et al. (2008): synchronous cellular memetic GA with a tabu hook"
}

// WithSeed implements solver.Seeder.
func (s CMALTHSolver) WithSeed(seed uint64) solver.Solver {
	s.Config.Seed = seed
	return s
}

// Reproducible implements solver.Reproducible: the synchronous cellular
// memetic loop runs one thread.
func (s CMALTHSolver) Reproducible() bool { return true }

// Solve implements solver.Solver. MaxGenerations is ignored (the cMA
// config exposes wall-clock and evaluation bounds).
func (s CMALTHSolver) Solve(ctx context.Context, inst *etc.Instance, b solver.Budget) (*solver.Result, error) {
	cfg := s.Config
	cfg.MaxDuration = b.MaxDuration
	cfg.MaxEvaluations = b.MaxEvaluations
	return CMALTHContext(ctx, inst, cfg)
}

// GenerationalSolver adapts the panmictic generational GA.
type GenerationalSolver struct {
	Config GenerationalConfig
}

// Name implements solver.Solver.
func (s GenerationalSolver) Name() string { return "generational" }

// Describe implements solver.Solver.
func (s GenerationalSolver) Describe() string {
	return "panmictic generational GA with elitism (the 'regular GA' of the cGA literature)"
}

// WithSeed implements solver.Seeder.
func (s GenerationalSolver) WithSeed(seed uint64) solver.Solver {
	s.Config.Seed = seed
	return s
}

// Reproducible implements solver.Reproducible: one thread, one stream.
func (s GenerationalSolver) Reproducible() bool { return true }

// Solve implements solver.Solver.
func (s GenerationalSolver) Solve(ctx context.Context, inst *etc.Instance, b solver.Budget) (*solver.Result, error) {
	cfg := s.Config
	cfg.MaxDuration = b.MaxDuration
	cfg.MaxEvaluations = b.MaxEvaluations
	cfg.MaxGenerations = b.MaxGenerations
	return GenerationalContext(ctx, inst, cfg)
}

func init() {
	solver.Register(StruggleSolver{Config: StruggleConfig{Seed: 1, SeedMinMin: true}})
	solver.Register(CMALTHSolver{Config: CMALTHConfig{Seed: 1, SeedMinMin: true}})
	solver.Register(GenerationalSolver{Config: GenerationalConfig{Seed: 1, SeedMinMin: true}})
}
