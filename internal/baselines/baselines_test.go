package baselines

import (
	"testing"

	"gridsched/internal/etc"
	"gridsched/internal/heuristics"
)

func testInstance(t testing.TB, seed uint64) *etc.Instance {
	t.Helper()
	in, err := etc.Generate(etc.GenSpec{
		Class: etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High},
		Tasks: 128, Machines: 16, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestStruggleBasic(t *testing.T) {
	in := testInstance(t, 1)
	res, err := Struggle(in, StruggleConfig{Seed: 1, MaxEvaluations: 3000, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Complete() {
		t.Fatal("incomplete best schedule")
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Best.Makespan() != res.BestFitness {
		t.Fatal("fitness/schedule mismatch")
	}
	if res.Evaluations < 3000 {
		t.Fatalf("evaluations %d below budget", res.Evaluations)
	}
}

func TestStruggleDeterministic(t *testing.T) {
	in := testInstance(t, 2)
	cfg := StruggleConfig{Seed: 9, MaxEvaluations: 2000}
	a, err := Struggle(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Struggle(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestFitness != b.BestFitness || a.Evaluations != b.Evaluations {
		t.Fatal("struggle runs with identical seed differ")
	}
}

func TestStruggleImprovesOverRandomInit(t *testing.T) {
	in := testInstance(t, 3)
	short, err := Struggle(in, StruggleConfig{Seed: 5, MaxEvaluations: 70})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Struggle(in, StruggleConfig{Seed: 5, MaxEvaluations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if long.BestFitness >= short.BestFitness {
		t.Fatalf("20000 evals (%v) no better than 70 (%v)", long.BestFitness, short.BestFitness)
	}
}

func TestStruggleValidation(t *testing.T) {
	in := testInstance(t, 4)
	if _, err := Struggle(in, StruggleConfig{Seed: 1}); err == nil {
		t.Fatal("accepted missing stop condition")
	}
	if _, err := Struggle(in, StruggleConfig{Seed: 1, PopSize: 1, MaxEvaluations: 10}); err == nil {
		t.Fatal("accepted population of one")
	}
}

func TestStruggleWithMinMinSeedAtLeastMinMin(t *testing.T) {
	in := testInstance(t, 5)
	mm := heuristics.MinMin(in).Makespan()
	res, err := Struggle(in, StruggleConfig{Seed: 7, MaxEvaluations: 500, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > mm {
		t.Fatalf("struggle best %v worse than its Min-min seed %v", res.BestFitness, mm)
	}
}

func TestCMALTHBasic(t *testing.T) {
	in := testInstance(t, 6)
	res, err := CMALTH(in, CMALTHConfig{GridW: 8, GridH: 8, Seed: 3, MaxEvaluations: 2000, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Generations == 0 {
		t.Fatal("cMA ran zero generations")
	}
}

func TestCMALTHDeterministic(t *testing.T) {
	in := testInstance(t, 7)
	cfg := CMALTHConfig{GridW: 8, GridH: 8, Seed: 11, MaxEvaluations: 1500}
	a, err := CMALTH(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CMALTH(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestFitness != b.BestFitness {
		t.Fatal("cMA runs with identical seed differ")
	}
}

func TestCMALTHRequiresStopCondition(t *testing.T) {
	in := testInstance(t, 8)
	if _, err := CMALTH(in, CMALTHConfig{Seed: 1}); err == nil {
		t.Fatal("accepted missing stop condition")
	}
}

func TestBothBaselinesBeatRandomBaseline(t *testing.T) {
	// Sanity: the reimplemented literature algorithms must comfortably
	// beat a purely random schedule.
	in := testInstance(t, 9)
	st, err := Struggle(in, StruggleConfig{Seed: 13, MaxEvaluations: 10000, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := CMALTH(in, CMALTHConfig{GridW: 8, GridH: 8, Seed: 13, MaxEvaluations: 10000, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	randomMakespan := heuristics.OLB(in).Makespan() // weak constructive bound
	if st.BestFitness > randomMakespan {
		t.Fatalf("struggle (%v) worse than OLB (%v)", st.BestFitness, randomMakespan)
	}
	if cm.BestFitness > randomMakespan {
		t.Fatalf("cMA+LTH (%v) worse than OLB (%v)", cm.BestFitness, randomMakespan)
	}
}
