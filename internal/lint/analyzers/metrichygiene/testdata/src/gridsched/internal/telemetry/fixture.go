// Package telemetry exercises both metrichygiene rules: the
// gridsched_ name prefix and the bounded-label-value requirement.
package telemetry

import "gridsched/internal/obs"

func register(reg *obs.Registry, dynamic string) {
	reg.Counter("gridsched_good_total", "namespaced: clean")
	reg.Counter("bad_total", "wrong namespace") // want `lacks the "gridsched_" prefix`
	reg.Counter(dynamic, "dynamic name")        // want `metric name must be a constant string`
	reg.GaugeFunc("gridsched_ok", "namespaced func gauge: clean", nil)
}

// outcome is a finite mapping: every return is a string constant, so
// its results form a closed label vocabulary.
func outcome(err error) string {
	if err != nil {
		return "error"
	}
	return "ok"
}

// describe leaks arbitrary error text: not a finite mapping.
func describe(err error) string {
	if err != nil {
		return err.Error()
	}
	return "ok"
}

func observe(vec *obs.CounterVec, err error, raw string) {
	vec.With("queued").Inc()
	vec.With(outcome(err)).Inc()
	vec.With(raw).Inc()           // want `label value raw is not from a bounded set`
	vec.With(describe(err)).Inc() // want `label value describe\(err\) is not from a bounded set`
	//lint:ignore metrichygiene fixture: raw is bounded by the caller's closed enum
	vec.With(raw).Inc()
}
