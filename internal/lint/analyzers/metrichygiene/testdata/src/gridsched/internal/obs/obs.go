// Package obs stubs the metrics registry surface for lint fixtures.
package obs

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

type Counter struct{}

func (c *Counter) Inc() {}

type CounterVec struct{}

func (v *CounterVec) With(values ...string) *Counter { return &Counter{} }

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}

func (r *Registry) GaugeFunc(name, help string, f func() float64) {}
