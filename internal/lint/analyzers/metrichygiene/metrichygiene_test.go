package metrichygiene_test

import (
	"testing"

	"gridsched/internal/lint/analysistest"
	"gridsched/internal/lint/analyzers/metrichygiene"
)

func TestMetrichygiene(t *testing.T) {
	analysistest.Run(t, "testdata", metrichygiene.Analyzer,
		"gridsched/internal/telemetry",
	)
}
