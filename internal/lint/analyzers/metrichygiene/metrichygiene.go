// Package metrichygiene is the cardinality guard for internal/obs.
// Two rules:
//
//  1. Every metric registered on an obs.Registry (Counter, Gauge,
//     Histogram, the *Func and *Vec variants) must have a constant
//     name carrying the gridsched_ prefix, so dashboards and scrape
//     configs can rely on one namespace.
//
//  2. Every label value passed to a Vec's With must come from a
//     bounded set: a constant string, or a call to a same-package
//     function all of whose returns are string constants (a finite
//     mapping such as rejectReason). Anything else — request fields,
//     formatted integers, plain variables — is potentially unbounded
//     cardinality and must be fixed or justified with
//     //lint:ignore metrichygiene <reason>.
package metrichygiene

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"gridsched/internal/lint/analysis"
	"gridsched/internal/lint/analyzers/lintutil"
)

// Analyzer is the metrichygiene pass.
var Analyzer = &analysis.Analyzer{
	Name: "metrichygiene",
	Doc:  "flags metric names without the gridsched_ prefix and Vec label values drawn from unbounded dynamic strings",
	Run:  run,
}

const (
	obsPkg     = "gridsched/internal/obs"
	namePrefix = "gridsched_"
)

// registerMethods are the obs.Registry methods whose first argument is
// a metric name.
var registerMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

// vecTypes are the obs types whose With takes label values.
var vecTypes = []string{"CounterVec", "GaugeVec", "HistogramVec"}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method, ok := lintutil.MethodCall(call)
			if !ok {
				return true
			}
			rt := lintutil.TypeOf(pass.TypesInfo, recv)
			switch {
			case registerMethods[method] && lintutil.IsNamed(rt, obsPkg, "Registry"):
				checkName(pass, call)
			case method == "With" && isVec(rt):
				for _, arg := range call.Args {
					checkLabel(pass, arg)
				}
			}
			return true
		})
	}
	return nil
}

func isVec(t types.Type) bool {
	for _, name := range vecTypes {
		if lintutil.IsNamed(t, obsPkg, name) {
			return true
		}
	}
	return false
}

func checkName(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	name, ok := constString(pass, arg)
	if !ok {
		pass.Reportf(arg.Pos(), "metric name must be a constant string (got %s)", types.ExprString(arg))
		return
	}
	if !strings.HasPrefix(name, namePrefix) {
		pass.Reportf(arg.Pos(), "metric name %q lacks the %q prefix; all of this project's metrics share one namespace", name, namePrefix)
	}
}

func checkLabel(pass *analysis.Pass, arg ast.Expr) {
	if _, ok := constString(pass, arg); ok {
		return
	}
	if call, ok := arg.(*ast.CallExpr); ok && isFiniteMapping(pass, call) {
		return
	}
	pass.Reportf(arg.Pos(), "label value %s is not from a bounded set; pass a constant or a same-package finite mapping function, or justify: //lint:ignore metrichygiene <reason>", types.ExprString(arg))
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isFiniteMapping reports whether call invokes a function declared in
// the package under analysis whose every return statement yields only
// string constants — a closed label vocabulary by construction.
func isFiniteMapping(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != pass.Pkg {
		return false
	}
	decl := findDecl(pass, fn)
	if decl == nil || decl.Body == nil {
		return false
	}
	finite := true
	sawReturn := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if !finite {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			sawReturn = true
			if len(n.Results) == 0 {
				finite = false // naked return: values flow through named results
				return false
			}
			for _, r := range n.Results {
				if _, ok := constString(pass, r); !ok {
					finite = false
					return false
				}
			}
		}
		return true
	})
	return finite && sawReturn
}

func findDecl(pass *analysis.Pass, fn *types.Func) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pass.TypesInfo.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}
