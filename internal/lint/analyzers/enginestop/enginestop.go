// Package enginestop enforces the PR-1 budget contract statically: an
// unbounded solver loop (a `for` with no condition) in a registered
// solver package must have a reachable exit driven by the budget
// Engine, by its context, or by a channel signal. The conformance kit
// probes this dynamically (a solver that ignores its budget eventually
// times a test out); this pass catches it at review time.
//
// A nil-condition loop is compliant when its body (excluding nested
// function literals) contains at least one of:
//   - a call to a solver.Engine budget/stop method (StopSweep,
//     StopStep, Expired, EvalsExhausted, Observe, …),
//   - a ctx.Err() call or a receive from ctx.Done(),
//   - a select case (or default) whose body leaves the loop via
//     return or a labeled branch — the stop-channel pattern.
package enginestop

import (
	"go/ast"
	"go/token"

	"gridsched/internal/lint/analysis"
	"gridsched/internal/lint/analyzers/lintutil"
)

// Analyzer is the enginestop pass.
var Analyzer = &analysis.Analyzer{
	Name: "enginestop",
	Doc:  "flags infinite solver loops that neither poll the budget Engine nor check their context",
	Run:  run,
}

// solverPackages are the registered solver implementations plus the
// shared evolution core.
var solverPackages = map[string]bool{
	"gridsched/internal/core":       true,
	"gridsched/internal/heuristics": true,
	"gridsched/internal/tabu":       true,
	"gridsched/internal/baselines":  true,
	"gridsched/internal/islands":    true,
	"gridsched/internal/portfolio":  true,
}

const solverPkg = "gridsched/internal/solver"

// engineMethods are the Engine calls that count as polling the budget.
var engineMethods = map[string]bool{
	"StopSweep": true, "StopStep": true, "Expired": true,
	"EvalsExhausted": true, "Observe": true, "Evals": true,
	"AddEvals": true, "GenerationsDone": true, "RemainingEvals": true,
	"RemainingDuration": true, "Transfer": true,
}

func run(pass *analysis.Pass) error {
	if !solverPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if !hasStopCheck(pass, loop.Body) {
				pass.Reportf(loop.For, "infinite loop polls neither the budget Engine (StopSweep/StopStep/Expired/EvalsExhausted/…) nor its context (ctx.Err, <-ctx.Done); every solver loop needs a budget-driven exit")
			}
			return true
		})
	}
	return nil
}

func hasStopCheck(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a closure's body does not gate this loop
		case *ast.CallExpr:
			if recv, method, ok := lintutil.MethodCall(n); ok {
				rt := lintutil.TypeOf(pass.TypesInfo, recv)
				if engineMethods[method] && lintutil.IsNamed(rt, solverPkg, "Engine") {
					found = true
				}
				if method == "Err" && lintutil.IsContext(rt) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isCtxDone(pass, n.X) {
				found = true
			}
		case *ast.SelectStmt:
			for _, cc := range n.Body.List {
				if caseLeavesLoop(cc.(*ast.CommClause)) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isCtxDone matches x.Done() for a context.Context x.
func isCtxDone(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	recv, method, ok := lintutil.MethodCall(call)
	return ok && method == "Done" && lintutil.IsContext(lintutil.TypeOf(pass.TypesInfo, recv))
}

// caseLeavesLoop reports whether a select case's body escapes the
// enclosing loop: a return, or a labeled break/continue/goto. (A bare
// break inside a select leaves only the select.)
func caseLeavesLoop(cc *ast.CommClause) bool {
	leaves := false
	for _, s := range cc.Body {
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				leaves = true
			case *ast.BranchStmt:
				if n.Label != nil {
					leaves = true
				}
			}
			return !leaves
		})
		if leaves {
			return true
		}
	}
	return false
}
