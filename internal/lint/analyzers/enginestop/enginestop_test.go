package enginestop_test

import (
	"testing"

	"gridsched/internal/lint/analysistest"
	"gridsched/internal/lint/analyzers/enginestop"
)

func TestEnginestop(t *testing.T) {
	analysistest.Run(t, "testdata", enginestop.Analyzer,
		"gridsched/internal/tabu",
		"gridsched/internal/util",
	)
}
