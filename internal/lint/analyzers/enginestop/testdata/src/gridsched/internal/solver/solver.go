// Package solver stubs the budget engine's poll surface for lint
// fixtures.
package solver

// Engine mirrors the real stop engine's method set.
type Engine struct{}

func (e *Engine) StopSweep(gens int64) bool { return false }
func (e *Engine) StopStep(step int64) bool  { return false }
func (e *Engine) Expired() bool             { return false }
func (e *Engine) EvalsExhausted() bool      { return false }
func (e *Engine) Observe(fit float64)       {}
func (e *Engine) Evals() int64              { return 0 }
