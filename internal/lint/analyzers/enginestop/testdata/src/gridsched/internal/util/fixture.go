// Package util is outside the registered-solver set: infinite loops
// here are not this analyzer's concern.
package util

func Forever(f func()) {
	for {
		f()
	}
}
