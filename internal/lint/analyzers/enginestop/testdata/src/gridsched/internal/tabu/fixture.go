// Package tabu is an enginestop fixture reproducing a registered
// solver package's import path so the analyzer's gate applies.
package tabu

import (
	"context"

	"gridsched/internal/solver"
)

func work() {}

// Runaway has no budget-driven exit: flagged.
func Runaway() {
	for { // want `infinite loop polls neither the budget Engine`
		work()
	}
}

// RunawayCounted is still unbounded (nil condition): flagged.
func RunawayCounted() {
	for i := 0; ; i++ { // want `infinite loop polls neither the budget Engine`
		work()
	}
}

// Bounded loops are not this analyzer's concern: clean.
func Bounded() {
	for i := 0; i < 100; i++ {
		work()
	}
}

// PollsEngine checks the budget every sweep: clean.
func PollsEngine(eng *solver.Engine) {
	var sweeps int64
	for {
		if eng.StopSweep(sweeps) {
			return
		}
		sweeps++
		work()
	}
}

// PollsContext checks ctx.Err: clean.
func PollsContext(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

// WaitsOnDone blocks on the context's done channel: clean.
func WaitsOnDone(ctx context.Context, tick <-chan struct{}) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
			work()
		}
	}
}

// StopChannel exits through a signal-channel case: clean.
func StopChannel(stop, tick <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-tick:
			work()
		}
	}
}

// DrainNonBlocking exits through the select default — the bounded
// inbox-drain pattern: clean.
func DrainNonBlocking(inbox <-chan int) int {
	n := 0
	for {
		select {
		case v := <-inbox:
			n += v
		default:
			return n
		}
	}
}

// Justified carries the escape hatch with a reason: suppressed.
func Justified(done *bool) {
	//lint:ignore enginestop fixture: the loop exits through the caller-owned flag below
	for {
		if *done {
			return
		}
		work()
	}
}
