// Package service is a lockhold fixture reproducing the real service
// package's import path so the analyzer's gate applies.
package service

import (
	"sync"
	"time"
)

type shard struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	done chan struct{}
	wg   sync.WaitGroup
}

// sendHeld blocks on a send under the lock: flagged.
func (sh *shard) sendHeld() {
	sh.mu.Lock()
	sh.ch <- 1 // want `channel send while "sh.mu" is held`
	sh.mu.Unlock()
}

// recvHeld blocks on a receive under a deferred unlock (which only
// releases at return): flagged.
func (sh *shard) recvHeld() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return <-sh.ch // want `channel receive while "sh.mu" is held`
}

// waitHeld parks on a WaitGroup under the lock: flagged.
func (sh *shard) waitHeld() {
	sh.mu.Lock()
	sh.wg.Wait() // want `sync sh.wg.Wait while "sh.mu" is held`
	sh.mu.Unlock()
}

// sleepHeld sleeps under a read lock: flagged.
func (sh *shard) sleepHeld() {
	sh.rw.RLock()
	time.Sleep(time.Millisecond) // want `time.Sleep while "sh.rw" is held`
	sh.rw.RUnlock()
}

// blockingSelectHeld has no default case: flagged.
func (sh *shard) blockingSelectHeld() {
	sh.mu.Lock()
	select { // want `blocking select while "sh.mu" is held`
	case <-sh.done:
	case sh.ch <- 1:
	}
	sh.mu.Unlock()
}

// trySendHeld is the sanctioned wake pattern — a default case makes
// the select non-blocking: clean.
func (sh *shard) trySendHeld() {
	sh.mu.Lock()
	select {
	case sh.ch <- 1:
	default:
	}
	sh.mu.Unlock()
}

// unlockFirst releases before blocking: clean.
func (sh *shard) unlockFirst() int {
	sh.mu.Lock()
	n := len(sh.ch)
	sh.mu.Unlock()
	return n + <-sh.ch
}

// branchRelease unlocks on the early-return path before blocking, and
// on the fallthrough path before returning: clean.
func (sh *shard) branchRelease(fast bool) int {
	sh.mu.Lock()
	if fast {
		sh.mu.Unlock()
		return <-sh.ch
	}
	sh.mu.Unlock()
	return 0
}

// spawn hands blocking work to a goroutine; the literal's body does
// not run under the creator's lock: clean.
func (sh *shard) spawn() {
	sh.mu.Lock()
	go func() { sh.ch <- 1 }()
	sh.mu.Unlock()
}

// justified carries the escape hatch with a reason: suppressed.
func (sh *shard) justified() {
	sh.mu.Lock()
	//lint:ignore lockhold fixture: channel is buffered to the writer count, the send cannot block
	sh.ch <- 1
	sh.mu.Unlock()
}
