// Package notservice is outside the PR-9 contract's scope: identical
// code draws no findings here.
package notservice

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) sendHeld() {
	b.mu.Lock()
	b.ch <- 1
	b.mu.Unlock()
}
