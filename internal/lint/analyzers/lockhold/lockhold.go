// Package lockhold mechanizes the PR-9 service locking contract: a
// sync.Mutex / sync.RWMutex held inside internal/service guards one
// short critical section, and no blocking operation — channel send,
// channel receive, select without default, sync.WaitGroup/Cond Wait,
// time.Sleep — happens while it is held.
//
// The pass is lexical, not a full CFG dataflow: it walks each function
// body in statement order keeping a held-count per mutex expression
// (keyed by its printed form, e.g. "sh.mu"). Branches are analyzed
// with a copy of the state; a branch that terminates (returns/branches
// away) contributes nothing afterwards, a branch that survives merges
// conservatively (held wins). A deferred Unlock never releases within
// the body — that is exactly the contract's point. Function literals
// start with fresh state: a goroutine or callback body does not run
// under the creating goroutine's lock.
package lockhold

import (
	"go/ast"
	"go/types"

	"gridsched/internal/lint/analysis"
	"gridsched/internal/lint/analyzers/lintutil"
)

// Analyzer is the lockhold pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "flags blocking operations (sends, receives, Wait, blocking select, Sleep) performed while an internal/service mutex is held",
	Run:  run,
}

const servicePkg = "gridsched/internal/service"

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != servicePkg {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					w := &walker{pass: pass}
					w.stmts(n.Body.List, held{})
				}
				return true // descend: FuncLits inside are found below
			case *ast.FuncLit:
				w := &walker{pass: pass}
				w.stmts(n.Body.List, held{})
				return true
			}
			return true
		})
	}
	return nil
}

// held maps a mutex expression's printed form to its hold count.
type held map[string]int

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// any returns the printed form of one held mutex, or "".
func (h held) any() string {
	best := ""
	for k, v := range h {
		if v > 0 && (best == "" || k < best) {
			best = k
		}
	}
	return best
}

// merge folds the surviving state o into h, keeping the maximum hold
// count per mutex (conservative: held wins over released).
func (h held) merge(o held) {
	for k, v := range o {
		if v > h[k] {
			h[k] = v
		}
	}
}

type walker struct {
	pass *analysis.Pass
}

// stmts walks a statement list, mutating h, and reports whether the
// list definitely transfers control away (return / branch).
func (w *walker) stmts(list []ast.Stmt, h held) bool {
	for _, s := range list {
		if w.stmt(s, h) {
			return true
		}
	}
	return false
}

// stmt processes one statement; the bool mirrors stmts.
func (w *walker) stmt(s ast.Stmt, h held) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && w.lockOp(call, h) {
			return false
		}
		w.exprs(h, s.X)
	case *ast.SendStmt:
		if m := h.any(); m != "" {
			w.pass.Reportf(s.Arrow, "channel send while %q is held; release the lock before blocking (PR-9 shard-lock contract)", m)
		}
		w.exprs(h, s.Chan, s.Value)
	case *ast.AssignStmt:
		w.exprs(h, s.Rhs...)
		w.exprs(h, s.Lhs...)
	case *ast.DeferStmt:
		// A deferred Unlock releases at function exit, not here; any
		// other deferred call runs later too. Only its arguments are
		// evaluated now.
		if _, method, ok := lintutil.MethodCall(s.Call); !ok || (method != "Unlock" && method != "RUnlock") {
			w.exprs(h, s.Call.Args...)
		}
	case *ast.GoStmt:
		w.exprs(h, s.Call.Args...) // the spawned body runs lock-free; see run
	case *ast.ReturnStmt:
		w.exprs(h, s.Results...)
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.stmts(s.List, h)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, h)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, h)
		}
		w.exprs(h, s.Cond)
		bodyState := h.clone()
		bodyTerm := w.stmts(s.Body.List, bodyState)
		elseState := h.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseState)
		}
		for k := range h {
			delete(h, k)
		}
		if !bodyTerm {
			h.merge(bodyState)
		}
		if !elseTerm {
			h.merge(elseState)
		}
		return bodyTerm && elseTerm
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, h)
		}
		if s.Cond != nil {
			w.exprs(h, s.Cond)
		}
		body := h.clone()
		w.stmts(s.Body.List, body)
		h.merge(body)
	case *ast.RangeStmt:
		w.exprs(h, s.X)
		body := h.clone()
		w.stmts(s.Body.List, body)
		h.merge(body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			if sw.Init != nil {
				w.stmt(sw.Init, h)
			}
			if sw.Tag != nil {
				w.exprs(h, sw.Tag)
			}
			body = sw.Body
		} else {
			body = s.(*ast.TypeSwitchStmt).Body
		}
		after := h.clone()
		for _, cc := range body.List {
			cs := cc.(*ast.CaseClause)
			w.exprs(h, cs.List...)
			state := h.clone()
			if !w.stmts(cs.Body, state) {
				after.merge(state)
			}
		}
		for k := range h {
			delete(h, k)
		}
		h.merge(after)
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range s.Body.List {
			if cc.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if m := h.any(); m != "" && !hasDefault {
			w.pass.Reportf(s.Select, "blocking select while %q is held; add a default case or release the lock first (PR-9 shard-lock contract)", m)
		}
		after := h.clone()
		for _, cc := range s.Body.List {
			cs := cc.(*ast.CommClause)
			state := h.clone()
			// The comm op itself is the select's blocking point and was
			// handled above; it is not re-walked (its send/receive must
			// not be re-reported when a default makes it non-blocking).
			if !w.stmts(cs.Body, state) {
				after.merge(state)
			}
		}
		for k := range h {
			delete(h, k)
		}
		h.merge(after)
	default:
		// DeclStmt, IncDecStmt, EmptyStmt, …: nothing blocking, no
		// lock ops of interest beyond their expressions.
		if ds, ok := s.(*ast.DeclStmt); ok {
			ast.Inspect(ds, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					w.exprs(h, e)
					return false
				}
				return true
			})
		}
	}
	return false
}

// lockOp updates h when call is a Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex, reporting whether it consumed the call.
func (w *walker) lockOp(call *ast.CallExpr, h held) bool {
	recv, method, ok := lintutil.MethodCall(call)
	if !ok {
		return false
	}
	if !w.isMutex(recv) {
		return false
	}
	key := types.ExprString(recv)
	switch method {
	case "Lock", "RLock":
		h[key]++
	case "Unlock", "RUnlock":
		if h[key] > 0 {
			h[key]--
		}
	case "TryLock", "TryRLock":
		// Cannot tell here whether it succeeded; treat as held so the
		// critical section that follows is still checked.
		h[key]++
	default:
		return false
	}
	return true
}

func (w *walker) isMutex(e ast.Expr) bool {
	t := lintutil.TypeOf(w.pass.TypesInfo, e)
	return lintutil.IsNamed(t, "sync", "Mutex") || lintutil.IsNamed(t, "sync", "RWMutex")
}

// exprs scans expressions for blocking operations performed with a
// lock held: channel receives, sync Wait calls, time.Sleep. Function
// literals are skipped (fresh goroutine/callback state; their bodies
// are analyzed separately by run).
func (w *walker) exprs(h held, list ...ast.Expr) {
	m := h.any()
	if m == "" {
		return
	}
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					w.pass.Reportf(n.OpPos, "channel receive while %q is held; release the lock before blocking (PR-9 shard-lock contract)", m)
				}
			case *ast.CallExpr:
				recv, method, ok := lintutil.MethodCall(n)
				if !ok {
					return true
				}
				rt := lintutil.TypeOf(w.pass.TypesInfo, recv)
				switch {
				case method == "Wait" && (lintutil.IsNamed(rt, "sync", "WaitGroup") || lintutil.IsNamed(rt, "sync", "Cond")):
					w.pass.Reportf(n.Pos(), "sync %s.Wait while %q is held; release the lock before blocking (PR-9 shard-lock contract)", types.ExprString(recv), m)
				case method == "Sleep" && isPkg(w.pass, recv, "time"):
					w.pass.Reportf(n.Pos(), "time.Sleep while %q is held; release the lock before blocking (PR-9 shard-lock contract)", m)
				}
			}
			return true
		})
	}
}

// isPkg reports whether e names the package with the given path.
func isPkg(pass *analysis.Pass, e ast.Expr, path string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}
