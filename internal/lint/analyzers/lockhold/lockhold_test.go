package lockhold_test

import (
	"testing"

	"gridsched/internal/lint/analysistest"
	"gridsched/internal/lint/analyzers/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, "testdata", lockhold.Analyzer,
		"gridsched/internal/service",
		"gridsched/internal/notservice",
	)
}
