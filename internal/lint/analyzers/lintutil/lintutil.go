// Package lintutil holds the few type-matching helpers the
// gridschedlint analyzers share.
package lintutil

import (
	"go/ast"
	"go/types"
)

// MethodCall unpacks call as a method-style selector call, returning
// the receiver expression and method name. It matches plain selector
// calls (x.M(...)), so package-qualified function calls (pkg.F) come
// through too; callers disambiguate via the receiver's type.
func MethodCall(call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// IsNamed reports whether t (after stripping pointers and aliases) is
// the named type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// TypeOf returns the type of e under info, or nil.
func TypeOf(info *types.Info, e ast.Expr) types.Type {
	if info == nil {
		return nil
	}
	return info.TypeOf(e)
}
