package hotpath_test

import (
	"testing"

	"gridsched/internal/lint/analysistest"
	"gridsched/internal/lint/analyzers/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer,
		"gridsched/internal/heuristics",
		"gridsched/internal/coldpkg",
	)
}
