// Package coldpkg sits outside the hot set: identical per-element
// reads draw no findings here.
package coldpkg

import "gridsched/internal/etc"

func Sum(in *etc.Instance) float64 {
	s := 0.0
	for t := 0; t < in.T; t++ {
		s += in.ETC(t, 0)
	}
	return s
}
