// Package heuristics is a hotpath fixture: it reproduces a real hot
// package's import path so the analyzer's package gate applies.
package heuristics

import "gridsched/internal/etc"

// SumLoop reads per element inside loop bodies: flagged.
func SumLoop(in *etc.Instance) float64 {
	s := 0.0
	for t := 0; t < in.T; t++ {
		s += in.ETC(t, 0) // want `per-element ETC call in a hot-package loop`
	}
	for m := 0; m < in.M; m++ {
		s += in.ETCRow(0, m) // want `per-element ETCRow call in a hot-package loop`
	}
	return s
}

// SumClosure reads per element inside a function literal: flagged
// (hot-package closures run per event even without a lexical loop).
func SumClosure(in *etc.Instance) func(int) float64 {
	return func(t int) float64 { return in.ETC(t, 0) } // want `function literal`
}

// SumSlices reads through the slice accessors: clean.
func SumSlices(in *etc.Instance) float64 {
	s := 0.0
	for t := 0; t < in.T; t++ {
		row := in.TaskCosts(t)
		for m := range row {
			s += row[m]
		}
	}
	return s
}

// Single is a one-off read outside any loop or closure: clean.
func Single(in *etc.Instance) float64 { return in.ETC(0, 0) }

// Justified carries the escape hatch with a reason: suppressed.
func Justified(in *etc.Instance) float64 {
	s := 0.0
	for t := 0; t < in.T; t++ {
		//lint:ignore hotpath fixture: cold validation path, measured irrelevant
		s += in.ETC(t, 0)
	}
	return s
}

// Unjustified carries an empty escape hatch: both the violation and
// the reasonless directive are reported.
func Unjustified(in *etc.Instance) float64 {
	s := 0.0
	for t := 0; t < in.T; t++ {
		s += in.ETC(t, 0) /*lint:ignore hotpath*/ // want `per-element ETC call` `needs a non-empty justification`
	}
	return s
}
