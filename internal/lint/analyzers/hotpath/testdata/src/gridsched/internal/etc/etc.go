// Package etc stubs the real instance type for lint fixtures: the
// analyzers type-match against this import path and method set.
package etc

// Instance mirrors the accessor surface of the real
// gridsched/internal/etc.Instance.
type Instance struct {
	T, M     int
	Row, Col []float64
}

func (in *Instance) ETC(t, m int) float64      { return in.Col[m*in.T+t] }
func (in *Instance) ETCRow(t, m int) float64   { return in.Row[t*in.M+m] }
func (in *Instance) TaskCosts(t int) []float64 { return in.Row[t*in.M : (t+1)*in.M] }
func (in *Instance) MachineCosts(m int) []float64 {
	return in.Col[m*in.T : (m+1)*in.T]
}
