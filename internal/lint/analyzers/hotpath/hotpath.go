// Package hotpath flags per-element etc.Instance.ETC / ETCRow calls in
// the repo's hot packages. PR 6 made the machine-major layout and its
// slice accessors (TaskCosts, MachineCosts, ColBlock,
// MachineCostsBlock) the sanctioned way to read costs on hot paths: a
// per-element call inside a loop re-derives the element address and
// defeats bounds-check elimination and vectorization-friendly code the
// batched kernels rely on. The pass flags such calls inside loop
// bodies, and inside function literals (hot-package closures are event
// and per-candidate callbacks — a call there runs per iteration even
// though no loop encloses it lexically).
package hotpath

import (
	"go/ast"

	"gridsched/internal/lint/analysis"
	"gridsched/internal/lint/analyzers/lintutil"
)

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "flags per-element Instance.ETC calls in hot-package loops; use the PR-6 slice accessors (TaskCosts/MachineCosts/ColBlock)",
	Run:  run,
}

// hotPackages are the packages whose inner loops dominate solve time.
var hotPackages = map[string]bool{
	"gridsched/internal/heuristics": true,
	"gridsched/internal/tabu":       true,
	"gridsched/internal/schedule":   true,
	"gridsched/internal/core":       true,
	"gridsched/internal/gridsim":    true,
}

const etcPkg = "gridsched/internal/etc"

func run(pass *analysis.Pass) error {
	if !hotPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		checkNode(pass, f, false, false)
	}
	return nil
}

// checkNode walks n tracking whether the current position is inside a
// loop body or a function literal.
func checkNode(pass *analysis.Pass, n ast.Node, inLoop, inFuncLit bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Init != nil {
				checkNode(pass, n.Init, inLoop, inFuncLit)
			}
			if n.Cond != nil {
				checkNode(pass, n.Cond, inLoop, inFuncLit)
			}
			if n.Post != nil {
				checkNode(pass, n.Post, inLoop, inFuncLit)
			}
			checkNode(pass, n.Body, true, inFuncLit)
			return false
		case *ast.RangeStmt:
			checkNode(pass, n.X, inLoop, inFuncLit)
			checkNode(pass, n.Body, true, inFuncLit)
			return false
		case *ast.FuncLit:
			checkNode(pass, n.Body, false, true)
			return false
		case *ast.CallExpr:
			recv, method, ok := lintutil.MethodCall(n)
			if !ok || (method != "ETC" && method != "ETCRow") {
				return true
			}
			if !lintutil.IsNamed(lintutil.TypeOf(pass.TypesInfo, recv), etcPkg, "Instance") {
				return true
			}
			switch {
			case inLoop:
				pass.Reportf(n.Pos(), "per-element %s call in a hot-package loop; read through the slice accessors (TaskCosts/MachineCosts/ColBlock) instead", method)
			case inFuncLit:
				pass.Reportf(n.Pos(), "per-element %s call in a hot-package function literal (closures here run per event); read through the slice accessors (TaskCosts/MachineCosts/ColBlock) instead", method)
			}
			return true
		}
		return true
	})
}
