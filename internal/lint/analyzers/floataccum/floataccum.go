// Package floataccum protects the bit-exactness contract of
// internal/schedule: machine completion times are accumulated through
// the compensated double-double primitive accAdd (Knuth TwoSum +
// renormalization), so the incremental path and the batched kernels
// produce bit-equal results. A raw `sum += x` / `sum = sum + x` on a
// float re-introduces the per-step rounding loss the scheme exists to
// absorb. The pass flags raw float accumulation everywhere in
// internal/schedule outside accAdd itself; deliberately plain paths
// (reference recomputations, post-hoc statistics) carry a
// //lint:ignore floataccum justification.
package floataccum

import (
	"go/ast"
	"go/token"
	"go/types"

	"gridsched/internal/lint/analysis"
	"gridsched/internal/lint/analyzers/lintutil"
)

// Analyzer is the floataccum pass.
var Analyzer = &analysis.Analyzer{
	Name: "floataccum",
	Doc:  "flags raw float += / sum = sum + x accumulation in internal/schedule outside the compensated accAdd helper",
	Run:  run,
}

const schedulePkg = "gridsched/internal/schedule"

// exemptFuncs may accumulate raw floats: they ARE the compensated
// primitive (the TwoSum error term is itself a raw float sum).
var exemptFuncs = map[string]bool{"accAdd": true}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != schedulePkg {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || exemptFuncs[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				checkAssign(pass, as)
				return true
			})
		}
	}
	return nil
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN:
		if len(as.Lhs) == 1 && isFloat(lintutil.TypeOf(pass.TypesInfo, as.Lhs[0])) {
			pass.Reportf(as.TokPos, "raw float accumulation %s += …; use the compensated accAdd/accumulate helpers (or justify: //lint:ignore floataccum <reason>)", types.ExprString(as.Lhs[0]))
		}
	case token.ASSIGN:
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		lhs := as.Lhs[0]
		if !isFloat(lintutil.TypeOf(pass.TypesInfo, lhs)) {
			return
		}
		bin, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok || bin.Op != token.ADD {
			return
		}
		ls := types.ExprString(lhs)
		if types.ExprString(bin.X) == ls || types.ExprString(bin.Y) == ls {
			pass.Reportf(as.TokPos, "raw float accumulation %s = %s + …; use the compensated accAdd/accumulate helpers (or justify: //lint:ignore floataccum <reason>)", ls, ls)
		}
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
