// Package schedule is a floataccum fixture reproducing the real
// package's import path so the analyzer's gate applies.
package schedule

// Sum accumulates raw with +=: flagged.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x // want `raw float accumulation sum \+=`
	}
	return sum
}

// SumExplicit uses the x = x + e spelling: flagged.
func SumExplicit(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total = total + x // want `raw float accumulation total = total \+`
	}
	return total
}

// Count accumulates an int: clean.
func Count(xs []float64) int {
	n := 0
	for range xs {
		n += 1
	}
	return n
}

// accAdd is the compensated primitive itself — its TwoSum error term
// is a raw float sum by construction: exempt by name.
func accAdd(hi, lo, v float64) (float64, float64) {
	sum := hi + v
	bv := sum - hi
	err := (hi - (sum - bv)) + (v - bv)
	err += lo
	nh := sum + err
	return nh, err - (nh - sum)
}

// Compensated drives accAdd: clean.
func Compensated(xs []float64) float64 {
	hi, lo := 0.0, 0.0
	for _, x := range xs {
		hi, lo = accAdd(hi, lo, x)
	}
	return hi + lo
}

// Justified keeps a deliberately plain reference sum: suppressed.
func Justified(xs []float64) float64 {
	ref := 0.0
	for _, x := range xs {
		//lint:ignore floataccum fixture: deliberately plain reference accumulation
		ref += x
	}
	return ref
}
