// Package otherpkg is outside internal/schedule: raw accumulation
// elsewhere is not this analyzer's concern.
package otherpkg

func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
