package floataccum_test

import (
	"testing"

	"gridsched/internal/lint/analysistest"
	"gridsched/internal/lint/analyzers/floataccum"
)

func TestFloataccum(t *testing.T) {
	analysistest.Run(t, "testdata", floataccum.Analyzer,
		"gridsched/internal/schedule",
		"gridsched/internal/otherpkg",
	)
}
