// Package loader type-checks the module's packages for gridschedlint
// without any dependency beyond the go toolchain itself. It shells out
// to `go list -json -deps` for the build-constraint-filtered file
// lists (emitted in dependency order), parses the module's sources
// with comments, and type-checks them with go/types, resolving
// standard-library imports through the go/importer source importer and
// module-internal imports from the packages it has already checked.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one type-checked module package, ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// Load type-checks the packages matched by patterns (e.g. "./...")
// in the module rooted at (or containing) dir, returning only the
// matched packages; their module-internal dependencies are checked
// too, but not returned. Test files are excluded, as are testdata
// trees (the go tool skips both).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	srcImp := importer.ForCompiler(fset, "source", nil)
	checked := make(map[string]*types.Package)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return srcImp.Import(path)
	})

	var out []*Package
	for _, m := range metas {
		// Standard-library deps are resolved lazily by the source
		// importer; only module packages are parsed here.
		if m.Standard || len(m.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("loader: %w", err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(m.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("loader: type-checking %s: %v (and %d more)", m.ImportPath, typeErrs[0], len(typeErrs)-1)
		}
		checked[m.ImportPath] = tpkg
		if !m.DepOnly {
			out = append(out, &Package{
				Path:  m.ImportPath,
				Dir:   m.Dir,
				Fset:  fset,
				Files: files,
				Types: tpkg,
				Info:  info,
			})
		}
	}
	return out, nil
}

// NewInfo allocates a types.Info with every map the analyzers read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// goList runs `go list -json -deps` and decodes its package stream,
// which the go tool guarantees to be in dependency order (every
// package appears after all of its imports).
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("loader: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	dec := json.NewDecoder(&stdout)
	var metas []listPackage
	for dec.More() {
		var m listPackage
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
