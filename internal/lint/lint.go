// Package lint assembles the project's static-analysis suite: five
// passes that machine-check the invariants earlier PRs bought with
// careful code — hot-loop slice access (PR 6), the service locking
// contract (PR 9), compensated float accumulation (PR 4), solver
// budget polling (PR 1), and metric-cardinality hygiene. The suite
// ships as the cmd/gridschedlint multichecker and runs in CI next to
// go vet.
package lint

import (
	"gridsched/internal/lint/analysis"
	"gridsched/internal/lint/analyzers/enginestop"
	"gridsched/internal/lint/analyzers/floataccum"
	"gridsched/internal/lint/analyzers/hotpath"
	"gridsched/internal/lint/analyzers/lockhold"
	"gridsched/internal/lint/analyzers/metrichygiene"
	"gridsched/internal/lint/loader"
)

// All returns the full analyzer suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		enginestop.Analyzer,
		floataccum.Analyzer,
		hotpath.Analyzer,
		lockhold.Analyzer,
		metrichygiene.Analyzer,
	}
}

// Check loads the packages matched by patterns in the module at dir
// and runs the whole suite, returning the surviving findings.
func Check(dir string, patterns ...string) ([]analysis.Finding, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []analysis.Finding
	for _, pkg := range pkgs {
		fs, err := analysis.RunPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, All())
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}
