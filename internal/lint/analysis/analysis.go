// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that gridschedlint's
// passes are written against. The container this repo builds in has no
// module proxy access, so instead of importing x/tools the lint layer
// carries the ~150 lines of framework it actually needs: an Analyzer
// runs over one type-checked package and reports position-tagged
// diagnostics, and the shared driver applies the //lint:ignore
// suppression contract before anything reaches CI. If the real
// x/tools dependency ever becomes available, the passes port over by
// swapping this import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one lint pass: a name (used in diagnostics and in
// //lint:ignore directives), a doc string describing the invariant it
// enforces, and a Run function over a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer's view of one package: the syntax trees with
// comments, the type information, and a Report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Finding is a diagnostic after suppression: resolved to a file
// position and tagged with the analyzer that produced it.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// RunPackage runs every analyzer over one type-checked package and
// returns the surviving findings, sorted by position. Suppression
// follows the project contract: a comment of the form
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line, or on the line directly above it, silences that
// analyzer's diagnostics there — but only with a non-empty reason. A
// directive naming one of the analyzers being run with no reason is
// itself a finding; directives naming unknown analyzers (e.g. the
// staticcheck-style SA#### codes) are tolerated untouched.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	dirs := directives(fset, files)

	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: name,
				Position: fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	kept := findings[:0]
	for _, f := range findings {
		if !suppressed(dirs, f) {
			kept = append(kept, f)
		}
	}
	findings = kept

	// A directive for a known analyzer without a justification is a
	// violation of the escape-hatch contract, attributed to that
	// analyzer so it reads (and suppresses… not) like its diagnostics.
	for _, d := range dirs {
		if known[d.analyzer] && d.reason == "" {
			findings = append(findings, Finding{
				Analyzer: d.analyzer,
				Position: d.pos,
				Message:  fmt.Sprintf("lint:ignore %s directive needs a non-empty justification", d.analyzer),
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

func suppressed(dirs []directive, f Finding) bool {
	for _, d := range dirs {
		if d.analyzer != f.Analyzer || d.reason == "" {
			continue
		}
		if d.pos.Filename != f.Position.Filename {
			continue
		}
		if d.pos.Line == f.Position.Line || d.pos.Line == f.Position.Line-1 {
			return true
		}
	}
	return false
}
