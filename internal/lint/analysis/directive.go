package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one parsed //lint:ignore comment.
type directive struct {
	pos      token.Position // position of the comment itself
	analyzer string
	reason   string
}

// directives extracts every lint:ignore directive from the package's
// comments. Both line comments (//lint:ignore …) and block comments
// (/*lint:ignore …*/) are honored; block form exists so a fixture can
// place a directive and a // want comment on the same line.
func directives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				switch {
				case strings.HasPrefix(text, "//"):
					text = text[2:]
				case strings.HasPrefix(text, "/*"):
					text = strings.TrimSuffix(text[2:], "*/")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
				if rest == "" {
					continue // bare "lint:ignore": names no analyzer, not ours to police
				}
				name := rest
				reason := ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name, reason = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				out = append(out, directive{
					pos:      fset.Position(c.Pos()),
					analyzer: name,
					reason:   reason,
				})
			}
		}
	}
	return out
}
