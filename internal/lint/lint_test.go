package lint

import "testing"

// TestSuite pins the suite's composition: five complete, uniquely
// named analyzers covering the invariants the ISSUE names.
func TestSuite(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("expected 5 analyzers, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is incomplete (name/doc/run)", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"hotpath", "lockhold", "floataccum", "enginestop", "metrichygiene"} {
		if !seen[want] {
			t.Errorf("missing analyzer %q", want)
		}
	}
}
