// Package analysistest runs a lint analyzer over GOPATH-style fixture
// trees and checks its diagnostics against // want comments, mirroring
// the golang.org/x/tools/go/analysis/analysistest contract the repo
// cannot import offline. Fixtures live under
//
//	<analyzer>/testdata/src/<import/path>/*.go
//
// so a fixture can reproduce exact module import paths (the analyzers
// gate on them). Imports inside a fixture resolve testdata-first: a
// path with sources under testdata/src is loaded from there (stubs for
// gridsched/internal/etc and friends), anything else falls back to the
// standard library via the source importer.
//
// Expectations are trailing comments of the form
//
//	code() // want "regexp" `another regexp`
//
// Every diagnostic must match a want on its line and every want must
// be matched exactly once. //lint:ignore suppression is applied before
// matching, so justified-ignore fixtures simply carry no want.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gridsched/internal/lint/analysis"
	"gridsched/internal/lint/loader"
)

// Run checks the analyzer against each fixture package path under
// testdata (usually "testdata" relative to the test).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		testdata: testdata,
		fset:     fset,
		srcImp:   importer.ForCompiler(fset, "source", nil),
		pkgs:     make(map[string]*loadedPkg),
	}
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		findings, err := analysis.RunPackage(fset, pkg.files, pkg.types, pkg.info, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, fset, path, pkg.files, findings)
	}
}

type loadedPkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type fixtureLoader struct {
	testdata string
	fset     *token.FileSet
	srcImp   types.Importer
	pkgs     map[string]*loadedPkg
}

func (ld *fixtureLoader) load(path string) (*loadedPkg, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := loader.NewInfo()
	conf := types.Config{
		Importer: importerFunc(ld.importPath),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{files: files, types: tpkg, info: info}
	ld.pkgs[path] = p
	return p, nil
}

func (ld *fixtureLoader) importPath(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(ld.testdata, "src", filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return ld.srcImp.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// want is one expectation: a line and a regexp that must match a
// diagnostic's message there.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func checkWants(t *testing.T, fset *token.FileSet, path string, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					var pat string
					if arg[0] == '`' {
						pat = arg[1 : len(arg)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(arg)
						if err != nil {
							t.Fatalf("%s: bad want argument %s: %v", pos, arg, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: pat})
				}
			}
		}
	}

	for _, fd := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == fd.Position.Filename && w.line == fd.Position.Line && w.re.MatchString(fd.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic in %s: %s: %s", fd.Position, path, fd.Analyzer, fd.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.text)
		}
	}
}
