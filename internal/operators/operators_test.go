package operators

import (
	"math"
	"testing"
	"testing/quick"

	"gridsched/internal/etc"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

func testInstance(t testing.TB, tasks, machines int, seed uint64) *etc.Instance {
	t.Helper()
	in, err := etc.Generate(etc.GenSpec{
		Class: etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High},
		Tasks: tasks, Machines: machines, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// --- Selection ---

func TestBestTwoPicksTwoLowest(t *testing.T) {
	cands := []Candidate{
		{Cell: 0, Fitness: 5},
		{Cell: 1, Fitness: 1},
		{Cell: 2, Fitness: 3},
		{Cell: 3, Fitness: 2},
		{Cell: 4, Fitness: 9},
	}
	p1, p2 := BestTwo{}.Select(cands, nil)
	if cands[p1].Fitness != 1 || cands[p2].Fitness != 2 {
		t.Fatalf("BestTwo chose %v and %v", cands[p1], cands[p2])
	}
}

func TestBestTwoBestIsFirst(t *testing.T) {
	cands := []Candidate{{Cell: 0, Fitness: 1}, {Cell: 1, Fitness: 2}, {Cell: 2, Fitness: 3}}
	p1, p2 := BestTwo{}.Select(cands, nil)
	if p1 != 0 || p2 != 1 {
		t.Fatalf("got %d,%d want 0,1", p1, p2)
	}
}

func TestBestTwoSingleCandidate(t *testing.T) {
	p1, p2 := BestTwo{}.Select([]Candidate{{Cell: 7, Fitness: 4}}, nil)
	if p1 != 0 || p2 != 0 {
		t.Fatalf("single candidate gave %d,%d", p1, p2)
	}
}

func TestBestTwoAllEqual(t *testing.T) {
	cands := []Candidate{{Fitness: 2}, {Fitness: 2}, {Fitness: 2}}
	p1, p2 := BestTwo{}.Select(cands, nil)
	if p1 == p2 {
		t.Fatal("BestTwo returned the same candidate twice despite alternatives")
	}
}

func TestBestTwoPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty candidates")
		}
	}()
	BestTwo{}.Select(nil, nil)
}

// Property: BestTwo returns distinct indices whenever it has >=2
// candidates, and p1's fitness is the minimum.
func TestBestTwoProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		cands := make([]Candidate, len(raw))
		for i, v := range raw {
			cands[i] = Candidate{Cell: i, Fitness: float64(v)}
		}
		p1, p2 := BestTwo{}.Select(cands, nil)
		if p1 == p2 {
			return false
		}
		for _, c := range cands {
			if c.Fitness < cands[p1].Fitness {
				return false
			}
		}
		for i, c := range cands {
			if i != p1 && c.Fitness < cands[p2].Fitness {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryTournamentInRange(t *testing.T) {
	r := rng.New(1)
	cands := []Candidate{{Fitness: 3}, {Fitness: 1}, {Fitness: 2}}
	for i := 0; i < 200; i++ {
		p1, p2 := BinaryTournament{}.Select(cands, r)
		if p1 < 0 || p1 >= 3 || p2 < 0 || p2 >= 3 {
			t.Fatalf("tournament out of range: %d,%d", p1, p2)
		}
	}
}

func TestBinaryTournamentPrefersBetter(t *testing.T) {
	r := rng.New(2)
	cands := []Candidate{{Fitness: 100}, {Fitness: 1}}
	wins := 0
	const n = 2000
	for i := 0; i < n; i++ {
		p1, _ := BinaryTournament{}.Select(cands, r)
		if p1 == 1 {
			wins++
		}
	}
	// Winner of a pair containing the better candidate is the better one;
	// P(best selected) = 3/4.
	if float64(wins)/n < 0.68 || float64(wins)/n > 0.82 {
		t.Fatalf("tournament selected best %d/%d times, want ~75%%", wins, n)
	}
}

func TestCenterPlusBest(t *testing.T) {
	cands := []Candidate{{Cell: 9, Fitness: 50}, {Fitness: 3}, {Fitness: 1}, {Fitness: 2}}
	p1, p2 := CenterPlusBest{}.Select(cands, nil)
	if p1 != 0 {
		t.Fatal("center not selected as first parent")
	}
	if cands[p2].Fitness != 1 {
		t.Fatalf("second parent fitness %v, want 1", cands[p2].Fitness)
	}
	p1, p2 = CenterPlusBest{}.Select(cands[:1], nil)
	if p1 != 0 || p2 != 0 {
		t.Fatal("single-candidate CenterPlusBest broken")
	}
}

// --- Crossover ---

func crossoverSetup(t testing.TB, seed uint64) (*schedule.Schedule, *schedule.Schedule, *schedule.Schedule, *rng.Rand) {
	in := testInstance(t, 64, 8, seed)
	r := rng.New(seed + 100)
	p1 := schedule.NewRandom(in, r)
	p2 := schedule.NewRandom(in, r)
	child := schedule.New(in)
	return p1, p2, child, r
}

func assertChildGenesFromParents(t *testing.T, child, p1, p2 *schedule.Schedule) {
	t.Helper()
	for task := range child.S {
		if child.S[task] != p1.S[task] && child.S[task] != p2.S[task] {
			t.Fatalf("task %d assigned to %d, in neither parent (%d, %d)",
				task, child.S[task], p1.S[task], p2.S[task])
		}
	}
}

func TestOnePointStructure(t *testing.T) {
	p1, p2, child, r := crossoverSetup(t, 1)
	OnePoint{}.Cross(child, p1, p2, r)
	assertChildGenesFromParents(t, child, p1, p2)
	if err := child.Validate(); err != nil {
		t.Fatalf("opx broke CT invariant: %v", err)
	}
	// One-point: a prefix from p1, a suffix from p2. Find the last index
	// taken from p1-only and the first from p2-only; prefix must precede.
	lastP1, firstP2 := -1, len(child.S)
	for task := range child.S {
		fromP1 := child.S[task] == p1.S[task]
		fromP2 := child.S[task] == p2.S[task]
		if fromP1 && !fromP2 && task > lastP1 {
			lastP1 = task
		}
		if fromP2 && !fromP1 && task < firstP2 {
			firstP2 = task
		}
	}
	if lastP1 >= firstP2 {
		t.Fatalf("opx mixed segments: lastP1=%d firstP2=%d", lastP1, firstP2)
	}
}

func TestTwoPointStructure(t *testing.T) {
	p1, p2, child, r := crossoverSetup(t, 2)
	TwoPoint{}.Cross(child, p1, p2, r)
	assertChildGenesFromParents(t, child, p1, p2)
	if err := child.Validate(); err != nil {
		t.Fatalf("tpx broke CT invariant: %v", err)
	}
	// Two-point: p2-exclusive genes must form one contiguous window.
	first, last := -1, -1
	for task := range child.S {
		if child.S[task] == p2.S[task] && child.S[task] != p1.S[task] {
			if first < 0 {
				first = task
			}
			last = task
		}
	}
	if first >= 0 {
		for task := first; task <= last; task++ {
			if child.S[task] != p2.S[task] && child.S[task] == p1.S[task] && p1.S[task] != p2.S[task] {
				t.Fatalf("tpx window not contiguous at task %d", task)
			}
		}
	}
}

func TestUniformStructure(t *testing.T) {
	p1, p2, child, r := crossoverSetup(t, 3)
	Uniform{}.Cross(child, p1, p2, r)
	assertChildGenesFromParents(t, child, p1, p2)
	if err := child.Validate(); err != nil {
		t.Fatalf("ux broke CT invariant: %v", err)
	}
	// With 64 tasks the chance of taking everything from one parent is
	// 2^-64; require both parents contributed.
	fromP1, fromP2 := 0, 0
	for task := range child.S {
		if child.S[task] == p1.S[task] && child.S[task] != p2.S[task] {
			fromP1++
		}
		if child.S[task] == p2.S[task] && child.S[task] != p1.S[task] {
			fromP2++
		}
	}
	if fromP1 == 0 || fromP2 == 0 {
		t.Fatalf("uniform crossover one-sided: %d vs %d exclusive genes", fromP1, fromP2)
	}
}

// Property: every crossover preserves the CT invariant and produces
// complete schedules with genes from the parents only.
func TestCrossoverInvariantProperty(t *testing.T) {
	in := testInstance(t, 48, 6, 4)
	ops := []Crossover{OnePoint{}, TwoPoint{}, Uniform{}}
	f := func(seed uint64, which uint8) bool {
		r := rng.New(seed)
		p1 := schedule.NewRandom(in, r)
		p2 := schedule.NewRandom(in, r)
		child := schedule.New(in)
		op := ops[int(which)%len(ops)]
		op.Cross(child, p1, p2, r)
		if !child.Complete() || child.Validate() != nil {
			return false
		}
		for task := range child.S {
			if child.S[task] != p1.S[task] && child.S[task] != p2.S[task] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossoverIdenticalParents(t *testing.T) {
	in := testInstance(t, 20, 4, 5)
	r := rng.New(9)
	p := schedule.NewRandom(in, r)
	child := schedule.New(in)
	for _, op := range []Crossover{OnePoint{}, TwoPoint{}, Uniform{}} {
		op.Cross(child, p, p, r)
		if child.HammingDistance(p) != 0 {
			t.Fatalf("%s with identical parents produced a different child", op.Name())
		}
	}
}

func TestParseCrossover(t *testing.T) {
	for _, name := range []string{"opx", "tpx", "ux", "one-point", "two-point", "uniform"} {
		if _, err := ParseCrossover(name); err != nil {
			t.Fatalf("ParseCrossover(%q): %v", name, err)
		}
	}
	if _, err := ParseCrossover("threepoint"); err == nil {
		t.Fatal("accepted bogus crossover")
	}
}

// --- Mutation ---

func TestMoveMutationChangesAtMostOneTask(t *testing.T) {
	in := testInstance(t, 30, 5, 6)
	r := rng.New(10)
	s := schedule.NewRandom(in, r)
	before := s.Clone()
	Move{}.Mutate(s, r)
	if d := s.HammingDistance(before); d > 1 {
		t.Fatalf("move mutation changed %d tasks", d)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapMutation(t *testing.T) {
	in := testInstance(t, 30, 5, 7)
	r := rng.New(11)
	s := schedule.NewRandom(in, r)
	before := s.Clone()
	Swap{}.Mutate(s, r)
	if d := s.HammingDistance(before); d > 2 {
		t.Fatalf("swap mutation changed %d tasks", d)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Machine multiset preserved: counts per machine may change only by
	// the swap; total assignments constant.
	total := 0
	for m := 0; m < in.M; m++ {
		total += s.CountOn(m)
	}
	if total != in.T {
		t.Fatal("swap lost a task")
	}
}

func TestRebalanceMutationNeverIncreasesLoadOnWorst(t *testing.T) {
	in := testInstance(t, 40, 6, 8)
	r := rng.New(12)
	for trial := 0; trial < 50; trial++ {
		s := schedule.NewRandom(in, r)
		worstBefore, ctBefore := s.MakespanMachine()
		Rebalance{}.Mutate(s, r)
		if s.CT[worstBefore] > ctBefore {
			t.Fatal("rebalance increased the load of the former worst machine")
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParseMutation(t *testing.T) {
	for _, name := range []string{"move", "swap", "rebalance"} {
		if _, err := ParseMutation(name); err != nil {
			t.Fatalf("ParseMutation(%q): %v", name, err)
		}
	}
	if _, err := ParseMutation("invert"); err == nil {
		t.Fatal("accepted bogus mutation")
	}
}

// --- Replacement ---

func TestReplacementPolicies(t *testing.T) {
	cases := []struct {
		p        Replacement
		cur, off float64
		want     bool
	}{
		{ReplaceIfBetter, 10, 9, true},
		{ReplaceIfBetter, 10, 10, false},
		{ReplaceIfBetter, 10, 11, false},
		{ReplaceIfBetterOrEqual, 10, 10, true},
		{ReplaceIfBetterOrEqual, 10, 11, false},
		{ReplaceAlways, 10, 99, true},
	}
	for _, c := range cases {
		if got := c.p.Accepts(c.cur, c.off); got != c.want {
			t.Fatalf("%v.Accepts(%v, %v) = %v, want %v", c.p, c.cur, c.off, got, c.want)
		}
	}
}

func TestParseReplacement(t *testing.T) {
	for _, p := range []Replacement{ReplaceIfBetter, ReplaceIfBetterOrEqual, ReplaceAlways} {
		got, err := ParseReplacement(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v failed: %v %v", p, got, err)
		}
	}
	if _, err := ParseReplacement("sometimes"); err == nil {
		t.Fatal("accepted bogus replacement")
	}
}

// --- H2LL ---

func TestH2LLNeverWorsensMakespan(t *testing.T) {
	in := testInstance(t, 128, 16, 9)
	r := rng.New(13)
	for trial := 0; trial < 30; trial++ {
		s := schedule.NewRandom(in, r)
		before := s.Makespan()
		H2LL{Iterations: 10}.Apply(s, r)
		after := s.Makespan()
		if after > before+1e-9 {
			t.Fatalf("H2LL worsened makespan: %v -> %v", before, after)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestH2LLImprovesUnbalancedSchedule(t *testing.T) {
	in := testInstance(t, 128, 16, 10)
	s := schedule.New(in)
	for task := 0; task < in.T; task++ {
		s.Assign(task, 0) // everything piled on machine 0
	}
	r := rng.New(14)
	before := s.Makespan()
	moves := H2LL{Iterations: 10}.Apply(s, r)
	if moves == 0 {
		t.Fatal("H2LL made no moves on a maximally unbalanced schedule")
	}
	if s.Makespan() >= before {
		t.Fatalf("H2LL failed to improve: %v -> %v", before, s.Makespan())
	}
}

func TestH2LLZeroIterationsNoop(t *testing.T) {
	in := testInstance(t, 32, 4, 11)
	r := rng.New(15)
	s := schedule.NewRandom(in, r)
	before := s.Clone()
	if moves := (H2LL{Iterations: 0}).Apply(s, r); moves != 0 {
		t.Fatal("0-iteration H2LL moved tasks")
	}
	if s.HammingDistance(before) != 0 {
		t.Fatal("0-iteration H2LL changed the schedule")
	}
}

func TestH2LLCandidateClamp(t *testing.T) {
	// 2 machines: candidate set must clamp to 1 (never the worst itself).
	in := testInstance(t, 16, 2, 12)
	r := rng.New(16)
	s := schedule.NewRandom(in, r)
	H2LL{Iterations: 5, Candidates: 100}.Apply(s, r)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 machine: no candidates, must be a no-op and not panic.
	in1, err := etc.New("one", 4, 1, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	s1 := schedule.NewRandom(in1, r)
	if moves := (H2LL{Iterations: 5}).Apply(s1, r); moves != 0 {
		t.Fatal("H2LL moved tasks with a single machine")
	}
}

func TestH2LLMovesComeOffWorstMachine(t *testing.T) {
	in := testInstance(t, 64, 8, 13)
	r := rng.New(17)
	s := schedule.NewRandom(in, r)
	worst, _ := s.MakespanMachine()
	countBefore := s.CountOn(worst)
	moves := H2LL{Iterations: 1}.Apply(s, r)
	if moves == 1 && s.CountOn(worst) != countBefore-1 {
		t.Fatal("H2LL's move did not come off the makespan machine")
	}
}

// Property: H2LL preserves completeness, the CT invariant, and
// monotonically non-increasing makespan for any iteration count.
func TestH2LLProperty(t *testing.T) {
	in := testInstance(t, 64, 8, 14)
	f := func(seed uint64, iters uint8) bool {
		r := rng.New(seed)
		s := schedule.NewRandom(in, r)
		before := s.Makespan()
		H2LL{Iterations: int(iters % 20)}.Apply(s, r)
		return s.Complete() && s.Validate() == nil && s.Makespan() <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestH2LLRespectsMakespanBound(t *testing.T) {
	// The accepted move's new completion time must be strictly below the
	// old makespan (Algorithm 4 line 7: new_score < best_score).
	in := testInstance(t, 64, 8, 15)
	r := rng.New(18)
	for trial := 0; trial < 40; trial++ {
		s := schedule.NewRandom(in, r)
		before := s.Makespan()
		moved := H2LL{Iterations: 1}.Apply(s, r)
		if moved == 1 && s.Makespan() > before {
			t.Fatal("H2LL accepted a move that raised the makespan")
		}
	}
}

func TestNullSearch(t *testing.T) {
	in := testInstance(t, 8, 2, 16)
	r := rng.New(19)
	s := schedule.NewRandom(in, r)
	if (NullSearch{}).Apply(s, r) != 0 {
		t.Fatal("NullSearch did something")
	}
	if (NullSearch{}).Name() != "none" {
		t.Fatal("NullSearch name")
	}
}

func TestH2LLName(t *testing.T) {
	if (H2LL{Iterations: 5}).Name() != "h2ll/5" {
		t.Fatalf("name %q", H2LL{Iterations: 5}.Name())
	}
}

func TestH2LLConvergesTowardBalance(t *testing.T) {
	// Repeated application should drive the makespan close to a local
	// optimum: applying it many more times must yield diminishing change.
	in := testInstance(t, 256, 16, 17)
	r := rng.New(20)
	s := schedule.NewRandom(in, r)
	H2LL{Iterations: 200}.Apply(s, r)
	mid := s.Makespan()
	H2LL{Iterations: 200}.Apply(s, r)
	end := s.Makespan()
	if end > mid {
		t.Fatal("makespan increased under repeated H2LL")
	}
	if math.IsNaN(end) || math.IsInf(end, 0) {
		t.Fatal("makespan degenerate")
	}
}

func BenchmarkH2LL5(b *testing.B) {
	in := testInstance(b, 512, 16, 1)
	r := rng.New(1)
	s := schedule.NewRandom(in, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		H2LL{Iterations: 5}.Apply(s, r)
	}
}

func BenchmarkOnePoint(b *testing.B) {
	in := testInstance(b, 512, 16, 1)
	r := rng.New(1)
	p1 := schedule.NewRandom(in, r)
	p2 := schedule.NewRandom(in, r)
	child := schedule.New(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OnePoint{}.Cross(child, p1, p2, r)
	}
}

func BenchmarkTwoPoint(b *testing.B) {
	in := testInstance(b, 512, 16, 1)
	r := rng.New(1)
	p1 := schedule.NewRandom(in, r)
	p2 := schedule.NewRandom(in, r)
	child := schedule.New(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TwoPoint{}.Cross(child, p1, p2, r)
	}
}
