package operators

import (
	"testing"

	"gridsched/internal/etc"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

// Property tests over randomized trials: every variation operator must
// produce valid assignments (every task on a real machine, incremental
// completion times exact), never alias its parents' backing slices,
// and never corrupt the parents.

const propertyTrials = 200

func propInstance(t *testing.T) *etc.Instance {
	t.Helper()
	in, err := etc.Generate(etc.GenSpec{
		Class: etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High},
		Tasks: 40, Machines: 7, Seed: 0xBEEF,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// sharesBacking reports whether two float64 slices overlap in memory.
func sharesBacking(a, b []float64) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

func sharesBackingInt(a, b []int) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// requireIntact asserts s still equals its snapshot.
func requireIntact(t *testing.T, label string, s *schedule.Schedule, snapS []int, snapCT []float64) {
	t.Helper()
	for i, m := range snapS {
		if s.S[i] != m {
			t.Fatalf("%s: parent assignment mutated at task %d", label, i)
		}
	}
	for i, ct := range snapCT {
		if s.CT[i] != ct {
			t.Fatalf("%s: parent completion time mutated at machine %d", label, i)
		}
	}
}

func TestCrossoverProperties(t *testing.T) {
	in := propInstance(t)
	r := rng.New(1)
	for _, cx := range []Crossover{OnePoint{}, TwoPoint{}, Uniform{}} {
		t.Run(cx.Name(), func(t *testing.T) {
			for trial := 0; trial < propertyTrials; trial++ {
				p1 := schedule.NewRandom(in, r)
				p2 := schedule.NewRandom(in, r)
				s1, ct1 := append([]int(nil), p1.S...), append([]float64(nil), p1.CT...)
				s2, ct2 := append([]int(nil), p2.S...), append([]float64(nil), p2.CT...)

				child := schedule.New(in)
				cx.Cross(child, p1, p2, r)

				if sharesBackingInt(child.S, p1.S) || sharesBackingInt(child.S, p2.S) ||
					sharesBacking(child.CT, p1.CT) || sharesBacking(child.CT, p2.CT) {
					t.Fatal("child aliases a parent's backing slice")
				}
				if !child.Complete() {
					t.Fatal("child schedule incomplete")
				}
				if err := child.Validate(); err != nil {
					t.Fatalf("child invalid after %s: %v", cx.Name(), err)
				}
				for task, m := range child.S {
					if m != s1[task] && m != s2[task] {
						t.Fatalf("%s: child gene %d = %d comes from neither parent (%d, %d)",
							cx.Name(), task, m, s1[task], s2[task])
					}
				}
				requireIntact(t, "p1", p1, s1, ct1)
				requireIntact(t, "p2", p2, s2, ct2)
			}
		})
	}
}

func TestMutationProperties(t *testing.T) {
	in := propInstance(t)
	r := rng.New(2)
	for _, mut := range []Mutation{Move{}, Swap{}, Rebalance{}} {
		t.Run(mut.Name(), func(t *testing.T) {
			for trial := 0; trial < propertyTrials; trial++ {
				s := schedule.NewRandom(in, r)
				mut.Mutate(s, r)
				if !s.Complete() {
					t.Fatalf("%s left tasks unassigned", mut.Name())
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("%s corrupted the schedule: %v", mut.Name(), err)
				}
			}
		})
	}
}

func TestH2LLProperties(t *testing.T) {
	in := propInstance(t)
	r := rng.New(3)
	for _, iters := range []int{1, 5, 10} {
		ls := H2LL{Iterations: iters}
		for trial := 0; trial < propertyTrials/2; trial++ {
			s := schedule.NewRandom(in, r)
			before := s.Makespan()
			moves := ls.Apply(s, r)
			if moves < 0 || moves > iters {
				t.Fatalf("h2ll/%d reported %d moves", iters, moves)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("h2ll/%d corrupted the schedule: %v", iters, err)
			}
			if after := s.Makespan(); after > before {
				t.Fatalf("h2ll/%d worsened makespan: %v -> %v", iters, before, after)
			}
			if moves == 0 && s.Makespan() != before {
				t.Fatalf("h2ll/%d changed makespan with zero reported moves", iters)
			}
		}
	}
}

func TestSelectorProperties(t *testing.T) {
	r := rng.New(4)
	for _, sel := range []Selector{BestTwo{}, BinaryTournament{}, CenterPlusBest{}} {
		t.Run(sel.Name(), func(t *testing.T) {
			for trial := 0; trial < propertyTrials; trial++ {
				n := 1 + r.Intn(9)
				cands := make([]Candidate, n)
				for i := range cands {
					cands[i] = Candidate{Cell: i, Fitness: float64(r.Intn(50))}
				}
				p1, p2 := sel.Select(cands, r)
				if p1 < 0 || p1 >= n || p2 < 0 || p2 >= n {
					t.Fatalf("%s returned out-of-range parents %d, %d for %d candidates", sel.Name(), p1, p2, n)
				}
			}
		})
	}
}
