// Package operators implements the variation operators of §3.3: parent
// selection over a neighborhood, one-point / two-point / uniform
// crossover, the move mutation, replacement policies, and the paper's new
// H2LL local search. All operators maintain the schedule's incremental
// completion-time invariant: they never trigger a full re-evaluation.
package operators

import (
	"fmt"
	"sync"

	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

// Candidate is one member of a mating neighborhood: the population cell
// it came from and its fitness (makespan; lower is better).
type Candidate struct {
	Cell    int
	Fitness float64
}

// Selector chooses two parents among neighborhood candidates, returning
// indices into the candidate slice. Implementations must handle slices
// with at least one entry; with a single entry both parents coincide.
type Selector interface {
	Name() string
	Select(cands []Candidate, r *rng.Rand) (p1, p2 int)
}

// BestTwo selects the two candidates with the lowest makespan — the
// paper's "best 2" selection (Table 1). Ties break on cell order,
// keeping selection deterministic for a fixed neighborhood.
type BestTwo struct{}

// Name implements Selector.
func (BestTwo) Name() string { return "best2" }

// Select implements Selector.
func (BestTwo) Select(cands []Candidate, _ *rng.Rand) (int, int) {
	if len(cands) == 0 {
		panic("operators: BestTwo over empty candidate set")
	}
	if len(cands) == 1 {
		return 0, 0
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].Fitness < cands[best].Fitness {
			best = i
		}
	}
	second := -1
	for i := range cands {
		if i == best {
			continue
		}
		if second < 0 || cands[i].Fitness < cands[second].Fitness {
			second = i
		}
	}
	return best, second
}

// BinaryTournament draws two independent pairs and keeps each pair's
// winner; a standard alternative selection kept for ablations.
type BinaryTournament struct{}

// Name implements Selector.
func (BinaryTournament) Name() string { return "tournament2" }

// Select implements Selector.
func (BinaryTournament) Select(cands []Candidate, r *rng.Rand) (int, int) {
	if len(cands) == 0 {
		panic("operators: BinaryTournament over empty candidate set")
	}
	pick := func() int {
		a := r.Intn(len(cands))
		b := r.Intn(len(cands))
		if cands[b].Fitness < cands[a].Fitness {
			return b
		}
		return a
	}
	return pick(), pick()
}

// CenterPlusBest always mates the center individual (candidate 0 by
// convention) with the best of the rest; common in cellular GA variants
// where the current individual is one parent.
type CenterPlusBest struct{}

// Name implements Selector.
func (CenterPlusBest) Name() string { return "center+best" }

// Select implements Selector.
func (CenterPlusBest) Select(cands []Candidate, _ *rng.Rand) (int, int) {
	if len(cands) == 0 {
		panic("operators: CenterPlusBest over empty candidate set")
	}
	if len(cands) == 1 {
		return 0, 0
	}
	best := 1
	for i := 2; i < len(cands); i++ {
		if cands[i].Fitness < cands[best].Fitness {
			best = i
		}
	}
	return 0, best
}

// Crossover recombines two parents into an offspring. The child schedule
// is caller-provided workspace targeting the same instance; Cross fully
// overwrites it (assignment and completion times) without allocating.
type Crossover interface {
	Name() string
	Cross(child, p1, p2 *schedule.Schedule, r *rng.Rand)
}

// OnePoint is the opx operator: the child takes p1's assignments before a
// random cut point and p2's from the cut point on. CT is repaired
// incrementally: starting from a copy of p1, only the suffix genes that
// differ cause O(1) updates.
type OnePoint struct{}

// Name implements Crossover.
func (OnePoint) Name() string { return "opx" }

// Cross implements Crossover.
func (OnePoint) Cross(child, p1, p2 *schedule.Schedule, r *rng.Rand) {
	n := len(p1.S)
	child.CopyFrom(p1)
	if n < 2 {
		return
	}
	cut := 1 + r.Intn(n-1) // cut in [1, n-1]: both parents contribute
	for t := cut; t < n; t++ {
		child.SetAssignment(t, p2.S[t])
	}
}

// TwoPoint is the tpx operator: the child takes p2's assignments inside a
// random window [a, b) and p1's elsewhere.
type TwoPoint struct{}

// Name implements Crossover.
func (TwoPoint) Name() string { return "tpx" }

// Cross implements Crossover.
func (TwoPoint) Cross(child, p1, p2 *schedule.Schedule, r *rng.Rand) {
	n := len(p1.S)
	child.CopyFrom(p1)
	if n < 2 {
		return
	}
	a := r.Intn(n)
	b := r.Intn(n)
	if a > b {
		a, b = b, a
	}
	if a == b { // force a non-empty window so the operator is not a no-op
		if b < n-1 {
			b++
		} else {
			a--
		}
	}
	for t := a; t < b; t++ {
		child.SetAssignment(t, p2.S[t])
	}
}

// Uniform takes each gene from either parent with probability ½; kept
// for operator studies beyond the paper's opx/tpx pair.
type Uniform struct{}

// Name implements Crossover.
func (Uniform) Name() string { return "ux" }

// Cross implements Crossover.
func (Uniform) Cross(child, p1, p2 *schedule.Schedule, r *rng.Rand) {
	child.CopyFrom(p1)
	for t := range p1.S {
		if r.Bool(0.5) {
			child.SetAssignment(t, p2.S[t])
		}
	}
}

// ParseCrossover resolves operator names used on command lines.
func ParseCrossover(name string) (Crossover, error) {
	switch name {
	case "opx", "one-point":
		return OnePoint{}, nil
	case "tpx", "two-point":
		return TwoPoint{}, nil
	case "ux", "uniform":
		return Uniform{}, nil
	}
	return nil, fmt.Errorf("operators: unknown crossover %q", name)
}

// Mutation perturbs a schedule in place, maintaining CT incrementally.
type Mutation interface {
	Name() string
	Mutate(s *schedule.Schedule, r *rng.Rand)
}

// Move is the paper's mutation: one randomly chosen task moves to a
// randomly chosen machine (Table 1).
type Move struct{}

// Name implements Mutation.
func (Move) Name() string { return "move" }

// Mutate implements Mutation.
func (Move) Mutate(s *schedule.Schedule, r *rng.Rand) {
	t := r.Intn(len(s.S))
	s.Move(t, r.Intn(s.Inst.M))
}

// Swap exchanges the machines of two randomly chosen tasks.
type Swap struct{}

// Name implements Mutation.
func (Swap) Name() string { return "swap" }

// Mutate implements Mutation.
func (Swap) Mutate(s *schedule.Schedule, r *rng.Rand) {
	if len(s.S) < 2 {
		return
	}
	a := r.Intn(len(s.S))
	b := r.Intn(len(s.S))
	for b == a {
		b = r.Intn(len(s.S))
	}
	ma, mb := s.S[a], s.S[b]
	s.Move(a, mb)
	s.Move(b, ma)
}

// Rebalance moves a random task from the makespan machine to the least
// loaded machine — a greedy mutation that complements H2LL in ablations.
type Rebalance struct{}

// Name implements Mutation.
func (Rebalance) Name() string { return "rebalance" }

// Mutate implements Mutation.
func (Rebalance) Mutate(s *schedule.Schedule, r *rng.Rand) {
	worst, _ := s.MakespanMachine()
	task := s.RandomTaskOn(worst, r)
	if task < 0 {
		return
	}
	best := 0
	for m := 1; m < s.Inst.M; m++ {
		if s.CT[m] < s.CT[best] {
			best = m
		}
	}
	s.Move(task, best)
}

// ParseMutation resolves mutation names used on command lines.
func ParseMutation(name string) (Mutation, error) {
	switch name {
	case "move":
		return Move{}, nil
	case "swap":
		return Swap{}, nil
	case "rebalance":
		return Rebalance{}, nil
	}
	return nil, fmt.Errorf("operators: unknown mutation %q", name)
}

// Replacement decides whether the offspring replaces the current
// individual.
type Replacement int

const (
	// ReplaceIfBetter installs the offspring only on strict makespan
	// improvement — the paper's policy (Table 1).
	ReplaceIfBetter Replacement = iota
	// ReplaceIfBetterOrEqual also accepts equal fitness, allowing
	// neutral drift across plateaus.
	ReplaceIfBetterOrEqual
	// ReplaceAlways installs the offspring unconditionally.
	ReplaceAlways
)

// String implements fmt.Stringer.
func (p Replacement) String() string {
	switch p {
	case ReplaceIfBetter:
		return "if-better"
	case ReplaceIfBetterOrEqual:
		return "if-better-or-equal"
	case ReplaceAlways:
		return "always"
	default:
		return fmt.Sprintf("Replacement(%d)", int(p))
	}
}

// ParseReplacement resolves replacement-policy names.
func ParseReplacement(name string) (Replacement, error) {
	switch name {
	case "if-better":
		return ReplaceIfBetter, nil
	case "if-better-or-equal":
		return ReplaceIfBetterOrEqual, nil
	case "always":
		return ReplaceAlways, nil
	}
	return 0, fmt.Errorf("operators: unknown replacement %q", name)
}

// Accepts reports whether an offspring with the given makespan replaces a
// current individual with makespan cur.
func (p Replacement) Accepts(cur, offspring float64) bool {
	switch p {
	case ReplaceIfBetter:
		return offspring < cur
	case ReplaceIfBetterOrEqual:
		return offspring <= cur
	case ReplaceAlways:
		return true
	default:
		panic(fmt.Sprintf("operators: unknown replacement %d", int(p)))
	}
}

// LocalSearch improves a schedule in place and reports how many improving
// moves it made.
type LocalSearch interface {
	Name() string
	Apply(s *schedule.Schedule, r *rng.Rand) (moves int)
}

// H2LL is the paper's new local search operator (Algorithm 4), "High to
// Low Load": each iteration picks a random task on the most loaded
// machine (which defines the makespan) and moves it to whichever of the
// Candidates least-loaded machines ends up with the smallest new
// completion time, provided that new completion time stays below the
// current makespan. Completion times stay incremental throughout.
type H2LL struct {
	// Iterations is the number of passes (the paper evaluates 5 and 10;
	// 0 disables the operator entirely, the Fig. 4 "0 iteration" series).
	Iterations int
	// Candidates is the size N of the least-loaded candidate set; 0
	// means machines/2, the value implied by Algorithm 4.
	Candidates int
}

// Name implements LocalSearch.
func (h H2LL) Name() string { return fmt.Sprintf("h2ll/%d", h.Iterations) }

// h2llScratch is the pooled per-call state of H2LL.Apply: the scratch
// arena behind the batched move-scoring and rank-selection kernels.
// Pooling keeps Apply — called once per offspring on every worker —
// off the allocator.
type h2llScratch struct {
	sc schedule.Scratch
}

var h2llPool = sync.Pool{New: func() any { return new(h2llScratch) }}

// Apply implements LocalSearch. Each iteration reads the makespan
// machine in O(1) from the schedule's max index, then picks the move in
// three flat O(machines) passes: a quickselect for the rank-Candidates
// threshold machine, one contiguous move-scoring sweep, and one scan
// over the completion-time lane. The historical implementation
// materialized the sorted least-loaded candidate list (heap selection
// plus heapsort) and walked it in order with a strict comparison; the
// first strictly-smallest score along that ascending (CT, index) walk
// is exactly the lexicographic minimum of (score, CT, index) over the
// candidate set, so the scan below — membership by two comparisons
// against the threshold machine, winner by lexicographic key — selects
// the bit-identical move without building the list.
func (h H2LL) Apply(s *schedule.Schedule, r *rng.Rand) int {
	if h.Iterations <= 0 {
		return 0
	}
	m := s.Inst.M
	ncand := h.Candidates
	if ncand <= 0 {
		ncand = m / 2
	}
	if ncand > m-1 {
		ncand = m - 1 // never consider the makespan machine itself
	}
	if ncand < 1 {
		return 0
	}
	ws := h2llPool.Get().(*h2llScratch)
	defer h2llPool.Put(ws)
	moves := 0
	for it := 0; it < h.Iterations; it++ {
		worst, worstCT := s.MakespanMachine()
		task := s.RandomTaskOn(worst, r)
		if task < 0 {
			// The makespan machine holds no task (all load is ready
			// time); nothing can move, and further iterations would pick
			// the same machine.
			break
		}
		// thr is the first machine EXCLUDED from the least-loaded set:
		// a machine is a candidate iff machineLess(mac, thr), i.e. its
		// (CT, index) key is below the threshold's.
		thr := ws.sc.LoadRank(s, ncand)
		thrCT := s.CT[thr]
		scores := ws.sc.MoveScores(s, task)
		bestScore := worstCT
		bestMac := -1
		bestCT := 0.0
		for mac, ct := range s.CT {
			if ct > thrCT || (ct == thrCT && mac >= thr) {
				continue // not among the ncand least loaded
			}
			// A candidate can tie-collide with the makespan machine
			// itself; the strict < against worstCT (ETC is positive)
			// keeps self-moves impossible.
			newScore := scores[mac]
			if newScore < bestScore ||
				(newScore == bestScore && bestMac >= 0 && ct < bestCT) {
				bestScore, bestMac, bestCT = newScore, mac, ct
			}
		}
		if bestMac >= 0 {
			s.Move(task, bestMac)
			moves++
		}
	}
	return moves
}

// NullSearch is a LocalSearch that does nothing; used where an explicit
// "no local search" value reads better than H2LL{Iterations: 0}.
type NullSearch struct{}

// Name implements LocalSearch.
func (NullSearch) Name() string { return "none" }

// Apply implements LocalSearch.
func (NullSearch) Apply(*schedule.Schedule, *rng.Rand) int { return 0 }
