package operators

import (
	"math"
	"testing"

	"gridsched/internal/etc"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

// referenceH2LLApply is the historical H2LL implementation, kept
// verbatim as the scalar reference: materialize the sorted least-loaded
// candidate list with the heap-based LeastLoaded and walk it in order
// with per-element strict comparisons. The production Apply replaces
// the list with a rank threshold and a flat lexicographic scan; this
// reference pins the required bit-identical behavior.
func referenceH2LLApply(h H2LL, s *schedule.Schedule, r *rng.Rand) int {
	if h.Iterations <= 0 {
		return 0
	}
	m := s.Inst.M
	ncand := h.Candidates
	if ncand <= 0 {
		ncand = m / 2
	}
	if ncand > m-1 {
		ncand = m - 1
	}
	if ncand < 1 {
		return 0
	}
	var cand []int
	moves := 0
	for it := 0; it < h.Iterations; it++ {
		worst, worstCT := s.MakespanMachine()
		task := s.RandomTaskOn(worst, r)
		if task < 0 {
			break
		}
		cand = s.LeastLoaded(cand, ncand)
		bestScore := worstCT
		bestMac := -1
		for _, mac := range cand {
			if newScore := s.CT[mac] + s.Inst.ETC(task, mac); newScore < bestScore {
				bestScore = newScore
				bestMac = mac
			}
		}
		if bestMac >= 0 {
			s.Move(task, bestMac)
			moves++
		}
	}
	return moves
}

// TestH2LLApplyMatchesReference property-tests the production H2LL
// against the scalar reference: identical RNG streams must yield
// identical move counts, assignments and bit-identical makespans, over
// instance geometries covering tiny machine counts, candidate-set
// clamping and the default Candidates = machines/2.
func TestH2LLApplyMatchesReference(t *testing.T) {
	shapes := []struct{ tasks, machines int }{
		{16, 2},
		{64, 5},
		{200, 16},
		{300, 40},
	}
	for _, sh := range shapes {
		in, err := etc.Generate(etc.GenSpec{
			Class:    etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High},
			Tasks:    sh.tasks,
			Machines: sh.machines,
			Seed:     uint64(7*sh.tasks + sh.machines),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, ncand := range []int{0, 1, 3, sh.machines, sh.machines + 5} {
			h := H2LL{Iterations: 12, Candidates: ncand}
			seed := uint64(100*sh.tasks + 10*sh.machines + ncand)
			s1 := schedule.NewRandom(in, rng.New(seed))
			s2 := s1.Clone()
			r1 := rng.New(seed + 1)
			r2 := rng.New(seed + 1)

			// Several rounds so any divergence compounds and is caught.
			for round := 0; round < 4; round++ {
				m1 := h.Apply(s1, r1)
				m2 := referenceH2LLApply(h, s2, r2)
				if m1 != m2 {
					t.Fatalf("%dx%d ncand=%d round %d: %d moves, reference made %d",
						sh.tasks, sh.machines, ncand, round, m1, m2)
				}
				for task := range s1.S {
					if s1.S[task] != s2.S[task] {
						t.Fatalf("%dx%d ncand=%d round %d: S[%d] = %d, reference has %d",
							sh.tasks, sh.machines, ncand, round, task, s1.S[task], s2.S[task])
					}
				}
				if b1, b2 := math.Float64bits(s1.Makespan()), math.Float64bits(s2.Makespan()); b1 != b2 {
					t.Fatalf("%dx%d ncand=%d round %d: makespan bits %x, reference %x",
						sh.tasks, sh.machines, ncand, round, b1, b2)
				}
			}
		}
	}
}
