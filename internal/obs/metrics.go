// Package obs is the repository's dependency-free observability kit:
// a metrics registry with Prometheus text-format exposition, structured
// request logging helpers on top of log/slog, and a lightweight span
// recorder for job lifecycles and solver convergence traces.
//
// The metrics side deliberately implements only what the service needs
// — atomic counters, gauges, fixed-bucket histograms, and label vectors
// with a small, known cardinality — so the hot paths are a single
// atomic add with zero allocations, and the exposition format stays a
// few hundred lines of plain code instead of a client library.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; Inc/Add are a single atomic add.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready
// to use; Set is an atomic store, Add a CAS loop on the float bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Buckets are the
// ascending upper bounds; counts[i] holds observations ≤ bounds[i]
// (non-cumulative internally), counts[len(bounds)] the +Inf overflow.
// Observe is lock-free: one binary search plus two atomic adds and a
// CAS loop for the sum.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. It panics on unsorted or empty bounds — histogram shapes are
// static configuration, not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExpBuckets returns n bounds starting at start, each factor times the
// previous — the standard log-spaced latency layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound ≥ v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metricKind drives the TYPE line and exposition shape.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered family: either a single unlabeled series or
// a vector of labeled children.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels []string // label names for vectors; nil for plain series

	// Exactly one of these is set for plain series.
	counter     *Counter
	gauge       *Gauge
	histogram   *Histogram
	counterFunc func() int64
	gaugeFunc   func() float64

	// Vector children, keyed by joined label values.
	mu       sync.Mutex
	children map[string]*child
	bounds   []float64 // histogram vector bucket layout
}

type child struct {
	values    []string
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// Registry holds metric families and renders them in Prometheus text
// exposition format 0.0.4. The zero value is not usable; construct
// with NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

var nameRe = func(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) register(m *metric) {
	if !nameRe(m.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.name))
	}
	for _, l := range m.labels {
		if !nameRe(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, m.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.metrics[m.name] = m
	r.order = append(r.order, m.name)
}

// Counter registers and returns a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// Histogram registers and returns a plain histogram over bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(&metric{name: name, help: help, kind: kindHistogram, histogram: h})
	return h
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — for counters owned elsewhere (the instance cache).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, counterFunc: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, gaugeFunc: fn})
}

// CounterVec is a counter family with one child per label-value tuple.
type CounterVec struct{ m *metric }

// GaugeVec is a gauge family with one child per label-value tuple.
type GaugeVec struct{ m *metric }

// HistogramVec is a histogram family with one child per label-value
// tuple, all sharing one bucket layout.
type HistogramVec struct{ m *metric }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	m := &metric{name: name, help: help, kind: kindCounter, labels: labels, children: map[string]*child{}}
	r.register(m)
	return &CounterVec{m}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	m := &metric{name: name, help: help, kind: kindGauge, labels: labels, children: map[string]*child{}}
	r.register(m)
	return &GaugeVec{m}
}

// HistogramVec registers a labeled histogram family over bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(bounds) == 0 {
		panic("obs: histogram vector needs bucket bounds")
	}
	m := &metric{name: name, help: help, kind: kindHistogram, labels: labels,
		children: map[string]*child{}, bounds: append([]float64(nil), bounds...)}
	r.register(m)
	return &HistogramVec{m}
}

func (m *metric) child(values []string) *child {
	if len(values) != len(m.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", m.name, len(m.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.children[key]
	if !ok {
		c = &child{values: append([]string(nil), values...)}
		switch m.kind {
		case kindCounter:
			c.counter = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		case kindHistogram:
			c.histogram = NewHistogram(m.bounds)
		}
		m.children[key] = c
	}
	return c
}

// With returns (creating on first use) the child counter for the label
// values. Callers with hot paths should look children up once and keep
// the handle.
func (v *CounterVec) With(values ...string) *Counter { return v.m.child(values).counter }

// With returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.m.child(values).gauge }

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.m.child(values).histogram }

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, `\"`+"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func labelString(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if len(names) > 0 || i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extra[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func writeHistogram(b *strings.Builder, name, labels string, names, values []string, h *Histogram) {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			labelString(names, values, "le", formatValue(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelString(names, values, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.Count())
}

// Expose renders every registered family in Prometheus text exposition
// format 0.0.4. Families appear in registration order; vector children
// are sorted by label values so scrapes are deterministic.
func (r *Registry) Expose() string {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]*metric, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, m := range metrics {
		typ := "counter"
		switch m.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, strings.ReplaceAll(m.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, typ)

		if m.children != nil {
			m.mu.Lock()
			kids := make([]*child, 0, len(m.children))
			for _, c := range m.children {
				kids = append(kids, c)
			}
			m.mu.Unlock()
			sort.Slice(kids, func(i, j int) bool {
				return strings.Join(kids[i].values, "\x00") < strings.Join(kids[j].values, "\x00")
			})
			for _, c := range kids {
				labels := labelString(m.labels, c.values)
				switch m.kind {
				case kindCounter:
					fmt.Fprintf(&b, "%s%s %d\n", m.name, labels, c.counter.Value())
				case kindGauge:
					fmt.Fprintf(&b, "%s%s %s\n", m.name, labels, formatValue(c.gauge.Value()))
				case kindHistogram:
					writeHistogram(&b, m.name, labels, m.labels, c.values, c.histogram)
				}
			}
			continue
		}
		switch {
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case m.counterFunc != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counterFunc())
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatValue(m.gauge.Value()))
		case m.gaugeFunc != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatValue(m.gaugeFunc()))
		case m.histogram != nil:
			writeHistogram(&b, m.name, "", nil, nil, m.histogram)
		}
	}
	return b.String()
}

// ContentType is the exposition format content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry's exposition —
// mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_, _ = w.Write([]byte(r.Expose()))
	})
}
