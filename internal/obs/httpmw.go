package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// RequestIDHeader is the header the access-log middleware reads an
// inbound request ID from and echoes the effective ID back on.
const RequestIDHeader = "X-Request-Id"

// statusWriter captures the response status and byte count.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps next with structured request logging: every request
// gets a request ID (inbound X-Request-Id or freshly generated),
// echoed on the response and attached to the request context, and one
// slog line records method, path, status, bytes, duration and the ID.
func AccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(WithRequestID(r.Context(), id)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		logger.Info("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration", time.Since(start),
			"request_id", id,
		)
	})
}

// Instrument wraps next so every response increments requests with
// labels {code, method} — mount outside (or inside) AccessLog; the two
// are independent.
func Instrument(requests *CounterVec, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		//lint:ignore metrichygiene status codes are server-chosen from a small fixed set; the method label is bounded by methodLabel below
		requests.With(strconv.Itoa(sw.status), methodLabel(r.Method)).Inc()
	})
}

// methodLabel folds the request method into a closed label set. The
// method string is client-controlled (any token is a syntactically
// valid method), so using it verbatim would let clients mint unbounded
// label values; anything beyond the standard methods becomes "other".
func methodLabel(m string) string {
	switch m {
	case "GET":
		return "GET"
	case "HEAD":
		return "HEAD"
	case "POST":
		return "POST"
	case "PUT":
		return "PUT"
	case "PATCH":
		return "PATCH"
	case "DELETE":
		return "DELETE"
	case "OPTIONS":
		return "OPTIONS"
	default:
		return "other"
	}
}
