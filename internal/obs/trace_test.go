package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"gridsched/internal/solver"
)

func TestTimelineSpans(t *testing.T) {
	var tl Timeline
	tl.Mark("queued")
	tl.Mark("solving")
	tl.Mark("succeeded")

	spans := tl.Spans(time.Time{})
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	wantPhases := []string{"queued", "solving", "succeeded"}
	for i, s := range spans {
		if s.Phase != wantPhases[i] {
			t.Errorf("span %d phase = %q, want %q", i, s.Phase, wantPhases[i])
		}
		if s.Start < 0 || s.Duration < 0 {
			t.Errorf("span %d has negative time: %+v", i, s)
		}
	}
	// Terminal timeline with zero now: last span is zero-length.
	if spans[2].Duration != 0 {
		t.Errorf("terminal span duration = %v, want 0", spans[2].Duration)
	}
	// A live timeline measures the open span to now.
	live := tl.Spans(time.Now().Add(time.Hour))
	if live[2].Duration < time.Hour-time.Minute {
		t.Errorf("open span = %v, want ≈1h", live[2].Duration)
	}
}

func TestRecorderCapAndDropped(t *testing.T) {
	r := NewRecorder(2)
	r.Improved(solver.Event{Fitness: 3})
	r.Improved(solver.Event{Fitness: 2})
	r.Improved(solver.Event{Fitness: 1}) // over cap: dropped
	r.Done(solver.Event{Fitness: 1})     // terminal events always kept

	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3 (2 improvements + done)", len(ev))
	}
	if ev[2].Kind != "done" {
		t.Errorf("last event kind = %q, want done", ev[2].Kind)
	}
	if got := r.Dropped(); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Improved(solver.Event{Lane: "l", Evals: int64(i), Fitness: float64(i)})
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Events()); got != 800 {
		t.Errorf("got %d events, want 800", got)
	}
}

func TestWriteConvergenceCSV(t *testing.T) {
	events := []RecordedEvent{
		{Kind: "improved", Lane: "tabu", Evals: 100, Elapsed: 1500 * time.Microsecond, Fitness: 42.5},
		{Kind: "done", Evals: 4000, Elapsed: 20 * time.Millisecond, Fitness: 40},
	}
	var b strings.Builder
	if err := WriteConvergenceCSV(&b, "portfolio", "u_c_hihi", events, true); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := ConvergenceCSVHeader + "\n" +
		"portfolio,u_c_hihi,tabu,improved,100,1.500,42.5\n" +
		"portfolio,u_c_hihi,,done,4000,20.000,40\n"
	if got != want {
		t.Errorf("csv mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestCSVFieldSanitizing(t *testing.T) {
	if got := csvField("a,b\"c"); got != "a;b;c" {
		t.Errorf("csvField = %q, want a;b;c", got)
	}
	if got := csvField("clean"); got != "clean" {
		t.Errorf("csvField = %q, want clean (unchanged)", got)
	}
}
