package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExposeGolden pins the exact exposition output for a registry
// exercising every metric shape — the format contract /metrics serves.
func TestExposeGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("jobs_total", "Jobs submitted.")
	c.Add(3)
	g := r.Gauge("queue_depth", "Jobs waiting.")
	g.Set(2)
	g.Add(-1)
	h := r.Histogram("latency_seconds", "Job latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)

	cv := r.CounterVec("http_requests_total", "HTTP requests.", "code", "method")
	cv.With("200", "GET").Add(7)
	cv.With("404", "GET").Inc()
	cv.With("200", "POST").Add(2)

	hv := r.HistogramVec("solve_seconds", "Solve latency.", []float64{1, 2}, "solver")
	hv.With("tabu").Observe(1.5)

	r.CounterFunc("cache_hits_total", "Cache hits.", func() int64 { return 42 })
	r.GaugeFunc("uptime_seconds", "Uptime.", func() float64 { return 12.5 })

	want := `# HELP jobs_total Jobs submitted.
# TYPE jobs_total counter
jobs_total 3
# HELP queue_depth Jobs waiting.
# TYPE queue_depth gauge
queue_depth 1
# HELP latency_seconds Job latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="10"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 100.55
latency_seconds_count 3
# HELP http_requests_total HTTP requests.
# TYPE http_requests_total counter
http_requests_total{code="200",method="GET"} 7
http_requests_total{code="200",method="POST"} 2
http_requests_total{code="404",method="GET"} 1
# HELP solve_seconds Solve latency.
# TYPE solve_seconds histogram
solve_seconds_bucket{solver="tabu",le="1"} 0
solve_seconds_bucket{solver="tabu",le="2"} 1
solve_seconds_bucket{solver="tabu",le="+Inf"} 1
solve_seconds_sum{solver="tabu"} 1.5
solve_seconds_count{solver="tabu"} 1
# HELP cache_hits_total Cache hits.
# TYPE cache_hits_total counter
cache_hits_total 42
# HELP uptime_seconds Uptime.
# TYPE uptime_seconds gauge
uptime_seconds 12.5
`
	got := r.Expose()
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHandler checks the HTTP wrapper serves the exposition with the
// 0.0.4 content type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("content type = %q, want %q", ct, ContentType)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestLabelEscaping pins backslash/quote/newline escaping in label
// values.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("weird_total", "", "path")
	cv.With("a\\b\"c\nd").Inc()
	got := r.Expose()
	want := `weird_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(got, want) {
		t.Errorf("exposition %q missing escaped label %q", got, want)
	}
}

// TestHotPathAllocations asserts the metric write paths allocate
// nothing — the zero-overhead contract the service relies on.
func TestHotPathAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", ExpBuckets(0.001, 4, 8))
	cv := r.CounterVec("cv_total", "", "k")
	cc := cv.With("v") // resolve the child outside the hot loop

	cases := []struct {
		name string
		fn   func()
	}{
		{"CounterInc", func() { c.Inc() }},
		{"CounterAdd", func() { c.Add(3) }},
		{"GaugeSet", func() { g.Set(1.5) }},
		{"GaugeAdd", func() { g.Add(-0.5) }},
		{"HistogramObserve", func() { h.Observe(0.02) }},
		{"VecChildInc", func() { cc.Inc() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestConcurrentWritesAndScrapes hammers every metric kind from many
// goroutines while scraping — run under -race this is the data-race
// proof for the lock-free paths.
func TestConcurrentWritesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 4})
	cv := r.CounterVec("cv_total", "", "w")

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 5))
				cv.With(lbl).Inc()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = r.Expose()
		}
	}()
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestHistogramBucketEdges pins the ≤-bound bucketing rule.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1) // lands in le="1" (bounds are inclusive)
	h.Observe(2)
	h.Observe(3)
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("bucket le=1 = %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Errorf("bucket le=2 = %d, want 1", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Errorf("overflow bucket = %d, want 1", got)
	}
}

// TestDuplicateRegistrationPanics pins that the registry rejects
// duplicate names loudly at wiring time.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "")
}
