package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"gridsched/internal/solver"
)

// Span is one phase of a job's lifecycle: the interval between two
// consecutive timeline marks (the last span runs to "now" or to the
// timeline's final mark).
type Span struct {
	// Phase is the name of the mark opening the span.
	Phase string `json:"phase"`
	// Start is the offset from the timeline's first mark.
	Start time.Duration `json:"start"`
	// Duration is the span length.
	Duration time.Duration `json:"duration"`
}

// Timeline records a job's lifecycle as ordered named marks and
// renders them as per-phase spans. It is safe for concurrent use; the
// expected writer pattern is one mark per state transition.
type Timeline struct {
	mu    sync.Mutex
	names []string
	times []time.Time
}

// Mark appends a named instant. Duplicate consecutive names are
// recorded as-is — the caller owns the state machine.
func (t *Timeline) Mark(name string) {
	t.mu.Lock()
	t.names = append(t.names, name)
	t.times = append(t.times, time.Now())
	t.mu.Unlock()
}

// Spans renders the marks as phases: mark i opens a span closed by
// mark i+1; the final mark's span is closed by now (pass time.Time{}
// to use the final mark itself, yielding a zero-length last span for
// terminal states).
func (t *Timeline) Spans(now time.Time) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.names) == 0 {
		return nil
	}
	out := make([]Span, len(t.names))
	base := t.times[0]
	for i := range t.names {
		end := now
		if i+1 < len(t.times) {
			end = t.times[i+1]
		} else if now.IsZero() {
			end = t.times[i]
		}
		out[i] = Span{
			Phase:    t.names[i],
			Start:    t.times[i].Sub(base),
			Duration: end.Sub(t.times[i]),
		}
	}
	return out
}

// RecordedEvent is one convergence event captured by a Recorder.
type RecordedEvent struct {
	// Kind is "improved" for incumbent improvements, "done" for the
	// terminal event.
	Kind string `json:"kind"`
	// Lane is the engine family's lane label ("" outside a portfolio).
	Lane string `json:"lane,omitempty"`
	// Evals is the engine-family evaluation count at the event.
	Evals int64 `json:"evals"`
	// Elapsed is wall time since the root engine started.
	Elapsed time.Duration `json:"elapsed"`
	// Fitness is the fitness at the event.
	Fitness float64 `json:"fitness"`
}

// Recorder is a bounded, concurrency-safe solver.Observer that keeps
// the convergence event series in memory — the service attaches one
// per job, the CLIs one per run. Once the bound is reached further
// improvement events are counted as dropped rather than stored
// (terminal events are always kept).
type Recorder struct {
	mu      sync.Mutex
	events  []RecordedEvent
	max     int
	dropped int64
}

// DefaultRecorderCap bounds a Recorder constructed with max <= 0. A
// solver improving its incumbent more than this many times in one job
// is pathological; the cap keeps a job's trace memory bounded.
const DefaultRecorderCap = 4096

// NewRecorder returns a Recorder keeping at most max events (max <= 0
// means DefaultRecorderCap).
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultRecorderCap
	}
	return &Recorder{max: max}
}

// Improved implements solver.Observer.
func (r *Recorder) Improved(ev solver.Event) { r.record("improved", ev, false) }

// Done implements solver.Observer.
func (r *Recorder) Done(ev solver.Event) { r.record("done", ev, true) }

func (r *Recorder) record(kind string, ev solver.Event, always bool) {
	r.mu.Lock()
	if len(r.events) >= r.max && !always {
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.events = append(r.events, RecordedEvent{
		Kind:    kind,
		Lane:    ev.Lane,
		Evals:   ev.Evals,
		Elapsed: ev.Elapsed,
		Fitness: ev.Fitness,
	})
	r.mu.Unlock()
}

// Events returns a copy of the captured series in arrival order.
func (r *Recorder) Events() []RecordedEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RecordedEvent(nil), r.events...)
}

// Dropped returns how many improvement events the cap discarded.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ConvergenceCSVHeader is the column layout WriteConvergenceCSV emits.
const ConvergenceCSVHeader = "solver,instance,lane,kind,evals,elapsed_ms,fitness"

// WriteConvergenceCSV appends one row per event, tagged with the
// solver and instance names. Call once with writeHeader=true for the
// first block of a file; subsequent blocks append rows only.
func WriteConvergenceCSV(w io.Writer, solverName, instance string, events []RecordedEvent, writeHeader bool) error {
	if writeHeader {
		if _, err := fmt.Fprintln(w, ConvergenceCSVHeader); err != nil {
			return err
		}
	}
	for _, ev := range events {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%s,%d,%.3f,%g\n",
			csvField(solverName), csvField(instance), csvField(ev.Lane), ev.Kind,
			ev.Evals, float64(ev.Elapsed)/float64(time.Millisecond), ev.Fitness)
		if err != nil {
			return err
		}
	}
	return nil
}

// csvField keeps the writer dependency-free: solver and instance names
// in this repo never need quoting, but a comma would corrupt the file,
// so it is replaced defensively.
func csvField(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ',' || s[i] == '\n' || s[i] == '"' {
			b := []byte(s)
			for j, c := range b {
				if c == ',' || c == '\n' || c == '"' {
					b[j] = ';'
				}
			}
			return string(b)
		}
	}
	return s
}
