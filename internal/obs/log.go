package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// requestIDKey carries the request ID through a context.
type requestIDKey struct{}

// NewRequestID returns a fresh 16-hex-character request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; an all-zero
		// ID still keeps requests traceable by position in the log.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the context's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
