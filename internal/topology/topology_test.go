package topology

import (
	"testing"
	"testing/quick"

	"gridsched/internal/rng"
)

func mustGrid(t *testing.T, w, h int) Grid {
	t.Helper()
	g, err := NewGrid(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridIndexCoordRoundTrip(t *testing.T) {
	g := mustGrid(t, 16, 16)
	for i := 0; i < g.Size(); i++ {
		x, y := g.Coord(i)
		if g.Index(x, y) != i {
			t.Fatalf("round trip failed for %d", i)
		}
	}
}

func TestGridWrapping(t *testing.T) {
	g := mustGrid(t, 4, 3)
	if g.Index(-1, 0) != g.Index(3, 0) {
		t.Fatal("x wrap failed")
	}
	if g.Index(0, -1) != g.Index(0, 2) {
		t.Fatal("y wrap failed")
	}
	if g.Index(4, 3) != g.Index(0, 0) {
		t.Fatal("positive wrap failed")
	}
	if g.Index(-5, -4) != g.Index(3, 2) {
		t.Fatal("multi-wrap failed")
	}
}

func TestNewGridRejectsBadDims(t *testing.T) {
	if _, err := NewGrid(0, 4); err == nil {
		t.Fatal("accepted zero width")
	}
	if _, err := NewGrid(4, -1); err == nil {
		t.Fatal("accepted negative height")
	}
}

func TestManhattanDistanceTorus(t *testing.T) {
	g := mustGrid(t, 8, 8)
	a := g.Index(0, 0)
	b := g.Index(7, 0)
	if d := g.ManhattanDistance(a, b); d != 1 {
		t.Fatalf("wrap distance %d, want 1", d)
	}
	c := g.Index(4, 4)
	if d := g.ManhattanDistance(a, c); d != 8 {
		t.Fatalf("antipodal distance %d, want 8", d)
	}
	if g.ManhattanDistance(a, a) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestManhattanSymmetryProperty(t *testing.T) {
	g := mustGrid(t, 16, 16)
	f := func(aRaw, bRaw uint16) bool {
		a := int(aRaw) % g.Size()
		b := int(bRaw) % g.Size()
		return g.ManhattanDistance(a, b) == g.ManhattanDistance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestL5Neighborhood(t *testing.T) {
	g := mustGrid(t, 16, 16)
	buf := L5.Neighbors(g, g.Index(5, 5), nil)
	if len(buf) != 5 {
		t.Fatalf("L5 size %d, want 5", len(buf))
	}
	if buf[0] != g.Index(5, 5) {
		t.Fatal("center not first")
	}
	want := map[int]bool{
		g.Index(5, 5): true, g.Index(5, 4): true, g.Index(5, 6): true,
		g.Index(4, 5): true, g.Index(6, 5): true,
	}
	for _, c := range buf {
		if !want[c] {
			t.Fatalf("unexpected L5 member %d", c)
		}
	}
}

func TestL5AllDistanceOne(t *testing.T) {
	g := mustGrid(t, 16, 16)
	for i := 0; i < g.Size(); i++ {
		for _, c := range L5.Neighbors(g, i, nil)[1:] {
			if g.ManhattanDistance(i, c) != 1 {
				t.Fatalf("L5 neighbor %d of %d at distance %d", c, i, g.ManhattanDistance(i, c))
			}
		}
	}
}

func TestC9Neighborhood(t *testing.T) {
	g := mustGrid(t, 16, 16)
	buf := C9.Neighbors(g, 0, nil)
	if len(buf) != 9 {
		t.Fatalf("C9 size %d, want 9", len(buf))
	}
}

func TestL9Neighborhood(t *testing.T) {
	g := mustGrid(t, 16, 16)
	buf := L9.Neighbors(g, g.Index(8, 8), nil)
	if len(buf) != 9 {
		t.Fatalf("L9 size %d, want 9", len(buf))
	}
	for _, c := range buf[1:] {
		if d := g.ManhattanDistance(g.Index(8, 8), c); d != 1 && d != 2 {
			t.Fatalf("L9 member at distance %d", d)
		}
	}
}

func TestNeighborhoodDedupOnTinyGrid(t *testing.T) {
	g := mustGrid(t, 2, 2)
	buf := C9.Neighbors(g, 0, nil)
	seen := map[int]bool{}
	for _, c := range buf {
		if seen[c] {
			t.Fatalf("duplicate neighbor %d on tiny grid: %v", c, buf)
		}
		seen[c] = true
	}
	if len(buf) != 4 { // the whole 2x2 grid
		t.Fatalf("tiny grid C9 has %d members, want 4", len(buf))
	}
	l5 := L5.Neighbors(mustGrid(t, 1, 1), 0, nil)
	if len(l5) != 1 {
		t.Fatalf("1x1 grid L5 = %v", l5)
	}
}

func TestNeighborhoodSymmetryProperty(t *testing.T) {
	// If b is in N(a), then a is in N(b): neighborhood overlap is what
	// makes information spread through the cellular population.
	g := mustGrid(t, 16, 16)
	for _, n := range []Neighborhood{L5, C9, L9} {
		f := func(cellRaw uint16) bool {
			a := int(cellRaw) % g.Size()
			for _, b := range n.Neighbors(g, a, nil)[1:] {
				found := false
				for _, back := range n.Neighbors(g, b, nil)[1:] {
					if back == a {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
			t.Fatalf("%v: %v", n, err)
		}
	}
}

func TestNeighborhoodParseString(t *testing.T) {
	for _, n := range []Neighborhood{L5, C9, L9} {
		got, err := ParseNeighborhood(n.String())
		if err != nil || got != n {
			t.Fatalf("parse %v -> %v, %v", n, got, err)
		}
	}
	if _, err := ParseNeighborhood("X3"); err == nil {
		t.Fatal("accepted bogus neighborhood")
	}
}

func TestPartitionExact(t *testing.T) {
	blocks, err := Partition(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("%d blocks", len(blocks))
	}
	for i, b := range blocks {
		if b.Len() != 64 {
			t.Fatalf("block %d has %d cells, want 64", i, b.Len())
		}
	}
	if blocks[0].Start != 0 || blocks[3].End != 256 {
		t.Fatal("blocks do not tile the population")
	}
}

func TestPartitionRemainder(t *testing.T) {
	blocks, err := Partition(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	lens := []int{blocks[0].Len(), blocks[1].Len(), blocks[2].Len()}
	if lens[0] != 4 || lens[1] != 3 || lens[2] != 3 {
		t.Fatalf("remainder distribution %v", lens)
	}
	// Contiguity.
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Start != blocks[i-1].End {
			t.Fatal("blocks are not contiguous")
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(0, 1); err == nil {
		t.Fatal("accepted empty population")
	}
	if _, err := Partition(4, 0); err == nil {
		t.Fatal("accepted zero blocks")
	}
	if _, err := Partition(3, 5); err == nil {
		t.Fatal("accepted more blocks than cells")
	}
}

func TestPartitionCoversProperty(t *testing.T) {
	f := func(sizeRaw, nRaw uint8) bool {
		size := int(sizeRaw)%500 + 1
		n := int(nRaw)%size + 1
		blocks, err := Partition(size, n)
		if err != nil {
			return false
		}
		covered := 0
		for _, b := range blocks {
			if b.Len() <= 0 {
				return false
			}
			covered += b.Len()
		}
		return covered == size && blocks[0].Start == 0 && blocks[len(blocks)-1].End == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockOf(t *testing.T) {
	blocks, _ := Partition(16, 4)
	if BlockOf(blocks, 0) != 0 || BlockOf(blocks, 15) != 3 || BlockOf(blocks, 7) != 1 {
		t.Fatal("BlockOf misassigns")
	}
	if BlockOf(blocks, 16) != -1 {
		t.Fatal("BlockOf accepted out-of-range cell")
	}
}

func TestBoundaryCellsGrowWithThreads(t *testing.T) {
	// The §4.2 argument: more threads => smaller blocks => a larger
	// fraction of boundary cells. Verify monotonicity on the paper's
	// 16x16 grid with L5.
	g := mustGrid(t, 16, 16)
	prevFrac := -1.0
	for _, threads := range []int{1, 2, 4, 8} {
		blocks, err := Partition(g.Size(), threads)
		if err != nil {
			t.Fatal(err)
		}
		boundary := 0
		for b := range blocks {
			boundary += len(BoundaryCells(g, L5, blocks, b))
		}
		frac := float64(boundary) / float64(g.Size())
		if frac < prevFrac {
			t.Fatalf("boundary fraction decreased with more threads: %v -> %v at %d threads", prevFrac, frac, threads)
		}
		prevFrac = frac
	}
	// With one thread, no neighborhood leaves the single block.
	blocks, _ := Partition(g.Size(), 1)
	if n := len(BoundaryCells(g, L5, blocks, 0)); n != 0 {
		t.Fatalf("single block reports %d boundary cells", n)
	}
}

func TestSweeperLine(t *testing.T) {
	s := NewSweeper(LineSweep, Block{Start: 4, End: 8}, rng.New(1))
	order := s.Order()
	for i, c := range order {
		if c != 4+i {
			t.Fatalf("line sweep order %v", order)
		}
	}
	// Stable across generations.
	order2 := s.Order()
	for i := range order {
		if order[i] != order2[i] {
			t.Fatal("line sweep changed between generations")
		}
	}
}

func TestSweeperFixedRandom(t *testing.T) {
	s := NewSweeper(FixedRandomSweep, Block{Start: 0, End: 64}, rng.New(2))
	first := append([]int(nil), s.Order()...)
	second := s.Order()
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("fixed random sweep changed between generations")
		}
	}
	if isSorted(first) {
		t.Fatal("fixed random sweep is suspiciously sorted (64 cells)")
	}
	assertPermutation(t, first, 0, 64)
}

func TestSweeperNewRandom(t *testing.T) {
	s := NewSweeper(NewRandomSweep, Block{Start: 0, End: 64}, rng.New(3))
	first := append([]int(nil), s.Order()...)
	second := s.Order()
	same := true
	for i := range first {
		if first[i] != second[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("new random sweep repeated a 64-cell permutation")
	}
	assertPermutation(t, second, 0, 64)
}

func TestSweepPolicyParseString(t *testing.T) {
	for _, p := range []SweepPolicy{LineSweep, FixedRandomSweep, NewRandomSweep} {
		got, err := ParseSweepPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("parse %v -> %v, %v", p, got, err)
		}
	}
	if _, err := ParseSweepPolicy("zigzag"); err == nil {
		t.Fatal("accepted bogus sweep policy")
	}
}

func isSorted(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}

func assertPermutation(t *testing.T, xs []int, lo, hi int) {
	t.Helper()
	if len(xs) != hi-lo {
		t.Fatalf("length %d, want %d", len(xs), hi-lo)
	}
	seen := map[int]bool{}
	for _, v := range xs {
		if v < lo || v >= hi || seen[v] {
			t.Fatalf("not a permutation of [%d,%d): %v", lo, hi, xs)
		}
		seen[v] = true
	}
}

func BenchmarkL5Neighbors(b *testing.B) {
	g, _ := NewGrid(16, 16)
	buf := make([]int, 0, 5)
	for i := 0; i < b.N; i++ {
		buf = L5.Neighbors(g, i%g.Size(), buf)
	}
	_ = buf
}
