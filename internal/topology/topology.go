// Package topology models the structured population of a cellular GA: a
// two-dimensional toroidal mesh of individuals, the neighborhood shapes
// that define who may mate with whom (§3.1), the contiguous row-major
// block partition that PA-CGA assigns to threads (§3.2, Fig. 2), and the
// cell sweep policies.
package topology

import (
	"fmt"

	"gridsched/internal/rng"
)

// Grid is a W×H toroidal mesh. Cells are indexed row-major: cell i lives
// at column i%W, row i/W, and all coordinate arithmetic wraps around.
type Grid struct {
	W, H int
}

// NewGrid returns a grid with the given dimensions.
func NewGrid(w, h int) (Grid, error) {
	if w <= 0 || h <= 0 {
		return Grid{}, fmt.Errorf("topology: non-positive grid %dx%d", w, h)
	}
	return Grid{W: w, H: h}, nil
}

// Size returns the number of cells.
func (g Grid) Size() int { return g.W * g.H }

// Index converts wrapped coordinates to a cell index.
func (g Grid) Index(x, y int) int {
	x = mod(x, g.W)
	y = mod(y, g.H)
	return y*g.W + x
}

// Coord converts a cell index to (column, row).
func (g Grid) Coord(i int) (x, y int) { return i % g.W, i / g.W }

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// ManhattanDistance returns the toroidal Manhattan distance between two
// cells — the metric that defines "closest individuals" in §3.1.
func (g Grid) ManhattanDistance(a, b int) int {
	ax, ay := g.Coord(a)
	bx, by := g.Coord(b)
	dx := abs(ax - bx)
	if wrap := g.W - dx; wrap < dx {
		dx = wrap
	}
	dy := abs(ay - by)
	if wrap := g.H - dy; wrap < dy {
		dy = wrap
	}
	return dx + dy
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Neighborhood is a cellular GA neighborhood shape.
type Neighborhood int

const (
	// L5 is the "linear 5" / Von Neumann neighborhood used by the paper:
	// the cell itself plus its 4 nearest neighbors (N, S, E, W). The
	// paper chooses it specifically to reduce concurrent memory access.
	L5 Neighborhood = iota
	// C9 is the "compact 9" / Moore neighborhood: the 3×3 square.
	C9
	// L9 is the "linear 9" neighborhood: the cell plus 2 steps in each
	// cardinal direction.
	L9
)

// String implements fmt.Stringer.
func (n Neighborhood) String() string {
	switch n {
	case L5:
		return "L5"
	case C9:
		return "C9"
	case L9:
		return "L9"
	default:
		return fmt.Sprintf("Neighborhood(%d)", int(n))
	}
}

// ParseNeighborhood parses the names above (case-sensitive).
func ParseNeighborhood(s string) (Neighborhood, error) {
	switch s {
	case "L5", "l5":
		return L5, nil
	case "C9", "c9":
		return C9, nil
	case "L9", "l9":
		return L9, nil
	}
	return 0, fmt.Errorf("topology: unknown neighborhood %q", s)
}

// Size returns the number of cells in the neighborhood, including the
// center cell.
func (n Neighborhood) Size() int {
	switch n {
	case L5:
		return 5
	case C9:
		return 9
	case L9:
		return 9
	default:
		return 0
	}
}

// Neighbors appends the cells of the neighborhood of center (center
// first) to buf and returns it. On tiny grids wrapped offsets may
// coincide; duplicates are removed so selection never considers the same
// individual twice.
func (n Neighborhood) Neighbors(g Grid, center int, buf []int) []int {
	x, y := g.Coord(center)
	buf = append(buf[:0], center)
	add := func(dx, dy int) {
		idx := g.Index(x+dx, y+dy)
		for _, seen := range buf {
			if seen == idx {
				return
			}
		}
		buf = append(buf, idx)
	}
	switch n {
	case L5:
		add(0, -1)
		add(-1, 0)
		add(1, 0)
		add(0, 1)
	case C9:
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				add(dx, dy)
			}
		}
	case L9:
		add(0, -2)
		add(0, -1)
		add(-2, 0)
		add(-1, 0)
		add(1, 0)
		add(2, 0)
		add(0, 1)
		add(0, 2)
	default:
		panic(fmt.Sprintf("topology: unknown neighborhood %d", int(n)))
	}
	return buf
}

// Block is a contiguous range of row-major cell indices [Start, End)
// evolved by one thread.
type Block struct {
	Start, End int
}

// Len returns the number of cells in the block.
func (b Block) Len() int { return b.End - b.Start }

// Contains reports whether cell i belongs to the block.
func (b Block) Contains(i int) bool { return i >= b.Start && i < b.End }

// Partition splits size cells into nblocks contiguous row-major blocks of
// near-equal length (the first size%nblocks blocks get one extra cell),
// reproducing Fig. 2's assignment of successive individuals — right
// neighbor, then next row — to the same thread.
func Partition(size, nblocks int) ([]Block, error) {
	if size <= 0 {
		return nil, fmt.Errorf("topology: non-positive population %d", size)
	}
	if nblocks <= 0 {
		return nil, fmt.Errorf("topology: non-positive block count %d", nblocks)
	}
	if nblocks > size {
		return nil, fmt.Errorf("topology: %d blocks for %d cells", nblocks, size)
	}
	base := size / nblocks
	extra := size % nblocks
	blocks := make([]Block, nblocks)
	start := 0
	for i := range blocks {
		length := base
		if i < extra {
			length++
		}
		blocks[i] = Block{Start: start, End: start + length}
		start += length
	}
	return blocks, nil
}

// BlockOf returns the index of the block containing cell i, or -1.
func BlockOf(blocks []Block, i int) int {
	for b, blk := range blocks {
		if blk.Contains(i) {
			return b
		}
	}
	return -1
}

// BoundaryCells returns the cells of block b whose neighborhood (under n
// on grid g) includes at least one cell outside the block. The paper's
// Fig. 4 discussion attributes the poor 0-iteration scaling to the
// growing fraction of such cells as blocks shrink.
func BoundaryCells(g Grid, n Neighborhood, blocks []Block, b int) []int {
	var out []int
	buf := make([]int, 0, n.Size())
	blk := blocks[b]
	for i := blk.Start; i < blk.End; i++ {
		buf = n.Neighbors(g, i, buf)
		for _, c := range buf[1:] {
			if !blk.Contains(c) {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// SweepPolicy determines the order in which a thread visits the cells of
// its block each generation.
type SweepPolicy int

const (
	// LineSweep visits cells in ascending row-major order every
	// generation — the paper's choice for all blocks (§3.2).
	LineSweep SweepPolicy = iota
	// FixedRandomSweep uses one random permutation drawn at setup and
	// reused every generation.
	FixedRandomSweep
	// NewRandomSweep draws a fresh permutation every generation.
	NewRandomSweep
)

// String implements fmt.Stringer.
func (p SweepPolicy) String() string {
	switch p {
	case LineSweep:
		return "line"
	case FixedRandomSweep:
		return "fixed-random"
	case NewRandomSweep:
		return "new-random"
	default:
		return fmt.Sprintf("SweepPolicy(%d)", int(p))
	}
}

// ParseSweepPolicy parses the String names.
func ParseSweepPolicy(s string) (SweepPolicy, error) {
	switch s {
	case "line":
		return LineSweep, nil
	case "fixed-random":
		return FixedRandomSweep, nil
	case "new-random":
		return NewRandomSweep, nil
	}
	return 0, fmt.Errorf("topology: unknown sweep policy %q", s)
}

// Sweeper yields per-generation visit orders for one block under a
// policy. It is not safe for concurrent use; each thread owns one.
type Sweeper struct {
	policy SweepPolicy
	block  Block
	r      *rng.Rand
	order  []int
}

// NewSweeper builds a sweeper for the block. The RNG is retained and used
// by the random policies; LineSweep never consults it.
func NewSweeper(policy SweepPolicy, block Block, r *rng.Rand) *Sweeper {
	s := &Sweeper{policy: policy, block: block, r: r}
	s.order = make([]int, block.Len())
	for i := range s.order {
		s.order[i] = block.Start + i
	}
	if policy == FixedRandomSweep {
		s.shuffle()
	}
	return s
}

func (s *Sweeper) shuffle() {
	s.r.Shuffle(len(s.order), func(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] })
}

// Order returns the visit order for the next generation. The returned
// slice is owned by the sweeper and valid until the next call.
func (s *Sweeper) Order() []int {
	if s.policy == NewRandomSweep {
		s.shuffle()
	}
	return s.order
}
