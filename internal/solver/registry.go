package solver

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps stable names to Solver implementations. Algorithm
// packages register themselves in init, so importing a package makes
// its solvers dispatchable by name; the gridsched facade imports every
// implementation and therefore always sees the full set.
var (
	regMu    sync.RWMutex
	registry = map[string]Solver{}
)

// Register adds s under s.Name(). It panics on an empty name or a
// duplicate registration: both are programmer errors wiring up a new
// solver, not runtime conditions.
func Register(s Solver) {
	name := s.Name()
	if name == "" {
		panic("solver: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("solver: duplicate registration of %q", name))
	}
	registry[name] = s
}

// Lookup resolves a registered solver by name.
func Lookup(name string) (Solver, error) {
	regMu.RLock()
	s, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("solver: unknown solver %q (have: %v)", name, Names())
	}
	return s, nil
}

// Names lists every registered solver name, sorted.
func Names() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}
