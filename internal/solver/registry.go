package solver

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The registry maps stable names to Solver implementations. Algorithm
// packages register themselves in init, so importing a package makes
// its solvers dispatchable by name; the gridsched facade imports every
// implementation and therefore always sees the full set.
//
// Alongside concrete names the registry holds schemes: dynamic
// resolvers for parameterized names of the form "prefix:spec" (the
// portfolio's "portfolio:pa-cga+tabu"). Lookup consults schemes only
// after exact-name resolution fails, so a concretely registered preset
// shadows its scheme expansion.
var (
	regMu    sync.RWMutex
	registry = map[string]Solver{}
	schemes  = map[string]func(name string) (Solver, error){}
)

// Register adds s under s.Name(). It panics on an empty name or a
// duplicate registration: both are programmer errors wiring up a new
// solver, not runtime conditions.
func Register(s Solver) {
	name := s.Name()
	if name == "" {
		panic("solver: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("solver: duplicate registration of %q", name))
	}
	registry[name] = s
}

// RegisterScheme adds a dynamic resolver for solver names of the form
// "prefix:spec". The resolver receives the full requested name and
// must return a Solver whose Name() echoes it (so the registry
// contract — Lookup(n).Name() == n — holds for dynamic names too) or a
// descriptive error. Like Register, it panics on an empty or duplicate
// prefix: both are programmer errors wiring up a scheme.
func RegisterScheme(prefix string, resolve func(name string) (Solver, error)) {
	if prefix == "" || strings.Contains(prefix, ":") {
		panic(fmt.Sprintf("solver: RegisterScheme with invalid prefix %q", prefix))
	}
	if resolve == nil {
		panic("solver: RegisterScheme with nil resolver")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := schemes[prefix]; dup {
		panic(fmt.Sprintf("solver: duplicate scheme registration of %q", prefix))
	}
	schemes[prefix] = resolve
}

// Lookup resolves a solver by name: an exact registration first, then —
// for names of the form "prefix:spec" — the prefix's registered scheme
// resolver.
func Lookup(name string) (Solver, error) {
	regMu.RLock()
	s, ok := registry[name]
	var resolve func(string) (Solver, error)
	if !ok {
		if i := strings.IndexByte(name, ':'); i > 0 {
			resolve = schemes[name[:i]]
		}
	}
	regMu.RUnlock()
	if ok {
		return s, nil
	}
	if resolve != nil {
		return resolve(name)
	}
	return nil, fmt.Errorf("solver: unknown solver %q (have: %v)", name, Names())
}

// Names lists every registered solver name, sorted.
func Names() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}
