package solver

import (
	"context"
	"strings"
	"testing"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/schedule"
)

func TestBudgetIsZeroAndString(t *testing.T) {
	if !(Budget{}).IsZero() {
		t.Fatal("zero budget not detected")
	}
	b := Budget{MaxDuration: time.Second, MaxEvaluations: 10, MaxGenerations: 3}
	if b.IsZero() {
		t.Fatal("non-zero budget reported zero")
	}
	s := b.String()
	for _, want := range []string{"time=1s", "evals=10", "gens=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if (Budget{}).String() != "unbounded" {
		t.Fatalf("zero budget String() = %q", (Budget{}).String())
	}
}

func TestEngineEvaluationBudget(t *testing.T) {
	e := NewEngine(nil, Budget{MaxEvaluations: 5})
	if e.EvalsExhausted() {
		t.Fatal("fresh engine exhausted")
	}
	if got := e.RemainingEvals(); got != 5 {
		t.Fatalf("RemainingEvals = %d", got)
	}
	e.AddEvals(3)
	if e.EvalsExhausted() {
		t.Fatal("exhausted below budget")
	}
	if got := e.RemainingEvals(); got != 2 {
		t.Fatalf("RemainingEvals = %d", got)
	}
	e.AddEvals(2)
	if !e.EvalsExhausted() {
		t.Fatal("budget reached but not exhausted")
	}
	if got := e.RemainingEvals(); got != 0 {
		t.Fatalf("RemainingEvals = %d", got)
	}
	if got := e.Evals(); got != 5 {
		t.Fatalf("Evals = %d", got)
	}
	// Unbounded evaluations never exhaust.
	u := NewEngine(nil, Budget{MaxGenerations: 1})
	u.AddEvals(1 << 40)
	if u.EvalsExhausted() || u.RemainingEvals() != -1 {
		t.Fatal("unbounded engine exhausted")
	}
}

func TestEngineGenerations(t *testing.T) {
	e := NewEngine(nil, Budget{MaxGenerations: 2})
	if e.GenerationsDone(1) || e.StopSweep(1) {
		t.Fatal("stopped early")
	}
	if !e.GenerationsDone(2) || !e.StopSweep(2) {
		t.Fatal("generation bound ignored")
	}
	u := NewEngine(nil, Budget{MaxEvaluations: 1})
	if u.GenerationsDone(1 << 40) {
		t.Fatal("unbounded generations done")
	}
}

func TestEngineDeadline(t *testing.T) {
	e := NewEngine(nil, Budget{MaxDuration: 20 * time.Millisecond})
	if e.Expired() {
		t.Fatal("expired immediately")
	}
	time.Sleep(30 * time.Millisecond)
	if !e.Expired() {
		t.Fatal("deadline not noticed")
	}
	if e.Elapsed() < 20*time.Millisecond {
		t.Fatal("Elapsed under deadline")
	}
}

func TestEngineContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := NewEngine(ctx, Budget{MaxDuration: time.Hour})
	if e.Expired() {
		t.Fatal("expired before cancel")
	}
	cancel()
	if !e.Expired() {
		t.Fatal("cancellation not noticed")
	}
	// A context deadline tighter than MaxDuration wins.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	e2 := NewEngine(ctx2, Budget{MaxDuration: time.Hour})
	time.Sleep(20 * time.Millisecond)
	if !e2.Expired() {
		t.Fatal("context deadline ignored")
	}
}

func TestEngineStopStepCoarsePolling(t *testing.T) {
	// With an already-expired deadline, StopStep still lets non-poll
	// steps through (coarse polling) but stops on poll steps.
	e := NewEngine(nil, Budget{MaxDuration: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if e.StopStep(1) {
		t.Fatal("non-poll step polled the deadline")
	}
	if !e.StopStep(0) || !e.StopStep(deadlinePollInterval) {
		t.Fatal("poll step missed the deadline")
	}
	// The evaluation bound is checked on every step regardless.
	e2 := NewEngine(nil, Budget{MaxEvaluations: 1})
	e2.AddEvals(1)
	if !e2.StopStep(1) {
		t.Fatal("eval bound skipped on non-poll step")
	}
}

// stubSolver exercises the registry and the WithSeed helper.
type stubSolver struct {
	name string
	seed uint64
}

func (s stubSolver) Name() string     { return s.name }
func (s stubSolver) Describe() string { return "stub" }
func (s stubSolver) Solve(ctx context.Context, inst *etc.Instance, b Budget) (*Result, error) {
	return &Result{Best: schedule.New(inst)}, nil
}
func (s stubSolver) WithSeed(seed uint64) Solver { s.seed = seed; return s }

func TestRegistry(t *testing.T) {
	Register(stubSolver{name: "stub-a"})
	Register(stubSolver{name: "stub-b"})

	s, err := Lookup("stub-a")
	if err != nil || s.Name() != "stub-a" {
		t.Fatalf("Lookup: %v, %v", s, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown name resolved")
	}
	names := Names()
	ia, ib := -1, -1
	for i, n := range names {
		if n == "stub-a" {
			ia = i
		}
		if n == "stub-b" {
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("Names() = %v not sorted or missing stubs", names)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(stubSolver{name: "stub-a"})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty name did not panic")
		}
	}()
	Register(stubSolver{})
}

func TestWithSeedHelper(t *testing.T) {
	seeded := WithSeed(stubSolver{name: "x"}, 42)
	if seeded.(stubSolver).seed != 42 {
		t.Fatal("WithSeed did not reconfigure a Seeder")
	}
}

func TestEffectiveBudgetSurfacesContextDeadline(t *testing.T) {
	// A zero budget under a deadline context is NOT unbounded: the
	// engine absorbs the deadline, and EffectiveBudget must say so.
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	eng := NewEngine(ctx, Budget{})
	eff := eng.EffectiveBudget()
	if eff.MaxDuration <= 0 {
		t.Fatalf("EffectiveBudget.MaxDuration = %v, want > 0 under a deadline context", eff.MaxDuration)
	}
	if eff.String() == "unbounded" {
		t.Fatal("EffectiveBudget renders as unbounded despite a context deadline")
	}
	if got := eng.Budget(); !got.IsZero() {
		t.Fatalf("submitted budget mutated: %v", got)
	}

	// The tighter of budget duration and context deadline wins.
	eng = NewEngine(ctx, Budget{MaxDuration: time.Minute, MaxEvaluations: 42})
	eff = eng.EffectiveBudget()
	if eff.MaxDuration != time.Minute {
		t.Fatalf("EffectiveBudget.MaxDuration = %v, want the tighter 1m budget", eff.MaxDuration)
	}
	if eff.MaxEvaluations != 42 {
		t.Fatalf("EffectiveBudget dropped MaxEvaluations: %v", eff)
	}
	eng = NewEngine(ctx, Budget{MaxDuration: 2 * time.Hour})
	if eff = eng.EffectiveBudget(); eff.MaxDuration > time.Hour {
		t.Fatalf("EffectiveBudget.MaxDuration = %v, want the tighter context deadline", eff.MaxDuration)
	}

	// Without any deadline the effective budget is the submitted one.
	eng = NewEngine(context.Background(), Budget{MaxEvaluations: 7})
	if eff = eng.EffectiveBudget(); eff != (Budget{MaxEvaluations: 7}) {
		t.Fatalf("EffectiveBudget = %v, want the submitted budget", eff)
	}
}

func TestBudgetEffectiveFor(t *testing.T) {
	b := Budget{MaxEvaluations: 5}
	if got := b.EffectiveFor(nil); got != b {
		t.Fatalf("EffectiveFor(nil) = %v, want %v", got, b)
	}
	if got := b.EffectiveFor(context.Background()); got != b {
		t.Fatalf("EffectiveFor(Background) = %v, want %v", got, b)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	got := b.EffectiveFor(ctx)
	if got.MaxDuration <= 0 || got.MaxDuration > time.Hour {
		t.Fatalf("EffectiveFor deadline ctx: MaxDuration = %v", got.MaxDuration)
	}
	if got.MaxEvaluations != 5 {
		t.Fatalf("EffectiveFor dropped MaxEvaluations: %v", got)
	}
	tight := Budget{MaxDuration: time.Millisecond}
	if got := tight.EffectiveFor(ctx); got.MaxDuration != time.Millisecond {
		t.Fatalf("EffectiveFor kept the looser bound: %v", got.MaxDuration)
	}
}

func TestEffectiveBudgetExpiredDeadlineNotUnbounded(t *testing.T) {
	// A deadline that already lapsed still bounds the run (it stops
	// immediately); the effective budget must never read "unbounded".
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	eng := NewEngine(ctx, Budget{})
	if eff := eng.EffectiveBudget(); eff.MaxDuration <= 0 || eff.String() == "unbounded" {
		t.Fatalf("EffectiveBudget = %v for an expired deadline, want a positive bound", eff)
	}
	if eff := (Budget{}).EffectiveFor(ctx); eff.MaxDuration <= 0 || eff.String() == "unbounded" {
		t.Fatalf("EffectiveFor = %v for an expired deadline, want a positive bound", eff)
	}
}

func TestEngineChildAccounting(t *testing.T) {
	parent := NewEngine(nil, Budget{MaxEvaluations: 900, MaxGenerations: 7})
	a := parent.Child(1.0 / 3)
	b := parent.Child(1.0 / 3)
	if got := a.Budget().MaxEvaluations; got != 300 {
		t.Fatalf("child budget = %d, want 300", got)
	}
	if got := a.Budget().MaxGenerations; got != 7 {
		t.Fatalf("child generations = %d, want parent's 7", got)
	}

	// Child evaluations charge the parent too.
	a.AddEvals(100)
	b.AddEvals(50)
	if got := parent.Evals(); got != 150 {
		t.Fatalf("parent Evals = %d, want 150", got)
	}
	if got := a.Evals(); got != 100 {
		t.Fatalf("child Evals = %d, want 100", got)
	}

	// A grandchild created through WithEngine charges the whole chain.
	g := NewEngine(WithEngine(context.Background(), a), Budget{MaxEvaluations: 10})
	g.AddEvals(10)
	if got, want := a.Evals(), int64(110); got != want {
		t.Fatalf("child Evals after grandchild = %d, want %d", got, want)
	}
	if got, want := parent.Evals(), int64(160); got != want {
		t.Fatalf("parent Evals after grandchild = %d, want %d", got, want)
	}
	if !g.EvalsExhausted() {
		t.Fatal("grandchild bound reached but not exhausted")
	}

	// The child's remaining is capped by the tightest bound up the
	// chain; exhausting the parent exhausts every child.
	parent.AddEvals(parent.RemainingEvals())
	if !a.EvalsExhausted() || !b.EvalsExhausted() {
		t.Fatal("parent exhaustion not visible to children")
	}
	if got := a.RemainingEvals(); got != 0 {
		t.Fatalf("child RemainingEvals = %d after parent exhaustion", got)
	}
}

func TestEngineChildInheritsDeadline(t *testing.T) {
	parent := NewEngine(nil, Budget{MaxDuration: 10 * time.Millisecond})
	c := parent.Child(0.5)
	if c.RemainingDuration() <= 0 || c.RemainingDuration() > 10*time.Millisecond {
		t.Fatalf("child RemainingDuration = %v", c.RemainingDuration())
	}
	time.Sleep(15 * time.Millisecond)
	if !c.Expired() {
		t.Fatal("child did not inherit the parent deadline")
	}
	// No deadline anywhere: -1.
	free := NewEngine(nil, Budget{MaxEvaluations: 1})
	if got := free.RemainingDuration(); got != -1 {
		t.Fatalf("RemainingDuration = %v, want -1 with no deadline", got)
	}
}

func TestEngineTransfer(t *testing.T) {
	parent := NewEngine(nil, Budget{MaxEvaluations: 1000})
	a := parent.Child(0.5)
	b := parent.Child(0.5)

	a.AddEvals(100) // 400 left locally
	if moved := a.Transfer(b, 150); moved != 150 {
		t.Fatalf("Transfer moved %d, want 150", moved)
	}
	if got := a.RemainingEvals(); got != 250 {
		t.Fatalf("donor remaining = %d, want 250", got)
	}
	if got := b.RemainingEvals(); got != 650 {
		t.Fatalf("recipient remaining = %d, want 650", got)
	}
	// The effective budget reflects the transfer.
	if got := a.EffectiveBudget().MaxEvaluations; got != 350 {
		t.Fatalf("donor EffectiveBudget = %d, want 350", got)
	}
	if got := b.EffectiveBudget().MaxEvaluations; got != 650 {
		t.Fatalf("recipient EffectiveBudget = %d, want 650", got)
	}

	// Over-asking clamps to what the donor has left.
	if moved := a.Transfer(b, 1<<30); moved != 250 {
		t.Fatalf("clamped Transfer moved %d, want 250", moved)
	}
	if !a.EvalsExhausted() {
		t.Fatal("fully-drained donor not exhausted")
	}

	// Self, nil and unbounded transfers are no-ops.
	if a.Transfer(a, 10) != 0 {
		t.Fatal("self transfer moved budget")
	}
	free := NewEngine(nil, Budget{MaxDuration: time.Hour})
	if free.Transfer(b, 10) != 0 || b.Transfer(free, 10) != 0 {
		t.Fatal("transfer with an unbounded engine moved budget")
	}
	// The parent bound still caps the family after transfers.
	b.AddEvals(900)
	if got := parent.Evals(); got != 1000 {
		t.Fatalf("parent Evals = %d, want 1000", got)
	}
	if !b.EvalsExhausted() {
		t.Fatal("recipient not stopped by the parent bound")
	}
}

func TestEngineFromContext(t *testing.T) {
	if EngineFrom(nil) != nil || EngineFrom(context.Background()) != nil {
		t.Fatal("EngineFrom invented an engine")
	}
	e := NewEngine(nil, Budget{MaxEvaluations: 1})
	if got := EngineFrom(WithEngine(context.Background(), e)); got != e {
		t.Fatal("EngineFrom did not return the carried engine")
	}
	// NewEngine without a carried engine has no parent: its evals stay
	// its own.
	solo := NewEngine(context.Background(), Budget{MaxEvaluations: 5})
	solo.AddEvals(2)
	if e.Evals() != 0 {
		t.Fatal("unlinked engine charged a stranger")
	}
}

func TestRegisterScheme(t *testing.T) {
	RegisterScheme("stub-scheme", func(name string) (Solver, error) {
		if name == "stub-scheme:bad" {
			return nil, context.Canceled
		}
		return stubSolver{name: name}, nil
	})
	s, err := Lookup("stub-scheme:anything+else")
	if err != nil || s.Name() != "stub-scheme:anything+else" {
		t.Fatalf("scheme Lookup: %v, %v", s, err)
	}
	if _, err := Lookup("stub-scheme:bad"); err == nil {
		t.Fatal("scheme resolver error swallowed")
	}
	// Exact registrations shadow scheme expansion.
	Register(stubSolver{name: "stub-scheme:exact"})
	s, err = Lookup("stub-scheme:exact")
	if err != nil || s.(stubSolver).seed != 0 {
		t.Fatalf("exact registration not preferred: %v, %v", s, err)
	}
	// Unknown prefixes still fail.
	if _, err := Lookup("no-such-scheme:x"); err == nil {
		t.Fatal("unknown scheme resolved")
	}
	// Scheme names never leak into Names().
	for _, n := range Names() {
		if n == "stub-scheme:anything+else" {
			t.Fatal("dynamically resolved name leaked into Names()")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate scheme registration did not panic")
		}
	}()
	RegisterScheme("stub-scheme", func(name string) (Solver, error) { return nil, nil })
}
