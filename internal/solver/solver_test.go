package solver

import (
	"context"
	"strings"
	"testing"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/schedule"
)

func TestBudgetIsZeroAndString(t *testing.T) {
	if !(Budget{}).IsZero() {
		t.Fatal("zero budget not detected")
	}
	b := Budget{MaxDuration: time.Second, MaxEvaluations: 10, MaxGenerations: 3}
	if b.IsZero() {
		t.Fatal("non-zero budget reported zero")
	}
	s := b.String()
	for _, want := range []string{"time=1s", "evals=10", "gens=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if (Budget{}).String() != "unbounded" {
		t.Fatalf("zero budget String() = %q", (Budget{}).String())
	}
}

func TestEngineEvaluationBudget(t *testing.T) {
	e := NewEngine(nil, Budget{MaxEvaluations: 5})
	if e.EvalsExhausted() {
		t.Fatal("fresh engine exhausted")
	}
	if got := e.RemainingEvals(); got != 5 {
		t.Fatalf("RemainingEvals = %d", got)
	}
	e.AddEvals(3)
	if e.EvalsExhausted() {
		t.Fatal("exhausted below budget")
	}
	if got := e.RemainingEvals(); got != 2 {
		t.Fatalf("RemainingEvals = %d", got)
	}
	e.AddEvals(2)
	if !e.EvalsExhausted() {
		t.Fatal("budget reached but not exhausted")
	}
	if got := e.RemainingEvals(); got != 0 {
		t.Fatalf("RemainingEvals = %d", got)
	}
	if got := e.Evals(); got != 5 {
		t.Fatalf("Evals = %d", got)
	}
	// Unbounded evaluations never exhaust.
	u := NewEngine(nil, Budget{MaxGenerations: 1})
	u.AddEvals(1 << 40)
	if u.EvalsExhausted() || u.RemainingEvals() != -1 {
		t.Fatal("unbounded engine exhausted")
	}
}

func TestEngineGenerations(t *testing.T) {
	e := NewEngine(nil, Budget{MaxGenerations: 2})
	if e.GenerationsDone(1) || e.StopSweep(1) {
		t.Fatal("stopped early")
	}
	if !e.GenerationsDone(2) || !e.StopSweep(2) {
		t.Fatal("generation bound ignored")
	}
	u := NewEngine(nil, Budget{MaxEvaluations: 1})
	if u.GenerationsDone(1 << 40) {
		t.Fatal("unbounded generations done")
	}
}

func TestEngineDeadline(t *testing.T) {
	e := NewEngine(nil, Budget{MaxDuration: 20 * time.Millisecond})
	if e.Expired() {
		t.Fatal("expired immediately")
	}
	time.Sleep(30 * time.Millisecond)
	if !e.Expired() {
		t.Fatal("deadline not noticed")
	}
	if e.Elapsed() < 20*time.Millisecond {
		t.Fatal("Elapsed under deadline")
	}
}

func TestEngineContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := NewEngine(ctx, Budget{MaxDuration: time.Hour})
	if e.Expired() {
		t.Fatal("expired before cancel")
	}
	cancel()
	if !e.Expired() {
		t.Fatal("cancellation not noticed")
	}
	// A context deadline tighter than MaxDuration wins.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	e2 := NewEngine(ctx2, Budget{MaxDuration: time.Hour})
	time.Sleep(20 * time.Millisecond)
	if !e2.Expired() {
		t.Fatal("context deadline ignored")
	}
}

func TestEngineStopStepCoarsePolling(t *testing.T) {
	// With an already-expired deadline, StopStep still lets non-poll
	// steps through (coarse polling) but stops on poll steps.
	e := NewEngine(nil, Budget{MaxDuration: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if e.StopStep(1) {
		t.Fatal("non-poll step polled the deadline")
	}
	if !e.StopStep(0) || !e.StopStep(deadlinePollInterval) {
		t.Fatal("poll step missed the deadline")
	}
	// The evaluation bound is checked on every step regardless.
	e2 := NewEngine(nil, Budget{MaxEvaluations: 1})
	e2.AddEvals(1)
	if !e2.StopStep(1) {
		t.Fatal("eval bound skipped on non-poll step")
	}
}

// stubSolver exercises the registry and the WithSeed helper.
type stubSolver struct {
	name string
	seed uint64
}

func (s stubSolver) Name() string     { return s.name }
func (s stubSolver) Describe() string { return "stub" }
func (s stubSolver) Solve(ctx context.Context, inst *etc.Instance, b Budget) (*Result, error) {
	return &Result{Best: schedule.New(inst)}, nil
}
func (s stubSolver) WithSeed(seed uint64) Solver { s.seed = seed; return s }

func TestRegistry(t *testing.T) {
	Register(stubSolver{name: "stub-a"})
	Register(stubSolver{name: "stub-b"})

	s, err := Lookup("stub-a")
	if err != nil || s.Name() != "stub-a" {
		t.Fatalf("Lookup: %v, %v", s, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown name resolved")
	}
	names := Names()
	ia, ib := -1, -1
	for i, n := range names {
		if n == "stub-a" {
			ia = i
		}
		if n == "stub-b" {
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("Names() = %v not sorted or missing stubs", names)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(stubSolver{name: "stub-a"})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty name did not panic")
		}
	}()
	Register(stubSolver{})
}

func TestWithSeedHelper(t *testing.T) {
	seeded := WithSeed(stubSolver{name: "x"}, 42)
	if seeded.(stubSolver).seed != 42 {
		t.Fatal("WithSeed did not reconfigure a Seeder")
	}
}

func TestEffectiveBudgetSurfacesContextDeadline(t *testing.T) {
	// A zero budget under a deadline context is NOT unbounded: the
	// engine absorbs the deadline, and EffectiveBudget must say so.
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	eng := NewEngine(ctx, Budget{})
	eff := eng.EffectiveBudget()
	if eff.MaxDuration <= 0 {
		t.Fatalf("EffectiveBudget.MaxDuration = %v, want > 0 under a deadline context", eff.MaxDuration)
	}
	if eff.String() == "unbounded" {
		t.Fatal("EffectiveBudget renders as unbounded despite a context deadline")
	}
	if got := eng.Budget(); !got.IsZero() {
		t.Fatalf("submitted budget mutated: %v", got)
	}

	// The tighter of budget duration and context deadline wins.
	eng = NewEngine(ctx, Budget{MaxDuration: time.Minute, MaxEvaluations: 42})
	eff = eng.EffectiveBudget()
	if eff.MaxDuration != time.Minute {
		t.Fatalf("EffectiveBudget.MaxDuration = %v, want the tighter 1m budget", eff.MaxDuration)
	}
	if eff.MaxEvaluations != 42 {
		t.Fatalf("EffectiveBudget dropped MaxEvaluations: %v", eff)
	}
	eng = NewEngine(ctx, Budget{MaxDuration: 2 * time.Hour})
	if eff = eng.EffectiveBudget(); eff.MaxDuration > time.Hour {
		t.Fatalf("EffectiveBudget.MaxDuration = %v, want the tighter context deadline", eff.MaxDuration)
	}

	// Without any deadline the effective budget is the submitted one.
	eng = NewEngine(context.Background(), Budget{MaxEvaluations: 7})
	if eff = eng.EffectiveBudget(); eff != (Budget{MaxEvaluations: 7}) {
		t.Fatalf("EffectiveBudget = %v, want the submitted budget", eff)
	}
}

func TestBudgetEffectiveFor(t *testing.T) {
	b := Budget{MaxEvaluations: 5}
	if got := b.EffectiveFor(nil); got != b {
		t.Fatalf("EffectiveFor(nil) = %v, want %v", got, b)
	}
	if got := b.EffectiveFor(context.Background()); got != b {
		t.Fatalf("EffectiveFor(Background) = %v, want %v", got, b)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	got := b.EffectiveFor(ctx)
	if got.MaxDuration <= 0 || got.MaxDuration > time.Hour {
		t.Fatalf("EffectiveFor deadline ctx: MaxDuration = %v", got.MaxDuration)
	}
	if got.MaxEvaluations != 5 {
		t.Fatalf("EffectiveFor dropped MaxEvaluations: %v", got)
	}
	tight := Budget{MaxDuration: time.Millisecond}
	if got := tight.EffectiveFor(ctx); got.MaxDuration != time.Millisecond {
		t.Fatalf("EffectiveFor kept the looser bound: %v", got.MaxDuration)
	}
}

func TestEffectiveBudgetExpiredDeadlineNotUnbounded(t *testing.T) {
	// A deadline that already lapsed still bounds the run (it stops
	// immediately); the effective budget must never read "unbounded".
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	eng := NewEngine(ctx, Budget{})
	if eff := eng.EffectiveBudget(); eff.MaxDuration <= 0 || eff.String() == "unbounded" {
		t.Fatalf("EffectiveBudget = %v for an expired deadline, want a positive bound", eff)
	}
	if eff := (Budget{}).EffectiveFor(ctx); eff.MaxDuration <= 0 || eff.String() == "unbounded" {
		t.Fatalf("EffectiveFor = %v for an expired deadline, want a positive bound", eff)
	}
}
