package solver

import (
	"context"
	"time"
)

// Event is one observation emitted by a running solver through its
// Engine: an incumbent improvement (Observer.Improved) or the end of an
// engine's run (Observer.Done). Evals and Elapsed are measured at the
// root of the engine family — the total work and wall time of the whole
// run at the moment of the event — so plotting Fitness against either
// axis reproduces the paper's anytime-performance curves directly, even
// when the event was recorded deep inside a composite (portfolio) run.
type Event struct {
	// Lane labels the constituent that produced the event inside a
	// composite run ("" for a plain single-solver run): the portfolio
	// tags each constituent's context with its registry name, so every
	// lane emits a separately attributable convergence trace.
	Lane string
	// Evals is the engine family's total evaluation count at the event.
	Evals int64
	// Elapsed is wall time since the root engine started.
	Elapsed time.Duration
	// Fitness is the observed fitness (makespan under the default
	// objective). For Improved events it strictly improves on every
	// fitness the engine family observed before; for Done events it is
	// the run's final best.
	Fitness float64
}

// Observer receives convergence events from solver engines. Callbacks
// may fire concurrently from any solver worker goroutine, so
// implementations must be safe for concurrent use, and they run inline
// on the breeding path — keep them cheap (an atomic bump, a
// mutex-guarded append), never blocking.
//
// Attach an observer with WithObserver; solvers pick it up through
// NewEngine with no signature changes. A nil observer costs one nil
// check per observation (see Engine.Observe).
type Observer interface {
	// Improved reports a strict improvement of the engine family's best
	// observed fitness.
	Improved(Event)
	// Done reports the end of one engine's run with its final best
	// fitness. A composite run emits one Done per constituent round
	// (lane-labelled) plus one for the composite itself ("" lane).
	Done(Event)
}

// observerCtxKey carries an Observer through a context (WithObserver);
// laneCtxKey carries the lane label for composite runs (WithLane).
type (
	observerCtxKey struct{}
	laneCtxKey     struct{}
)

// WithObserver returns a context that attaches obs to every engine
// subsequently created from it: solvers run under the returned context
// emit convergence events with no Solve-signature changes. A nil obs
// returns ctx unchanged.
func WithObserver(ctx context.Context, obs Observer) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if obs == nil {
		return ctx
	}
	return context.WithValue(ctx, observerCtxKey{}, obs)
}

// ObserverFrom returns the observer carried by ctx, or nil.
func ObserverFrom(ctx context.Context) Observer {
	if ctx == nil {
		return nil
	}
	obs, _ := ctx.Value(observerCtxKey{}).(Observer)
	return obs
}

// WithLane returns a context that labels every engine subsequently
// created from it with the given lane name. Composite solvers wrap each
// constituent's context so the constituent's events carry its lane.
func WithLane(ctx context.Context, lane string) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, laneCtxKey{}, lane)
}

// LaneFrom returns the lane label carried by ctx ("" when unlabelled).
func LaneFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	lane, _ := ctx.Value(laneCtxKey{}).(string)
	return lane
}
