package solver

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// Budget bounds a solver run. Bounds compose: the run stops at
// whichever fires first; zero values disable a bound. Context
// cancellation always stops a run regardless of the budget.
type Budget struct {
	// MaxDuration is the wall-clock budget (the paper's 90 s). Like the
	// paper, solvers check it coarsely — once per sweep or every few
	// steady-state steps — so runs may overshoot by one sweep (§3.2
	// accepts the same approximation).
	MaxDuration time.Duration
	// MaxEvaluations bounds the total number of fitness evaluations
	// across all workers, checked per breeding step.
	MaxEvaluations int64
	// MaxGenerations bounds each worker's (or island's) generation
	// count.
	MaxGenerations int64
}

// IsZero reports whether no bound is set.
func (b Budget) IsZero() bool {
	return b.MaxDuration <= 0 && b.MaxEvaluations <= 0 && b.MaxGenerations <= 0
}

// String renders the active bounds, e.g. "evals=8000 gens=50".
func (b Budget) String() string {
	var parts []string
	if b.MaxDuration > 0 {
		parts = append(parts, fmt.Sprintf("time=%v", b.MaxDuration))
	}
	if b.MaxEvaluations > 0 {
		parts = append(parts, fmt.Sprintf("evals=%d", b.MaxEvaluations))
	}
	if b.MaxGenerations > 0 {
		parts = append(parts, fmt.Sprintf("gens=%d", b.MaxGenerations))
	}
	if len(parts) == 0 {
		return "unbounded"
	}
	return strings.Join(parts, " ")
}

// EffectiveFor returns the budget as it will actually bind when run
// under ctx: a context deadline tightens (or introduces) MaxDuration,
// exactly as NewEngine absorbs it. Reports rendering a submitted
// Budget alone would claim "unbounded" for a run stopped by a context
// deadline; render the effective budget instead.
func (b Budget) EffectiveFor(ctx context.Context) Budget {
	if ctx == nil {
		return b
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); b.MaxDuration <= 0 || rem < b.MaxDuration {
			// Round for report readability (EffectiveFor feeds reports,
			// not enforcement — NewEngine absorbs the exact deadline).
			// An expired or sub-millisecond remainder clamps to a
			// minimal positive bound: zero or negative would read back
			// as "unbounded", the exact misreport this method removes.
			if rem = rem.Round(time.Millisecond); rem <= 0 {
				rem = time.Millisecond
			}
			b.MaxDuration = rem
		}
	}
	return b
}

// deadlinePollInterval is how many steady-state steps pass between
// deadline/cancellation polls in StopStep. Single-threaded breeding
// steps are microseconds, so polling every 64th keeps the overshoot
// far below a millisecond while keeping time.Now off the hot path.
const deadlinePollInterval = 64

// Engine is the shared stop-condition engine: one atomic evaluation
// counter plus coarse deadline/cancellation polling. Every solver in
// the repository drives its loop off one Engine instead of a bespoke
// copy of the deadline/budget logic.
//
// Granularity contract (matching the paper's §3.2): EvalsExhausted is
// cheap (one atomic load) and is checked before every breeding step;
// Expired polls the clock and the context and is checked once per
// sweep/generation — or every deadlinePollInterval steps via StopStep
// in steady-state loops — so wall-clock runs may overshoot by one
// sweep.
//
// Engines compose: an engine created from a context carrying a parent
// engine (see WithEngine) becomes that parent's child — its
// evaluations charge the parent's counter too, and it stops when any
// bound along the parent chain trips. Composite solvers (the
// portfolio) use this to run constituent solvers, unchanged, against
// nested budgets: the constituent's own NewEngine call transparently
// attaches to the accounting engine the composer put in the context.
type Engine struct {
	budget   Budget
	ctx      context.Context
	deadline time.Time
	start    time.Time
	evals    atomic.Int64

	// parent, when non-nil, receives every AddEvals and is consulted by
	// the stop checks: a child never outlives its parent's bounds.
	parent *Engine
	// bonus adjusts the evaluation bound by budget moved in (positive)
	// or reclaimed (negative) by Transfer. Only meaningful while
	// budget.MaxEvaluations > 0 — an unbounded engine has nothing to
	// move.
	bonus atomic.Int64

	// root is the top of the parent chain (the engine itself when it has
	// no parent): Observe charges events with the root's evaluation
	// count and elapsed time, so a composite run's convergence trace
	// shares one x-axis across all constituents.
	root *Engine
	// obs, when non-nil, receives incumbent-improvement and terminal
	// events; lane labels them (see WithObserver / WithLane). best is
	// the family-wide best observed fitness as float64 bits, owned by
	// the root and shared by every child, so an "improvement" means
	// strictly better than anything any engine in the family has seen.
	obs  Observer
	lane string
	best *atomic.Uint64
}

// engineCtxKey carries a parent engine through a context (WithEngine).
type engineCtxKey struct{}

// WithEngine returns a context that makes every engine subsequently
// created from it a child of parent: the child's evaluations charge
// parent as well, and the child stops when parent's bounds trip. This
// is how a composite solver threads its accounting through constituent
// solvers without changing their Solve signatures.
func WithEngine(ctx context.Context, parent *Engine) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, engineCtxKey{}, parent)
}

// EngineFrom returns the parent engine carried by ctx, or nil.
func EngineFrom(ctx context.Context) *Engine {
	if ctx == nil {
		return nil
	}
	e, _ := ctx.Value(engineCtxKey{}).(*Engine)
	return e
}

// NewEngine starts the budget clock. A nil ctx is treated as
// context.Background(). When ctx carries a parent engine (WithEngine),
// the new engine is linked under it: evaluations propagate up and the
// parent's deadline, if earlier, is absorbed.
func NewEngine(ctx context.Context, b Budget) *Engine {
	if ctx == nil {
		ctx = context.Background()
	}
	e := &Engine{budget: b, ctx: ctx, start: time.Now()}
	if b.MaxDuration > 0 {
		e.deadline = e.start.Add(b.MaxDuration)
	}
	if ctxDeadline, ok := ctx.Deadline(); ok && (e.deadline.IsZero() || ctxDeadline.Before(e.deadline)) {
		e.deadline = ctxDeadline
	}
	if p := EngineFrom(ctx); p != nil {
		e.parent = p
		if !p.deadline.IsZero() && (e.deadline.IsZero() || p.deadline.Before(e.deadline)) {
			e.deadline = p.deadline
		}
	}
	e.initObserver(ObserverFrom(ctx), LaneFrom(ctx))
	return e
}

// initObserver links the engine into the family's observation state:
// the root pointer, the shared best-fitness word, and the observer.
// An engine whose context carries no observer still inherits its
// parent's (the composite attached it above), so a constituent engine
// created from a bare WithEngine context keeps emitting events.
func (e *Engine) initObserver(obs Observer, lane string) {
	e.obs, e.lane = obs, lane
	if e.parent != nil {
		e.root, e.best = e.parent.root, e.parent.best
		if e.obs == nil {
			e.obs = e.parent.obs
		}
		if e.lane == "" {
			e.lane = e.parent.lane
		}
		return
	}
	e.root = e
	e.best = new(atomic.Uint64)
	e.best.Store(math.Float64bits(math.Inf(1)))
}

// Child carves a child accounting engine off e for one constituent of
// a composite run: frac of e's evaluation budget (rounded down, at
// least 1 when e is evaluation-bounded), e's deadline, and e's
// generation bound. Evaluations recorded on the child charge e too, so
// the parent's own bounds cap the whole family regardless of how the
// children's budgets were split or later moved by Transfer.
func (e *Engine) Child(frac float64) *Engine {
	cb := Budget{MaxGenerations: e.budget.MaxGenerations}
	if e.budget.MaxEvaluations > 0 {
		cb.MaxEvaluations = int64(frac * float64(e.budget.MaxEvaluations))
		if cb.MaxEvaluations < 1 {
			cb.MaxEvaluations = 1
		}
	}
	c := &Engine{budget: cb, ctx: e.ctx, start: time.Now(), deadline: e.deadline, parent: e}
	c.initObserver(e.obs, e.lane)
	if !c.deadline.IsZero() {
		if cb.MaxDuration = time.Until(c.deadline); cb.MaxDuration <= 0 {
			cb.MaxDuration = time.Nanosecond
		}
		c.budget = cb
	}
	return c
}

// Transfer moves up to n unspent evaluations of e's budget to the
// engine to (typically a sibling child of the same parent): e's bound
// shrinks, to's grows. It returns the amount actually moved — zero
// when either engine is evaluation-unbounded or e has nothing left.
// Concurrent transfers out of the same donor serialize on a CAS over
// its bonus, so a remainder can never be granted twice; a transfer
// racing the donor's own in-flight breeding step can still over-grant
// by that one step, which the shared parent bound absorbs.
func (e *Engine) Transfer(to *Engine, n int64) int64 {
	if e == nil || to == nil || e == to || n <= 0 {
		return 0
	}
	if e.budget.MaxEvaluations <= 0 || to.budget.MaxEvaluations <= 0 {
		return 0
	}
	for {
		bonus := e.bonus.Load()
		move := n
		if rem := e.budget.MaxEvaluations + bonus - e.evals.Load(); rem < move {
			move = rem
		}
		if move <= 0 {
			return 0
		}
		if e.bonus.CompareAndSwap(bonus, bonus-move) {
			to.bonus.Add(move)
			return move
		}
	}
}

// evalBound returns the engine's effective evaluation bound (the
// submitted bound adjusted by transfers) and whether one is in force.
func (e *Engine) evalBound() (int64, bool) {
	if e.budget.MaxEvaluations <= 0 {
		return 0, false
	}
	return e.budget.MaxEvaluations + e.bonus.Load(), true
}

// remainingLocal is RemainingEvals without consulting the parent.
func (e *Engine) remainingLocal() int64 {
	bound, ok := e.evalBound()
	if !ok {
		return -1
	}
	if rem := bound - e.evals.Load(); rem > 0 {
		return rem
	}
	return 0
}

// Budget returns the bounds the engine was created with.
func (e *Engine) Budget() Budget { return e.budget }

// EffectiveBudget returns the bounds the engine actually enforces: when
// a deadline is in force — whether from the budget's own MaxDuration or
// absorbed from the context at NewEngine time — MaxDuration reflects
// the distance from the engine's start to that effective deadline, and
// MaxEvaluations reflects any budget moved in or out by Transfer.
// Solvers record it on Result so job and sweep reports never show
// "unbounded" for a run that a context deadline is bounding.
func (e *Engine) EffectiveBudget() Budget {
	b := e.budget
	if !e.deadline.IsZero() {
		// A deadline already expired at engine start still bounds the
		// run (it stops immediately); clamp to a minimal positive
		// duration so the report never claims "unbounded".
		if b.MaxDuration = e.deadline.Sub(e.start); b.MaxDuration <= 0 {
			b.MaxDuration = time.Nanosecond
		}
	}
	if bound, ok := e.evalBound(); ok {
		// A bound fully reclaimed by Transfer still bounds the engine
		// (it is exhausted); clamp so the report never reads unbounded.
		if bound < 1 {
			bound = 1
		}
		b.MaxEvaluations = bound
	}
	return b
}

// AddEvals records n fitness evaluations and returns the engine's new
// total. A child engine charges its whole parent chain as well, so a
// composite run's top engine counts every constituent's work.
func (e *Engine) AddEvals(n int64) int64 {
	total := e.evals.Add(n)
	if e.parent != nil {
		e.parent.AddEvals(n)
	}
	return total
}

// Evals returns the evaluations recorded so far.
func (e *Engine) Evals() int64 { return e.evals.Load() }

// Elapsed is the wall time since the engine started.
func (e *Engine) Elapsed() time.Duration { return time.Since(e.start) }

// EvalsExhausted reports whether the evaluation budget is spent — the
// engine's own (transfers included) or any bound up the parent chain.
// A few atomic loads: safe to call before every breeding step on every
// worker.
func (e *Engine) EvalsExhausted() bool {
	if bound, ok := e.evalBound(); ok && e.evals.Load() >= bound {
		return true
	}
	return e.parent != nil && e.parent.EvalsExhausted()
}

// RemainingEvals returns how many evaluations the budget still allows —
// the tightest bound along the parent chain — or -1 when evaluations
// are unbounded everywhere.
func (e *Engine) RemainingEvals() int64 {
	rem := e.remainingLocal()
	if e.parent != nil {
		if prem := e.parent.RemainingEvals(); prem >= 0 && (rem < 0 || prem < rem) {
			rem = prem
		}
	}
	return rem
}

// RemainingDuration returns the time left before the effective
// deadline (its own or the nearest one up the parent chain), or -1
// when no deadline is in force.
func (e *Engine) RemainingDuration() time.Duration {
	if e.deadline.IsZero() {
		if e.parent != nil {
			return e.parent.RemainingDuration()
		}
		return -1
	}
	if rem := time.Until(e.deadline); rem > 0 {
		return rem
	}
	return 0
}

// GenerationsDone reports whether a worker that has completed gens
// generations has reached the generation bound.
func (e *Engine) GenerationsDone(gens int64) bool {
	return e.budget.MaxGenerations > 0 && gens >= e.budget.MaxGenerations
}

// Expired reports whether the wall-clock deadline has passed or the
// context was cancelled — here or anywhere up the parent chain. It
// polls the clock, so call it at sweep granularity (or let StopStep
// throttle it).
func (e *Engine) Expired() bool {
	if e.ctx.Err() != nil {
		return true
	}
	if !e.deadline.IsZero() && !time.Now().Before(e.deadline) {
		return true
	}
	return e.parent != nil && e.parent.Expired()
}

// StopSweep is the per-sweep stop check for generation-structured
// solvers: deadline/cancellation plus the generation bound for a worker
// at gens completed generations. The evaluation bound is intentionally
// excluded — it is checked per breeding step via EvalsExhausted.
func (e *Engine) StopSweep(gens int64) bool {
	return e.Expired() || e.GenerationsDone(gens)
}

// StopStep is the per-step stop check for steady-state solvers (one
// offspring per step, no sweep structure): the evaluation bound every
// step, the deadline and cancellation every deadlinePollInterval steps.
func (e *Engine) StopStep(step int64) bool {
	if e.EvalsExhausted() {
		return true
	}
	return step%deadlinePollInterval == 0 && e.Expired()
}

// Observing reports whether an observer is attached. Solvers use it to
// gate observation-only work that would otherwise cost something even
// unobserved (scanning a population for its initial best, say); the
// per-evaluation Observe call itself needs no gate.
func (e *Engine) Observing() bool { return e.obs != nil }

// Observe records a candidate fitness for convergence tracing. With no
// observer attached it is a single nil check — solvers call it on the
// breeding hot path unconditionally. With an observer, it fires
// Observer.Improved exactly when fit strictly improves on the best
// fitness any engine in this family has observed (one winner per value
// under concurrency: the CAS loop publishes each improvement once).
//
// Fitness values must be non-negative (makespans and flowtime blends
// are): the float64-bits comparison relies on the IEEE ordering of
// non-negative doubles.
func (e *Engine) Observe(fit float64) {
	if e.obs == nil {
		return
	}
	bits := math.Float64bits(fit)
	for {
		cur := e.best.Load()
		if bits >= cur {
			return
		}
		if e.best.CompareAndSwap(cur, bits) {
			break
		}
	}
	e.obs.Improved(e.event(fit))
}

// Finish fires the terminal convergence event for this engine's run
// with the run's final best fitness. Solvers call it once, just before
// assembling their Result. Only the root engine emits: a constituent
// round of a composite run finishes a child engine, and letting every
// round fire Done would scatter per-lane "terminal" events through a
// trace whose run is still going — an observed run gets exactly one
// terminal event, from whichever solver owns the root.
func (e *Engine) Finish(fit float64) {
	if e.obs == nil || e.root != e {
		return
	}
	e.obs.Done(e.event(fit))
}

// event stamps an Event with the family-wide work and wall-time axes.
func (e *Engine) event(fit float64) Event {
	return Event{
		Lane:    e.lane,
		Evals:   e.root.Evals(),
		Elapsed: time.Since(e.root.start),
		Fitness: fit,
	}
}
