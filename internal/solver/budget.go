package solver

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Budget bounds a solver run. Bounds compose: the run stops at
// whichever fires first; zero values disable a bound. Context
// cancellation always stops a run regardless of the budget.
type Budget struct {
	// MaxDuration is the wall-clock budget (the paper's 90 s). Like the
	// paper, solvers check it coarsely — once per sweep or every few
	// steady-state steps — so runs may overshoot by one sweep (§3.2
	// accepts the same approximation).
	MaxDuration time.Duration
	// MaxEvaluations bounds the total number of fitness evaluations
	// across all workers, checked per breeding step.
	MaxEvaluations int64
	// MaxGenerations bounds each worker's (or island's) generation
	// count.
	MaxGenerations int64
}

// IsZero reports whether no bound is set.
func (b Budget) IsZero() bool {
	return b.MaxDuration <= 0 && b.MaxEvaluations <= 0 && b.MaxGenerations <= 0
}

// String renders the active bounds, e.g. "evals=8000 gens=50".
func (b Budget) String() string {
	var parts []string
	if b.MaxDuration > 0 {
		parts = append(parts, fmt.Sprintf("time=%v", b.MaxDuration))
	}
	if b.MaxEvaluations > 0 {
		parts = append(parts, fmt.Sprintf("evals=%d", b.MaxEvaluations))
	}
	if b.MaxGenerations > 0 {
		parts = append(parts, fmt.Sprintf("gens=%d", b.MaxGenerations))
	}
	if len(parts) == 0 {
		return "unbounded"
	}
	return strings.Join(parts, " ")
}

// EffectiveFor returns the budget as it will actually bind when run
// under ctx: a context deadline tightens (or introduces) MaxDuration,
// exactly as NewEngine absorbs it. Reports rendering a submitted
// Budget alone would claim "unbounded" for a run stopped by a context
// deadline; render the effective budget instead.
func (b Budget) EffectiveFor(ctx context.Context) Budget {
	if ctx == nil {
		return b
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); b.MaxDuration <= 0 || rem < b.MaxDuration {
			// Round for report readability (EffectiveFor feeds reports,
			// not enforcement — NewEngine absorbs the exact deadline).
			// An expired or sub-millisecond remainder clamps to a
			// minimal positive bound: zero or negative would read back
			// as "unbounded", the exact misreport this method removes.
			if rem = rem.Round(time.Millisecond); rem <= 0 {
				rem = time.Millisecond
			}
			b.MaxDuration = rem
		}
	}
	return b
}

// deadlinePollInterval is how many steady-state steps pass between
// deadline/cancellation polls in StopStep. Single-threaded breeding
// steps are microseconds, so polling every 64th keeps the overshoot
// far below a millisecond while keeping time.Now off the hot path.
const deadlinePollInterval = 64

// Engine is the shared stop-condition engine: one atomic evaluation
// counter plus coarse deadline/cancellation polling. Every solver in
// the repository drives its loop off one Engine instead of a bespoke
// copy of the deadline/budget logic.
//
// Granularity contract (matching the paper's §3.2): EvalsExhausted is
// cheap (one atomic load) and is checked before every breeding step;
// Expired polls the clock and the context and is checked once per
// sweep/generation — or every deadlinePollInterval steps via StopStep
// in steady-state loops — so wall-clock runs may overshoot by one
// sweep.
type Engine struct {
	budget   Budget
	ctx      context.Context
	deadline time.Time
	start    time.Time
	evals    atomic.Int64
}

// NewEngine starts the budget clock. A nil ctx is treated as
// context.Background().
func NewEngine(ctx context.Context, b Budget) *Engine {
	if ctx == nil {
		ctx = context.Background()
	}
	e := &Engine{budget: b, ctx: ctx, start: time.Now()}
	if b.MaxDuration > 0 {
		e.deadline = e.start.Add(b.MaxDuration)
	}
	if ctxDeadline, ok := ctx.Deadline(); ok && (e.deadline.IsZero() || ctxDeadline.Before(e.deadline)) {
		e.deadline = ctxDeadline
	}
	return e
}

// Budget returns the bounds the engine was created with.
func (e *Engine) Budget() Budget { return e.budget }

// EffectiveBudget returns the bounds the engine actually enforces: when
// a deadline is in force — whether from the budget's own MaxDuration or
// absorbed from the context at NewEngine time — MaxDuration reflects
// the distance from the engine's start to that effective deadline.
// Solvers record it on Result so job and sweep reports never show
// "unbounded" for a run that a context deadline is bounding.
func (e *Engine) EffectiveBudget() Budget {
	b := e.budget
	if !e.deadline.IsZero() {
		// A deadline already expired at engine start still bounds the
		// run (it stops immediately); clamp to a minimal positive
		// duration so the report never claims "unbounded".
		if b.MaxDuration = e.deadline.Sub(e.start); b.MaxDuration <= 0 {
			b.MaxDuration = time.Nanosecond
		}
	}
	return b
}

// AddEvals records n fitness evaluations and returns the new total.
func (e *Engine) AddEvals(n int64) int64 { return e.evals.Add(n) }

// Evals returns the evaluations recorded so far.
func (e *Engine) Evals() int64 { return e.evals.Load() }

// Elapsed is the wall time since the engine started.
func (e *Engine) Elapsed() time.Duration { return time.Since(e.start) }

// EvalsExhausted reports whether the evaluation budget is spent. One
// atomic load: safe to call before every breeding step on every worker.
func (e *Engine) EvalsExhausted() bool {
	return e.budget.MaxEvaluations > 0 && e.evals.Load() >= e.budget.MaxEvaluations
}

// RemainingEvals returns how many evaluations the budget still allows,
// or -1 when evaluations are unbounded.
func (e *Engine) RemainingEvals() int64 {
	if e.budget.MaxEvaluations <= 0 {
		return -1
	}
	if rem := e.budget.MaxEvaluations - e.evals.Load(); rem > 0 {
		return rem
	}
	return 0
}

// GenerationsDone reports whether a worker that has completed gens
// generations has reached the generation bound.
func (e *Engine) GenerationsDone(gens int64) bool {
	return e.budget.MaxGenerations > 0 && gens >= e.budget.MaxGenerations
}

// Expired reports whether the wall-clock deadline has passed or the
// context was cancelled. It polls the clock, so call it at sweep
// granularity (or let StopStep throttle it).
func (e *Engine) Expired() bool {
	if e.ctx.Err() != nil {
		return true
	}
	return !e.deadline.IsZero() && !time.Now().Before(e.deadline)
}

// StopSweep is the per-sweep stop check for generation-structured
// solvers: deadline/cancellation plus the generation bound for a worker
// at gens completed generations. The evaluation bound is intentionally
// excluded — it is checked per breeding step via EvalsExhausted.
func (e *Engine) StopSweep(gens int64) bool {
	return e.Expired() || e.GenerationsDone(gens)
}

// StopStep is the per-step stop check for steady-state solvers (one
// offspring per step, no sweep structure): the evaluation bound every
// step, the deadline and cancellation every deadlinePollInterval steps.
func (e *Engine) StopStep(step int64) bool {
	if e.EvalsExhausted() {
		return true
	}
	return step%deadlinePollInterval == 0 && e.Expired()
}
