// Package solver defines the unified solver layer shared by every
// metaheuristic and heuristic in the repository: a common Solver
// interface, one Result shape, a Budget of stop conditions with a
// single correct stop-condition engine, and a name-based registry.
//
// Before this layer existed, each algorithm (PA-CGA, the synchronous
// cellular GA, the Struggle GA, cMA+LTH, the generational GA, the
// island model, tabu search and the constructive heuristics) carried
// its own copy of the deadline/evaluation-budget loop and its own entry
// point. Now every algorithm implements Solver, registers itself under
// a stable name, and delegates stopping to Engine — so harnesses, CLIs
// and services dispatch by name instead of growing N-way switches.
package solver

import (
	"context"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/schedule"
)

// Solver is one scheduling algorithm behind a uniform run contract:
// solve the instance within the budget (and the context's lifetime) and
// report the common Result. Implementations must treat the receiver as
// immutable configuration so a registered Solver is safe for concurrent
// use.
type Solver interface {
	// Name is the stable registry key, e.g. "pa-cga" or "minmin".
	Name() string
	// Describe is a one-line human description for listings.
	Describe() string
	// Solve runs the algorithm on the instance. The run stops at
	// whichever fires first: a budget bound or ctx cancellation.
	// Constructive heuristics ignore the budget (they are zero-budget
	// solvers); every iterative solver requires at least one bound.
	Solve(ctx context.Context, inst *etc.Instance, b Budget) (*Result, error)
}

// Seeder is implemented by solvers whose randomness can be re-seeded;
// WithSeed must return a copy, leaving the receiver untouched.
type Seeder interface {
	WithSeed(seed uint64) Solver
}

// WithSeed returns s reconfigured with the seed when s supports
// seeding, and s unchanged otherwise (deterministic solvers).
func WithSeed(s Solver, seed uint64) Solver {
	if sd, ok := s.(Seeder); ok {
		return sd.WithSeed(seed)
	}
	return s
}

// Restarter is implemented by solvers that can begin their search from
// a caller-supplied schedule instead of their default construction (a
// warm start). WithStart must return a copy configured to start from
// start — the receiver stays untouched and start itself is never
// mutated (implementations clone it before searching). The schedule
// must belong to the same instance the returned solver will be run on;
// composite solvers use this to seed constituent restarts from a
// shared incumbent.
type Restarter interface {
	WithStart(start *schedule.Schedule) Solver
}

// Initializer is implemented by solvers that spend a fixed number of
// evaluations on initialization before the search proper begins — a
// population GA evaluates its whole initial population first.
// Composite solvers (the portfolio) use it to size restart rounds so a
// round amortizes the initialization it pays for; solvers that start
// searching immediately (trajectory methods, heuristics) simply don't
// implement it.
type Initializer interface {
	InitEvals(inst *etc.Instance) int64
}

// InitEvals reports the solver's declared initialization cost on inst,
// or 1 (the single construction/evaluation every solver performs) when
// it makes no declaration.
func InitEvals(s Solver, inst *etc.Instance) int64 {
	if in, ok := s.(Initializer); ok {
		if n := in.InitEvals(inst); n > 1 {
			return n
		}
	}
	return 1
}

// Reproducible is implemented by solvers that declare whether two runs
// with equal configuration, equal seed and a deterministic budget
// (evaluations or generations — wall-clock budgets are inherently
// timing-dependent) produce bit-identical results. Single-threaded
// solvers report true; solvers whose outcome depends on goroutine
// interleaving (the asynchronous cellular GA at >1 thread, the island
// model's timing-dependent migration) report false.
type Reproducible interface {
	Reproducible() bool
}

// IsReproducible reports the solver's declared reproducibility. Solvers
// that do not implement Reproducible make no claim and report false, so
// conformance harnesses only assert run-to-run equality where it is
// promised.
func IsReproducible(s Solver) bool {
	r, ok := s.(Reproducible)
	return ok && r.Reproducible()
}

// Result reports the outcome of any solver run. It is the one result
// shape shared across the solver layer (core.Result aliases it).
type Result struct {
	// Best is a clone of the best schedule found; BestFitness is its
	// fitness (makespan under the default objective).
	Best        *schedule.Schedule
	BestFitness float64
	// Evaluations counts fitness evaluations, including the initial
	// population — the paper's speedup currency (Eq. 5).
	Evaluations int64
	// Generations is the total number of block sweeps summed over
	// workers; PerThread holds the per-worker counts, which differ in
	// the asynchronous model when breeding loops take unequal time.
	Generations int64
	PerThread   []int64
	// LocalSearchMoves counts improving moves made by the local search.
	LocalSearchMoves int64
	// Duration is the measured wall time of the evolution phase.
	Duration time.Duration
	// EffectiveBudget records the bounds the run actually enforced: the
	// submitted budget with any context deadline absorbed by the stop
	// engine folded into MaxDuration (see Engine.EffectiveBudget).
	// Reporting the submitted budget alone misleads — it reads
	// "unbounded" when a context deadline was the real bound.
	EffectiveBudget Budget
	// Convergence, when recording was requested, holds the mean
	// population makespan at each generation index (Fig. 6).
	Convergence []float64
	// Diversity, when requested, holds the mean per-task Simpson
	// diversity of the population at each generation index.
	Diversity []float64
	// Constituents, set by composite meta-solvers (the portfolio),
	// breaks the run down per constituent; nil for single-solver runs.
	// The constituents' Evaluations sum to the composite's Evaluations,
	// which its parent budget bounds.
	Constituents []ConstituentResult
}

// ConstituentResult is one constituent solver's share of a composite
// (portfolio) run.
type ConstituentResult struct {
	// Solver is the constituent's registry name.
	Solver string
	// Evaluations is the constituent's share of the evaluation counter;
	// Generations sums its rounds' generation counts.
	Evaluations int64
	Generations int64
	// Rounds is how many (re)starts the race gave this constituent.
	Rounds int64
	// Improvements counts the constituent's accepted publications to
	// the shared incumbent — its contribution to the final answer.
	Improvements int64
	// BestFitness is the best fitness this constituent found itself
	// (+Inf rendered as 0 when it never produced a schedule).
	BestFitness float64
	// Busy is the wall time the constituent spent inside Solve calls.
	Busy time.Duration
	// Err reports a constituent failure; the race continues without it.
	Err string
}
