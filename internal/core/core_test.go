package core

import (
	"testing"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/heuristics"
	"gridsched/internal/operators"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
	"gridsched/internal/topology"
)

// rngForTest builds a deterministic RNG stream for direct population
// construction in white-box tests.
func rngForTest(seed uint64) *rng.Rand { return rng.New(seed) }

func testInstance(t testing.TB, seed uint64) *etc.Instance {
	t.Helper()
	in, err := etc.Generate(etc.GenSpec{
		Class: etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High},
		Tasks: 128, Machines: 16, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// smallParams returns a fast evaluation-bounded configuration on an 8x8
// grid for unit testing.
func smallParams(threads int, seed uint64) Params {
	p := DefaultParams()
	p.GridW, p.GridH = 8, 8
	p.Threads = threads
	p.Seed = seed
	p.MaxEvaluations = 3000
	p.Local = operators.H2LL{Iterations: 5}
	return p
}

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.GridW != 16 || p.GridH != 16 {
		t.Fatalf("population %dx%d, want 16x16", p.GridW, p.GridH)
	}
	if p.Neighborhood != topology.L5 {
		t.Fatal("neighborhood not L5")
	}
	if p.Selector.Name() != "best2" {
		t.Fatalf("selection %q, want best2", p.Selector.Name())
	}
	if p.CrossProb != 1.0 || p.MutProb != 1.0 || p.LocalProb != 1.0 {
		t.Fatal("operator probabilities must be 1.0 (Table 1)")
	}
	if p.Mutation.Name() != "move" {
		t.Fatalf("mutation %q, want move", p.Mutation.Name())
	}
	if p.Replacement != operators.ReplaceIfBetter {
		t.Fatal("replacement not replace-if-better")
	}
	if p.Sweep != topology.LineSweep {
		t.Fatal("sweep not line sweep")
	}
	if p.Threads < 1 || p.Threads > 4 {
		t.Fatalf("threads %d outside the paper's 1..4 range", p.Threads)
	}
}

func TestRunRequiresStopCondition(t *testing.T) {
	in := testInstance(t, 1)
	p := DefaultParams()
	if _, err := Run(in, p); err == nil {
		t.Fatal("Run accepted params with no stop condition")
	}
}

func TestRunParamValidation(t *testing.T) {
	in := testInstance(t, 1)
	bad := []func(*Params){
		func(p *Params) { p.GridW = -1 },
		func(p *Params) { p.Threads = -2 },
		func(p *Params) { p.Threads = 10000 },
		func(p *Params) { p.CrossProb = 1.5 },
		func(p *Params) { p.MutProb = -0.1 },
		func(p *Params) { p.LocalProb = 2 },
		func(p *Params) { p.LockMode = NoLock; p.Threads = 2 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		p.MaxEvaluations = 100
		mutate(&p)
		if _, err := Run(in, p); err == nil {
			t.Fatalf("bad param set %d accepted", i)
		}
	}
}

func TestRunSingleThreadDeterministic(t *testing.T) {
	in := testInstance(t, 2)
	p := smallParams(1, 42)
	a, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestFitness != b.BestFitness {
		t.Fatalf("single-thread runs differ: %v vs %v", a.BestFitness, b.BestFitness)
	}
	if a.Best.HammingDistance(b.Best) != 0 {
		t.Fatal("single-thread runs found different best schedules")
	}
	if a.Evaluations != b.Evaluations {
		t.Fatalf("evaluation counts differ: %d vs %d", a.Evaluations, b.Evaluations)
	}
}

func TestRunRespectsEvaluationBudget(t *testing.T) {
	in := testInstance(t, 3)
	p := smallParams(1, 1)
	p.MaxEvaluations = 500
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations < 500-64 || res.Evaluations > 500+64 {
		t.Fatalf("evaluations %d far from budget 500", res.Evaluations)
	}
}

func TestRunRespectsGenerationBudget(t *testing.T) {
	in := testInstance(t, 4)
	p := smallParams(2, 1)
	p.MaxEvaluations = 0
	p.MaxGenerations = 7
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range res.PerThread {
		if g != 7 {
			t.Fatalf("worker %d ran %d generations, want 7", i, g)
		}
	}
	if res.Generations != 14 {
		t.Fatalf("total generations %d, want 14", res.Generations)
	}
}

func TestRunRespectsWallClock(t *testing.T) {
	in := testInstance(t, 5)
	p := smallParams(2, 1)
	p.MaxEvaluations = 0
	p.MaxDuration = 50 * time.Millisecond
	start := time.Now()
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// The paper accepts overshoot of one generation; a generation here is
	// well under 100ms.
	if elapsed > 2*time.Second {
		t.Fatalf("run took %v for a 50ms budget", elapsed)
	}
	if res.Evaluations <= 64 {
		t.Fatal("run did no work within the wall budget")
	}
}

func TestRunImprovesOverMinMin(t *testing.T) {
	// The GA must beat its own Min-min seed given some budget — the
	// paper's whole point is improving over constructive heuristics.
	in := testInstance(t, 6)
	mm := heuristics.MinMin(in).Makespan()
	p := smallParams(1, 7)
	p.MaxEvaluations = 20000
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness >= mm {
		t.Fatalf("PA-CGA (%v) failed to improve on Min-min (%v)", res.BestFitness, mm)
	}
}

func TestRunBestMatchesSchedule(t *testing.T) {
	in := testInstance(t, 7)
	res, err := Run(in, smallParams(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("best schedule violates CT invariant: %v", err)
	}
	if !res.Best.Complete() {
		t.Fatal("best schedule incomplete")
	}
	if got := res.Best.Makespan(); got != res.BestFitness {
		t.Fatalf("BestFitness %v but schedule makespan %v", res.BestFitness, got)
	}
}

func TestRunMultiThreadedAllLockModes(t *testing.T) {
	in := testInstance(t, 8)
	for _, mode := range []LockMode{PerCellRWMutex, PerCellMutex, GlobalMutex} {
		p := smallParams(4, 11)
		p.LockMode = mode
		res, err := Run(in, p)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if err := res.Best.Validate(); err != nil {
			t.Fatalf("mode %v: corrupt best schedule: %v", mode, err)
		}
	}
}

func TestRunThreadsPartitionPopulation(t *testing.T) {
	in := testInstance(t, 9)
	p := smallParams(3, 13)
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerThread) != 3 {
		t.Fatalf("PerThread has %d entries, want 3", len(res.PerThread))
	}
}

func TestRunWithoutMinMinSeed(t *testing.T) {
	in := testInstance(t, 10)
	p := smallParams(1, 17)
	p.DisableMinMinSeed = true
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	// With the Min-min seed the very first population already contains
	// its fitness; without it the initial best should generally be worse.
	pSeeded := smallParams(1, 17)
	pSeeded.MaxEvaluations = 70 // barely past initial evaluation (64)
	p.MaxEvaluations = 70
	seeded, err := Run(in, pSeeded)
	if err != nil {
		t.Fatal(err)
	}
	unseeded, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if seeded.BestFitness > unseeded.BestFitness {
		t.Fatalf("Min-min seeding made the initial population worse: %v vs %v",
			seeded.BestFitness, unseeded.BestFitness)
	}
}

func TestRunConvergenceRecording(t *testing.T) {
	in := testInstance(t, 11)
	p := smallParams(2, 19)
	p.MaxEvaluations = 0
	p.MaxGenerations = 10
	p.RecordConvergence = true
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Convergence) != 10 {
		t.Fatalf("convergence has %d points, want 10", len(res.Convergence))
	}
	// Replace-if-better means the population mean must never increase.
	for g := 1; g < len(res.Convergence); g++ {
		if res.Convergence[g] > res.Convergence[g-1]+1e-6 {
			t.Fatalf("population mean increased at generation %d: %v -> %v",
				g, res.Convergence[g-1], res.Convergence[g])
		}
	}
}

func TestRunMoreEvaluationsIsNotWorse(t *testing.T) {
	in := testInstance(t, 12)
	short := smallParams(1, 23)
	short.MaxEvaluations = 500
	long := smallParams(1, 23)
	long.MaxEvaluations = 10000
	a, err := Run(in, short)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(in, long)
	if err != nil {
		t.Fatal(err)
	}
	if b.BestFitness > a.BestFitness {
		t.Fatalf("longer run found worse solution: %v vs %v", b.BestFitness, a.BestFitness)
	}
}

func TestRunLocalSearchMovesCounted(t *testing.T) {
	in := testInstance(t, 13)
	p := smallParams(1, 29)
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalSearchMoves == 0 {
		t.Fatal("H2LL reported zero improving moves over an entire run")
	}
	p.Local = operators.H2LL{Iterations: 0}
	res0, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if res0.LocalSearchMoves != 0 {
		t.Fatal("0-iteration H2LL reported moves")
	}
}

func TestRunAllCrossovers(t *testing.T) {
	in := testInstance(t, 14)
	for _, cx := range []operators.Crossover{operators.OnePoint{}, operators.TwoPoint{}, operators.Uniform{}} {
		p := smallParams(2, 31)
		p.Crossover = cx
		res, err := Run(in, p)
		if err != nil {
			t.Fatalf("%s: %v", cx.Name(), err)
		}
		if err := res.Best.Validate(); err != nil {
			t.Fatalf("%s: %v", cx.Name(), err)
		}
	}
}

func TestRunSweepPolicies(t *testing.T) {
	in := testInstance(t, 15)
	for _, sw := range []topology.SweepPolicy{topology.LineSweep, topology.FixedRandomSweep, topology.NewRandomSweep} {
		p := smallParams(2, 37)
		p.Sweep = sw
		if _, err := Run(in, p); err != nil {
			t.Fatalf("%v: %v", sw, err)
		}
	}
}

// --- Synchronous variant ---

func TestRunSyncBasic(t *testing.T) {
	in := testInstance(t, 16)
	p := smallParams(1, 41)
	res, err := RunSync(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Evaluations == 0 || res.Generations == 0 {
		t.Fatal("sync run did no work")
	}
}

func TestRunSyncDeterministic(t *testing.T) {
	in := testInstance(t, 17)
	p := smallParams(1, 43)
	a, _ := RunSync(in, p)
	b, _ := RunSync(in, p)
	if a.BestFitness != b.BestFitness || a.Evaluations != b.Evaluations {
		t.Fatal("sync runs with identical seed differ")
	}
}

func TestRunSyncGenerationBudget(t *testing.T) {
	in := testInstance(t, 18)
	p := smallParams(1, 47)
	p.MaxEvaluations = 0
	p.MaxGenerations = 5
	res, err := RunSync(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations != 5 {
		t.Fatalf("sync ran %d generations, want 5", res.Generations)
	}
	// 64 initial + 5 generations of 64 breedings.
	if res.Evaluations != 64+5*64 {
		t.Fatalf("sync evaluations %d, want %d", res.Evaluations, 64+5*64)
	}
}

func TestRunSyncConvergenceMonotone(t *testing.T) {
	in := testInstance(t, 19)
	p := smallParams(1, 53)
	p.MaxEvaluations = 0
	p.MaxGenerations = 8
	p.RecordConvergence = true
	res, err := RunSync(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Convergence) != 8 {
		t.Fatalf("convergence %d points, want 8", len(res.Convergence))
	}
	for g := 1; g < len(res.Convergence); g++ {
		if res.Convergence[g] > res.Convergence[g-1]+1e-6 {
			t.Fatal("sync population mean increased under replace-if-better")
		}
	}
}

func TestAsyncConvergesFasterThanSyncOnGenerations(t *testing.T) {
	// The literature result the paper cites (§3.1): asynchronous updates
	// converge the population faster than synchronous ones at equal
	// generation counts. Compare best fitness after the same number of
	// generations, averaged over seeds to avoid flakiness.
	in := testInstance(t, 20)
	var asyncSum, syncSum float64
	const seeds = 5
	for s := uint64(0); s < seeds; s++ {
		p := smallParams(1, 100+s)
		p.MaxEvaluations = 0
		p.MaxGenerations = 30
		a, err := Run(in, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunSync(in, p)
		if err != nil {
			t.Fatal(err)
		}
		asyncSum += a.BestFitness
		syncSum += b.BestFitness
	}
	if asyncSum > syncSum*1.05 {
		t.Fatalf("async (%v) much worse than sync (%v) at equal generations", asyncSum/seeds, syncSum/seeds)
	}
}

func TestAggregateSeriesWeighting(t *testing.T) {
	blocks := []topology.Block{{Start: 0, End: 3}, {Start: 3, End: 4}}
	ws := []*worker{
		{conv: []float64{10, 8}},
		{conv: []float64{20}},
	}
	get := func(w *worker) []float64 { return w.conv }
	got := aggregateSeries(ws, blocks, get)
	if len(got) != 2 {
		t.Fatalf("series length %d", len(got))
	}
	// g0: (10*3 + 20*1)/4 = 12.5; g1: worker1 finished, reuse 20: (8*3+20)/4 = 11.
	if got[0] != 12.5 || got[1] != 11 {
		t.Fatalf("aggregate = %v, want [12.5 11]", got)
	}
	if aggregateSeries([]*worker{{}, {}}, blocks, get) != nil {
		t.Fatal("empty convergence should aggregate to nil")
	}
}

func TestRunDiversityRecording(t *testing.T) {
	in := testInstance(t, 25)
	p := smallParams(2, 61)
	p.MaxEvaluations = 0
	p.MaxGenerations = 12
	p.RecordDiversity = true
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diversity) != 12 {
		t.Fatalf("diversity has %d points, want 12", len(res.Diversity))
	}
	for g, d := range res.Diversity {
		if d < 0 || d > 1 {
			t.Fatalf("diversity[%d] = %v outside [0,1]", g, d)
		}
	}
	// The first sample is taken after one full generation, so selection
	// has already eroded the random population's near-uniform diversity
	// (bound 1 - 1/machines ≈ 0.94); it must still be clearly nonzero,
	// and must keep decreasing as the population converges.
	if res.Diversity[0] < 0.1 {
		t.Fatalf("diversity after one generation %v implausibly low", res.Diversity[0])
	}
	if last := res.Diversity[len(res.Diversity)-1]; last >= res.Diversity[0] {
		t.Fatalf("diversity did not decrease: %v -> %v", res.Diversity[0], last)
	}
}

func TestRunSyncDiversityRecording(t *testing.T) {
	in := testInstance(t, 26)
	p := smallParams(1, 67)
	p.MaxEvaluations = 0
	p.MaxGenerations = 6
	p.RecordDiversity = true
	res, err := RunSync(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diversity) != 6 {
		t.Fatalf("diversity points %d", len(res.Diversity))
	}
	if res.Diversity[5] >= res.Diversity[0] {
		t.Fatal("sync diversity did not decrease")
	}
}

func TestBlockDiversityBounds(t *testing.T) {
	in := testInstance(t, 27)
	pop := newPopulation(in, 16, rngForTest(1), false, nil, NoLock, func(s *schedule.Schedule) float64 { return s.Makespan() })
	_, d := pop.blockDiversity(0, 16, nil)
	if d <= 0 || d >= 1 {
		t.Fatalf("random population diversity %v", d)
	}
	// Make all individuals identical: diversity 0.
	for i := 1; i < 16; i++ {
		pop.sched(i).CopyFrom(pop.sched(0))
		pop.fit[i] = pop.fit[0]
	}
	if _, d := pop.blockDiversity(0, 16, nil); d != 0 {
		t.Fatalf("identical population diversity %v, want 0", d)
	}
	if _, d := pop.blockDiversity(3, 3, nil); d != 0 {
		t.Fatalf("empty block diversity %v", d)
	}
}

func TestFlowtimeWeightValidation(t *testing.T) {
	in := testInstance(t, 28)
	p := smallParams(1, 71)
	p.FlowtimeWeight = 1.5
	if _, err := Run(in, p); err == nil {
		t.Fatal("FlowtimeWeight > 1 accepted")
	}
	p.FlowtimeWeight = -0.1
	if _, err := Run(in, p); err == nil {
		t.Fatal("negative FlowtimeWeight accepted")
	}
}

func TestFlowtimeObjectiveOptimizesFlowtime(t *testing.T) {
	// Pure flowtime weight must yield schedules with flowtime no worse
	// than the makespan-only objective produces, averaged over seeds.
	// The local search still chases makespan, so disable it to keep the
	// comparison about the objective.
	in := testInstance(t, 29)
	var ftMakespanObj, ftFlowtimeObj float64
	const seeds = 4
	for s := uint64(0); s < seeds; s++ {
		base := smallParams(1, 200+s)
		base.LocalProb = 0
		base.MaxEvaluations = 6000
		resM, err := Run(in, base)
		if err != nil {
			t.Fatal(err)
		}
		withFT := base
		withFT.FlowtimeWeight = 1
		resF, err := Run(in, withFT)
		if err != nil {
			t.Fatal(err)
		}
		ftMakespanObj += resM.Best.Flowtime()
		ftFlowtimeObj += resF.Best.Flowtime()
	}
	if ftFlowtimeObj > ftMakespanObj {
		t.Fatalf("flowtime objective produced worse flowtime: %v vs %v",
			ftFlowtimeObj/seeds, ftMakespanObj/seeds)
	}
}

func TestFlowtimeObjectiveFitnessSemantics(t *testing.T) {
	in := testInstance(t, 30)
	p := smallParams(1, 73)
	p.FlowtimeWeight = 0.5
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*res.Best.Makespan() + 0.5*res.Best.Flowtime()/float64(in.T)
	if diff := res.BestFitness - want; diff > 1e-6*want || diff < -1e-6*want {
		t.Fatalf("BestFitness %v, want weighted objective %v", res.BestFitness, want)
	}
}

func TestLockModeString(t *testing.T) {
	names := map[LockMode]string{
		PerCellRWMutex: "rwmutex",
		PerCellMutex:   "mutex",
		GlobalMutex:    "global",
		NoLock:         "none",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("LockMode %d string %q, want %q", int(m), m.String(), want)
		}
	}
}

// TestSyncPartialGenerationRecorded pins the evaluation-budget
// boundary at MaxEvals = popSize + k, k < popSize: the synchronous
// model installs the k offspring bred before the budget tripped, and
// that partial generation must be visible in Generations, Convergence
// and Diversity — records that diverge from what the population holds
// would poison every downstream convergence analysis.
func TestSyncPartialGenerationRecorded(t *testing.T) {
	in := testInstance(t, 5)
	base := smallParams(1, 9)
	base.RecordConvergence = true
	base.RecordDiversity = true
	popSize := int64(base.GridW * base.GridH)

	for _, tc := range []struct {
		name      string
		extra     int64 // evaluations past the initial population
		wantGens  int64
		wantEvals int64
	}{
		{"exhausted-at-init", 0, 0, popSize},
		{"partial-first-sweep", 10, 1, popSize + 10},
		{"full-plus-partial", popSize + 5, 2, 2*popSize + 5},
		{"exactly-one-sweep", popSize, 1, 2 * popSize},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			p.MaxEvaluations = popSize + tc.extra
			res, err := RunSync(in, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Evaluations != tc.wantEvals {
				t.Fatalf("Evaluations = %d, want %d", res.Evaluations, tc.wantEvals)
			}
			if res.Generations != tc.wantGens {
				t.Fatalf("Generations = %d, want %d", res.Generations, tc.wantGens)
			}
			if got := int64(len(res.Convergence)); got != tc.wantGens {
				t.Fatalf("len(Convergence) = %d, want Generations %d", got, tc.wantGens)
			}
			if got := int64(len(res.Diversity)); got != tc.wantGens {
				t.Fatalf("len(Diversity) = %d, want Generations %d", got, tc.wantGens)
			}
			if len(res.PerThread) != 1 || res.PerThread[0] != tc.wantGens {
				t.Fatalf("PerThread = %v, want [%d]", res.PerThread, tc.wantGens)
			}
		})
	}
}
