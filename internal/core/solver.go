package core

import (
	"context"

	"gridsched/internal/etc"
	"gridsched/internal/schedule"
	"gridsched/internal/solver"
)

// PACGA adapts the parallel asynchronous cellular GA to the unified
// solver interface. Params carries the full configuration; the budget
// fields are overwritten by the Budget passed to Solve.
type PACGA struct {
	Params Params
}

// Name implements solver.Solver.
func (s PACGA) Name() string { return "pa-cga" }

// Describe implements solver.Solver.
func (s PACGA) Describe() string {
	return "parallel asynchronous cellular GA (the paper's algorithm, Table 1 defaults)"
}

// WithSeed implements solver.Seeder.
func (s PACGA) WithSeed(seed uint64) solver.Solver {
	s.Params.Seed = seed
	return s
}

// WithStart implements solver.Restarter: the returned copy injects the
// schedule as one individual of its initial population (the warm-start
// counterpart of the Min-min seed), so portfolio restarts resume from
// the shared incumbent instead of rediscovering it.
func (s PACGA) WithStart(start *schedule.Schedule) solver.Solver {
	s.Params.SeedSchedule = start
	return s
}

// InitEvals implements solver.Initializer: every run evaluates the
// full initial population before breeding (Algorithm 2's
// initial_evaluation).
func (s PACGA) InitEvals(*etc.Instance) int64 {
	p := s.Params.withDefaults()
	return int64(p.GridW) * int64(p.GridH)
}

// Reproducible implements solver.Reproducible: the asynchronous engine
// is bit-reproducible only single-threaded — at >1 thread the fitness
// values read across block boundaries depend on worker interleaving.
func (s PACGA) Reproducible() bool { return s.Params.Threads <= 1 }

// Solve implements solver.Solver.
func (s PACGA) Solve(ctx context.Context, inst *etc.Instance, b solver.Budget) (*solver.Result, error) {
	return RunContext(ctx, inst, s.Params.withBudget(b))
}

// SyncCGA adapts the synchronous cellular GA (the async-vs-sync
// ablation) to the unified solver interface.
type SyncCGA struct {
	Params Params
}

// Name implements solver.Solver.
func (s SyncCGA) Name() string { return "sync-cga" }

// Describe implements solver.Solver.
func (s SyncCGA) Describe() string {
	return "synchronous cellular GA (single thread, generation barrier)"
}

// WithSeed implements solver.Seeder.
func (s SyncCGA) WithSeed(seed uint64) solver.Solver {
	s.Params.Seed = seed
	return s
}

// WithStart implements solver.Restarter (see PACGA.WithStart).
func (s SyncCGA) WithStart(start *schedule.Schedule) solver.Solver {
	s.Params.SeedSchedule = start
	return s
}

// InitEvals implements solver.Initializer (see PACGA.InitEvals).
func (s SyncCGA) InitEvals(*etc.Instance) int64 {
	p := s.Params.withDefaults()
	return int64(p.GridW) * int64(p.GridH)
}

// Reproducible implements solver.Reproducible: the synchronous variant
// runs one thread behind a generation barrier.
func (s SyncCGA) Reproducible() bool { return true }

// Solve implements solver.Solver.
func (s SyncCGA) Solve(ctx context.Context, inst *etc.Instance, b solver.Budget) (*solver.Result, error) {
	return RunSyncContext(ctx, inst, s.Params.withBudget(b))
}

func init() {
	solver.Register(PACGA{Params: DefaultParams()})
	solver.Register(SyncCGA{Params: DefaultParams()})
}
