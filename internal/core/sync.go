package core

import (
	"context"

	"gridsched/internal/etc"
	"gridsched/internal/operators"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
	"gridsched/internal/solver"
	"gridsched/internal/topology"
)

// RunSync executes the synchronous cellular GA model of §3.1: every
// generation, all offspring are produced against the current population
// and placed in an auxiliary population, which then replaces the current
// one at once. It is single-threaded (Params.Threads and LockMode are
// ignored) and serves as the async-vs-sync ablation and as the substrate
// for the cellular memetic baseline.
func RunSync(inst *etc.Instance, p Params) (*Result, error) {
	return RunSyncContext(context.Background(), inst, p)
}

// RunSyncContext is RunSync with context cancellation, checked at
// generation granularity like the wall-clock deadline.
func RunSyncContext(ctx context.Context, inst *etc.Instance, p Params) (*Result, error) {
	p = p.withDefaults()
	p.Threads = 1
	p.LockMode = NoLock
	if err := p.validate(); err != nil {
		return nil, err
	}
	grid, err := topology.NewGrid(p.GridW, p.GridH)
	if err != nil {
		return nil, err
	}

	root := rng.New(p.Seed)
	initRNG := root.Split(0)
	pop := newPopulation(inst, grid.Size(), initRNG, !p.DisableMinMinSeed, p.SeedSchedule, NoLock, p.fitness)
	r := root.Split(1)

	// Auxiliary generation buffer: offspring and their fitness, laid
	// out as one arena so the install sweep copies between contiguous
	// planes.
	auxArena := schedule.NewArena(inst, grid.Size())
	aux := make([]*schedule.Schedule, grid.Size())
	auxFit := make([]float64, grid.Size())
	accepted := make([]bool, grid.Size())
	for i := range aux {
		aux[i] = auxArena.At(i)
	}
	p1 := schedule.New(inst)
	p2 := schedule.New(inst)
	neigh := make([]int, 0, p.Neighborhood.Size())
	cands := make([]operators.Candidate, 0, p.Neighborhood.Size())

	eng := solver.NewEngine(ctx, p.budget())
	eng.AddEvals(int64(pop.size()))
	if eng.Observing() {
		_, f := pop.best()
		eng.Observe(f)
	}
	var lsMoves int64
	var gens int64
	var conv, div []float64
	var divCount []int
	var scratch schedule.Scratch

	// install replaces the first n cells with their accepted offspring;
	// record counts the installed (possibly partial) generation and
	// samples the post-replacement population, so Generations,
	// Convergence and Diversity always describe what the population
	// actually holds — a partially-swept generation whose offspring were
	// installed but never counted would leave the records diverging
	// from the population.
	install := func(n int) {
		for c := 0; c < n; c++ {
			if accepted[c] {
				pop.sched(c).CopyFrom(aux[c])
				pop.fit[c] = auxFit[c]
			}
		}
	}
	record := func() {
		gens++
		if p.RecordConvergence {
			conv = append(conv, pop.meanFitnessRange(0, pop.size()))
		}
		if p.RecordDiversity {
			var d float64
			divCount, d = pop.blockDiversity(0, pop.size(), divCount)
			div = append(div, d)
		}
	}

loop:
	for {
		if eng.StopSweep(gens) {
			break
		}
		for cell := 0; cell < grid.Size(); cell++ {
			if eng.EvalsExhausted() {
				// Install the offspring bred so far in this generation,
				// then stop: a partially-swept synchronous generation
				// must not leave stale aux entries behind — and, once
				// installed, must be visible in the run records too.
				if cell > 0 {
					install(cell)
					record()
				}
				break loop
			}
			neigh = p.Neighborhood.Neighbors(grid, cell, neigh)
			cands = cands[:0]
			for _, c := range neigh {
				cands = append(cands, operators.Candidate{Cell: c, Fitness: pop.fit[c]})
			}
			i1, i2 := p.Selector.Select(cands, r)
			p1.CopyFrom(pop.sched(cands[i1].Cell))
			if i2 == i1 {
				p2.CopyFrom(p1)
			} else {
				p2.CopyFrom(pop.sched(cands[i2].Cell))
			}
			if r.Bool(p.CrossProb) {
				p.Crossover.Cross(aux[cell], p1, p2, r)
			} else {
				aux[cell].CopyFrom(p1)
			}
			if r.Bool(p.MutProb) {
				p.Mutation.Mutate(aux[cell], r)
			}
			if p.LocalProb > 0 && r.Bool(p.LocalProb) {
				lsMoves += int64(p.Local.Apply(aux[cell], r))
			}
			auxFit[cell] = p.fitnessWith(aux[cell], &scratch)
			eng.AddEvals(1)
			eng.Observe(auxFit[cell])
			accepted[cell] = p.Replacement.Accepts(pop.fit[cell], auxFit[cell])
		}
		// Synchronous replacement: the whole generation installs at once.
		install(grid.Size())
		record()
	}

	res := &Result{
		Evaluations:      eng.Evals(),
		LocalSearchMoves: lsMoves,
		Duration:         eng.Elapsed(),
		EffectiveBudget:  eng.EffectiveBudget(),
		Generations:      gens,
		PerThread:        []int64{gens},
		Convergence:      conv,
		Diversity:        div,
	}
	res.Best, res.BestFitness = pop.best()
	eng.Finish(res.BestFitness)
	return res, nil
}
