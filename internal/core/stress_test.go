package core

import (
	"sync"
	"testing"

	"gridsched/internal/etc"
	"gridsched/internal/operators"
	"gridsched/internal/topology"
)

// Stress and robustness tests for the parallel engine beyond the unit
// tests in core_test.go: oversubscribed thread counts, degenerate grids,
// concurrent independent runs, and worst-case block shapes.

func stressInstance(t testing.TB, seed uint64) *etc.Instance {
	t.Helper()
	in, err := etc.Generate(etc.GenSpec{
		Class: etc.Class{Consistency: etc.SemiConsistent, TaskHet: etc.High, MachineHet: etc.Low},
		Tasks: 96, Machines: 12, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRunManyThreadsBeyondPaper(t *testing.T) {
	// The paper stops at 4 threads; future work asks for more
	// parallelism. The engine must stay correct (if not faster) when
	// heavily oversubscribed.
	if testing.Short() {
		t.Skip("oversubscription stress skipped in -short mode")
	}
	in := stressInstance(t, 1)
	for _, threads := range []int{6, 8, 16} {
		p := DefaultParams()
		p.GridW, p.GridH = 8, 8
		p.Threads = threads
		p.Seed = 5
		p.MaxEvaluations = 4000
		res, err := Run(in, p)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if err := res.Best.Validate(); err != nil {
			t.Fatalf("threads=%d: corrupt best: %v", threads, err)
		}
		if len(res.PerThread) != threads {
			t.Fatalf("threads=%d: %d per-thread entries", threads, len(res.PerThread))
		}
	}
}

func TestRunOneThreadPerCell(t *testing.T) {
	// Extreme partition: every individual its own block (4x4 grid, 16
	// threads). Every neighborhood read crosses block boundaries.
	if testing.Short() {
		t.Skip("one-thread-per-cell stress skipped in -short mode")
	}
	in := stressInstance(t, 2)
	p := DefaultParams()
	p.GridW, p.GridH = 4, 4
	p.Threads = 16
	p.Seed = 7
	p.MaxEvaluations = 2000
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunDegenerateGrids(t *testing.T) {
	in := stressInstance(t, 3)
	shapes := [][2]int{{1, 16}, {16, 1}, {2, 3}, {1, 1}}
	for _, sh := range shapes {
		p := DefaultParams()
		p.GridW, p.GridH = sh[0], sh[1]
		p.Threads = 1
		p.Seed = 9
		p.MaxEvaluations = 500
		res, err := Run(in, p)
		if err != nil {
			t.Fatalf("grid %dx%d: %v", sh[0], sh[1], err)
		}
		if err := res.Best.Validate(); err != nil {
			t.Fatalf("grid %dx%d: %v", sh[0], sh[1], err)
		}
	}
}

func TestConcurrentIndependentRuns(t *testing.T) {
	// Multiple engines sharing one immutable instance must not
	// interfere: the instance is read-only and all mutable state is
	// engine-local.
	if testing.Short() {
		t.Skip("concurrent independent-run stress skipped in -short mode")
	}
	in := stressInstance(t, 4)
	var wg sync.WaitGroup
	results := make([]*Result, 6)
	errs := make([]error, 6)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := DefaultParams()
			p.GridW, p.GridH = 8, 8
			p.Threads = 2
			p.Seed = 100 // identical seed: single-engine determinism is per-run
			p.MaxEvaluations = 3000
			results[i], errs[i] = Run(in, p)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if err := results[i].Best.Validate(); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

func TestRunTinyEvaluationBudget(t *testing.T) {
	// A budget below the initial population size: the engine must stop
	// immediately after (or during) initialization without breeding.
	in := stressInstance(t, 5)
	p := DefaultParams()
	p.GridW, p.GridH = 8, 8
	p.Threads = 2
	p.Seed = 3
	p.MaxEvaluations = 10
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations != 0 {
		t.Fatalf("generations %d with a sub-initialization budget", res.Generations)
	}
	if res.Best == nil || !res.Best.Complete() {
		t.Fatal("no valid best from the initial population")
	}
}

func TestRunAllNeighborhoods(t *testing.T) {
	in := stressInstance(t, 6)
	for _, n := range []topology.Neighborhood{topology.L5, topology.C9, topology.L9} {
		p := DefaultParams()
		p.GridW, p.GridH = 8, 8
		p.Threads = 3
		p.Neighborhood = n
		p.Seed = 11
		p.MaxEvaluations = 3000
		res, err := Run(in, p)
		if err != nil {
			t.Fatalf("%v: %v", n, err)
		}
		if err := res.Best.Validate(); err != nil {
			t.Fatalf("%v: %v", n, err)
		}
	}
}

func TestRunReplaceAlwaysKeepsBestEver(t *testing.T) {
	// With ReplaceAlways the population can lose good individuals; the
	// reported best must still be a valid complete schedule and not
	// worse than what a fresh random schedule would give on average.
	in := stressInstance(t, 7)
	p := DefaultParams()
	p.GridW, p.GridH = 8, 8
	p.Threads = 2
	p.Replacement = operators.ReplaceAlways
	p.Seed = 13
	p.MaxEvaluations = 4000
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunZeroProbabilityOperators(t *testing.T) {
	// All operator probabilities zero: offspring are pure copies of the
	// best parent; with replace-if-better nothing ever replaces, and the
	// engine must still terminate and report the Min-min seed as best.
	in := stressInstance(t, 8)
	p := DefaultParams()
	p.GridW, p.GridH = 8, 8
	p.Threads = 2
	p.CrossProb, p.MutProb, p.LocalProb = 0, 0, 0
	p.Seed = 17
	p.MaxEvaluations = 2000
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	// Cell 0 holds Min-min; nothing can improve on it without operators.
	mmFit := res.BestFitness
	p2 := p
	p2.MaxEvaluations = 200
	res2, err := Run(in, p2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.BestFitness != mmFit {
		t.Fatalf("operator-free evolution changed the best: %v vs %v", res2.BestFitness, mmFit)
	}
}

func TestResultPerThreadSumsToGenerations(t *testing.T) {
	in := stressInstance(t, 9)
	p := DefaultParams()
	p.GridW, p.GridH = 8, 8
	p.Threads = 4
	p.Seed = 19
	p.MaxEvaluations = 5000
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, g := range res.PerThread {
		sum += g
	}
	if sum != res.Generations {
		t.Fatalf("PerThread sums to %d, Generations %d", sum, res.Generations)
	}
}
