// Package core implements the paper's contribution: PA-CGA, a parallel
// asynchronous cellular genetic algorithm for multi-core processors
// (§3.2), applied to ETC-model batch scheduling.
//
// The population lives on a 2-D toroidal grid and is partitioned into
// contiguous row-major blocks, one per worker goroutine. Workers evolve
// their blocks independently — no generation barrier — and neighborhoods
// crossing block boundaries are the only communication. Shared access is
// synchronized with one read-write lock per individual, mirroring the
// paper's POSIX rwlocks. A synchronous single-threaded cellular GA is
// included for the async-vs-sync ablation and as the substrate of the
// cMA baseline.
package core

import (
	"fmt"
	"time"

	"gridsched/internal/operators"
	"gridsched/internal/schedule"
	"gridsched/internal/solver"
	"gridsched/internal/topology"
)

// LockMode selects the synchronization strategy guarding individuals.
// The paper uses read-write locks; the other modes exist for the locking
// ablation benchmark (DESIGN.md §4.2).
type LockMode int

const (
	// PerCellRWMutex is the paper's scheme: one sync.RWMutex per
	// individual, shared reads, exclusive writes.
	PerCellRWMutex LockMode = iota
	// PerCellMutex degrades reads to exclusive: one plain mutex per
	// individual.
	PerCellMutex
	// GlobalMutex serializes every individual access behind a single
	// population-wide mutex.
	GlobalMutex
	// NoLock disables locking entirely. Only valid with one thread.
	NoLock
)

// String implements fmt.Stringer.
func (m LockMode) String() string {
	switch m {
	case PerCellRWMutex:
		return "rwmutex"
	case PerCellMutex:
		return "mutex"
	case GlobalMutex:
		return "global"
	case NoLock:
		return "none"
	default:
		return fmt.Sprintf("LockMode(%d)", int(m))
	}
}

// Params collects every knob of PA-CGA. DefaultParams returns the paper's
// Table 1 configuration; zero values for the interface-typed operators
// are filled with the Table 1 defaults by Run.
type Params struct {
	// GridW, GridH are the population mesh dimensions (Table 1: 16×16).
	GridW, GridH int
	// Neighborhood is the mating neighborhood (Table 1: L5, chosen to
	// reduce concurrent memory access).
	Neighborhood topology.Neighborhood
	// Selector picks the two parents among the neighborhood (Table 1:
	// best 2).
	Selector operators.Selector
	// Crossover recombines the parents (Table 1 evaluates opx and tpx;
	// tpx wins §4.2 and is the default).
	Crossover operators.Crossover
	// CrossProb is p_comb (Table 1: 1.0).
	CrossProb float64
	// Mutation perturbs the offspring (Table 1: move).
	Mutation operators.Mutation
	// MutProb is p_mut (Table 1: 1.0).
	MutProb float64
	// Local is the local search applied to the offspring (Table 1: H2LL
	// with 5 or 10 iterations; 10 wins §4.2 and is the default).
	Local operators.LocalSearch
	// LocalProb is p_ser (Table 1: 1.0).
	LocalProb float64
	// Replacement installs the offspring (Table 1: replace if better).
	Replacement operators.Replacement
	// Threads is the number of population blocks / worker goroutines
	// (Table 1: 1–4; §4.2 finds 3 best and we default to 3).
	Threads int
	// Sweep is the per-block cell visiting order (Table 1: fixed line
	// sweep per block).
	Sweep topology.SweepPolicy
	// Seed drives every random decision; fixed seed + evaluation budget
	// + one thread ⇒ bit-reproducible runs.
	Seed uint64
	// DisableMinMinSeed turns off the Min-min individual in the initial
	// population (Table 1 seeds exactly one).
	DisableMinMinSeed bool
	// SeedSchedule, when non-nil, injects (a clone of) this schedule as
	// one extra individual of the initial population — the warm-start
	// hook behind solver.Restarter, used by the racing portfolio to
	// seed GA restarts from the shared incumbent. It must belong to the
	// instance being solved; a mismatched schedule is ignored.
	SeedSchedule *schedule.Schedule
	// Stop conditions; at least one must be set. They compose: the run
	// stops at whichever triggers first.
	//
	// MaxDuration is the paper's wall-clock budget (90 s in Table 1).
	// Like the paper, workers check it once per block sweep, so runs may
	// overshoot by one generation (§3.2 accepts the same approximation).
	MaxDuration time.Duration
	// MaxGenerations bounds each worker's generation count.
	MaxGenerations int64
	// MaxEvaluations bounds the total number of fitness evaluations
	// across all workers (checked per breeding step).
	MaxEvaluations int64
	// RecordConvergence enables per-generation sampling of the mean
	// block makespan, aggregated into Result.Convergence (Fig. 6).
	RecordConvergence bool
	// RecordDiversity enables per-generation sampling of genotypic
	// population diversity (mean per-task Simpson index: 1 − Σ p_m²,
	// where p_m is the fraction of individuals assigning the task to
	// machine m). Diversity preservation is the cellular GA's raison
	// d'être (§3.1); the series quantifies it.
	RecordDiversity bool
	// LockMode selects the synchronization ablation variant; the zero
	// value is the paper's per-individual RW lock.
	LockMode LockMode
	// FlowtimeWeight extends the paper's single-objective fitness
	// (§2.2, makespan only — the zero value) to the weighted sum
	//
	//	(1−w)·makespan + w·flowtime/tasks
	//
	// used by the authors' follow-up work on makespan+flowtime
	// optimization. Flowtime is normalized by the task count so both
	// terms live on the completion-time scale. Note the H2LL local
	// search still targets makespan regardless of the weight — it moves
	// load off the makespan machine — so large weights pair best with a
	// lower LocalProb. Must lie in [0, 1].
	FlowtimeWeight float64
}

// budget translates the params' stop conditions into the solver
// layer's shared Budget.
func (p Params) budget() solver.Budget {
	return solver.Budget{
		MaxDuration:    p.MaxDuration,
		MaxEvaluations: p.MaxEvaluations,
		MaxGenerations: p.MaxGenerations,
	}
}

// withBudget overwrites the params' stop conditions from a Budget.
func (p Params) withBudget(b solver.Budget) Params {
	p.MaxDuration = b.MaxDuration
	p.MaxEvaluations = b.MaxEvaluations
	p.MaxGenerations = b.MaxGenerations
	return p
}

// fitness evaluates a schedule under the configured objective. Hot
// loops that own a worker-local arena should call fitnessWith instead.
func (p *Params) fitness(s *schedule.Schedule) float64 {
	if p.FlowtimeWeight <= 0 {
		return s.Makespan()
	}
	w := p.FlowtimeWeight
	return (1-w)*s.Makespan() + w*s.Flowtime()/float64(s.Inst.T)
}

// fitnessWith is fitness through a caller-owned scratch arena: the
// makespan term is an O(1) indexed read, and the flowtime term (when
// weighted in) buckets into the worker's reusable buffers instead of
// allocating per evaluation.
func (p *Params) fitnessWith(s *schedule.Schedule, sc *schedule.Scratch) float64 {
	if p.FlowtimeWeight <= 0 {
		return s.Makespan()
	}
	w := p.FlowtimeWeight
	return (1-w)*s.Makespan() + w*s.FlowtimeInto(sc)/float64(s.Inst.T)
}

// DefaultParams returns the Table 1 parameterization with the §4.2
// winning choices (tpx, 10 H2LL iterations, 3 threads).
func DefaultParams() Params {
	return Params{
		GridW:        16,
		GridH:        16,
		Neighborhood: topology.L5,
		Selector:     operators.BestTwo{},
		Crossover:    operators.TwoPoint{},
		CrossProb:    1.0,
		Mutation:     operators.Move{},
		MutProb:      1.0,
		Local:        operators.H2LL{Iterations: 10},
		LocalProb:    1.0,
		Replacement:  operators.ReplaceIfBetter,
		Threads:      3,
		Sweep:        topology.LineSweep,
		Seed:         1,
	}
}

// withDefaults fills nil operator fields from DefaultParams.
func (p Params) withDefaults() Params {
	def := DefaultParams()
	if p.GridW == 0 && p.GridH == 0 {
		p.GridW, p.GridH = def.GridW, def.GridH
	}
	if p.Selector == nil {
		p.Selector = def.Selector
	}
	if p.Crossover == nil {
		p.Crossover = def.Crossover
	}
	if p.Mutation == nil {
		p.Mutation = def.Mutation
	}
	if p.Local == nil {
		p.Local = def.Local
	}
	if p.Threads == 0 {
		p.Threads = def.Threads
	}
	return p
}

// validate rejects inconsistent parameter sets.
func (p Params) validate() error {
	if p.GridW <= 0 || p.GridH <= 0 {
		return fmt.Errorf("core: invalid grid %dx%d", p.GridW, p.GridH)
	}
	if p.Threads <= 0 {
		return fmt.Errorf("core: invalid thread count %d", p.Threads)
	}
	if p.Threads > p.GridW*p.GridH {
		return fmt.Errorf("core: %d threads exceed population %d", p.Threads, p.GridW*p.GridH)
	}
	for _, prob := range []struct {
		name string
		v    float64
	}{{"CrossProb", p.CrossProb}, {"MutProb", p.MutProb}, {"LocalProb", p.LocalProb}} {
		if prob.v < 0 || prob.v > 1 {
			return fmt.Errorf("core: %s = %v outside [0,1]", prob.name, prob.v)
		}
	}
	if p.MaxDuration <= 0 && p.MaxGenerations <= 0 && p.MaxEvaluations <= 0 {
		return fmt.Errorf("core: no stop condition set (need MaxDuration, MaxGenerations or MaxEvaluations)")
	}
	if p.FlowtimeWeight < 0 || p.FlowtimeWeight > 1 {
		return fmt.Errorf("core: FlowtimeWeight = %v outside [0,1]", p.FlowtimeWeight)
	}
	if p.LockMode == NoLock && p.Threads > 1 {
		return fmt.Errorf("core: LockMode NoLock requires a single thread")
	}
	return nil
}
