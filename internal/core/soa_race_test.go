package core

import (
	"testing"
)

// TestSoAPopulationConcurrentWorkers hammers the structure-of-arrays
// population under the race detector: four asynchronous workers breed
// over adjacent slices of the shared assignment, fitness and
// completion-time planes while convergence and diversity recording read
// whole blocks concurrently. Any lock-discipline hole the contiguous
// layout opened (adjacent cells share cache lines and backing arrays)
// shows up as a -race report here.
func TestSoAPopulationConcurrentWorkers(t *testing.T) {
	in := stressInstance(t, 9)
	for _, mode := range []LockMode{PerCellRWMutex, PerCellMutex, GlobalMutex} {
		p := DefaultParams()
		p.GridW, p.GridH = 8, 8
		p.Threads = 4
		p.Seed = 77
		p.MaxEvaluations = 6000
		p.LockMode = mode
		p.RecordConvergence = true
		p.RecordDiversity = true
		res, err := Run(in, p)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := res.Best.Validate(); err != nil {
			t.Fatalf("%v: corrupt best schedule: %v", mode, err)
		}
		if res.BestFitness <= 0 {
			t.Fatalf("%v: nonpositive best fitness %v", mode, res.BestFitness)
		}
		// No sample-count assertion: under GlobalMutex a worker can
		// starve and finish zero full generations, legitimately leaving
		// the aggregated series empty. The recording reads still ran
		// concurrently with the breeders, which is what -race checks.
	}
}
