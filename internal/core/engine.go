package core

import (
	"context"
	"sync"
	"sync/atomic"

	"gridsched/internal/etc"
	"gridsched/internal/operators"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
	"gridsched/internal/solver"
	"gridsched/internal/topology"
)

// Result reports the outcome of a PA-CGA (or synchronous CGA) run. It
// is the solver layer's common result shape: the Convergence entry g
// averages every block's mean at its own generation g, weighted by
// block size (falling back to a block's final value once that worker
// has stopped), and Diversity is sampled over the whole population by
// the first worker (per-block diversity would under-report: blocks
// deliberately niche into different search-space regions).
type Result = solver.Result

// Run executes PA-CGA (Algorithms 2–3) on the instance and returns the
// result. It spawns Params.Threads worker goroutines, each evolving its
// contiguous population block asynchronously until a stop condition
// fires.
func Run(inst *etc.Instance, p Params) (*Result, error) {
	return RunContext(context.Background(), inst, p)
}

// RunContext is Run with context cancellation: the run stops at the
// earliest of the params' stop conditions and ctx's cancellation,
// checked at the same coarse granularity as the wall-clock deadline.
func RunContext(ctx context.Context, inst *etc.Instance, p Params) (*Result, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	grid, err := topology.NewGrid(p.GridW, p.GridH)
	if err != nil {
		return nil, err
	}
	blocks, err := topology.Partition(grid.Size(), p.Threads)
	if err != nil {
		return nil, err
	}

	root := rng.New(p.Seed)
	initRNG := root.Split(0)
	pop := newPopulation(inst, grid.Size(), initRNG, !p.DisableMinMinSeed, p.SeedSchedule, p.LockMode, p.fitness)

	eng := solver.NewEngine(ctx, p.budget())
	eng.AddEvals(int64(pop.size())) // initial_evaluation of Algorithm 2
	if eng.Observing() {
		// Seed the convergence trace with the initial population's best,
		// so the first breeding-step improvement is measured against it.
		_, f := pop.best()
		eng.Observe(f)
	}
	var lsMoves atomic.Int64

	workers := make([]*worker, p.Threads)
	for i := range workers {
		workers[i] = &worker{
			id:      i,
			block:   blocks[i],
			grid:    grid,
			pop:     pop,
			params:  &p,
			r:       root.Split(uint64(i) + 1),
			eng:     eng,
			lsMoves: &lsMoves,
			p1:      schedule.New(inst),
			p2:      schedule.New(inst),
			child:   schedule.New(inst),
			neigh:   make([]int, 0, p.Neighborhood.Size()),
			cands:   make([]operators.Candidate, 0, p.Neighborhood.Size()),
		}
		workers[i].sweeper = topology.NewSweeper(p.Sweep, blocks[i], workers[i].r.Split(0))
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.evolve()
		}(w)
	}
	wg.Wait()

	res := &Result{
		Evaluations:      eng.Evals(),
		LocalSearchMoves: lsMoves.Load(),
		Duration:         eng.Elapsed(),
		EffectiveBudget:  eng.EffectiveBudget(),
		PerThread:        make([]int64, len(workers)),
	}
	for i, w := range workers {
		res.PerThread[i] = w.gens
		res.Generations += w.gens
	}
	res.Best, res.BestFitness = pop.best()
	eng.Finish(res.BestFitness)
	if p.RecordConvergence {
		res.Convergence = aggregateSeries(workers, blocks, func(w *worker) []float64 { return w.conv })
	}
	if p.RecordDiversity {
		res.Diversity = append([]float64(nil), workers[0].div...)
	}
	return res, nil
}

// worker owns one population block, its RNG stream and its reusable
// breeding workspaces; it implements Algorithm 3.
type worker struct {
	id      int
	block   topology.Block
	grid    topology.Grid
	pop     *population
	params  *Params
	r       *rng.Rand
	sweeper *topology.Sweeper
	eng     *solver.Engine
	lsMoves *atomic.Int64

	p1, p2, child *schedule.Schedule
	neigh         []int
	cands         []operators.Candidate
	scratch       schedule.Scratch

	gens     int64
	conv     []float64
	div      []float64
	divCount []int
}

// evolve runs block sweeps until a stop condition fires. Matching the
// paper, the wall-clock condition (and context cancellation) is checked
// once per sweep (§3.2 explicitly accepts the overshoot); the
// evaluation budget is checked per breeding step so tests can rely on
// tight budgets.
func (w *worker) evolve() {
	p := w.params
	for {
		if w.eng.StopSweep(w.gens) {
			return
		}
		for _, cell := range w.sweeper.Order() {
			if w.eng.EvalsExhausted() {
				return
			}
			w.evolveCell(cell)
		}
		w.gens++
		if p.RecordConvergence {
			w.conv = append(w.conv, w.pop.meanFitnessRange(w.block.Start, w.block.End))
		}
		// Diversity must be measured over the whole population: blocks
		// niche into different regions (that is the point of the
		// partition), so per-block diversity would under-report. Worker
		// 0 samples the global population at its own generation
		// boundaries, reading other blocks under their read locks.
		if p.RecordDiversity && w.id == 0 {
			var d float64
			w.divCount, d = w.pop.blockDiversity(0, w.pop.size(), w.divCount)
			w.div = append(w.div, d)
		}
	}
}

// evolveCell performs one breeding loop iteration (Algorithm 3 lines
// 3–9) on the given cell.
func (w *worker) evolveCell(cell int) {
	p := w.params

	// get_neighborhood: cells whose individuals may mate with this one.
	// The neighborhood may cross block boundaries; those reads are what
	// the per-individual locks protect.
	w.neigh = p.Neighborhood.Neighbors(w.grid, cell, w.neigh)

	// select: fitness reads under read locks, then the chosen parents
	// are snapshotted (copied out) so crossover never touches shared
	// memory.
	w.cands = w.cands[:0]
	for _, c := range w.neigh {
		w.cands = append(w.cands, operators.Candidate{Cell: c, Fitness: w.pop.fitness(c)})
	}
	i1, i2 := p.Selector.Select(w.cands, w.r)
	w.pop.snapshotInto(w.cands[i1].Cell, w.p1)
	if i2 == i1 {
		w.p2.CopyFrom(w.p1)
	} else {
		w.pop.snapshotInto(w.cands[i2].Cell, w.p2)
	}

	// recombine with probability p_comb, otherwise the offspring starts
	// as a copy of the first parent.
	if w.r.Bool(p.CrossProb) {
		p.Crossover.Cross(w.child, w.p1, w.p2, w.r)
	} else {
		w.child.CopyFrom(w.p1)
	}

	// mutate with probability p_mut.
	if w.r.Bool(p.MutProb) {
		p.Mutation.Mutate(w.child, w.r)
	}

	// local search (H2LL) with probability p_ser.
	if p.LocalProb > 0 && w.r.Bool(p.LocalProb) {
		if moves := p.Local.Apply(w.child, w.r); moves > 0 {
			w.lsMoves.Add(int64(moves))
		}
	}

	// evaluate: the default makespan objective is an O(1) read of the
	// indexed completion times; the flowtime-weighted objective runs
	// through this worker's scratch arena.
	fit := p.fitnessWith(w.child, &w.scratch)
	w.eng.AddEvals(1)
	w.eng.Observe(fit)

	// replace: install into the current cell under the write lock if the
	// policy accepts.
	w.pop.replaceIf(cell, p.Replacement, w.child, fit)
}

// aggregateSeries merges per-worker generation series into a
// population-wide mean per generation index. Blocks weigh by their size;
// a worker that stopped before generation g contributes its final value,
// so the series stays a population mean rather than drifting toward the
// surviving blocks.
func aggregateSeries(workers []*worker, blocks []topology.Block, get func(*worker) []float64) []float64 {
	maxLen := 0
	for _, w := range workers {
		if n := len(get(w)); n > maxLen {
			maxLen = n
		}
	}
	if maxLen == 0 {
		return nil
	}
	out := make([]float64, maxLen)
	total := 0
	for _, b := range blocks {
		total += b.Len()
	}
	for g := 0; g < maxLen; g++ {
		sum := 0.0
		for i, w := range workers {
			series := get(w)
			var v float64
			switch {
			case len(series) == 0:
				continue
			case g < len(series):
				v = series[g]
			default:
				v = series[len(series)-1]
			}
			sum += v * float64(blocks[i].Len())
		}
		out[g] = sum / float64(total)
	}
	return out
}
