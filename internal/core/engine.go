package core

import (
	"sync"
	"sync/atomic"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/operators"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
	"gridsched/internal/topology"
)

// Result reports the outcome of a PA-CGA (or synchronous CGA) run.
type Result struct {
	// Best is a clone of the best schedule found; BestFitness is its
	// makespan.
	Best        *schedule.Schedule
	BestFitness float64
	// Evaluations counts fitness evaluations, including the initial
	// population — the paper's speedup currency (Eq. 5).
	Evaluations int64
	// Generations is the total number of block sweeps summed over
	// workers; PerThread holds the per-worker counts, which differ in
	// the asynchronous model when breeding loops take unequal time.
	Generations int64
	PerThread   []int64
	// LocalSearchMoves counts improving moves made by the local search.
	LocalSearchMoves int64
	// Duration is the measured wall time of the evolution phase.
	Duration time.Duration
	// Convergence, when recording was requested, holds the mean
	// population makespan at each generation index (Fig. 6): entry g
	// averages every block's mean at its own generation g, weighted by
	// block size, falling back to a block's final value once that worker
	// has stopped.
	Convergence []float64
	// Diversity, when requested, holds the mean per-task Simpson
	// diversity of the whole population, sampled by the first worker at
	// its generation boundaries (per-block diversity would under-report:
	// blocks deliberately niche into different search-space regions).
	Diversity []float64
}

// Run executes PA-CGA (Algorithms 2–3) on the instance and returns the
// result. It spawns Params.Threads worker goroutines, each evolving its
// contiguous population block asynchronously until a stop condition
// fires.
func Run(inst *etc.Instance, p Params) (*Result, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	grid, err := topology.NewGrid(p.GridW, p.GridH)
	if err != nil {
		return nil, err
	}
	blocks, err := topology.Partition(grid.Size(), p.Threads)
	if err != nil {
		return nil, err
	}

	root := rng.New(p.Seed)
	initRNG := root.Split(0)
	pop := newPopulation(inst, grid.Size(), initRNG, !p.DisableMinMinSeed, p.LockMode, p.fitness)

	var evals atomic.Int64
	evals.Store(int64(pop.size())) // initial_evaluation of Algorithm 2
	var lsMoves atomic.Int64

	t0 := time.Now()
	var deadline time.Time
	if p.MaxDuration > 0 {
		deadline = t0.Add(p.MaxDuration)
	}

	workers := make([]*worker, p.Threads)
	for i := range workers {
		workers[i] = &worker{
			id:       i,
			block:    blocks[i],
			grid:     grid,
			pop:      pop,
			params:   &p,
			r:        root.Split(uint64(i) + 1),
			evals:    &evals,
			lsMoves:  &lsMoves,
			deadline: deadline,
			p1:       schedule.New(inst),
			p2:       schedule.New(inst),
			child:    schedule.New(inst),
			neigh:    make([]int, 0, p.Neighborhood.Size()),
			cands:    make([]operators.Candidate, 0, p.Neighborhood.Size()),
		}
		workers[i].sweeper = topology.NewSweeper(p.Sweep, blocks[i], workers[i].r.Split(0))
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.evolve()
		}(w)
	}
	wg.Wait()

	res := &Result{
		Evaluations:      evals.Load(),
		LocalSearchMoves: lsMoves.Load(),
		Duration:         time.Since(t0),
		PerThread:        make([]int64, len(workers)),
	}
	for i, w := range workers {
		res.PerThread[i] = w.gens
		res.Generations += w.gens
	}
	res.Best, res.BestFitness = pop.best()
	if p.RecordConvergence {
		res.Convergence = aggregateSeries(workers, blocks, func(w *worker) []float64 { return w.conv })
	}
	if p.RecordDiversity {
		res.Diversity = append([]float64(nil), workers[0].div...)
	}
	return res, nil
}

// worker owns one population block, its RNG stream and its reusable
// breeding workspaces; it implements Algorithm 3.
type worker struct {
	id       int
	block    topology.Block
	grid     topology.Grid
	pop      *population
	params   *Params
	r        *rng.Rand
	sweeper  *topology.Sweeper
	evals    *atomic.Int64
	lsMoves  *atomic.Int64
	deadline time.Time

	p1, p2, child *schedule.Schedule
	neigh         []int
	cands         []operators.Candidate

	gens     int64
	conv     []float64
	div      []float64
	divCount []int
}

// evolve runs block sweeps until a stop condition fires. Matching the
// paper, the wall-clock condition is checked once per sweep (§3.2
// explicitly accepts the overshoot); the evaluation budget is checked
// per breeding step so tests can rely on tight budgets.
func (w *worker) evolve() {
	p := w.params
	for {
		if !w.deadline.IsZero() && !time.Now().Before(w.deadline) {
			return
		}
		if p.MaxGenerations > 0 && w.gens >= p.MaxGenerations {
			return
		}
		for _, cell := range w.sweeper.Order() {
			if p.MaxEvaluations > 0 && w.evals.Load() >= p.MaxEvaluations {
				return
			}
			w.evolveCell(cell)
		}
		w.gens++
		if p.RecordConvergence {
			w.conv = append(w.conv, w.pop.meanFitnessRange(w.block.Start, w.block.End))
		}
		// Diversity must be measured over the whole population: blocks
		// niche into different regions (that is the point of the
		// partition), so per-block diversity would under-report. Worker
		// 0 samples the global population at its own generation
		// boundaries, reading other blocks under their read locks.
		if p.RecordDiversity && w.id == 0 {
			var d float64
			w.divCount, d = w.pop.blockDiversity(0, w.pop.size(), w.divCount)
			w.div = append(w.div, d)
		}
	}
}

// evolveCell performs one breeding loop iteration (Algorithm 3 lines
// 3–9) on the given cell.
func (w *worker) evolveCell(cell int) {
	p := w.params

	// get_neighborhood: cells whose individuals may mate with this one.
	// The neighborhood may cross block boundaries; those reads are what
	// the per-individual locks protect.
	w.neigh = p.Neighborhood.Neighbors(w.grid, cell, w.neigh)

	// select: fitness reads under read locks, then the chosen parents
	// are snapshotted (copied out) so crossover never touches shared
	// memory.
	w.cands = w.cands[:0]
	for _, c := range w.neigh {
		w.cands = append(w.cands, operators.Candidate{Cell: c, Fitness: w.pop.fitness(c)})
	}
	i1, i2 := p.Selector.Select(w.cands, w.r)
	w.pop.snapshotInto(w.cands[i1].Cell, w.p1)
	if i2 == i1 {
		w.p2.CopyFrom(w.p1)
	} else {
		w.pop.snapshotInto(w.cands[i2].Cell, w.p2)
	}

	// recombine with probability p_comb, otherwise the offspring starts
	// as a copy of the first parent.
	if w.r.Bool(p.CrossProb) {
		p.Crossover.Cross(w.child, w.p1, w.p2, w.r)
	} else {
		w.child.CopyFrom(w.p1)
	}

	// mutate with probability p_mut.
	if w.r.Bool(p.MutProb) {
		p.Mutation.Mutate(w.child, w.r)
	}

	// local search (H2LL) with probability p_ser.
	if p.LocalProb > 0 && w.r.Bool(p.LocalProb) {
		if moves := p.Local.Apply(w.child, w.r); moves > 0 {
			w.lsMoves.Add(int64(moves))
		}
	}

	// evaluate: with the default makespan objective this is a scan of
	// the machine vector, thanks to incremental completion times.
	fit := p.fitness(w.child)
	w.evals.Add(1)

	// replace: install into the current cell under the write lock if the
	// policy accepts.
	w.pop.replaceIf(cell, p.Replacement, w.child, fit)
}

// aggregateSeries merges per-worker generation series into a
// population-wide mean per generation index. Blocks weigh by their size;
// a worker that stopped before generation g contributes its final value,
// so the series stays a population mean rather than drifting toward the
// surviving blocks.
func aggregateSeries(workers []*worker, blocks []topology.Block, get func(*worker) []float64) []float64 {
	maxLen := 0
	for _, w := range workers {
		if n := len(get(w)); n > maxLen {
			maxLen = n
		}
	}
	if maxLen == 0 {
		return nil
	}
	out := make([]float64, maxLen)
	total := 0
	for _, b := range blocks {
		total += b.Len()
	}
	for g := 0; g < maxLen; g++ {
		sum := 0.0
		for i, w := range workers {
			series := get(w)
			var v float64
			switch {
			case len(series) == 0:
				continue
			case g < len(series):
				v = series[g]
			default:
				v = series[len(series)-1]
			}
			sum += v * float64(blocks[i].Len())
		}
		out[g] = sum / float64(total)
	}
	return out
}
