package core

import (
	"sync"

	"gridsched/internal/etc"
	"gridsched/internal/heuristics"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

// individual is one population cell: a schedule, its cached fitness
// (makespan), and the read-write lock that makes cross-block neighborhood
// reads safe while another worker replaces the cell (§3.2).
type individual struct {
	mu  sync.RWMutex
	s   *schedule.Schedule
	fit float64
}

// population is the shared 2-D population storage with pluggable locking.
type population struct {
	cells []individual
	mode  LockMode
	// global backs the GlobalMutex ablation mode.
	global sync.Mutex
}

// newPopulation initializes size individuals on inst: all random except,
// unless disabled, cell 0 which receives the Min-min schedule (Table 1
// seeds exactly one individual with Min-min), and — when a warm-start
// schedule is supplied (Params.SeedSchedule) — the last cell, which
// receives a clone of it. This covers both setup_pop and
// initial_evaluation of Algorithm 2: fitness is computed on creation
// with the engine's objective function.
func newPopulation(inst *etc.Instance, size int, r *rng.Rand, seedMinMin bool, warm *schedule.Schedule, mode LockMode, eval func(*schedule.Schedule) float64) *population {
	if warm != nil && warm.Inst != inst {
		warm = nil // foreign schedule: ignore rather than corrupt the population
	}
	p := &population{cells: make([]individual, size), mode: mode}
	for i := range p.cells {
		var s *schedule.Schedule
		switch {
		case i == size-1 && warm != nil:
			s = warm.Clone()
		case i == 0 && seedMinMin:
			s = heuristics.MinMin(inst)
		default:
			s = schedule.NewRandom(inst, r)
		}
		p.cells[i].s = s
		p.cells[i].fit = eval(s)
	}
	return p
}

func (p *population) size() int { return len(p.cells) }

// rlock acquires read access to cell i under the configured mode.
func (p *population) rlock(i int) {
	switch p.mode {
	case PerCellRWMutex:
		p.cells[i].mu.RLock()
	case PerCellMutex:
		p.cells[i].mu.Lock()
	case GlobalMutex:
		p.global.Lock()
	case NoLock:
	}
}

func (p *population) runlock(i int) {
	switch p.mode {
	case PerCellRWMutex:
		p.cells[i].mu.RUnlock()
	case PerCellMutex:
		p.cells[i].mu.Unlock()
	case GlobalMutex:
		p.global.Unlock()
	case NoLock:
	}
}

// lock acquires write access to cell i under the configured mode.
func (p *population) lock(i int) {
	switch p.mode {
	case PerCellRWMutex, PerCellMutex:
		p.cells[i].mu.Lock()
	case GlobalMutex:
		p.global.Lock()
	case NoLock:
	}
}

func (p *population) unlock(i int) {
	switch p.mode {
	case PerCellRWMutex, PerCellMutex:
		p.cells[i].mu.Unlock()
	case GlobalMutex:
		p.global.Unlock()
	case NoLock:
	}
}

// fitness returns cell i's cached makespan under a read lock. This is
// the non-atomic read the paper protects during selection.
func (p *population) fitness(i int) float64 {
	p.rlock(i)
	f := p.cells[i].fit
	p.runlock(i)
	return f
}

// snapshotInto copies cell i's genome and completion times into dst under
// a read lock, returning the fitness consistent with the copy. This is
// the protected parent read of the recombination step.
func (p *population) snapshotInto(i int, dst *schedule.Schedule) float64 {
	p.rlock(i)
	dst.CopyFrom(p.cells[i].s)
	f := p.cells[i].fit
	p.runlock(i)
	return f
}

// replaceIf installs cand (with fitness candFit) into cell i if the
// replacement policy accepts it against the cell's current fitness, under
// a write lock. It returns whether the replacement happened. The
// comparison re-reads the current fitness inside the critical section, so
// a concurrent improvement cannot be stomped by a stale offspring.
func (p *population) replaceIf(i int, policy interface{ Accepts(cur, off float64) bool }, cand *schedule.Schedule, candFit float64) bool {
	p.lock(i)
	ok := policy.Accepts(p.cells[i].fit, candFit)
	if ok {
		p.cells[i].s.CopyFrom(cand)
		p.cells[i].fit = candFit
	}
	p.unlock(i)
	return ok
}

// meanFitnessRange averages the fitness of cells [start, end) under read
// locks; used by the convergence recorder (Fig. 6).
func (p *population) meanFitnessRange(start, end int) float64 {
	sum := 0.0
	for i := start; i < end; i++ {
		sum += p.fitness(i)
	}
	return sum / float64(end-start)
}

// blockDiversity measures the genotypic diversity of cells [start, end)
// as the mean over tasks of the Simpson index 1 − Σ_m p_m², where p_m is
// the fraction of the block assigning the task to machine m. It is 0
// when all individuals are identical and approaches 1 − 1/machines for a
// uniformly random block. counts is reusable scratch of len ≥
// tasks×machines (it is grown when too small); each cell is locked once.
func (p *population) blockDiversity(start, end int, counts []int) ([]int, float64) {
	n := end - start
	if n <= 0 {
		return counts, 0
	}
	tasks := len(p.cells[start].s.S)
	machines := len(p.cells[start].s.CT)
	if cap(counts) < tasks*machines {
		counts = make([]int, tasks*machines)
	}
	counts = counts[:tasks*machines]
	for i := range counts {
		counts[i] = 0
	}
	for i := start; i < end; i++ {
		p.rlock(i)
		for t, m := range p.cells[i].s.S {
			if m >= 0 {
				counts[t*machines+m]++
			}
		}
		p.runlock(i)
	}
	total := 0.0
	inv := 1 / float64(n)
	for t := 0; t < tasks; t++ {
		sumSq := 0.0
		for _, c := range counts[t*machines : (t+1)*machines] {
			f := float64(c) * inv
			sumSq += f * f
		}
		total += 1 - sumSq
	}
	return counts, total / float64(tasks)
}

// best scans the population and returns a clone of the best individual
// and its fitness. Called once after the workers join.
func (p *population) best() (*schedule.Schedule, float64) {
	bestIdx := 0
	p.rlock(0)
	bestFit := p.cells[0].fit
	p.runlock(0)
	for i := 1; i < len(p.cells); i++ {
		f := p.fitness(i)
		if f < bestFit {
			bestIdx, bestFit = i, f
		}
	}
	p.rlock(bestIdx)
	clone := p.cells[bestIdx].s.Clone()
	fit := p.cells[bestIdx].fit
	p.runlock(bestIdx)
	return clone, fit
}
