package core

import (
	"sync"

	"gridsched/internal/etc"
	"gridsched/internal/heuristics"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

// population is the shared 2-D population storage with pluggable
// locking, laid out as a structure of arrays: the cells' genomes and
// completion times live in one schedule.Arena (contiguous assignment
// and CT planes), the cached fitnesses in one contiguous lane, and the
// per-cell read-write locks — the paper's POSIX rwlocks (§3.2) — in
// their own slice. Generation-scale sweeps (fitness scans, diversity
// measures, block means) therefore stream sequential memory instead of
// chasing one heap allocation per cell.
type population struct {
	arena *schedule.Arena
	// fit caches each cell's fitness; guarded by the same lock as the
	// cell's schedule.
	fit  []float64
	mus  []sync.RWMutex
	mode LockMode
	// global backs the GlobalMutex ablation mode.
	global sync.Mutex
}

// newPopulation initializes size individuals on inst: all random except,
// unless disabled, cell 0 which receives the Min-min schedule (Table 1
// seeds exactly one individual with Min-min), and — when a warm-start
// schedule is supplied (Params.SeedSchedule) — the last cell, which
// receives a copy of it. This covers both setup_pop and
// initial_evaluation of Algorithm 2: the random machines are drawn in
// ascending cell-then-task order (the exact RNG consumption of the
// historical per-cell NewRandom loop), the drawn assignment planes are
// loaded through the batched bulk kernel, and fitness is computed with
// the engine's objective function in cell order.
func newPopulation(inst *etc.Instance, size int, r *rng.Rand, seedMinMin bool, warm *schedule.Schedule, mode LockMode, eval func(*schedule.Schedule) float64) *population {
	if warm != nil && warm.Inst != inst {
		warm = nil // foreign schedule: ignore rather than corrupt the population
	}
	p := &population{
		arena: schedule.NewArena(inst, size),
		fit:   make([]float64, size),
		mus:   make([]sync.RWMutex, size),
		mode:  mode,
	}
	drawn := make([]*schedule.Schedule, 0, size)
	for i := 0; i < size; i++ {
		s := p.arena.At(i)
		switch {
		case i == size-1 && warm != nil:
			s.CopyFrom(warm)
		case i == 0 && seedMinMin:
			s.CopyFrom(heuristics.MinMin(inst))
		default:
			for t := range s.S {
				s.S[t] = r.Intn(inst.M)
			}
			drawn = append(drawn, s)
		}
	}
	schedule.BatchLoad(drawn)
	for i := 0; i < size; i++ {
		p.fit[i] = eval(p.arena.At(i))
	}
	return p
}

func (p *population) size() int { return p.arena.Len() }

// sched returns cell i's schedule (an arena view; the pointer is stable
// for the population's lifetime). Access is subject to the same locking
// protocol as fit.
func (p *population) sched(i int) *schedule.Schedule { return p.arena.At(i) }

// rlock acquires read access to cell i under the configured mode.
func (p *population) rlock(i int) {
	switch p.mode {
	case PerCellRWMutex:
		p.mus[i].RLock()
	case PerCellMutex:
		p.mus[i].Lock()
	case GlobalMutex:
		p.global.Lock()
	case NoLock:
	}
}

func (p *population) runlock(i int) {
	switch p.mode {
	case PerCellRWMutex:
		p.mus[i].RUnlock()
	case PerCellMutex:
		p.mus[i].Unlock()
	case GlobalMutex:
		p.global.Unlock()
	case NoLock:
	}
}

// lock acquires write access to cell i under the configured mode.
func (p *population) lock(i int) {
	switch p.mode {
	case PerCellRWMutex, PerCellMutex:
		p.mus[i].Lock()
	case GlobalMutex:
		p.global.Lock()
	case NoLock:
	}
}

func (p *population) unlock(i int) {
	switch p.mode {
	case PerCellRWMutex, PerCellMutex:
		p.mus[i].Unlock()
	case GlobalMutex:
		p.global.Unlock()
	case NoLock:
	}
}

// fitness returns cell i's cached makespan under a read lock. This is
// the non-atomic read the paper protects during selection.
func (p *population) fitness(i int) float64 {
	p.rlock(i)
	f := p.fit[i]
	p.runlock(i)
	return f
}

// snapshotInto copies cell i's genome and completion times into dst under
// a read lock, returning the fitness consistent with the copy. This is
// the protected parent read of the recombination step.
func (p *population) snapshotInto(i int, dst *schedule.Schedule) float64 {
	p.rlock(i)
	dst.CopyFrom(p.arena.At(i))
	f := p.fit[i]
	p.runlock(i)
	return f
}

// replaceIf installs cand (with fitness candFit) into cell i if the
// replacement policy accepts it against the cell's current fitness, under
// a write lock. It returns whether the replacement happened. The
// comparison re-reads the current fitness inside the critical section, so
// a concurrent improvement cannot be stomped by a stale offspring.
func (p *population) replaceIf(i int, policy interface{ Accepts(cur, off float64) bool }, cand *schedule.Schedule, candFit float64) bool {
	p.lock(i)
	ok := policy.Accepts(p.fit[i], candFit)
	if ok {
		p.arena.At(i).CopyFrom(cand)
		p.fit[i] = candFit
	}
	p.unlock(i)
	return ok
}

// meanFitnessRange averages the fitness of cells [start, end) under read
// locks; used by the convergence recorder (Fig. 6). The fitness lane is
// contiguous, so the sweep streams one cache line per eight cells.
func (p *population) meanFitnessRange(start, end int) float64 {
	sum := 0.0
	for i := start; i < end; i++ {
		sum += p.fitness(i)
	}
	return sum / float64(end-start)
}

// blockDiversity measures the genotypic diversity of cells [start, end)
// as the mean over tasks of the Simpson index 1 − Σ_m p_m², where p_m is
// the fraction of the block assigning the task to machine m. It is 0
// when all individuals are identical and approaches 1 − 1/machines for a
// uniformly random block. counts is reusable scratch of len ≥
// tasks×machines (it is grown when too small); each cell is locked once.
// The cells' assignment rows are consecutive segments of one plane, so
// the count pass streams the block sequentially.
func (p *population) blockDiversity(start, end int, counts []int) ([]int, float64) {
	n := end - start
	if n <= 0 {
		return counts, 0
	}
	inst := p.arena.Inst()
	tasks, machines := inst.T, inst.M
	if cap(counts) < tasks*machines {
		counts = make([]int, tasks*machines)
	}
	counts = counts[:tasks*machines]
	for i := range counts {
		counts[i] = 0
	}
	for i := start; i < end; i++ {
		p.rlock(i)
		for t, m := range p.arena.At(i).S {
			if m >= 0 {
				counts[t*machines+m]++
			}
		}
		p.runlock(i)
	}
	total := 0.0
	inv := 1 / float64(n)
	for t := 0; t < tasks; t++ {
		sumSq := 0.0
		for _, c := range counts[t*machines : (t+1)*machines] {
			f := float64(c) * inv
			sumSq += f * f
		}
		total += 1 - sumSq
	}
	return counts, total / float64(tasks)
}

// best scans the population and returns a clone of the best individual
// and its fitness. Called once after the workers join.
func (p *population) best() (*schedule.Schedule, float64) {
	bestIdx := 0
	p.rlock(0)
	bestFit := p.fit[0]
	p.runlock(0)
	for i := 1; i < p.size(); i++ {
		f := p.fitness(i)
		if f < bestFit {
			bestIdx, bestFit = i, f
		}
	}
	p.rlock(bestIdx)
	clone := p.arena.At(bestIdx).Clone()
	fit := p.fit[bestIdx]
	p.runlock(bestIdx)
	return clone, fit
}
