package islands

import (
	"context"

	"gridsched/internal/etc"
	"gridsched/internal/solver"
)

// Solver adapts the island model to the unified solver interface.
// Config carries everything but the stop conditions, which come from
// the Budget passed to Solve.
type Solver struct {
	Config Config
}

// Name implements solver.Solver.
func (s Solver) Name() string { return "islands" }

// Describe implements solver.Solver.
func (s Solver) Describe() string {
	return "island-model cellular GA: lock-free private populations coupled by ring migration"
}

// WithSeed implements solver.Seeder.
func (s Solver) WithSeed(seed uint64) solver.Solver {
	s.Config.Seed = seed
	return s
}

// Reproducible implements solver.Reproducible: islands evolve
// concurrently and migrants arrive whenever the ring delivers them, so
// equal seeds do not reproduce bit-identical runs.
func (s Solver) Reproducible() bool { return false }

// Solve implements solver.Solver.
func (s Solver) Solve(ctx context.Context, inst *etc.Instance, b solver.Budget) (*solver.Result, error) {
	cfg := s.Config
	cfg.MaxDuration = b.MaxDuration
	cfg.MaxEvaluations = b.MaxEvaluations
	cfg.MaxGenerations = b.MaxGenerations
	return RunContext(ctx, inst, cfg)
}

func init() {
	solver.Register(Solver{Config: Config{Seed: 1, SeedMinMin: true}})
}
