// Package islands implements a distributed island-model cellular GA: the
// message-passing parallelization the paper's survey contrasts with its
// shared-memory design (Luque, Alba & Dorronsoro's parallel cellular GAs
// for clusters). Each island evolves a private cellular population with
// no locks at all; the only coupling is periodic migration of elite
// individuals over channels arranged in a directed ring.
//
// Compared with PA-CGA (internal/core), the island model trades the
// tight per-generation interaction of one large toroidal population for
// complete isolation plus rare, explicit communication — the same
// algorithm family running at the opposite end of the coupling spectrum,
// which makes it the natural ablation for the paper's shared-memory
// bet.
package islands

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/etc"
	"gridsched/internal/heuristics"
	"gridsched/internal/operators"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
	"gridsched/internal/solver"
	"gridsched/internal/topology"
)

// Config parameterizes the island model. Operator fields default to the
// paper's Table 1 choices so islands differ from PA-CGA only in
// structure.
type Config struct {
	// Islands is the number of independent populations (default 4).
	Islands int
	// GridW, GridH are the per-island mesh dimensions (default 8×8, so
	// 4 islands match the paper's 256-individual total).
	GridW, GridH int
	// MigrationEvery is the number of island generations between
	// migrations (default 10).
	MigrationEvery int64
	// Migrants is how many elite individuals are sent per migration
	// (default 1).
	Migrants int
	// Neighborhood, Selector, Crossover, Mutation, Local, Replacement
	// and the probabilities mirror core.Params; nil/zero values take the
	// Table 1 defaults.
	Neighborhood topology.Neighborhood
	Selector     operators.Selector
	Crossover    operators.Crossover
	CrossProb    float64
	Mutation     operators.Mutation
	MutProb      float64
	Local        operators.LocalSearch
	LocalProb    float64
	Replacement  operators.Replacement
	// SeedMinMin seeds island 0's first individual with Min-min.
	SeedMinMin bool
	// Seed drives all randomness.
	Seed uint64
	// Stop conditions; at least one must be set. MaxGenerations bounds
	// each island; MaxEvaluations is global.
	MaxGenerations int64
	MaxEvaluations int64
	MaxDuration    time.Duration
}

func (c Config) withDefaults() Config {
	def := core.DefaultParams()
	if c.Islands == 0 {
		c.Islands = 4
	}
	if c.GridW == 0 && c.GridH == 0 {
		c.GridW, c.GridH = 8, 8
	}
	if c.MigrationEvery == 0 {
		c.MigrationEvery = 10
	}
	if c.Migrants == 0 {
		c.Migrants = 1
	}
	if c.Selector == nil {
		c.Selector = def.Selector
	}
	if c.Crossover == nil {
		c.Crossover = def.Crossover
	}
	if c.Mutation == nil {
		c.Mutation = def.Mutation
	}
	if c.Local == nil {
		c.Local = def.Local
	}
	// The operator probabilities mirror core.Params (Table 1: all 1.0).
	// Leaving them at zero silently disabled crossover, mutation and
	// local search entirely: the island GA only shuffled copies of its
	// initial individuals around, and the "improvements" it still
	// reported were completion-time rounding drift accumulated by the
	// migrant rebuild path — the exact artifact the compensated
	// completion-time engine eliminates.
	if c.CrossProb == 0 {
		c.CrossProb = def.CrossProb
	}
	if c.MutProb == 0 {
		c.MutProb = def.MutProb
	}
	if c.LocalProb == 0 {
		c.LocalProb = def.LocalProb
	}
	return c
}

func (c Config) validate() error {
	if c.Islands <= 0 {
		return fmt.Errorf("islands: non-positive island count %d", c.Islands)
	}
	if c.GridW <= 0 || c.GridH <= 0 {
		return fmt.Errorf("islands: invalid island grid %dx%d", c.GridW, c.GridH)
	}
	if c.Migrants < 0 || c.Migrants > c.GridW*c.GridH/2 {
		return fmt.Errorf("islands: %d migrants out of range for a %d-cell island", c.Migrants, c.GridW*c.GridH)
	}
	if c.MigrationEvery < 0 {
		return fmt.Errorf("islands: negative migration interval")
	}
	for _, p := range []float64{c.CrossProb, c.MutProb, c.LocalProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("islands: probability %v outside [0,1]", p)
		}
	}
	if c.MaxGenerations <= 0 && c.MaxEvaluations <= 0 && c.MaxDuration <= 0 {
		return fmt.Errorf("islands: no stop condition set")
	}
	return nil
}

// migrant is one individual in flight between islands.
type migrant struct {
	assign  []int
	fitness float64
}

// island is one private cellular population plus its ring channels.
type island struct {
	id     int
	grid   topology.Grid
	pop    []*schedule.Schedule
	fit    []float64
	r      *rng.Rand
	inbox  <-chan migrant
	outbox chan<- migrant
	cfg    *Config
	eng    *solver.Engine

	p1, p2, child *schedule.Schedule
	neigh         []int
	cands         []operators.Candidate
	gens          int64
}

// Run executes the island model and reports a core.Result so all engines
// share one result shape (PerThread holds per-island generations).
func Run(inst *etc.Instance, cfg Config) (*core.Result, error) {
	return RunContext(context.Background(), inst, cfg)
}

// RunContext is Run with context cancellation, checked by each island
// at generation granularity like the wall-clock deadline.
func RunContext(ctx context.Context, inst *etc.Instance, cfg Config) (*core.Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	grid, err := topology.NewGrid(cfg.GridW, cfg.GridH)
	if err != nil {
		return nil, err
	}

	root := rng.New(cfg.Seed)
	eng := solver.NewEngine(ctx, solver.Budget{
		MaxDuration:    cfg.MaxDuration,
		MaxEvaluations: cfg.MaxEvaluations,
		MaxGenerations: cfg.MaxGenerations,
	})

	// Ring channels: island i sends to (i+1) mod N. Buffers are sized
	// so a sender never blocks even if the receiver has already
	// terminated (sends are also non-blocking as a second guard).
	chans := make([]chan migrant, cfg.Islands)
	for i := range chans {
		chans[i] = make(chan migrant, cfg.Migrants*4+4)
	}

	islands := make([]*island, cfg.Islands)
	for i := range islands {
		isl := &island{
			id:     i,
			grid:   grid,
			r:      root.Split(uint64(i) + 1),
			inbox:  chans[i],
			outbox: chans[(i+1)%cfg.Islands],
			cfg:    &cfg,
			eng:    eng,
			p1:     schedule.New(inst),
			p2:     schedule.New(inst),
			child:  schedule.New(inst),
			neigh:  make([]int, 0, cfg.Neighborhood.Size()),
			cands:  make([]operators.Candidate, 0, cfg.Neighborhood.Size()),
		}
		isl.pop = make([]*schedule.Schedule, grid.Size())
		isl.fit = make([]float64, grid.Size())
		initRNG := isl.r.Split(0)
		for c := range isl.pop {
			if i == 0 && c == 0 && cfg.SeedMinMin {
				isl.pop[c] = heuristics.MinMin(inst)
			} else {
				isl.pop[c] = schedule.NewRandom(inst, initRNG)
			}
			isl.fit[c] = isl.pop[c].Makespan()
		}
		islands[i] = isl
	}
	eng.AddEvals(int64(cfg.Islands * grid.Size()))
	if eng.Observing() {
		// Seed the convergence trace with the best initial individual
		// across all islands (the populations are still private to this
		// goroutine — the island workers have not started).
		init := islands[0].fit[0]
		for _, isl := range islands {
			for _, f := range isl.fit {
				if f < init {
					init = f
				}
			}
		}
		eng.Observe(init)
	}

	var wg sync.WaitGroup
	for _, isl := range islands {
		wg.Add(1)
		go func(isl *island) {
			defer wg.Done()
			isl.evolve()
		}(isl)
	}
	wg.Wait()

	res := &core.Result{
		Evaluations:     eng.Evals(),
		Duration:        eng.Elapsed(),
		EffectiveBudget: eng.EffectiveBudget(),
		PerThread:       make([]int64, cfg.Islands),
	}
	bestFit := islands[0].fit[0]
	var best *schedule.Schedule
	for i, isl := range islands {
		res.PerThread[i] = isl.gens
		res.Generations += isl.gens
		for c, f := range isl.fit {
			if best == nil || f < bestFit {
				best, bestFit = isl.pop[c], f
			}
		}
	}
	res.Best = best.Clone()
	res.BestFitness = bestFit
	eng.Finish(bestFit)
	return res, nil
}

// evolve runs the island until a stop condition fires.
func (isl *island) evolve() {
	cfg := isl.cfg
	for {
		if isl.eng.StopSweep(isl.gens) {
			return
		}
		isl.receiveMigrants()
		for cell := 0; cell < isl.grid.Size(); cell++ {
			if isl.eng.EvalsExhausted() {
				return
			}
			isl.evolveCell(cell)
		}
		isl.gens++
		if cfg.MigrationEvery > 0 && isl.gens%cfg.MigrationEvery == 0 {
			isl.sendMigrants()
		}
	}
}

// evolveCell is the lock-free version of the PA-CGA breeding loop: the
// island owns its population outright.
func (isl *island) evolveCell(cell int) {
	cfg := isl.cfg
	isl.neigh = cfg.Neighborhood.Neighbors(isl.grid, cell, isl.neigh)
	isl.cands = isl.cands[:0]
	for _, c := range isl.neigh {
		isl.cands = append(isl.cands, operators.Candidate{Cell: c, Fitness: isl.fit[c]})
	}
	i1, i2 := cfg.Selector.Select(isl.cands, isl.r)
	isl.p1.CopyFrom(isl.pop[isl.cands[i1].Cell])
	if i2 == i1 {
		isl.p2.CopyFrom(isl.p1)
	} else {
		isl.p2.CopyFrom(isl.pop[isl.cands[i2].Cell])
	}
	if isl.r.Bool(cfg.CrossProb) {
		cfg.Crossover.Cross(isl.child, isl.p1, isl.p2, isl.r)
	} else {
		isl.child.CopyFrom(isl.p1)
	}
	if isl.r.Bool(cfg.MutProb) {
		cfg.Mutation.Mutate(isl.child, isl.r)
	}
	if cfg.LocalProb > 0 && isl.r.Bool(cfg.LocalProb) {
		cfg.Local.Apply(isl.child, isl.r)
	}
	f := isl.child.Makespan()
	isl.eng.AddEvals(1)
	isl.eng.Observe(f)
	if cfg.Replacement.Accepts(isl.fit[cell], f) {
		isl.pop[cell].CopyFrom(isl.child)
		isl.fit[cell] = f
	}
}

// sendMigrants emits copies of the island's best individuals into the
// ring. Sends are non-blocking: if the neighbor's buffer is full (or the
// neighbor terminated long ago), the migrant is dropped — migration is
// best-effort by design.
func (isl *island) sendMigrants() {
	for k := 0; k < isl.cfg.Migrants; k++ {
		best := 0
		for c := 1; c < len(isl.fit); c++ {
			if isl.fit[c] < isl.fit[best] {
				best = c
			}
		}
		m := migrant{assign: append([]int(nil), isl.pop[best].S...), fitness: isl.fit[best]}
		select {
		case isl.outbox <- m:
		default:
		}
	}
}

// receiveMigrants drains the inbox; each migrant replaces the island's
// worst individual if strictly better.
func (isl *island) receiveMigrants() {
	for {
		select {
		case m := <-isl.inbox:
			worst := 0
			for c := 1; c < len(isl.fit); c++ {
				if isl.fit[c] > isl.fit[worst] {
					worst = c
				}
			}
			if m.fitness < isl.fit[worst] {
				for t, mac := range m.assign {
					isl.pop[worst].SetAssignment(t, mac)
				}
				isl.fit[worst] = m.fitness
			}
		default:
			return
		}
	}
}
