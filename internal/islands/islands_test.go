package islands

import (
	"testing"

	"gridsched/internal/etc"
	"gridsched/internal/heuristics"
)

func testInstance(t testing.TB, seed uint64) *etc.Instance {
	t.Helper()
	in, err := etc.Generate(etc.GenSpec{
		Class: etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High},
		Tasks: 128, Machines: 16, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRunBasic(t *testing.T) {
	in := testInstance(t, 1)
	res, err := Run(in, Config{Seed: 1, MaxGenerations: 10, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Complete() {
		t.Fatal("incomplete best")
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Best.Makespan() != res.BestFitness {
		t.Fatal("fitness/schedule mismatch")
	}
	if len(res.PerThread) != 4 {
		t.Fatalf("PerThread %v, want 4 islands", res.PerThread)
	}
}

func TestRunGenerationBudgetPerIsland(t *testing.T) {
	in := testInstance(t, 2)
	res, err := Run(in, Config{Seed: 3, MaxGenerations: 7, Islands: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range res.PerThread {
		if g != 7 {
			t.Fatalf("island %d ran %d generations, want 7", i, g)
		}
	}
	// 3 islands × 64 cells initial + 3 × 7 × 64 breedings.
	want := int64(3*64 + 3*7*64)
	if res.Evaluations != want {
		t.Fatalf("evaluations %d, want %d", res.Evaluations, want)
	}
}

func TestRunEvaluationBudget(t *testing.T) {
	in := testInstance(t, 3)
	res, err := Run(in, Config{Seed: 5, MaxEvaluations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// Budget checked per breeding step; overshoot bounded by islands-1.
	if res.Evaluations > 2000+4 {
		t.Fatalf("evaluations %d overshot 2000", res.Evaluations)
	}
}

func TestRunValidation(t *testing.T) {
	in := testInstance(t, 4)
	cases := []Config{
		{Seed: 1}, // no stop condition
		{Seed: 1, Islands: -1, MaxGenerations: 1},         // bad island count
		{Seed: 1, GridW: -1, GridH: 2, MaxGenerations: 1}, // bad grid
		{Seed: 1, Migrants: 1000, MaxGenerations: 1},      // too many migrants
		{Seed: 1, CrossProb: 2, MaxGenerations: 1},        // bad probability
		{Seed: 1, MigrationEvery: -1, MaxGenerations: 1},  // negative interval
	}
	for i, cfg := range cases {
		if _, err := Run(in, cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestRunImprovesWithBudget(t *testing.T) {
	in := testInstance(t, 5)
	short, err := Run(in, Config{Seed: 7, MaxGenerations: 1, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Run(in, Config{Seed: 7, MaxGenerations: 40, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	if long.BestFitness > short.BestFitness {
		t.Fatalf("more generations made things worse: %v -> %v", short.BestFitness, long.BestFitness)
	}
}

func TestRunBeatsMinMinSeed(t *testing.T) {
	// The island engine is timing-dependent — migrant arrival order
	// varies run to run (Solver.Reproducible reports false) — so one
	// seed's 40 generations may or may not find an improvement when
	// instrumentation skews goroutine scheduling (-race). Elite
	// preservation is deterministic, so "never worse than the Min-min
	// seed" must hold on every run; strict improvement is asserted
	// across a few independent seeds.
	in := testInstance(t, 6)
	mm := heuristics.MinMin(in).Makespan()
	improved := false
	for seed := uint64(9); seed < 12 && !improved; seed++ {
		res, err := Run(in, Config{Seed: seed, MaxGenerations: 60, SeedMinMin: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.BestFitness > mm {
			t.Fatalf("islands with seed %d (%v) lost its Min-min elite (%v)", seed, res.BestFitness, mm)
		}
		improved = res.BestFitness < mm
	}
	if !improved {
		t.Fatalf("islands never improved on Min-min (%v) across 3 seeds", mm)
	}
}

func TestMigrationSpreadsEliteAcrossIslands(t *testing.T) {
	// With migration, the Min-min-derived elite of island 0 should reach
	// the other islands; without, islands evolve blind. Compare overall
	// best with migration on vs off over the same budget — migration
	// should not hurt, and usually helps (allow equality, forbid a
	// meaningful regression).
	in := testInstance(t, 7)
	with, err := Run(in, Config{Seed: 11, MaxGenerations: 40, MigrationEvery: 5, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	// MigrationEvery beyond MaxGenerations disables migration entirely.
	without, err := Run(in, Config{Seed: 11, MaxGenerations: 40, MigrationEvery: 1000, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.BestFitness > without.BestFitness*1.05 {
		t.Fatalf("migration made results >5%% worse: %v vs %v", with.BestFitness, without.BestFitness)
	}
}

func TestSingleIsland(t *testing.T) {
	// One island degenerates to a plain asynchronous cellular GA; the
	// ring points at itself and must not deadlock.
	in := testInstance(t, 8)
	res, err := Run(in, Config{Seed: 13, Islands: 1, MaxGenerations: 15, MigrationEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestManySmallIslands(t *testing.T) {
	in := testInstance(t, 9)
	res, err := Run(in, Config{Seed: 15, Islands: 8, GridW: 4, GridH: 4, MaxGenerations: 10, MigrationEvery: 2, Migrants: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerThread) != 8 {
		t.Fatalf("%d islands reported", len(res.PerThread))
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIslands4x64(b *testing.B) {
	in := testInstance(b, 1)
	for i := 0; i < b.N; i++ {
		cfg := Config{Seed: uint64(i), MaxEvaluations: 4000, SeedMinMin: true}
		if _, err := Run(in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
