package textplot

import (
	"strings"
	"testing"

	"gridsched/internal/stats"
)

func TestLineChartBasic(t *testing.T) {
	out := LineChart("Speedup", []Series{
		{Name: "0 iteration", X: []float64{1, 2, 3, 4}, Y: []float64{100, 90, 80, 70}},
		{Name: "10 iterations", X: []float64{1, 2, 3, 4}, Y: []float64{100, 150, 190, 190}},
	}, 60, 15)
	if !strings.Contains(out, "Speedup") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "0 iteration") || !strings.Contains(out, "10 iterations") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("series markers missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 15 canvas rows + axis + x labels + 2 legend entries.
	if len(lines) != 1+15+1+1+2 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestLineChartEmpty(t *testing.T) {
	out := LineChart("empty", nil, 40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart output %q", out)
	}
	// Mismatched X/Y lengths are skipped, not rendered.
	out = LineChart("bad", []Series{{Name: "bad", X: []float64{1}, Y: nil}}, 40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Fatal("mismatched series not skipped")
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	out := LineChart("flat", []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}}, 40, 8)
	if !strings.Contains(out, "*") {
		t.Fatal("constant series not drawn")
	}
}

func TestLineChartSinglePoint(t *testing.T) {
	out := LineChart("dot", []Series{{Name: "p", X: []float64{3}, Y: []float64{7}}}, 40, 8)
	if !strings.Contains(out, "*") {
		t.Fatal("single point not drawn")
	}
}

func TestLineChartMinimumDimensions(t *testing.T) {
	out := LineChart("tiny", []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}}, 1, 1)
	if len(out) == 0 {
		t.Fatal("no output at clamped dimensions")
	}
}

func mkBox(t *testing.T, vals ...float64) stats.BoxPlot {
	t.Helper()
	b, err := stats.NewBoxPlot(vals)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBoxPlotsBasic(t *testing.T) {
	out := BoxPlots("Instance u_c_hihi.0", []Box{
		{Label: "opx/5", Plot: mkBox(t, 10, 11, 12, 13, 14, 15, 16)},
		{Label: "tpx/10", Plot: mkBox(t, 5, 6, 7, 8, 9, 10, 11)},
	}, 60)
	for _, want := range []string{"opx/5", "tpx/10", "#", "=", "(", ")", "|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("box plot missing %q:\n%s", want, out)
		}
	}
}

func TestBoxPlotsOutliersRendered(t *testing.T) {
	out := BoxPlots("", []Box{
		{Label: "x", Plot: mkBox(t, 10, 11, 12, 13, 14, 15, 16, 100)},
	}, 60)
	if !strings.Contains(out, "o") {
		t.Fatalf("outlier marker missing:\n%s", out)
	}
}

func TestBoxPlotsEmpty(t *testing.T) {
	if !strings.Contains(BoxPlots("t", nil, 40), "(no data)") {
		t.Fatal("empty box plot output wrong")
	}
}

func TestBoxPlotsConstantSample(t *testing.T) {
	out := BoxPlots("", []Box{{Label: "const", Plot: mkBox(t, 3, 3, 3)}}, 40)
	if !strings.Contains(out, "#") {
		t.Fatalf("constant sample box missing median:\n%s", out)
	}
}

func TestBoxPlotsSharedScale(t *testing.T) {
	// The median marker of the larger sample must sit to the right of
	// the smaller sample's median on the shared scale.
	out := BoxPlots("", []Box{
		{Label: "lo", Plot: mkBox(t, 1, 2, 3)},
		{Label: "hi", Plot: mkBox(t, 100, 101, 102)},
	}, 60)
	lines := strings.Split(out, "\n")
	loCol := strings.IndexByte(lines[0], '#')
	hiCol := strings.IndexByte(lines[1], '#')
	if loCol < 0 || hiCol < 0 || loCol >= hiCol {
		t.Fatalf("medians not on a shared ascending scale:\n%s", out)
	}
}

func TestTrimNum(t *testing.T) {
	cases := map[float64]string{
		1500000: "1.5e+06",
		250:     "250",
		2.5:     "2.50",
	}
	for v, want := range cases {
		if got := trimNum(v); got != want {
			t.Fatalf("trimNum(%v) = %q, want %q", v, got, want)
		}
	}
}
