// Package textplot renders the paper's figures as plain-text charts: a
// multi-series line chart for Fig. 4 (speedup vs threads) and Fig. 6
// (mean makespan vs generations), and notched horizontal box plots for
// Fig. 5 (operator / local-search configurations per instance).
package textplot

import (
	"fmt"
	"math"
	"strings"

	"gridsched/internal/stats"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// markers cycles per series; chosen to stay readable in any font.
var markers = []byte{'*', '+', 'x', 'o', '#', '@', '%', '&'}

// LineChart renders series on a width×height character canvas with
// y-axis labels, an x-axis ruler and a marker legend. Series with
// mismatched X/Y lengths or no points are skipped.
func LineChart(title string, series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	var pts int
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			continue
		}
		for i := range s.X {
			pts++
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if pts == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, mark byte) {
		cx := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		cy := int(math.Round((y - ymin) / (ymax - ymin) * float64(height-1)))
		row := height - 1 - cy
		if row >= 0 && row < height && cx >= 0 && cx < width {
			canvas[row][cx] = mark
		}
	}
	for si, s := range series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			continue
		}
		mark := markers[si%len(markers)]
		// Dense linear interpolation between consecutive points keeps
		// lines visually connected on the character grid.
		for i := 1; i < len(s.X); i++ {
			steps := width * 2
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(steps)
				plot(s.X[i-1]+(s.X[i]-s.X[i-1])*f, s.Y[i-1]+(s.Y[i]-s.Y[i-1])*f, mark)
			}
		}
		for i := range s.X {
			plot(s.X[i], s.Y[i], mark)
		}
	}

	labelW := 12
	for i, row := range canvas {
		yVal := ymax - (ymax-ymin)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%*s |%s\n", labelW, trimNum(yVal), string(row))
	}
	fmt.Fprintf(&b, "%*s +%s\n", labelW, "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%*s %s%*s\n", labelW, trimNum(xmin), "", width-len(trimNum(xmin)), trimNum(xmax))
	for si, s := range series {
		fmt.Fprintf(&b, "%*s %c %s\n", labelW, "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// trimNum formats a float compactly for axis labels.
func trimNum(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6 || (av < 1e-3 && av > 0):
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Box is a labelled box-plot row.
type Box struct {
	Label string
	Plot  stats.BoxPlot
}

// BoxPlots renders notched horizontal box plots on a shared scale:
//
//	label |---(==#==)---|  o
//
// where '-' spans whisker to whisker, '=' the interquartile box, '(' ')'
// the 95 % median notch bounds, '#' the median and 'o' outliers. Two
// rows whose '(' ')' intervals do not overlap differ significantly —
// §4.2's reading of Fig. 5.
func BoxPlots(title string, boxes []Box, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(boxes) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if width < 30 {
		width = 30
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	labelW := 0
	for _, bx := range boxes {
		lo = math.Min(lo, math.Min(bx.Plot.Min, bx.Plot.NotchLo))
		hi = math.Max(hi, math.Max(bx.Plot.Max, bx.Plot.NotchHi))
		if len(bx.Label) > labelW {
			labelW = len(bx.Label)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	scale := func(v float64) int {
		c := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}
	for _, bx := range boxes {
		row := []byte(strings.Repeat(" ", width))
		p := bx.Plot
		for c := scale(p.WhiskerLo); c <= scale(p.WhiskerHi); c++ {
			row[c] = '-'
		}
		for c := scale(p.Q1); c <= scale(p.Q3); c++ {
			row[c] = '='
		}
		row[scale(p.WhiskerLo)] = '|'
		row[scale(p.WhiskerHi)] = '|'
		row[scale(p.NotchLo)] = '('
		row[scale(p.NotchHi)] = ')'
		row[scale(p.Median)] = '#'
		for _, o := range p.Outliers {
			row[scale(o)] = 'o'
		}
		fmt.Fprintf(&b, "%-*s %s\n", labelW, bx.Label, string(row))
	}
	loS, hiS := trimNum(lo), trimNum(hi)
	fmt.Fprintf(&b, "%-*s %s%*s\n", labelW, "", loS, width-len(loS), hiS)
	return b.String()
}
