package portfolio_test

import (
	"context"
	"strings"
	"testing"

	"gridsched/internal/portfolio"
	"gridsched/internal/solver"
	"gridsched/internal/testkit"
)

// TestPresetConformance runs the full conformance kit — with zero
// special-casing — against a scheme-resolved preset, exactly as it
// runs against every concretely registered name (the registered
// "portfolio" is covered by the testkit package's all-solver run).
func TestPresetConformance(t *testing.T) {
	testkit.Conformance(t, "portfolio:ga+tabu+h2ll")
}

func TestSchemeParsing(t *testing.T) {
	// Aliases canonicalize.
	s, err := solver.Lookup("portfolio:ga+tabu")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	got := s.(portfolio.Solver).Constituents()
	if len(got) != 2 || got[0] != "pa-cga" || got[1] != "tabu" {
		t.Fatalf("constituents = %v, want [pa-cga tabu]", got)
	}
	// The resolved solver echoes the requested name (registry contract).
	if s.Name() != "portfolio:ga+tabu" {
		t.Fatalf("Name() = %q", s.Name())
	}

	for _, bad := range []string{
		"portfolio:",                  // empty spec
		"portfolio:nope",              // unknown constituent
		"portfolio:tabu++h2ll",        // empty token
		"portfolio:portfolio",         // direct nesting
		"portfolio:tabu+portfolio:ga", // nested spec
	} {
		if _, err := solver.Lookup(bad); err == nil {
			t.Errorf("Lookup(%q) resolved, want error", bad)
		}
	}
}

func TestNewRejectsNesting(t *testing.T) {
	if _, err := portfolio.New("p", "portfolio"); err == nil {
		t.Fatal("nested portfolio accepted")
	}
	if _, err := portfolio.New("p"); err == nil {
		t.Fatal("empty constituent list accepted")
	}
}

// TestBudgetAccounting pins the tentpole's accounting contract: the
// per-constituent evaluations sum exactly to the parent counter, which
// stays within the submitted budget plus the conformance kit's
// child-engine slack.
func TestBudgetAccounting(t *testing.T) {
	inst := testkit.Instance(t)
	s, err := solver.Lookup("portfolio")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 3000
	res, err := s.Solve(context.Background(), inst, solver.Budget{MaxEvaluations: budget})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(res.Constituents) != 3 {
		t.Fatalf("Constituents = %d entries, want 3", len(res.Constituents))
	}
	var sum, gens int64
	for _, c := range res.Constituents {
		if c.Evaluations < 0 || c.Rounds < 1 {
			t.Fatalf("constituent %s: evals=%d rounds=%d", c.Solver, c.Evaluations, c.Rounds)
		}
		if c.Err != "" {
			t.Fatalf("constituent %s failed: %s", c.Solver, c.Err)
		}
		sum += c.Evaluations
		gens += c.Generations
	}
	if sum != res.Evaluations {
		t.Fatalf("constituent evaluations sum to %d, Result.Evaluations = %d", sum, res.Evaluations)
	}
	if res.Evaluations > budget+testkit.EvalSlack {
		t.Fatalf("Evaluations = %d exceeds budget %d beyond the child-engine slack", res.Evaluations, budget)
	}
	if gens != res.Generations {
		t.Fatalf("constituent generations sum to %d, Result.Generations = %d", gens, res.Generations)
	}
	// Someone must have contributed the incumbent.
	var improvements int64
	for _, c := range res.Constituents {
		improvements += c.Improvements
	}
	if improvements == 0 {
		t.Fatal("no constituent ever improved the incumbent")
	}
	if res.Best == nil || res.BestFitness != res.Best.Makespan() {
		t.Fatalf("incumbent fitness %v does not match schedule", res.BestFitness)
	}
}

// TestFinishedLaneDonatesBudget races a one-pass heuristic against
// tabu: the heuristic's unspent share must flow to tabu instead of
// being stranded, so the trajectory method ends up with more than its
// even split.
func TestFinishedLaneDonatesBudget(t *testing.T) {
	inst := testkit.Instance(t)
	s, err := solver.Lookup("portfolio:minmin+tabu")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 2000
	res, err := s.Solve(context.Background(), inst, solver.Budget{MaxEvaluations: budget})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	var minmin, tabu solver.ConstituentResult
	for _, c := range res.Constituents {
		switch c.Solver {
		case "minmin":
			minmin = c
		case "tabu":
			tabu = c
		}
	}
	if minmin.Rounds != 1 || minmin.Evaluations > 2 {
		t.Fatalf("minmin lane: rounds=%d evals=%d, want a single cheap pass", minmin.Rounds, minmin.Evaluations)
	}
	if tabu.Evaluations <= budget/2 {
		t.Fatalf("tabu evals = %d: the heuristic's donated share never arrived (even split is %d)",
			tabu.Evaluations, budget/2)
	}
	if res.Evaluations > budget+testkit.EvalSlack {
		t.Fatalf("Evaluations = %d exceeds budget %d", res.Evaluations, budget)
	}
}

// TestPortfolioOfOne pins the degenerate composition used by the
// overhead benchmark: one constituent gets the whole budget.
func TestPortfolioOfOne(t *testing.T) {
	inst := testkit.Instance(t)
	s, err := solver.Lookup("portfolio:tabu")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background(), inst, solver.Budget{MaxEvaluations: 1500})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(res.Constituents) != 1 || res.Constituents[0].Solver != "tabu" {
		t.Fatalf("Constituents = %+v", res.Constituents)
	}
	if res.Constituents[0].Evaluations != res.Evaluations {
		t.Fatalf("of-one accounting mismatch: %d vs %d", res.Constituents[0].Evaluations, res.Evaluations)
	}
	if res.Best == nil || !res.Best.Complete() {
		t.Fatal("of-one race returned no complete schedule")
	}
}

// TestDescribeAndSeeding covers the remaining registry surface.
func TestDescribeAndSeeding(t *testing.T) {
	s, err := solver.Lookup("portfolio")
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Describe(); !strings.Contains(d, "pa-cga+tabu+h2ll") {
		t.Fatalf("Describe() = %q does not name the constituents", d)
	}
	if solver.IsReproducible(s) {
		t.Fatal("portfolio claims reproducibility despite a timing-dependent race")
	}
	seeded := solver.WithSeed(s, 99)
	if seeded.(portfolio.Solver).Seed != 99 {
		t.Fatal("WithSeed did not reconfigure")
	}
}

// TestGenerationBudgetDepletesAcrossRounds pins the composite
// generation bound: restart rounds receive the submitted allowance
// minus what the lane already ran, so a portfolio job can never
// multiply MaxGenerations by its round count.
func TestGenerationBudgetDepletesAcrossRounds(t *testing.T) {
	inst := testkit.Instance(t)
	s, err := solver.Lookup("portfolio:tabu+h2ll")
	if err != nil {
		t.Fatal(err)
	}
	const gens = 10
	res, err := s.Solve(context.Background(), inst, solver.Budget{
		MaxGenerations: gens,
		MaxEvaluations: 50000, // loose, so generations are the binding bound
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for _, c := range res.Constituents {
		if c.Generations > gens {
			t.Fatalf("constituent %s ran %d generations against a bound of %d",
				c.Solver, c.Generations, gens)
		}
	}
}
