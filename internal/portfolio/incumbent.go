package portfolio

import (
	"math"
	"sync"
	"sync/atomic"

	"gridsched/internal/schedule"
)

// incumbent is the race's shared best-so-far. It is lock-cheap in the
// common case: Fitness is one atomic load, and Offer rejects a
// non-improving candidate on that load alone without touching the
// mutex. Only an actual improvement takes the lock to install the
// schedule, so constituents publishing at round granularity never
// serialize on each other's losing offers.
//
// Invariant: bits (the atomic fitness) is only stored while holding mu
// and always matches the schedule held in best, so a reader that wins
// the atomic pre-check and then takes the lock re-checks against a
// value that can only have improved in between.
type incumbent struct {
	bits atomic.Uint64 // math.Float64bits of the best fitness; +Inf while empty
	mu   sync.Mutex
	best *schedule.Schedule
}

func newIncumbent() *incumbent {
	in := &incumbent{}
	in.bits.Store(math.Float64bits(math.Inf(1)))
	return in
}

// Fitness returns the incumbent fitness (+Inf while empty) — one
// atomic load, safe on any hot path.
func (in *incumbent) Fitness() float64 {
	return math.Float64frombits(in.bits.Load())
}

// Offer publishes a candidate: it installs a clone of s if fit improves
// on the incumbent and reports whether it did. s is never retained.
func (in *incumbent) Offer(s *schedule.Schedule, fit float64) bool {
	if s == nil || math.IsNaN(fit) || fit >= in.Fitness() {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if fit >= math.Float64frombits(in.bits.Load()) {
		return false // lost the install race to a better offer
	}
	if in.best == nil {
		in.best = s.Clone()
	} else {
		in.best.CopyFrom(s)
	}
	in.bits.Store(math.Float64bits(fit))
	return true
}

// Snapshot returns a private clone of the incumbent schedule and its
// fitness, or ok=false while the incumbent is empty.
func (in *incumbent) Snapshot() (*schedule.Schedule, float64, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.best == nil {
		return nil, 0, false
	}
	return in.best.Clone(), math.Float64frombits(in.bits.Load()), true
}
