// Package portfolio implements the racing portfolio meta-solver: the
// first solver in the registry that composes other solvers. It splits
// a job's budget across N constituent solvers resolved from the
// registry, runs them on parallel goroutines — each charged against
// the parent budget engine through a per-constituent child engine
// (solver.Engine.Child) — and shares a lock-cheap incumbent (atomic
// best fitness, mutex-guarded best schedule) that constituents publish
// improvements to at round boundaries and, when they implement
// solver.Restarter, seed their restarts from.
//
// An adaptive allocator watches the race: constituents that stop
// improving the incumbent for a stall window donate evaluation budget
// (solver.Engine.Transfer) to the most recently improving one, and a
// constituent that finishes early (a one-pass heuristic, a failure)
// donates its remainder immediately. The race ends when every
// constituent has converged or the parent budget/deadline trips, and
// the result reports a per-constituent breakdown
// (solver.Result.Constituents) whose evaluations sum to the parent
// engine's counter — bounded by the submitted budget. Evaluation
// budgets should comfortably exceed the constituents' aggregate
// initialization cost (solver.Initializer — ~256 per cellular GA at
// Table 1 defaults): a share smaller than a constituent's
// unconditional initial evaluation can overshoot by the difference,
// and a conceded remainder below a restart floor is left unspent
// rather than burned on initialization.
//
// The meta-solver registers the default preset under "portfolio"
// (pa-cga + tabu + h2ll) and a registry scheme for ad-hoc
// compositions: "portfolio:pa-cga+tabu", "portfolio:ga+tabu+h2ll"
// ("ga" aliases "pa-cga"), any "+"-joined list of registered solver
// names. Nesting is rejected — a portfolio cannot race portfolios.
//
// The race is honestly timing-dependent (goroutine interleaving
// decides which constituent publishes first and where budget flows),
// so the portfolio does not declare solver.Reproducible.
package portfolio

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/solver"

	// The portfolio resolves constituents by registry name; force-link
	// the families its default preset names so a bare import of this
	// package yields a working "portfolio" solver.
	_ "gridsched/internal/core"
	_ "gridsched/internal/tabu"
)

// prefix is the registry scheme, as in "portfolio:pa-cga+tabu".
const prefix = "portfolio"

// aliases maps convenience tokens accepted in portfolio specs to
// canonical registry names.
var aliases = map[string]string{
	"ga":  "pa-cga",
	"cga": "pa-cga",
}

// DefaultConstituents is the preset registered under the plain
// "portfolio" name: the paper's algorithm raced against the two
// trajectory methods, covering the population/memory/descent
// families.
var DefaultConstituents = []string{"pa-cga", "tabu", "h2ll"}

// Solver is the racing portfolio meta-solver. The zero value is not
// usable — construct with New (or resolve "portfolio[:spec]" through
// the registry). Tuning fields may be set on a copy; a registered
// Solver is immutable configuration like every other solver.
type Solver struct {
	name         string   // registry name this instance answers to (the spec, verbatim)
	constituents []string // canonical registry names, raced in parallel

	// Seed is the base seed; each constituent round derives its own
	// stream from (Seed, lane, round) so restarts explore new basins.
	Seed uint64
	// RoundsTarget is how many restart rounds the race aims to give
	// each constituent under an evaluation budget, and the divisor of
	// a wall budget's round window (default 4). More rounds mean more
	// incumbent sharing; fewer mean less restart overhead.
	RoundsTarget int
	// MinRestartEvals, when set, overrides the per-constituent restart
	// floor: the smallest evaluation allocation worth starting a
	// restart round on. The default is twice the constituent's declared
	// initialization cost (solver.Initializer, floored at 64), so a
	// restart never burns the tail of the budget on population
	// initialization alone.
	MinRestartEvals int64
	// Window is the allocator's reallocation tick (default 20ms).
	Window time.Duration
	// StallWindows is how many allocator windows without an incumbent
	// improvement mark a constituent stalled (default 2).
	StallWindows int
}

// New builds a portfolio solver answering to name that races the given
// constituent solvers (registry names or aliases like "ga"). The
// constituents are resolved lazily at Solve, but nesting is rejected
// here: a portfolio constituent may not itself be a portfolio.
func New(name string, constituents ...string) (Solver, error) {
	if len(constituents) == 0 {
		return Solver{}, fmt.Errorf("portfolio: empty constituent list")
	}
	canon := make([]string, 0, len(constituents))
	for _, tok := range constituents {
		tok = strings.TrimSpace(tok)
		if a, ok := aliases[tok]; ok {
			tok = a
		}
		if tok == "" {
			return Solver{}, fmt.Errorf("portfolio: empty constituent name in %q", name)
		}
		if isPortfolioName(tok) {
			return Solver{}, fmt.Errorf("portfolio: constituent %q would nest a portfolio inside %q", tok, name)
		}
		canon = append(canon, tok)
	}
	return Solver{name: name, constituents: canon}, nil
}

// Parse is the registry scheme resolver for "portfolio:a+b+c" names:
// it validates the spec and that every constituent resolves, so a bad
// name fails at Lookup (the service's fail-fast Submit contract)
// rather than inside a running job.
func Parse(name string) (solver.Solver, error) {
	spec, ok := strings.CutPrefix(name, prefix+":")
	if !ok || spec == "" {
		return nil, fmt.Errorf("portfolio: bad spec %q (want %s:name+name+...)", name, prefix)
	}
	s, err := New(name, strings.Split(spec, "+")...)
	if err != nil {
		return nil, err
	}
	for _, c := range s.constituents {
		if _, err := resolveConstituent(c); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func isPortfolioName(name string) bool {
	return name == prefix || strings.HasPrefix(name, prefix+":")
}

// IsPortfolioName reports whether a registry name denotes the racing
// portfolio meta-solver — the concrete registration or a scheme spec.
// Report layers (the scenario sweep) use it to classify solvers
// without hardcoding the prefix a second time.
func IsPortfolioName(name string) bool { return isPortfolioName(name) }

// resolveConstituent looks a constituent up and enforces the no-nesting
// guard against both the requested name and whatever it resolved to.
func resolveConstituent(name string) (solver.Solver, error) {
	if isPortfolioName(name) {
		return nil, fmt.Errorf("portfolio: constituent %q would nest portfolios", name)
	}
	sv, err := solver.Lookup(name)
	if err != nil {
		return nil, err
	}
	if _, nested := sv.(Solver); nested || isPortfolioName(sv.Name()) {
		return nil, fmt.Errorf("portfolio: constituent %q resolves to a portfolio", name)
	}
	return sv, nil
}

// Name implements solver.Solver.
func (s Solver) Name() string { return s.name }

// Describe implements solver.Solver.
func (s Solver) Describe() string {
	return fmt.Sprintf("racing portfolio of %s: parallel race, shared incumbent, adaptive budget reallocation",
		strings.Join(s.constituents, "+"))
}

// Constituents returns the canonical registry names the portfolio
// races.
func (s Solver) Constituents() []string {
	return append([]string(nil), s.constituents...)
}

// WithSeed implements solver.Seeder.
func (s Solver) WithSeed(seed uint64) solver.Solver {
	s.Seed = seed
	return s
}

// Reproducible implements solver.Reproducible: honestly false — the
// race outcome depends on goroutine interleaving (which constituent
// publishes first, where the allocator moves budget), even under a
// deterministic evaluation budget.
func (s Solver) Reproducible() bool { return false }

func (s Solver) roundsTarget() int {
	if s.RoundsTarget <= 0 {
		return 4
	}
	return s.RoundsTarget
}

func (s Solver) restartFloorFor(init int64) int64 {
	if s.MinRestartEvals > 0 {
		return s.MinRestartEvals
	}
	if floor := 2 * init; floor > 64 {
		return floor
	}
	return 64
}

func (s Solver) window() time.Duration {
	if s.Window <= 0 {
		return 20 * time.Millisecond
	}
	return s.Window
}

func (s Solver) stallWindows() int {
	if s.StallWindows <= 0 {
		return 2
	}
	return s.StallWindows
}

func (s Solver) baseSeed() uint64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// lane is one constituent's slot in the race.
type lane struct {
	name string
	sv   solver.Solver
	eng  *solver.Engine
	// share is the lane's initial evaluation allocation (before
	// transfers); slice and restartFloor are derived from it and the
	// constituent's declared initialization cost: a population GA gets
	// few long rounds (each amortizing its initial evaluation), a
	// trajectory method gets many short ones (frequent publication and
	// early stall detection). window is the wall-budget counterpart.
	share, slice, restartFloor int64
	window                     time.Duration

	// lastImprove is nanoseconds since race start of the lane's last
	// accepted incumbent publication; progressing is whether the lane's
	// last completed round improved the incumbent (true until a round
	// completes — benefit of the doubt); parked marks a lane waiting in
	// awaitDonation (out of budget, not out of the race); finished
	// flips when the lane's loop exits. All are read by other
	// goroutines while the lane runs.
	lastImprove atomic.Int64
	progressing atomic.Bool
	parked      atomic.Bool
	finished    atomic.Bool

	// Written by the lane goroutine only; read after the race joins.
	rounds, gens, lsMoves, improvements int64
	busy                                time.Duration
	bestFit                             float64
	err                                 error
}

// Solve implements solver.Solver: resolve the constituents, carve the
// parent budget into per-constituent child engines, race the lanes,
// and return the shared incumbent with a per-constituent breakdown.
func (s Solver) Solve(ctx context.Context, inst *etc.Instance, b solver.Budget) (*solver.Result, error) {
	if b.IsZero() {
		return nil, fmt.Errorf("portfolio: no stop condition set")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	lanes := make([]*lane, 0, len(s.constituents))
	for _, name := range s.constituents {
		sv, err := resolveConstituent(name)
		if err != nil {
			return nil, err
		}
		lanes = append(lanes, &lane{name: name, sv: sv, bestFit: math.Inf(1)})
	}

	parent := solver.NewEngine(ctx, b)
	effTotal := parent.EffectiveBudget()
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	inc := newIncumbent()
	raceStart := time.Now()

	frac := 1.0 / float64(len(lanes))
	for _, l := range lanes {
		l.eng = parent.Child(frac)
		l.share = l.eng.Budget().MaxEvaluations
		init := solver.InitEvals(l.sv, inst)
		l.restartFloor = s.restartFloorFor(init)
		// Slice rounds so initialization stays a small fraction of each
		// round; a GA whose init exceeds share/RoundsTarget simply runs
		// one long round and restarts only on donated budget.
		l.slice = l.share / int64(s.roundsTarget())
		if min := 8 * init; l.slice < min {
			l.slice = min
		}
		if l.slice < 64 {
			l.slice = 64
		}
		// The wall-budget analog: a population solver runs one
		// uninterrupted window to the deadline (restarting a GA buys
		// nothing a longer evolution wouldn't), while trajectory
		// solvers take short probe windows — a fixed small fraction of
		// the wall, floored at scheduling granularity — so a stalled
		// probe concedes the cores to the progressing lane early
		// instead of squatting on a proportional share of the race.
		if wall := effTotal.MaxDuration; wall > 0 && init <= 1 {
			l.window = wall / 16
			if floor := 20 * time.Millisecond; l.window < floor {
				l.window = floor
			}
		}
		l.progressing.Store(true)
	}

	var wg sync.WaitGroup
	for i, l := range lanes {
		wg.Add(1)
		go func(i int, l *lane) {
			defer wg.Done()
			s.runLane(raceCtx, raceStart, inst, effTotal, inc, lanes, l, i)
		}(i, l)
	}

	allocStop := make(chan struct{})
	var allocWG sync.WaitGroup
	allocWG.Add(1)
	go func() {
		defer allocWG.Done()
		s.allocate(lanes, raceStart, allocStop)
	}()

	wg.Wait() // every lane converged, exhausted its budget, or was cancelled
	close(allocStop)
	allocWG.Wait()
	cancel()

	res := &solver.Result{
		Evaluations:     parent.Evals(),
		Duration:        parent.Elapsed(),
		EffectiveBudget: parent.EffectiveBudget(),
		PerThread:       make([]int64, len(lanes)),
		Constituents:    make([]solver.ConstituentResult, len(lanes)),
	}
	var firstErr error
	for i, l := range lanes {
		res.PerThread[i] = l.gens
		res.Generations += l.gens
		res.LocalSearchMoves += l.lsMoves
		c := solver.ConstituentResult{
			Solver:       l.name,
			Evaluations:  l.eng.Evals(),
			Generations:  l.gens,
			Rounds:       l.rounds,
			Improvements: l.improvements,
			Busy:         l.busy,
		}
		if !math.IsInf(l.bestFit, 1) {
			c.BestFitness = l.bestFit
		}
		if l.err != nil {
			c.Err = l.err.Error()
			if firstErr == nil {
				firstErr = l.err
			}
		}
		res.Constituents[i] = c
	}

	best, fit, found := inc.Snapshot()
	if !found {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, fmt.Errorf("portfolio: no constituent produced a schedule: %w", firstErr)
		}
		return nil, fmt.Errorf("portfolio: no constituent produced a schedule under budget %s", b)
	}
	res.Best, res.BestFitness = best, fit
	parent.Finish(fit)
	return res, nil
}

// runLane drives one constituent through restart rounds until its
// budget (or the race) ends, publishing each round's best to the
// shared incumbent and warm-starting from it when the constituent
// supports solver.Restarter. Under an evaluation budget the lane also
// self-assesses at each round boundary: a round that failed to improve
// on its own starting point marks the lane stalled, and a stalled lane
// concedes — donating its remaining evaluations — as long as some
// sibling is still making progress (the last progressing lane never
// concedes, so budget always has a consumer).
func (s Solver) runLane(raceCtx context.Context, raceStart time.Time, inst *etc.Instance, effTotal solver.Budget, inc *incumbent, lanes []*lane, l *lane, laneIdx int) {
	for round := 0; ; round++ {
		if raceCtx.Err() != nil || l.eng.Expired() {
			break
		}
		rb, ok := s.roundBudget(effTotal, l, round)
		if !ok {
			// Park only when the stop reason is evaluation starvation —
			// a lane halted by its generation bound or the deadline has
			// nothing a donation could fix.
			if rem := l.eng.RemainingEvals(); rem >= 0 && rem < l.restartFloor && s.awaitDonation(raceCtx, lanes, l) {
				continue // a sibling's donation re-funded the lane
			}
			break
		}
		sv := l.sv
		if _, ok := sv.(solver.Seeder); ok {
			sv = solver.WithSeed(sv, laneSeed(s.baseSeed(), laneIdx, round))
		}
		if round > 0 {
			if rs, ok := sv.(solver.Restarter); ok {
				if snap, _, found := inc.Snapshot(); found {
					sv = rs.WithStart(snap)
				}
			}
		}
		t0 := time.Now()
		// Label the round's engines with the lane name so an attached
		// observer can attribute convergence events per constituent.
		res, err := sv.Solve(solver.WithEngine(solver.WithLane(raceCtx, l.name), l.eng), inst, rb)
		l.busy += time.Since(t0)
		l.rounds++
		if err != nil {
			if raceCtx.Err() != nil {
				break // cancellation surfacing as an error is not a lane failure
			}
			l.err = err
			break
		}
		// A round counts as progress only if it improved the shared
		// incumbent — the race's one currency. A lane whose round
		// produced a result the incumbent already beats has, for the
		// race's purposes, stalled.
		improved := false
		if res != nil {
			l.gens += res.Generations
			l.lsMoves += res.LocalSearchMoves
			if res.Best != nil {
				if res.BestFitness < l.bestFit {
					l.bestFit = res.BestFitness
				}
				if inc.Offer(res.Best, res.BestFitness) {
					improved = true
					l.improvements++
					l.lastImprove.Store(int64(time.Since(raceStart)))
				}
			}
		}
		l.progressing.Store(improved)
		if singlePass(l.sv) {
			break // a deterministic one-pass solver gains nothing from reruns
		}
		// Concede after a round with no self-progress while a sibling is
		// still progressing: under an evaluation budget the remainder is
		// donated below; under a wall budget stepping aside stops a
		// stalled lane from squatting on cores the progressing lane
		// (and its GA worker threads) could use. The last progressing
		// lane never concedes, so the budget always has a consumer.
		if !improved && siblingProgressing(lanes, l) {
			break
		}
	}
	l.finished.Store(true)
	donateRemainder(l, lanes)
}

// awaitDonation parks a lane that ran out of evaluation budget while
// some sibling still holds unspent budget: a conceding or finishing
// sibling may donate at any moment (scheduling decides the order, not
// the code), and exiting early would strand that donation. It returns
// true once the lane's remaining allocation clears its restart floor,
// false when no possible donor is left or the race is over. A sibling
// that is itself parked is not a donor — it is waiting too, and
// counting it would let two lanes holding sub-floor scraps spin on
// each other forever; when a parked lane gives up, its exit donation
// can still accumulate a sibling's scraps past the floor and revive
// it.
func (s Solver) awaitDonation(raceCtx context.Context, lanes []*lane, l *lane) bool {
	if l.eng.Budget().MaxEvaluations <= 0 {
		return false // only evaluation budgets are transferable
	}
	l.parked.Store(true)
	defer l.parked.Store(false)
	for {
		if raceCtx.Err() != nil || l.eng.Expired() {
			return false
		}
		if rem := l.eng.RemainingEvals(); rem >= l.restartFloor {
			return true
		}
		donorAlive := false
		for _, t := range lanes {
			if t != l && !t.finished.Load() && !t.parked.Load() && t.eng.RemainingEvals() > 0 {
				donorAlive = true
				break
			}
		}
		if !donorAlive {
			return false
		}
		select {
		case <-raceCtx.Done():
			return false
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// siblingProgressing reports whether any other unfinished lane is
// worth conceding to: one whose last completed round improved the
// incumbent (lanes mid-first-round count as progressing — benefit of
// the doubt, so probes concede to a GA still deep in its first long
// round). One-pass heuristic lanes never qualify — they cannot absorb
// a donation, so conceding to one strands budget.
func siblingProgressing(lanes []*lane, l *lane) bool {
	for _, t := range lanes {
		if t != l && !t.finished.Load() && t.progressing.Load() && !singlePass(t.sv) {
			return true
		}
	}
	return false
}

// roundBudget slices the lane's next restart round out of its
// remaining allocation. ok=false means the lane has no useful work
// left: evaluations exhausted (or below the restart floor), the
// deadline passed, or a generation-only budget already ran its one
// round.
func (s Solver) roundBudget(effTotal solver.Budget, l *lane, round int) (solver.Budget, bool) {
	var rb solver.Budget
	if effTotal.MaxGenerations > 0 {
		// The generation bound depletes across rounds: handing every
		// restart the full allowance would multiply the submitted
		// bound by the round count. l.gens sums worker generations, so
		// this treats the bound as a per-lane total — conservative for
		// multi-worker constituents, never over.
		rb.MaxGenerations = effTotal.MaxGenerations - l.gens
		if rb.MaxGenerations <= 0 {
			return rb, false
		}
	}
	evalBounded := effTotal.MaxEvaluations > 0
	remDur := l.eng.RemainingDuration()
	if evalBounded {
		rem := l.eng.RemainingEvals()
		if rem <= 0 {
			return rb, false
		}
		if round > 0 && rem < l.restartFloor {
			return rb, false
		}
		slice := l.slice
		// When the round would absorb the lane's whole remaining
		// allocation anyway (a GA's one long round, or a short tail not
		// worth stranding), bound it formally by the parent total and
		// let the lane engine bind through the chain: evaluations
		// donated by conceding siblings then extend the running round
		// live, instead of paying another initialization next round.
		if rem < slice+l.restartFloor {
			slice = effTotal.MaxEvaluations
		}
		rb.MaxEvaluations = slice
	}
	if remDur >= 0 {
		if remDur == 0 {
			return rb, false
		}
		win := l.window
		if win <= 0 || win > remDur {
			win = remDur
		}
		rb.MaxDuration = win
	}
	if !evalBounded && remDur < 0 && round > 0 {
		return rb, false // generation-only budget: one full round per lane
	}
	return rb, true
}

// singlePass reports whether rerunning the solver can produce anything
// new: a reproducible solver with no seed and no warm-start hook (a
// constructive heuristic) repeats itself exactly.
func singlePass(sv solver.Solver) bool {
	if _, ok := sv.(solver.Seeder); ok {
		return false
	}
	if _, ok := sv.(solver.Restarter); ok {
		return false
	}
	return solver.IsReproducible(sv)
}

// donateRemainder hands a finished lane's unspent evaluations to the
// lanes still racing, so a one-pass heuristic (or a failed
// constituent) doesn't strand a third of the budget.
func donateRemainder(l *lane, lanes []*lane) {
	rem := l.eng.RemainingEvals()
	if rem <= 0 {
		return
	}
	var targets []*lane
	for _, t := range lanes {
		if t != l && !t.finished.Load() {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		return
	}
	share := rem / int64(len(targets))
	if share <= 0 {
		share = rem
	}
	for _, t := range targets {
		l.eng.Transfer(t.eng, share)
	}
}

// allocate is the adaptive allocator: every window it finds the most
// recently improving lane and moves evaluation budget to it — all of a
// finished lane's remainder, half of a stalled lane's (no incumbent
// improvement for StallWindows windows). With no improving lane (or a
// wall-only budget, which has no evaluations to move) it does nothing.
func (s Solver) allocate(lanes []*lane, raceStart time.Time, stop <-chan struct{}) {
	window := s.window()
	horizon := int64(window) * int64(s.stallWindows())
	tick := time.NewTicker(window)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		now := int64(time.Since(raceStart))
		var rec *lane
		for _, l := range lanes {
			if l.finished.Load() {
				continue
			}
			if li := l.lastImprove.Load(); li > 0 && now-li <= horizon {
				if rec == nil || li > rec.lastImprove.Load() {
					rec = l
				}
			}
		}
		if rec == nil {
			continue
		}
		for _, l := range lanes {
			if l == rec {
				continue
			}
			finished := l.finished.Load()
			// A lane still progressing — including one deep in its
			// first round, which has had no chance to publish yet —
			// keeps its budget; only a lane whose last completed round
			// failed to improve the incumbent is reclaimable.
			stalled := !finished && !l.progressing.Load() && now-l.lastImprove.Load() > horizon
			if !finished && !stalled {
				continue
			}
			n := l.eng.RemainingEvals()
			if !finished {
				n /= 2
			}
			if n > 0 {
				l.eng.Transfer(rec.eng, n)
			}
		}
	}
}

// laneSeed derives a constituent round's seed from the base seed, the
// lane index and the round: a splitmix64-style finalizer so restarts
// explore different basins deterministically per (seed, lane, round).
// The first lane's first round keeps the base seed verbatim, so a
// seeded portfolio's flagship constituent reproduces the trajectory
// the same seed gives it outside the race.
func laneSeed(base uint64, laneIdx, round int) uint64 {
	if laneIdx == 0 && round == 0 {
		return base
	}
	z := base + 0x9E3779B97F4A7C15*uint64(laneIdx+1) + 0xBF58476D1CE4E5B9*uint64(round+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

func init() {
	def, err := New(prefix, DefaultConstituents...)
	if err != nil {
		panic(err)
	}
	solver.Register(def)
	solver.RegisterScheme(prefix, Parse)
}
