package portfolio

import (
	"math"
	"sync"
	"testing"

	"gridsched/internal/rng"
	"gridsched/internal/schedule"
	"gridsched/internal/testkit"
)

// TestIncumbentConcurrentPublication hammers Offer from many
// goroutines under -race: the final incumbent must be the global best
// offer, its stored fitness must match the installed schedule, and no
// losing offer may tear the (atomic fitness, locked schedule) pair.
func TestIncumbentConcurrentPublication(t *testing.T) {
	inst := testkit.Instance(t)
	inc := newIncumbent()

	if _, _, ok := inc.Snapshot(); ok {
		t.Fatal("empty incumbent produced a snapshot")
	}
	if !math.IsInf(inc.Fitness(), 1) {
		t.Fatalf("empty incumbent fitness = %v, want +Inf", inc.Fitness())
	}

	const publishers = 8
	const offersEach = 200
	var wg sync.WaitGroup
	bestByPub := make([]float64, publishers)
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := rng.New(uint64(p + 1))
			s := schedule.NewRandom(inst, r)
			best := math.Inf(1)
			for i := 0; i < offersEach; i++ {
				s.Move(r.Intn(inst.T), r.Intn(inst.M))
				fit := s.Makespan()
				if fit < best {
					best = fit
				}
				inc.Offer(s, fit)
				// Cheap-path read must always be a fitness some offer
				// actually had (or +Inf): spot-check monotonicity.
				if got := inc.Fitness(); got > fit {
					t.Errorf("incumbent fitness %v worse than a just-published %v", got, fit)
					return
				}
			}
			bestByPub[p] = best
		}(p)
	}
	wg.Wait()

	globalBest := math.Inf(1)
	for _, b := range bestByPub {
		if b < globalBest {
			globalBest = b
		}
	}
	snap, fit, ok := inc.Snapshot()
	if !ok {
		t.Fatal("no incumbent after publications")
	}
	if fit != globalBest {
		t.Fatalf("incumbent fitness %v, want global best %v", fit, globalBest)
	}
	if got := snap.Makespan(); got != fit {
		t.Fatalf("installed schedule makespan %v does not match stored fitness %v", got, fit)
	}
	// The snapshot is private: mutating it must not touch the incumbent.
	snap.Move(0, 0)
	if _, fit2, _ := inc.Snapshot(); fit2 != fit {
		t.Fatal("snapshot aliases the incumbent schedule")
	}
}

// TestIncumbentRejects pins the cheap-reject path: equal or worse
// offers and NaN are refused without installing.
func TestIncumbentRejects(t *testing.T) {
	inst := testkit.Instance(t)
	inc := newIncumbent()
	s := schedule.NewRandom(inst, rng.New(1))
	if !inc.Offer(s, 100) {
		t.Fatal("first offer rejected")
	}
	for _, fit := range []float64{100, 101, math.Inf(1), math.NaN()} {
		if inc.Offer(s, fit) {
			t.Fatalf("non-improving offer %v accepted", fit)
		}
	}
	if inc.Offer(nil, 1) {
		t.Fatal("nil schedule accepted")
	}
	if !inc.Offer(s, 99) {
		t.Fatal("improving offer rejected")
	}
	if inc.Fitness() != 99 {
		t.Fatalf("fitness = %v, want 99", inc.Fitness())
	}
}
