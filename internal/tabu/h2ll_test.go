package tabu

import (
	"context"
	"testing"

	"gridsched/internal/etc"
	"gridsched/internal/heuristics"
	"gridsched/internal/solver"
)

func h2llInstance(t *testing.T) *etc.Instance {
	t.Helper()
	inst, err := etc.Generate(etc.GenSpec{
		Class: etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High},
		Tasks: 128, Machines: 8, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestH2LLSolverImprovesOnMinMin(t *testing.T) {
	inst := h2llInstance(t)
	res, err := H2LLSolver{Seed: 1}.Solve(context.Background(), inst, solver.Budget{MaxEvaluations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	mm := heuristics.MinMin(inst).Makespan()
	if res.BestFitness > mm {
		t.Fatalf("h2ll best %v worse than its Min-min start %v", res.BestFitness, mm)
	}
	if res.Evaluations > 2000 {
		t.Fatalf("Evaluations = %d exceeds the budget", res.Evaluations)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
}

func TestH2LLSolverRejectsZeroBudget(t *testing.T) {
	if _, err := (H2LLSolver{}).Solve(context.Background(), h2llInstance(t), solver.Budget{}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestWithStartWarmStart(t *testing.T) {
	inst := h2llInstance(t)
	warm := heuristics.Sufferage(inst)
	warmFit := warm.Makespan()

	for _, sv := range []solver.Solver{Solver{Seed: 1}, H2LLSolver{Seed: 1}} {
		rs, ok := sv.(solver.Restarter)
		if !ok {
			t.Fatalf("%s does not implement Restarter", sv.Name())
		}
		started := rs.WithStart(warm)
		res, err := started.Solve(context.Background(), inst, solver.Budget{MaxEvaluations: 500})
		if err != nil {
			t.Fatalf("%s: %v", sv.Name(), err)
		}
		// A warm-started trajectory can only match or improve its start.
		if res.BestFitness > warmFit {
			t.Fatalf("%s: warm start %v regressed to %v", sv.Name(), warmFit, res.BestFitness)
		}
		// The supplied schedule is cloned, never mutated.
		if warm.Makespan() != warmFit {
			t.Fatalf("%s mutated the start schedule", sv.Name())
		}
		// The receiver stays untouched (value semantics).
		if sv.(solver.Restarter) == nil {
			t.Fatal("unreachable")
		}
	}
}
