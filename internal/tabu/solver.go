package tabu

import (
	"context"
	"fmt"

	"gridsched/internal/etc"
	"gridsched/internal/heuristics"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
	"gridsched/internal/solver"
)

// Solver runs tabu search as a standalone metaheuristic rather than as
// a local-search hook inside a GA: an iterated tabu search that starts
// from the Min-min schedule, applies bounded tabu sweeps, and kicks the
// incumbent with random task moves whenever a sweep fails to improve —
// the restart discipline that lets a trajectory method compete with the
// population methods under the same budget.
type Solver struct {
	// Search configures each tabu sweep; zero fields take the Search
	// defaults.
	Search Search
	// KickMoves is how many random task relocations perturb the
	// incumbent after a non-improving sweep (default 8).
	KickMoves int
	// RandomStart begins from a random schedule instead of Min-min.
	RandomStart bool
	// Start, when non-nil, begins the search from (a clone of) this
	// schedule, overriding RandomStart and the Min-min default; see
	// solver.Restarter. It must belong to the instance Solve receives.
	Start *schedule.Schedule
	// Seed drives all randomness.
	Seed uint64
}

// Name implements solver.Solver.
func (s Solver) Name() string { return "tabu" }

// Describe implements solver.Solver.
func (s Solver) Describe() string {
	return "standalone iterated tabu search from a Min-min start with random-kick diversification"
}

// WithSeed implements solver.Seeder.
func (s Solver) WithSeed(seed uint64) solver.Solver {
	s.Seed = seed
	return s
}

// WithStart implements solver.Restarter: the returned copy starts its
// trajectory from start instead of Min-min.
func (s Solver) WithStart(start *schedule.Schedule) solver.Solver {
	s.Start = start
	return s
}

// Reproducible implements solver.Reproducible: the search is a single
// deterministic trajectory.
func (s Solver) Reproducible() bool { return true }

func (s Solver) kickMoves() int {
	if s.KickMoves <= 0 {
		return 8
	}
	return s.KickMoves
}

// Solve implements solver.Solver. Each tabu iteration counts as one
// evaluation (one incremental makespan recomputation), and sweeps are
// clamped to the remaining evaluation budget so the bound is exact.
func (s Solver) Solve(ctx context.Context, inst *etc.Instance, b solver.Budget) (*solver.Result, error) {
	if b.IsZero() {
		return nil, fmt.Errorf("tabu: no stop condition set")
	}
	eng := solver.NewEngine(ctx, b)
	r := rng.New(s.Seed)

	var cur *schedule.Schedule
	switch {
	case s.Start != nil && s.Start.Inst == inst:
		cur = s.Start.Clone()
	case s.RandomStart:
		cur = schedule.NewRandom(inst, r)
	default:
		cur = heuristics.MinMin(inst)
	}
	eng.AddEvals(1)
	best := cur.Clone()
	bestFit := cur.Makespan()
	eng.Observe(bestFit)

	search := s.Search
	chunk := int64(search.maxIters())
	var sweeps, moves int64
	for {
		if eng.StopSweep(sweeps) || eng.EvalsExhausted() {
			break
		}
		iters := chunk
		if rem := eng.RemainingEvals(); rem >= 0 && rem < iters {
			iters = rem
		}
		search.MaxIters = int(iters)
		moves += int64(search.Apply(cur, r))
		eng.AddEvals(iters)
		sweeps++
		f := cur.Makespan()
		eng.Observe(f)
		if f < bestFit {
			best.CopyFrom(cur)
			bestFit = f
		} else {
			// Diversify: kick the incumbent with random relocations so
			// the next sweep explores a different basin.
			for k := 0; k < s.kickMoves(); k++ {
				cur.Move(r.Intn(inst.T), r.Intn(inst.M))
			}
		}
	}

	eng.Finish(bestFit)
	return &solver.Result{
		Best:             best,
		BestFitness:      bestFit,
		Evaluations:      eng.Evals(),
		Generations:      sweeps,
		PerThread:        []int64{sweeps},
		LocalSearchMoves: moves,
		Duration:         eng.Elapsed(),
		EffectiveBudget:  eng.EffectiveBudget(),
	}, nil
}

func init() {
	solver.Register(Solver{Seed: 1})
}
