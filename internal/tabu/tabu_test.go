package tabu

import (
	"testing"
	"testing/quick"

	"gridsched/internal/etc"
	"gridsched/internal/operators"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

func testInstance(t testing.TB, seed uint64) *etc.Instance {
	t.Helper()
	in, err := etc.Generate(etc.GenSpec{
		Class: etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High},
		Tasks: 96, Machines: 12, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSearchIsLocalSearch(t *testing.T) {
	var _ operators.LocalSearch = Search{}
}

func TestApplyNeverWorsens(t *testing.T) {
	in := testInstance(t, 1)
	r := rng.New(2)
	for trial := 0; trial < 25; trial++ {
		s := schedule.NewRandom(in, r)
		before := s.Makespan()
		Search{MaxIters: 30}.Apply(s, r)
		if s.Makespan() > before+1e-9 {
			t.Fatalf("tabu worsened makespan %v -> %v", before, s.Makespan())
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestApplyImprovesUnbalanced(t *testing.T) {
	in := testInstance(t, 3)
	s := schedule.New(in)
	for task := 0; task < in.T; task++ {
		s.Assign(task, 0)
	}
	r := rng.New(4)
	before := s.Makespan()
	if impr := (Search{MaxIters: 50}).Apply(s, r); impr == 0 {
		t.Fatal("tabu found no improvement on a fully unbalanced schedule")
	}
	if s.Makespan() >= before {
		t.Fatalf("tabu failed to improve: %v -> %v", before, s.Makespan())
	}
}

func TestApplyEscapesWhereDescentStalls(t *testing.T) {
	// After H2LL converges to a local optimum, tabu with many iterations
	// should at least match it (never worse) starting from the same
	// point.
	in := testInstance(t, 5)
	r := rng.New(6)
	s := schedule.NewRandom(in, r)
	operators.H2LL{Iterations: 300}.Apply(s, r)
	stalled := s.Makespan()
	Search{MaxIters: 200, Tenure: 5}.Apply(s, r)
	if s.Makespan() > stalled+1e-9 {
		t.Fatalf("tabu left a worse schedule than the descent local optimum")
	}
}

func TestApplySingleMachineNoop(t *testing.T) {
	in, err := etc.New("one", 4, 1, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	s := schedule.NewRandom(in, r)
	if moves := (Search{}).Apply(s, r); moves != 0 {
		t.Fatal("tabu moved tasks with one machine")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := Search{}
	if s.maxIters() != 20 || s.tenure() != 7 || s.candidateTasks() != 8 {
		t.Fatalf("defaults %d/%d/%d", s.maxIters(), s.tenure(), s.candidateTasks())
	}
	if s.Name() != "tabu/20" {
		t.Fatalf("name %q", s.Name())
	}
	c := Search{MaxIters: 5, Tenure: 3, CandidateTasks: 2}
	if c.maxIters() != 5 || c.tenure() != 3 || c.candidateTasks() != 2 {
		t.Fatal("explicit config ignored")
	}
}

// Property: for any seed and iteration budget, tabu preserves
// completeness and the CT invariant and never returns a worse schedule.
func TestApplyProperty(t *testing.T) {
	in := testInstance(t, 8)
	f := func(seed uint64, iters uint8) bool {
		r := rng.New(seed)
		s := schedule.NewRandom(in, r)
		before := s.Makespan()
		Search{MaxIters: int(iters%60) + 1}.Apply(s, r)
		return s.Complete() && s.Validate() == nil && s.Makespan() <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTabu20(b *testing.B) {
	in := testInstance(b, 1)
	r := rng.New(1)
	s := schedule.NewRandom(in, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Search{MaxIters: 20}.Apply(s, r)
	}
}
