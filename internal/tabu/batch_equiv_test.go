package tabu

import (
	"testing"

	"gridsched/internal/etc"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

// referenceSelectMove is the historical per-element tabu move selection,
// kept as the scalar reference for selectMove: identical scan order and
// comparisons, but scoring each destination with a strided ETC read
// instead of the batched MoveScores row sweep.
func referenceSelectMove(s *schedule.Schedule, cand, tabuUntil []int, it, worst int, worstCT, bestFit float64) (int, int) {
	bestTask, bestMac := -1, -1
	bestScore := worstCT
	aspired := false
	for _, task := range cand {
		tabu := tabuUntil[task] >= it
		for mac := 0; mac < s.Inst.M; mac++ {
			if mac == worst {
				continue
			}
			score := s.CT[mac] + s.Inst.ETC(task, mac)
			if tabu {
				if score >= bestFit {
					continue
				}
				if score < bestScore || !aspired && bestTask < 0 {
					bestTask, bestMac, bestScore, aspired = task, mac, score, true
				}
				continue
			}
			if score < bestScore {
				bestTask, bestMac, bestScore = task, mac, score
			}
		}
	}
	return bestTask, bestMac
}

// TestSelectMoveMatchesReference property-tests the batched tabu move
// selection against the scalar reference over random schedules, random
// candidate sets and random tabu states — including aspiration-only
// configurations where every candidate is tabu.
func TestSelectMoveMatchesReference(t *testing.T) {
	shapes := []struct{ tasks, machines int }{
		{32, 2},
		{128, 8},
		{256, 16},
		{300, 48},
	}
	var sc schedule.Scratch
	for _, sh := range shapes {
		in, err := etc.Generate(etc.GenSpec{
			Class:    etc.Class{Consistency: etc.Inconsistent, TaskHet: etc.High, MachineHet: etc.High},
			Tasks:    sh.tasks,
			Machines: sh.machines,
			Seed:     uint64(11*sh.tasks + sh.machines),
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(uint64(500*sh.tasks + sh.machines))
		s := schedule.NewRandom(in, r)
		tabuUntil := make([]int, in.T)
		var taskBuf []int
		for trial := 0; trial < 32; trial++ {
			worst, worstCT := s.MakespanMachine()
			taskBuf = s.TasksOn(worst, taskBuf[:0])
			if len(taskBuf) == 0 {
				break
			}
			if len(taskBuf) > 8 {
				taskBuf = taskBuf[:8]
			}
			// Random tabu state: roughly half the candidates tabu, and the
			// occasional trial with everything tabu (aspiration-only).
			it := 10
			for _, task := range taskBuf {
				if trial%8 == 7 || r.Bool(0.5) {
					tabuUntil[task] = it + r.Intn(5)
				} else {
					tabuUntil[task] = 0
				}
			}
			// Vary the aspiration level around the current makespan so all
			// three branches (no aspiration, tight, loose) are exercised.
			bestFit := worstCT * (0.9 + 0.2*float64(trial%3)/2)

			gt, gm := selectMove(&sc, s, taskBuf, tabuUntil, it, worst, worstCT, bestFit)
			wt, wm := referenceSelectMove(s, taskBuf, tabuUntil, it, worst, worstCT, bestFit)
			if gt != wt || gm != wm {
				t.Fatalf("%dx%d trial %d: selectMove = (%d, %d), reference = (%d, %d)",
					sh.tasks, sh.machines, trial, gt, gm, wt, wm)
			}

			// Advance the schedule so trials see fresh states.
			if gt >= 0 {
				s.Move(gt, gm)
			} else {
				s.Move(taskBuf[0], r.Intn(in.M))
			}
		}
	}
}
