// Package tabu implements a short tabu search over the task-move
// neighborhood of a schedule. It is the "local tabu hook" (LTH) used by
// the cMA+LTH comparator of Table 2 (Xhafa, Alba, Dorronsoro & Duran,
// 2008): a bounded tabu run applied to each offspring of a cellular
// memetic algorithm.
package tabu

import (
	"fmt"
	"sync"

	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

// Search is a configured tabu search; it satisfies operators.LocalSearch
// so it can slot into any of the GA engines in place of H2LL.
type Search struct {
	// MaxIters bounds the number of move applications (default 20).
	MaxIters int
	// Tenure is how many iterations a just-moved task stays tabu
	// (default 7).
	Tenure int
	// CandidateTasks caps how many tasks from the makespan machine are
	// examined per iteration (default 8); each is scored against every
	// machine.
	CandidateTasks int
}

// Name implements operators.LocalSearch.
func (ts Search) Name() string { return fmt.Sprintf("tabu/%d", ts.maxIters()) }

func (ts Search) maxIters() int {
	if ts.MaxIters <= 0 {
		return 20
	}
	return ts.MaxIters
}

func (ts Search) tenure() int {
	if ts.Tenure <= 0 {
		return 7
	}
	return ts.Tenure
}

func (ts Search) candidateTasks() int {
	if ts.CandidateTasks <= 0 {
		return 8
	}
	return ts.CandidateTasks
}

// workspace is the reusable per-call state of Apply: the tabu list, the
// candidate-task buffer, the incumbent copy and the scratch arena the
// batched move-scoring kernel writes into. Pooling it matters because
// cMA+LTH calls Apply once per offspring on every worker.
type workspace struct {
	tabuUntil []int
	taskBuf   []int
	best      *schedule.Schedule
	sc        schedule.Scratch
}

var workspacePool = sync.Pool{New: func() any { return new(workspace) }}

// prepare sizes the workspace for s: a zeroed tabu list and an
// incumbent copy, reusing prior allocations when the geometry matches.
func (ws *workspace) prepare(s *schedule.Schedule) {
	n := s.Inst.T
	if cap(ws.tabuUntil) < n {
		ws.tabuUntil = make([]int, n)
	} else {
		ws.tabuUntil = ws.tabuUntil[:n]
		clear(ws.tabuUntil)
	}
	if cap(ws.taskBuf) < n {
		ws.taskBuf = make([]int, 0, n)
	}
	if ws.best == nil || ws.best.Inst != s.Inst {
		ws.best = s.Clone()
	} else {
		ws.best.CopyFrom(s)
	}
}

// Apply runs the tabu search in place and returns the number of applied
// moves that improved the best-known makespan. Unlike a pure descent,
// tabu search accepts worsening moves to escape local optima; the best
// schedule seen is restored before returning, so Apply never degrades
// its input.
func (ts Search) Apply(s *schedule.Schedule, r *rng.Rand) int {
	m := s.Inst.M
	if m < 2 {
		return 0
	}
	ws := workspacePool.Get().(*workspace)
	defer workspacePool.Put(ws)
	ws.prepare(s)
	tabuUntil := ws.tabuUntil // iteration until which a task is tabu
	best := ws.best
	bestFit := s.Makespan()
	improvements := 0
	taskBuf := ws.taskBuf[:0]

	for it := 1; it <= ts.maxIters(); it++ {
		worst, worstCT := s.MakespanMachine()
		taskBuf = s.TasksOn(worst, taskBuf[:0])
		if len(taskBuf) == 0 {
			break
		}
		// Sample up to CandidateTasks tasks from the makespan machine.
		r.Shuffle(len(taskBuf), func(i, j int) { taskBuf[i], taskBuf[j] = taskBuf[j], taskBuf[i] })
		cand := taskBuf
		if len(cand) > ts.candidateTasks() {
			cand = cand[:ts.candidateTasks()]
		}

		bestTask, bestMac := selectMove(&ws.sc, s, cand, tabuUntil, it, worst, worstCT, bestFit)
		if bestTask < 0 {
			// No admissible improving move: diversify by relocating a
			// random candidate task to a random machine (still respecting
			// the tabu list when possible).
			task := cand[0]
			mac := r.Intn(m)
			for mac == worst {
				mac = r.Intn(m)
			}
			s.Move(task, mac)
			tabuUntil[task] = it + ts.tenure()
			continue
		}
		s.Move(bestTask, bestMac)
		tabuUntil[bestTask] = it + ts.tenure()
		if fit := s.Makespan(); fit < bestFit {
			bestFit = fit
			best.CopyFrom(s)
			improvements++
		}
	}
	// Restore the incumbent: tabu search may end on a worsening move.
	if s.Makespan() > bestFit {
		s.CopyFrom(best)
	}
	return improvements
}

// selectMove picks one tabu iteration's move: among the candidate tasks
// (all on the makespan machine worst, whose completion time is worstCT),
// the relocation minimizing the destination machine's new completion
// time, where a tabu task is admissible only under the aspiration
// criterion — its new completion time strictly beats the best makespan
// seen so far (bestFit). It returns -1, -1 when no admissible move
// improves on worstCT.
//
// Scoring goes through the batched MoveScores kernel — one contiguous
// row sweep per task — and the scan consumes the scores in the same
// machine order and with the same strict comparisons as the historical
// per-element ETC loop, so the selected move is bit-identical; the
// equivalence is property-tested against a scalar reference.
func selectMove(sc *schedule.Scratch, s *schedule.Schedule, cand, tabuUntil []int, it, worst int, worstCT, bestFit float64) (int, int) {
	bestTask, bestMac := -1, -1
	bestScore := worstCT // any move below the makespan is attractive
	aspired := false
	for _, task := range cand {
		tabu := tabuUntil[task] >= it
		scores := sc.MoveScores(s, task)
		for mac, score := range scores {
			if mac == worst {
				continue
			}
			if tabu {
				// Aspiration: accept a tabu move only if it yields a
				// schedule strictly better than the global best.
				if score >= bestFit {
					continue
				}
				if score < bestScore || !aspired && bestTask < 0 {
					bestTask, bestMac, bestScore, aspired = task, mac, score, true
				}
				continue
			}
			if score < bestScore {
				bestTask, bestMac, bestScore = task, mac, score
			}
		}
	}
	return bestTask, bestMac
}
