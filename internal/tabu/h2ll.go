package tabu

import (
	"context"
	"fmt"

	"gridsched/internal/etc"
	"gridsched/internal/heuristics"
	"gridsched/internal/operators"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
	"gridsched/internal/solver"
)

// H2LLSolver runs the paper's H2LL local search (Algorithm 4) as a
// standalone iterated hill climber: start from Min-min, descend with
// bounded H2LL sweeps, and kick the incumbent with random task moves
// whenever a sweep stops improving — the same restart discipline as the
// iterated tabu search, minus the tabu memory. It is the cheapest
// trajectory method in the registry and the third constituent of the
// default racing portfolio.
type H2LLSolver struct {
	// SweepIters is how many H2LL iterations one sweep applies before
	// re-checking the stop conditions (default 64). Each iteration is
	// one incremental candidate evaluation and counts as one
	// evaluation against the budget.
	SweepIters int
	// Candidates is the H2LL least-loaded candidate-set size; 0 means
	// machines/2 (the value implied by Algorithm 4).
	Candidates int
	// KickMoves is how many random task relocations perturb the
	// incumbent after a non-improving sweep (default 8).
	KickMoves int
	// RandomStart begins from a random schedule instead of Min-min.
	RandomStart bool
	// Start, when non-nil, begins from (a clone of) this schedule,
	// overriding RandomStart and the Min-min default.
	Start *schedule.Schedule
	// Seed drives all randomness.
	Seed uint64
}

// Name implements solver.Solver.
func (s H2LLSolver) Name() string { return "h2ll" }

// Describe implements solver.Solver.
func (s H2LLSolver) Describe() string {
	return "iterated H2LL hill climber from a Min-min start with random-kick diversification"
}

// WithSeed implements solver.Seeder.
func (s H2LLSolver) WithSeed(seed uint64) solver.Solver {
	s.Seed = seed
	return s
}

// WithStart implements solver.Restarter.
func (s H2LLSolver) WithStart(start *schedule.Schedule) solver.Solver {
	s.Start = start
	return s
}

// Reproducible implements solver.Reproducible: a single deterministic
// trajectory.
func (s H2LLSolver) Reproducible() bool { return true }

func (s H2LLSolver) sweepIters() int {
	if s.SweepIters <= 0 {
		return 64
	}
	return s.SweepIters
}

func (s H2LLSolver) kickMoves() int {
	if s.KickMoves <= 0 {
		return 8
	}
	return s.KickMoves
}

// Solve implements solver.Solver. Each H2LL iteration counts as one
// evaluation, and sweeps are clamped to the remaining evaluation
// budget so the bound is exact. (A sweep that runs out of movable
// tasks early still charges its full clamp — the budget never
// undercounts.)
func (s H2LLSolver) Solve(ctx context.Context, inst *etc.Instance, b solver.Budget) (*solver.Result, error) {
	if b.IsZero() {
		return nil, fmt.Errorf("h2ll: no stop condition set")
	}
	eng := solver.NewEngine(ctx, b)
	r := rng.New(s.Seed)

	var cur *schedule.Schedule
	switch {
	case s.Start != nil && s.Start.Inst == inst:
		cur = s.Start.Clone()
	case s.RandomStart:
		cur = schedule.NewRandom(inst, r)
	default:
		cur = heuristics.MinMin(inst)
	}
	eng.AddEvals(1)
	best := cur.Clone()
	bestFit := cur.Makespan()
	eng.Observe(bestFit)

	ls := operators.H2LL{Candidates: s.Candidates}
	var sweeps, moves int64
	for {
		if eng.StopSweep(sweeps) || eng.EvalsExhausted() {
			break
		}
		iters := int64(s.sweepIters())
		if rem := eng.RemainingEvals(); rem >= 0 && rem < iters {
			iters = rem
		}
		ls.Iterations = int(iters)
		moves += int64(ls.Apply(cur, r))
		eng.AddEvals(iters)
		sweeps++
		f := cur.Makespan()
		eng.Observe(f)
		if f < bestFit {
			best.CopyFrom(cur)
			bestFit = f
		} else {
			// The descent stalled (H2LL is monotone): kick the incumbent
			// so the next sweep explores a different basin.
			for k := 0; k < s.kickMoves(); k++ {
				cur.Move(r.Intn(inst.T), r.Intn(inst.M))
			}
		}
	}

	eng.Finish(bestFit)
	return &solver.Result{
		Best:             best,
		BestFitness:      bestFit,
		Evaluations:      eng.Evals(),
		Generations:      sweeps,
		PerThread:        []int64{sweeps},
		LocalSearchMoves: moves,
		Duration:         eng.Elapsed(),
		EffectiveBudget:  eng.EffectiveBudget(),
	}, nil
}

func init() {
	solver.Register(H2LLSolver{Seed: 1})
}
