package service

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"gridsched/internal/etc"
)

// instanceCache is a small LRU over generated benchmark instances.
// Generating one 512×16 Braun matrix costs milliseconds; a service
// solving the same twelve benchmark classes over and over should pay
// that once per class, not once per job. Instances are immutable after
// generation, so cached pointers are shared across concurrent jobs.
//
// The hit/miss/join counters and the entry count are atomics so Stats
// and the /metrics scrape funcs read them without touching mu — a
// scrape never queues behind a multi-millisecond generation holding
// the cache busy.
type instanceCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List               // front = most recently used
	entries  map[string]*list.Element // name -> element holding cacheEntry
	pending  map[string]*pendingGen   // single-flight: name -> in-progress generation
	hits     atomic.Int64
	misses   atomic.Int64
	joins    atomic.Int64
	size     atomic.Int64 // mirrors order.Len()
}

type cacheEntry struct {
	name string
	inst *etc.Instance
}

// pendingGen is one in-flight generation; waiters block on done and
// read inst/err afterwards.
type pendingGen struct {
	done chan struct{}
	inst *etc.Instance
	err  error
}

func newInstanceCache(capacity int) *instanceCache {
	return &instanceCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
		pending:  make(map[string]*pendingGen),
	}
}

// get returns the named benchmark instance, generating and caching it
// on first use. Generation is single-flight per name: concurrent
// requests for an uncached name share one generation (and count one
// miss) instead of each regenerating the matrix.
func (c *instanceCache) get(name string) (*etc.Instance, error) {
	c.mu.Lock()
	if el, ok := c.entries[name]; ok {
		c.order.MoveToFront(el)
		c.hits.Add(1)
		inst := el.Value.(cacheEntry).inst
		c.mu.Unlock()
		return inst, nil
	}
	if p, ok := c.pending[name]; ok {
		c.mu.Unlock()
		<-p.done
		if p.err != nil {
			// A failed single-flight join is neither a hit (no instance
			// was served) nor a second miss (the flight was already
			// counted by its initiator); counting it as a hit inflated
			// hit-rate stats during error storms.
			return nil, p.err
		}
		// A successful join is its own outcome, distinct from a hit: the
		// instance was served, but by riding another request's generation
		// rather than from a cached entry. Folding joins into hits hid
		// the single-flight path from the stats (the PR 4 fix made failed
		// joins count nothing; this keeps successful ones separable).
		c.joins.Add(1)
		return p.inst, nil
	}
	c.misses.Add(1)
	p := &pendingGen{done: make(chan struct{})}
	c.pending[name] = p
	c.mu.Unlock()

	// Generate outside the lock: a miss takes milliseconds and must not
	// serialize hits on other names behind it.
	p.inst, p.err = etc.GenerateByName(name)

	c.mu.Lock()
	delete(c.pending, name)
	if p.err == nil {
		c.entries[name] = c.order.PushFront(cacheEntry{name: name, inst: p.inst})
		c.size.Add(1)
		for c.order.Len() > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(cacheEntry).name)
			c.size.Add(-1)
		}
	}
	c.mu.Unlock()
	close(p.done)
	return p.inst, p.err
}

// counters reports hits, misses, successful single-flight joins and
// the current entry count. Lock-free: safe from any scrape path.
func (c *instanceCache) counters() (hits, misses, joins int64, entries int) {
	return c.hits.Load(), c.misses.Load(), c.joins.Load(), int(c.size.Load())
}

// resolveInstance materializes the spec's instance: an inline matrix
// is built directly (no caching — it is client data), a named
// benchmark class goes through the LRU cache. Both paths enforce the
// server's matrix-size cap before any large allocation happens.
func (s *Server) resolveInstance(spec JobSpec) (*etc.Instance, error) {
	switch {
	case spec.Matrix != nil && spec.Instance != "":
		return nil, fmt.Errorf("service: spec sets both instance %q and an inline matrix", spec.Instance)
	case spec.Matrix != nil:
		m := spec.Matrix
		if err := s.checkMatrixSize(m.Tasks, m.Machines); err != nil {
			return nil, err
		}
		name := m.Name
		if name == "" {
			name = "inline"
		}
		return etc.New(name, m.Tasks, m.Machines, m.ETC)
	case spec.Instance != "":
		// The pre-generated store is consulted first: a stored corpus is
		// operator-provided (trusted like a negative MaxMatrixEntries),
		// serves a shared zero-copy view, and keeps the LRU free for
		// names outside the corpus.
		if db := s.cfg.InstanceDB; db != nil {
			if in, ok := db.Get(spec.Instance); ok {
				s.storeServes.Add(1)
				return in, nil
			}
		}
		if _, tasks, machines, err := etc.ParseSizedName(spec.Instance); err == nil {
			if tasks == 0 {
				tasks = etc.DefaultTasks
			}
			if machines == 0 {
				machines = etc.DefaultMachines
			}
			if err := s.checkMatrixSize(tasks, machines); err != nil {
				return nil, err
			}
		}
		// An unparsable name falls through: the generator reports the
		// same parse error with full context.
		return s.cache.get(spec.Instance)
	default:
		return nil, fmt.Errorf("service: spec needs an instance name or an inline matrix")
	}
}

// checkMatrixSize enforces Config.MaxMatrixEntries. Non-positive
// dimensions pass through: the instance constructors reject them with
// better messages.
func (s *Server) checkMatrixSize(tasks, machines int) error {
	limit := s.cfg.MaxMatrixEntries
	if limit <= 0 || tasks <= 0 || machines <= 0 {
		return nil
	}
	if tasks > limit/machines {
		return fmt.Errorf("service: %dx%d matrix exceeds the server's %d-entry limit", tasks, machines, limit)
	}
	return nil
}
