package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gridsched/internal/obs"
	"gridsched/internal/solver"
)

// Handler returns the service's HTTP/JSON API:
//
//	POST   /v1/jobs             submit a job (202; 429 when the queue is full)
//	GET    /v1/jobs             list retained jobs, newest first
//	                            (?state=queued|running|done|failed|cancelled,
//	                            ?limit=N)
//	GET    /v1/jobs/{id}        job status and, once finished, its result
//	GET    /v1/jobs/{id}/trace  lifecycle phases and convergence events
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/solvers          the registered solver names and descriptions
//	GET    /v1/stats            service and per-solver counters
//	GET    /metrics             Prometheus text-format exposition
//	GET    /healthz             liveness (503 while draining)
//
// Durations in request and response bodies are Go duration strings
// ("90s", "1.5m"). A job's task→machine assignment is large (one int
// per task), so GET /v1/jobs/{id} includes it only when asked:
// ?include=assignment.
//
// Every response is counted in gridsched_http_requests_total by status
// and method. Submits read the request context's request ID (set by
// obs.AccessLog, or by any middleware calling obs.WithRequestID) into
// the job's spec, tying job logs and traces to the originating
// request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/solvers", s.handleSolvers)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", s.met.reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return obs.Instrument(s.met.http, mux)
}

// jobRequest is the submit body.
type jobRequest struct {
	Solver   string      `json:"solver"`
	Instance string      `json:"instance,omitempty"`
	Matrix   *matrixJSON `json:"matrix,omitempty"`
	Budget   *budgetJSON `json:"budget,omitempty"`
	Seed     uint64      `json:"seed,omitempty"`
}

type matrixJSON struct {
	Name     string    `json:"name,omitempty"`
	Tasks    int       `json:"tasks"`
	Machines int       `json:"machines"`
	ETC      []float64 `json:"etc"`
}

// budgetJSON mirrors solver.Budget with the duration as a string.
type budgetJSON struct {
	MaxDuration    string `json:"max_duration,omitempty"`
	MaxEvaluations int64  `json:"max_evaluations,omitempty"`
	MaxGenerations int64  `json:"max_generations,omitempty"`
}

func (b *budgetJSON) toBudget() (solver.Budget, error) {
	if b == nil {
		return solver.Budget{}, nil
	}
	out := solver.Budget{
		MaxEvaluations: b.MaxEvaluations,
		MaxGenerations: b.MaxGenerations,
	}
	if b.MaxDuration != "" {
		d, err := time.ParseDuration(b.MaxDuration)
		if err != nil {
			return solver.Budget{}, fmt.Errorf("budget.max_duration: %w", err)
		}
		out.MaxDuration = d
	}
	return out, nil
}

func budgetToJSON(b solver.Budget) *budgetJSON {
	if b.IsZero() {
		return nil
	}
	out := &budgetJSON{
		MaxEvaluations: b.MaxEvaluations,
		MaxGenerations: b.MaxGenerations,
	}
	if b.MaxDuration > 0 {
		out.MaxDuration = b.MaxDuration.String()
	}
	return out
}

// jobJSON is the wire shape of a Job snapshot.
type jobJSON struct {
	ID       string      `json:"id"`
	Solver   string      `json:"solver"`
	Instance string      `json:"instance"`
	Tasks    int         `json:"tasks"`
	Machines int         `json:"machines"`
	State    JobState    `json:"state"`
	Budget   *budgetJSON `json:"budget,omitempty"`
	Seed     uint64      `json:"seed,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	Wait        string     `json:"wait,omitempty"`

	Error  string         `json:"error,omitempty"`
	Result *jobResultJSON `json:"result,omitempty"`
}

type jobResultJSON struct {
	Makespan         float64 `json:"makespan"`
	Flowtime         float64 `json:"flowtime"`
	Utilization      float64 `json:"utilization"`
	ImbalanceCV      float64 `json:"imbalance_cv"`
	Evaluations      int64   `json:"evaluations"`
	Generations      int64   `json:"generations"`
	LocalSearchMoves int64   `json:"local_search_moves"`
	Duration         string  `json:"duration"`
	// EffectiveBudget is the bound the run actually enforced (the
	// submitted budget plus any context deadline the engine absorbed).
	EffectiveBudget *budgetJSON `json:"effective_budget,omitempty"`
	// PerConstituent breaks a composite (portfolio) job down by
	// constituent solver; omitted for single-solver jobs.
	PerConstituent []constituentJSON `json:"per_constituent,omitempty"`
	Assignment     []int             `json:"assignment,omitempty"`
}

// constituentJSON is the wire shape of one constituent's share of a
// portfolio job.
type constituentJSON struct {
	Solver       string  `json:"solver"`
	Evaluations  int64   `json:"evaluations"`
	Generations  int64   `json:"generations"`
	Rounds       int64   `json:"rounds"`
	Improvements int64   `json:"improvements"`
	BestFitness  float64 `json:"best_fitness,omitempty"`
	Busy         string  `json:"busy"`
	Error        string  `json:"error,omitempty"`
}

func jobToJSON(j Job, includeAssignment bool) jobJSON {
	out := jobJSON{
		ID:          j.ID,
		Solver:      j.Solver,
		Instance:    j.Instance,
		Tasks:       j.Tasks,
		Machines:    j.Machines,
		State:       j.State,
		Budget:      budgetToJSON(j.Budget),
		Seed:        j.Seed,
		SubmittedAt: j.SubmittedAt,
		Error:       j.Error,
	}
	if !j.StartedAt.IsZero() {
		t := j.StartedAt
		out.StartedAt = &t
		out.Wait = j.Wait().String()
	}
	if !j.FinishedAt.IsZero() {
		t := j.FinishedAt
		out.FinishedAt = &t
	}
	if r := j.Result; r != nil {
		out.Result = &jobResultJSON{
			Makespan:         r.Makespan,
			Flowtime:         r.Flowtime,
			Utilization:      r.Utilization,
			ImbalanceCV:      r.ImbalanceCV,
			Evaluations:      r.Evaluations,
			Generations:      r.Generations,
			LocalSearchMoves: r.LocalSearchMoves,
			Duration:         r.Duration.String(),
			EffectiveBudget:  budgetToJSON(r.EffectiveBudget),
		}
		for _, c := range r.PerConstituent {
			out.Result.PerConstituent = append(out.Result.PerConstituent, constituentJSON{
				Solver:       c.Solver,
				Evaluations:  c.Evaluations,
				Generations:  c.Generations,
				Rounds:       c.Rounds,
				Improvements: c.Improvements,
				BestFitness:  c.BestFitness,
				Busy:         c.Busy.String(),
				Error:        c.Err,
			})
		}
		if includeAssignment {
			out.Result.Assignment = r.Assignment
		}
	}
	return out
}

// maxSubmitBody bounds a submit request's body under the default
// matrix-entry cap. The largest legitimate payload is an inline matrix
// at the cap (~25 JSON bytes per value ≈ 26 MB at the default 1<<20
// entries); 64 MB leaves slack without letting a client buffer
// gigabytes into the decoder.
const maxSubmitBody = 64 << 20

// submitBodyLimit scales the body bound with the configured matrix
// cap so a raised (or disabled) MaxMatrixEntries is not silently
// contradicted by the HTTP layer.
func (s *Server) submitBodyLimit() int64 {
	entries := s.cfg.MaxMatrixEntries
	if entries < 0 {
		return 1 << 40 // cap disabled by a trusted embedder: don't re-cap here
	}
	if need := int64(entries)*32 + (1 << 20); need > maxSubmitBody {
		return need
	}
	return maxSubmitBody
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.submitBodyLimit()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	budget, err := req.Budget.toBudget()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	spec := JobSpec{
		Solver:    req.Solver,
		Instance:  req.Instance,
		Budget:    budget,
		Seed:      req.Seed,
		RequestID: obs.RequestIDFrom(r.Context()),
	}
	if req.Matrix != nil {
		spec.Matrix = &MatrixSpec{
			Name:     req.Matrix.Name,
			Tasks:    req.Matrix.Tasks,
			Machines: req.Matrix.Machines,
			ETC:      req.Matrix.ETC,
		}
	}
	job, err := s.Submit(spec)
	if err != nil {
		httpError(w, submitStatus(err), err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, jobToJSON(job, false))
}

// submitStatus maps Submit errors to HTTP statuses.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// listStates are the states ?state= accepts.
var listStates = map[JobState]bool{
	StateQueued:    true,
	StateRunning:   true,
	StateDone:      true,
	StateFailed:    true,
	StateCancelled: true,
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var state JobState
	if raw := q.Get("state"); raw != "" {
		state = JobState(raw)
		if !listStates[state] {
			httpError(w, http.StatusBadRequest, fmt.Errorf("unknown state %q", raw))
			return
		}
	}
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("limit must be a non-negative integer, got %q", raw))
			return
		}
		limit = n
	}
	jobs := s.ListJobs(state, limit)
	out := make([]jobJSON, len(jobs))
	for i, j := range jobs {
		out[i] = jobToJSON(j, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, jobToJSON(j, r.URL.Query().Get("include") == "assignment"))
}

// traceJSON is the wire shape of a JobTrace; durations are Go duration
// strings, elapsed offsets additionally in milliseconds for plotting.
type traceJSON struct {
	ID        string           `json:"id"`
	Solver    string           `json:"solver"`
	Instance  string           `json:"instance"`
	State     JobState         `json:"state"`
	RequestID string           `json:"request_id,omitempty"`
	Phases    []spanJSON       `json:"phases"`
	Events    []traceEventJSON `json:"events"`
	Dropped   int64            `json:"dropped,omitempty"`
}

type spanJSON struct {
	Phase    string `json:"phase"`
	Start    string `json:"start"`
	Duration string `json:"duration"`
}

type traceEventJSON struct {
	Kind      string  `json:"kind"`
	Lane      string  `json:"lane,omitempty"`
	Evals     int64   `json:"evals"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Fitness   float64 `json:"fitness"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr, err := s.Trace(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	out := traceJSON{
		ID:        tr.ID,
		Solver:    tr.Solver,
		Instance:  tr.Instance,
		State:     tr.State,
		RequestID: tr.RequestID,
		Phases:    make([]spanJSON, len(tr.Phases)),
		Events:    make([]traceEventJSON, len(tr.Events)),
		Dropped:   tr.Dropped,
	}
	for i, p := range tr.Phases {
		out.Phases[i] = spanJSON{
			Phase:    p.Phase,
			Start:    p.Start.String(),
			Duration: p.Duration.String(),
		}
	}
	for i, ev := range tr.Events {
		out.Events[i] = traceEventJSON{
			Kind:      ev.Kind,
			Lane:      ev.Lane,
			Evals:     ev.Evals,
			ElapsedMS: float64(ev.Elapsed) / float64(time.Millisecond),
			Fitness:   ev.Fitness,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, jobToJSON(j, false))
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	type solverJSON struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	var out []solverJSON
	for _, name := range solver.Names() {
		sv, err := solver.Lookup(name)
		if err != nil {
			continue
		}
		out = append(out, solverJSON{Name: name, Description: sv.Describe()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"solvers": out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	type solverStatsJSON struct {
		Solver         string  `json:"solver"`
		Done           int64   `json:"done"`
		Failed         int64   `json:"failed"`
		Cancelled      int64   `json:"cancelled"`
		Evaluations    int64   `json:"evaluations"`
		BusyTime       string  `json:"busy_time"`
		MeanLatency    string  `json:"mean_latency"`
		MaxLatency     string  `json:"max_latency"`
		EvalsPerSecond float64 `json:"evals_per_second"`
	}
	solvers := make([]solverStatsJSON, len(st.Solvers))
	for i, sv := range st.Solvers {
		solvers[i] = solverStatsJSON{
			Solver:         sv.Solver,
			Done:           sv.Done,
			Failed:         sv.Failed,
			Cancelled:      sv.Cancelled,
			Evaluations:    sv.Evaluations,
			BusyTime:       sv.BusyTime.String(),
			MeanLatency:    sv.MeanLatency.String(),
			MaxLatency:     sv.MaxLatency.String(),
			EvalsPerSecond: sv.EvalsPerSecond,
		}
	}
	type shardStatsJSON struct {
		Shard          int   `json:"shard"`
		Submitted      int64 `json:"submitted"`
		Finished       int64 `json:"finished"`
		Stolen         int64 `json:"stolen"`
		Queued         int   `json:"queued"`
		Running        int   `json:"running"`
		Retained       int   `json:"retained"`
		QueueDepthPeak int   `json:"queue_depth_peak"`
	}
	shards := make([]shardStatsJSON, len(st.Shards))
	for i, sh := range st.Shards {
		shards[i] = shardStatsJSON{
			Shard:          sh.Shard,
			Submitted:      sh.Submitted,
			Finished:       sh.Finished,
			Stolen:         sh.Stolen,
			Queued:         sh.Queued,
			Running:        sh.Running,
			Retained:       sh.Retained,
			QueueDepthPeak: sh.QueueDepthPeak,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime":         st.Uptime.String(),
		"workers":        st.Workers,
		"queue_capacity": st.QueueCapacity,
		"queued":         st.Queued,
		"running":        st.Running,
		"retained":       st.Retained,
		"evicted":        st.Evicted,
		"epoch":          st.Epoch,
		"shards":         shards,
		"cache": map[string]any{
			"hits":    st.CacheHits,
			"misses":  st.CacheMisses,
			"joins":   st.CacheJoins,
			"entries": st.CacheEntries,
		},
		"store": map[string]any{
			"serves":    st.StoreServes,
			"instances": st.StoreInstances,
		},
		"solvers": solvers,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"uptime": time.Since(s.start).String(),
	})
}

// Draining reports whether Shutdown has started; the health endpoint
// uses it to fail liveness so load balancers stop routing here.
func (s *Server) Draining() bool {
	return s.closed.Load()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
