package service

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"gridsched/internal/solver"
)

// runWorker is one solve worker, pinned to home shard `home`. It
// drains its own shard's queue first and steals from loaded neighbors
// when home is empty, sleeping on the shard's wake channel (plus the
// server-wide overflow channel) when the whole service is idle.
func (s *Server) runWorker(home int) {
	defer s.workers.Done()
	sh := s.shards[home]
	for {
		if j, from := s.dequeue(home); j != nil {
			s.execute(j, sh, from != home)
			continue
		}
		if s.closed.Load() {
			if s.queueLen.Load() == 0 {
				return
			}
			// Slots are still occupied but mid-pop by another worker;
			// yield and re-scan rather than sleeping on channels no
			// submit will ever signal again.
			runtime.Gosched()
			continue
		}
		select {
		case <-sh.wake:
		case <-s.wakeAll:
		case <-s.drainCh:
		}
	}
}

// dequeue pops the oldest job from the home shard, then scans the
// other shards in ring order (work stealing). It returns the job and
// the shard it came from, or nil when every queue is empty.
func (s *Server) dequeue(home int) (*job, int) {
	n := len(s.shards)
	for off := 0; off < n; off++ {
		idx := home + off
		if idx >= n {
			idx -= n
		}
		if j := s.shards[idx].pop(); j != nil {
			s.queueLen.Add(-1)
			return j, idx
		}
	}
	return nil, -1
}

// execute runs one dequeued job to retirement. `by` is the executing
// worker's home shard — retirement counters land there (not on the
// job's owning shard) so a worker only ever writes its own shard's
// delta; stolen marks a job taken from another shard's queue.
//
// A job cancelled while queued is retired without running — including
// one whose context a forced shutdown (or a client Cancel racing the
// dequeue) already cancelled: running it anyway would make drain
// latency depend on every solver noticing the dead context, and
// zero-budget heuristics never would. Either way the job reaches a
// terminal state, its retirement is folded into the stats delta and
// metrics BEFORE its waiters are released, so a Wait-then-read of any
// counter observes the finished job.
func (s *Server) execute(j *job, by *shard, stolen bool) {
	j.markDequeued()
	j.timeline.Mark("dispatched")
	if j.ctx.Err() != nil {
		j.requestCancel()
	}
	panicked := false
	if j.begin() {
		s.met.busy.Add(1)
		s.log.Info("job started",
			"job_id", j.id, "solver", j.spec.Solver, "instance", j.inst.Name,
			"request_id", j.spec.RequestID, "shard", j.home.idx, "worker_shard", by.idx)
		var res *solver.Result
		var err error
		res, err, panicked = s.solve(j)
		j.finish(res, err)
		s.met.busy.Add(-1)
	}
	// Fold the retired job (ran or cancelled-while-queued) into the
	// executing shard's delta and the event metrics.
	snap := j.snapshot()
	by.retire(j.spec.Solver, snap, stolen)
	s.met.finished.With(finishLabel(snap.State, panicked)).Inc()
	attrs := []any{
		"job_id", j.id, "solver", j.spec.Solver, "instance", j.inst.Name,
		"request_id", j.spec.RequestID, "state", string(snap.State),
	}
	if stolen {
		attrs = append(attrs, "stolen_by_shard", by.idx)
	}
	if !snap.StartedAt.IsZero() && !snap.FinishedAt.IsZero() {
		latency := snap.FinishedAt.Sub(snap.StartedAt)
		//lint:ignore metrichygiene solver names are bounded by the compiled-in registry; Submit rejects unknown solvers
		s.met.latency.With(j.spec.Solver).Observe(latency.Seconds())
		attrs = append(attrs, "duration", latency)
	}
	if snap.Result != nil {
		//lint:ignore metrichygiene solver names are bounded by the compiled-in registry; Submit rejects unknown solvers
		s.met.evals.With(j.spec.Solver).Add(snap.Result.Evaluations)
		attrs = append(attrs, "makespan", snap.Result.Makespan,
			"evaluations", snap.Result.Evaluations)
	}
	if snap.Error != "" {
		attrs = append(attrs, "error", snap.Error)
	}
	s.log.Info("job finished", attrs...)
	j.signalDone()
	s.pokeCoordinator()
}

// solve runs the job's solver, containing panics. A solver that
// panics must not kill the worker goroutine: before this guard the
// pool silently shrank one panic at a time, the panicking job never
// reached a terminal state, Server.Wait blocked forever and Shutdown
// hung on the worker WaitGroup. The panic value and stack become the
// job's failure error; the worker stays alive; the caller counts the
// retirement under the "panic" metric label.
func (s *Server) solve(j *job) (res *solver.Result, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			res, err = nil, fmt.Errorf("solver panic: %v\n%s", r, debug.Stack())
		}
	}()
	res, err = j.solver.Solve(j.ctx, j.inst, j.budget)
	return res, err, false
}

// finishLabel maps a retired job's terminal state (plus the panic
// override) onto the closed label set of
// gridsched_jobs_finished_total. Spelling the states out keeps the
// label vocabulary a compile-time constant set the cardinality lint
// can verify, rather than whatever string the state type carries.
func finishLabel(st JobState, panicked bool) string {
	if panicked {
		return "panic"
	}
	switch st {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}
