package service

import (
	"errors"
	"time"

	"gridsched/internal/obs"
)

// serverMetrics is the server's registered metric handles. Gauges that
// mirror existing server state (queue depth, cache counters, retained
// jobs) are scrape-time funcs over the authoritative structures, so
// the metrics can never drift from /v1/stats; only event counters and
// the busy gauge are written on the hot path. Every scrape-time func
// reads atomics or the published epoch snapshot — a scrape acquires no
// lock, so /metrics can never stall (or be stalled by) the shards.
type serverMetrics struct {
	reg *obs.Registry

	submitted *obs.Counter
	rejected  *obs.CounterVec
	finished  *obs.CounterVec
	latency   *obs.HistogramVec
	evals     *obs.CounterVec
	busy      *obs.Gauge
	http      *obs.CounterVec
}

// latencyBuckets spans 1ms to ~4.4min log-spaced — wide enough for
// zero-budget heuristics and multi-minute GA budgets alike.
var latencyBuckets = obs.ExpBuckets(0.001, 4, 10)

func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{reg: reg}

	reg.GaugeFunc("gridsched_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	// Depth is state-derived (jobs still in StateQueued), summed over
	// the per-shard gauges that the job state machine maintains — not
	// occupied queue slots: a job cancelled while queued stays in its
	// slot until a worker drains it, and counting that dead slot made
	// this gauge drift from the Queued field of /v1/stats. Both read
	// the same shard gauges, the single source.
	reg.GaugeFunc("gridsched_queue_depth", "Jobs queued awaiting dispatch (state-derived; matches /v1/stats).",
		func() float64 {
			var q int64
			for _, sh := range s.shards {
				q += sh.queued.Load()
			}
			return float64(q)
		})
	reg.GaugeFunc("gridsched_queue_capacity", "Total capacity of the submission queue (service-wide).",
		func() float64 { return float64(s.cfg.QueueSize) })
	reg.GaugeFunc("gridsched_workers", "Size of the solve worker pool.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("gridsched_shards", "Number of service shards (job stores / run queues).",
		func() float64 { return float64(len(s.shards)) })
	m.busy = reg.Gauge("gridsched_workers_busy", "Workers currently solving a job.")
	reg.GaugeFunc("gridsched_jobs_retained", "Jobs retained in memory (all states).",
		func() float64 {
			var r int64
			for _, sh := range s.shards {
				r += sh.retained.Load()
			}
			return float64(r)
		})

	m.submitted = reg.Counter("gridsched_jobs_submitted_total", "Jobs accepted by Submit.")
	m.rejected = reg.CounterVec("gridsched_jobs_rejected_total", "Jobs refused at Submit, by reason.", "reason")
	m.finished = reg.CounterVec("gridsched_jobs_finished_total",
		"Jobs retired, by terminal state; a run whose solver panicked counts under the panic label (the job itself reports state failed).", "state")
	m.latency = reg.HistogramVec("gridsched_job_latency_seconds", "Solve wall time per job (queue wait excluded).",
		latencyBuckets, "solver")
	m.evals = reg.CounterVec("gridsched_job_evaluations_total", "Fitness evaluations performed by finished jobs.", "solver")

	// Epoch-snapshot reads: the merge counter and the cross-shard steal
	// total come from the latest published snapshot (one atomic load).
	reg.GaugeFunc("gridsched_stats_epoch", "Epoch of the latest merged stats snapshot.",
		func() float64 { return float64(s.snap.Load().epoch) })
	reg.CounterFunc("gridsched_jobs_stolen_total", "Jobs executed by a worker that stole them from another shard's queue.",
		func() int64 { return s.snap.Load().stolen })
	reg.CounterFunc("gridsched_jobs_evicted_total", "Finished jobs dropped by the retention janitor.",
		func() int64 { return s.evicted.Load() })

	reg.CounterFunc("gridsched_cache_hits_total", "Instance cache hits on a cached entry.",
		func() int64 { h, _, _, _ := s.cache.counters(); return h })
	reg.CounterFunc("gridsched_cache_misses_total", "Instance cache misses (fresh generations).",
		func() int64 { _, mi, _, _ := s.cache.counters(); return mi })
	reg.CounterFunc("gridsched_cache_joins_total", "Requests served by joining an in-flight generation (single-flight).",
		func() int64 { _, _, j, _ := s.cache.counters(); return j })
	reg.GaugeFunc("gridsched_cache_entries", "Instances currently cached.",
		func() float64 { _, _, _, e := s.cache.counters(); return float64(e) })

	reg.CounterFunc("gridsched_store_serves_total", "Named-instance resolutions served by the pre-generated instance store.",
		func() int64 { return s.storeServes.Load() })
	reg.GaugeFunc("gridsched_store_instances", "Instances held by the configured instance store (0 without one).",
		func() float64 {
			if db := s.cfg.InstanceDB; db != nil {
				return float64(db.Len())
			}
			return 0
		})

	m.http = reg.CounterVec("gridsched_http_requests_total", "HTTP responses served, by status code and method.",
		"code", "method")
	return m
}

// Metrics returns the server's metric registry, for embedding in a
// larger process's exposition. The HTTP handler already serves it at
// GET /metrics.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// rejectReason maps a Submit error to the rejected-counter label.
func rejectReason(err error) string {
	switch {
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrClosed):
		return "closed"
	default:
		return "invalid"
	}
}
