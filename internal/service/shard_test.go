package service

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestJobIDRouting pins the shard-qualified ID format and its parser:
// round-trips for every shard index, and rejection (not a crash, not a
// wrong shard) for everything malformed a client could send.
func TestJobIDRouting(t *testing.T) {
	for _, shard := range []int{0, 1, 7, 15, 123} {
		id := jobID(shard, 42)
		got, ok := parseShardID(id)
		if !ok || got != shard {
			t.Errorf("parseShardID(%q) = %d, %v; want %d, true", id, got, ok, shard)
		}
	}
	for _, bad := range []string{"", "j", "j-", "j00000001", "j99999999", "x0-00000001", "j-1-00000001", "jx-00000001", "nope"} {
		if got, ok := parseShardID(bad); ok {
			t.Errorf("parseShardID(%q) = %d, true; want rejection", bad, got)
		}
	}
}

// TestEpochMergeProperty is the coordinator's correctness property
// under churn: while jobs retire across shards, concurrently observed
// snapshots must (a) never repeat or regress an epoch, (b) carry
// monotonically non-decreasing counters, and (c) at quiescence merge
// to exactly the sum of what the shards retired — per-shard finished
// totals equal to the per-solver done/failed/cancelled totals, equal
// to the number of jobs submitted.
func TestEpochMergeProperty(t *testing.T) {
	svc := New(Config{Workers: 4, Shards: 4, QueueSize: 256, EpochInterval: 5 * time.Millisecond})
	defer svc.Close()

	const jobs = 120
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Observer: sample Stats as fast as possible during the churn.
	var (
		obsWG     sync.WaitGroup
		stopObs   = make(chan struct{})
		lastEpoch uint64
		lastTotal int64
	)
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		seen := map[uint64]int64{} // epoch -> total finished at that epoch
		for {
			select {
			case <-stopObs:
				return
			default:
			}
			st := svc.Stats()
			var total int64
			for _, sh := range st.Shards {
				total += sh.Finished
			}
			if st.Epoch < lastEpoch {
				t.Errorf("epoch regressed: %d after %d", st.Epoch, lastEpoch)
				return
			}
			if total < lastTotal {
				t.Errorf("merged finished total regressed: %d after %d", total, lastTotal)
				return
			}
			if prev, ok := seen[st.Epoch]; ok && prev != total {
				t.Errorf("epoch %d observed twice with different totals: %d then %d", st.Epoch, prev, total)
				return
			}
			seen[st.Epoch] = total
			lastEpoch, lastTotal = st.Epoch, total
		}
	}()

	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0@64x8"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
		if i%5 == 0 { // a few cancellations keep all three terminal states in play
			_, _ = svc.Cancel(j.ID)
		}
	}
	for _, id := range ids {
		if _, err := svc.Wait(ctx, id); err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
	}
	close(stopObs)
	obsWG.Wait()

	// Quiescent merge: everything retired must be accounted for, and
	// the three views of "how many jobs" must agree exactly.
	st := svc.SyncStats()
	var perShard, perSolver, submitted int64
	for _, sh := range st.Shards {
		perShard += sh.Finished
		submitted += sh.Submitted
		if sh.Stolen > sh.Finished {
			t.Errorf("shard %d: stolen %d > finished %d", sh.Shard, sh.Stolen, sh.Finished)
		}
	}
	for _, sv := range st.Solvers {
		perSolver += sv.Done + sv.Failed + sv.Cancelled
	}
	if perShard != jobs || perSolver != jobs || submitted != jobs {
		t.Errorf("merged totals disagree: per-shard %d, per-solver %d, submitted %d, want %d each",
			perShard, perSolver, submitted, jobs)
	}
	if st.Epoch == 0 {
		t.Error("work retired but epoch never advanced")
	}
}

// TestWorkStealingDrainsOtherShards pins the steal path directly: one
// worker pinned to shard 0 must execute jobs that round-robin intake
// placed on shards it does not own.
func TestWorkStealingDrainsOtherShards(t *testing.T) {
	svc := New(Config{Workers: 1, Shards: 4, QueueSize: 64})
	defer svc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const jobs = 12 // 3 per shard; 9 of them live on shards 1-3
	ids := make([]string, jobs)
	for i := range ids {
		j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0@64x8"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}
	for _, id := range ids {
		j, err := svc.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != StateDone {
			t.Fatalf("job %s: state %s (error %q)", id, j.State, j.Error)
		}
	}
	st := svc.SyncStats()
	if st.Shards[0].Finished != jobs {
		t.Errorf("the lone worker's shard retired %d jobs, want all %d", st.Shards[0].Finished, jobs)
	}
	if want := int64(jobs - jobs/4); st.Shards[0].Stolen != want {
		t.Errorf("stolen = %d, want %d (every job not on the worker's own shard)", st.Shards[0].Stolen, want)
	}
}

// TestWorkStealingSaturatesUnderSkew is the skewed-mix scenario: a
// long-running job pins one worker, and the quick jobs that intake
// keeps placing on that worker's shard must be stolen and completed by
// the other shards' workers while the blocker still runs.
func TestWorkStealingSaturatesUnderSkew(t *testing.T) {
	svc := New(Config{Workers: 4, Shards: 4, QueueSize: 256})
	defer svc.Close()

	blocker, err := svc.Submit(JobSpec{Solver: "test-block", Instance: "u_c_hihi.0@64x8"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const jobs = 64 // round-robin lands 16 on the blocked worker's shard
	ids := make([]string, jobs)
	for i := range ids {
		j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0@64x8"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}
	for _, id := range ids {
		j, err := svc.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != StateDone {
			t.Fatalf("quick job %s: state %s (error %q)", id, j.State, j.Error)
		}
	}
	// The blocker is still running: the quick mix completed around it.
	if j, err := svc.Job(blocker.ID); err != nil || j.State != StateRunning {
		t.Fatalf("blocker state = %v (err %v), want still running", j.State, err)
	}
	st := svc.SyncStats()
	var stolen int64
	for _, sh := range st.Shards {
		stolen += sh.Stolen
	}
	if stolen == 0 {
		t.Errorf("skewed mix completed with zero steals; per-shard: %+v", st.Shards)
	}
	if _, err := svc.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
}

// TestStatsReadLockFree pins the acceptance criterion that /v1/stats
// and /metrics are served from epoch snapshots and live atomics with
// no per-shard lock acquisition: with EVERY shard lock, every shard
// delta lock and the instance-cache lock held hostage, Stats() and a
// full metrics scrape must still return.
func TestStatsReadLockFree(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2, Shards: 2, QueueSize: 8})

	// Retire some work first so the snapshot is non-trivial.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0@64x8"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	svc.SyncStats()

	for _, sh := range svc.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		sh.delta.mu.Lock()
		defer sh.delta.mu.Unlock()
	}
	svc.cache.mu.Lock()
	defer svc.cache.mu.Unlock()

	type result struct {
		stats Stats
		body  string
	}
	got := make(chan result, 1)
	go func() {
		st := svc.Stats()
		got <- result{stats: st, body: scrape(t, ts.URL)}
	}()
	select {
	case r := <-got:
		if r.stats.Epoch == 0 {
			t.Errorf("snapshot epoch 0 after a merged retirement")
		}
		if len(r.body) == 0 {
			t.Errorf("empty metrics exposition")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stats()/scrape blocked while shard locks were held — the read path takes a lock")
	}
}

// TestListJobsFilters covers the ?state=/?limit= listing path at both
// the Go and HTTP layers, against a mixed queued/running/terminal set.
func TestListJobsFilters(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, Shards: 2, QueueSize: 16})

	blocker, err := svc.Submit(JobSpec{Solver: "test-block", Instance: "u_c_hihi.0@64x8"})
	if err != nil {
		t.Fatal(err)
	}
	pollState(t, ts.URL, blocker.ID, 5*time.Second, func(j jobJSON) bool { return j.State == StateRunning })
	var queued []string
	for i := 0; i < 4; i++ {
		j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0@64x8"})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j.ID)
	}

	if got := svc.ListJobs(StateQueued, 0); len(got) != 4 {
		t.Errorf("ListJobs(queued) = %d jobs, want 4", len(got))
	}
	if got := svc.ListJobs(StateRunning, 0); len(got) != 1 || got[0].ID != blocker.ID {
		t.Errorf("ListJobs(running) = %+v, want just the blocker", got)
	}
	if got := svc.ListJobs("", 2); len(got) != 2 {
		t.Errorf("ListJobs(limit=2) = %d jobs, want 2", len(got))
	}
	// Newest first: the limited listing returns the latest submissions.
	if got := svc.ListJobs(StateQueued, 1); len(got) != 1 || got[0].ID != queued[3] {
		t.Errorf("ListJobs(queued, 1) = %+v, want newest queued job %s", got, queued[3])
	}

	var list struct {
		Jobs []jobJSON `json:"jobs"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs?state=queued", "", &list); code != http.StatusOK {
		t.Fatalf("GET ?state=queued: status %d", code)
	}
	if len(list.Jobs) != 4 {
		t.Errorf("HTTP ?state=queued returned %d jobs, want 4", len(list.Jobs))
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs?state=queued&limit=2", "", &list); code != http.StatusOK || len(list.Jobs) != 2 {
		t.Errorf("HTTP ?state=queued&limit=2: status %d, %d jobs, want 200/2", code, len(list.Jobs))
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs?state=bogus", "", nil); code != http.StatusBadRequest {
		t.Errorf("HTTP ?state=bogus: status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs?limit=-3", "", nil); code != http.StatusBadRequest {
		t.Errorf("HTTP ?limit=-3: status %d, want 400", code)
	}

	if _, err := svc.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
}

// TestShardStormRace is the -race soak of the sharded core: submits,
// cancels, stats reads, listings and scrapes hammer every shard at
// once, then Shutdown races the storm. Every accepted job must end
// terminal.
func TestShardStormRace(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 4, Shards: 4, QueueSize: 64, EpochInterval: 2 * time.Millisecond})

	var (
		mu       sync.Mutex
		accepted []string
		stop     atomic.Bool
		wg       sync.WaitGroup
	)
	spec := JobSpec{Solver: "minmin", Instance: "u_c_hihi.0@64x8"}
	if _, err := svc.Submit(spec); err != nil { // warm the cache
		t.Fatal(err)
	}

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				j, err := svc.Submit(spec)
				switch err {
				case nil:
					mu.Lock()
					accepted = append(accepted, j.ID)
					n := len(accepted)
					victim := accepted[rnd.Intn(n)]
					mu.Unlock()
					if rnd.Intn(4) == 0 {
						_, _ = svc.Cancel(victim)
					}
				case ErrClosed:
					return
				case ErrQueueFull:
					time.Sleep(time.Millisecond)
				default:
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_ = svc.Stats()
			_ = svc.ListJobs(StateQueued, 8)
			_ = scrape(t, ts.URL)
		}
	}()

	time.Sleep(150 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	stop.Store(true)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, id := range accepted {
		j, err := svc.Wait(ctx, id)
		if err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
		if !j.State.Terminal() {
			t.Fatalf("job %s stranded in %s after Shutdown", id, j.State)
		}
	}
}
