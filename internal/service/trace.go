package service

import (
	"time"

	"gridsched/internal/obs"
)

// JobTrace is the per-job lifecycle trace: the phase spans of the
// submit → queued → dispatched → solving → terminal state machine plus
// the solver's convergence event series (incumbent improvements and
// the terminal fitness, per lane for portfolio jobs).
type JobTrace struct {
	ID        string
	Solver    string
	Instance  string
	State     JobState
	RequestID string
	// Phases are the lifecycle spans; the open span of a live job is
	// measured to now.
	Phases []obs.Span
	// Events is the convergence series in arrival order.
	Events []obs.RecordedEvent
	// Dropped counts improvement events discarded past the recorder's
	// cap (the series is still monotone — drops happen at the tail).
	Dropped int64
}

// Trace returns the identified job's lifecycle trace. It works on live
// jobs (the current phase is measured to now) and terminal ones alike.
func (s *Server) Trace(id string) (JobTrace, error) {
	j, ok := s.lookupJob(id)
	if !ok {
		return JobTrace{}, ErrNotFound
	}
	snap := j.snapshot()
	now := time.Now()
	if snap.State.Terminal() {
		now = time.Time{} // close the last span at its own mark
	}
	return JobTrace{
		ID:        snap.ID,
		Solver:    snap.Solver,
		Instance:  snap.Instance,
		State:     snap.State,
		RequestID: snap.RequestID,
		Phases:    j.timeline.Spans(now),
		Events:    j.trace.Events(),
		Dropped:   j.trace.Dropped(),
	}, nil
}
