package service

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"gridsched/internal/instdb"
)

// buildTestStore builds an in-memory instdb store over the given
// instance names.
func buildTestStore(t *testing.T, names []string) *instdb.Store {
	t.Helper()
	var buf strings.Builder
	if _, err := instdb.Build(&buf, names); err != nil {
		t.Fatal(err)
	}
	st, err := instdb.Decode([]byte(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestInstanceStoreServes pins the store-first resolution path: names
// held by the configured InstanceDB are served from it (counted as
// store serves, not cache traffic), names outside the corpus fall back
// to the generation cache, and both accountings surface on /v1/stats
// and /metrics.
func TestInstanceStoreServes(t *testing.T) {
	store := buildTestStore(t, []string{"u_c_hihi.0@64x8", "u_i_lolo.0@64x8"})
	svc, ts := newTestServer(t, Config{Workers: 2, QueueSize: 16, InstanceDB: store})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	run := func(instance string) {
		t.Helper()
		j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: instance})
		if err != nil {
			t.Fatal(err)
		}
		done, err := svc.Wait(ctx, j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if done.State != StateDone || done.Result == nil || done.Result.Makespan <= 0 {
			t.Fatalf("job on %q: state %s result %+v", instance, done.State, done.Result)
		}
	}

	// Three jobs on stored names: all store serves, zero cache traffic.
	run("u_c_hihi.0@64x8")
	run("u_c_hihi.0@64x8")
	run("u_i_lolo.0@64x8")
	// One job outside the corpus: a cache miss, not a store serve.
	run("u_s_hilo.0@64x8")

	st := svc.Stats()
	if st.StoreServes != 3 {
		t.Errorf("StoreServes = %d, want 3", st.StoreServes)
	}
	if st.StoreInstances != 2 {
		t.Errorf("StoreInstances = %d, want 2", st.StoreInstances)
	}
	if st.CacheMisses != 1 || st.CacheHits != 0 {
		t.Errorf("cache misses/hits = %d/%d, want 1/0 (stored names must bypass the cache)",
			st.CacheMisses, st.CacheHits)
	}

	// The split rides the JSON stats payload...
	var payload struct {
		Store struct {
			Serves    int64 `json:"serves"`
			Instances int   `json:"instances"`
		} `json:"store"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", "", &payload); code != http.StatusOK {
		t.Fatalf("GET /v1/stats: status %d", code)
	}
	if payload.Store.Serves != 3 || payload.Store.Instances != 2 {
		t.Errorf("/v1/stats store = %+v, want serves 3 instances 2", payload.Store)
	}

	// ...and the Prometheus exposition.
	body := scrape(t, ts.URL)
	for _, want := range []string{
		"gridsched_store_serves_total 3\n",
		"gridsched_store_instances 2\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, grepLine(body, "gridsched_store"))
		}
	}
}

// TestInstanceStoreTrusted pins the trust contract: a stored instance
// is served even when it exceeds MaxMatrixEntries (the corpus is
// operator-provided), while the same size requested outside the store
// is still rejected at Submit.
func TestInstanceStoreTrusted(t *testing.T) {
	store := buildTestStore(t, []string{"u_c_hihi.0@128x8"})
	svc, _ := newTestServer(t, Config{Workers: 1, QueueSize: 4, InstanceDB: store, MaxMatrixEntries: 100})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0@128x8"})
	if err != nil {
		t.Fatalf("stored instance past the cap rejected: %v", err)
	}
	if done, err := svc.Wait(ctx, j.ID); err != nil || done.State != StateDone {
		t.Fatalf("stored oversized job: %v / %v", done.State, err)
	}
	// The identical size without store backing trips the cap.
	if _, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_lohi.0@128x8"}); err == nil {
		t.Fatal("non-stored oversized instance accepted past MaxMatrixEntries")
	}
}
