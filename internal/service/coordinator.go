package service

import (
	"sort"
	"time"
)

// epochCoalesce is how long the coordinator waits after a retirement
// poke before merging, so a burst of finishing jobs costs one merge,
// not one per job.
const epochCoalesce = time.Millisecond

// shardCum is one shard's cumulative (all-epochs) retirement counters
// inside a snapshot.
type shardCum struct {
	finished int64
	stolen   int64
}

// statSnapshot is one epoch's immutable merged view. The coordinator
// builds it under mergeMu and publishes it with an atomic pointer
// store; Stats, /v1/stats and /metrics read the latest snapshot with a
// single atomic load and no lock of any kind.
type statSnapshot struct {
	epoch    uint64
	mergedAt time.Time
	solvers  []SolverStats
	shards   []shardCum
	finished int64
	stolen   int64
}

// emptySnapshot seeds the published pointer so readers never see nil.
func emptySnapshot(shards int) *statSnapshot {
	return &statSnapshot{shards: make([]shardCum, shards)}
}

// coordinate is the epoch coordinator: it merges per-shard deltas into
// a fresh snapshot when poked by retiring workers (coalesced so bursts
// amortize) and on a fallback tick, and once more at shutdown so
// post-drain stats are complete.
func (s *Server) coordinate() {
	defer s.bg.Done()
	tick := time.NewTicker(s.cfg.EpochInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			s.merge()
			return
		case <-s.poke:
			t := time.NewTimer(epochCoalesce)
			select {
			case <-t.C:
			case <-s.baseCtx.Done():
				t.Stop()
			}
			s.merge()
		case <-tick.C:
			s.merge()
		}
	}
}

// pokeCoordinator requests an epoch merge soon. Non-blocking: a
// pending poke already covers this retirement.
func (s *Server) pokeCoordinator() {
	select {
	case s.poke <- struct{}{}:
	default:
	}
}

// merge drains every shard's delta into the cumulative book and
// publishes a new snapshot. It is the only writer of the cumulative
// state (serialized by mergeMu) and safe to call from any goroutine —
// SyncStats uses it to force a fresh epoch, the coordinator calls it
// on pokes and ticks. A merge that drained nothing republishes the
// previous snapshot instead of burning an epoch, so epochs advance
// exactly once per batch of observed work and no epoch number is ever
// published twice.
func (s *Server) merge() *statSnapshot {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	changed := false
	for i, sh := range s.shards {
		fin, st, per := sh.drainDelta()
		if fin != 0 || st != 0 || per != nil {
			changed = true
		}
		s.cumShards[i].finished += fin
		s.cumShards[i].stolen += st
		for name, c := range per {
			cc := s.cumSolvers[name]
			if cc == nil {
				cc = &solverCounters{}
				s.cumSolvers[name] = cc
			}
			cc.add(c)
		}
	}
	if prev := s.snap.Load(); !changed && prev.epoch > 0 {
		return prev
	}
	s.epoch++
	snap := &statSnapshot{
		epoch:    s.epoch,
		mergedAt: time.Now(),
		shards:   append([]shardCum(nil), s.cumShards...),
	}
	for name, c := range s.cumSolvers {
		snap.solvers = append(snap.solvers, deriveSolverStats(name, c))
	}
	sort.Slice(snap.solvers, func(i, j int) bool { return snap.solvers[i].Solver < snap.solvers[j].Solver })
	for _, sc := range snap.shards {
		snap.finished += sc.finished
		snap.stolen += sc.stolen
	}
	s.snap.Store(snap)
	return snap
}

// SyncStats forces an epoch merge and returns the resulting stats, so
// callers that just observed a job finish (tests, batch harnesses) get
// exact per-solver counters without waiting out the epoch cadence.
// Plain Stats stays the lock-free fast path.
func (s *Server) SyncStats() Stats {
	s.merge()
	return s.Stats()
}
