// Package service turns the solver library into a long-running
// scheduling service: clients submit solve jobs (an ETC instance spec
// or an inline matrix, a registered solver name, and a budget), jobs
// land on per-shard bounded queues, and a fixed pool of workers
// executes them through solver.Lookup with a per-job context, so
// cancellation and deadlines ride the shared budget engine.
//
// The core is sharded for multi-core scale: each shard owns a local
// job store, a local run queue and local stats counters, and every
// job's ID carries its shard index, so the Submit→dispatch→finish hot
// path and all by-ID lookups touch only shard-local state. Idle
// workers steal queued jobs from loaded neighbors so a skewed submit
// mix still saturates every shard. A coordinator goroutine advances
// epochs, merging per-shard retirement deltas into an immutable
// snapshot; /v1/stats and /metrics are served from the latest epoch
// snapshot plus live atomic gauges, with zero lock acquisition on the
// read path.
//
// Around that core the package provides a job manager with stable job
// IDs and a queued → running → done/failed/cancelled lifecycle, result
// retention with TTL-based eviction, an LRU instance cache (the twelve
// benchmark ETC matrices are generated once and shared across jobs),
// and per-solver throughput/latency counters exposed as a stats
// snapshot.
//
// Server is embeddable from Go (re-exported on the gridsched facade);
// Handler exposes the same operations as an HTTP/JSON API, served
// stand-alone by cmd/gridschedd.
package service

import (
	"context"
	"errors"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/solver"

	// The service dispatches by registry name; force-link every
	// self-registering solver family so a Server embedded without the
	// gridsched facade still sees the full registry.
	_ "gridsched/internal/baselines"
	_ "gridsched/internal/core"
	_ "gridsched/internal/heuristics"
	_ "gridsched/internal/islands"
	_ "gridsched/internal/portfolio"
	_ "gridsched/internal/tabu"
)

// Sentinel errors mapped to HTTP statuses by the handler.
var (
	// ErrQueueFull rejects a submit when the bounded job queue is at
	// capacity (backpressure; HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed rejects operations after Shutdown started.
	ErrClosed = errors.New("service: server closed")
	// ErrNotFound reports an unknown (or already evicted) job ID.
	ErrNotFound = errors.New("service: job not found")
)

// Config parameterizes a Server. The zero value is usable: every field
// falls back to the default documented on it.
type Config struct {
	// Workers is the number of concurrent solve workers (default
	// GOMAXPROCS). Each worker runs one job at a time, pinned to a home
	// shard (worker i → shard i mod Shards).
	Workers int
	// Shards is the number of service shards — independent job stores,
	// run queues and stats counters (default min(Workers, GOMAXPROCS),
	// floored at 1). More shards than workers is allowed; the extra
	// queues are served by stealing.
	Shards int
	// QueueSize bounds the total queued jobs across all shards; submits
	// beyond it fail with ErrQueueFull (default 64).
	QueueSize int
	// EpochInterval is the fallback cadence of the stats coordinator's
	// epoch merges (default 100ms). Retiring jobs poke the coordinator,
	// so under load merges happen within ~1ms of work finishing; the
	// tick only bounds staleness when pokes are lost to a full channel.
	EpochInterval time.Duration
	// ResultTTL is how long a finished job (done, failed or cancelled)
	// stays retrievable before the janitor evicts it (default 15 min).
	ResultTTL time.Duration
	// SweepInterval is how often the janitor scans for expired results
	// (default ResultTTL/4, floored at one second).
	SweepInterval time.Duration
	// CacheSize bounds the LRU instance cache in entries (default 16 —
	// room for the whole 12-instance benchmark suite).
	CacheSize int
	// MaxDuration caps every job's wall-clock budget; specs asking for
	// more (or for no time bound at all) are clamped to it. Zero means
	// no cap.
	MaxDuration time.Duration
	// MaxMatrixEntries caps tasks×machines for any instance a job may
	// reference — a sized benchmark name ("u_c_hihi.0@4096x64") or an
	// inline matrix. Specs beyond it are rejected at Submit, bounding
	// worst-case instance-cache memory to roughly CacheSize ×
	// MaxMatrixEntries × 16 bytes. Zero means the default (1<<20
	// entries ≈ 16 MB per instance); negative disables the cap (for
	// trusted embedders like the scenario sweep).
	MaxMatrixEntries int
	// Logger receives structured job-lifecycle records (submit, start,
	// finish) with job and request IDs. Nil discards them.
	Logger *slog.Logger
	// InstanceDB, when set, is a read-only repository of pre-generated
	// instances (an instdb store) consulted before the generation cache
	// for named instances. A store hit serves a shared zero-copy view
	// with no generation, no lock and no LRU churn; names the store
	// does not hold fall back to on-demand generation through the
	// cache. The store is operator-provided and therefore trusted: a
	// stored instance is served even past MaxMatrixEntries.
	InstanceDB InstanceStore
}

// InstanceStore is the read-only instance repository the server
// consults before generating matrices on demand — implemented by
// instdb.Store and (reloadably) instdb.DB.
type InstanceStore interface {
	// Get returns the named instance and whether the store holds it.
	// Returned instances are shared and must be immutable.
	Get(name string) (*etc.Instance, bool)
	// Len is the number of instances currently held.
	Len() int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Shards <= 0 {
		c.Shards = min(c.Workers, runtime.GOMAXPROCS(0))
		if c.Shards < 1 {
			c.Shards = 1
		}
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.EpochInterval <= 0 {
		c.EpochInterval = 100 * time.Millisecond
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 15 * time.Minute
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.ResultTTL / 4
		if c.SweepInterval < time.Second {
			c.SweepInterval = time.Second
		}
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.MaxMatrixEntries == 0 {
		c.MaxMatrixEntries = 1 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Server is the scheduling service: sharded job stores and run queues,
// a pinned worker pool with work stealing, an epoch-merged stats book
// and an instance cache behind one embeddable API. Create it with New,
// submit with Submit, and stop it with Shutdown. All methods are safe
// for concurrent use.
type Server struct {
	cfg   Config
	cache *instanceCache
	met   *serverMetrics
	log   *slog.Logger
	start time.Time

	baseCtx context.Context // parent of every job context
	stop    context.CancelFunc

	shards    []*shard
	nextShard atomic.Uint64 // round-robin intake cursor
	queueLen  atomic.Int64  // occupied queue slots across all shards
	wakeAll   chan struct{} // overflow wakeups: any idle worker may steal
	drainCh   chan struct{} // closed by BeginDrain; wakes sleeping workers
	closed    atomic.Bool

	workers sync.WaitGroup
	bg      sync.WaitGroup // janitor + coordinator

	evicted     atomic.Int64
	storeServes atomic.Int64 // named resolutions served by InstanceDB

	// Epoch reconciliation: merge() (serialized by mergeMu) drains every
	// shard's delta into the cumulative book and publishes an immutable
	// snapshot; readers load snap with no lock.
	snap       atomic.Pointer[statSnapshot]
	poke       chan struct{}
	mergeMu    sync.Mutex
	epoch      uint64
	cumSolvers map[string]*solverCounters
	cumShards  []shardCum
}

// New starts a Server: its worker pool, stats coordinator and
// retention janitor run until Shutdown.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      newInstanceCache(cfg.CacheSize),
		log:        cfg.Logger,
		start:      time.Now(),
		baseCtx:    ctx,
		stop:       cancel,
		shards:     make([]*shard, cfg.Shards),
		wakeAll:    make(chan struct{}, cfg.Workers),
		drainCh:    make(chan struct{}),
		poke:       make(chan struct{}, 1),
		cumSolvers: make(map[string]*solverCounters),
		cumShards:  make([]shardCum, cfg.Shards),
	}
	for i := range s.shards {
		s.shards[i] = newShard(i)
	}
	s.snap.Store(emptySnapshot(cfg.Shards))
	s.met = newServerMetrics(s)
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.runWorker(i % cfg.Shards)
	}
	s.bg.Add(2)
	go s.coordinate()
	go s.sweepLoop()
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Submit validates the spec, assigns a job ID and enqueues the job on
// a shard. It fails fast: an unknown solver or a bad instance spec is
// reported here (never as a failed job), and a full queue returns
// ErrQueueFull so callers can apply backpressure.
func (s *Server) Submit(spec JobSpec) (Job, error) {
	j, err := s.submit(spec)
	if err != nil {
		s.met.rejected.With(rejectReason(err)).Inc()
		s.log.Warn("job rejected",
			"solver", spec.Solver, "instance", spec.Instance,
			"request_id", spec.RequestID, "error", err.Error())
		return Job{}, err
	}
	s.met.submitted.Inc()
	s.log.Info("job submitted",
		"job_id", j.ID, "solver", j.Solver, "instance", j.Instance,
		"request_id", spec.RequestID)
	return j, nil
}

func (s *Server) submit(spec JobSpec) (Job, error) {
	sv, err := solver.Lookup(spec.Solver)
	if err != nil {
		return Job{}, err
	}
	inst, err := s.resolveInstance(spec)
	if err != nil {
		return Job{}, err
	}
	budget := spec.Budget
	if s.cfg.MaxDuration > 0 && (budget.MaxDuration <= 0 || budget.MaxDuration > s.cfg.MaxDuration) {
		budget.MaxDuration = s.cfg.MaxDuration
	}
	if spec.Seed != 0 {
		sv = solver.WithSeed(sv, spec.Seed)
	}
	if s.closed.Load() {
		return Job{}, ErrClosed
	}
	// Reserve a queue slot before touching any shard: the bound is
	// service-wide, checked with one atomic add, and released on every
	// reject path below.
	if s.queueLen.Add(1) > int64(s.cfg.QueueSize) {
		s.queueLen.Add(-1)
		return Job{}, ErrQueueFull
	}
	idx := int(s.nextShard.Add(1)-1) % len(s.shards)
	sh := s.shards[idx]
	j := newJob(spec, sv, inst, budget, s.baseCtx, sh)

	sh.mu.Lock()
	// Re-check under the shard lock: BeginDrain sets closed and then
	// passes through every shard's lock, so a submit that got past this
	// check has its job enqueued before the drain fence completes — the
	// set of accepted jobs is closed once BeginDrain returns.
	if s.closed.Load() {
		sh.mu.Unlock()
		s.queueLen.Add(-1)
		j.release()
		return Job{}, ErrClosed
	}
	sh.seq++
	j.id = jobID(idx, sh.seq)
	sh.jobs[j.id] = j
	sh.submitted.Add(1)
	sh.retained.Add(1)
	sh.noteQueued()
	sh.q = append(sh.q, j)
	sh.mu.Unlock()

	// Wake the shard's pinned workers, and leave an overflow token so
	// an idle worker on another shard can come steal if they're busy.
	select {
	case sh.wake <- struct{}{}:
	default:
	}
	select {
	case s.wakeAll <- struct{}{}:
	default:
	}
	return j.snapshot(), nil
}

// lookupJob routes a job ID to its owning shard (the shard index rides
// in the ID prefix) and returns the live record.
func (s *Server) lookupJob(id string) (*job, bool) {
	idx, ok := parseShardID(id)
	if !ok || idx >= len(s.shards) {
		return nil, false
	}
	sh := s.shards[idx]
	sh.mu.Lock()
	j, ok := sh.jobs[id]
	sh.mu.Unlock()
	return j, ok
}

// Job returns a snapshot of the identified job.
func (s *Server) Job(id string) (Job, error) {
	j, ok := s.lookupJob(id)
	if !ok {
		return Job{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// Wait blocks until the identified job reaches a terminal state (done,
// failed or cancelled) and returns its final snapshot, or returns the
// context's error if ctx fires first. It is the synchronous companion
// to the polling Job accessor: batch harnesses (the scenario sweep)
// submit a wave of jobs and Wait on each instead of spinning.
//
// Wait does not extend retention: a job evicted by the janitor before
// Wait is called reports ErrNotFound.
func (s *Server) Wait(ctx context.Context, id string) (Job, error) {
	j, ok := s.lookupJob(id)
	if !ok {
		return Job{}, ErrNotFound
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
}

// Jobs snapshots every retained job, newest first.
func (s *Server) Jobs() []Job {
	return s.ListJobs("", 0)
}

// ListJobs snapshots retained jobs newest first, optionally filtered
// by state ("" matches every state) and truncated to limit (0 means
// unlimited). Matching runs per shard and snapshots are built only for
// jobs that survive the filter and the cut, so listing a few jobs out
// of a large retained set no longer copies everything under a lock.
func (s *Server) ListJobs(state JobState, limit int) []Job {
	var matched []*job
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, j := range sh.jobs {
			if state == "" || j.state() == state {
				matched = append(matched, j)
			}
		}
		sh.mu.Unlock()
	}
	// submitted and id are immutable after publication, so ordering and
	// cutting need no locks; only the survivors pay for a snapshot.
	sort.Slice(matched, func(a, b int) bool {
		if !matched[a].submitted.Equal(matched[b].submitted) {
			return matched[a].submitted.After(matched[b].submitted)
		}
		return matched[a].id > matched[b].id
	})
	if limit > 0 && len(matched) > limit {
		matched = matched[:limit]
	}
	out := make([]Job, len(matched))
	for i, j := range matched {
		out[i] = j.snapshot()
	}
	return out
}

// Cancel requests cancellation of a job. A queued job is marked
// cancelled immediately (workers skip it); a running job has its
// context cancelled, which stops the solver at the budget engine's
// next poll. Cancelling a finished job is a no-op. The returned
// snapshot reflects the state after the request.
func (s *Server) Cancel(id string) (Job, error) {
	j, ok := s.lookupJob(id)
	if !ok {
		return Job{}, ErrNotFound
	}
	j.requestCancel()
	return j.snapshot(), nil
}

// Stats returns the service-level and per-solver counters: live atomic
// gauges (queued/running/retained, cache, store) plus the latest epoch
// snapshot's merged retirement counters. It acquires no lock — safe to
// call at any scrape rate regardless of what the shards are doing.
// Per-solver counters trail live work by at most one epoch; SyncStats
// forces a merge first when exactness right after a Wait matters.
func (s *Server) Stats() Stats {
	snap := s.snap.Load()
	st := Stats{
		Uptime:        time.Since(s.start),
		Workers:       s.cfg.Workers,
		QueueCapacity: s.cfg.QueueSize,
		Epoch:         snap.epoch,
		Evicted:       s.evicted.Load(),
		StoreServes:   s.storeServes.Load(),
		Solvers:       append([]SolverStats(nil), snap.solvers...),
	}
	st.CacheHits, st.CacheMisses, st.CacheJoins, st.CacheEntries = s.cache.counters()
	if db := s.cfg.InstanceDB; db != nil {
		st.StoreInstances = db.Len()
	}
	st.Shards = make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		q, r, ret := sh.queued.Load(), sh.running.Load(), sh.retained.Load()
		st.Queued += int(q)
		st.Running += int(r)
		st.Retained += int(ret)
		ss := ShardStats{
			Shard:          i,
			Submitted:      sh.submitted.Load(),
			Queued:         int(q),
			Running:        int(r),
			Retained:       int(ret),
			QueueDepthPeak: int(sh.peakDepth.Load()),
		}
		if i < len(snap.shards) {
			ss.Finished = snap.shards[i].finished
			ss.Stolen = snap.shards[i].stolen
		}
		st.Shards[i] = ss
	}
	return st
}

// BeginDrain marks the server draining without waiting: submits are
// refused with ErrClosed, the health endpoint reports 503, queued and
// running jobs continue. Call it before stopping an HTTP frontend so
// in-flight clients observe the draining state; Shutdown calls it
// implicitly. Idempotent. When BeginDrain returns, no further job can
// be accepted: the pass through every shard lock fences out any submit
// that raced the closed flag.
func (s *Server) BeginDrain() {
	if s.closed.Swap(true) {
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		//lint:ignore SA2001 the empty critical section is the fence
		sh.mu.Unlock()
	}
	close(s.drainCh)
}

// Shutdown drains the service: submits are refused, queued jobs still
// execute, and Shutdown returns when every worker has exited — unless
// ctx expires first, in which case all in-flight jobs are cancelled
// (through their budget contexts) and the drain completes as fast as
// the solvers' cancellation polls allow. The coordinator and janitor
// are always stopped, with a final epoch merge so post-shutdown Stats
// include every retired job. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()

	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.stop() // cancel every in-flight job, then finish the drain
		<-done
	}
	s.stop()
	s.bg.Wait()
	// The coordinator's exit merge may have raced the last workers on a
	// forced shutdown; one more merge makes post-shutdown stats final.
	s.merge()
	return err
}

// Close is Shutdown with no deadline: it cancels in-flight work
// immediately and waits for the pool to exit.
func (s *Server) Close() error {
	s.stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		err = nil
	}
	return err
}

// sweepLoop evicts finished jobs past their retention TTL.
func (s *Server) sweepLoop() {
	defer s.bg.Done()
	tick := time.NewTicker(s.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-tick.C:
			s.evictExpired(time.Now())
		}
	}
}

// evictExpired drops every terminal job finished before the retention
// cutoff — except jobs still occupying a queue slot (cancelled while
// queued, not yet drained by a worker), which stay until dequeued so
// the worker never retires a ghost the store no longer knows. Each
// shard is swept under its own lock; the janitor never stalls the
// whole service.
func (s *Server) evictExpired(now time.Time) {
	cutoff := now.Add(-s.cfg.ResultTTL)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, j := range sh.jobs {
			if j.evictable(cutoff) {
				delete(sh.jobs, id)
				sh.retained.Add(-1)
				s.evicted.Add(1)
			}
		}
		sh.mu.Unlock()
	}
}
