// Package service turns the solver library into a long-running
// scheduling service: clients submit solve jobs (an ETC instance spec
// or an inline matrix, a registered solver name, and a budget), jobs
// queue on a bounded channel, and a fixed pool of workers executes
// them through solver.Lookup with a per-job context, so cancellation
// and deadlines ride the shared budget engine.
//
// Around that core the package provides a job manager with stable job
// IDs and a queued → running → done/failed/cancelled lifecycle, result
// retention with TTL-based eviction, an LRU instance cache (the twelve
// benchmark ETC matrices are generated once and shared across jobs),
// and per-solver throughput/latency counters exposed as a stats
// snapshot.
//
// Server is embeddable from Go (re-exported on the gridsched facade);
// Handler exposes the same operations as an HTTP/JSON API, served
// stand-alone by cmd/gridschedd.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/solver"

	// The service dispatches by registry name; force-link every
	// self-registering solver family so a Server embedded without the
	// gridsched facade still sees the full registry.
	_ "gridsched/internal/baselines"
	_ "gridsched/internal/core"
	_ "gridsched/internal/heuristics"
	_ "gridsched/internal/islands"
	_ "gridsched/internal/portfolio"
	_ "gridsched/internal/tabu"
)

// Sentinel errors mapped to HTTP statuses by the handler.
var (
	// ErrQueueFull rejects a submit when the bounded job queue is at
	// capacity (backpressure; HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed rejects operations after Shutdown started.
	ErrClosed = errors.New("service: server closed")
	// ErrNotFound reports an unknown (or already evicted) job ID.
	ErrNotFound = errors.New("service: job not found")
)

// Config parameterizes a Server. The zero value is usable: every field
// falls back to the default documented on it.
type Config struct {
	// Workers is the number of concurrent solve workers (default
	// GOMAXPROCS). Each worker runs one job at a time.
	Workers int
	// QueueSize bounds the job queue; submits beyond it fail with
	// ErrQueueFull (default 64).
	QueueSize int
	// ResultTTL is how long a finished job (done, failed or cancelled)
	// stays retrievable before the janitor evicts it (default 15 min).
	ResultTTL time.Duration
	// SweepInterval is how often the janitor scans for expired results
	// (default ResultTTL/4, floored at one second).
	SweepInterval time.Duration
	// CacheSize bounds the LRU instance cache in entries (default 16 —
	// room for the whole 12-instance benchmark suite).
	CacheSize int
	// MaxDuration caps every job's wall-clock budget; specs asking for
	// more (or for no time bound at all) are clamped to it. Zero means
	// no cap.
	MaxDuration time.Duration
	// MaxMatrixEntries caps tasks×machines for any instance a job may
	// reference — a sized benchmark name ("u_c_hihi.0@4096x64") or an
	// inline matrix. Specs beyond it are rejected at Submit, bounding
	// worst-case instance-cache memory to roughly CacheSize ×
	// MaxMatrixEntries × 16 bytes. Zero means the default (1<<20
	// entries ≈ 16 MB per instance); negative disables the cap (for
	// trusted embedders like the scenario sweep).
	MaxMatrixEntries int
	// Logger receives structured job-lifecycle records (submit, start,
	// finish) with job and request IDs. Nil discards them.
	Logger *slog.Logger
	// InstanceDB, when set, is a read-only repository of pre-generated
	// instances (an instdb store) consulted before the generation cache
	// for named instances. A store hit serves a shared zero-copy view
	// with no generation, no lock and no LRU churn; names the store
	// does not hold fall back to on-demand generation through the
	// cache. The store is operator-provided and therefore trusted: a
	// stored instance is served even past MaxMatrixEntries.
	InstanceDB InstanceStore
}

// InstanceStore is the read-only instance repository the server
// consults before generating matrices on demand — implemented by
// instdb.Store and (reloadably) instdb.DB.
type InstanceStore interface {
	// Get returns the named instance and whether the store holds it.
	// Returned instances are shared and must be immutable.
	Get(name string) (*etc.Instance, bool)
	// Len is the number of instances currently held.
	Len() int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 15 * time.Minute
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.ResultTTL / 4
		if c.SweepInterval < time.Second {
			c.SweepInterval = time.Second
		}
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.MaxMatrixEntries == 0 {
		c.MaxMatrixEntries = 1 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Server is the scheduling service: a job manager, a bounded queue, a
// worker pool and an instance cache behind one embeddable API. Create
// it with New, submit with Submit, and stop it with Shutdown. All
// methods are safe for concurrent use.
type Server struct {
	cfg   Config
	cache *instanceCache
	stats *statsBook
	met   *serverMetrics
	log   *slog.Logger
	start time.Time

	baseCtx context.Context // parent of every job context
	stop    context.CancelFunc

	queue   chan *job
	workers sync.WaitGroup
	janitor sync.WaitGroup

	// storeServes counts named-instance resolutions served by the
	// configured InstanceDB (vs cache hits/misses/joins).
	storeServes atomic.Int64

	mu     sync.Mutex
	closed bool
	seq    uint64
	jobs   map[string]*job
}

// New starts a Server: its worker pool and retention janitor run until
// Shutdown.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   newInstanceCache(cfg.CacheSize),
		stats:   newStatsBook(),
		log:     cfg.Logger,
		start:   time.Now(),
		baseCtx: ctx,
		stop:    cancel,
		queue:   make(chan *job, cfg.QueueSize),
		jobs:    make(map[string]*job),
	}
	s.met = newServerMetrics(s)
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	s.janitor.Add(1)
	go s.sweepLoop()
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Submit validates the spec, assigns a job ID and enqueues the job.
// It fails fast: an unknown solver or a bad instance spec is reported
// here (never as a failed job), and a full queue returns ErrQueueFull
// so callers can apply backpressure.
func (s *Server) Submit(spec JobSpec) (Job, error) {
	j, err := s.submit(spec)
	if err != nil {
		s.met.rejected.With(rejectReason(err)).Inc()
		s.log.Warn("job rejected",
			"solver", spec.Solver, "instance", spec.Instance,
			"request_id", spec.RequestID, "error", err.Error())
		return Job{}, err
	}
	s.met.submitted.Inc()
	s.log.Info("job submitted",
		"job_id", j.ID, "solver", j.Solver, "instance", j.Instance,
		"request_id", spec.RequestID)
	return j, nil
}

func (s *Server) submit(spec JobSpec) (Job, error) {
	sv, err := solver.Lookup(spec.Solver)
	if err != nil {
		return Job{}, err
	}
	inst, err := s.resolveInstance(spec)
	if err != nil {
		return Job{}, err
	}
	budget := spec.Budget
	if s.cfg.MaxDuration > 0 && (budget.MaxDuration <= 0 || budget.MaxDuration > s.cfg.MaxDuration) {
		budget.MaxDuration = s.cfg.MaxDuration
	}
	if spec.Seed != 0 {
		sv = solver.WithSeed(sv, spec.Seed)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Job{}, ErrClosed
	}
	s.seq++
	j := newJob(fmt.Sprintf("j%08d", s.seq), spec, sv, inst, budget, s.baseCtx)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		j.release()
		return Job{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.mu.Unlock()
	return j.snapshot(), nil
}

// Job returns a snapshot of the identified job.
func (s *Server) Job(id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// Wait blocks until the identified job reaches a terminal state (done,
// failed or cancelled) and returns its final snapshot, or returns the
// context's error if ctx fires first. It is the synchronous companion
// to the polling Job accessor: batch harnesses (the scenario sweep)
// submit a wave of jobs and Wait on each instead of spinning.
//
// Wait does not extend retention: a job evicted by the janitor before
// Wait is called reports ErrNotFound.
func (s *Server) Wait(ctx context.Context, id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, ErrNotFound
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
}

// Jobs snapshots every retained job, newest first.
func (s *Server) Jobs() []Job {
	s.mu.Lock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.snapshot())
	}
	s.mu.Unlock()
	sortJobs(out)
	return out
}

// Cancel requests cancellation of a job. A queued job is marked
// cancelled immediately (workers skip it); a running job has its
// context cancelled, which stops the solver at the budget engine's
// next poll. Cancelling a finished job is a no-op. The returned
// snapshot reflects the state after the request.
func (s *Server) Cancel(id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, ErrNotFound
	}
	j.requestCancel()
	return j.snapshot(), nil
}

// liveCounts derives the queued/running/retained gauges from the job
// map, the one authoritative source. Both Stats and the /metrics
// gauges read it, so the two surfaces cannot disagree: a job cancelled
// while queued turns terminal immediately and stops counting as
// queued everywhere at once, even though it still occupies a queue
// channel slot until a worker drains it (len(s.queue), the previous
// metric source, kept counting it and drifted from /v1/stats).
func (s *Server) liveCounts() (queued, running, retained int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		switch j.state() {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	return queued, running, len(s.jobs)
}

// Stats returns the service-level and per-solver counters.
func (s *Server) Stats() Stats {
	queued, running, retained := s.liveCounts()
	hits, misses, joins, entries := s.cache.counters()
	env := statsEnv{
		uptime:       time.Since(s.start),
		workers:      s.cfg.Workers,
		queueCap:     s.cfg.QueueSize,
		queued:       queued,
		running:      running,
		retained:     retained,
		cacheHits:    hits,
		cacheMisses:  misses,
		cacheJoins:   joins,
		cacheEntries: entries,
		storeServes:  s.storeServes.Load(),
	}
	if db := s.cfg.InstanceDB; db != nil {
		env.storeInstances = db.Len()
	}
	return s.stats.snapshot(env)
}

// BeginDrain marks the server draining without waiting: submits are
// refused with ErrClosed, the health endpoint reports 503, queued and
// running jobs continue. Call it before stopping an HTTP frontend so
// in-flight clients observe the draining state; Shutdown calls it
// implicitly. Idempotent.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.queue) // no sends after closed=true, so this is safe
	}
}

// Shutdown drains the service: submits are refused, queued jobs still
// execute, and Shutdown returns when every worker has exited — unless
// ctx expires first, in which case all in-flight jobs are cancelled
// (through their budget contexts) and the drain completes as fast as
// the solvers' cancellation polls allow. The janitor is always
// stopped. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()

	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.stop() // cancel every in-flight job, then finish the drain
		<-done
	}
	s.stop()
	s.janitor.Wait()
	return err
}

// Close is Shutdown with no deadline: it cancels in-flight work
// immediately and waits for the pool to exit.
func (s *Server) Close() error {
	s.stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		err = nil
	}
	return err
}

// worker pulls jobs off the queue until the queue is closed and
// drained. A job cancelled while queued is retired without running —
// including one whose context a forced shutdown (or a client Cancel
// racing the dequeue) already cancelled: running it anyway would make
// drain latency depend on every solver noticing the dead context, and
// zero-budget heuristics never would. Either way the job reaches a
// terminal state and releases its Server.Wait waiters.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		j.markDequeued()
		j.timeline.Mark("dispatched")
		if j.ctx.Err() != nil {
			j.requestCancel()
		}
		panicked := false
		if j.begin() {
			s.met.busy.Add(1)
			s.log.Info("job started",
				"job_id", j.id, "solver", j.spec.Solver, "instance", j.inst.Name,
				"request_id", j.spec.RequestID)
			var res *solver.Result
			var err error
			res, err, panicked = s.solve(j)
			j.finish(res, err)
			s.met.busy.Add(-1)
		}
		// Fold the retired job (ran or cancelled-while-queued) into the
		// per-solver counters and metrics.
		snap := j.snapshot()
		s.stats.finished(j.spec.Solver, snap)
		finishLabel := string(snap.State)
		if panicked {
			finishLabel = "panic"
		}
		s.met.finished.With(finishLabel).Inc()
		attrs := []any{
			"job_id", j.id, "solver", j.spec.Solver, "instance", j.inst.Name,
			"request_id", j.spec.RequestID, "state", string(snap.State),
		}
		if !snap.StartedAt.IsZero() && !snap.FinishedAt.IsZero() {
			latency := snap.FinishedAt.Sub(snap.StartedAt)
			s.met.latency.With(j.spec.Solver).Observe(latency.Seconds())
			attrs = append(attrs, "duration", latency)
		}
		if snap.Result != nil {
			s.met.evals.With(j.spec.Solver).Add(snap.Result.Evaluations)
			attrs = append(attrs, "makespan", snap.Result.Makespan,
				"evaluations", snap.Result.Evaluations)
		}
		if snap.Error != "" {
			attrs = append(attrs, "error", snap.Error)
		}
		s.log.Info("job finished", attrs...)
	}
}

// solve runs the job's solver, containing panics. A solver that
// panics must not kill the worker goroutine: before this guard the
// pool silently shrank one panic at a time, the panicking job never
// reached a terminal state, Server.Wait blocked forever and Shutdown
// hung on the worker WaitGroup. The panic value and stack become the
// job's failure error; the worker stays alive; the caller counts the
// retirement under the "panic" metric label.
func (s *Server) solve(j *job) (res *solver.Result, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			res, err = nil, fmt.Errorf("solver panic: %v\n%s", r, debug.Stack())
		}
	}()
	res, err = j.solver.Solve(j.ctx, j.inst, j.budget)
	return res, err, false
}

// sweepLoop evicts finished jobs past their retention TTL.
func (s *Server) sweepLoop() {
	defer s.janitor.Done()
	tick := time.NewTicker(s.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-tick.C:
			s.evictExpired(time.Now())
		}
	}
}

// evictExpired drops every terminal job finished before the retention
// cutoff — except jobs still occupying a queue slot (cancelled while
// queued, not yet drained by a worker), which stay until dequeued so
// the worker never retires a ghost the map no longer knows.
func (s *Server) evictExpired(now time.Time) {
	cutoff := now.Add(-s.cfg.ResultTTL)
	s.mu.Lock()
	for id, j := range s.jobs {
		if j.evictable(cutoff) {
			delete(s.jobs, id)
			s.stats.noteEvicted()
		}
	}
	s.mu.Unlock()
}
