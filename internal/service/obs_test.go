package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gridsched/internal/obs"
	"gridsched/internal/solver"
)

// scrape fetches and returns the /metrics exposition body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("GET /metrics content type = %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndpoint runs jobs through the service and asserts the
// exposition covers every family the issue requires: queue and worker
// gauges, per-solver latency histograms, cache counters, job outcome
// counters and HTTP status counts.
func TestMetricsEndpoint(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2, QueueSize: 8})

	for i := 0; i < 3; i++ {
		j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(context.Background(), j.ID); err != nil {
			t.Fatal(err)
		}
	}
	// Exercise the HTTP counter with a served request before scraping.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", "", nil); code != http.StatusOK {
		t.Fatalf("GET /v1/stats: status %d", code)
	}

	body := scrape(t, ts.URL)
	for _, want := range []string{
		"# TYPE gridsched_queue_depth gauge",
		"# TYPE gridsched_queue_capacity gauge",
		"# TYPE gridsched_workers gauge",
		"# TYPE gridsched_workers_busy gauge",
		"# TYPE gridsched_jobs_submitted_total counter",
		"gridsched_jobs_submitted_total 3",
		`gridsched_jobs_finished_total{state="done"} 3`,
		"# TYPE gridsched_job_latency_seconds histogram",
		`gridsched_job_latency_seconds_count{solver="minmin"} 3`,
		`gridsched_job_latency_seconds_bucket{solver="minmin",le="+Inf"} 3`,
		`gridsched_job_evaluations_total{solver="minmin"} 3`,
		"# TYPE gridsched_cache_hits_total counter",
		"gridsched_cache_misses_total 1",
		"gridsched_cache_hits_total 2",
		"gridsched_cache_joins_total 0",
		"gridsched_cache_entries 1",
		"gridsched_jobs_retained 3",
		"# TYPE gridsched_http_requests_total counter",
		`gridsched_http_requests_total{code="200",method="GET"}`,
		"gridsched_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nfull body:\n%s", want, body)
		}
	}
}

// TestMetricsCount429 pins that queue-full rejections surface both as
// the rejected-jobs counter and as HTTP 429 status counts.
func TestMetricsCount429(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1})

	running, err := svc.Submit(JobSpec{Solver: "test-block", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the blocker leaves the queue for the worker, then one
	// job fills the queue slot; the next submit must bounce.
	pollState(t, ts.URL, running.ID, 5*time.Second, func(j jobJSON) bool { return j.State == StateRunning })
	if _, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"}); err != nil {
		t.Fatal(err)
	}
	body := `{"solver":"minmin","instance":"u_c_hihi.0"}`
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, nil); code != http.StatusTooManyRequests {
		t.Fatalf("submit into full queue: status %d, want 429", code)
	}

	m := scrape(t, ts.URL)
	for _, want := range []string{
		`gridsched_jobs_rejected_total{reason="queue_full"} 1`,
		`gridsched_http_requests_total{code="429",method="POST"} 1`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q\nfull body:\n%s", want, m)
		}
	}
	if _, err := svc.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
}

// TestTraceEndpoint runs a real solver and checks the trace: lifecycle
// phases in order, a non-empty convergence series ending in a terminal
// event whose fitness matches the job's result.
func TestTraceEndpoint(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})

	j, err := svc.Submit(JobSpec{
		Solver:   "tabu",
		Instance: "u_c_hihi.0",
		Budget:   solver.Budget{MaxEvaluations: 2000},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := svc.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("job state = %s, want done", final.State)
	}

	var tr traceJSON
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID+"/trace", "", &tr); code != http.StatusOK {
		t.Fatalf("GET trace: status %d", code)
	}
	wantPhases := []string{"queued", "dispatched", "solving", "done"}
	if len(tr.Phases) != len(wantPhases) {
		t.Fatalf("got %d phases %v, want %v", len(tr.Phases), tr.Phases, wantPhases)
	}
	for i, p := range tr.Phases {
		if p.Phase != wantPhases[i] {
			t.Errorf("phase %d = %q, want %q", i, p.Phase, wantPhases[i])
		}
		if _, err := time.ParseDuration(p.Duration); err != nil {
			t.Errorf("phase %d duration %q unparsable: %v", i, p.Duration, err)
		}
	}
	if len(tr.Events) < 2 {
		t.Fatalf("got %d trace events, want ≥2 (an improvement and the terminal event)", len(tr.Events))
	}
	last := tr.Events[len(tr.Events)-1]
	if last.Kind != "done" {
		t.Errorf("last event kind = %q, want done", last.Kind)
	}
	if last.Fitness != final.Result.Makespan {
		t.Errorf("terminal event fitness = %v, want job makespan %v", last.Fitness, final.Result.Makespan)
	}
	prev := 0.0
	for i, ev := range tr.Events[:len(tr.Events)-1] {
		if ev.Kind != "improved" {
			t.Errorf("event %d kind = %q, want improved", i, ev.Kind)
		}
		if i > 0 && ev.Fitness >= prev {
			t.Errorf("improvement %d fitness %v not strictly below previous %v", i, ev.Fitness, prev)
		}
		prev = ev.Fitness
	}

	// Unknown jobs 404.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/nope/trace", "", nil); code != http.StatusNotFound {
		t.Errorf("GET trace for unknown job: status %d, want 404", code)
	}
}

// TestTracePortfolioLanes checks a portfolio job's convergence series
// carries per-lane labels from the constituent engines.
func TestTracePortfolioLanes(t *testing.T) {
	svc, _ := newTestServer(t, Config{Workers: 1})
	j, err := svc.Submit(JobSpec{
		Solver:   "portfolio",
		Instance: "u_c_hihi.0",
		Budget:   solver.Budget{MaxEvaluations: 4000},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), j.ID); err != nil {
		t.Fatal(err)
	}
	tr, err := svc.Trace(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("portfolio trace has no events")
	}
	lanes := map[string]bool{}
	for _, ev := range tr.Events {
		if ev.Kind == "improved" && ev.Lane != "" {
			lanes[ev.Lane] = true
		}
	}
	if len(lanes) == 0 {
		t.Errorf("no improvement event carries a lane label; events: %+v", tr.Events)
	}
	for lane := range lanes {
		switch lane {
		case "pa-cga", "tabu", "h2ll":
		default:
			t.Errorf("unexpected lane label %q", lane)
		}
	}
}

// TestRequestIDPropagation pins the request-ID pipeline: the access-log
// middleware echoes X-Request-Id, the submit handler folds it into the
// job spec, and the trace reports it.
func TestRequestIDPropagation(t *testing.T) {
	svc := New(Config{Workers: 1})
	t.Cleanup(func() { _ = svc.Close() })
	logger := slog.New(slog.DiscardHandler)
	ts := httptest.NewServer(obs.AccessLog(logger, svc.Handler()))
	t.Cleanup(ts.Close)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"solver":"minmin","instance":"u_c_hihi.0"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "req-test-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "req-test-42" {
		t.Errorf("echoed request ID = %q, want req-test-42", got)
	}
	var j jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), j.ID); err != nil {
		t.Fatal(err)
	}
	tr, err := svc.Trace(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.RequestID != "req-test-42" {
		t.Errorf("trace request ID = %q, want req-test-42", tr.RequestID)
	}

	// Without an inbound header the middleware generates a fresh ID.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"solver":"minmin","instance":"u_c_hihi.0"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.Header.Get(obs.RequestIDHeader) == "" {
		t.Error("middleware did not generate a request ID")
	}
}

// TestScrapeWhileSubmitting hammers /metrics, /v1/stats and job
// submission concurrently — the -race proof that scrape-time gauge
// funcs and hot-path counters coexist with the worker pool.
func TestScrapeWhileSubmitting(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2, QueueSize: 64})

	const submitters, scrapes = 4, 20
	var wg sync.WaitGroup
	ids := make([][]string, submitters)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"})
				if err != nil {
					t.Error(err)
					return
				}
				ids[w] = append(ids[w], j.ID)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			_ = scrape(t, ts.URL)
			_ = svc.Stats()
		}
	}()
	wg.Wait()
	for _, batch := range ids {
		for _, id := range batch {
			if _, err := svc.Wait(context.Background(), id); err != nil {
				t.Fatal(err)
			}
		}
	}
	body := scrape(t, ts.URL)
	want := fmt.Sprintf("gridsched_jobs_submitted_total %d", submitters*8)
	if !strings.Contains(body, want) {
		t.Errorf("/metrics missing %q after hammer", want)
	}
}
