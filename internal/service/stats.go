package service

import (
	"math"
	"time"
)

// SolverStats aggregates the finished jobs of one solver name.
type SolverStats struct {
	Solver    string
	Done      int64
	Failed    int64
	Cancelled int64
	// Evaluations sums the fitness evaluations of every finished run —
	// the paper's throughput currency.
	Evaluations int64
	// BusyTime sums wall time spent solving (queue wait excluded).
	BusyTime time.Duration
	// MeanLatency and MaxLatency summarize per-run solve time.
	MeanLatency time.Duration
	MaxLatency  time.Duration
	// EvalsPerSecond is the solver's aggregate evaluation throughput.
	EvalsPerSecond float64
}

// ShardStats is one shard's slice of the service: live occupancy
// gauges plus the epoch snapshot's cumulative retirement counters.
// Submitted counts jobs placed on this shard at intake; Finished
// counts jobs retired by this shard's workers (a stolen job counts on
// the thief, which is what makes imbalance visible); Stolen is the
// subset of Finished taken from another shard's queue.
type ShardStats struct {
	Shard          int
	Submitted      int64
	Finished       int64
	Stolen         int64
	Queued         int
	Running        int
	Retained       int
	QueueDepthPeak int
}

// Stats is a point-in-time snapshot of the service: live atomic gauges
// plus the latest epoch-merged counters (Epoch identifies the merge
// they came from; per-solver counters trail live work by at most one
// epoch).
type Stats struct {
	Uptime        time.Duration
	Workers       int
	QueueCapacity int
	Queued        int
	Running       int
	Retained      int
	Evicted       int64

	// Epoch is the stats coordinator's merge counter — the epoch the
	// Solvers and per-shard Finished/Stolen counters were merged at.
	Epoch uint64

	CacheHits int64
	// CacheJoins counts requests served by riding another request's
	// in-flight generation (single-flight joins) — neither a hit on a
	// cached entry nor a fresh miss.
	CacheJoins   int64
	CacheMisses  int64
	CacheEntries int

	// StoreServes counts named-instance resolutions served by the
	// configured pre-generated instance store (Config.InstanceDB),
	// split out from cache hits/misses; StoreInstances is the store's
	// current corpus size (0 when no store is configured).
	StoreServes    int64
	StoreInstances int

	Solvers []SolverStats
	Shards  []ShardStats
}

// deriveSolverStats turns one solver's raw counters into the public
// stats shape, computing the derived latency and throughput figures.
func deriveSolverStats(name string, c *solverCounters) SolverStats {
	s := SolverStats{
		Solver:      name,
		Done:        c.done,
		Failed:      c.failed,
		Cancelled:   c.cancelled,
		Evaluations: c.evaluations,
		BusyTime:    c.busy,
		MaxLatency:  c.maxLatency,
	}
	s.MeanLatency = meanLatency(c.busy, c.ran)
	s.EvalsPerSecond = safeRate(float64(c.evaluations), c.busy.Seconds())
	return s
}

// meanLatency divides defensively: a burst of heuristic jobs can
// retire with ran == 0 busy samples (or a clock too coarse to tick),
// and a mean of nothing is 0, not a division fault.
func meanLatency(busy time.Duration, ran int64) time.Duration {
	if ran <= 0 {
		return 0
	}
	return busy / time.Duration(ran)
}

// safeRate computes n per second over sec, returning 0 instead of the
// ±Inf/NaN a zero (or degenerate) denominator would produce —
// encoding/json refuses non-finite floats, so one poisoned counter
// would otherwise break the whole /v1/stats payload.
func safeRate(n, sec float64) float64 {
	if sec <= 0 {
		return 0
	}
	if r := n / sec; !math.IsInf(r, 0) && !math.IsNaN(r) {
		return r
	}
	return 0
}
