package service

import (
	"math"
	"sort"
	"sync"
	"time"
)

// SolverStats aggregates the finished jobs of one solver name.
type SolverStats struct {
	Solver    string
	Done      int64
	Failed    int64
	Cancelled int64
	// Evaluations sums the fitness evaluations of every finished run —
	// the paper's throughput currency.
	Evaluations int64
	// BusyTime sums wall time spent solving (queue wait excluded).
	BusyTime time.Duration
	// MeanLatency and MaxLatency summarize per-run solve time.
	MeanLatency time.Duration
	MaxLatency  time.Duration
	// EvalsPerSecond is the solver's aggregate evaluation throughput.
	EvalsPerSecond float64
}

// Stats is a point-in-time snapshot of the service.
type Stats struct {
	Uptime        time.Duration
	Workers       int
	QueueCapacity int
	Queued        int
	Running       int
	Retained      int
	Evicted       int64

	CacheHits int64
	// CacheJoins counts requests served by riding another request's
	// in-flight generation (single-flight joins) — neither a hit on a
	// cached entry nor a fresh miss.
	CacheJoins   int64
	CacheMisses  int64
	CacheEntries int

	// StoreServes counts named-instance resolutions served by the
	// configured pre-generated instance store (Config.InstanceDB),
	// split out from cache hits/misses; StoreInstances is the store's
	// current corpus size (0 when no store is configured).
	StoreServes    int64
	StoreInstances int

	Solvers []SolverStats
}

// statsBook accumulates per-solver counters; workers report into it as
// jobs retire.
type statsBook struct {
	mu      sync.Mutex
	evicted int64
	perName map[string]*solverCounters
}

type solverCounters struct {
	done, failed, cancelled int64
	evaluations             int64
	busy                    time.Duration
	maxLatency              time.Duration
	ran                     int64
}

func newStatsBook() *statsBook {
	return &statsBook{perName: make(map[string]*solverCounters)}
}

// finished folds a retired job's snapshot into its solver's counters.
func (b *statsBook) finished(solverName string, j Job) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.perName[solverName]
	if c == nil {
		c = &solverCounters{}
		b.perName[solverName] = c
	}
	switch j.State {
	case StateDone:
		c.done++
	case StateFailed:
		c.failed++
	case StateCancelled:
		c.cancelled++
	}
	if !j.StartedAt.IsZero() && !j.FinishedAt.IsZero() {
		latency := j.FinishedAt.Sub(j.StartedAt)
		c.busy += latency
		c.ran++
		if latency > c.maxLatency {
			c.maxLatency = latency
		}
	}
	if j.Result != nil {
		c.evaluations += j.Result.Evaluations
	}
}

func (b *statsBook) noteEvicted() {
	b.mu.Lock()
	b.evicted++
	b.mu.Unlock()
}

// statsEnv carries the server-level gauges into snapshot.
type statsEnv struct {
	uptime         time.Duration
	workers        int
	queueCap       int
	queued         int
	running        int
	retained       int
	cacheHits      int64
	cacheMisses    int64
	cacheJoins     int64
	cacheEntries   int
	storeServes    int64
	storeInstances int
}

func (b *statsBook) snapshot(env statsEnv) Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := Stats{
		Uptime:         env.uptime,
		Workers:        env.workers,
		QueueCapacity:  env.queueCap,
		Queued:         env.queued,
		Running:        env.running,
		Retained:       env.retained,
		Evicted:        b.evicted,
		CacheHits:      env.cacheHits,
		CacheJoins:     env.cacheJoins,
		CacheMisses:    env.cacheMisses,
		CacheEntries:   env.cacheEntries,
		StoreServes:    env.storeServes,
		StoreInstances: env.storeInstances,
	}
	for name, c := range b.perName {
		s := SolverStats{
			Solver:      name,
			Done:        c.done,
			Failed:      c.failed,
			Cancelled:   c.cancelled,
			Evaluations: c.evaluations,
			BusyTime:    c.busy,
			MaxLatency:  c.maxLatency,
		}
		s.MeanLatency = meanLatency(c.busy, c.ran)
		s.EvalsPerSecond = safeRate(float64(c.evaluations), c.busy.Seconds())
		out.Solvers = append(out.Solvers, s)
	}
	sort.Slice(out.Solvers, func(i, j int) bool { return out.Solvers[i].Solver < out.Solvers[j].Solver })
	return out
}

// meanLatency divides defensively: a burst of heuristic jobs can
// retire with ran == 0 busy samples (or a clock too coarse to tick),
// and a mean of nothing is 0, not a division fault.
func meanLatency(busy time.Duration, ran int64) time.Duration {
	if ran <= 0 {
		return 0
	}
	return busy / time.Duration(ran)
}

// safeRate computes n per second over sec, returning 0 instead of the
// ±Inf/NaN a zero (or degenerate) denominator would produce —
// encoding/json refuses non-finite floats, so one poisoned counter
// would otherwise break the whole /v1/stats payload.
func safeRate(n, sec float64) float64 {
	if sec <= 0 {
		return 0
	}
	if r := n / sec; !math.IsInf(r, 0) && !math.IsNaN(r) {
		return r
	}
	return 0
}
