package service

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestStatsZeroDurationJobMarshals is the regression test for the
// stats divisions: a job that retires with zero measured busy time
// (heuristics finish inside the clock's granularity) must yield zero —
// not ±Inf/NaN — rates, and the whole snapshot must survive
// encoding/json, which refuses non-finite floats.
func TestStatsZeroDurationJobMarshals(t *testing.T) {
	sh := newShard(0)
	now := time.Now()
	sh.retire("minmin", Job{
		State:       StateDone,
		StartedAt:   now,
		FinishedAt:  now, // zero-duration run
		Result:      &JobResult{Evaluations: 123},
		SubmittedAt: now,
	}, false)
	// A retired-while-queued job contributes no busy sample at all:
	// ran stays 0 for its solver.
	sh.retire("maxmin", Job{State: StateCancelled, Result: &JobResult{Evaluations: 7}}, false)

	var st Stats
	_, _, per := sh.drainDelta()
	for name, c := range per {
		st.Solvers = append(st.Solvers, deriveSolverStats(name, c))
	}
	if len(st.Solvers) != 2 {
		t.Fatalf("drained delta has %d solvers, want 2", len(st.Solvers))
	}
	for _, sv := range st.Solvers {
		if math.IsInf(sv.EvalsPerSecond, 0) || math.IsNaN(sv.EvalsPerSecond) {
			t.Fatalf("%s: EvalsPerSecond = %v, want finite", sv.Solver, sv.EvalsPerSecond)
		}
		if sv.EvalsPerSecond != 0 || sv.MeanLatency != 0 {
			t.Fatalf("%s: zero-busy counters produced rate %v / latency %v, want 0/0",
				sv.Solver, sv.EvalsPerSecond, sv.MeanLatency)
		}
	}
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("stats snapshot does not marshal: %v", err)
	}
}

func TestSafeRate(t *testing.T) {
	for _, tc := range []struct {
		n, sec, want float64
	}{
		{100, 0, 0},
		{100, -1, 0},
		{100, 2, 50},
		{0, 5, 0},
		{math.Inf(1), 1, 0},
		{math.NaN(), 1, 0},
	} {
		if got := safeRate(tc.n, tc.sec); got != tc.want {
			t.Errorf("safeRate(%v, %v) = %v, want %v", tc.n, tc.sec, got, tc.want)
		}
	}
	if got := meanLatency(time.Second, 0); got != 0 {
		t.Errorf("meanLatency(1s, 0) = %v, want 0", got)
	}
}

// TestStatsEndpointAfterHeuristicBurst drives the real path the bug
// report names: a burst of Min-min jobs (sub-microsecond solves)
// followed by GET /v1/stats must answer 200 with decodable JSON.
func TestStatsEndpointAfterHeuristicBurst(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2, QueueSize: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 16; i++ {
		j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0@64x8"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(ctx, j.ID); err != nil {
			t.Fatal(err)
		}
	}
	var body map[string]any
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", "", &body); code != http.StatusOK {
		t.Fatalf("GET /v1/stats: status %d", code)
	}
	if _, ok := body["solvers"]; !ok {
		t.Fatalf("stats body missing solvers: %v", body)
	}
}

// TestSubmitShutdownRace audits the submit/drain window under -race:
// Submit goroutines hammer the server while Shutdown drains it. Every
// job Submit accepted must reach a terminal state and release its
// Server.Wait waiter — no accepted job may be stranded queued, and no
// send may hit the closed queue.
func TestSubmitShutdownRace(t *testing.T) {
	svc := New(Config{Workers: 2, QueueSize: 8})
	spec := JobSpec{Solver: "minmin", Instance: "u_c_hihi.0@64x8"}
	// Warm the instance cache so racing submits stay cheap.
	if _, err := svc.Submit(spec); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var accepted []string
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				j, err := svc.Submit(spec)
				switch err {
				case nil:
					mu.Lock()
					accepted = append(accepted, j.ID)
					mu.Unlock()
				case ErrClosed:
					return // drain reached this goroutine
				case ErrQueueFull:
					time.Sleep(time.Millisecond)
				default:
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}()
	}

	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stop)
	wg.Wait()

	if _, err := svc.Submit(spec); err != ErrClosed {
		t.Fatalf("Submit after shutdown: %v, want ErrClosed", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, id := range accepted {
		j, err := svc.Wait(ctx, id)
		if err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
		if !j.State.Terminal() {
			t.Fatalf("accepted job %s stranded in state %s after Shutdown", id, j.State)
		}
	}
}

// TestForcedShutdownCancelsQueuedJobs pins the drain fix: when a
// forced shutdown cancels the job contexts, still-queued jobs must
// retire as cancelled — not run against a dead context (heuristics
// ignore it) and not be misfiled as failed when the solver surfaces
// ctx.Err().
func TestForcedShutdownCancelsQueuedJobs(t *testing.T) {
	svc := New(Config{Workers: 1, QueueSize: 16})
	// Occupy the lone worker so everything else stays queued.
	blocker, err := svc.Submit(JobSpec{Solver: "test-block", Instance: "u_c_hihi.0@64x8"})
	if err != nil {
		t.Fatal(err)
	}
	var queued []string
	for i := 0; i < 4; i++ {
		j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0@64x8"})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j.ID)
	}

	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range queued {
		j, err := svc.Wait(ctx, id)
		if err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
		if j.State != StateCancelled {
			t.Fatalf("queued job %s retired as %s (error %q), want cancelled", id, j.State, j.Error)
		}
	}
	// The blocker was mid-solve: cancelled, not failed.
	j, err := svc.Wait(ctx, blocker.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateCancelled {
		t.Fatalf("in-flight job retired as %s, want cancelled", j.State)
	}
}

// TestPortfolioJobPerConstituent runs a portfolio job end-to-end over
// HTTP and checks the per_constituent breakdown: one entry per
// constituent, evaluations summing to the job's counter, within the
// submitted budget.
func TestPortfolioJobPerConstituent(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var sub jobJSON
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		`{"solver":"portfolio:ga+tabu+h2ll","instance":"u_c_hihi.0@96x8","budget":{"max_evaluations":3000},"seed":7}`, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	j := pollState(t, ts.URL, sub.ID, 30*time.Second, func(j jobJSON) bool { return JobState(j.State).Terminal() })
	if j.State != StateDone {
		t.Fatalf("portfolio job ended %s (error %q)", j.State, j.Error)
	}
	if j.Result == nil || len(j.Result.PerConstituent) != 3 {
		t.Fatalf("per_constituent missing or wrong length: %+v", j.Result)
	}
	var sum int64
	names := map[string]bool{}
	for _, c := range j.Result.PerConstituent {
		sum += c.Evaluations
		names[c.Solver] = true
		if c.Busy == "" || c.Rounds < 1 {
			t.Fatalf("constituent %+v incomplete", c)
		}
	}
	if sum != j.Result.Evaluations {
		t.Fatalf("per_constituent evaluations sum %d != job evaluations %d", sum, j.Result.Evaluations)
	}
	if j.Result.Evaluations > 3000+64 {
		t.Fatalf("portfolio job spent %d evaluations against a 3000 budget", j.Result.Evaluations)
	}
	for _, want := range []string{"pa-cga", "tabu", "h2ll"} {
		if !names[want] {
			t.Fatalf("per_constituent missing %s: %v", want, names)
		}
	}

	// A single-solver job carries no per_constituent array.
	var single jobJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		`{"solver":"minmin","instance":"u_c_hihi.0@96x8"}`, &single); code != http.StatusAccepted {
		t.Fatalf("submit single: status %d", code)
	}
	j = pollState(t, ts.URL, single.ID, 10*time.Second, func(j jobJSON) bool { return JobState(j.State).Terminal() })
	if j.Result != nil && len(j.Result.PerConstituent) != 0 {
		t.Fatalf("single-solver job grew per_constituent: %+v", j.Result.PerConstituent)
	}

	// Bad portfolio specs fail fast at submit, never as failed jobs.
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		`{"solver":"portfolio:nope","instance":"u_c_hihi.0@96x8","budget":{"max_evaluations":100}}`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad portfolio spec: status %d, want 400", code)
	}
}
