package service

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/solver"
)

// panicSolver panics mid-solve — the hostile tenant every shared pool
// eventually meets. Tests use it to pin the containment contract.
type panicSolver struct{}

func (panicSolver) Name() string     { return "test-panic" }
func (panicSolver) Describe() string { return "test solver that panics immediately" }
func (panicSolver) Solve(context.Context, *etc.Instance, solver.Budget) (*solver.Result, error) {
	panic("boom: synthetic solver panic")
}

func init() { solver.Register(panicSolver{}) }

// TestSolverPanicContained pins the worker-pool containment contract:
// a panicking solver must fail its job (with the panic value and stack
// in the error), leave the pool at full strength, count under the
// panic metric label, and never wedge Shutdown. Before the recover
// guard in Server.solve, each panic silently killed one worker
// goroutine, the job never turned terminal, and Shutdown hung forever
// on the worker WaitGroup.
func TestSolverPanicContained(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2, QueueSize: 16})

	// More panics than workers: with the pre-fix goroutine leak this
	// would strand the later jobs queued forever.
	const panics = 5
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < panics; i++ {
		j, err := svc.Submit(JobSpec{Solver: "test-panic", Instance: "u_c_hihi.0"})
		if err != nil {
			t.Fatal(err)
		}
		done, err := svc.Wait(ctx, j.ID)
		if err != nil {
			t.Fatalf("Wait on panicked job %d: %v", i, err)
		}
		if done.State != StateFailed {
			t.Fatalf("panicked job state = %s, want failed", done.State)
		}
		if !strings.Contains(done.Error, "solver panic: boom") {
			t.Errorf("job error %q missing the panic value", done.Error)
		}
		if !strings.Contains(done.Error, "goroutine ") {
			t.Errorf("job error missing the stack trace:\n%s", done.Error)
		}
	}

	// The pool survived: an ordinary job still runs to completion.
	j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	done, err := svc.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("post-panic job state = %s, want done", done.State)
	}

	// Panics are split out from ordinary failures in the exposition.
	if body := scrape(t, ts.URL); !strings.Contains(body,
		fmt.Sprintf(`gridsched_jobs_finished_total{state="panic"} %d`, panics)) {
		t.Errorf("/metrics missing the panic-labelled finish count:\n%s", body)
	}
	// The stats book files them as failures of the panicking solver
	// (SyncStats forces an epoch merge: the retirements are in the shard
	// deltas by Wait-return, but not necessarily merged yet).
	for _, s := range svc.SyncStats().Solvers {
		if s.Solver == "test-panic" && s.Failed != panics {
			t.Errorf("test-panic failed count = %d, want %d", s.Failed, panics)
		}
	}

	// Shutdown must return: every worker is still alive to drain.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutCancel()
	if err := svc.Shutdown(shutCtx); err != nil {
		t.Fatalf("Shutdown after panics: %v", err)
	}
}

// TestQueueDepthSingleSource pins the accounting reconciliation: the
// gridsched_queue_depth gauge and Stats().Queued must agree even when
// jobs are cancelled while queued. The gauge used to read
// len(s.queue), which still counts a cancelled job's dead channel slot
// until a worker drains it, so the two surfaces drifted.
func TestQueueDepthSingleSource(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueSize: 8})

	blocker, err := svc.Submit(JobSpec{Solver: "test-block", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	pollState(t, ts.URL, blocker.ID, 5*time.Second, func(j jobJSON) bool { return j.State == StateRunning })

	// Three queued jobs behind the blocked worker; cancel two of them.
	// Both stay in the channel (the worker is busy), but only one is
	// still genuinely queued.
	ids := make([]string, 3)
	for i := range ids {
		j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}
	for _, id := range ids[:2] {
		if _, err := svc.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}

	if st := svc.Stats(); st.Queued != 1 {
		t.Errorf("Stats().Queued = %d, want 1 (cancelled jobs must not count)", st.Queued)
	}
	body := scrape(t, ts.URL)
	if !strings.Contains(body, "gridsched_queue_depth 1\n") {
		t.Errorf("gridsched_queue_depth disagrees with /v1/stats (want 1):\n%s",
			grepLine(body, "gridsched_queue_depth"))
	}

	// Unblock; the surviving job runs, and both surfaces settle to zero.
	if _, err := svc.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	pollState(t, ts.URL, ids[2], 10*time.Second, func(j jobJSON) bool { return j.State == StateDone })
	if st := svc.Stats(); st.Queued != 0 {
		t.Errorf("Stats().Queued after drain = %d, want 0", st.Queued)
	}
	if body := scrape(t, ts.URL); !strings.Contains(body, "gridsched_queue_depth 0\n") {
		t.Errorf("gridsched_queue_depth after drain:\n%s", grepLine(body, "gridsched_queue_depth"))
	}
}

// grepLine returns the exposition lines containing substr, for error
// messages.
func grepLine(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestJanitorSkipsQueuedGhost pins the eviction/queue reconciliation
// under a tiny TTL: a job cancelled while queued is terminal (and so
// TTL-expirable) while still occupying its queue channel slot. The
// janitor must not evict it until a worker drains the slot — the
// pre-fix sweep deleted it from the job map, and the worker later
// retired a ghost no API could see.
func TestJanitorSkipsQueuedGhost(t *testing.T) {
	// A microscopic TTL so everything terminal is immediately expired.
	svc, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4, ResultTTL: time.Millisecond})

	blocker, err := svc.Submit(JobSpec{Solver: "test-block", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	pollState(t, ts.URL, blocker.ID, 5*time.Second, func(j jobJSON) bool { return j.State == StateRunning })

	victim, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}

	// Way past the 1ms TTL — but the victim still sits in the channel,
	// so the sweep must keep it.
	time.Sleep(10 * time.Millisecond)
	svc.evictExpired(time.Now())
	j, err := svc.Job(victim.ID)
	if err != nil {
		t.Fatalf("janitor evicted a job still occupying a queue slot: %v", err)
	}
	if j.State != StateCancelled {
		t.Fatalf("victim state = %s, want cancelled", j.State)
	}

	// Release the worker; it drains the victim's slot (skipping the
	// run), after which the sweep may finally evict it.
	if _, err := svc.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		svc.evictExpired(time.Now())
		if _, err := svc.Job(victim.ID); err == ErrNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never became evictable after its queue slot drained")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := svc.Stats(); st.Evicted < 1 {
		t.Errorf("Stats().Evicted = %d, want >= 1", st.Evicted)
	}
	// The HTTP surface agrees: the evicted job is gone, not a ghost.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+victim.ID, "", nil); code != http.StatusNotFound {
		t.Errorf("evicted job GET status = %d, want 404", code)
	}
}
