package service

import (
	"sync"
	"testing"
)

func TestInstanceCacheLRU(t *testing.T) {
	c := newInstanceCache(2)

	a1, err := c.get("u_c_hihi.0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.get("u_c_lolo.0"); err != nil {
		t.Fatal(err)
	}
	// Hit: same pointer back, no regeneration.
	a2, err := c.get("u_c_hihi.0")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("cache hit returned a different instance pointer")
	}

	// Third distinct name evicts the least recently used (u_c_lolo.0).
	if _, err := c.get("u_i_hihi.0"); err != nil {
		t.Fatal(err)
	}
	hits, misses, entries := c.counters()
	if hits != 1 || misses != 3 || entries != 2 {
		t.Errorf("counters = %d hits, %d misses, %d entries; want 1/3/2", hits, misses, entries)
	}
	// u_c_lolo.0 was evicted: fetching it again is a miss.
	if _, err := c.get("u_c_lolo.0"); err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := c.counters(); misses != 4 {
		t.Errorf("misses after refetch = %d, want 4", misses)
	}

	// Unknown names propagate the generator's error and stay uncached.
	if _, err := c.get("bogus"); err == nil {
		t.Error("cache accepted an invalid instance name")
	}
}

func TestInstanceCacheConcurrent(t *testing.T) {
	c := newInstanceCache(4)
	var wg sync.WaitGroup
	ptrs := make([]interface{}, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inst, err := c.get("u_s_hilo.0")
			if err != nil {
				t.Error(err)
				return
			}
			ptrs[i] = inst
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(ptrs); i++ {
		if ptrs[i] != ptrs[0] {
			t.Fatal("concurrent gets for one name returned different instances")
		}
	}
}
