package service

import (
	"errors"
	"sync"
	"testing"
)

func TestInstanceCacheLRU(t *testing.T) {
	c := newInstanceCache(2)

	a1, err := c.get("u_c_hihi.0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.get("u_c_lolo.0"); err != nil {
		t.Fatal(err)
	}
	// Hit: same pointer back, no regeneration.
	a2, err := c.get("u_c_hihi.0")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("cache hit returned a different instance pointer")
	}

	// Third distinct name evicts the least recently used (u_c_lolo.0).
	if _, err := c.get("u_i_hihi.0"); err != nil {
		t.Fatal(err)
	}
	hits, misses, _, entries := c.counters()
	if hits != 1 || misses != 3 || entries != 2 {
		t.Errorf("counters = %d hits, %d misses, %d entries; want 1/3/2", hits, misses, entries)
	}
	// u_c_lolo.0 was evicted: fetching it again is a miss.
	if _, err := c.get("u_c_lolo.0"); err != nil {
		t.Fatal(err)
	}
	if _, misses, _, _ := c.counters(); misses != 4 {
		t.Errorf("misses after refetch = %d, want 4", misses)
	}

	// Unknown names propagate the generator's error and stay uncached.
	if _, err := c.get("bogus"); err == nil {
		t.Error("cache accepted an invalid instance name")
	}
}

// TestInstanceCacheFailedJoinAccounting pins the accounting of
// single-flight joins: a waiter that joins a pending generation counts
// as a join only if the generation succeeds. A failed join is neither
// a join nor a hit (no instance was served) nor a second miss (the
// initiating caller already counted the flight), so an error storm on
// one bad name cannot inflate any counter.
func TestInstanceCacheFailedJoinAccounting(t *testing.T) {
	// A sized name whose dimensions fail validation: the initiating
	// caller's generation errors, counting exactly one miss.
	const bad = "u_c_hihi.0@99999999x99999999"
	c := newInstanceCache(2)
	if _, err := c.get(bad); err == nil {
		t.Fatal("oversized instance name generated successfully")
	}
	if hits, misses, joins, _ := c.counters(); hits != 0 || misses != 1 || joins != 0 {
		t.Fatalf("after failed generation: %d hits, %d misses, %d joins; want 0/1/0", hits, misses, joins)
	}

	// A waiter joining a pending flight that fails: the pending entry is
	// installed by hand so the join is deterministic (no race against a
	// fast generator). The waiter must report the error and leave both
	// counters untouched.
	// The entry is installed before get runs on this goroutine, so the
	// join is certain; the helper then fails the flight (p.err is
	// visible to the waiter via the channel close, mirroring the real
	// generation path).
	p := &pendingGen{done: make(chan struct{})}
	c.mu.Lock()
	c.pending[bad] = p
	c.mu.Unlock()
	go func() {
		p.err = errGenerationFailed
		c.mu.Lock()
		delete(c.pending, bad)
		c.mu.Unlock()
		close(p.done)
	}()
	if _, err := c.get(bad); err != errGenerationFailed {
		t.Fatalf("joined waiter error = %v, want %v", err, errGenerationFailed)
	}
	if hits, misses, joins, _ := c.counters(); hits != 0 || misses != 1 || joins != 0 {
		t.Fatalf("after failed join: %d hits, %d misses, %d joins; want 0/1/0 (failed joins count as nothing)", hits, misses, joins)
	}

	// A plain entry hit (second get of a cached name) is a hit, not a
	// join.
	if _, err := c.get("u_c_hihi.0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.get("u_c_hihi.0"); err != nil {
		t.Fatal(err)
	}
	if hits, misses, joins, _ := c.counters(); hits != 1 || misses != 2 || joins != 0 {
		t.Fatalf("after entry hit: %d hits, %d misses, %d joins; want 1/2/0", hits, misses, joins)
	}
}

// TestInstanceCacheSuccessfulJoinCountsAsJoin pins the hit-vs-join
// distinction: a waiter served by riding another request's in-flight
// generation increments joins, not hits. The pending entry is
// installed by hand so the join is deterministic.
func TestInstanceCacheSuccessfulJoinCountsAsJoin(t *testing.T) {
	const name = "u_c_hihi.0"
	c := newInstanceCache(2)

	// Generate the real instance up front (through a second cache so
	// counters on c stay clean), then hand-install a pending flight
	// that resolves to it.
	inst, err := newInstanceCache(2).get(name)
	if err != nil {
		t.Fatal(err)
	}
	p := &pendingGen{done: make(chan struct{})}
	c.mu.Lock()
	c.pending[name] = p
	c.mu.Unlock()
	go func() {
		p.inst = inst
		c.mu.Lock()
		delete(c.pending, name)
		c.mu.Unlock()
		close(p.done)
	}()

	got, err := c.get(name)
	if err != nil {
		t.Fatal(err)
	}
	if got != inst {
		t.Error("join returned a different instance pointer")
	}
	if hits, misses, joins, _ := c.counters(); hits != 0 || misses != 0 || joins != 1 {
		t.Fatalf("after successful join: %d hits, %d misses, %d joins; want 0/0/1", hits, misses, joins)
	}
}

func TestInstanceCacheConcurrent(t *testing.T) {
	c := newInstanceCache(4)
	var wg sync.WaitGroup
	ptrs := make([]interface{}, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inst, err := c.get("u_s_hilo.0")
			if err != nil {
				t.Error(err)
				return
			}
			ptrs[i] = inst
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(ptrs); i++ {
		if ptrs[i] != ptrs[0] {
			t.Fatal("concurrent gets for one name returned different instances")
		}
	}
}

// errGenerationFailed is the sentinel used by the deterministic
// failed-join test above.
var errGenerationFailed = errors.New("generation failed")
