package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
	"gridsched/internal/solver"
)

// blockingSolver runs until its context is cancelled, then returns a
// valid (random) schedule. Tests use it to hold a worker or a queue
// slot deterministically.
type blockingSolver struct{}

func (blockingSolver) Name() string     { return "test-block" }
func (blockingSolver) Describe() string { return "test solver that blocks until cancelled" }
func (blockingSolver) Solve(ctx context.Context, inst *etc.Instance, _ solver.Budget) (*solver.Result, error) {
	<-ctx.Done()
	best := schedule.NewRandom(inst, rng.New(1))
	return &solver.Result{Best: best, BestFitness: best.Makespan()}, nil
}

func init() { solver.Register(blockingSolver{}) }

// newTestServer returns a started Server plus its httptest frontend,
// both torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := svc.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return svc, ts
}

// doJSON performs a request and decodes the JSON response body into out
// (when non-nil), returning the status code.
func doJSON(t *testing.T, method, url string, body string, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// pollState polls GET /v1/jobs/{id} until the predicate holds or the
// timeout expires, returning the last snapshot.
func pollState(t *testing.T, base, id string, timeout time.Duration, pred func(jobJSON) bool) jobJSON {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var j jobJSON
	for {
		if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, "", &j); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if pred(j) {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not reach expected state in %v (last: %s)", id, timeout, j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEndToEndHTTP submits a job over HTTP, polls it to completion and
// reads the result, the solver listing and the stats — the service's
// whole happy path through the real mux.
func TestEndToEndHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueSize: 8})

	var sub jobJSON
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		`{"solver":"minmin","instance":"u_c_hihi.0"}`, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if sub.ID == "" || sub.Solver != "minmin" || sub.Instance != "u_c_hihi.0" {
		t.Fatalf("submit echo wrong: %+v", sub)
	}

	j := pollState(t, ts.URL, sub.ID, 10*time.Second, func(j jobJSON) bool { return JobState(j.State).Terminal() })
	if j.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", j.State, j.Error)
	}
	if j.Result == nil || j.Result.Makespan <= 0 {
		t.Fatalf("missing or empty result: %+v", j.Result)
	}
	if j.Result.Assignment != nil {
		t.Fatalf("assignment included without ?include=assignment")
	}

	// The assignment rides only on request, and has one entry per task.
	var withAssign jobJSON
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID+"?include=assignment", "", &withAssign)
	if got := len(withAssign.Result.Assignment); got != j.Tasks {
		t.Fatalf("assignment has %d entries, want %d", got, j.Tasks)
	}

	// Solver listing includes the whole registered family.
	var solvers struct {
		Solvers []struct{ Name, Description string } `json:"solvers"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/solvers", "", &solvers)
	names := map[string]bool{}
	for _, s := range solvers.Solvers {
		names[s.Name] = true
	}
	for _, want := range []string{"pa-cga", "minmin", "tabu", "struggle"} {
		if !names[want] {
			t.Errorf("solver listing missing %q", want)
		}
	}

	// Stats reflect the finished job. The per-solver counters are
	// epoch-merged, so they may trail the job's terminal state by a
	// merge; poll briefly rather than assuming instant visibility.
	var stats struct {
		Epoch   uint64 `json:"epoch"`
		Shards  []any  `json:"shards"`
		Solvers []struct {
			Solver string `json:"solver"`
			Done   int64  `json:"done"`
		} `json:"solvers"`
	}
	found := false
	for deadline := time.Now().Add(5 * time.Second); !found && time.Now().Before(deadline); {
		doJSON(t, http.MethodGet, ts.URL+"/v1/stats", "", &stats)
		for _, s := range stats.Solvers {
			if s.Solver == "minmin" && s.Done == 1 {
				found = true
			}
		}
		if !found {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !found {
		t.Errorf("stats missing minmin done=1: %+v", stats.Solvers)
	}
	if found && stats.Epoch == 0 {
		t.Errorf("stats carry merged counters but epoch 0")
	}
	if len(stats.Shards) == 0 {
		t.Errorf("stats missing per-shard breakdown")
	}

	// Health is OK while serving.
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", nil); code != http.StatusOK {
		t.Errorf("healthz: status %d", code)
	}
}

// TestConcurrentJobs pushes many jobs through a small pool and checks
// they all complete and that the instance cache deduplicates the
// benchmark matrix generation.
func TestConcurrentJobs(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 4, QueueSize: 32})

	const n = 12
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sub jobJSON
			body := fmt.Sprintf(`{"solver":"minmin","instance":"u_i_hihi.0","seed":%d}`, i+1)
			if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &sub); code != http.StatusAccepted {
				errs <- fmt.Errorf("submit %d: status %d", i, code)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, id := range ids {
		j := pollState(t, ts.URL, id, 20*time.Second, func(j jobJSON) bool { return JobState(j.State).Terminal() })
		if j.State != StateDone {
			t.Fatalf("job %s: state %s (error %q)", id, j.State, j.Error)
		}
	}

	st := svc.Stats()
	if st.CacheMisses != 1 || st.CacheHits != n-1 {
		t.Errorf("cache hits/misses = %d/%d, want %d/1", st.CacheHits, st.CacheMisses, n-1)
	}
}

// TestCancelMidSolve runs a real solver (PA-CGA) under a long budget
// and cancels it over HTTP mid-run: the DELETE must stop the solver
// through its budget context long before the budget would.
func TestCancelMidSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	var sub jobJSON
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		`{"solver":"pa-cga","instance":"u_c_hihi.0","budget":{"max_duration":"120s"}}`, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}

	pollState(t, ts.URL, sub.ID, 10*time.Second, func(j jobJSON) bool { return j.State == StateRunning })

	start := time.Now()
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, "", nil); code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	j := pollState(t, ts.URL, sub.ID, 10*time.Second, func(j jobJSON) bool { return JobState(j.State).Terminal() })
	if j.State != StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", j.State)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the budget context is not stopping the solver", elapsed)
	}
	// A cancelled PA-CGA still reports its best-so-far schedule.
	if j.Result == nil || j.Result.Makespan <= 0 {
		t.Errorf("cancelled run lost its partial result: %+v", j.Result)
	}
}

// TestCancelQueued cancels a job that never started: it must go
// straight to cancelled and the worker must skip it.
func TestCancelQueued(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	// Occupy the only worker.
	blockJob, err := svc.Submit(JobSpec{Solver: "test-block", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	pollState(t, ts.URL, blockJob.ID, 5*time.Second, func(j jobJSON) bool { return j.State == StateRunning })

	queued, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	var cancelled jobJSON
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, "", &cancelled)
	if cancelled.State != StateCancelled {
		t.Fatalf("queued job state after cancel = %s, want cancelled", cancelled.State)
	}
	if cancelled.StartedAt != nil {
		t.Errorf("cancelled-while-queued job has a start time")
	}
}

// TestQueueFullBackpressure fills the one-slot queue behind a blocked
// worker and checks that the next submit gets 429 over HTTP (and
// ErrQueueFull from Go), then that the queue drains once unblocked.
func TestQueueFullBackpressure(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1})

	// First job occupies the worker...
	running, err := svc.Submit(JobSpec{Solver: "test-block", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	pollState(t, ts.URL, running.ID, 5*time.Second, func(j jobJSON) bool { return j.State == StateRunning })

	// ...the second fills the queue...
	queued, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}

	// ...and the third must be rejected with backpressure on both APIs.
	if _, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"}); err != ErrQueueFull {
		t.Fatalf("Submit on full queue: err = %v, want ErrQueueFull", err)
	}
	var rejected struct {
		Error string `json:"error"`
	}
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		`{"solver":"minmin","instance":"u_c_hihi.0"}`, &rejected)
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit on full queue: status %d, want 429", code)
	}
	if !strings.Contains(rejected.Error, "queue full") {
		t.Errorf("429 body = %q, want queue-full error", rejected.Error)
	}

	// Unblock the worker; both held jobs must finish.
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, "", nil)
	pollState(t, ts.URL, queued.ID, 10*time.Second, func(j jobJSON) bool { return j.State == StateDone })
}

// TestSubmitValidation exercises the fail-fast paths: bad solver, bad
// instance, conflicting and missing instance specs.
func TestSubmitValidation(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	cases := []JobSpec{
		{Solver: "no-such-solver", Instance: "u_c_hihi.0"},
		{Solver: "minmin", Instance: "not_a_class"},
		{Solver: "minmin"},
		{Solver: "minmin", Instance: "u_c_hihi.0", Matrix: &MatrixSpec{Tasks: 1, Machines: 1, ETC: []float64{1}}},
		{Solver: "minmin", Matrix: &MatrixSpec{Tasks: 2, Machines: 2, ETC: []float64{1}}}, // wrong length
	}
	for i, spec := range cases {
		if _, err := svc.Submit(spec); err == nil {
			t.Errorf("case %d: Submit accepted invalid spec %+v", i, spec)
		}
	}

	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{"solver":"nope","instance":"u_c_hihi.0"}`, nil); code != http.StatusBadRequest {
		t.Errorf("unknown solver over HTTP: status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{"solver":"minmin","instance":"u_c_hihi.0","budget":{"max_duration":"xyz"}}`, nil); code != http.StatusBadRequest {
		t.Errorf("bad duration over HTTP: status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/j99999999", "", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}

	// An inline matrix solves end to end.
	var sub jobJSON
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		`{"solver":"minmin","matrix":{"name":"tiny","tasks":2,"machines":2,"etc":[1,2,2,1]}}`, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("inline matrix submit: status %d", code)
	}
	j := pollState(t, ts.URL, sub.ID, 5*time.Second, func(j jobJSON) bool { return JobState(j.State).Terminal() })
	if j.State != StateDone || j.Result.Makespan != 1 {
		t.Fatalf("inline matrix job: state %s makespan %v, want done/1", j.State, j.Result)
	}
}

// TestResultEviction checks TTL-based retention: a finished job past
// its TTL disappears from the manager and counts as evicted.
func TestResultEviction(t *testing.T) {
	svc, _ := newTestServer(t, Config{Workers: 1, QueueSize: 4, ResultTTL: time.Hour})

	job, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := svc.Job(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Not yet expired: the janitor must keep it.
	svc.evictExpired(time.Now())
	if _, err := svc.Job(job.ID); err != nil {
		t.Fatalf("job evicted before its TTL: %v", err)
	}
	// Pretend the TTL passed.
	svc.evictExpired(time.Now().Add(2 * time.Hour))
	if _, err := svc.Job(job.ID); err != ErrNotFound {
		t.Fatalf("expired job still retrievable (err = %v)", err)
	}
	if st := svc.Stats(); st.Evicted != 1 || st.Retained != 0 {
		t.Errorf("stats after eviction: evicted=%d retained=%d, want 1/0", st.Evicted, st.Retained)
	}
}

// TestGracefulShutdown covers the drain contract: queued work still
// executes, later submits are refused, and no goroutines leak.
func TestGracefulShutdown(t *testing.T) {
	before := runtime.NumGoroutine()

	svc := New(Config{Workers: 2, QueueSize: 8})
	ids := make([]string, 4)
	for i := range ids {
		j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Every queued job ran to completion during the drain.
	for _, id := range ids {
		j, err := svc.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != StateDone {
			t.Errorf("job %s after drain: state %s, want done", id, j.State)
		}
	}
	// Submits after shutdown are refused.
	if _, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"}); err != ErrClosed {
		t.Errorf("Submit after shutdown: err = %v, want ErrClosed", err)
	}
	// Shutdown is idempotent.
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}

	waitNoLeakedGoroutines(t, before)
}

// TestDrainingVisibleOverHTTP checks that BeginDrain flips the
// client-visible state before any waiting happens: /healthz reports
// 503 and submits are refused, as the daemon relies on during its
// listener drain window.
func TestDrainingVisibleOverHTTP(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", nil); code != http.StatusOK {
		t.Fatalf("healthz before drain: status %d", code)
	}
	svc.BeginDrain()
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", nil); code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		`{"solver":"minmin","instance":"u_c_hihi.0"}`, nil); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", code)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown after BeginDrain: %v", err)
	}
}

// TestShutdownCancelsInFlight checks the deadline path: a shutdown
// whose context expires cancels running jobs instead of waiting
// forever.
func TestShutdownCancelsInFlight(t *testing.T) {
	before := runtime.NumGoroutine()

	svc := New(Config{Workers: 1, QueueSize: 4})
	j, err := svc.Submit(JobSpec{Solver: "test-block", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := svc.Job(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocking job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded", err)
	}
	snap, err := svc.Job(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCancelled {
		t.Errorf("in-flight job after forced drain: state %s, want cancelled", snap.State)
	}

	waitNoLeakedGoroutines(t, before)
}

// waitNoLeakedGoroutines gives the runtime a moment to retire workers
// and then asserts the goroutine count returned to its baseline.
func waitNoLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWait covers the synchronous companion to Job: a finished job is
// returned with its terminal snapshot, a cancelled-while-queued job
// unblocks waiters, an expired context surrenders, and unknown IDs are
// rejected.
func TestWait(t *testing.T) {
	svc := New(Config{Workers: 1, QueueSize: 8})
	defer svc.Close()

	j, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := svc.Wait(ctx, j.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got.State != StateDone || got.Result == nil {
		t.Fatalf("Wait returned state %q, result %v", got.State, got.Result)
	}
	// Waiting on an already-terminal job returns immediately.
	if again, err := svc.Wait(ctx, j.ID); err != nil || again.State != StateDone {
		t.Fatalf("re-Wait: %v, %v", again.State, err)
	}

	if _, err := svc.Wait(ctx, "j99999999"); err != ErrNotFound {
		t.Fatalf("Wait on unknown id: %v, want ErrNotFound", err)
	}

	// Occupy the single worker, queue a victim behind it, and cancel the
	// victim while queued: Wait must unblock with the cancelled snapshot.
	blocker, err := svc.Submit(JobSpec{Solver: "test-block", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	var waited Job
	go func() {
		var werr error
		waited, werr = svc.Wait(ctx, victim.ID)
		waitErr <- werr
	}()
	if _, err := svc.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	if err := <-waitErr; err != nil {
		t.Fatalf("Wait on cancelled job: %v", err)
	}
	if waited.State != StateCancelled {
		t.Fatalf("cancelled-while-queued job reported %q", waited.State)
	}
	if _, err := svc.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}

	// A context that fires first wins over the job.
	stuck, err := svc.Submit(JobSpec{Solver: "test-block", Instance: "u_c_hihi.0"})
	if err != nil {
		t.Fatal(err)
	}
	short, shortCancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer shortCancel()
	if _, err := svc.Wait(short, stuck.ID); err != context.DeadlineExceeded {
		t.Fatalf("Wait under expired context: %v", err)
	}
}

// TestMatrixSizeCap covers the server-side DoS guard: oversized
// instances — sized benchmark names or inline matrices — are rejected
// at Submit, before any generation or caching happens.
func TestMatrixSizeCap(t *testing.T) {
	svc := New(Config{Workers: 1, MaxMatrixEntries: 10000})
	defer svc.Close()

	// Within the cap: a sized name resolves and runs.
	if _, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0@100x10"}); err != nil {
		t.Fatalf("in-cap sized instance rejected: %v", err)
	}
	// Beyond the cap: rejected at submit.
	if _, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0@101x100"}); err == nil {
		t.Fatal("oversized sized instance accepted")
	}
	// The plain benchmark name (512×16 = 8192 entries) stays in cap.
	if _, err := svc.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0"}); err != nil {
		t.Fatalf("benchmark instance rejected: %v", err)
	}
	// Inline matrices honor the same cap.
	big := &MatrixSpec{Tasks: 101, Machines: 100, ETC: make([]float64, 101*100)}
	if _, err := svc.Submit(JobSpec{Solver: "minmin", Matrix: big}); err == nil {
		t.Fatal("oversized inline matrix accepted")
	}

	// A negative cap disables the guard (trusted embedders).
	open := New(Config{Workers: 1, MaxMatrixEntries: -1})
	defer open.Close()
	if _, err := open.Submit(JobSpec{Solver: "minmin", Instance: "u_c_hihi.0@200x100"}); err != nil {
		t.Fatalf("uncapped server rejected instance: %v", err)
	}
}

// TestSubmitBodyLimit covers the HTTP-layer guard: a request body past
// maxSubmitBody is refused with 413 before it is buffered into the
// decoder.
func TestSubmitBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := `{"solver":"minmin","instance":"` + strings.Repeat("a", maxSubmitBody) + `"}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body got %d, want 413", resp.StatusCode)
	}
}

// TestJobReportsEffectiveBudget pins the budget a finished job reports:
// the bounds the solver's engine actually enforced, including the
// server's MaxDuration clamp — never a misleading "unbounded" for a run
// that was in fact time-bounded.
func TestJobReportsEffectiveBudget(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, MaxDuration: time.Minute})

	// The spec asks only for an evaluation bound; the server clamps in
	// its one-minute duration cap on top.
	j, err := svc.Submit(JobSpec{
		Solver:   "tabu",
		Instance: "u_c_hihi.0",
		Budget:   solver.Budget{MaxEvaluations: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	done, err := svc.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Result == nil {
		t.Fatalf("job did not finish cleanly: %+v", done)
	}
	eff := done.Result.EffectiveBudget
	if eff.MaxEvaluations != 200 {
		t.Fatalf("EffectiveBudget.MaxEvaluations = %d, want 200", eff.MaxEvaluations)
	}
	if eff.MaxDuration <= 0 || eff.MaxDuration > time.Minute {
		t.Fatalf("EffectiveBudget.MaxDuration = %v, want the clamped (0, 1m] bound", eff.MaxDuration)
	}
	if eff.String() == "unbounded" {
		t.Fatal("effective budget renders as unbounded for a bounded run")
	}

	// And over the wire: the job JSON carries effective_budget.
	var got jobJSON
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID, "", &got); code != http.StatusOK {
		t.Fatalf("get: status %d", code)
	}
	if got.Result == nil || got.Result.EffectiveBudget == nil {
		t.Fatalf("job JSON missing effective_budget: %+v", got.Result)
	}
	if got.Result.EffectiveBudget.MaxEvaluations != 200 || got.Result.EffectiveBudget.MaxDuration == "" {
		t.Fatalf("effective_budget JSON = %+v, want evals 200 and a duration", got.Result.EffectiveBudget)
	}
}
