package service

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"gridsched/internal/etc"
	"gridsched/internal/obs"
	"gridsched/internal/solver"
)

// JobState is the lifecycle state of a job: queued → running →
// done | failed | cancelled.
type JobState string

// The job lifecycle states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (st JobState) Terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCancelled
}

// JobSpec is a solve request: which solver, on which instance, under
// what budget. Exactly one of Instance (a benchmark class name,
// resolved through the instance cache) or Matrix (an inline ETC
// matrix) must be set.
type JobSpec struct {
	// Solver is the registry name to dispatch to (see solver.Names).
	Solver string
	// Instance names a Braun benchmark instance, e.g. "u_c_hihi.0".
	Instance string
	// Matrix is an inline instance; it bypasses the cache.
	Matrix *MatrixSpec
	// Budget bounds the run; the server may clamp MaxDuration.
	Budget solver.Budget
	// Seed, when non-zero, reseeds the solver (see solver.WithSeed).
	Seed uint64
	// RequestID, when set (the HTTP layer propagates X-Request-Id),
	// ties the job to the originating request in logs and traces.
	RequestID string
}

// MatrixSpec is an inline ETC matrix: row-major tasks×machines
// expected execution times.
type MatrixSpec struct {
	Name     string
	Tasks    int
	Machines int
	ETC      []float64
}

// Job is an immutable snapshot of one job's state, safe to retain and
// serialize. Result is non-nil once the job produced one (done, or
// cancelled mid-run with a partial best).
type Job struct {
	ID       string
	Solver   string
	Instance string
	Tasks    int
	Machines int
	Budget   solver.Budget
	Seed     uint64
	State    JobState
	// RequestID is the submitting request's ID ("" for direct embeds).
	RequestID string

	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time

	// Error holds the failure message for StateFailed.
	Error  string
	Result *JobResult
}

// Wait is how long the job sat in the queue (zero while queued).
func (j Job) Wait() time.Duration {
	if j.StartedAt.IsZero() {
		return 0
	}
	return j.StartedAt.Sub(j.SubmittedAt)
}

// JobResult is the client-facing result shape: the schedule's quality
// metrics, the solver's work counters, and the task→machine
// assignment.
type JobResult struct {
	Makespan         float64
	Flowtime         float64
	Utilization      float64
	ImbalanceCV      float64
	Evaluations      int64
	Generations      int64
	LocalSearchMoves int64
	Duration         time.Duration
	// EffectiveBudget is the budget the solver actually enforced,
	// including any context deadline absorbed by the stop engine — the
	// submitted Job.Budget alone reads "unbounded" in that case.
	EffectiveBudget solver.Budget
	// PerConstituent, for composite (portfolio) jobs, breaks the run
	// down per constituent solver: evaluations, busy time, restart
	// rounds and incumbent contributions. Nil for single-solver jobs.
	PerConstituent []solver.ConstituentResult
	Assignment     []int
}

// job is the manager's mutable record behind Job snapshots. id is
// assigned under the owning shard's lock at enqueue and immutable
// afterwards; home is the owning shard, whose live gauges the state
// transitions below keep current.
type job struct {
	id     string
	spec   JobSpec
	solver solver.Solver
	inst   *etc.Instance
	budget solver.Budget
	home   *shard

	ctx    context.Context
	cancel context.CancelFunc

	// timeline records lifecycle marks (queued → dispatched → solving →
	// terminal state); trace captures the solver's convergence events
	// through the observer attached to ctx. Both are concurrency-safe
	// and read by Server.Trace while the job runs.
	timeline obs.Timeline
	trace    *obs.Recorder

	// done is closed exactly once, when the job reaches a terminal
	// state; Server.Wait blocks on it.
	done chan struct{}

	mu        sync.Mutex
	st        JobState
	cancelReq bool
	// dequeued records that a worker pulled the job off the queue
	// channel. A job cancelled while queued turns terminal immediately
	// but still occupies its channel slot until a worker drains it; the
	// janitor must not evict such a job, or the worker would later
	// retire a ghost the job map no longer knows (and Job/Wait/Trace
	// would 404 a job the service still holds a reference to).
	dequeued  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *solver.Result
	err       error
}

func newJob(spec JobSpec, sv solver.Solver, inst *etc.Instance, b solver.Budget, parent context.Context, home *shard) *job {
	ctx, cancel := context.WithCancel(parent)
	trace := obs.NewRecorder(0)
	j := &job{
		spec:   spec,
		solver: sv,
		inst:   inst,
		budget: b,
		home:   home,
		// Every job carries its trace recorder as the solve context's
		// observer, so any engine the solver builds emits its
		// convergence events into the job's trace.
		ctx:       solver.WithObserver(ctx, trace),
		cancel:    cancel,
		trace:     trace,
		done:      make(chan struct{}),
		st:        StateQueued,
		submitted: time.Now(),
	}
	j.timeline.Mark("queued")
	return j
}

// closeDoneLocked signals waiters once the job is terminal. Callers
// hold j.mu; the select makes the close idempotent across the two
// terminal transitions (finish, and requestCancel on a queued job).
func (j *job) closeDoneLocked() {
	select {
	case <-j.done:
	default:
		close(j.done)
	}
}

// begin transitions queued → running; it returns false when the job
// was cancelled while queued, in which case the worker must skip it.
func (j *job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.st != StateQueued {
		return false
	}
	j.st = StateRunning
	j.started = time.Now()
	j.home.queued.Add(-1)
	j.home.running.Add(1)
	j.timeline.Mark("solving")
	return true
}

// finish records the solver's outcome. Cancellation wins over the
// solver's return: a run that was asked to stop reports StateCancelled
// whether the solver surfaced its best-so-far (partial but error-free)
// or surfaced the context error itself — a zero-budget heuristic that
// noticed the cancel and returned ctx.Err() was previously misfiled as
// StateFailed. A genuine solver error still reports StateFailed even
// when a cancel raced it, so failure detail is never masked.
//
// finish does NOT release Wait waiters: the worker folds the retired
// job into the stats delta and metrics first and then calls
// signalDone, so a Wait-then-read of any counter observes the job.
func (j *job) finish(res *solver.Result, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	j.result = res
	cancelled := j.cancelReq || j.ctx.Err() != nil
	switch {
	case err != nil && !(cancelled && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))):
		j.st = StateFailed
		j.err = err
	case cancelled:
		j.st = StateCancelled
	default:
		j.st = StateDone
	}
	j.home.running.Add(-1)
	j.timeline.Mark(string(j.st))
	j.mu.Unlock()
	j.cancel() // release the context's resources
}

// signalDone releases Wait waiters; idempotent (a job cancelled while
// queued already closed done in requestCancel).
func (j *job) signalDone() {
	j.mu.Lock()
	j.closeDoneLocked()
	j.mu.Unlock()
}

// requestCancel marks the job for cancellation. A queued job is
// finalized on the spot; a running one is signalled through its
// context and finalized by finish.
func (j *job) requestCancel() {
	j.mu.Lock()
	if j.st.Terminal() {
		j.mu.Unlock()
		return
	}
	j.cancelReq = true
	if j.st == StateQueued {
		j.st = StateCancelled
		j.finished = time.Now()
		j.home.queued.Add(-1)
		j.timeline.Mark(string(StateCancelled))
		j.closeDoneLocked()
	}
	j.mu.Unlock()
	j.cancel()
}

// release frees the job's context when it was never enqueued.
func (j *job) release() { j.cancel() }

func (j *job) state() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st
}

// markDequeued records that a worker drained the job from the queue
// channel; from here on the janitor may evict it once terminal.
func (j *job) markDequeued() {
	j.mu.Lock()
	j.dequeued = true
	j.mu.Unlock()
}

// evictable reports whether the janitor may drop the job: terminal,
// finished before the retention cutoff, and no longer sitting in the
// queue channel.
func (j *job) evictable(cutoff time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.Terminal() && j.dequeued && j.finished.Before(cutoff)
}

// snapshot builds the public view under the job lock.
func (j *job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := Job{
		ID:          j.id,
		Solver:      j.spec.Solver,
		Instance:    j.inst.Name,
		Tasks:       j.inst.T,
		Machines:    j.inst.M,
		Budget:      j.budget,
		Seed:        j.spec.Seed,
		State:       j.st,
		RequestID:   j.spec.RequestID,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
	if j.err != nil {
		out.Error = j.err.Error()
	}
	if r := j.result; r != nil && r.Best != nil {
		out.Result = &JobResult{
			Makespan:         r.BestFitness,
			Flowtime:         r.Best.Flowtime(),
			Utilization:      r.Best.Utilization(),
			ImbalanceCV:      r.Best.ImbalanceCV(),
			Evaluations:      r.Evaluations,
			Generations:      r.Generations,
			LocalSearchMoves: r.LocalSearchMoves,
			Duration:         r.Duration,
			EffectiveBudget:  r.EffectiveBudget,
			PerConstituent:   append([]solver.ConstituentResult(nil), r.Constituents...),
			Assignment:       append([]int(nil), r.Best.S...),
		}
	}
	return out
}

// sortJobs orders snapshots newest first. IDs are monotonic only
// within a shard, so ordering keys on the submit time, with the ID as
// a deterministic tie-break.
func sortJobs(jobs []Job) {
	sort.Slice(jobs, func(a, b int) bool {
		if !jobs[a].SubmittedAt.Equal(jobs[b].SubmittedAt) {
			return jobs[a].SubmittedAt.After(jobs[b].SubmittedAt)
		}
		return jobs[a].ID > jobs[b].ID
	})
}
