package service

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// shard is one slice of the service core: a local job store, a local
// FIFO run queue and local stats, owned by the workers pinned to it.
// Jobs are placed on a shard at Submit (round-robin) and carry the
// shard index in their ID, so every later operation — dispatch, state
// transition, Cancel, Job, Wait, Trace, eviction — touches only this
// shard's state. Cross-shard traffic exists in exactly two places:
// idle workers stealing queued jobs from loaded neighbors, and the
// stats coordinator draining each shard's delta once per epoch.
type shard struct {
	idx int

	// mu guards the job store and the run queue. It is shard-local:
	// submits, dispatches and lookups on different shards never contend.
	mu   sync.Mutex
	seq  uint64
	jobs map[string]*job
	q    []*job // FIFO; q[head:] are waiting jobs
	head int

	// wake holds one pending wakeup for this shard's pinned workers. A
	// failed try-send means a wakeup is already pending, in which case
	// the submit spills its wakeup to the server-wide channel so an
	// idle worker on another shard can come steal.
	wake chan struct{}

	// Live gauges, updated on job state transitions and read lock-free
	// by Stats and the /metrics gauge funcs. They are tied to the job
	// state machine (a job cancelled while queued leaves `queued` even
	// though it still occupies a queue slot), so the gauges can never
	// drift from the states the job API reports.
	queued    atomic.Int64
	running   atomic.Int64
	retained  atomic.Int64
	peakDepth atomic.Int64
	submitted atomic.Int64

	// delta accumulates retirement counters between epoch merges; the
	// coordinator drains and resets it each epoch. Workers pinned to
	// this shard fold every job they retire (their own or stolen) here,
	// so the hot path takes only this shard-local lock, never a global
	// stats lock.
	delta shardDelta
}

// shardDelta is the since-last-epoch retirement ledger of one shard.
type shardDelta struct {
	mu        sync.Mutex
	finished  int64 // jobs retired by this shard's workers
	stolen    int64 // of those, jobs taken from another shard's queue
	perSolver map[string]*solverCounters
}

func newShard(idx int) *shard {
	return &shard{
		idx:  idx,
		jobs: make(map[string]*job),
		wake: make(chan struct{}, 1),
		delta: shardDelta{
			perSolver: make(map[string]*solverCounters),
		},
	}
}

// pop removes and returns the oldest queued job, or nil when the queue
// is empty. Callers own the global queue-length decrement.
func (sh *shard) pop() *job {
	sh.mu.Lock()
	if sh.head >= len(sh.q) {
		sh.mu.Unlock()
		return nil
	}
	j := sh.q[sh.head]
	sh.q[sh.head] = nil
	sh.head++
	if sh.head == len(sh.q) {
		sh.q = sh.q[:0]
		sh.head = 0
	}
	sh.mu.Unlock()
	return j
}

// noteQueued bumps the queued gauge and folds the new depth into the
// peak watermark.
func (sh *shard) noteQueued() {
	d := sh.queued.Add(1)
	for {
		p := sh.peakDepth.Load()
		if d <= p || sh.peakDepth.CompareAndSwap(p, d) {
			return
		}
	}
}

// retire folds one retired job into the shard's epoch delta. stolen
// marks a job this shard's worker took from another shard's queue.
func (sh *shard) retire(solverName string, snap Job, stolen bool) {
	d := &sh.delta
	d.mu.Lock()
	d.finished++
	if stolen {
		d.stolen++
	}
	c := d.perSolver[solverName]
	if c == nil {
		c = &solverCounters{}
		d.perSolver[solverName] = c
	}
	c.fold(snap)
	d.mu.Unlock()
}

// drainDelta moves the delta out for an epoch merge, resetting it.
func (sh *shard) drainDelta() (finished, stolen int64, perSolver map[string]*solverCounters) {
	d := &sh.delta
	d.mu.Lock()
	finished, stolen = d.finished, d.stolen
	d.finished, d.stolen = 0, 0
	if len(d.perSolver) > 0 {
		perSolver = d.perSolver
		d.perSolver = make(map[string]*solverCounters)
	}
	d.mu.Unlock()
	return finished, stolen, perSolver
}

// jobID renders a shard-qualified job ID. The shard index rides in the
// prefix so every by-ID operation routes straight to the owning shard.
func jobID(shard int, seq uint64) string {
	return fmt.Sprintf("j%d-%08d", shard, seq)
}

// parseShardID extracts the shard index from a job ID ("j3-00000042").
// Malformed IDs report ok=false; callers answer ErrNotFound, which is
// also what a well-formed ID for an evicted job gets.
func parseShardID(id string) (shard int, ok bool) {
	if len(id) < 2 || id[0] != 'j' {
		return 0, false
	}
	dash := strings.IndexByte(id, '-')
	if dash < 2 {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:dash])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// solverCounters aggregates the retired jobs of one solver name —
// accumulated per shard between epochs, merged into the cumulative
// book by the coordinator.
type solverCounters struct {
	done, failed, cancelled int64
	evaluations             int64
	busy                    time.Duration
	maxLatency              time.Duration
	ran                     int64
}

// fold adds one retired job's snapshot to the counters.
func (c *solverCounters) fold(j Job) {
	switch j.State {
	case StateDone:
		c.done++
	case StateFailed:
		c.failed++
	case StateCancelled:
		c.cancelled++
	}
	if !j.StartedAt.IsZero() && !j.FinishedAt.IsZero() {
		latency := j.FinishedAt.Sub(j.StartedAt)
		c.busy += latency
		c.ran++
		if latency > c.maxLatency {
			c.maxLatency = latency
		}
	}
	if j.Result != nil {
		c.evaluations += j.Result.Evaluations
	}
}

// add merges another counter set into this one.
func (c *solverCounters) add(o *solverCounters) {
	c.done += o.done
	c.failed += o.failed
	c.cancelled += o.cancelled
	c.evaluations += o.evaluations
	c.busy += o.busy
	c.ran += o.ran
	if o.maxLatency > c.maxLatency {
		c.maxLatency = o.maxLatency
	}
}
