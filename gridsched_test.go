package gridsched

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestGenerateInstanceAndRun(t *testing.T) {
	in, err := GenerateInstance("u_i_hihi.0")
	if err != nil {
		t.Fatal(err)
	}
	if in.T != 512 || in.M != 16 {
		t.Fatalf("benchmark dims %dx%d", in.T, in.M)
	}
	p := DefaultParams()
	p.GridW, p.GridH = 8, 8
	p.Threads = 2
	p.MaxEvaluations = 2000
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness <= 0 || !res.Best.Complete() {
		t.Fatal("degenerate result")
	}
}

func TestFacadeHeuristics(t *testing.T) {
	in, err := GenerateInstance("u_c_lolo.0")
	if err != nil {
		t.Fatal(err)
	}
	mm := MinMin(in)
	if !mm.Complete() {
		t.Fatal("MinMin incomplete")
	}
	if MaxMin(in).Makespan() <= 0 || Sufferage(in).Makespan() <= 0 {
		t.Fatal("degenerate heuristic output")
	}
	for _, name := range HeuristicNames() {
		h, err := HeuristicByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !h(in).Complete() {
			t.Fatalf("%s produced incomplete schedule", name)
		}
	}
	if _, err := HeuristicByName("nope"); err == nil {
		t.Fatal("bogus heuristic accepted")
	}
}

func TestFacadeInstanceIO(t *testing.T) {
	in, err := Generate(GenSpec{Class: Class{Consistency: Inconsistent, TaskHet: HighHet, MachineHet: LowHet}, Tasks: 10, Machines: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteInstance(in, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(in.Name, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.T != in.T || back.M != in.M {
		t.Fatal("round trip dims changed")
	}
}

func TestFacadeBaselines(t *testing.T) {
	in, err := GenerateInstance("u_s_lohi.0")
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunStruggle(in, StruggleConfig{Seed: 1, MaxEvaluations: 1000, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := RunCMALTH(in, CMALTHConfig{GridW: 8, GridH: 8, Seed: 1, MaxEvaluations: 1000, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.BestFitness <= 0 || cm.BestFitness <= 0 {
		t.Fatal("degenerate baseline results")
	}
}

func TestFacadeOperatorsByName(t *testing.T) {
	if _, err := CrossoverByName("tpx"); err != nil {
		t.Fatal(err)
	}
	if _, err := MutationByName("move"); err != nil {
		t.Fatal(err)
	}
	if _, err := NeighborhoodByName("L5"); err != nil {
		t.Fatal(err)
	}
	if got := H2LL(5).Name(); got != "h2ll/5" {
		t.Fatalf("H2LL name %q", got)
	}
}

func TestFacadeStats(t *testing.T) {
	b, err := NewBoxPlot([]float64{1, 2, 3, 4, 5})
	if err != nil || b.Median != 3 {
		t.Fatalf("box plot %+v, %v", b, err)
	}
	if _, _, err := RankSum([]float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTable1(t *testing.T) {
	if !strings.Contains(Table1(), "16x16") {
		t.Fatal("Table1 output wrong")
	}
}

func TestFacadeRunSyncAndSchedules(t *testing.T) {
	in, err := GenerateInstance("u_c_hilo.0")
	if err != nil {
		t.Fatal(err)
	}
	s := RandomSchedule(in, 3)
	if !s.Complete() {
		t.Fatal("random schedule incomplete")
	}
	empty := NewSchedule(in)
	if empty.Complete() {
		t.Fatal("fresh schedule complete")
	}
	p := DefaultParams()
	p.GridW, p.GridH = 8, 8
	p.MaxEvaluations = 1000
	res, err := RunSync(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations == 0 {
		t.Fatal("sync did nothing")
	}
}

func TestFacadeIslandsAndGenerational(t *testing.T) {
	in, err := GenerateInstance("u_i_lohi.0")
	if err != nil {
		t.Fatal(err)
	}
	isl, err := RunIslands(in, IslandConfig{Seed: 1, MaxGenerations: 5, SeedMinMin: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := isl.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	gen, err := RunGenerational(in, GenerationalConfig{Seed: 1, MaxGenerations: 5, PopSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Best.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSimulate(t *testing.T) {
	in, err := GenerateInstance("u_c_lolo.0")
	if err != nil {
		t.Fatal(err)
	}
	plan := MinMin(in)
	res, err := Simulate(in, plan, SimConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Makespan - res.PredictedMakespan; d > 1e-9*res.PredictedMakespan || d < -1e-9*res.PredictedMakespan {
		t.Fatalf("clean simulation %v != predicted %v", res.Makespan, res.PredictedMakespan)
	}
	noisy, err := Simulate(in, plan, SimConfig{Seed: 1, NoiseSigma: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Makespan == res.Makespan {
		t.Fatal("noise had no effect through the facade")
	}
}

func TestFacadeFlowtimeWeight(t *testing.T) {
	in, err := GenerateInstance("u_i_hilo.0")
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.GridW, p.GridH = 8, 8
	p.MaxEvaluations = 1000
	p.FlowtimeWeight = 0.5
	res, err := Run(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness <= 0 {
		t.Fatal("degenerate weighted fitness")
	}
}

func TestFacadeDiversityStudy(t *testing.T) {
	in, err := Generate(GenSpec{Class: Class{Consistency: Inconsistent, TaskHet: HighHet, MachineHet: HighHet}, Tasks: 48, Machines: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	series, err := DiversityStudy(in, Scale{Runs: 1, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	if !strings.Contains(RenderDiversity(series), "half-life") {
		t.Fatal("render missing half-life table")
	}
}

func TestFacadeExperimentScales(t *testing.T) {
	if CIScale().WallTime != 0 {
		t.Fatal("CI scale not deterministic")
	}
	if PaperScale().WallTime != 90*time.Second {
		t.Fatal("paper scale wrong")
	}
}
