// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4), plus the ablation benches called out in DESIGN.md.
// Budgets are scaled down so `go test -bench=.` finishes on a laptop;
// the cmd/experiments binary runs the same experiments at any scale.
package gridsched

import (
	"fmt"
	"testing"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/operators"
	"gridsched/internal/rng"
	"gridsched/internal/schedule"
)

func benchInstance(b *testing.B, name string) *Instance {
	b.Helper()
	in, err := GenerateInstance(name)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// --- Table 1: the default parameterization (one full breeding pass) ---

// BenchmarkTable1DefaultConfig runs PA-CGA under the exact Table 1
// parameterization for a fixed evaluation budget; its throughput is the
// baseline cost of the paper's configuration.
func BenchmarkTable1DefaultConfig(b *testing.B) {
	in := benchInstance(b, "u_c_hihi.0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := DefaultParams()
		p.Seed = uint64(i)
		p.MaxEvaluations = 2000
		if _, err := Run(in, p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 4: speedup (evaluations per fixed wall time vs threads/LS) ---

// BenchmarkFig4SpeedupEvaluations reproduces Fig. 4's measurement: each
// sub-benchmark runs PA-CGA for a fixed wall budget and reports achieved
// evaluations as evals/op — compare across thread counts within one
// local-search series to read the speedup.
func BenchmarkFig4SpeedupEvaluations(b *testing.B) {
	in := benchInstance(b, "u_c_hihi.0")
	const wall = 25 * time.Millisecond
	for _, ls := range []int{0, 1, 5, 10} {
		for threads := 1; threads <= 4; threads++ {
			b.Run(fmt.Sprintf("ls=%d/threads=%d", ls, threads), func(b *testing.B) {
				var evals int64
				for i := 0; i < b.N; i++ {
					p := DefaultParams()
					p.Local = operators.H2LL{Iterations: ls}
					p.Threads = threads
					p.Seed = uint64(i)
					p.MaxDuration = wall
					res, err := Run(in, p)
					if err != nil {
						b.Fatal(err)
					}
					evals += res.Evaluations
				}
				b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
			})
		}
	}
}

// --- Fig. 5: operator configurations (opx/tpx × 5/10 LS iterations) ---

// BenchmarkFig5OperatorConfigs runs each of the figure's four
// configurations at equal evaluation budgets and reports the achieved
// makespan, so the relative ranking (tpx/10 best) can be read directly.
func BenchmarkFig5OperatorConfigs(b *testing.B) {
	in := benchInstance(b, "u_i_hihi.0")
	configs := []struct {
		name string
		cx   operators.Crossover
		ls   int
	}{
		{"opx-5", operators.OnePoint{}, 5},
		{"tpx-5", operators.TwoPoint{}, 5},
		{"opx-10", operators.OnePoint{}, 10},
		{"tpx-10", operators.TwoPoint{}, 10},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				p := DefaultParams()
				p.Crossover = cfg.cx
				p.Local = operators.H2LL{Iterations: cfg.ls}
				p.Seed = uint64(i)
				p.MaxEvaluations = 4000
				res, err := Run(in, p)
				if err != nil {
					b.Fatal(err)
				}
				sum += res.BestFitness
			}
			b.ReportMetric(sum/float64(b.N), "makespan")
		})
	}
}

// --- Table 2: literature comparison ---

// BenchmarkTable2Comparison runs the four algorithm columns at equal
// evaluation budgets on one inconsistent high-heterogeneity instance
// (the class the paper highlights) and reports achieved makespans.
func BenchmarkTable2Comparison(b *testing.B) {
	in := benchInstance(b, "u_i_hihi.0")
	const budget = 4000
	report := func(b *testing.B, run func(seed uint64) (float64, error)) {
		var sum float64
		for i := 0; i < b.N; i++ {
			v, err := run(uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			sum += v
		}
		b.ReportMetric(sum/float64(b.N), "makespan")
	}
	b.Run("struggle-ga", func(b *testing.B) {
		report(b, func(seed uint64) (float64, error) {
			res, err := RunStruggle(in, StruggleConfig{Seed: seed, SeedMinMin: true, MaxEvaluations: budget})
			if err != nil {
				return 0, err
			}
			return res.BestFitness, nil
		})
	})
	b.Run("cma-lth", func(b *testing.B) {
		report(b, func(seed uint64) (float64, error) {
			res, err := RunCMALTH(in, CMALTHConfig{Seed: seed, SeedMinMin: true, MaxEvaluations: budget})
			if err != nil {
				return 0, err
			}
			return res.BestFitness, nil
		})
	})
	b.Run("pa-cga-short", func(b *testing.B) {
		report(b, func(seed uint64) (float64, error) {
			p := DefaultParams()
			p.Seed = seed
			p.MaxEvaluations = budget / 9 // the paper's CPU-ratio column
			res, err := Run(in, p)
			if err != nil {
				return 0, err
			}
			return res.BestFitness, nil
		})
	})
	b.Run("pa-cga-full", func(b *testing.B) {
		report(b, func(seed uint64) (float64, error) {
			p := DefaultParams()
			p.Seed = seed
			p.MaxEvaluations = budget
			res, err := Run(in, p)
			if err != nil {
				return 0, err
			}
			return res.BestFitness, nil
		})
	})
}

// --- Fig. 6: convergence per thread count ---

// BenchmarkFig6Convergence runs PA-CGA with convergence recording for
// each thread count and reports the final mean population makespan after
// a fixed generation budget.
func BenchmarkFig6Convergence(b *testing.B) {
	in := benchInstance(b, "u_c_hihi.0")
	for threads := 1; threads <= 4; threads++ {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				p := DefaultParams()
				p.Threads = threads
				p.Seed = uint64(i)
				p.MaxGenerations = 10
				p.RecordConvergence = true
				res, err := Run(in, p)
				if err != nil {
					b.Fatal(err)
				}
				if n := len(res.Convergence); n > 0 {
					final += res.Convergence[n-1]
				}
			}
			b.ReportMetric(final/float64(b.N), "mean-makespan")
		})
	}
}

// --- Ablation 1 (§3.3): transposed vs row-major ETC layout ---

// The paper stores the transposed ETC so that summing a machine's tasks
// walks memory sequentially. These two benches run the same
// completion-time recomputation through each layout.
func BenchmarkETCLayoutTransposed(b *testing.B) {
	in := benchInstance(b, "u_c_hihi.0")
	s := schedule.NewRandom(in, rng.New(1))
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for m := 0; m < in.M; m++ {
			acc := 0.0
			for t := 0; t < in.T; t++ {
				if s.S[t] == m {
					acc += in.ETC(t, m) // Col[m*T+t]: sequential in t
				}
			}
			sink += acc
		}
	}
	_ = sink
}

// BenchmarkETCLayoutRowMajor is the counterpart using the row-major
// layout (strided access in the same loop shape).
func BenchmarkETCLayoutRowMajor(b *testing.B) {
	in := benchInstance(b, "u_c_hihi.0")
	s := schedule.NewRandom(in, rng.New(1))
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for m := 0; m < in.M; m++ {
			acc := 0.0
			for t := 0; t < in.T; t++ {
				if s.S[t] == m {
					acc += in.ETCRow(t, m) // Row[t*M+m]: stride M in t
				}
			}
			sink += acc
		}
	}
	_ = sink
}

// --- Ablation 2: locking strategy ---

// BenchmarkLockingStrategy compares the paper's per-individual RW locks
// against a per-individual plain mutex and one global mutex, at 4
// threads and a fixed evaluation budget; throughput differences show how
// much the shared-read design buys.
func BenchmarkLockingStrategy(b *testing.B) {
	in := benchInstance(b, "u_c_hihi.0")
	for _, mode := range []core.LockMode{core.PerCellRWMutex, core.PerCellMutex, core.GlobalMutex} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := DefaultParams()
				p.Threads = 4
				p.LockMode = mode
				p.Seed = uint64(i)
				p.MaxEvaluations = 4000
				if _, err := Run(in, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Evaluation engine: indexed completion times ---

// benchEvalInstance generates a 512×M instance of the paper's hihi
// class for the evaluation-engine benchmarks.
func benchEvalInstance(b *testing.B, machines int) *Instance {
	b.Helper()
	cl := Class{Consistency: Inconsistent, TaskHet: HighHet, MachineHet: HighHet}
	in, err := Generate(GenSpec{Class: cl, Tasks: 512, Machines: machines, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// makespanScan is the pre-index evaluation for reference: a full O(M)
// scan over the completion-time vector. Comparing
// BenchmarkMakespan/M=x against BenchmarkMakespanScanRef/M=x reads off
// what the tournament index buys at each machine count.
func makespanScan(s *schedule.Schedule) float64 {
	max := 0.0
	for _, c := range s.CT {
		if c > max {
			max = c
		}
	}
	return max
}

var benchMachineCounts = []int{16, 64, 256}

// BenchmarkMakespan measures the O(1) indexed makespan read.
func BenchmarkMakespan(b *testing.B) {
	for _, m := range benchMachineCounts {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			s := schedule.NewRandom(benchEvalInstance(b, m), rng.New(1))
			b.ReportAllocs()
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink = s.Makespan()
			}
			_ = sink
		})
	}
}

// BenchmarkMakespanScanRef measures the old O(M) scan on the same
// schedules; it exists purely as the comparator for BenchmarkMakespan.
func BenchmarkMakespanScanRef(b *testing.B) {
	for _, m := range benchMachineCounts {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			s := schedule.NewRandom(benchEvalInstance(b, m), rng.New(1))
			b.ReportAllocs()
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink = makespanScan(s)
			}
			_ = sink
		})
	}
}

// BenchmarkMove measures the O(log M) incremental move (compensated CT
// update plus tournament repair), over a precomputed random move
// stream so RNG cost stays out of the loop.
func BenchmarkMove(b *testing.B) {
	for _, m := range benchMachineCounts {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			in := benchEvalInstance(b, m)
			r := rng.New(2)
			s := schedule.NewRandom(in, r)
			const stream = 1 << 12
			tasks := make([]int, stream)
			macs := make([]int, stream)
			for i := range tasks {
				tasks[i], macs[i] = r.Intn(in.T), r.Intn(in.M)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i & (stream - 1)
				s.Move(tasks[k], macs[k])
			}
		})
	}
}

// BenchmarkMoveMakespan measures the steady-state breeding hot pair —
// one move followed by one fitness read — which is the unit of work
// every metaheuristic in the registry repeats millions of times.
func BenchmarkMoveMakespan(b *testing.B) {
	for _, m := range benchMachineCounts {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			in := benchEvalInstance(b, m)
			r := rng.New(3)
			s := schedule.NewRandom(in, r)
			const stream = 1 << 12
			tasks := make([]int, stream)
			macs := make([]int, stream)
			for i := range tasks {
				tasks[i], macs[i] = r.Intn(in.T), r.Intn(in.M)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				k := i & (stream - 1)
				s.Move(tasks[k], macs[k])
				sink = s.Makespan()
			}
			_ = sink
		})
	}
}

// BenchmarkMoveMakespanScanRef is the same hot pair with the fitness
// read done by the old full scan — the pre-index cost model.
func BenchmarkMoveMakespanScanRef(b *testing.B) {
	for _, m := range benchMachineCounts {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			in := benchEvalInstance(b, m)
			r := rng.New(3)
			s := schedule.NewRandom(in, r)
			const stream = 1 << 12
			tasks := make([]int, stream)
			macs := make([]int, stream)
			for i := range tasks {
				tasks[i], macs[i] = r.Intn(in.T), r.Intn(in.M)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				k := i & (stream - 1)
				s.Move(tasks[k], macs[k])
				sink = makespanScan(s)
			}
			_ = sink
		})
	}
}

// --- Ablation 3: incremental vs full fitness evaluation ---

func BenchmarkIncrementalEval(b *testing.B) {
	in := benchInstance(b, "u_c_hihi.0")
	s := schedule.NewRandom(in, rng.New(1))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.Makespan()
	}
	_ = sink
}

func BenchmarkFullRecomputeEval(b *testing.B) {
	in := benchInstance(b, "u_c_hihi.0")
	s := schedule.NewRandom(in, rng.New(1))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.MakespanFull()
	}
	_ = sink
}

// --- Ablation 4: H2LL candidate-set size ---

func BenchmarkH2LLCandidates(b *testing.B) {
	in := benchInstance(b, "u_c_hihi.0")
	for _, n := range []int{2, 4, 8, 15} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rng.New(1)
			s := schedule.NewRandom(in, r)
			ls := operators.H2LL{Iterations: 10, Candidates: n}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ls.Apply(s, r)
			}
		})
	}
}

// --- Ablation 5: asynchronous vs synchronous cellular GA ---

func BenchmarkAsyncVsSync(b *testing.B) {
	in := benchInstance(b, "u_c_hihi.0")
	run := func(b *testing.B, sync bool) {
		var sum float64
		for i := 0; i < b.N; i++ {
			p := DefaultParams()
			p.Threads = 1
			p.Seed = uint64(i)
			p.MaxEvaluations = 4000
			var res *Result
			var err error
			if sync {
				res, err = RunSync(in, p)
			} else {
				res, err = Run(in, p)
			}
			if err != nil {
				b.Fatal(err)
			}
			sum += res.BestFitness
		}
		b.ReportMetric(sum/float64(b.N), "makespan")
	}
	b.Run("async", func(b *testing.B) { run(b, false) })
	b.Run("sync", func(b *testing.B) { run(b, true) })
}

// --- Future work (§5): bigger instances, more parallelism ---

// BenchmarkScalabilityLargeInstance exercises the paper's stated future
// work: the same algorithm on a benchmark 8× larger (4096 tasks × 64
// machines) with thread counts past the paper's 4. Compare evals/op
// across thread counts to see where the shared-memory design saturates.
func BenchmarkScalabilityLargeInstance(b *testing.B) {
	cl := Class{Consistency: Inconsistent, TaskHet: HighHet, MachineHet: HighHet}
	in, err := Generate(GenSpec{Class: cl, Tasks: 4096, Machines: 64, Seed: 99})
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var evals int64
			for i := 0; i < b.N; i++ {
				p := DefaultParams()
				p.Threads = threads
				p.Seed = uint64(i)
				p.MaxDuration = 50 * time.Millisecond
				res, err := Run(in, p)
				if err != nil {
					b.Fatal(err)
				}
				evals += res.Evaluations
			}
			b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
		})
	}
}

// --- Grid simulation (dynamic environment substrate) ---

// BenchmarkSimulatedExecution replays a PA-CGA schedule on the
// discrete-event simulator under noise and failures: the cost of
// validating a plan against the dynamic environment.
func BenchmarkSimulatedExecution(b *testing.B) {
	in := benchInstance(b, "u_i_hihi.0")
	p := DefaultParams()
	p.Seed = 1
	p.MaxEvaluations = 4000
	res, err := Run(in, p)
	if err != nil {
		b.Fatal(err)
	}
	mtbf := res.BestFitness / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := SimConfig{Seed: uint64(i), NoiseSigma: 0.2, MTBF: mtbf, RepairTime: mtbf / 5}
		if _, err := Simulate(in, res.Best, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- End-to-end throughput on the benchmark suite ---

// BenchmarkPACGAAllInstances runs a short PA-CGA on each of the 12
// benchmark instances; regressions here flag performance problems in any
// layer of the stack.
func BenchmarkPACGAAllInstances(b *testing.B) {
	suite, err := BenchmarkSuite()
	if err != nil {
		b.Fatal(err)
	}
	for _, in := range suite {
		b.Run(in.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := DefaultParams()
				p.Seed = uint64(i)
				p.MaxEvaluations = 2000
				if _, err := Run(in, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Portfolio meta-solver overhead ---

// BenchmarkPortfolio measures the racing meta-solver's composition
// cost: "of-one" wraps tabu in a single-constituent portfolio (parent
// engine, child accounting, incumbent, lane machinery, warm restarts)
// and "direct-tabu" runs the same solver at the same budget without
// the wrapper. The pair should stay within ~5% of each other: the
// portfolio adds per-round bookkeeping, never per-evaluation work.
func BenchmarkPortfolio(b *testing.B) {
	in := benchInstance(b, "u_c_hihi.0")
	const budget = 4000
	run := func(b *testing.B, name string) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := Solve(name, in, SolveOptions{
				Budget: Budget{MaxEvaluations: budget},
				Seed:   uint64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Best == nil {
				b.Fatal("no schedule")
			}
		}
	}
	b.Run("of-one", func(b *testing.B) { run(b, "portfolio:tabu") })
	b.Run("direct-tabu", func(b *testing.B) { run(b, "tabu") })
}

// BenchmarkPortfolioRace measures the full default race (pa-cga + tabu
// + h2ll sharing one incumbent) at a fixed evaluation budget — the
// end-to-end cost of the meta-solver the service exposes.
func BenchmarkPortfolioRace(b *testing.B) {
	in := benchInstance(b, "u_c_hihi.0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Solve("portfolio", in, SolveOptions{
			Budget: Budget{MaxEvaluations: 4000},
			Seed:   uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Best == nil {
			b.Fatal("no schedule")
		}
	}
}
