// Engine observer-hook overhead benchmarks: benchguard-held numbers
// that keep convergence instrumentation honest about its cost. The
// hook's contract is zero overhead when no observer is attached (a
// single nil check per Observe call) and a lock-free shared-incumbent
// load when one is — these benchmarks measure exactly the per-candidate
// hot path every solver family now runs, AddEvals(1) + Observe(f).
package gridsched

import (
	"context"
	"testing"

	"gridsched/internal/obs"
	"gridsched/internal/solver"
)

// benchObserverLoop drives the instrumented per-candidate path: count
// one evaluation, offer a non-improving fitness. Non-improving is the
// steady state — after the first few improvements, virtually every
// candidate a solver scores loses to the incumbent, so the fast-reject
// path is what throughput rides on.
func benchObserverLoop(b *testing.B, ctx context.Context) {
	eng := solver.NewEngine(ctx, solver.Budget{MaxEvaluations: int64(b.N) + 1})
	eng.Observe(100) // seed the incumbent so the loop's offers never win
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.AddEvals(1)
		eng.Observe(1e18)
	}
}

// BenchmarkEngineObserverOff holds the nil-observer cost: the hook must
// be a branch, not a feature. Compare against BenchmarkEngineObserverOn
// for the attached-observer delta.
func BenchmarkEngineObserverOff(b *testing.B) {
	benchObserverLoop(b, context.Background())
}

// BenchmarkEngineObserverOn holds the attached-observer cost on the
// non-improving path: one atomic incumbent load per offer, no recorder
// traffic (only actual improvements reach the observer).
func BenchmarkEngineObserverOn(b *testing.B) {
	rec := obs.NewRecorder(0)
	benchObserverLoop(b, solver.WithObserver(context.Background(), rec))
}
