// Command etcgen generates Braun-style ETC benchmark instances and
// prints or saves them in the HCSP text format, or inspects an existing
// instance file.
//
// Usage:
//
//	etcgen -instance u_i_hihi.0 -o u_i_hihi.0.etc
//	etcgen -all -dir bench/              # write the full 12-instance suite
//	etcgen -inspect u_i_hihi.0.etc       # print summary statistics
//
// etcgen takes the shared -seed flag; when it is left unset (and the
// dimensions are the defaults) the instance's canonical per-name seed
// is used instead, so generated files byte-match the benchmark suite.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gridsched"
	"gridsched/internal/cliutil"
	"gridsched/internal/etc"
	"gridsched/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("etcgen: ")

	var (
		instName = flag.String("instance", "u_c_hihi.0", "instance name to generate (u_x_yyzz.k)")
		tasks    = flag.Int("tasks", etc.DefaultTasks, "number of tasks")
		machines = flag.Int("machines", etc.DefaultMachines, "number of machines")
		seed     = cliutil.SeedFlag()
		out      = flag.String("o", "", "output file (default stdout)")
		all      = flag.Bool("all", false, "generate the full 12-instance benchmark suite")
		dir      = flag.String("dir", ".", "output directory for -all")
		inspect  = flag.String("inspect", "", "inspect an existing instance file instead of generating")
	)
	flag.Parse()

	switch {
	case *inspect != "":
		if err := inspectFile(*inspect); err != nil {
			log.Fatal(err)
		}
	case *all:
		suite, err := gridsched.BenchmarkSuite()
		if err != nil {
			log.Fatal(err)
		}
		for _, in := range suite {
			path := filepath.Join(*dir, in.Name+".etc")
			if err := writeFile(in, path); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s  (%s)\n", path, in.Blazewicz())
		}
	default:
		cl, err := etc.ParseClass(*instName)
		if err != nil {
			log.Fatal(err)
		}
		spec := etc.GenSpec{Class: cl, Tasks: *tasks, Machines: *machines, Seed: *seed}
		var in *gridsched.Instance
		if !cliutil.SeedSet() && *tasks == etc.DefaultTasks && *machines == etc.DefaultMachines {
			// No explicit -seed: use the instance's canonical fixed seed,
			// so generated files byte-match the benchmark suite.
			in, err = gridsched.GenerateInstance(*instName)
		} else {
			in, err = gridsched.Generate(spec)
		}
		if err != nil {
			log.Fatal(err)
		}
		if *out == "" {
			if err := gridsched.WriteInstance(in, os.Stdout); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := writeFile(in, *out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s  (%s)\n", *out, in.Blazewicz())
	}
}

func writeFile(in *gridsched.Instance, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gridsched.WriteInstance(in, f)
}

func inspectFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	in, err := gridsched.ReadInstance(filepath.Base(path), f)
	if err != nil {
		return err
	}
	lo, hi := in.MinMaxETC()
	m := etc.ComputeMetrics(in)
	fmt.Printf("instance     %s\n", in.Name)
	fmt.Printf("dims         %d tasks x %d machines\n", in.T, in.M)
	fmt.Printf("notation     %s\n", in.Blazewicz())
	fmt.Printf("etc range    [%.2f, %.2f]\n", lo, hi)
	fmt.Printf("etc mean     %.2f  (std %.2f)\n", stats.Mean(in.Row), stats.StdDev(in.Row))
	fmt.Printf("task het     %.3f  (CV of mean task sizes)\n", m.TaskHeterogeneity)
	fmt.Printf("machine het  %.3f  (mean per-task CV)\n", m.MachineHeterogeneity)
	fmt.Printf("consistency  %.3f  (1 = fully consistent)\n", m.ConsistencyIndex)
	fmt.Printf("ideal bound  makespan >= %.2f\n", m.IdealMakespan)
	mm := gridsched.MinMin(in)
	fmt.Printf("min-min      makespan %.2f\n", mm.Makespan())
	return nil
}
