// Command gridschedd runs the scheduling service as an HTTP daemon:
// solve jobs are submitted as JSON, executed on a fixed worker pool
// through the solver registry, and polled for results.
//
// Usage:
//
//	gridschedd -addr :8080 -workers 4 -queue 64
//
// Endpoints (see the README's "Running as a service" for curl
// examples):
//
//	POST   /v1/jobs       submit a solve job
//	GET    /v1/jobs       list retained jobs
//	GET    /v1/jobs/{id}  poll status / fetch the result
//	DELETE /v1/jobs/{id}  cancel
//	GET    /v1/solvers    registered solver names
//	GET    /v1/stats      throughput and latency counters
//	GET    /healthz       liveness
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener stops
// accepting, queued and running jobs get -drain-grace to finish, and
// whatever is still running after the grace period is cancelled
// through its budget context.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"gridsched/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridschedd: ")

	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "solve workers (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "job queue capacity (submits beyond it get 429)")
		ttl     = flag.Duration("result-ttl", 15*time.Minute, "how long finished jobs stay retrievable")
		cache   = flag.Int("cache", 16, "instance cache capacity (entries)")
		maxDur  = flag.Duration("max-duration", 5*time.Minute, "cap on any job's wall-clock budget; budget-less jobs get exactly this, so none can hold a worker forever (0 = uncapped)")
		grace   = flag.Duration("drain-grace", 30*time.Second, "how long shutdown waits for in-flight jobs before cancelling them")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:     *workers,
		QueueSize:   *queue,
		ResultTTL:   *ttl,
		CacheSize:   *cache,
		MaxDuration: *maxDur,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (%d workers, queue %d)", *addr, svc.Config().Workers, svc.Config().QueueSize)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	log.Printf("signal received; draining (grace %v)", *grace)

	// Flip to draining first so clients still connected during the HTTP
	// drain see 503 from /healthz and ErrClosed on submits, then stop
	// the listener, then wait out the job drain.
	svc.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("drain grace expired; in-flight jobs were cancelled")
		} else {
			log.Printf("service shutdown: %v", err)
		}
	}
	log.Printf("drained; bye")
}
