// Command gridschedd runs the scheduling service as an HTTP daemon:
// solve jobs are submitted as JSON, executed on a fixed worker pool
// through the solver registry, and polled for results.
//
// Usage:
//
//	gridschedd -addr :8080 -workers 4 -queue 64
//
// Endpoints (see the README's "Running as a service" and
// "Observability" for curl examples):
//
//	POST   /v1/jobs             submit a solve job
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        poll status / fetch the result
//	GET    /v1/jobs/{id}/trace  lifecycle phases + convergence events
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/solvers          registered solver names
//	GET    /v1/stats            throughput and latency counters
//	GET    /metrics             Prometheus text-format exposition
//	GET    /healthz             liveness
//	/debug/pprof/...            net/http/pprof (opt-in via -pprof)
//
// Every request is access-logged as one structured line (method, path,
// status, bytes, duration, request ID); the request ID is read from an
// inbound X-Request-Id header (or generated), echoed on the response,
// and propagated into the job's lifecycle logs and trace.
//
// With -instdb the daemon serves named instances from a pre-generated
// binary store (built by cmd/instdb) instead of regenerating them
// behind the LRU cache; SIGHUP atomically hot-reloads the store file,
// so a regenerated corpus is picked up without a restart (a corrupt
// file is rejected and the serving snapshot stays in place).
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener stops
// accepting, queued and running jobs get -drain-grace to finish, and
// whatever is still running after the grace period is cancelled
// through its budget context.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridsched/internal/instdb"
	"gridsched/internal/obs"
	"gridsched/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridschedd: ")

	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "solve workers (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "job queue capacity (submits beyond it get 429)")
		ttl       = flag.Duration("result-ttl", 15*time.Minute, "how long finished jobs stay retrievable")
		cache     = flag.Int("cache", 16, "instance cache capacity (entries)")
		maxDur    = flag.Duration("max-duration", 5*time.Minute, "cap on any job's wall-clock budget; budget-less jobs get exactly this, so none can hold a worker forever (0 = uncapped)")
		grace     = flag.Duration("drain-grace", 30*time.Second, "how long shutdown waits for in-flight jobs before cancelling them")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of logfmt-style text")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		withPprof = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (opt-in: exposes internals)")
		storePath = flag.String("instdb", "", "pre-generated instance store file (built by cmd/instdb; SIGHUP hot-reloads it)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		log.Fatalf("bad -log-level %q: %v", *logLevel, err)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, opts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, opts)
	}
	logger := slog.New(handler)

	var db *instdb.DB
	if *storePath != "" {
		var err error
		db, err = instdb.Open(*storePath)
		if err != nil {
			log.Fatalf("open instance store: %v", err)
		}
		log.Printf("instance store %s: %d instances", *storePath, db.Len())
	}

	cfg := service.Config{
		Workers:     *workers,
		QueueSize:   *queue,
		ResultTTL:   *ttl,
		CacheSize:   *cache,
		MaxDuration: *maxDur,
		Logger:      logger,
	}
	if db != nil {
		cfg.InstanceDB = db
	}
	svc := service.New(cfg)

	if db != nil {
		// SIGHUP hot-reloads the store: the new file is opened and
		// validated off to the side, then swapped in atomically; in-flight
		// jobs keep their old snapshot, and a corrupt file leaves the
		// current corpus serving.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := db.Reload(); err != nil {
					logger.Error("instdb reload failed; keeping current snapshot",
						"path", db.Path(), "err", err)
					continue
				}
				logger.Info("instdb reloaded",
					"path", db.Path(), "instances", db.Len(), "reloads", db.Reloads())
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	if *withPprof {
		// Explicit registration instead of the pprof blank import: the
		// side-effect import registers on DefaultServeMux, which this
		// daemon deliberately does not serve.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: obs.AccessLog(logger, mux)}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (%d workers, queue %d, pprof %v)", *addr, svc.Config().Workers, svc.Config().QueueSize, *withPprof)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	log.Printf("signal received; draining (grace %v)", *grace)

	// Flip to draining first so clients still connected during the HTTP
	// drain see 503 from /healthz and ErrClosed on submits, then stop
	// the listener, then wait out the job drain.
	svc.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("drain grace expired; in-flight jobs were cancelled")
		} else {
			log.Printf("service shutdown: %v", err)
		}
	}
	log.Printf("drained; bye")
}
