// Command heuristics runs the classic constructive mapping heuristics
// (Min-min, Max-min, Sufferage, MCT, MET, OLB, LJFR-SJFR) on a benchmark
// instance and prints a ranked comparison — the fast baselines the paper
// positions against its metaheuristic.
//
// Usage:
//
//	heuristics -instance u_i_hihi.0
//	heuristics -file my.etc -only minmin,sufferage
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"gridsched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heuristics: ")

	var (
		instName = flag.String("instance", "u_c_hihi.0", "benchmark instance name")
		file     = flag.String("file", "", "load instance from HCSP file instead of generating")
		only     = flag.String("only", "", "comma-separated subset of heuristics to run")
	)
	flag.Parse()

	var inst *gridsched.Instance
	var err error
	if *file != "" {
		f, ferr := os.Open(*file)
		if ferr != nil {
			log.Fatal(ferr)
		}
		inst, err = gridsched.ReadInstance(*file, f)
		f.Close()
	} else {
		inst, err = gridsched.GenerateInstance(*instName)
	}
	if err != nil {
		log.Fatal(err)
	}

	names := gridsched.HeuristicNames()
	if *only != "" {
		names = strings.Split(*only, ",")
	}

	type row struct {
		name     string
		makespan float64
		flowtime float64
	}
	rows := make([]row, 0, len(names))
	for _, name := range names {
		h, err := gridsched.HeuristicByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		s := h(inst)
		rows = append(rows, row{name: name, makespan: s.Makespan(), flowtime: s.Flowtime()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].makespan < rows[j].makespan })

	fmt.Printf("instance %s  (%s)\n\n", inst.Name, inst.Blazewicz())
	fmt.Printf("  %-12s %14s %16s\n", "heuristic", "makespan", "flowtime")
	for _, r := range rows {
		fmt.Printf("  %-12s %14.2f %16.2f\n", r.name, r.makespan, r.flowtime)
	}
}
