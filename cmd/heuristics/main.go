// Command heuristics runs the classic constructive mapping heuristics
// (Min-min, Max-min, Sufferage, MCT, MET, OLB, LJFR-SJFR) on a benchmark
// instance and prints a ranked comparison — the fast baselines the paper
// positions against its metaheuristic. The heuristics are resolved
// through the unified solver registry, where they are registered as
// zero-budget solvers.
//
// Usage:
//
//	heuristics -instance u_i_hihi.0
//	heuristics -file my.etc -only minmin,sufferage
//	heuristics -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"gridsched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heuristics: ")

	var (
		instName = flag.String("instance", "u_c_hihi.0", "benchmark instance name")
		file     = flag.String("file", "", "load instance from HCSP file instead of generating")
		only     = flag.String("only", "", "comma-separated subset of heuristics to run")
		list     = flag.Bool("list", false, "list every registered solver (heuristics and metaheuristics) and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range gridsched.Solvers() {
			fmt.Printf("  %-14s %s\n", s.Name, s.Description)
		}
		return
	}

	var inst *gridsched.Instance
	var err error
	if *file != "" {
		f, ferr := os.Open(*file)
		if ferr != nil {
			log.Fatal(ferr)
		}
		inst, err = gridsched.ReadInstance(*file, f)
		f.Close()
	} else {
		inst, err = gridsched.GenerateInstance(*instName)
	}
	if err != nil {
		log.Fatal(err)
	}

	valid := map[string]bool{}
	for _, name := range gridsched.HeuristicNames() {
		valid[name] = true
	}
	names := gridsched.HeuristicNames()
	if *only != "" {
		names = strings.Split(*only, ",")
		for i, name := range names {
			names[i] = strings.TrimSpace(name)
			if !valid[names[i]] {
				log.Fatalf("unknown heuristic %q (have: %s)",
					names[i], strings.Join(gridsched.HeuristicNames(), ", "))
			}
		}
	}

	type row struct {
		name     string
		makespan float64
		flowtime float64
	}
	rows := make([]row, 0, len(names))
	for _, name := range names {
		// Zero-budget solvers: a single construction pass is the run.
		res, err := gridsched.Solve(name, inst, gridsched.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{name: name, makespan: res.Best.Makespan(), flowtime: res.Best.Flowtime()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].makespan < rows[j].makespan })

	fmt.Printf("instance %s  (%s)\n\n", inst.Name, inst.Blazewicz())
	fmt.Printf("  %-12s %14s %16s\n", "heuristic", "makespan", "flowtime")
	for _, r := range rows {
		fmt.Printf("  %-12s %14.2f %16.2f\n", r.name, r.makespan, r.flowtime)
	}
}
