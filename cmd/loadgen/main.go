// Command loadgen drives the scheduling service with closed-loop load
// and reports achieved throughput plus submit and end-to-end latency
// percentiles.
//
// Usage:
//
//	loadgen -addr http://host:8080 -d 30s -c 8 -solvers minmin:3,tabu:1
//	loadgen -d 5s -store corpus.gsdb          # self-contained: in-process server
//
// Without -addr, loadgen starts an in-process service (optionally
// backed by an instdb store file via -store) on a loopback listener
// and hammers that — a self-contained smoke/benchmark mode used by CI.
// With -qps the aggregate submission rate is paced; otherwise each of
// the -c clients keeps exactly one job in flight.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridsched/internal/instdb"
	"gridsched/internal/loadgen"
	"gridsched/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	var (
		addr      = flag.String("addr", "", "target service base URL (empty = start an in-process server)")
		storePath = flag.String("store", "", "instdb store file backing the in-process server (only without -addr)")
		workers   = flag.Int("workers", 0, "in-process server worker count (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "in-process server queue capacity")
		conc      = flag.Int("c", 4, "closed-loop client count")
		qps       = flag.Float64("qps", 0, "target aggregate submissions/s (0 = unpaced closed loop)")
		duration  = flag.Duration("d", 10*time.Second, "measured load duration")
		warmup    = flag.Duration("warmup", time.Second, "warmup lead time excluded from the report")
		solvers   = flag.String("solvers", "minmin", "weighted solver mix, e.g. minmin:3,tabu:1")
		instances = flag.String("instances", "u_c_hihi.0@64x8", "weighted instance mix, e.g. u_c_hihi.0@64x8:2,u_i_lolo.0@64x8:1")
		maxEvals  = flag.Int64("max-evals", 0, "per-job evaluation budget (0 = none)")
		seed      = flag.Uint64("seed", 1, "mix draw seed")
		asJSON    = flag.Bool("json", false, "emit the report as JSON instead of text")
	)
	flag.Parse()

	base := *addr
	if base == "" {
		cfg := service.Config{Workers: *workers, QueueSize: *queue}
		if *storePath != "" {
			db, err := instdb.Open(*storePath)
			if err != nil {
				log.Fatalf("open store: %v", err)
			}
			cfg.InstanceDB = db
			log.Printf("in-process server backed by %s (%d instances)", *storePath, db.Len())
		}
		svc := service.New(cfg)
		ts := httptest.NewServer(svc.Handler())
		defer func() {
			ts.Close()
			if err := svc.Close(); err != nil {
				log.Printf("service close: %v", err)
			}
		}()
		base = ts.URL
		log.Printf("in-process server at %s (%d workers, queue %d)", base, svc.Config().Workers, svc.Config().QueueSize)
	} else if *storePath != "" {
		log.Fatal("-store only applies to the in-process server (drop -addr)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:        base,
		Client:         &http.Client{Timeout: 30 * time.Second},
		Concurrency:    *conc,
		TargetQPS:      *qps,
		Duration:       *duration,
		Warmup:         *warmup,
		SolverMix:      *solvers,
		InstanceMix:    *instances,
		MaxEvaluations: *maxEvals,
		Seed:           *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(rep.String())
}
