// Command sweep runs the scenario sweep: every requested solver ×
// every requested Braun benchmark class, fanned out over the scheduling
// service's worker pool, with a per-solver × per-class quality/latency
// report on stdout and optionally as CSV.
//
// Usage:
//
//	sweep -classes all                        # full 12-class matrix, every solver
//	sweep -classes u_c_hihi.0,u_i_lolo.0 -solvers pa-cga,minmin,tabu
//	sweep -tasks 128 -machines 8 -evals 20000 -csv sweep.csv
//	sweep -maxtime 2s -solvers pa-cga         # wall-clock budget per job
//
// The sweep aborts cleanly on SIGINT/SIGTERM: outstanding jobs are
// cancelled through their budget contexts.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gridsched"
	"gridsched/internal/cliutil"
	"gridsched/internal/etc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	var (
		classesFlag = flag.String("classes", "all", "comma-separated class names (u_x_yyzz[.k] or x-yyzz), or \"all\" for the 12-class matrix")
		solversFlag = flag.String("solvers", "all", "comma-separated registered solver names, or \"all\"")
		tasks       = flag.Int("tasks", etc.DefaultTasks, "tasks per instance")
		machines    = flag.Int("machines", etc.DefaultMachines, "machines per instance")
		evals       = flag.Int64("evals", 0, "evaluation budget per job (0 with no other bound: 5000)")
		gens        = flag.Int64("gens", 0, "generation budget per job (0 = unbounded)")
		maxtime     = flag.Duration("maxtime", 0, "wall-clock budget per job (0 = unbounded)")
		seed        = cliutil.SeedFlag()
		workers     = flag.Int("workers", 0, "service worker pool size (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "service queue bound (0 = default; submits beyond it back-pressure)")
		csvPath     = flag.String("csv", "", "also write the report as CSV to this file")
		convPath    = flag.String("converge-csv", "", "write every job's convergence trace (per solver × class, per portfolio lane) as CSV to this file")
		timeout     = flag.Duration("timeout", 30*time.Minute, "overall sweep deadline")
		list        = flag.Bool("list-solvers", false, "list registered solvers and exit")
		prof        = cliutil.ProfileFlags()
	)
	flag.Parse()

	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			log.Print(err)
		}
	}()

	if *list {
		for _, s := range gridsched.Solvers() {
			fmt.Printf("  %-14s %s\n", s.Name, s.Description)
		}
		return
	}

	classes, err := parseClasses(*classesFlag)
	if err != nil {
		log.Fatal(err)
	}
	var solvers []string
	if *solversFlag != "all" && *solversFlag != "" {
		for _, name := range strings.Split(*solversFlag, ",") {
			solvers = append(solvers, strings.TrimSpace(name))
		}
	}

	cfg := gridsched.SweepConfig{
		Classes:            classes,
		Tasks:              *tasks,
		Machines:           *machines,
		Solvers:            solvers,
		Budget:             gridsched.Budget{MaxDuration: *maxtime, MaxEvaluations: *evals, MaxGenerations: *gens},
		Seed:               *seed,
		Workers:            *workers,
		QueueSize:          *queue,
		CollectConvergence: *convPath != "",
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	rep, err := gridsched.Sweep(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Table())

	if *csvPath != "" {
		if err := writeFile(*csvPath, rep.WriteCSV); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	if *convPath != "" {
		if err := writeFile(*convPath, rep.WriteConvergenceCSV); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *convPath)
	}
}

// writeFile creates path and streams write into it, surfacing close
// errors (a full disk shows up at close, not write).
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseClasses resolves the -classes flag: "all", full u_x_yyzz[.k]
// names, or the report's short x-yyzz labels.
func parseClasses(s string) ([]etc.Class, error) {
	if s == "" || s == "all" {
		return nil, nil // scenarios defaults to the full matrix
	}
	var out []etc.Class
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		name := tok
		if !strings.HasPrefix(name, "u_") {
			// Short label "c-hihi" → canonical "u_c_hihi".
			name = "u_" + strings.ReplaceAll(name, "-", "_")
		}
		cl, err := etc.ParseClass(name)
		if err != nil {
			return nil, fmt.Errorf("bad class %q: %v", tok, err)
		}
		out = append(out, cl)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no classes in %q", s)
	}
	return out, nil
}
