// Command experiments regenerates the paper's evaluation: Table 1
// (parameterization), Fig. 4 (speedup), Fig. 5 (operator box plots),
// Table 2 (literature comparison) and Fig. 6 (convergence).
//
// By default everything runs at a laptop-friendly scale; -paper switches
// to the full 100×90 s protocol (hours to days of compute). Individual
// experiments are selected with flags:
//
//	experiments -table1
//	experiments -fig4 -wall 250ms -runs 10
//	experiments -fig5 -runs 20 -evals 30000
//	experiments -table2 -runs 10
//	experiments -fig6
//	experiments -all
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"gridsched"
	"gridsched/internal/cliutil"
	"gridsched/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		table1    = flag.Bool("table1", false, "print the Table 1 parameterization")
		fig4      = flag.Bool("fig4", false, "run the Fig. 4 speedup experiment")
		fig5      = flag.Bool("fig5", false, "run the Fig. 5 operator comparison")
		table2    = flag.Bool("table2", false, "run the Table 2 literature comparison")
		fig6      = flag.Bool("fig6", false, "run the Fig. 6 convergence experiment")
		diversity = flag.Bool("diversity", false, "run the cellular-vs-panmictic diversity study")
		all       = flag.Bool("all", false, "run everything")
		paper     = flag.Bool("paper", false, "use the paper's full budgets (100 runs x 90s; very slow)")

		runs     = flag.Int("runs", 0, "override replication count")
		wall     = flag.Duration("wall", 0, "override wall budget per run (enables time-based stop)")
		evals    = flag.Int64("evals", 0, "override evaluation budget per run")
		threads  = flag.Int("threads", 0, "override thread count for fig5/table2")
		instance = flag.String("instance", "u_c_hihi.0", "instance for fig4/fig6")
		seed     = cliutil.SeedFlag()
		csvDir   = flag.String("csv-dir", "", "also write raw results as CSV files into this directory")
	)
	flag.Parse()

	if !(*table1 || *fig4 || *fig5 || *table2 || *fig6 || *diversity || *all) {
		flag.Usage()
		os.Exit(2)
	}

	// ^C (or SIGTERM) aborts the running experiment cleanly: the
	// in-flight run stops through its budget context and the experiment
	// returns context.Canceled instead of a half-averaged table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sc := gridsched.CIScale()
	if *paper {
		sc = gridsched.PaperScale()
	}
	if *runs > 0 {
		sc.Runs = *runs
	}
	if *wall > 0 {
		sc.WallTime = *wall
		sc.Evaluations = 0
	}
	if *evals > 0 {
		sc.Evaluations = *evals
		if *wall == 0 {
			sc.WallTime = 0
		}
	}
	if *threads > 0 {
		sc.Threads = *threads
	}
	sc.BaseSeed = *seed

	if *table1 || *all {
		fmt.Println(gridsched.Table1())
	}

	if *fig4 || *all {
		fsc := sc
		if fsc.WallTime <= 0 {
			// Fig. 4 is a throughput measurement; it needs wall time.
			fsc.WallTime = 250 * time.Millisecond
			fmt.Printf("(fig4: no -wall given; using %v per run)\n\n", fsc.WallTime)
		}
		inst, err := gridsched.GenerateInstance(*instance)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rows, err := gridsched.Fig4Context(ctx, inst, fsc)
		check(err)
		fmt.Println(gridsched.RenderFig4(rows))
		writeCSV(*csvDir, "fig4.csv", func(w io.Writer) error { return experiments.WriteFig4CSV(w, rows) })
		fmt.Printf("(fig4 completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *fig5 || *all {
		suite, err := gridsched.BenchmarkSuite()
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		cells, err := gridsched.Fig5Context(ctx, suite, sc)
		check(err)
		fmt.Println(gridsched.RenderFig5(cells))
		writeCSV(*csvDir, "fig5.csv", func(w io.Writer) error { return experiments.WriteFig5CSV(w, cells) })
		fmt.Printf("(fig5 completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *table2 || *all {
		suite, err := gridsched.BenchmarkSuite()
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rows, err := gridsched.Table2Context(ctx, suite, sc)
		check(err)
		fmt.Println(gridsched.RenderTable2(rows))
		wins := 0
		for _, r := range rows {
			if r.BestIsPACGA() {
				wins++
			}
		}
		fmt.Printf("PA-CGA holds the row best on %d/%d instances\n", wins, len(rows))
		writeCSV(*csvDir, "table2.csv", func(w io.Writer) error { return experiments.WriteTable2CSV(w, rows) })
		fmt.Printf("(table2 completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *fig6 || *all {
		inst, err := gridsched.GenerateInstance(*instance)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		series, err := gridsched.Fig6Context(ctx, inst, sc)
		check(err)
		fmt.Println(gridsched.RenderFig6(series))
		writeCSV(*csvDir, "fig6.csv", func(w io.Writer) error { return experiments.WriteFig6CSV(w, series) })
		fmt.Printf("(fig6 completed in %v)\n", time.Since(start).Round(time.Millisecond))
	}

	if *diversity || *all {
		inst, err := gridsched.GenerateInstance(*instance)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		series, err := gridsched.DiversityStudyContext(ctx, inst, sc)
		check(err)
		fmt.Println(gridsched.RenderDiversity(series))
		fmt.Printf("(diversity completed in %v)\n", time.Since(start).Round(time.Millisecond))
	}
}

// check aborts on error, mapping cancellation to a clean interrupt
// message.
func check(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) {
		log.Fatal("interrupted")
	}
	log.Fatal(err)
}

// writeCSV saves one experiment's raw results when -csv-dir is set.
func writeCSV(dir, name string, write func(io.Writer) error) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(wrote %s)\n", path)
}
