// Command gridsim schedules a benchmark instance (with a heuristic or
// PA-CGA) and then executes the schedule on the discrete-event grid
// simulator under execution-time noise and machine failures, reporting
// how the optimized plan degrades in the dynamic environment of §2.1.
//
// Usage:
//
//	gridsim -instance u_i_hihi.0 -scheduler pacga -noise 0.2 -mtbf-frac 0.5 -runs 20
//	gridsim -scheduler minmin -trace
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"gridsched"
	"gridsched/internal/cliutil"
	"gridsched/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridsim: ")

	var (
		instName  = flag.String("instance", "u_i_hihi.0", "benchmark instance name")
		scheduler = flag.String("scheduler", "pacga", "scheduler: pacga or any heuristic (minmin, mct, ...)")
		budget    = flag.Duration("budget", time.Second, "PA-CGA optimization budget")
		noise     = flag.Float64("noise", 0.2, "lognormal execution-time noise sigma")
		mtbfFrac  = flag.Float64("mtbf-frac", 0, "machine MTBF as a fraction of the predicted makespan (0 disables failures)")
		repair    = flag.Float64("repair-frac", 0.2, "repair time as a fraction of the predicted makespan")
		runs      = flag.Int("runs", 20, "simulation replications")
		seed      = cliutil.SeedFlag()
		trace     = flag.Bool("trace", false, "print the event trace of the first run")
	)
	flag.Parse()

	inst, err := gridsched.GenerateInstance(*instName)
	if err != nil {
		log.Fatal(err)
	}

	var sched *gridsched.Schedule
	switch *scheduler {
	case "pacga":
		p := gridsched.DefaultParams()
		p.MaxDuration = *budget
		p.Seed = *seed
		res, err := gridsched.Run(inst, p)
		if err != nil {
			log.Fatal(err)
		}
		sched = res.Best
	default:
		h, err := gridsched.HeuristicByName(*scheduler)
		if err != nil {
			log.Fatal(err)
		}
		sched = h(inst)
	}

	predicted := sched.Makespan()
	fmt.Printf("scheduler        %s\n", *scheduler)
	fmt.Printf("predicted        %.1f\n", predicted)

	cfg := gridsched.SimConfig{NoiseSigma: *noise}
	if *mtbfFrac > 0 {
		cfg.MTBF = predicted * *mtbfFrac
		cfg.RepairTime = predicted * *repair
	}

	makespans := make([]float64, 0, *runs)
	failures, restarts := 0, 0
	for i := 0; i < *runs; i++ {
		cfg.Seed = *seed + uint64(i)
		cfg.RecordTrace = *trace && i == 0
		res, err := gridsched.Simulate(inst, sched, cfg)
		if err != nil {
			log.Fatal(err)
		}
		makespans = append(makespans, res.Makespan)
		failures += res.Failures
		restarts += res.Restarts
		if cfg.RecordTrace {
			fmt.Printf("\nevent trace (run 0, first 25 events):\n")
			for j, ev := range res.Trace {
				if j >= 25 {
					fmt.Printf("  ... %d more events\n", len(res.Trace)-25)
					break
				}
				fmt.Printf("  t=%10.2f  %-10s task=%-4d machine=%d\n", ev.Time, ev.Kind, ev.Task, ev.Machine)
			}
			fmt.Println()
		}
	}

	sum := stats.Summarize(makespans)
	fmt.Printf("simulated        mean %.1f  (median %.1f, min %.1f, max %.1f over %d runs)\n",
		sum.Mean, sum.Median, sum.Min, sum.Max, sum.N)
	fmt.Printf("degradation      %+.1f%% vs predicted\n", (sum.Mean-predicted)/predicted*100)
	if *mtbfFrac > 0 {
		fmt.Printf("failures         %.1f per run, %.1f task restarts per run\n",
			float64(failures)/float64(*runs), float64(restarts)/float64(*runs))
	}
}
